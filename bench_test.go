// Package repro's root benchmark suite regenerates every table and
// figure of the paper (run with `go test -bench=. -benchmem`). Each
// benchmark prints its table once and then measures the cost of
// regenerating the underlying experiment, so the suite doubles as the
// reproduction harness and a performance baseline.
package repro

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/detector/registry"
	"repro/internal/experiments"
	"repro/internal/generator"
	"repro/internal/parallel"
	"repro/internal/plant"
)

// genPair builds the clean/dirty workload pair of a detector benchmark
// concurrently. Each generator owns its seed-derived RNG, so the pair
// is identical to sequential generation.
func genPair[T any](b *testing.B, genClean, genDirty func() (T, error)) (clean, dirty T) {
	b.Helper()
	gens := []func() (T, error){genClean, genDirty}
	pair, err := parallel.Map(len(gens), 0, func(i int) (T, error) {
		return gens[i]()
	})
	if err != nil {
		b.Fatal(err)
	}
	return pair[0], pair[1]
}

// printOnce guards the one-time table dumps so repeated benchmark
// iterations do not flood the output.
var printOnce sync.Map

func dumpOnce(b *testing.B, key, title string, body fmt.Stringer) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Logf("%s\n%s", title, body)
	}
}

// BenchmarkTable1 regenerates Table 1 — the 21-technique capability
// matrix with conformance AUCs (experiment E1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(1)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce(b, "table1", "Table 1 — Categorization of Literature on Outliers", res)
	}
}

// BenchmarkFig1 regenerates Fig. 1 — detection quality per outlier
// type (experiment E2).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(1)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce(b, "fig1", "Fig. 1 — Outlier types, detection AUC", res)
	}
}

// BenchmarkFig2 regenerates Fig. 2 — the hierarchy level census
// (experiment E3).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(1)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce(b, "fig2", "Fig. 2 — Hierarchy level census", res)
	}
}

// BenchmarkFig3 regenerates Fig. 3 — the bibliometric counts through
// the search-engine pipeline (experiment E5).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(1)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce(b, "fig3", "Fig. 3 — Research fields of outlier detection", res)
	}
}

// BenchmarkAlgorithm1 regenerates the Algorithm 1 experiment — the
// ⟨global score, outlierness, support⟩ triple on the simulated plant
// (experiment E4).
func BenchmarkAlgorithm1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAlg1(5)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce(b, "alg1", "Algorithm 1 — the hierarchical triple", res)
	}
}

// BenchmarkAblationHierarchy regenerates E6 (flat vs hierarchical) and
// the design ablations.
func BenchmarkAblationHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fh, err := experiments.RunFlatVsHier(5)
		if err != nil {
			b.Fatal(err)
		}
		ab, err := experiments.RunAblation(5)
		if err != nil {
			b.Fatal(err)
		}
		dumpOnce(b, "e6a", "E6 — flat vs hierarchical", fh)
		dumpOnce(b, "e6b", "Ablations", ab)
	}
}

// BenchmarkPlantSimulation measures the substrate cost: one full plant
// simulation.
func BenchmarkPlantSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := plant.Simulate(plant.Config{Seed: int64(i), FaultRate: 0.25, MeasurementErrorRate: 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierarchicalRun measures one Algorithm 1 run over one
// machine (plant held fixed).
func BenchmarkHierarchicalRun(b *testing.B) {
	p, err := plant.Simulate(plant.Config{Seed: 5, FaultRate: 0.25, MeasurementErrorRate: 0.25, JobsPerMachine: 12})
	if err != nil {
		b.Fatal(err)
	}
	id := p.Machines()[0].ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := core.NewHierarchy(p, id)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.FindHierarchicalOutliers(h, core.LevelPhase, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorsPoint measures per-detector point-scoring
// throughput on the standard PTS workload (every PTS-capable,
// unsupervised technique).
func BenchmarkDetectorsPoint(b *testing.B) {
	cfg := generator.Config{N: 4096, Phi: 0.5}
	clean, dirty := genPair(b,
		func() (*generator.Labeled, error) {
			return generator.MixedWorkload(cfg, 0, 0, rand.New(rand.NewSource(1)))
		},
		func() (*generator.Labeled, error) {
			return generator.MixedWorkload(cfg, 10, 7, rand.New(rand.NewSource(2)))
		})
	for _, entry := range registry.All() {
		if !entry.Info.Capability.Points || entry.Info.Supervised {
			continue
		}
		entry := entry
		b.Run(entry.Info.Name, func(b *testing.B) {
			d := entry.New()
			if f, ok := d.(detector.Fitter); ok {
				if err := f.Fit(clean.Series.Values); err != nil {
					b.Fatal(err)
				}
			}
			ps := d.(detector.PointScorer)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ps.ScorePoints(dirty.Series.Values); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(8 * dirty.Series.Len()))
		})
	}
}

// BenchmarkDetectorsWindow measures per-detector window-scoring
// throughput on the standard SSQ workload.
func BenchmarkDetectorsWindow(b *testing.B) {
	clean, dirty := genPair(b,
		func() (*generator.LabeledSubseq, error) {
			return generator.SubseqWorkload(4096, 48, 0, rand.New(rand.NewSource(1)))
		},
		func() (*generator.LabeledSubseq, error) {
			return generator.SubseqWorkload(4096, 48, 5, rand.New(rand.NewSource(2)))
		})
	for _, entry := range registry.All() {
		if !entry.Info.Capability.Subsequences || entry.Info.Supervised {
			continue
		}
		entry := entry
		b.Run(entry.Info.Name, func(b *testing.B) {
			d := entry.New()
			if f, ok := d.(detector.Fitter); ok {
				if err := f.Fit(clean.Series.Values); err != nil {
					b.Fatal(err)
				}
			}
			ws, ok := d.(detector.WindowScorer)
			if !ok {
				b.Skip("symbol-only scorer")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ws.ScoreWindows(dirty.Series.Values, 32, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectorsSeries measures per-detector whole-series scoring
// on the standard TSS workload.
func BenchmarkDetectorsSeries(b *testing.B) {
	lab, err := generator.SeriesWorkload(40, 8, 256, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	batch := make([][]float64, len(lab.Series))
	for i, s := range lab.Series {
		batch[i] = s.Values
	}
	// Size the training concatenation up front — growing it by repeated
	// append reallocates log(n) times for no benefit.
	total := 0
	for i, s := range batch {
		if !lab.Labels[i] {
			total += len(s)
		}
	}
	cleanConcat := make([]float64, 0, total)
	for i, s := range batch {
		if !lab.Labels[i] {
			cleanConcat = append(cleanConcat, s...)
		}
	}
	for _, entry := range registry.All() {
		if !entry.Info.Capability.Series || entry.Info.Supervised {
			continue
		}
		entry := entry
		b.Run(entry.Info.Name, func(b *testing.B) {
			d := entry.New()
			if f, ok := d.(detector.Fitter); ok {
				if err := f.Fit(cleanConcat); err != nil {
					b.Fatal(err)
				}
			}
			ss := d.(detector.SeriesScorer)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ss.ScoreSeries(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
