package hod

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/pkg/hod/wire"
)

// Client is the typed client of the v1 HTTP API served by hodserve.
// Every request and response body is a pkg/hod/wire type — the same
// structs the server compiles against. Ingest and job uploads retry
// automatically when the server sheds load with 429, sleeping the
// advertised Retry-After (the server's idempotent set-at-index store
// makes re-sending a whole batch safe). A Client is safe for
// concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	apiKey     string
	maxRetries int
	retryCap   time.Duration
	retried    atomic.Uint64
}

// ClientOption tunes a Client at construction time.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport, instrumentation).
func WithHTTPClient(hc *http.Client) ClientOption { return func(c *Client) { c.hc = hc } }

// WithAPIKey authenticates every request (and subscription) with the
// tenant API key, sent as "Authorization: Bearer {key}". Required when
// the server runs with tenants configured; a no-op against an open
// server.
func WithAPIKey(key string) ClientOption { return func(c *Client) { c.apiKey = key } }

// WithMaxRetries bounds how often one batch is re-sent after a 429
// before the client gives up with ErrBackpressure (default 120).
func WithMaxRetries(n int) ClientOption { return func(c *Client) { c.maxRetries = n } }

// WithRetryCap clamps the per-attempt backoff sleep, whatever
// Retry-After advertises (default 30s).
func WithRetryCap(d time.Duration) ClientOption { return func(c *Client) { c.retryCap = d } }

// NewClient builds a client for the server at baseURL (e.g.
// "http://localhost:8080").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		hc:         &http.Client{Timeout: 60 * time.Second},
		maxRetries: 120,
		retryCap:   MaxRetryAfter,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Retried reports how many 429-shed batches this client has re-sent
// over its lifetime — the backpressure cost of an upload session.
func (c *Client) Retried() uint64 { return c.retried.Load() }

// APIError is a non-2xx response decoded from the server's structured
// error envelope. errors.Is matches it against the package sentinels
// (ErrUnknownPlant, ErrBackpressure, ...) via its machine-readable
// Code.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // wire error code, e.g. wire.CodeUnknownPlant
	Message string
}

// Error renders the status, code, and server message.
func (e *APIError) Error() string {
	return fmt.Sprintf("hod: server returned %d (%s): %s", e.Status, e.Code, e.Message)
}

// Is maps the machine-readable error code onto the package sentinels,
// so errors.Is(err, hod.ErrUnknownPlant) works on client errors.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrBadRequest:
		return e.Code == wire.CodeBadRequest
	case ErrUnknownPlant:
		return e.Code == wire.CodeUnknownPlant
	case ErrUnknownMachine:
		return e.Code == wire.CodeUnknownMachine
	case ErrAlreadyRegistered:
		return e.Code == wire.CodeAlreadyRegistered
	case ErrBackpressure:
		return e.Code == wire.CodeBackpressure
	case ErrShuttingDown:
		return e.Code == wire.CodeShuttingDown
	case ErrNoData:
		return e.Code == wire.CodeNoData
	case ErrVectorDims:
		return e.Code == wire.CodeVectorDims
	case ErrUnauthorized:
		return e.Code == wire.CodeUnauthorized
	case ErrForbidden:
		return e.Code == wire.CodeForbidden
	case ErrRateLimited:
		return e.Code == wire.CodeRateLimited
	case ErrFailover:
		return e.Code == wire.CodeNotOwner || e.Code == wire.CodeFailover
	case ErrBadFrame:
		return e.Code == wire.CodeBadFrame
	}
	return false
}

// failoverRetryable reports whether a 503 carries a cluster failover
// envelope (not_owner / failover): ownership is settling after a node
// death or a plant move, and the router asked the client to come back
// after Retry-After. Other 503s — a server shutting down — stay fatal.
func failoverRetryable(status int, body []byte) bool {
	if status != http.StatusServiceUnavailable {
		return false
	}
	var env wire.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return false
	}
	return env.Err.Code == wire.CodeNotOwner || env.Err.Code == wire.CodeFailover
}

func apiError(status int, body []byte) error {
	var env wire.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Err.Code != "" {
		return &APIError{Status: status, Code: env.Err.Code, Message: env.Err.Message}
	}
	return &APIError{Status: status, Code: wire.CodeInternal, Message: strings.TrimSpace(string(body))}
}

// MaxRetryAfter caps how long a single Retry-After header can make the
// client sleep, whatever the server advertises — and is the default
// per-attempt backoff cap (override with WithRetryCap).
const MaxRetryAfter = 30 * time.Second

// retryAfter reads the advertised backoff, defaulting to one second.
// RFC 9110 allows both forms — delta-seconds and an HTTP-date — so the
// date form is parsed too (it used to fall back to the 1s default
// silently). The result is clamped to limit, the client's WithRetryCap
// bound (MaxRetryAfter unless overridden), so a far-future date cannot
// park an uploader.
func retryAfter(resp *http.Response, now time.Time, limit time.Duration) time.Duration {
	d := time.Second // missing or unparseable header
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			// Compare in seconds before multiplying: a huge
			// delta-seconds value would overflow the Duration to a
			// negative and turn the backoff into a hot loop.
			if time.Duration(secs) >= limit/time.Second {
				return limit
			}
			d = time.Duration(secs) * time.Second
		} else if when, err := http.ParseTime(ra); err == nil {
			d = when.Sub(now)
			if d < 0 {
				d = 0
			}
		}
	}
	if d > limit {
		d = limit
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do issues one request, retrying 429s — and 503s carrying the
// cluster failover envelope — with the advertised backoff, and decodes
// a 2xx body into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		c.authorize(req.Header)
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("hod: bad response body: %w", err)
			}
			return nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < c.maxRetries,
			failoverRetryable(resp.StatusCode, data) && attempt < c.maxRetries:
			c.retried.Add(1)
			if err := sleepCtx(ctx, retryAfter(resp, time.Now(), c.retryCap)); err != nil {
				return err
			}
		default:
			return apiError(resp.StatusCode, data)
		}
	}
}

// authorize attaches the configured API key, if any.
func (c *Client) authorize(h http.Header) {
	if c.apiKey != "" {
		h.Set("Authorization", "Bearer "+c.apiKey)
	}
}

// Health checks the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", "", nil, nil)
}

// Register registers a plant topology.
func (c *Client) Register(ctx context.Context, topo wire.Topology) (wire.RegisterAck, error) {
	buf, err := json.Marshal(topo)
	if err != nil {
		return wire.RegisterAck{}, err
	}
	var ack wire.RegisterAck
	err = c.do(ctx, http.MethodPost, "/v1/plants", "application/json", buf, &ack)
	return ack, err
}

// Plants lists the registered plant ids.
func (c *Client) Plants(ctx context.Context) ([]string, error) {
	var list wire.PlantList
	if err := c.do(ctx, http.MethodGet, "/v1/plants", "", nil, &list); err != nil {
		return nil, err
	}
	return list.Plants, nil
}

// Ingest streams one batch of records as NDJSON, retrying on 429
// backpressure until admitted (or the retry budget runs out).
func (c *Client) Ingest(ctx context.Context, plantID string, recs []wire.Record) (wire.IngestAck, error) {
	body, err := wire.EncodeNDJSON(recs)
	if err != nil {
		return wire.IngestAck{}, err
	}
	return c.IngestBody(ctx, plantID, "application/x-ndjson", body)
}

// IngestBinary streams one batch of records as a binary columnar
// frame (wire.ContentTypeBinary) — the zero-copy ingest path the
// server admits without re-encoding through JSON. Same 429 retry
// behaviour as Ingest; the two paths produce byte-identical query
// answers.
func (c *Client) IngestBinary(ctx context.Context, plantID string, recs []wire.Record) (wire.IngestAck, error) {
	body, err := wire.EncodeBinary(recs)
	if err != nil {
		return wire.IngestAck{}, err
	}
	return c.IngestBody(ctx, plantID, wire.ContentTypeBinary, body)
}

// IngestBody posts a raw pre-encoded ingest body (NDJSON, JSON array,
// plantsim CSV, or binary columnar frames — see wire.DecodeRecords
// for the accepted formats) with the same 429 retry behaviour as
// Ingest.
func (c *Client) IngestBody(ctx context.Context, plantID, contentType string, body []byte) (wire.IngestAck, error) {
	var ack wire.IngestAck
	err := c.do(ctx, http.MethodPost, "/v1/plants/"+url.PathEscape(plantID)+"/ingest", contentType, body, &ack)
	return ack, err
}

// Jobs uploads job metadata (level-2 setup + CAQ vectors).
func (c *Client) Jobs(ctx context.Context, plantID string, metas []wire.JobMeta) (wire.JobsAck, error) {
	buf, err := json.Marshal(metas)
	if err != nil {
		return wire.JobsAck{}, err
	}
	var ack wire.JobsAck
	err = c.do(ctx, http.MethodPost, "/v1/plants/"+url.PathEscape(plantID)+"/jobs", "application/json", buf, &ack)
	return ack, err
}

// ReportQuery selects what a Report call asks for. The zero value
// means: default start level (phase), the server's default top-K, all
// machines.
type ReportQuery struct {
	Level   Level  // 0 = server default (phase)
	Top     int    // 0 = server default (20)
	Machine string // non-empty = single-machine drill-down
}

// Report fetches the fleet outlier report.
func (c *Client) Report(ctx context.Context, plantID string, q ReportQuery) (wire.ReportResponse, error) {
	vals := url.Values{}
	if q.Level != 0 {
		vals.Set("level", strconv.Itoa(int(q.Level)))
	}
	if q.Top > 0 {
		vals.Set("top", strconv.Itoa(q.Top))
	}
	if q.Machine != "" {
		vals.Set("machine", q.Machine)
	}
	path := "/v1/plants/" + url.PathEscape(plantID) + "/report"
	if len(vals) > 0 {
		path += "?" + vals.Encode()
	}
	var rep wire.ReportResponse
	err := c.do(ctx, http.MethodGet, path, "", nil, &rep)
	return rep, err
}

// Rollup fetches the incremental aggregates at the given level
// (sensor|phase|machine|line|plant; empty = plant).
func (c *Client) Rollup(ctx context.Context, plantID, level string) (wire.RollupResponse, error) {
	path := "/v1/plants/" + url.PathEscape(plantID) + "/rollup"
	if level != "" {
		path += "?level=" + url.QueryEscape(level)
	}
	var roll wire.RollupResponse
	err := c.do(ctx, http.MethodGet, path, "", nil, &roll)
	return roll, err
}

// CubeQuery selects one OLAP question for the Cube call. The zero
// value is a full-cube slice. It is the wire grammar itself — the same
// Encode the server's handler decodes with, so the two sides cannot
// drift.
type CubeQuery = wire.CubeQueryParams

// Cube runs one OLAP query — slice, rollup, members, or drilldown —
// against the plant's incrementally maintained cube (dimensions
// line × machine × job × phase × sensor). Cells come back in
// deterministic coordinate order.
func (c *Client) Cube(ctx context.Context, plantID string, q CubeQuery) (wire.CubeResponse, error) {
	vals := q.Encode()
	path := "/v1/plants/" + url.PathEscape(plantID) + "/cube"
	if len(vals) > 0 {
		path += "?" + vals.Encode()
	}
	var resp wire.CubeResponse
	err := c.do(ctx, http.MethodGet, path, "", nil, &resp)
	return resp, err
}

// CubeSlice fetches the cells matching the dimension=member
// constraints at full dimensionality (nil = every materialised cell).
func (c *Client) CubeSlice(ctx context.Context, plantID string, where map[string]string) (wire.CubeResponse, error) {
	return c.Cube(ctx, plantID, CubeQuery{Op: wire.CubeOpSlice, Where: where})
}

// CubeRollup aggregates the cube onto the kept dimensions, optionally
// within a where-constrained slice.
func (c *Client) CubeRollup(ctx context.Context, plantID string, keep []string, where map[string]string) (wire.CubeResponse, error) {
	return c.Cube(ctx, plantID, CubeQuery{Op: wire.CubeOpRollup, Keep: keep, Where: where})
}

// CubeMembers lists the distinct members of one dimension.
func (c *Client) CubeMembers(ctx context.Context, plantID, dim string) (wire.CubeResponse, error) {
	return c.Cube(ctx, plantID, CubeQuery{Op: wire.CubeOpMembers, Dim: dim})
}

// CubeDrilldown expands one dimension inside a where-constrained
// slice: one aggregate cell per member of dim.
func (c *Client) CubeDrilldown(ctx context.Context, plantID, dim string, where map[string]string) (wire.CubeResponse, error) {
	return c.Cube(ctx, plantID, CubeQuery{Op: wire.CubeOpDrilldown, Dim: dim, Where: where})
}

// Alerts fetches up to limit recent streaming alerts (0 = server
// default, negative = everything the server's ring holds).
func (c *Client) Alerts(ctx context.Context, plantID string, limit int) (wire.AlertsResponse, error) {
	path := "/v1/plants/" + url.PathEscape(plantID) + "/alerts"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	} else if limit < 0 {
		path += "?limit=0" // the server treats an explicit 0 as unlimited
	}
	var al wire.AlertsResponse
	err := c.do(ctx, http.MethodGet, path, "", nil, &al)
	return al, err
}

// Stats fetches one plant's ingest counters and queue depths.
func (c *Client) Stats(ctx context.Context, plantID string) (wire.StatsResponse, error) {
	var st wire.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/plants/"+url.PathEscape(plantID)+"/stats", "", nil, &st)
	return st, err
}

// WaitDrained polls the stats endpoint until at least records samples
// were folded through the pipeline and every shard queue is empty —
// the point where a report reflects everything uploaded so far. It
// watches received_records, which counts idempotent replays too:
// re-sending an already-ingested trace (the 429-retry and restart
// replay stories) still drains, where the fresh-cells-only
// accepted_records would never advance and the wait would hang.
//
// Cancel or deadline the context to bound the wait: when it fires the
// error matches both the context cause and ErrDrainTimeout
// (errors.Is), and carries the last observed progress — the signature
// of a wedged shard worker is a queue depth that never reaches zero.
func (c *Client) WaitDrained(ctx context.Context, plantID string, records uint64) error {
	var last wire.StatsResponse
	seen := false
	for {
		st, err := c.Stats(ctx, plantID)
		if err != nil {
			if ctx.Err() != nil {
				return drainTimeoutErr(plantID, records, last, seen, ctx.Err())
			}
			return err
		}
		last, seen = st, true
		drained := st.ReceivedRecords >= records
		for _, d := range st.QueueDepths {
			if d > 0 {
				drained = false
			}
		}
		if drained {
			return nil
		}
		if err := sleepCtx(ctx, 10*time.Millisecond); err != nil {
			return drainTimeoutErr(plantID, records, last, seen, err)
		}
	}
}

// drainTimeoutErr wraps a context expiry into the typed drain-timeout
// error, carrying the last observed drain progress.
func drainTimeoutErr(plantID string, want uint64, last wire.StatsResponse, seen bool, cause error) error {
	if !seen {
		return fmt.Errorf("%w: plant %s: no stats observed before the deadline: %w",
			ErrDrainTimeout, plantID, cause)
	}
	return fmt.Errorf("%w: plant %s at %d/%d received records, queue depths %v: %w",
		ErrDrainTimeout, plantID, last.ReceivedRecords, want, last.QueueDepths, cause)
}

// Backup downloads a consistent snapshot of one plant — the binary
// format `hodctl restore` (POST /restore) accepts.
func (c *Client) Backup(ctx context.Context, plantID string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/plants/"+url.PathEscape(plantID)+"/backup", nil)
	if err != nil {
		return nil, err
	}
	c.authorize(req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp.StatusCode, data)
	}
	return data, nil
}

// Restore recreates a plant from a Backup payload. The id must not be
// registered on the target server yet; the topology rides inside the
// backup.
func (c *Client) Restore(ctx context.Context, plantID string, backup []byte) (wire.RestoreAck, error) {
	var ack wire.RestoreAck
	err := c.do(ctx, http.MethodPost, "/v1/plants/"+url.PathEscape(plantID)+"/restore",
		"application/octet-stream", backup, &ack)
	return ack, err
}

// ClusterStatus fetches a cluster router's membership table and the
// placement of every plant it routes.
func (c *Client) ClusterStatus(ctx context.Context) (wire.ClusterStatusResponse, error) {
	var st wire.ClusterStatusResponse
	err := c.do(ctx, http.MethodGet, "/v1/cluster/status", "", nil, &st)
	return st, err
}

// ClusterJoin adds a node to the cluster and rebalances ~1/N of the
// plants onto it.
func (c *Client) ClusterJoin(ctx context.Context, nodeID, addr string) (wire.ClusterAck, error) {
	return c.clusterNodeOp(ctx, "/v1/cluster/join", wire.ClusterNodeRequest{ID: nodeID, Addr: addr})
}

// ClusterDrain marks a node draining: it takes no new placements and
// its plants move off it.
func (c *Client) ClusterDrain(ctx context.Context, nodeID string) (wire.ClusterAck, error) {
	return c.clusterNodeOp(ctx, "/v1/cluster/drain", wire.ClusterNodeRequest{ID: nodeID})
}

// ClusterFail declares a node dead: its plants' warm standbys promote
// to owner without data movement and fresh standbys are seeded.
func (c *Client) ClusterFail(ctx context.Context, nodeID string) (wire.ClusterAck, error) {
	return c.clusterNodeOp(ctx, "/v1/cluster/fail", wire.ClusterNodeRequest{ID: nodeID})
}

// ClusterRebalance re-runs placement for every plant and moves the
// misplaced ones to their rendezvous owner.
func (c *Client) ClusterRebalance(ctx context.Context) (wire.ClusterAck, error) {
	var ack wire.ClusterAck
	err := c.do(ctx, http.MethodPost, "/v1/cluster/rebalance", "application/json", []byte("{}"), &ack)
	return ack, err
}

func (c *Client) clusterNodeOp(ctx context.Context, path string, req wire.ClusterNodeRequest) (wire.ClusterAck, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return wire.ClusterAck{}, err
	}
	var ack wire.ClusterAck
	err = c.do(ctx, http.MethodPost, path, "application/json", buf, &ack)
	return ack, err
}

// BatchStream accumulates records and flushes them through Ingest in
// fixed-size NDJSON batches — the shape uploader loops want. Not safe
// for concurrent use; run one stream per uploader goroutine.
type BatchStream struct {
	c       *Client
	plantID string
	size    int
	binary  bool
	buf     []wire.Record
	ack     wire.IngestAck // accumulated totals
	batches int
}

// BatchStream starts a batching uploader for one plant. batchSize <= 0
// defaults to 2000 records per request.
func (c *Client) BatchStream(plantID string, batchSize int) *BatchStream {
	if batchSize <= 0 {
		batchSize = 2000
	}
	return &BatchStream{c: c, plantID: plantID, size: batchSize, buf: make([]wire.Record, 0, batchSize)}
}

// Binary switches the stream onto the binary columnar frame encoding
// (wire.ContentTypeBinary) instead of NDJSON. Returns the stream for
// chaining: c.BatchStream(id, n).Binary().
func (b *BatchStream) Binary() *BatchStream {
	b.binary = true
	return b
}

// Add buffers one record, flushing automatically when the batch fills.
func (b *BatchStream) Add(ctx context.Context, rec wire.Record) error {
	b.buf = append(b.buf, rec)
	if len(b.buf) >= b.size {
		return b.Flush(ctx)
	}
	return nil
}

// Flush sends the buffered records (if any) as one batch.
func (b *BatchStream) Flush(ctx context.Context) error {
	if len(b.buf) == 0 {
		return nil
	}
	var (
		ack wire.IngestAck
		err error
	)
	if b.binary {
		ack, err = b.c.IngestBinary(ctx, b.plantID, b.buf)
	} else {
		ack, err = b.c.Ingest(ctx, b.plantID, b.buf)
	}
	if err != nil {
		return err
	}
	b.buf = b.buf[:0]
	b.batches++
	b.ack.Records += ack.Records
	b.ack.Rejected += ack.Rejected
	if b.ack.FirstRejection == "" {
		b.ack.FirstRejection = ack.FirstRejection
	}
	return nil
}

// Ack returns the accumulated acknowledgement totals of every flushed
// batch so far.
func (b *BatchStream) Ack() wire.IngestAck { return b.ack }

// Batches reports how many batches were flushed so far.
func (b *BatchStream) Batches() int { return b.batches }
