package hod_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateSurface = flag.Bool("update-surface", false, "rewrite testdata/api_surface.txt from the current exported API")

// TestAPISurface is the API guard of the public SDK: it derives the
// exported surface (funcs, methods, types with exported fields,
// consts, vars) of pkg/hod and pkg/hod/wire from the source and
// compares it to the checked-in snapshot. Changing the public API —
// adding, removing, or re-signing anything exported — fails this test
// until the snapshot is regenerated with
//
//	go test ./pkg/hod -run TestAPISurface -update-surface
//
// which turns every surface change into an explicit, reviewable diff.
func TestAPISurface(t *testing.T) {
	var b strings.Builder
	for _, pkg := range []struct{ dir, name string }{
		{".", "hod"},
		{"wire", "wire"},
	} {
		fmt.Fprintf(&b, "package %s\n\n", pkg.name)
		for _, line := range surfaceLines(t, pkg.dir, pkg.name) {
			b.WriteString(line)
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	got := b.String()

	path := filepath.Join("testdata", "api_surface.txt")
	if *updateSurface {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing API snapshot (run `go test ./pkg/hod -run TestAPISurface -update-surface` once): %v", err)
	}
	if got != string(want) {
		t.Errorf("the exported API surface changed without updating the snapshot.\n"+
			"If the change is intended, regenerate with:\n"+
			"  go test ./pkg/hod -run TestAPISurface -update-surface\n"+
			"and review the diff.\n\n--- snapshot ---\n%s\n--- current ---\n%s", want, got)
	}
}

// surfaceLines renders one package's exported identifiers as sorted,
// deterministic text lines.
func surfaceLines(t *testing.T, dir, pkgName string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs[pkgName]
	if !ok {
		t.Fatalf("package %q not found in %s (got %v)", pkgName, dir, pkgs)
	}
	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if line, ok := funcLine(fset, d); ok {
					lines = append(lines, line)
				}
			case *ast.GenDecl:
				lines = append(lines, genLines(d)...)
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// funcLine renders one exported function or method signature. Methods
// on unexported receiver types are skipped.
func funcLine(fset *token.FileSet, d *ast.FuncDecl) (string, bool) {
	if !d.Name.IsExported() {
		return "", false
	}
	if d.Recv != nil && !ast.IsExported(receiverTypeName(d.Recv)) {
		return "", false
	}
	clone := *d
	clone.Body = nil
	clone.Doc = nil
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, &clone); err != nil {
		return "", false
	}
	// Collapse any multi-line signature into one canonical line.
	return strings.Join(strings.Fields(buf.String()), " "), true
}

func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	expr := recv.List[0].Type
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// genLines renders the exported parts of one const/var/type block.
func genLines(d *ast.GenDecl) []string {
	var out []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				kind := "var"
				if d.Tok == token.CONST {
					kind = "const"
				}
				line := kind + " " + name.Name
				if s.Type != nil {
					line += " " + types.ExprString(s.Type)
				}
				out = append(out, line)
			}
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			out = append(out, typeLines(s)...)
		}
	}
	return out
}

// typeLines renders one exported type: aliases with their target,
// structs with their exported fields, interfaces with their methods,
// everything else with its underlying type expression.
func typeLines(s *ast.TypeSpec) []string {
	name := s.Name.Name
	if s.Assign != 0 {
		return []string{"type " + name + " = " + types.ExprString(s.Type)}
	}
	switch u := s.Type.(type) {
	case *ast.StructType:
		out := []string{"type " + name + " struct"}
		for _, f := range u.Fields.List {
			ftype := types.ExprString(f.Type)
			if len(f.Names) == 0 { // embedded
				if ast.IsExported(strings.TrimPrefix(ftype, "*")) {
					out = append(out, "  "+name+" embeds "+ftype)
				}
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					out = append(out, "  "+name+"."+fn.Name+" "+ftype)
				}
			}
		}
		return out
	case *ast.InterfaceType:
		out := []string{"type " + name + " interface"}
		for _, m := range u.Methods.List {
			for _, mn := range m.Names {
				if mn.IsExported() {
					out = append(out, "  "+name+"."+mn.Name+" "+types.ExprString(m.Type))
				}
			}
		}
		return out
	default:
		return []string{"type " + name + " " + types.ExprString(s.Type)}
	}
}
