package hod_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/pkg/hod"
	"repro/pkg/hod/wire"
)

// failoverFront simulates a cluster router mid-failover: the first n
// requests answer 503 with the given failover code and Retry-After: 0,
// then traffic passes to ok.
func failoverFront(n int32, code string, ok http.HandlerFunc) (*httptest.Server, *atomic.Int32) {
	var served atomic.Int32
	var remaining atomic.Int32
	remaining.Store(n)
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		if remaining.Add(-1) >= 0 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			var env wire.ErrorEnvelope
			env.Err.Code = code
			env.Err.Message = "ownership settling"
			json.NewEncoder(w).Encode(env)
			return
		}
		ok(w, r)
	})), &served
}

// TestClientRetriesFailover503 pins the failover contract the cluster
// router relies on: a 503 carrying the not_owner or failover envelope
// (plus Retry-After) is retried automatically — the proxied request
// lands once ownership settles, and the caller never sees the blip.
func TestClientRetriesFailover503(t *testing.T) {
	for _, code := range []string{wire.CodeNotOwner, wire.CodeFailover} {
		t.Run(code, func(t *testing.T) {
			front, served := failoverFront(2, code, func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusAccepted)
				json.NewEncoder(w).Encode(wire.IngestAck{Records: 1})
			})
			defer front.Close()
			c := hod.NewClient(front.URL)
			ack, err := c.Ingest(context.Background(), "p1", []wire.Record{{Machine: "m", Sensor: "s", Value: 1}})
			if err != nil {
				t.Fatalf("ingest across failover: %v", err)
			}
			if ack.Records != 1 {
				t.Fatalf("ack = %+v, want 1 record", ack)
			}
			if got := served.Load(); got != 3 {
				t.Fatalf("server saw %d requests, want 3 (two 503s + success)", got)
			}
			if c.Retried() != 2 {
				t.Fatalf("Retried() = %d, want 2", c.Retried())
			}
		})
	}
}

// TestClientFailoverExhaustion pins the error surface when failover
// never settles: the retry budget runs out and the returned *APIError
// satisfies errors.Is(err, ErrFailover) — for both envelope codes —
// so callers branch on the sentinel, not on strings.
func TestClientFailoverExhaustion(t *testing.T) {
	for _, code := range []string{wire.CodeNotOwner, wire.CodeFailover} {
		t.Run(code, func(t *testing.T) {
			front, _ := failoverFront(1<<30, code, nil)
			defer front.Close()
			c := hod.NewClient(front.URL, hod.WithMaxRetries(2))
			_, err := c.Ingest(context.Background(), "p1", []wire.Record{{Machine: "m", Sensor: "s", Value: 1}})
			if err == nil {
				t.Fatal("ingest succeeded against a permanently failing-over front")
			}
			if !errors.Is(err, hod.ErrFailover) {
				t.Fatalf("error %v does not satisfy errors.Is(_, ErrFailover)", err)
			}
			var apiErr *hod.APIError
			if !errors.As(err, &apiErr) || apiErr.Code != code {
				t.Fatalf("error %v does not carry the %s envelope", err, code)
			}
		})
	}
}

// TestOther503NotRetried pins the boundary: a plain 503 without the
// failover envelope (a server shutting down) must stay fatal — one
// request, no retries, and no ErrFailover mapping.
func TestOther503NotRetried(t *testing.T) {
	var served atomic.Int32
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		var env wire.ErrorEnvelope
		env.Err.Code = wire.CodeShuttingDown
		env.Err.Message = "closing"
		json.NewEncoder(w).Encode(env)
	}))
	defer front.Close()
	c := hod.NewClient(front.URL)
	_, err := c.Ingest(context.Background(), "p1", []wire.Record{{Machine: "m", Sensor: "s", Value: 1}})
	if err == nil || errors.Is(err, hod.ErrFailover) {
		t.Fatalf("shutdown 503 mapped to failover: %v", err)
	}
	if !errors.Is(err, hod.ErrShuttingDown) {
		t.Fatalf("error %v is not ErrShuttingDown", err)
	}
	if served.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry)", served.Load())
	}
}
