package hod

import (
	"net/http"
	"testing"
	"time"
)

// TestRetryAfterForms pins the Retry-After grammar: RFC 9110 allows
// delta-seconds and an HTTP-date, and both must parse — the date form
// used to fall back to the 1s default silently. Everything is clamped
// to the client's retry cap (MaxRetryAfter by default).
func TestRetryAfterForms(t *testing.T) {
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	resp := func(ra string) *http.Response {
		h := http.Header{}
		if ra != "" {
			h.Set("Retry-After", ra)
		}
		return &http.Response{Header: h}
	}
	cases := []struct {
		name, ra string
		limit    time.Duration
		want     time.Duration
	}{
		{"missing", "", MaxRetryAfter, time.Second},
		{"missing under tight cap", "", 100 * time.Millisecond, 100 * time.Millisecond},
		{"garbage under tight cap", "soon", 100 * time.Millisecond, 100 * time.Millisecond},
		{"delta seconds", "5", MaxRetryAfter, 5 * time.Second},
		{"delta zero", "0", MaxRetryAfter, 0},
		{"delta negative", "-3", MaxRetryAfter, time.Second},
		{"delta beyond cap", "3600", MaxRetryAfter, MaxRetryAfter},
		{"delta overflowing duration", "10000000000", MaxRetryAfter, MaxRetryAfter},
		{"delta within raised cap", "120", 5 * time.Minute, 2 * time.Minute},
		{"http date future", now.Add(10 * time.Second).UTC().Format(http.TimeFormat), MaxRetryAfter, 10 * time.Second},
		{"http date past", now.Add(-time.Minute).UTC().Format(http.TimeFormat), MaxRetryAfter, 0},
		{"http date beyond cap", now.Add(time.Hour).UTC().Format(http.TimeFormat), MaxRetryAfter, MaxRetryAfter},
		{"http date within raised cap", now.Add(2 * time.Minute).UTC().Format(http.TimeFormat), 5 * time.Minute, 2 * time.Minute},
		{"garbage", "soon", MaxRetryAfter, time.Second},
	}
	for _, c := range cases {
		if got := retryAfter(resp(c.ra), now, c.limit); got != c.want {
			t.Errorf("%s: retryAfter(%q, limit %v) = %v, want %v", c.name, c.ra, c.limit, got, c.want)
		}
	}
}
