package hod

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/plant"
	"repro/pkg/hod/wire"
)

// SimConfig parameterises the built-in plant simulator (an additive-
// manufacturing plant with redundant sensors, injected process faults
// and lying thermistors). Zero values take the simulator defaults.
type SimConfig struct {
	Seed            int64
	Lines           int
	MachinesPerLine int
	JobsPerMachine  int
	PhaseSamples    int // samples per phase at level-1 resolution
	// FaultRate is the per-job probability of a process fault;
	// MeasurementErrorRate the per-job probability of a lying sensor.
	FaultRate            float64
	MeasurementErrorRate float64
}

// Plant is an opaque handle on a five-level production data set — the
// input of the embeddable engine.
type Plant struct {
	p *plant.Plant
}

// Simulate builds a simulated plant with ground-truth fault and
// measurement-error events.
func Simulate(cfg SimConfig) (*Plant, error) {
	p, err := plant.Simulate(plant.Config{
		Seed:                 cfg.Seed,
		Lines:                cfg.Lines,
		MachinesPerLine:      cfg.MachinesPerLine,
		JobsPerMachine:       cfg.JobsPerMachine,
		PhaseSamples:         cfg.PhaseSamples,
		FaultRate:            cfg.FaultRate,
		MeasurementErrorRate: cfg.MeasurementErrorRate,
	})
	if err != nil {
		return nil, err
	}
	return &Plant{p: p}, nil
}

// Machines lists the plant's machine ids in topology order.
func (p *Plant) Machines() []string {
	out := make([]string, 0, 8)
	for _, l := range p.p.Lines {
		for _, m := range l.Machines {
			out = append(out, m.ID)
		}
	}
	return out
}

// Topology renders the plant's line/machine layout as the wire
// topology a server registration expects.
func (p *Plant) Topology(id string) wire.Topology {
	topo := wire.Topology{ID: id}
	for _, l := range p.p.Lines {
		tl := wire.TopoLine{ID: l.ID}
		for _, m := range l.Machines {
			tl.Machines = append(tl.Machines, m.ID)
		}
		topo.Lines = append(topo.Lines, tl)
	}
	return topo
}

// Records flattens every machine sensor sample of the plant into wire
// records, in topology order — ready for Client.Ingest.
func (p *Plant) Records() []wire.Record {
	var out []wire.Record
	for _, m := range p.p.Machines() {
		for _, job := range m.Jobs {
			for _, ph := range job.Phases {
				for _, dim := range ph.Sensors.Dims {
					for t, v := range dim.Values {
						out = append(out, wire.Record{
							Machine: m.ID, Job: job.ID, Phase: ph.Name,
							Sensor: dim.Name, T: t, Value: v,
						})
					}
				}
			}
		}
	}
	return out
}

// EnvRecords flattens the shop-floor climate series into wire records.
func (p *Plant) EnvRecords() []wire.Record {
	var out []wire.Record
	for _, dim := range p.p.Environment.Dims {
		for t, v := range dim.Values {
			out = append(out, wire.Record{Env: true, Sensor: dim.Name, T: t, Value: v})
		}
	}
	return out
}

// JobMetas extracts every job's level-2 vectors (setup + CAQ) as wire
// job metadata — ready for Client.Jobs.
func (p *Plant) JobMetas() []wire.JobMeta {
	var out []wire.JobMeta
	for _, m := range p.p.Machines() {
		for _, job := range m.Jobs {
			out = append(out, wire.JobMeta{
				Machine: m.ID, Job: job.ID,
				Setup: job.Setup, CAQ: job.CAQ, Faulty: job.Faulty,
			})
		}
	}
	return out
}

// SimEvent is one injected ground-truth anomaly of a simulated plant.
type SimEvent struct {
	Kind    string // "process-fault" or "measurement-error"
	Machine string
	Job     string
	Phase   string
	Sensor  string // affected sensor for measurement errors, "" for faults
}

// Events lists the simulator's injected ground truth, for evaluating
// detection output against what actually happened.
func (p *Plant) Events() []SimEvent {
	out := make([]SimEvent, 0, len(p.p.Events))
	for _, e := range p.p.Events {
		out = append(out, SimEvent{
			Kind: e.Kind.String(), Machine: e.Machine,
			Job: e.Job, Phase: e.Phase, Sensor: e.Sensor,
		})
	}
	return out
}

// Cache shares the plant-wide score computations (environment tracker,
// production cube, sibling line scores) across several engines bound
// to the same plant. All methods of an engine using it stay safe for
// concurrent use.
type Cache struct {
	p *Plant
	c *core.PlantCache
}

// NewCache builds a shareable cache for the given plant.
func NewCache(p *Plant) *Cache {
	return &Cache{p: p, c: core.NewPlantCache(p.p)}
}

// Thresholds carries the per-level detection thresholds of Algorithm 1
// in robust-z-like units. Zero values take the engine defaults.
type Thresholds struct {
	Phase       float64
	Job         float64
	Environment float64
	Line        float64
	Production  float64
}

// Engine embeds Algorithm 1: hierarchical outlier detection over one
// plant, per machine or fleet-wide. Build with NewEngine; an Engine is
// safe for concurrent use (detection runs for the same machine are
// serialized, distinct machines proceed in parallel).
type Engine struct {
	plant       *Plant
	cache       *core.PlantCache
	workers     int
	naivePhase  bool
	softSupport bool
	maxOutliers int
	thresholds  Thresholds
	allowed     map[string]bool // technique restriction; nil = all

	cacheOwner *Plant // plant the WithCache cache was built for

	mu     sync.Mutex
	hier   map[string]*core.Hierarchy
	hierMu map[string]*sync.Mutex
}

// Option tunes an Engine at construction time.
type Option func(*Engine)

// WithWorkers bounds the parallel fan-out of DetectFleet across
// machines (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// WithNaivePhase switches the phase-level detector from the job-cycle
// profile to a plain global robust z — the "wrong algorithm for the
// level" ablation showing why Algorithm 1's ChooseAlgorithm step
// matters.
func WithNaivePhase() Option { return func(e *Engine) { e.naivePhase = true } }

// WithSoftSensorSupport enables virtual redundancy: sensors without a
// physical twin get their support from a soft sensor predicting them
// out of the peer channels.
func WithSoftSensorSupport() Option { return func(e *Engine) { e.softSupport = true } }

// WithMaxOutliers bounds each machine's reported outlier list
// (default 64).
func WithMaxOutliers(n int) Option { return func(e *Engine) { e.maxOutliers = n } }

// WithThresholds overrides the per-level detection thresholds.
func WithThresholds(t Thresholds) Option { return func(e *Engine) { e.thresholds = t } }

// WithTechniques restricts the registry techniques reachable through
// Engine.Technique to the named set. NewEngine fails on unknown names.
func WithTechniques(names ...string) Option {
	return func(e *Engine) {
		e.allowed = make(map[string]bool, len(names))
		for _, n := range names {
			e.allowed[n] = true
		}
	}
}

// WithCache shares a plant-wide computation cache with other engines
// over the same plant. NewEngine fails when the cache was built for a
// different plant.
func WithCache(c *Cache) Option {
	return func(e *Engine) { e.cache = c.c; e.cacheOwner = c.p }
}

// NewEngine binds an engine to a plant. The zero option set runs the
// paper's Algorithm 1 with default thresholds on all machines.
func NewEngine(p *Plant, opts ...Option) (*Engine, error) {
	if p == nil || p.p == nil {
		return nil, fmt.Errorf("hod: NewEngine needs a plant")
	}
	e := &Engine{
		plant:  p,
		hier:   map[string]*core.Hierarchy{},
		hierMu: map[string]*sync.Mutex{},
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.cacheOwner != nil && e.cacheOwner != p {
		return nil, fmt.Errorf("hod: WithCache cache was built for a different plant")
	}
	if e.cache == nil {
		e.cache = core.NewPlantCache(p.p)
	}
	for name := range e.allowed {
		if _, err := lookupTechnique(name); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Machines lists the machine ids the engine can detect on.
func (e *Engine) Machines() []string { return e.plant.Machines() }

func (e *Engine) coreOptions() core.Options {
	return core.Options{
		PhaseThreshold:      e.thresholds.Phase,
		JobThreshold:        e.thresholds.Job,
		EnvThreshold:        e.thresholds.Environment,
		LineThreshold:       e.thresholds.Line,
		ProductionThreshold: e.thresholds.Production,
		MaxOutliers:         e.maxOutliers,
		SoftSensorSupport:   e.softSupport,
	}
}

// hierarchy returns (building once) the machine's hierarchy plus its
// per-machine lock.
func (e *Engine) hierarchy(machineID string) (*core.Hierarchy, *sync.Mutex, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if h, ok := e.hier[machineID]; ok {
		return h, e.hierMu[machineID], nil
	}
	if _, err := e.plant.p.MachineByID(machineID); err != nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownMachine, machineID)
	}
	h, err := core.NewHierarchyWithCache(e.plant.p, machineID, e.cache)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: machine %q: %v", ErrNoData, machineID, err)
	}
	h.NaivePhase = e.naivePhase
	mu := &sync.Mutex{}
	e.hier[machineID] = h
	e.hierMu[machineID] = mu
	return h, mu, nil
}

// detectCore runs Algorithm 1 for one machine and returns the raw core
// report. The per-machine lock serializes runs on the same hierarchy
// (its lazy score memos are not safe to fill twice concurrently).
func (e *Engine) detectCore(ctx context.Context, machineID string, level Level) (*core.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !level.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrInvalidLevel, int(level))
	}
	h, mu, err := e.hierarchy(machineID)
	if err != nil {
		return nil, err
	}
	mu.Lock()
	defer mu.Unlock()
	return core.FindHierarchicalOutliers(h, core.Level(level), e.coreOptions())
}

// Detect runs hierarchical outlier detection for one machine starting
// at the given level, returning the ranked findings and any
// measurement-error warnings.
func (e *Engine) Detect(ctx context.Context, machineID string, level Level) (*Report, error) {
	rep, err := e.detectCore(ctx, machineID, level)
	if err != nil {
		return nil, err
	}
	out := &Report{Machine: machineID, StartLevel: level}
	out.Outliers = make([]Outlier, len(rep.Outliers))
	for i, o := range rep.Outliers {
		out.Outliers[i] = o.Wire()
	}
	out.Warnings = make([]Warning, len(rep.Warnings))
	for i, w := range rep.Warnings {
		out.Warnings[i] = w.Wire()
	}
	return out, nil
}

// DetectFleet runs Detect on every machine of the plant (fanned out
// over the WithWorkers bound) and ranks the tagged findings fleet-wide
// with the paper's combined-importance order.
func (e *Engine) DetectFleet(ctx context.Context, level Level) (*FleetReport, error) {
	machines := e.Machines()
	reps, err := parallel.Map(len(machines), e.workers, func(i int) (*core.Report, error) {
		return e.detectCore(ctx, machines[i], level)
	})
	if err != nil {
		return nil, err
	}
	fr := &FleetReport{Level: level, Machines: machines}
	type tagged struct {
		machine string
		outlier core.Outlier
	}
	var all []tagged
	for i, rep := range reps {
		for _, o := range rep.Outliers {
			all = append(all, tagged{machines[i], o})
		}
		for _, w := range rep.Warnings {
			fr.Warnings = append(fr.Warnings, wire.FleetWarning{Machine: machines[i], Reason: w.Reason})
		}
	}
	fr.TotalOutliers = len(all)
	sort.SliceStable(all, func(i, j int) bool { return core.RankLess(all[i].outlier, all[j].outlier) })
	fr.Outliers = make([]wire.FleetOutlier, len(all))
	for i, t := range all {
		fr.Outliers[i] = wire.FleetOutlier{Machine: t.machine, Outlier: t.outlier.Wire()}
	}
	return fr, nil
}
