// Package hod is the public SDK of the hierarchical outlier detection
// system (a reproduction of Hoppenstedt et al., EDBT 2019, grown into
// a serving stack). It has two faces:
//
//   - Engine — embed Algorithm 1 in-process: simulate or bind a plant,
//     then detect hierarchical outliers per machine or fleet-wide, with
//     functional options for workers, technique restriction, phase
//     ablation, and cache sharing. The 21 Table-1 detection techniques
//     are available through Technique.
//
//   - Client — a typed client for the v1 HTTP API served by hodserve:
//     register plants, stream sample batches (with automatic
//     429 + Retry-After backoff over the idempotent ingest store),
//     upload job metadata, and query reports, roll-ups, alerts, and
//     stats. Request and response bodies are the shared wire types of
//     pkg/hod/wire — the same structs the server compiles against.
//
// Errors carry errors.Is-able sentinels (ErrUnknownMachine,
// ErrBackpressure, ErrNotFitted, ...) whether they surface from the
// embedded engine or from the HTTP API's structured error envelope.
package hod

import (
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/pkg/hod/wire"
)

// Level is one of the five production levels of the paper's Fig. 2.
// It is the shared wire type, so engine results and HTTP responses
// speak the same enum.
type Level = wire.Level

// The five hierarchy levels, bottom-up.
const (
	LevelPhase          = wire.LevelPhase
	LevelJob            = wire.LevelJob
	LevelEnvironment    = wire.LevelEnvironment
	LevelProductionLine = wire.LevelProductionLine
	LevelProduction     = wire.LevelProduction
)

// ParseLevel accepts a level by number ("1".."5") or by name.
func ParseLevel(s string) (Level, error) { return wire.ParseLevel(s) }

// Outlier is one finding of Algorithm 1: the paper's triple
// ⟨global score, outlierness, support⟩ plus its location.
type Outlier = wire.Outlier

// Warning is a measurement-error warning from Algorithm 1's downward
// pass.
type Warning = wire.Warning

// Report is the outcome of one hierarchical detection run on one
// machine.
type Report struct {
	Machine    string
	StartLevel Level
	Outliers   []Outlier
	Warnings   []Warning
}

// FleetReport aggregates per-machine runs across a plant, ranked
// fleet-wide by the paper's combined-importance order.
type FleetReport struct {
	Level         Level
	Machines      []string
	TotalOutliers int
	Outliers      []wire.FleetOutlier
	Warnings      []wire.FleetWarning
}

// Classification is the decision rule over the outlier triple: an
// outlier with corroboration (support ≥ 0.5) that propagates upward
// (global score ≥ 2) is a process fault; an uncorroborated one is a
// suspected measurement error; everything else stays unconfirmed.
type Classification string

// The three outcome classes of Classify.
const (
	ClassFault       Classification = "process-fault"
	ClassMeasurement Classification = "measurement-error"
	ClassUnconfirmed Classification = "unconfirmed"
)

// Classify labels one outlier with the decision rule above.
func Classify(o Outlier) Classification {
	return Classification(core.Classify(core.FromWire(o)))
}

// Rank orders outliers by the paper's combined-importance order:
// global score first, then support, then outlierness. It returns a new
// slice; the input is untouched.
func Rank(outliers []Outlier) []Outlier {
	out := append([]Outlier(nil), outliers...)
	sort.SliceStable(out, func(i, j int) bool { return rankLess(out[i], out[j]) })
	return out
}

// rankLess delegates to the one comparator (core.RankLess) the fleet
// report and the server also rank with, so client-side re-ranking can
// never drift from server ranking.
func rankLess(a, b Outlier) bool {
	return core.RankLess(core.FromWire(a), core.FromWire(b))
}

// Sentinel errors of the SDK. Engine and Client both return wrapped
// values that errors.Is matches against these.
var (
	// ErrUnknownMachine — the machine id is not part of the plant (or,
	// via the client, has no data on the server).
	ErrUnknownMachine = errors.New("hod: unknown machine")
	// ErrUnknownPlant — the plant id is not registered on the server.
	ErrUnknownPlant = errors.New("hod: unknown plant")
	// ErrAlreadyRegistered — a plant with this id already exists.
	ErrAlreadyRegistered = errors.New("hod: plant already registered")
	// ErrBackpressure — the server shed the batch with 429 and the
	// client exhausted its retry budget.
	ErrBackpressure = errors.New("hod: server backpressure")
	// ErrShuttingDown — the server refuses new work while draining.
	ErrShuttingDown = errors.New("hod: server shutting down")
	// ErrNoData — detection was requested before any data arrived.
	ErrNoData = errors.New("hod: no data")
	// ErrBadRequest — the server rejected the request as malformed.
	ErrBadRequest = errors.New("hod: bad request")
	// ErrVectorDims — a job's setup/CAQ vector is longer than the
	// registered dims; the server refuses to truncate it.
	ErrVectorDims = errors.New("hod: vector exceeds registered dims")
	// ErrInvalidLevel — the level is outside 1..5.
	ErrInvalidLevel = errors.New("hod: invalid level")
	// ErrUnknownTechnique — no registry technique has this name (or it
	// is outside the engine's WithTechniques set).
	ErrUnknownTechnique = errors.New("hod: unknown technique")
	// ErrUnsupportedGranularity — the technique does not score the
	// requested granularity (see TechniqueInfo's capability flags).
	ErrUnsupportedGranularity = errors.New("hod: technique does not score this granularity")
	// ErrDrainTimeout — WaitDrained's context expired before the
	// pipelines drained (a wedged shard worker, or the wait target was
	// never reachable). The wrapped error also matches the context
	// cause and carries the last observed progress.
	ErrDrainTimeout = errors.New("hod: drain timed out")
	// ErrUnauthorized — the server runs in authenticated mode and the
	// request carried no API key, or an unknown one (WithAPIKey).
	ErrUnauthorized = errors.New("hod: unauthorized")
	// ErrForbidden — the API key's tenant grant does not cover the
	// requested plant.
	ErrForbidden = errors.New("hod: forbidden")
	// ErrRateLimited — the tenant exhausted its token bucket and the
	// client ran out of 429 retries.
	ErrRateLimited = errors.New("hod: rate limited")
	// ErrSubscriptionClosed — Next was called on (or while) a
	// subscription was closed locally via Close.
	ErrSubscriptionClosed = errors.New("hod: subscription closed")
	// ErrFailover — plant ownership is settling in a cluster (a node
	// death promoting the warm standby, or a plant move) and the retry
	// budget ran out before it did. Matches both the not_owner and
	// failover envelope codes.
	ErrFailover = errors.New("hod: cluster failover in progress")
	// ErrBadFrame — the server rejected a binary columnar batch as
	// structurally malformed (truncated, oversized, bad magic, or an
	// out-of-range dictionary index). The batch must be re-encoded, not
	// retried.
	ErrBadFrame = errors.New("hod: malformed binary frame")
)

// ErrNotFitted is returned when scoring precedes training on a
// technique that needs a Fit call.
var ErrNotFitted = detector.ErrNotFitted
