package hod

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/detector/registry"
)

// TechniqueInfo describes one detection technique of the registry: the
// paper's Table 1 row (family, citation) and which granularities it
// scores.
type TechniqueInfo struct {
	Name     string // stable identifier, e.g. "match-count"
	Title    string // Table 1 row title
	Citation string // e.g. "[16]"
	Family   string // technique family, e.g. "PM"
	// The three ✓ columns of Table 1.
	Points       bool
	Subsequences bool
	Series       bool
	// Supervised techniques need labelled training data.
	Supervised bool
}

func infoFrom(i detector.Info) TechniqueInfo {
	return TechniqueInfo{
		Name: i.Name, Title: i.Title, Citation: i.Citation, Family: string(i.Family),
		Points:       i.Capability.Points,
		Subsequences: i.Capability.Subsequences,
		Series:       i.Capability.Series,
		Supervised:   i.Supervised,
	}
}

// Techniques lists every implemented technique: the paper's 21 Table-1
// rows first (in row order), then the extras (profile similarity, LOF,
// reverse-kNN, changepoint).
func Techniques() []TechniqueInfo {
	all := registry.All()
	out := make([]TechniqueInfo, len(all))
	for i, e := range all {
		out[i] = infoFrom(e.Info)
	}
	return out
}

// WindowScore couples a window position with its score.
type WindowScore struct {
	Start  int
	Length int
	Score  float64
}

// Technique is one detection technique instance. A Technique carries
// model state (Fit trains it), so instances are not safe for
// concurrent use — construct one per goroutine.
type Technique struct {
	d detector.Detector
}

func lookupTechnique(name string) (registry.Entry, error) {
	e, err := registry.ByName(name)
	if err != nil {
		return registry.Entry{}, fmt.Errorf("%w: %q", ErrUnknownTechnique, name)
	}
	return e, nil
}

// NewTechnique constructs a fresh instance of the named registry
// technique (see Techniques for the names).
func NewTechnique(name string) (*Technique, error) {
	e, err := lookupTechnique(name)
	if err != nil {
		return nil, err
	}
	return &Technique{d: e.New()}, nil
}

// Technique constructs a fresh instance of the named technique,
// honouring the engine's WithTechniques restriction.
func (e *Engine) Technique(name string) (*Technique, error) {
	if e.allowed != nil && !e.allowed[name] {
		return nil, fmt.Errorf("%w: %q is outside the engine's technique set", ErrUnknownTechnique, name)
	}
	return NewTechnique(name)
}

// Info returns the technique's static metadata.
func (t *Technique) Info() TechniqueInfo { return infoFrom(t.d.Info()) }

// Fit builds the technique's normal-behaviour model from (assumed
// mostly clean) reference values. Techniques without a training phase
// accept any input and score directly — Fit is then a no-op.
func (t *Technique) Fit(ref []float64) error {
	if f, ok := t.d.(detector.Fitter); ok {
		return f.Fit(ref)
	}
	return nil
}

// ScorePoints returns one outlier score per sample; higher means more
// outlying. Only techniques with the Points capability implement it.
func (t *Technique) ScorePoints(values []float64) ([]float64, error) {
	ps, ok := t.d.(detector.PointScorer)
	if !ok {
		return nil, fmt.Errorf("%w: %s cannot score points", ErrUnsupportedGranularity, t.d.Info().Name)
	}
	return ps.ScorePoints(values)
}

// ScoreWindows slides a window of the given size with the given stride
// and returns one score per window. Only techniques with the
// Subsequences capability implement it.
func (t *Technique) ScoreWindows(values []float64, size, stride int) ([]WindowScore, error) {
	ws, ok := t.d.(detector.WindowScorer)
	if !ok {
		return nil, fmt.Errorf("%w: %s cannot score windows", ErrUnsupportedGranularity, t.d.Info().Name)
	}
	raw, err := ws.ScoreWindows(values, size, stride)
	if err != nil {
		return nil, err
	}
	out := make([]WindowScore, len(raw))
	for i, w := range raw {
		out[i] = WindowScore{Start: w.Start, Length: w.Length, Score: w.Score}
	}
	return out, nil
}

// ScoreSeries scores whole series within a batch, one score per
// series. Only techniques with the Series capability implement it.
func (t *Technique) ScoreSeries(batch [][]float64) ([]float64, error) {
	ss, ok := t.d.(detector.SeriesScorer)
	if !ok {
		return nil, fmt.Errorf("%w: %s cannot score series", ErrUnsupportedGranularity, t.d.Info().Name)
	}
	return ss.ScoreSeries(batch)
}

// ScoreRows scores multivariate observations (one score per row), the
// point granularity for multidimensional data such as CAQ vectors.
func (t *Technique) ScoreRows(rows [][]float64) ([]float64, error) {
	rs, ok := t.d.(detector.RowScorer)
	if !ok {
		return nil, fmt.Errorf("%w: %s cannot score rows", ErrUnsupportedGranularity, t.d.Info().Name)
	}
	return rs.ScoreRows(rows)
}
