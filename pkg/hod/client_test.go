package hod_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/pkg/hod"
	"repro/pkg/hod/wire"
)

func newTestServer(t *testing.T, opts server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(opts)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestClientRoundTrip drives every client method against the real
// internal/server over HTTP: register → ingest (NDJSON + CSV) → jobs →
// stats → rollup → report → alerts, and checks the typed responses
// line up with what the embedded engine computes on the same plant.
func TestClientRoundTrip(t *testing.T) {
	p, err := hod.Simulate(hod.SimConfig{
		Seed: 5, Lines: 2, MachinesPerLine: 2, JobsPerMachine: 4,
		PhaseSamples: 24, FaultRate: 0.4, MeasurementErrorRate: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, server.Options{Shards: 2, QueueDepth: 16, Workers: 2, MaxOutliers: 512})
	client := hod.NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	ack, err := client.Register(ctx, p.Topology("rt"))
	if err != nil {
		t.Fatal(err)
	}
	if ack.ID != "rt" || ack.Machines != len(p.Machines()) {
		t.Fatalf("register ack %+v", ack)
	}
	plants, err := client.Plants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plants, []string{"rt"}) {
		t.Fatalf("plants = %v", plants)
	}

	// Stream the machine trace through the batching uploader, the
	// environment as one NDJSON batch.
	recs := p.Records()
	bs := client.BatchStream("rt", 3000)
	for _, r := range recs {
		if err := bs.Add(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := bs.Ack(); got.Records != len(recs) || got.Rejected != 0 {
		t.Fatalf("batch stream ack %+v, want %d records", got, len(recs))
	}
	if bs.Batches() != (len(recs)+2999)/3000 {
		t.Fatalf("batches = %d", bs.Batches())
	}
	env := p.EnvRecords()
	if _, err := client.Ingest(ctx, "rt", env); err != nil {
		t.Fatal(err)
	}
	jack, err := client.Jobs(ctx, "rt", p.JobMetas())
	if err != nil {
		t.Fatal(err)
	}
	if jack.Jobs != len(p.JobMetas()) || jack.Rejected != 0 {
		t.Fatalf("jobs ack %+v", jack)
	}
	if err := client.WaitDrained(ctx, "rt", uint64(len(recs)+len(env))); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats(ctx, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if st.AcceptedRecords != uint64(len(recs)+len(env)) || st.RejectedRecords != 0 {
		t.Fatalf("stats %+v", st)
	}

	roll, err := client.Rollup(ctx, "rt", "machine")
	if err != nil {
		t.Fatal(err)
	}
	if len(roll.Nodes) != len(p.Machines()) {
		t.Fatalf("machine rollup has %d nodes, want %d", len(roll.Nodes), len(p.Machines()))
	}

	// The served report must equal the embedded engine's fleet run on
	// the same data — SDK client and SDK engine are two views of one
	// algorithm.
	engine, err := hod.NewEngine(p, hod.WithMaxOutliers(512))
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.DetectFleet(ctx, hod.LevelPhase)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := client.Report(ctx, "rt", hod.ReportQuery{Level: hod.LevelPhase, Top: len(want.Outliers)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOutliers != want.TotalOutliers {
		t.Fatalf("served %d outliers total, engine found %d", rep.TotalOutliers, want.TotalOutliers)
	}
	if !reflect.DeepEqual(rep.Outliers, want.Outliers) {
		t.Fatalf("served outliers differ from embedded engine:\nhttp:   %+v\nengine: %+v",
			rep.Outliers, want.Outliers)
	}

	if _, err := client.Alerts(ctx, "rt", 5); err != nil {
		t.Fatal(err)
	}
}

// TestClientRetriesAfter429 pins the backoff contract: a batch shed
// with 429 + Retry-After is re-sent automatically and eventually
// succeeds, with the retry count surfaced via Retried().
func TestClientRetriesAfter429(t *testing.T) {
	_, ts := newTestServer(t, server.Options{Shards: 1, QueueDepth: 4})
	var sheds atomic.Int32
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && sheds.Add(1) <= 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"backpressure","message":"queue full"}}`))
			return
		}
		// Past the synthetic shedding, proxy to the real server.
		req, err := http.NewRequestWithContext(r.Context(), r.Method, ts.URL+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		req.Header = r.Header
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32*1024)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}))
	defer front.Close()

	p, err := hod.Simulate(hod.SimConfig{Seed: 2, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	client := hod.NewClient(front.URL)
	ctx := context.Background()
	if _, err := client.Register(ctx, p.Topology("bp")); err != nil {
		t.Fatal(err)
	}
	// The register itself burned the first synthetic 429s; reset so the
	// ingest sees a clean 429-then-success sequence.
	sheds.Store(0)
	ack, err := client.Ingest(ctx, "bp", p.Records()[:8])
	if err != nil {
		t.Fatalf("ingest never recovered from 429s: %v", err)
	}
	if ack.Records != 8 {
		t.Fatalf("ack %+v, want 8 records", ack)
	}
	if client.Retried() < 3 {
		t.Fatalf("client retried %d times, want >= 3", client.Retried())
	}

	// A client with no retry budget surfaces the typed backpressure
	// error instead.
	sheds.Store(0)
	strict := hod.NewClient(front.URL, hod.WithMaxRetries(0))
	if _, err := strict.Ingest(ctx, "bp", p.Records()[:1]); !errors.Is(err, hod.ErrBackpressure) {
		t.Fatalf("no-retry client: got %v, want ErrBackpressure", err)
	}
}

// TestClientRetriesDateForm429 is the regression test for the
// RFC 9110 HTTP-date Retry-After form: a proxy shedding with a
// date-form header (here: dates already in the past, i.e. "retry now")
// must be honoured as ~zero backoff instead of the silent 1s-default
// fallback the delta-seconds-only parser used — three sheds used to
// cost three seconds of sleep.
func TestClientRetriesDateForm429(t *testing.T) {
	_, ts := newTestServer(t, server.Options{Shards: 1, QueueDepth: 4})
	var sheds atomic.Int32
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && sheds.Add(1) <= 3 {
			w.Header().Set("Retry-After", time.Now().Add(-10*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"backpressure","message":"queue full"}}`))
			return
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, ts.URL+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		req.Header = r.Header
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer front.Close()

	p, err := hod.Simulate(hod.SimConfig{Seed: 2, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	client := hod.NewClient(front.URL)
	ctx := context.Background()
	if _, err := client.Register(ctx, p.Topology("dt")); err != nil {
		t.Fatal(err)
	}
	sheds.Store(0)
	began := time.Now()
	ack, err := client.Ingest(ctx, "dt", p.Records()[:8])
	if err != nil {
		t.Fatalf("ingest never recovered from date-form 429s: %v", err)
	}
	if ack.Records != 8 || client.Retried() < 3 {
		t.Fatalf("ack %+v retried %d, want 8 records after >= 3 retries", ack, client.Retried())
	}
	// A past date means "retry immediately"; the old 1s fallback made
	// these three sheds cost >= 3s.
	if elapsed := time.Since(began); elapsed > 2*time.Second {
		t.Fatalf("date-form Retry-After not honoured: 3 retries took %v", elapsed)
	}
}

// TestClientTypedErrors maps the server's machine-readable error codes
// onto the package sentinels.
func TestClientTypedErrors(t *testing.T) {
	p, err := hod.Simulate(hod.SimConfig{Seed: 2, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, server.Options{})
	client := hod.NewClient(ts.URL)
	ctx := context.Background()

	if _, err := client.Stats(ctx, "ghost"); !errors.Is(err, hod.ErrUnknownPlant) {
		t.Fatalf("unknown plant: got %v", err)
	}
	if _, err := client.Register(ctx, p.Topology("tp")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Register(ctx, p.Topology("tp")); !errors.Is(err, hod.ErrAlreadyRegistered) {
		t.Fatalf("double register: got %v", err)
	}
	if _, err := client.Report(ctx, "tp", hod.ReportQuery{}); !errors.Is(err, hod.ErrNoData) {
		t.Fatalf("report before data: got %v", err)
	}
	if _, err := client.Rollup(ctx, "tp", "galaxy"); !errors.Is(err, hod.ErrBadRequest) {
		t.Fatalf("bad rollup level: got %v", err)
	}
	if _, err := client.Report(ctx, "tp", hod.ReportQuery{Level: hod.Level(9)}); !errors.Is(err, hod.ErrBadRequest) {
		t.Fatalf("bad report level: got %v", err)
	}

	var apiErr *hod.APIError
	_, err = client.Stats(ctx, "ghost")
	if !errors.As(err, &apiErr) {
		t.Fatalf("error is not *APIError: %v", err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Code != wire.CodeUnknownPlant {
		t.Fatalf("APIError %+v", apiErr)
	}
}

// TestWaitDrainedOnIdempotentReplay pins the fixed drain contract:
// re-sending an already-ingested trace — the documented 429-retry and
// replay story — still reaches the drain target, because WaitDrained
// watches received_records rather than the fresh-cells-only
// accepted_records (which a replay never advances).
func TestWaitDrainedOnIdempotentReplay(t *testing.T) {
	p, err := hod.Simulate(hod.SimConfig{Seed: 7, Lines: 1, MachinesPerLine: 2, JobsPerMachine: 2, PhaseSamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, server.Options{Shards: 2, QueueDepth: 16})
	client := hod.NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := client.Register(ctx, p.Topology("drain")); err != nil {
		t.Fatal(err)
	}
	recs := p.Records()
	if _, err := client.Ingest(ctx, "drain", recs); err != nil {
		t.Fatal(err)
	}
	if err := client.WaitDrained(ctx, "drain", uint64(len(recs))); err != nil {
		t.Fatal(err)
	}
	// Full replay of the same batch: before the received_records
	// counter this wait hung until its deadline.
	if _, err := client.Ingest(ctx, "drain", recs); err != nil {
		t.Fatal(err)
	}
	if err := client.WaitDrained(ctx, "drain", uint64(2*len(recs))); err != nil {
		t.Fatalf("drain on idempotent replay did not terminate: %v", err)
	}
	st, err := client.Stats(ctx, "drain")
	if err != nil {
		t.Fatal(err)
	}
	if st.AcceptedRecords != uint64(len(recs)) || st.ReceivedRecords != uint64(2*len(recs)) {
		t.Fatalf("accepted=%d received=%d, want %d/%d", st.AcceptedRecords, st.ReceivedRecords, len(recs), 2*len(recs))
	}
}

// TestClientVectorDimsSentinel maps the vector_dims 400 onto the
// errors.Is-able sentinel.
func TestClientVectorDimsSentinel(t *testing.T) {
	p, err := hod.Simulate(hod.SimConfig{Seed: 2, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, server.Options{})
	client := hod.NewClient(ts.URL)
	ctx := context.Background()
	if _, err := client.Register(ctx, p.Topology("vd")); err != nil {
		t.Fatal(err)
	}
	meta := p.JobMetas()[0]
	meta.Setup = append(meta.Setup, 1, 2, 3) // longer than the registered dims
	if _, err := client.Jobs(ctx, "vd", []wire.JobMeta{meta}); !errors.Is(err, hod.ErrVectorDims) {
		t.Fatalf("oversized setup: got %v, want ErrVectorDims", err)
	}
}

// TestClientBackupRestore moves a plant between two servers through
// the typed Backup/Restore methods the hodctl subcommands use.
func TestClientBackupRestore(t *testing.T) {
	p, err := hod.Simulate(hod.SimConfig{Seed: 8, Lines: 1, MachinesPerLine: 2, JobsPerMachine: 3, PhaseSamples: 16, FaultRate: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	_, tsA := newTestServer(t, server.Options{Shards: 2, QueueDepth: 16})
	_, tsB := newTestServer(t, server.Options{Shards: 2, QueueDepth: 16})
	src := hod.NewClient(tsA.URL)
	dst := hod.NewClient(tsB.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := src.Register(ctx, p.Topology("mv")); err != nil {
		t.Fatal(err)
	}
	recs := p.Records()
	if _, err := src.Ingest(ctx, "mv", recs); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Jobs(ctx, "mv", p.JobMetas()); err != nil {
		t.Fatal(err)
	}
	if err := src.WaitDrained(ctx, "mv", uint64(len(recs))); err != nil {
		t.Fatal(err)
	}

	backup, err := src.Backup(ctx, "mv")
	if err != nil {
		t.Fatal(err)
	}
	ack, err := dst.Restore(ctx, "mv", backup)
	if err != nil {
		t.Fatal(err)
	}
	if ack.ID != "mv" || ack.Records != uint64(len(recs)) {
		t.Fatalf("restore ack %+v", ack)
	}

	want, err := src.Report(ctx, "mv", hod.ReportQuery{Top: 512})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.Report(ctx, "mv", hod.ReportQuery{Top: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restored report differs:\nsource:   %+v\nrestored: %+v", want, got)
	}

	// Restore over an existing plant maps to the sentinel.
	if _, err := dst.Restore(ctx, "mv", backup); !errors.Is(err, hod.ErrAlreadyRegistered) {
		t.Fatalf("double restore: got %v, want ErrAlreadyRegistered", err)
	}
	// Backup of an unknown plant maps too.
	if _, err := src.Backup(ctx, "ghost"); !errors.Is(err, hod.ErrUnknownPlant) {
		t.Fatalf("backup of ghost: got %v, want ErrUnknownPlant", err)
	}
}
