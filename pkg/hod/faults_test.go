package hod_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/pkg/hod"
	"repro/pkg/hod/wire"
)

// TestFaultInjector429Storm proves an injected 429 storm is absorbed
// by the client's automatic backoff: the server sees exactly one
// request, the upload succeeds, and the retry counter matches the
// storm length.
func TestFaultInjector429Storm(t *testing.T) {
	var serverHits atomic.Int64
	srv := server.New(server.Options{Shards: 1, QueueDepth: 8})
	t.Cleanup(srv.Close)
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/ingest") {
			serverHits.Add(1)
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counted)
	t.Cleanup(ts.Close)

	inj := hod.NewFaultInjector(nil, hod.WithFaultMatch(func(r *http.Request) bool {
		return strings.HasSuffix(r.URL.Path, "/ingest")
	}))
	client := hod.NewClient(ts.URL, hod.WithHTTPClient(&http.Client{Transport: inj, Timeout: 30 * time.Second}))
	ctx := context.Background()

	if _, err := client.Register(ctx, wire.Topology{ID: "f", Lines: []wire.TopoLine{{ID: "l", Machines: []string{"m"}}}}); err != nil {
		t.Fatal(err)
	}
	inj.InjectNext(
		hod.Fault{Status: http.StatusTooManyRequests},
		hod.Fault{Status: http.StatusTooManyRequests},
		hod.Fault{Status: http.StatusTooManyRequests},
	)
	ack, err := client.Ingest(ctx, "f", []wire.Record{{Machine: "m", Job: "j", Phase: "print", Sensor: "temp-a", T: 0, Value: 1}})
	if err != nil {
		t.Fatalf("ingest through 429 storm: %v", err)
	}
	if ack.Records != 1 {
		t.Fatalf("ack %+v", ack)
	}
	if got := serverHits.Load(); got != 1 {
		t.Fatalf("server saw %d ingest requests, want 1 (storm must be client-side)", got)
	}
	if client.Retried() != 3 {
		t.Fatalf("retried = %d, want 3", client.Retried())
	}
	if inj.Injected() != 3 || inj.Pending() != 0 {
		t.Fatalf("injected=%d pending=%d", inj.Injected(), inj.Pending())
	}
}

// TestFaultInjector5xxAndReset pins the non-retried fault shapes: a
// synthesized 500 surfaces as a typed APIError and an injected reset
// as a transport error — both leaving the armed schedule consumed so a
// caller's re-send goes through clean.
func TestFaultInjector5xxAndReset(t *testing.T) {
	srv := server.New(server.Options{Shards: 1, QueueDepth: 8})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	inj := hod.NewFaultInjector(nil)
	client := hod.NewClient(ts.URL, hod.WithHTTPClient(&http.Client{Transport: inj, Timeout: 30 * time.Second}))
	ctx := context.Background()

	inj.InjectNext(hod.Fault{Status: http.StatusInternalServerError})
	err := client.Health(ctx)
	var apiErr *hod.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("injected 500 surfaced as %v", err)
	}

	inj.InjectNext(hod.Fault{})
	if err := client.Health(ctx); err == nil || !strings.Contains(err.Error(), "injected connection reset") {
		t.Fatalf("injected reset surfaced as %v", err)
	}

	// Schedule drained: traffic passes through untouched again.
	if err := client.Health(ctx); err != nil {
		t.Fatalf("post-fault health: %v", err)
	}
}

// TestWaitDrainedTypedTimeout is the regression test for the wedged-
// worker story: a server whose queue depth never reaches zero must not
// park WaitDrained forever — the context deadline surfaces as a typed
// ErrDrainTimeout (still errors.Is-matching the context cause) that
// names the stuck progress.
func TestWaitDrainedTypedTimeout(t *testing.T) {
	wedged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(wire.StatsResponse{
			Plant: "w", ReceivedRecords: 7, QueueDepths: []int{0, 3},
		})
	}))
	t.Cleanup(wedged.Close)

	client := hod.NewClient(wedged.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err := client.WaitDrained(ctx, "w", 10)
	if err == nil {
		t.Fatal("WaitDrained returned nil against a wedged server")
	}
	if !errors.Is(err, hod.ErrDrainTimeout) {
		t.Fatalf("errors.Is(err, ErrDrainTimeout) = false: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("context cause lost: %v", err)
	}
	for _, frag := range []string{"7/10", "[0 3]"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("progress %q missing from %q", frag, err)
		}
	}

	// A non-deadline transport failure keeps its own identity.
	dead := hod.NewClient("http://127.0.0.1:1")
	err = dead.WaitDrained(context.Background(), "w", 1)
	if err == nil || errors.Is(err, hod.ErrDrainTimeout) {
		t.Fatalf("transport failure mislabeled as drain timeout: %v", err)
	}
}
