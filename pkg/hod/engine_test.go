package hod

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
)

func simTestPlant(t *testing.T) *Plant {
	t.Helper()
	p, err := Simulate(SimConfig{
		Seed: 5, Lines: 2, MachinesPerLine: 2, JobsPerMachine: 4,
		PhaseSamples: 24, FaultRate: 0.4, MeasurementErrorRate: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEngineMatchesCore proves the public engine is a faithful wrapper:
// Detect returns exactly the converted output of the internal
// Algorithm 1 pipeline on the same plant.
func TestEngineMatchesCore(t *testing.T) {
	p := simTestPlant(t)
	e, err := NewEngine(p, WithMaxOutliers(128))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, id := range p.Machines() {
		got, err := e.Detect(ctx, id, LevelPhase)
		if err != nil {
			t.Fatal(err)
		}
		h, err := core.NewHierarchy(p.p, id)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.FindHierarchicalOutliers(h, core.LevelPhase, core.Options{MaxOutliers: 128})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Outliers) != len(rep.Outliers) {
			t.Fatalf("machine %s: %d outliers via SDK, %d via core", id, len(got.Outliers), len(rep.Outliers))
		}
		for i, o := range rep.Outliers {
			if !reflect.DeepEqual(got.Outliers[i], o.Wire()) {
				t.Fatalf("machine %s outlier %d differs:\nsdk:  %+v\ncore: %+v", id, i, got.Outliers[i], o)
			}
		}
		if len(got.Warnings) != len(rep.Warnings) {
			t.Fatalf("machine %s: %d warnings via SDK, %d via core", id, len(got.Warnings), len(rep.Warnings))
		}
	}
}

// TestDetectFleetDeterministicAcrossWorkers runs the fleet detection
// at two parallelism widths and demands identical ranked output.
func TestDetectFleetDeterministicAcrossWorkers(t *testing.T) {
	p := simTestPlant(t)
	ctx := context.Background()
	var reports []*FleetReport
	for _, workers := range []int{1, 8} {
		e, err := NewEngine(p, WithWorkers(workers), WithMaxOutliers(64))
		if err != nil {
			t.Fatal(err)
		}
		fr, err := e.DetectFleet(ctx, LevelPhase)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, fr)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatal("fleet report differs between Workers=1 and Workers=8")
	}
	if reports[0].TotalOutliers == 0 {
		t.Fatal("fleet report found nothing on a faulty plant")
	}
	if len(reports[0].Machines) != len(p.Machines()) {
		t.Fatalf("fleet covered %d machines, want %d", len(reports[0].Machines), len(p.Machines()))
	}
}

// TestEngineSharedCacheAcrossEngines runs two engines over one shared
// cache and checks results stay identical to a private-cache engine.
func TestEngineSharedCacheAcrossEngines(t *testing.T) {
	p := simTestPlant(t)
	cache := NewCache(p)
	ctx := context.Background()
	e1, err := NewEngine(p, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(p, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	private, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	id := p.Machines()[0]
	a, err := e1.Detect(ctx, id, LevelProductionLine)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.Detect(ctx, id, LevelProductionLine)
	if err != nil {
		t.Fatal(err)
	}
	c, err := private.Detect(ctx, id, LevelProductionLine)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
		t.Fatal("shared-cache detection differs from private-cache detection")
	}

	// A cache built for a different plant must be rejected.
	other := simTestPlant(t)
	if _, err := NewEngine(other, WithCache(cache)); err == nil {
		t.Fatal("NewEngine accepted a cache built for a different plant")
	}
}

// TestEngineTypedErrors pins the errors.Is surface of the engine.
func TestEngineTypedErrors(t *testing.T) {
	p := simTestPlant(t)
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := e.Detect(ctx, "ghost", LevelPhase); !errors.Is(err, ErrUnknownMachine) {
		t.Fatalf("unknown machine: got %v, want ErrUnknownMachine", err)
	}
	if _, err := e.Detect(ctx, p.Machines()[0], Level(9)); !errors.Is(err, ErrInvalidLevel) {
		t.Fatalf("invalid level: got %v, want ErrInvalidLevel", err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.Detect(cancelled, p.Machines()[0], LevelPhase); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: got %v, want context.Canceled", err)
	}

	if _, err := NewEngine(p, WithTechniques("no-such-technique")); !errors.Is(err, ErrUnknownTechnique) {
		t.Fatalf("unknown technique at construction: got %v", err)
	}
	restricted, err := NewEngine(p, WithTechniques("ar"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restricted.Technique("lof"); !errors.Is(err, ErrUnknownTechnique) {
		t.Fatalf("restricted technique: got %v", err)
	}
	if _, err := restricted.Technique("ar"); err != nil {
		t.Fatalf("allowed technique: %v", err)
	}
}

// TestEngineNaivePhaseAblation checks WithNaivePhase actually changes
// the detector (the ablation must not silently no-op).
func TestEngineNaivePhaseAblation(t *testing.T) {
	p := simTestPlant(t)
	ctx := context.Background()
	normal, err := NewEngine(p, WithMaxOutliers(512))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewEngine(p, WithNaivePhase(), WithMaxOutliers(512))
	if err != nil {
		t.Fatal(err)
	}
	id := p.Machines()[0]
	a, err := normal.Detect(ctx, id, LevelPhase)
	if err != nil {
		t.Fatal(err)
	}
	b, err := naive.Detect(ctx, id, LevelPhase)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Outliers, b.Outliers) {
		t.Fatal("naive-phase ablation produced identical output to the profile detector")
	}
}

// TestTechniqueFacade exercises the registry through the public
// Technique type: fit/score, capability errors, not-fitted errors.
func TestTechniqueFacade(t *testing.T) {
	infos := Techniques()
	if len(infos) < 21 {
		t.Fatalf("registry lists %d techniques, want >= 21", len(infos))
	}
	if _, err := NewTechnique("no-such"); !errors.Is(err, ErrUnknownTechnique) {
		t.Fatalf("unknown name: got %v", err)
	}

	ar, err := NewTechnique("ar")
	if err != nil {
		t.Fatal(err)
	}
	if !ar.Info().Points {
		t.Fatal("ar lost its Points capability")
	}
	if _, err := ar.ScorePoints([]float64{1, 2, 3}); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("scoring before Fit: got %v, want ErrNotFitted", err)
	}
	ref := make([]float64, 256)
	for i := range ref {
		ref[i] = float64(i % 7)
	}
	if err := ar.Fit(ref); err != nil {
		t.Fatal(err)
	}
	scores, err := ar.ScorePoints(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(ref) {
		t.Fatalf("got %d scores for %d samples", len(scores), len(ref))
	}

	// Every capability flag must match what the instance implements:
	// a technique without Points must refuse ScorePoints with the
	// granularity sentinel.
	for _, info := range infos {
		if info.Points {
			continue
		}
		tech, err := NewTechnique(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tech.ScorePoints(ref); !errors.Is(err, ErrUnsupportedGranularity) {
			t.Fatalf("%s: non-PTS technique scored points (err=%v)", info.Name, err)
		}
		break
	}
}

// TestClassifyMatchesCore pins the public decision rule to the
// internal one.
func TestClassifyMatchesCore(t *testing.T) {
	cases := []Outlier{
		{Support: 1, GlobalScore: 3, Outlierness: 0.8},
		{Support: 0, GlobalScore: 1, Outlierness: 0.9},
		{Support: 0.4, GlobalScore: 1, Outlierness: 0.2},
		{Support: 1, GlobalScore: 1, Outlierness: 0.6},
	}
	for _, o := range cases {
		want := core.Classify(core.Outlier{Support: o.Support, GlobalScore: o.GlobalScore, Outlierness: o.Outlierness})
		if got := Classify(o); string(got) != string(want) {
			t.Errorf("Classify(%+v) = %s, core says %s", o, got, want)
		}
	}
}
