package hod

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/pkg/hod/wire"
)

// Fault is one injected client-side failure for FaultInjector: either
// a synthesized HTTP response (Status != 0 — the request never reaches
// the server) or a transport error (Status == 0), which surfaces from
// the http.Client exactly like a connection reset would.
type Fault struct {
	// Status synthesizes a response with this status code and a
	// structured wire error envelope. 429 responses carry a
	// "Retry-After: 0" header so the client's automatic backoff retries
	// immediately — fault schedules stay fast and deterministic.
	Status int
	// Err is returned as the transport error when Status == 0. Nil
	// defaults to ErrInjectedReset.
	Err error
}

// ErrInjectedReset is the transport error FaultInjector returns for a
// zero Fault — the injected stand-in for a TCP connection reset.
var ErrInjectedReset = fmt.Errorf("hod: injected connection reset")

// FaultInjector is an http.RoundTripper that injects a deterministic
// schedule of faults between a Client and its server: 429 storms, 5xx
// bursts, and connection resets. Faults are armed with InjectNext and
// consumed in order, one per matching request; unmatched (or
// unscheduled) requests pass through to the wrapped transport
// untouched. It is the client-side half of the scenario engine's fault
// surface — the server-side half is the serving layer's fault
// listener. Safe for concurrent use.
type FaultInjector struct {
	base  http.RoundTripper
	match func(*http.Request) bool

	mu       sync.Mutex
	queue    []Fault
	injected uint64
}

// FaultOption tunes a FaultInjector at construction time.
type FaultOption func(*FaultInjector)

// WithFaultMatch restricts injection to requests the predicate
// accepts; others always pass through. Default: every request matches.
func WithFaultMatch(match func(*http.Request) bool) FaultOption {
	return func(f *FaultInjector) { f.match = match }
}

// NewFaultInjector wraps base (nil = http.DefaultTransport) with an
// empty fault schedule. Hand it to a client via
//
//	hod.NewClient(url, hod.WithHTTPClient(&http.Client{Transport: inj}))
func NewFaultInjector(base http.RoundTripper, opts ...FaultOption) *FaultInjector {
	if base == nil {
		base = http.DefaultTransport
	}
	f := &FaultInjector{base: base, match: func(*http.Request) bool { return true }}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// InjectNext appends faults to the schedule; each matching request
// consumes the head of the queue.
func (f *FaultInjector) InjectNext(faults ...Fault) {
	f.mu.Lock()
	f.queue = append(f.queue, faults...)
	f.mu.Unlock()
}

// Injected reports how many faults were consumed so far.
func (f *FaultInjector) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Pending reports how many armed faults are still unconsumed.
func (f *FaultInjector) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue)
}

// RoundTrip consumes the next scheduled fault for a matching request,
// or forwards to the wrapped transport.
func (f *FaultInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	if !f.match(req) {
		return f.base.RoundTrip(req)
	}
	f.mu.Lock()
	if len(f.queue) == 0 {
		f.mu.Unlock()
		return f.base.RoundTrip(req)
	}
	fault := f.queue[0]
	f.queue = f.queue[1:]
	f.injected++
	f.mu.Unlock()

	// The transport owns the request body once RoundTrip is called;
	// a consumed fault means the server never sees it.
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	if fault.Status == 0 {
		if fault.Err != nil {
			return nil, fault.Err
		}
		return nil, ErrInjectedReset
	}
	code := wire.CodeInternal
	if fault.Status == http.StatusTooManyRequests {
		code = wire.CodeBackpressure
	}
	body, _ := json.Marshal(wire.ErrorEnvelope{Err: wire.ErrorBody{
		Code: code, Message: fmt.Sprintf("injected fault (%d)", fault.Status),
	}})
	resp := &http.Response{
		StatusCode: fault.Status,
		Status:     fmt.Sprintf("%d %s", fault.Status, http.StatusText(fault.Status)),
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:        make(http.Header),
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
	resp.Header.Set("Content-Type", "application/json")
	if fault.Status == http.StatusTooManyRequests {
		resp.Header.Set("Retry-After", "0")
	}
	return resp, nil
}
