package hod

import (
	"fmt"

	"repro/internal/olap"
	"repro/pkg/hod/wire"
)

// Cube is the embedded counterpart of the served OLAP cube: the same
// dimensions (line × machine × job × phase × sensor), built in one
// batch pass instead of incrementally, and answered by the same query
// engine the server uses — so a slice, rollup, members, or drilldown
// over an embedded cube returns exactly the cells the serving layer
// would for the same data.
type Cube struct {
	c *olap.Cube
}

// CubeDims returns the dimension names of the serving cube, in
// coordinate order (wire.CubeDims, the protocol's single definition).
func CubeDims() []string { return wire.CubeDims() }

// CubeFromRecords builds a cube from wire records, using the topology
// for the machine→line mapping. Environment records carry no machine
// coordinate and are skipped. Duplicate samples of one
// (machine, job, phase, sensor, t) cell fold their first-seen value
// only — mirroring the serving layer's idempotent ingest store, which
// is what makes the batch-built and served cubes equal on a replayed
// trace. Non-finite values are rejected (olap.ErrNonFinite), the same
// policy the server's ingest validation enforces.
func CubeFromRecords(topo wire.Topology, recs []wire.Record) (*Cube, error) {
	machineLine := make(map[string]string)
	for _, l := range topo.Lines {
		for _, m := range l.Machines {
			machineLine[m] = l.ID
		}
	}
	c, err := olap.New(wire.CubeDims()...)
	if err != nil {
		return nil, err
	}
	type sampleKey struct {
		machine, job, phase, sensor string
		t                           int
	}
	seen := make(map[sampleKey]bool, len(recs))
	for _, rec := range recs {
		if rec.Env {
			continue
		}
		line, ok := machineLine[rec.Machine]
		if !ok {
			return nil, fmt.Errorf("%w: %q is not in the topology", ErrUnknownMachine, rec.Machine)
		}
		// The served cube never sees identifiers with control
		// characters (registration and ingest vet them with the same
		// rule); apply the gate here too so the batch-built cube cannot
		// fold records the server would have rejected.
		for _, id := range []struct{ kind, val string }{
			{"job", rec.Job}, {"phase", rec.Phase}, {"sensor", rec.Sensor},
		} {
			if err := wire.ValidIdent(id.kind, id.val); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
		}
		k := sampleKey{rec.Machine, rec.Job, rec.Phase, rec.Sensor, rec.T}
		if seen[k] {
			continue
		}
		seen[k] = true
		if err := c.AddFact([]string{line, rec.Machine, rec.Job, rec.Phase, rec.Sensor}, rec.Value); err != nil {
			return nil, err
		}
	}
	return &Cube{c: c}, nil
}

// Cube builds the batch OLAP cube of the engine's plant — every
// machine sensor sample folded as one fact.
func (e *Engine) Cube() (*Cube, error) {
	return CubeFromRecords(e.plant.Topology(""), e.plant.Records())
}

// Dims returns the cube's dimension names in coordinate order.
func (c *Cube) Dims() []string { return c.c.Dims() }

// Len returns the number of materialised cells.
func (c *Cube) Len() int { return c.c.Len() }

// Query answers one cube question with the identical evaluation (and
// deterministic cell ordering) the serving layer applies to
// GET /v1/plants/{id}/cube. The returned response carries no plant id.
func (c *Cube) Query(q CubeQuery) (wire.CubeResponse, error) {
	res, err := c.c.Answer(olap.Query{Op: q.Op, Where: q.Where, Keep: q.Keep, Dim: q.Dim})
	if err != nil {
		return wire.CubeResponse{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return wire.CubeResponse{
		Op: res.Op, Dims: res.Dims, Where: res.Where,
		Members: res.Members, Cells: res.Cells, TotalCells: res.TotalCells,
	}, nil
}

// Slice returns the cells matching the dimension=member constraints at
// full dimensionality (nil = every materialised cell).
func (c *Cube) Slice(where map[string]string) (wire.CubeResponse, error) {
	return c.Query(CubeQuery{Op: wire.CubeOpSlice, Where: where})
}

// RollUp aggregates onto the kept dimensions, optionally within a
// where-constrained slice.
func (c *Cube) RollUp(keep []string, where map[string]string) (wire.CubeResponse, error) {
	return c.Query(CubeQuery{Op: wire.CubeOpRollup, Keep: keep, Where: where})
}

// Members lists the distinct members of one dimension.
func (c *Cube) Members(dim string) (wire.CubeResponse, error) {
	return c.Query(CubeQuery{Op: wire.CubeOpMembers, Dim: dim})
}

// Drilldown expands one dimension inside a where-constrained slice.
func (c *Cube) Drilldown(dim string, where map[string]string) (wire.CubeResponse, error) {
	return c.Query(CubeQuery{Op: wire.CubeOpDrilldown, Dim: dim, Where: where})
}
