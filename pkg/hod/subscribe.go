package hod

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gateway/ws"
	"repro/pkg/hod/wire"
)

// Subscription is a typed iterator over the server's live push stream
// (GET /v1/subscribe over WebSocket by default, GET /v1/events over
// SSE with WithSSE). Next blocks for the next event; a broken
// transport reconnects automatically, resuming alerts from the highest
// delivered Alert.Seq and suppressing cube_delta replays at or below
// the highest delivered revision — so across any number of
// reconnects, delivery is effectively exactly-once for alerts (the
// at-least-once wire stream deduplicated by Seq) and monotone for
// revisions. Stats snapshots always flow.
//
// Next must be called from one goroutine at a time; Close and Drop are
// safe to call concurrently with it.
type Subscription struct {
	c        *Client
	channels []string
	useSSE   bool
	wait     time.Duration

	// Resume cursors, owned by the Next goroutine.
	afterSeq map[string]uint64
	afterRev map[string]uint64

	reconnects atomic.Uint64

	mu        sync.Mutex
	closed    bool
	connected bool // a transport was established at least once
	wsConn    *ws.Conn
	sseBody   io.ReadCloser
	sseScan   *bufio.Reader
}

// SubscribeOption tunes a Subscription at construction time.
type SubscribeOption func(*Subscription)

// WithSSE streams over GET /v1/events (Server-Sent Events) instead of
// WebSocket — for environments where only plain HTTP flows.
func WithSSE() SubscribeOption { return func(s *Subscription) { s.useSSE = true } }

// WithReconnectWait sets the pause before a broken transport is
// redialed (default 200ms).
func WithReconnectWait(d time.Duration) SubscribeOption {
	return func(s *Subscription) { s.wait = d }
}

// Subscribe opens a live push subscription for the request's channels
// ("alerts:plant-a", "cube:*", "stats:plant-b"; see wire.ParseChannel
// for the grammar). The initial connect happens here, so a rejected
// subscription — bad channel (ErrBadRequest), unknown plant
// (ErrUnknownPlant), out-of-grant plant (ErrForbidden) — surfaces
// immediately as a typed API error. The request's AfterSeq/AfterRev
// seed the resume cursors.
func (c *Client) Subscribe(ctx context.Context, req wire.SubscribeRequest, opts ...SubscribeOption) (*Subscription, error) {
	s := &Subscription{
		c:        c,
		channels: append([]string(nil), req.Channels...),
		wait:     200 * time.Millisecond,
		afterSeq: map[string]uint64{},
		afterRev: map[string]uint64{},
	}
	for p, n := range req.AfterSeq {
		s.afterSeq[p] = n
	}
	for p, n := range req.AfterRev {
		s.afterRev[p] = n
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.connect(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// SubscribeAlerts subscribes to the alert stream of the given plants
// (none = every visible plant via the wildcard channel).
func (c *Client) SubscribeAlerts(ctx context.Context, plants ...string) (*Subscription, error) {
	return c.Subscribe(ctx, wire.SubscribeRequest{Channels: kindChannels(wire.EventAlert, plants)})
}

// SubscribeCube subscribes to cube_delta notifications — "the cube
// advanced to revision R; re-query what you care about".
func (c *Client) SubscribeCube(ctx context.Context, plants ...string) (*Subscription, error) {
	return c.Subscribe(ctx, wire.SubscribeRequest{Channels: kindChannels(wire.EventCubeDelta, plants)})
}

// SubscribeStats subscribes to per-fold-batch stats snapshots.
func (c *Client) SubscribeStats(ctx context.Context, plants ...string) (*Subscription, error) {
	return c.Subscribe(ctx, wire.SubscribeRequest{Channels: kindChannels(wire.EventStats, plants)})
}

func kindChannels(kind wire.EventKind, plants []string) []string {
	if len(plants) == 0 {
		return []string{wire.Channel{Kind: kind, Plant: "*"}.String()}
	}
	chans := make([]string, 0, len(plants))
	for _, p := range plants {
		chans = append(chans, wire.Channel{Kind: kind, Plant: p}.String())
	}
	return chans
}

// Reconnects reports how many times the subscription redialed after a
// broken transport.
func (s *Subscription) Reconnects() uint64 { return s.reconnects.Load() }

// Close tears the subscription down; a concurrent or later Next
// returns ErrSubscriptionClosed.
func (s *Subscription) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.dropTransport()
	return nil
}

// Drop severs the current transport without closing the subscription —
// the next Next call reconnects and resumes. A fault hook for tests
// and fault-injection scenarios.
func (s *Subscription) Drop() { s.dropTransport() }

func (s *Subscription) dropTransport() {
	s.mu.Lock()
	wsc, body := s.wsConn, s.sseBody
	s.wsConn, s.sseBody, s.sseScan = nil, nil, nil
	s.mu.Unlock()
	if wsc != nil {
		wsc.Close()
	}
	if body != nil {
		body.Close()
	}
}

func (s *Subscription) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// resumeQuery renders the subscription request at the current resume
// cursors.
func (s *Subscription) resumeQuery() string {
	req := wire.SubscribeRequest{Channels: s.channels}
	if len(s.afterSeq) > 0 {
		req.AfterSeq = s.afterSeq
	}
	if len(s.afterRev) > 0 {
		req.AfterRev = s.afterRev
	}
	return req.Encode().Encode()
}

// connect establishes the transport. A handshake rejected with an HTTP
// error becomes a typed *APIError (terminal — reconnecting cannot fix
// a 401/403/404).
func (s *Subscription) connect(ctx context.Context) error {
	if s.isClosed() {
		return ErrSubscriptionClosed
	}
	if s.useSSE {
		return s.connectSSE(ctx)
	}
	return s.connectWS(ctx)
}

func (s *Subscription) connectWS(ctx context.Context) error {
	header := http.Header{}
	s.c.authorize(header)
	conn, err := ws.Dial(ctx, s.c.base+"/v1/subscribe?"+s.resumeQuery(), header)
	if err != nil {
		var hs *ws.HandshakeError
		if errors.As(err, &hs) {
			return apiError(hs.StatusCode, hs.Body)
		}
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return ErrSubscriptionClosed
	}
	s.wsConn = conn
	s.markConnectedLocked()
	s.mu.Unlock()
	return nil
}

// markConnectedLocked counts re-established transports; the caller
// holds s.mu.
func (s *Subscription) markConnectedLocked() {
	if s.connected {
		s.reconnects.Add(1)
	}
	s.connected = true
}

func (s *Subscription) connectSSE(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.c.base+"/v1/events?"+s.resumeQuery(), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	s.c.authorize(req.Header)
	resp, err := s.c.hc.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return apiError(resp.StatusCode, body)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		resp.Body.Close()
		return ErrSubscriptionClosed
	}
	s.sseBody = resp.Body
	s.sseScan = bufio.NewReader(resp.Body)
	s.markConnectedLocked()
	s.mu.Unlock()
	return nil
}

// Next returns the next event, transparently reconnecting and resuming
// after transport failures. It returns ErrSubscriptionClosed after
// Close, the context error when ctx ends, and a typed *APIError when a
// reconnect is rejected by the server.
func (s *Subscription) Next(ctx context.Context) (wire.Event, error) {
	for {
		if err := ctx.Err(); err != nil {
			return wire.Event{}, err
		}
		if s.isClosed() {
			return wire.Event{}, ErrSubscriptionClosed
		}
		s.mu.Lock()
		connected := s.wsConn != nil || s.sseBody != nil
		s.mu.Unlock()
		if !connected {
			if err := s.connect(ctx); err != nil {
				return wire.Event{}, err
			}
		}
		ev, err := s.read(ctx)
		if err != nil {
			s.dropTransport()
			switch {
			case s.isClosed():
				return wire.Event{}, ErrSubscriptionClosed
			case ctx.Err() != nil:
				return wire.Event{}, ctx.Err()
			}
			if err := sleepCtx(ctx, s.wait); err != nil {
				return wire.Event{}, err
			}
			continue
		}
		if out, keep := s.filter(ev); keep {
			return out, nil
		}
	}
}

// read blocks for one decoded event from the current transport. The
// context is honoured by a watchdog that severs the transport — both
// transports only unblock on connection death.
func (s *Subscription) read(ctx context.Context) (wire.Event, error) {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			s.dropTransport()
		case <-stop:
		}
	}()
	s.mu.Lock()
	wsc, scan := s.wsConn, s.sseScan
	s.mu.Unlock()
	switch {
	case wsc != nil:
		return readWS(wsc)
	case scan != nil:
		return readSSE(scan)
	default:
		return wire.Event{}, fmt.Errorf("hod: subscription transport gone")
	}
}

func readWS(conn *ws.Conn) (wire.Event, error) {
	for {
		op, payload, err := conn.ReadMessage()
		if err != nil {
			return wire.Event{}, err
		}
		if op != ws.OpText {
			continue
		}
		var ev wire.Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return wire.Event{}, fmt.Errorf("hod: bad push event: %w", err)
		}
		return ev, nil
	}
}

// readSSE parses one "event:/data:" frame, skipping ": hb" comment
// heartbeats.
func readSSE(br *bufio.Reader) (wire.Event, error) {
	var data strings.Builder
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return wire.Event{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		case line == "" && data.Len() > 0:
			var ev wire.Event
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				return wire.Event{}, fmt.Errorf("hod: bad push event: %w", err)
			}
			return ev, nil
		default:
			// comment heartbeat, "event:" name line, or separator
			// before any data — all carry nothing the JSON lacks.
		}
	}
}

// filter advances the resume cursors and drops what the client already
// saw: alerts at or below the plant's seq cursor (at-least-once wire
// stream, exactly-once iterator), and cube_delta at or below the
// revision cursor. Stats always pass (counters move without the
// revision advancing).
func (s *Subscription) filter(ev wire.Event) (wire.Event, bool) {
	switch ev.Kind {
	case wire.EventAlert:
		cursor := s.afterSeq[ev.Plant]
		fresh := ev.Alerts[:0:0]
		for _, a := range ev.Alerts {
			if a.Seq > cursor {
				fresh = append(fresh, a)
			}
		}
		if len(fresh) == 0 {
			return wire.Event{}, false
		}
		ev.Alerts = fresh
		ev.Seq = fresh[len(fresh)-1].Seq
		s.afterSeq[ev.Plant] = ev.Seq
		return ev, true
	case wire.EventCubeDelta:
		if ev.Revision <= s.afterRev[ev.Plant] {
			return wire.Event{}, false
		}
		s.afterRev[ev.Plant] = ev.Revision
		return ev, true
	default:
		return ev, true
	}
}
