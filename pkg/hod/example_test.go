package hod_test

import (
	"context"
	"fmt"
	"log"
	"net"

	"repro/internal/server"
	"repro/pkg/hod"
)

func listen() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

// ExampleEngine embeds Algorithm 1: simulate a plant, detect
// hierarchical outliers on one machine, and classify the strongest
// finding with the support-based decision rule.
func ExampleEngine() {
	p, err := hod.Simulate(hod.SimConfig{
		Seed: 5, Lines: 2, MachinesPerLine: 2, JobsPerMachine: 4,
		PhaseSamples: 24, FaultRate: 0.4, MeasurementErrorRate: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := hod.NewEngine(p, hod.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	machine := p.Machines()[0]
	rep, err := engine.Detect(context.Background(), machine, hod.LevelPhase)
	if err != nil {
		log.Fatal(err)
	}
	top := rep.Outliers[0]
	fmt.Printf("machine %s: %d outliers\n", machine, len(rep.Outliers))
	fmt.Printf("strongest: global=%d support=%.1f class=%s\n",
		top.GlobalScore, top.Support, hod.Classify(top))
	// Output:
	// machine line-1/m1: 32 outliers
	// strongest: global=4 support=1.0 class=process-fault
}

// ExampleEngine_DetectFleet ranks findings across every machine of the
// plant with the paper's combined-importance order.
func ExampleEngine_DetectFleet() {
	p, err := hod.Simulate(hod.SimConfig{
		Seed: 5, Lines: 2, MachinesPerLine: 2, JobsPerMachine: 4,
		PhaseSamples: 24, FaultRate: 0.4, MeasurementErrorRate: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := hod.NewEngine(p)
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := engine.DetectFleet(context.Background(), hod.LevelPhase)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d machines, %d outliers fleet-wide\n", len(fleet.Machines), fleet.TotalOutliers)
	fmt.Printf("worst machine: %s\n", fleet.Outliers[0].Machine)
	// Output:
	// 4 machines, 58 outliers fleet-wide
	// worst machine: line-1/m1
}

// ExampleNewTechnique scores a series with one of the 21 Table-1
// techniques through the registry facade.
func ExampleNewTechnique() {
	tech, err := hod.NewTechnique("ar")
	if err != nil {
		log.Fatal(err)
	}
	values := make([]float64, 64)
	for i := range values {
		values[i] = float64(i % 4)
	}
	values[40] = 50 // injected spike
	if err := tech.Fit(values[:32]); err != nil {
		log.Fatal(err)
	}
	scores, err := tech.ScorePoints(values)
	if err != nil {
		log.Fatal(err)
	}
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	fmt.Printf("%s flags index %d\n", tech.Info().Name, best)
	// Output:
	// ar flags index 40
}

// ExampleClient talks to a fleet server over its v1 HTTP API: register
// a plant, stream its trace with automatic backpressure retries, wait
// for the pipelines to drain, and fetch the fleet-ranked report.
func ExampleClient() {
	// An in-process server stands in for a remote hodserve here.
	srv := server.New(server.Options{Shards: 2, QueueDepth: 16})
	defer srv.Close()
	ln, err := listen()
	if err != nil {
		log.Fatal(err)
	}
	stop := srv.ServeListener(ln)
	defer stop()

	p, err := hod.Simulate(hod.SimConfig{
		Seed: 5, Lines: 2, MachinesPerLine: 2, JobsPerMachine: 4,
		PhaseSamples: 24, FaultRate: 0.4, MeasurementErrorRate: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	client := hod.NewClient("http://" + ln.Addr().String())
	if _, err := client.Register(ctx, p.Topology("demo")); err != nil {
		log.Fatal(err)
	}
	recs := p.Records()
	if _, err := client.Ingest(ctx, "demo", recs); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Jobs(ctx, "demo", p.JobMetas()); err != nil {
		log.Fatal(err)
	}
	if err := client.WaitDrained(ctx, "demo", uint64(len(recs))); err != nil {
		log.Fatal(err)
	}
	rep, err := client.Report(ctx, "demo", hod.ReportQuery{Level: hod.LevelPhase, Top: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plant %s: %d machines reporting, top %d of %d outliers\n",
		rep.Plant, len(rep.Machines), len(rep.Outliers), rep.TotalOutliers)
	// Output:
	// plant demo: 4 machines reporting, top 3 of 58 outliers
}
