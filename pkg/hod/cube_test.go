package hod_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/server"
	"repro/pkg/hod"
	"repro/pkg/hod/wire"
)

// TestClientCubeMatchesEngineCube proves the two faces of the cube are
// one subsystem: every Cube* query answered by a hodserve fed the
// plant's trace equals the same query against the engine's batch-built
// cube — cells, dims, members, and ordering.
func TestClientCubeMatchesEngineCube(t *testing.T) {
	p, err := hod.Simulate(hod.SimConfig{
		Seed: 11, Lines: 2, MachinesPerLine: 2, JobsPerMachine: 3,
		PhaseSamples: 16, FaultRate: 0.3, MeasurementErrorRate: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, server.Options{Shards: 3, QueueDepth: 16})
	client := hod.NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := client.Register(ctx, p.Topology("cb")); err != nil {
		t.Fatal(err)
	}
	recs := p.Records()
	if _, err := client.Ingest(ctx, "cb", recs); err != nil {
		t.Fatal(err)
	}
	if err := client.WaitDrained(ctx, "cb", uint64(len(recs))); err != nil {
		t.Fatal(err)
	}

	engine, err := hod.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := engine.Cube()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cube.Dims(), hod.CubeDims()) {
		t.Fatalf("engine cube dims %v", cube.Dims())
	}

	m0 := p.Machines()[0]
	queries := []hod.CubeQuery{
		{},
		{Op: wire.CubeOpSlice, Where: map[string]string{"machine": m0}},
		{Op: wire.CubeOpRollup, Keep: []string{"line", "sensor"}},
		{Op: wire.CubeOpRollup, Keep: []string{"phase"}, Where: map[string]string{"machine": m0}},
		{Op: wire.CubeOpMembers, Dim: "job"},
		{Op: wire.CubeOpDrilldown, Dim: "machine", Where: map[string]string{"line": "line-1"}},
	}
	for _, q := range queries {
		want, err := cube.Query(q)
		if err != nil {
			t.Fatalf("engine %+v: %v", q, err)
		}
		got, err := client.Cube(ctx, "cb", q)
		if err != nil {
			t.Fatalf("client %+v: %v", q, err)
		}
		if got.Plant != "cb" {
			t.Fatalf("served plant %q", got.Plant)
		}
		want.Plant = got.Plant
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("served cube differs from engine cube for %+v:\nserved: %+v\nengine: %+v", q, got, want)
		}
	}

	// The convenience wrappers hit the same endpoint.
	sl, err := client.CubeSlice(ctx, "cb", map[string]string{"machine": m0})
	if err != nil || sl.Op != wire.CubeOpSlice {
		t.Fatalf("CubeSlice: %+v, %v", sl.Op, err)
	}
	ru, err := client.CubeRollup(ctx, "cb", []string{"machine"}, nil)
	if err != nil || len(ru.Cells) != len(p.Machines()) {
		t.Fatalf("CubeRollup: %d cells, %v", len(ru.Cells), err)
	}
	mem, err := client.CubeMembers(ctx, "cb", "phase")
	if err != nil || len(mem.Members) == 0 {
		t.Fatalf("CubeMembers: %+v, %v", mem, err)
	}
	dd, err := client.CubeDrilldown(ctx, "cb", "phase", map[string]string{"machine": m0})
	if err != nil || len(dd.Cells) == 0 {
		t.Fatalf("CubeDrilldown: %+v, %v", dd, err)
	}

	// Server-side validation surfaces as the bad-request sentinel, the
	// same way the embedded cube rejects the query.
	if _, err := client.Cube(ctx, "cb", hod.CubeQuery{Op: "pivot"}); !errors.Is(err, hod.ErrBadRequest) {
		t.Fatalf("bad op over HTTP: %v", err)
	}
	if _, err := cube.Query(hod.CubeQuery{Op: "pivot"}); !errors.Is(err, hod.ErrBadRequest) {
		t.Fatalf("bad op embedded: %v", err)
	}
}

// TestCubeFromRecordsIdempotent pins the first-seen contract that
// makes batch-built and served cubes equal on replayed traces:
// duplicate samples of one cell fold once, environment records are
// skipped, unknown machines and non-finite values are typed errors.
func TestCubeFromRecordsIdempotent(t *testing.T) {
	topo := wire.Topology{ID: "t", Lines: []wire.TopoLine{{ID: "l1", Machines: []string{"l1/m1"}}}}
	recs := []wire.Record{
		{Machine: "l1/m1", Job: "j1", Phase: "print", Sensor: "temp-a", T: 0, Value: 2},
		{Machine: "l1/m1", Job: "j1", Phase: "print", Sensor: "temp-a", T: 0, Value: 99}, // replay: first-seen wins
		{Machine: "l1/m1", Job: "j1", Phase: "print", Sensor: "temp-a", T: 1, Value: 4},
		{Env: true, Sensor: "room-temp", T: 0, Value: 20}, // no machine coordinate
	}
	cube, err := hod.CubeFromRecords(topo, recs)
	if err != nil {
		t.Fatal(err)
	}
	if cube.Len() != 1 {
		t.Fatalf("cube has %d cells, want 1", cube.Len())
	}
	resp, err := cube.Slice(nil)
	if err != nil {
		t.Fatal(err)
	}
	cell := resp.Cells[0]
	if cell.Count != 2 || cell.Sum != 6 || cell.Min != 2 || cell.Max != 4 {
		t.Fatalf("cell %+v, want first-seen fold of 2 samples", cell)
	}

	if _, err := hod.CubeFromRecords(topo, []wire.Record{{Machine: "ghost", Job: "j", Phase: "p", Sensor: "s"}}); !errors.Is(err, hod.ErrUnknownMachine) {
		t.Fatalf("unknown machine: %v", err)
	}
}
