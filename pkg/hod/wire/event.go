package wire

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// EventKind names one kind of push event delivered over the live
// subscription endpoints (GET /v1/subscribe over WebSocket, GET
// /v1/events over SSE).
type EventKind string

// The push event kinds of the v1 protocol.
const (
	// EventAlert carries a batch of newly raised EWMA alerts, in fold
	// order. Seq is the highest alert sequence number of the batch.
	EventAlert EventKind = "alert"
	// EventCubeDelta signals that the plant's OLAP cube (and roll-up
	// tree) advanced to Revision; the payload is intentionally a
	// notification, not a diff — clients re-query the slices they care
	// about.
	EventCubeDelta EventKind = "cube_delta"
	// EventStats carries a full StatsResponse snapshot taken at a fold
	// batch boundary.
	EventStats EventKind = "stats"
)

// Valid reports whether k is a known event kind.
func (k EventKind) Valid() bool {
	return k == EventAlert || k == EventCubeDelta || k == EventStats
}

// Event is one push message of the live subscription stream. Exactly
// the payload fields matching Kind are set: Alerts for EventAlert,
// Stats for EventStats, none for EventCubeDelta (Revision suffices).
//
// Coalesced marks an event that stands in for more than one original
// emission: a slow consumer's queue replaces stale cube/stats events
// with the latest snapshot and merges (and, past the ring capacity,
// trims) alert batches instead of buffering without bound. A client
// that must not miss alerts resumes from its highest seen Alert.Seq
// via SubscribeRequest.AfterSeq.
type Event struct {
	Kind  EventKind `json:"kind"`
	Plant string    `json:"plant"`
	// Seq is the highest Alert.Seq carried by an alert event; zero
	// otherwise.
	Seq uint64 `json:"seq,omitempty"`
	// Revision is the plant data revision after the fold batch that
	// produced the event (cube_delta and stats events).
	Revision  uint64         `json:"revision,omitempty"`
	Coalesced bool           `json:"coalesced,omitempty"`
	Alerts    []Alert        `json:"alerts,omitempty"`
	Stats     *StatsResponse `json:"stats,omitempty"`
}

// Channel is one parsed subscription channel: an event kind scoped to
// one plant, or to every visible plant via the "*" wildcard.
type Channel struct {
	Kind  EventKind
	Plant string
}

// String renders the channel in wire form: "alerts:plant-a",
// "cube:*", "stats:plant-b".
func (c Channel) String() string {
	return channelPrefix(c.Kind) + ":" + c.Plant
}

func channelPrefix(k EventKind) string {
	switch k {
	case EventAlert:
		return "alerts"
	case EventCubeDelta:
		return "cube"
	case EventStats:
		return "stats"
	}
	return string(k)
}

// ParseChannel parses a wire channel name. The grammar is
// "{alerts|cube|stats}:{plant}" where plant is a registered plant id
// or "*" for every plant the subscriber may see.
func ParseChannel(s string) (Channel, error) {
	kind, plant, ok := strings.Cut(s, ":")
	if !ok || plant == "" {
		return Channel{}, fmt.Errorf("wire: channel %q: want kind:plant (e.g. alerts:plant-a, cube:*)", s)
	}
	var k EventKind
	switch kind {
	case "alerts":
		k = EventAlert
	case "cube":
		k = EventCubeDelta
	case "stats":
		k = EventStats
	default:
		return Channel{}, fmt.Errorf("wire: channel %q: unknown kind %q (want alerts|cube|stats)", s, kind)
	}
	if plant != "*" {
		if err := ValidIdent("plant", plant); err != nil {
			return Channel{}, err
		}
	}
	return Channel{Kind: k, Plant: plant}, nil
}

// SubscribeRequest selects the channels of one subscription and where
// to resume each plant's stream. It travels as the query string of
// GET /v1/subscribe and GET /v1/events — Encode and
// DecodeSubscribeRequest are the one grammar both transports and both
// ends share.
type SubscribeRequest struct {
	// Channels lists wire channel names ("alerts:plant-a", "cube:*").
	Channels []string `json:"channels"`
	// AfterSeq resumes alert delivery per plant: only alerts with
	// Seq > AfterSeq[plant] are replayed on connect.
	AfterSeq map[string]uint64 `json:"after_seq,omitempty"`
	// AfterRev suppresses the initial cube_delta/stats replay per
	// plant unless the plant's data revision exceeds AfterRev[plant].
	AfterRev map[string]uint64 `json:"after_rev,omitempty"`
}

// Encode renders the request as URL query values: one "channel" value
// per channel, and "after_seq"/"after_rev" values of the form
// "plant=n", sorted by plant for a deterministic encoding.
func (r SubscribeRequest) Encode() url.Values {
	v := url.Values{}
	for _, ch := range r.Channels {
		v.Add("channel", ch)
	}
	encodeSeqMap(v, "after_seq", r.AfterSeq)
	encodeSeqMap(v, "after_rev", r.AfterRev)
	return v
}

func encodeSeqMap(v url.Values, key string, m map[string]uint64) {
	plants := make([]string, 0, len(m))
	for p := range m {
		plants = append(plants, p)
	}
	sort.Strings(plants)
	for _, p := range plants {
		v.Add(key, p+"="+strconv.FormatUint(m[p], 10))
	}
}

// DecodeSubscribeRequest parses what Encode produced. At least one
// channel is required; every channel must parse; duplicate resume
// entries for one plant are rejected.
func DecodeSubscribeRequest(v url.Values) (SubscribeRequest, error) {
	var r SubscribeRequest
	for _, ch := range v["channel"] {
		if _, err := ParseChannel(ch); err != nil {
			return SubscribeRequest{}, err
		}
		r.Channels = append(r.Channels, ch)
	}
	if len(r.Channels) == 0 {
		return SubscribeRequest{}, fmt.Errorf("wire: subscribe needs at least one channel parameter")
	}
	var err error
	if r.AfterSeq, err = decodeSeqMap(v, "after_seq"); err != nil {
		return SubscribeRequest{}, err
	}
	if r.AfterRev, err = decodeSeqMap(v, "after_rev"); err != nil {
		return SubscribeRequest{}, err
	}
	return r, nil
}

func decodeSeqMap(v url.Values, key string) (map[string]uint64, error) {
	vals := v[key]
	if len(vals) == 0 {
		return nil, nil
	}
	m := make(map[string]uint64, len(vals))
	for _, s := range vals {
		plant, num, ok := strings.Cut(s, "=")
		if !ok || plant == "" {
			return nil, fmt.Errorf("wire: %s %q: want plant=n", key, s)
		}
		n, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wire: %s %q: %v", key, s, err)
		}
		if _, dup := m[plant]; dup {
			return nil, fmt.Errorf("wire: %s repeats plant %q", key, plant)
		}
		m[plant] = n
	}
	return m, nil
}
