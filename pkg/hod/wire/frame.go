package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary columnar ingest format ("HODB"). One request body is a
// sequence of length-prefixed frames; each frame is self-describing —
// it carries frame-local string dictionaries for the four identifier
// columns and stores the per-record identifiers as int32 dictionary
// indexes, columnar, little-endian:
//
//	u32   payload length (bytes after this prefix)
//	4B    magic "HODB"
//	u8    version (1)
//	u8    reserved (0)
//	4×    dictionary (machines, jobs, phases, sensors):
//	        u16 count, then count × (u16 length + bytes)
//	u32   record count n
//	n×i32 machine index   (-1 marks an environment record)
//	n×i32 job index       (-1 on environment records)
//	n×i32 phase index     (-1 on environment records)
//	n×i32 sensor index
//	n×i32 t
//	n×u64 value (IEEE-754 bits)
//
// Dictionary indexes out of range, inconsistent env markers, truncated
// or oversized frames are structural errors (ErrFrame): unlike a bad
// record in an NDJSON body they reject the whole request with 400 and
// the bad_frame code. Identifier *semantics* (unknown machine, unknown
// phase, non-finite value, t out of range) stay per-record rejections,
// exactly like the text codecs.
const (
	// ContentTypeBinary negotiates the binary columnar batch format on
	// POST ingest.
	ContentTypeBinary = "application/x-hod-batch"

	frameMagic   = "HODB"
	frameVersion = 1

	// MaxFrameBytes caps one frame's payload; bigger batches are split
	// into multiple frames.
	MaxFrameBytes = 64 << 20

	maxDictEntries = 1<<16 - 1
)

// ErrFrame marks a structurally malformed binary frame. Every decode
// error of the binary codec matches it with errors.Is.
var ErrFrame = errors.New("wire: malformed binary frame")

// Frame is one decoded (or to-be-encoded) binary batch: the four
// frame-local dictionaries plus the columnar record arrays. The
// identifier columns index their dictionaries; Machine -1 marks an
// environment record (Job and Phase are -1 there too). A Frame is
// reusable across Reset calls — decode and encode both append into the
// existing backing arrays.
type Frame struct {
	Machines, Jobs, Phases, Sensors []string

	Machine, Job, Phase, Sensor, T []int32
	Value                          []float64
}

// Len returns the number of records in the frame.
func (f *Frame) Len() int { return len(f.Value) }

// Reset empties the frame, keeping the backing arrays for reuse.
func (f *Frame) Reset() {
	f.Machines, f.Jobs, f.Phases, f.Sensors =
		f.Machines[:0], f.Jobs[:0], f.Phases[:0], f.Sensors[:0]
	f.Machine, f.Job, f.Phase, f.Sensor, f.T =
		f.Machine[:0], f.Job[:0], f.Phase[:0], f.Sensor[:0], f.T[:0]
	f.Value = f.Value[:0]
}

// AppendFrame encodes the frame onto dst and returns the extended
// slice. Column lengths must agree and the dictionaries must fit the
// u16 count fields; the indexes themselves are trusted (the decoder
// re-checks them, so a buggy encoder cannot slip past a conforming
// reader).
//
//hod:hotpath
//hod:allow(hotpath) every fmt.Errorf here sits on a malformed-frame return; the encode success path only appends to dst
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	n := len(f.Value)
	if len(f.Machine) != n || len(f.Job) != n || len(f.Phase) != n ||
		len(f.Sensor) != n || len(f.T) != n {
		return nil, fmt.Errorf("%w: ragged columns", ErrFrame)
	}
	if n > MaxBatchRecords {
		return nil, fmt.Errorf("%w: %d records exceed the %d cap", ErrFrame, n, MaxBatchRecords)
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // payload length backpatched below
	start := len(dst)
	dst = append(dst, frameMagic...)
	dst = append(dst, frameVersion, 0)
	for _, dict := range [][]string{f.Machines, f.Jobs, f.Phases, f.Sensors} {
		if len(dict) > maxDictEntries {
			return nil, fmt.Errorf("%w: dictionary of %d entries exceeds the %d cap", ErrFrame, len(dict), maxDictEntries)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(dict)))
		for _, s := range dict {
			if len(s) > maxDictEntries {
				return nil, fmt.Errorf("%w: dictionary entry of %d bytes", ErrFrame, len(s))
			}
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
			dst = append(dst, s...)
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	for _, col := range [][]int32{f.Machine, f.Job, f.Phase, f.Sensor, f.T} {
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		}
	}
	for _, v := range f.Value {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	payload := len(dst) - start
	if payload > MaxFrameBytes {
		return nil, fmt.Errorf("%w: payload of %d bytes exceeds the %d cap", ErrFrame, payload, MaxFrameBytes)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(payload))
	return dst, nil
}

// ReadFrame reads and parses one frame from r into f (resetting it
// first). It returns io.EOF — and only io.EOF — when the reader is
// cleanly exhausted before a length prefix; every malformed or
// truncated frame is an ErrFrame.
func ReadFrame(r io.Reader, f *Frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: truncated length prefix: %v", ErrFrame, err)
	}
	size := binary.LittleEndian.Uint32(hdr[:])
	if size < uint32(len(frameMagic))+2 || size > MaxFrameBytes {
		return fmt.Errorf("%w: payload length %d outside [%d, %d]", ErrFrame, size, len(frameMagic)+2, MaxFrameBytes)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("%w: truncated payload: %v", ErrFrame, err)
	}
	return DecodeFrame(buf, f)
}

// DecodeFrame parses one frame payload (the bytes after the length
// prefix) into f, resetting it first. Structural violations —
// truncation, trailing bytes, dictionary indexes out of range,
// inconsistent environment markers — return ErrFrame.
//
//hod:hotpath
//hod:allow(hotpath) every fmt.Errorf sits on a corrupt-input return, and the magic-check []byte→string comparison is compiler-elided (never escapes)
func DecodeFrame(p []byte, f *Frame) error {
	f.Reset()
	if len(p) < len(frameMagic)+2 || string(p[:len(frameMagic)]) != frameMagic {
		return fmt.Errorf("%w: bad magic", ErrFrame)
	}
	if v := p[len(frameMagic)]; v != frameVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrFrame, v)
	}
	p = p[len(frameMagic)+2:]
	var err error
	if f.Machines, p, err = readDict(f.Machines, p); err != nil {
		return err
	}
	if f.Jobs, p, err = readDict(f.Jobs, p); err != nil {
		return err
	}
	if f.Phases, p, err = readDict(f.Phases, p); err != nil {
		return err
	}
	if f.Sensors, p, err = readDict(f.Sensors, p); err != nil {
		return err
	}
	if len(p) < 4 {
		return fmt.Errorf("%w: truncated record count", ErrFrame)
	}
	n := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if n > MaxBatchRecords {
		return fmt.Errorf("%w: %d records exceed the %d cap", ErrFrame, n, MaxBatchRecords)
	}
	if uint64(len(p)) != uint64(n)*(5*4+8) {
		return fmt.Errorf("%w: %d column bytes for %d records", ErrFrame, len(p), n)
	}
	if f.Machine, p, err = readI32Col(f.Machine, p, int(n), len(f.Machines), "machine"); err != nil {
		return err
	}
	if f.Job, p, err = readI32Col(f.Job, p, int(n), len(f.Jobs), "job"); err != nil {
		return err
	}
	if f.Phase, p, err = readI32Col(f.Phase, p, int(n), len(f.Phases), "phase"); err != nil {
		return err
	}
	if f.Sensor, p, err = readI32Col(f.Sensor, p, int(n), len(f.Sensors), "sensor"); err != nil {
		return err
	}
	for i := 0; i < int(n); i++ {
		f.T = append(f.T, int32(binary.LittleEndian.Uint32(p[i*4:])))
	}
	p = p[int(n)*4:]
	for i := 0; i < int(n); i++ {
		f.Value = append(f.Value, math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:])))
	}
	for i := 0; i < int(n); i++ {
		env := f.Machine[i] < 0
		if env != (f.Job[i] < 0) || env != (f.Phase[i] < 0) {
			return fmt.Errorf("%w: record %d: inconsistent environment marker", ErrFrame, i)
		}
		if f.Sensor[i] < 0 {
			return fmt.Errorf("%w: record %d: sensor index %d out of range", ErrFrame, i, f.Sensor[i])
		}
	}
	return nil
}

// readDict decodes one length-prefixed string dictionary.
//
//hod:allow(hotpath) the dictionary is the one sanctioned byte→string boundary: at most 65535 entries per frame, and consumers intern the entries before per-record work
func readDict(dst []string, p []byte) ([]string, []byte, error) {
	if len(p) < 2 {
		return nil, nil, fmt.Errorf("%w: truncated dictionary", ErrFrame)
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	for i := 0; i < n; i++ {
		if len(p) < 2 {
			return nil, nil, fmt.Errorf("%w: truncated dictionary entry", ErrFrame)
		}
		l := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < l {
			return nil, nil, fmt.Errorf("%w: truncated dictionary entry", ErrFrame)
		}
		dst = append(dst, string(p[:l]))
		p = p[l:]
	}
	return dst, p, nil
}

// readI32Col decodes one int32 column, range-checking every index.
//
//hod:allow(hotpath) the single fmt.Errorf is the out-of-range corrupt-input return; the decode loop itself is fmt-free
func readI32Col(dst []int32, p []byte, n, dictLen int, name string) ([]int32, []byte, error) {
	for i := 0; i < n; i++ {
		v := int32(binary.LittleEndian.Uint32(p[i*4:]))
		if v < -1 || int(v) >= dictLen {
			return nil, nil, fmt.Errorf("%w: record %d: %s index %d outside dictionary of %d", ErrFrame, i, name, v, dictLen)
		}
		dst = append(dst, v)
	}
	return dst, p[n*4:], nil
}

// FrameBuilder accumulates Records into a Frame, interning identifier
// strings into the frame-local dictionaries — the client-side half of
// the binary codec (Client.BatchStream in binary mode flushes through
// one of these).
type FrameBuilder struct {
	f                                   Frame
	machineID, jobID, phaseID, sensorID map[string]int32
}

// NewFrameBuilder returns an empty builder.
func NewFrameBuilder() *FrameBuilder {
	return &FrameBuilder{
		machineID: make(map[string]int32),
		jobID:     make(map[string]int32),
		phaseID:   make(map[string]int32),
		sensorID:  make(map[string]int32),
	}
}

func internInto(dict *[]string, ids map[string]int32, s string) int32 {
	if id, ok := ids[s]; ok {
		return id
	}
	id := int32(len(*dict))
	*dict = append(*dict, s)
	ids[s] = id
	return id
}

// Add appends one record.
func (b *FrameBuilder) Add(rec Record) {
	f := &b.f
	if rec.Env {
		f.Machine = append(f.Machine, -1)
		f.Job = append(f.Job, -1)
		f.Phase = append(f.Phase, -1)
	} else {
		f.Machine = append(f.Machine, internInto(&f.Machines, b.machineID, rec.Machine))
		f.Job = append(f.Job, internInto(&f.Jobs, b.jobID, rec.Job))
		f.Phase = append(f.Phase, internInto(&f.Phases, b.phaseID, rec.Phase))
	}
	f.Sensor = append(f.Sensor, internInto(&f.Sensors, b.sensorID, rec.Sensor))
	f.T = append(f.T, int32(rec.T))
	f.Value = append(f.Value, rec.Value)
}

// Len returns the number of accumulated records.
func (b *FrameBuilder) Len() int { return b.f.Len() }

// AppendTo encodes the accumulated frame onto dst.
func (b *FrameBuilder) AppendTo(dst []byte) ([]byte, error) { return AppendFrame(dst, &b.f) }

// Reset empties the builder for the next frame.
func (b *FrameBuilder) Reset() {
	b.f.Reset()
	clear(b.machineID)
	clear(b.jobID)
	clear(b.phaseID)
	clear(b.sensorID)
}

// EncodeBinary renders records as binary frames — the columnar
// equivalent of EncodeNDJSON. Batches beyond the per-request record
// cap are rejected like the text decoders reject them.
func EncodeBinary(recs []Record) ([]byte, error) {
	if len(recs) > MaxBatchRecords {
		return nil, fmt.Errorf("batch of %d records exceeds the %d cap", len(recs), MaxBatchRecords)
	}
	b := NewFrameBuilder()
	for _, rec := range recs {
		b.Add(rec)
	}
	return b.AppendTo(nil)
}

// Records expands the frame back into Record values, appending onto
// dst — the symmetric decode used by DecodeRecords for binary bodies
// (the server's hot path skips this and resolves the dictionaries
// straight to interned ids).
func (f *Frame) Records(dst []Record) []Record {
	for i := range f.Value {
		rec := Record{Sensor: f.Sensors[f.Sensor[i]], T: int(f.T[i]), Value: f.Value[i]}
		if f.Machine[i] < 0 {
			rec.Env = true
		} else {
			rec.Machine = f.Machines[f.Machine[i]]
			rec.Job = f.Jobs[f.Job[i]]
			rec.Phase = f.Phases[f.Phase[i]]
		}
		dst = append(dst, rec)
	}
	return dst
}

// DecodeBinary parses a binary ingest body: a sequence of frames.
func DecodeBinary(r io.Reader) ([]Record, error) {
	var out []Record
	var f Frame
	for {
		err := ReadFrame(r, &f)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if len(out)+f.Len() > MaxBatchRecords {
			return nil, fmt.Errorf("%w: batch exceeds the %d-record cap", ErrFrame, MaxBatchRecords)
		}
		out = f.Records(out)
	}
}
