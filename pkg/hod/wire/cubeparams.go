package wire

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// CubeQueryParams is the query-string grammar of GET
// /v1/plants/{id}/cube — the one definition both the SDK's Cube calls
// and the server's handler compile against, so the two sides cannot
// drift. The zero value is a full-cube slice.
type CubeQueryParams struct {
	Op    string            // CubeOp*; "" = slice
	Where map[string]string // dimension=member constraints
	Keep  []string          // rollup: dimensions to keep
	Dim   string            // members/drilldown: target dimension
}

// Encode renders the query as URL values: op, keep (comma-joined),
// dim, and one "where" value per constraint as "dim=member" sorted by
// dimension — a deterministic encoding, so equal queries produce
// byte-identical request lines (and hit the same caches).
func (p CubeQueryParams) Encode() url.Values {
	v := url.Values{}
	if p.Op != "" {
		v.Set("op", p.Op)
	}
	if len(p.Keep) > 0 {
		v.Set("keep", strings.Join(p.Keep, ","))
	}
	if p.Dim != "" {
		v.Set("dim", p.Dim)
	}
	dims := make([]string, 0, len(p.Where))
	for d := range p.Where {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	for _, d := range dims {
		v.Add("where", d+"="+p.Where[d])
	}
	return v
}

// DecodeCubeQueryParams parses what Encode produced (op and keep left
// empty stay empty; a repeated or malformed where constraint is an
// error). Semantic validation — known ops, known dimensions — stays
// with the cube evaluator; this is only the shared grammar.
func DecodeCubeQueryParams(v url.Values) (CubeQueryParams, error) {
	p := CubeQueryParams{Op: v.Get("op"), Dim: v.Get("dim")}
	if keep := v.Get("keep"); keep != "" {
		p.Keep = strings.Split(keep, ",")
	}
	raw := v["where"]
	if len(raw) == 0 {
		return p, nil
	}
	p.Where = make(map[string]string, len(raw))
	for _, w := range raw {
		dim, member, ok := strings.Cut(w, "=")
		if !ok || dim == "" || member == "" {
			return CubeQueryParams{}, fmt.Errorf("wire: bad where constraint %q (want where=dim=member)", w)
		}
		if _, dup := p.Where[dim]; dup {
			return CubeQueryParams{}, fmt.Errorf("wire: duplicate where constraint for dimension %q", dim)
		}
		p.Where[dim] = member
	}
	return p, nil
}
