package wire

// Cluster node states of the membership table. An active node takes
// plant placements; a draining node keeps serving but receives no new
// placements; a down node is excluded entirely (its standbys promote).
const (
	NodeActive   = "active"
	NodeDraining = "draining"
	NodeDown     = "down"
)

// ClusterNode is one hodserve node of a cluster: its stable identity,
// its base URL as the router dials it, and its membership state.
type ClusterNode struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	State string `json:"state"`
}

// ClusterMembership is the epoch-versioned membership table the router
// pushes to every node. Placement is a pure function of (membership,
// plant id), so a router and a node holding the same epoch can never
// disagree on an owner.
type ClusterMembership struct {
	Epoch uint64        `json:"epoch"`
	Nodes []ClusterNode `json:"nodes"`
}

// ClusterPlacement reports where one plant lives: the owning node and
// the warm standby tailing its WAL (empty when the cluster has no
// second active node).
type ClusterPlacement struct {
	Plant   string `json:"plant"`
	Owner   string `json:"owner"`
	Standby string `json:"standby,omitempty"`
}

// ClusterStatusResponse is the router's GET /v1/cluster/status body:
// the membership table plus the placement of every registered plant.
type ClusterStatusResponse struct {
	Epoch      uint64             `json:"epoch"`
	Nodes      []ClusterNode      `json:"nodes"`
	Placements []ClusterPlacement `json:"placements,omitempty"`
}

// ClusterNodeRequest targets one node: join carries ID and Addr,
// drain/fail carry only the ID.
type ClusterNodeRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
}

// ClusterPlantRequest targets one plant on a node's internal cluster
// surface (replicate, release).
type ClusterPlantRequest struct {
	Plant string `json:"plant"`
}

// ClusterAck acknowledges a membership change: the epoch after the
// change and how many plants were moved or re-seeded because of it.
type ClusterAck struct {
	Epoch uint64 `json:"epoch"`
	Moved int    `json:"moved"`
}
