// Package wire is the single source of truth for the v1 HTTP protocol
// of the fleet serving layer: every request and response body, the
// error envelope, and the three ingest codecs (NDJSON, JSON array,
// plantsim CSV). The server (internal/server) and the typed client
// (pkg/hod.Client) both compile against these types, so a protocol
// change happens in exactly one place — and the golden-file test in
// this package pins the JSON encoding of every type, so it cannot
// happen silently.
//
// The package is dependency-free standard-library Go and importable
// from outside the module.
package wire

import "fmt"

// Default level-2 vector widths — the simulator's setup (layer height,
// speed, setpoint, extrusion, viscosity) and CAQ (dimensional error,
// roughness, porosity, tensile, warp, completion) shapes. Clients
// converting plantsim jobs.csv rows split the columns with the same
// constants the server registers by default.
const (
	DefaultSetupDims = 5
	DefaultCAQDims   = 6
)

// MaxBatchRecords caps the records of one ingest request. The decode
// helpers reject bigger batches before buffering them.
const MaxBatchRecords = 1 << 20

// Level enumerates the five production levels of the paper's Fig. 2,
// ordered from the most detailed view (phase) to the most aggregated
// (production). On the wire a level travels as its integer 1..5.
type Level int

// The five hierarchy levels.
const (
	LevelPhase Level = iota + 1
	LevelJob
	LevelEnvironment
	LevelProductionLine
	LevelProduction
)

// Valid reports whether l is one of the five levels.
func (l Level) Valid() bool { return l >= LevelPhase && l <= LevelProduction }

// String names the level like the paper does.
func (l Level) String() string {
	switch l {
	case LevelPhase:
		return "phase"
	case LevelJob:
		return "job"
	case LevelEnvironment:
		return "environment"
	case LevelProductionLine:
		return "production-line"
	case LevelProduction:
		return "production"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel accepts a level by number ("1".."5") or by name; the
// empty string means the default start level (phase).
func ParseLevel(s string) (Level, error) {
	switch s {
	case "", "1", "phase":
		return LevelPhase, nil
	case "2", "job":
		return LevelJob, nil
	case "3", "environment", "env":
		return LevelEnvironment, nil
	case "4", "production-line", "line":
		return LevelProductionLine, nil
	case "5", "production":
		return LevelProduction, nil
	}
	return 0, fmt.Errorf("wire: unknown level %q (want 1..5 or phase|job|environment|production-line|production)", s)
}

// Record is one ingested observation: either a machine sensor sample
// (Machine/Job/Phase set) or an environment sample (Env true).
type Record struct {
	Machine string  `json:"machine,omitempty"`
	Job     string  `json:"job,omitempty"`
	Phase   string  `json:"phase,omitempty"`
	Sensor  string  `json:"sensor"`
	T       int     `json:"t"`
	Value   float64 `json:"value"`
	Env     bool    `json:"env,omitempty"`
}

// JobMeta carries the level-2 vectors of one job (setup parameters and
// the CAQ quality vector), ingested out of band of the sensor stream.
type JobMeta struct {
	Machine string    `json:"machine"`
	Job     string    `json:"job"`
	Setup   []float64 `json:"setup"`
	CAQ     []float64 `json:"caq"`
	Faulty  bool      `json:"faulty,omitempty"`
}

// Topology registers one plant: its line/machine layout plus the phase
// schedule and sensor set every machine shares. Omitted phase, sensor
// and dimension fields take the server's defaults (the simulator's
// shapes), so a plantsim trace replays without ceremony.
type Topology struct {
	ID         string     `json:"id"`
	Lines      []TopoLine `json:"lines"`
	Phases     []string   `json:"phases,omitempty"`
	Sensors    []string   `json:"sensors,omitempty"`
	EnvSensors []string   `json:"env_sensors,omitempty"`
	SetupDims  int        `json:"setup_dims,omitempty"`
	CAQDims    int        `json:"caq_dims,omitempty"`
}

// TopoLine is one production line of the registered fleet.
type TopoLine struct {
	ID       string   `json:"id"`
	Machines []string `json:"machines"`
}

// Validate checks the parts of a topology the server will reject:
// missing ids, empty lines, duplicate machines, control characters in
// identifiers (reserved by the cube's coordinate keys), too-narrow
// setup vectors.
func (t Topology) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("wire: topology needs an id")
	}
	if len(t.Lines) == 0 {
		return fmt.Errorf("wire: topology %s has no lines", t.ID)
	}
	seen := map[string]bool{}
	for _, l := range t.Lines {
		if l.ID == "" {
			return fmt.Errorf("wire: topology %s has a line without id", t.ID)
		}
		if err := ValidIdent("line", l.ID); err != nil {
			return err
		}
		if len(l.Machines) == 0 {
			return fmt.Errorf("wire: line %s has no machines", l.ID)
		}
		for _, m := range l.Machines {
			if m == "" {
				return fmt.Errorf("wire: line %s has an empty machine id", l.ID)
			}
			if err := ValidIdent("machine", m); err != nil {
				return err
			}
			if seen[m] {
				return fmt.Errorf("wire: machine %s registered twice", m)
			}
			seen[m] = true
		}
	}
	for _, kind := range []struct {
		name string
		ids  []string
	}{
		{"phase", t.Phases}, {"sensor", t.Sensors}, {"environment sensor", t.EnvSensors},
	} {
		for _, id := range kind.ids {
			if err := ValidIdent(kind.name, id); err != nil {
				return err
			}
		}
	}
	if t.SetupDims != 0 && t.SetupDims < 3 {
		return fmt.Errorf("wire: setup_dims must be >= 3 (index 2 is the setpoint)")
	}
	return nil
}

// ValidIdent rejects identifiers carrying control characters —
// topology ids (and the free-form job ids the ingest path vets with
// the same rule) become cube coordinate members, whose keys reserve
// the 0x1f separator (and sibling control bytes buy nothing but
// trouble in CSV and log output either). The one policy definition for
// registration, ingest, and restore gates.
func ValidIdent(kind, id string) error {
	for _, r := range id {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("wire: %s id %q contains a control character", kind, id)
		}
	}
	return nil
}

// RegisterAck acknowledges a plant registration.
type RegisterAck struct {
	ID         string `json:"id"`
	Lines      int    `json:"lines"`
	Machines   int    `json:"machines"`
	Shards     int    `json:"shards"`
	QueueDepth int    `json:"queue_depth"`
}

// PlantList is the GET /v1/plants response.
type PlantList struct {
	Plants []string `json:"plants"`
}

// IngestAck acknowledges one sample batch: how many records were
// admitted, how many failed validation, and the first rejection reason
// (empty when everything was admitted).
type IngestAck struct {
	Records        int    `json:"records"`
	Rejected       int    `json:"rejected"`
	FirstRejection string `json:"first_rejection,omitempty"`
}

// JobsAck acknowledges a job-metadata batch.
type JobsAck struct {
	Jobs           int    `json:"jobs"`
	Rejected       int    `json:"rejected"`
	FirstRejection string `json:"first_rejection,omitempty"`
}

// Outlier is the algorithm's result record on the wire: the paper's
// triple ⟨global score, outlierness, support⟩ plus the location of the
// finding. Levels travel as integers 1..5.
type Outlier struct {
	Level       Level   `json:"level"`
	Sensor      string  `json:"sensor,omitempty"` // phase level only
	Index       int     `json:"index"`            // position on the start level's axis
	JobIndex    int     `json:"job"`              // the job the finding falls into
	GlobalScore int     `json:"global_score"`
	Outlierness float64 `json:"outlierness"`
	Support     float64 `json:"support"`
	// SeenAt lists every level that confirmed the outlier during the
	// global-score recursion (includes the start level).
	SeenAt []Level `json:"seen_at"`
}

// Warning is a measurement-error warning from Algorithm 1's downward
// pass: an outlier visible at Level but absent at Below.
type Warning struct {
	Level    Level  `json:"level"`
	Below    Level  `json:"below"`
	JobIndex int    `json:"job"`
	Sensor   string `json:"sensor,omitempty"`
	Reason   string `json:"reason"`
}

// FleetOutlier is one outlier of the fleet report, tagged with the
// machine it belongs to.
type FleetOutlier struct {
	Machine string `json:"machine"`
	Outlier
}

// FleetWarning is one measurement-error warning, machine-tagged.
type FleetWarning struct {
	Machine string `json:"machine"`
	Reason  string `json:"reason"`
}

// ReportResponse is the fleet outlier report: per-machine Algorithm 1
// runs over the incremental snapshot, ranked fleet-wide, top-K
// truncated.
type ReportResponse struct {
	Plant         string         `json:"plant"`
	Level         string         `json:"level"`
	Machines      []string       `json:"machines"`
	Missing       []string       `json:"missing,omitempty"`
	TotalOutliers int            `json:"total_outliers"`
	TopK          int            `json:"top_k"`
	Outliers      []FleetOutlier `json:"outliers"`
	Warnings      []FleetWarning `json:"warnings,omitempty"`
	DataRevision  uint64         `json:"data_revision"`
}

// RollupNode is one aggregate of the incremental roll-up tree.
type RollupNode struct {
	Key   string  `json:"key"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// RollupResponse is the GET rollup body.
type RollupResponse struct {
	Plant string       `json:"plant"`
	Level string       `json:"level"`
	Nodes []RollupNode `json:"nodes"`
}

// Cube query operations accepted by GET /v1/plants/{id}/cube.
const (
	CubeOpSlice     = "slice"
	CubeOpRollup    = "rollup"
	CubeOpMembers   = "members"
	CubeOpDrilldown = "drilldown"
)

// CubeDims returns the dimension names of the v1 serving cube, in
// coordinate order — the single definition the server's incremental
// cube and the SDK's batch builder both construct from.
func CubeDims() []string {
	return []string{"line", "machine", "job", "phase", "sensor"}
}

// CubeCell is one aggregate cell of the OLAP cube: the coordinate
// along the response's Dims plus the measure aggregates folded from
// every fact landing in the cell.
type CubeCell struct {
	Coord []string `json:"coord"`
	Count int      `json:"count"`
	Sum   float64  `json:"sum"`
	Mean  float64  `json:"mean"`
	Min   float64  `json:"min"`
	Max   float64  `json:"max"`
}

// CubeResponse is the GET cube body: the answer to one slice, rollup,
// members, or drilldown query over the plant's incrementally
// maintained cube. Dims names the coordinate axes of Cells (in order);
// Where echoes the applied dim=member constraints sorted by dimension;
// TotalCells counts the materialised cells of the full cube the query
// ran against. Cells are in deterministic coordinate order.
type CubeResponse struct {
	Plant      string     `json:"plant"`
	Op         string     `json:"op"`
	Dims       []string   `json:"dims"`
	Where      []string   `json:"where,omitempty"`
	Members    []string   `json:"members,omitempty"`
	Cells      []CubeCell `json:"cells,omitempty"`
	TotalCells int        `json:"total_cells"`
}

// Alert is one streaming detection event raised at ingest time by the
// per-sensor EWMA tracker — the live complement of the batch report.
// Seq is the plant-wide alert sequence number assigned in fold order;
// push subscribers deduplicate and resume by it.
type Alert struct {
	Seq     uint64  `json:"seq"`
	Machine string  `json:"machine"`
	Phase   string  `json:"phase"`
	Sensor  string  `json:"sensor"`
	T       int     `json:"t"`
	Value   float64 `json:"value"`
	Score   float64 `json:"score"`
}

// AlertsResponse is the GET alerts body.
type AlertsResponse struct {
	Plant  string  `json:"plant"`
	Alerts []Alert `json:"alerts"`
}

// StatsResponse reports one plant's ingest counters, queue depths,
// and durability gauges. ReceivedRecords counts every valid record
// folded through the pipeline — fresh or idempotent replay — which is
// what drain-watchers must poll (AcceptedRecords counts only fresh
// cells, so a re-sent trace never advances it). WALSegments and
// SnapshotRev are zero when the server runs without a data dir.
type StatsResponse struct {
	Plant           string `json:"plant"`
	AcceptedRecords uint64 `json:"accepted_records"`
	ReceivedRecords uint64 `json:"received_records"`
	RejectedRecords uint64 `json:"rejected_records"`
	ShedBatches     uint64 `json:"shed_batches"`
	DataRevision    uint64 `json:"data_revision"`
	Shards          int    `json:"shards"`
	QueueDepths     []int  `json:"queue_depths"`
	WALSegments     int    `json:"wal_segments"`
	SnapshotRev     uint64 `json:"snapshot_rev"`
}

// RestoreAck acknowledges a POST restore: the plant now serves the
// backup's state.
type RestoreAck struct {
	ID          string `json:"id"`
	Machines    int    `json:"machines"`
	Records     uint64 `json:"records"` // received_records carried by the backup
	SnapshotRev uint64 `json:"snapshot_rev"`
}

// Machine-readable error codes of the v1 API. The typed client maps
// them onto errors.Is-able sentinel values.
const (
	CodeBadRequest        = "bad_request"
	CodeBadFrame          = "bad_frame"
	CodeUnknownPlant      = "unknown_plant"
	CodeUnknownMachine    = "unknown_machine"
	CodeAlreadyRegistered = "already_registered"
	CodeBackpressure      = "backpressure"
	CodeShuttingDown      = "shutting_down"
	CodeNoData            = "no_data"
	CodeVectorDims        = "vector_dims"
	CodeInternal          = "internal"
	CodeUnauthorized      = "unauthorized"
	CodeForbidden         = "forbidden"
	CodeRateLimited       = "rate_limited"
	// Cluster-mode codes: the node answering is not the plant's owner
	// at the current epoch, or ownership is in flux (a promotion or a
	// plant move). Both ride a 503 + Retry-After and are safe to retry.
	CodeNotOwner = "not_owner"
	CodeFailover = "failover"
)

// ErrorBody is the machine-readable half of an error response.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the body of every non-2xx v1 response:
// {"error":{"code":"...","message":"..."}}.
type ErrorEnvelope struct {
	Err ErrorBody `json:"error"`
}
