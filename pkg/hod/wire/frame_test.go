package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

func frameRecords() []Record {
	return []Record{
		{Machine: "line-0/m-0", Job: "job-1", Phase: "print", Sensor: "temp", T: 0, Value: 21.5},
		{Machine: "line-0/m-0", Job: "job-1", Phase: "print", Sensor: "vibration", T: 0, Value: 0.25},
		{Machine: "line-0/m-1", Job: "job-2", Phase: "cure", Sensor: "temp", T: 3, Value: math.Inf(1)},
		{Env: true, Sensor: "hall-temp", T: 1, Value: 19.75},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	in := frameRecords()
	body, err := EncodeBinary(in)
	if err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	out, err := DecodeBinary(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip drifted:\n in=%v\nout=%v", in, out)
	}
	// Two frames in one body concatenate.
	out, err = DecodeBinary(bytes.NewReader(append(append([]byte(nil), body...), body...)))
	if err != nil {
		t.Fatalf("DecodeBinary two frames: %v", err)
	}
	if want := append(append([]Record(nil), in...), in...); !reflect.DeepEqual(want, out) {
		t.Fatalf("two-frame decode drifted: %v", out)
	}
}

func TestBinaryDecodeEmptyBody(t *testing.T) {
	out, err := DecodeBinary(bytes.NewReader(nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty body: got %v, %v", out, err)
	}
}

func TestReadFrameCleanEOFOnly(t *testing.T) {
	body, err := EncodeBinary(frameRecords())
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	r := bytes.NewReader(body)
	if err := ReadFrame(r, &f); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if err := ReadFrame(r, &f); err != io.EOF {
		t.Fatalf("clean end: want io.EOF, got %v", err)
	}
}

// mutateFrame re-encodes the canonical records and applies fn to the
// raw body before decoding.
func mutateFrame(t *testing.T, fn func([]byte) []byte) error {
	t.Helper()
	body, err := EncodeBinary(frameRecords())
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeBinary(bytes.NewReader(fn(body)))
	return err
}

func TestBinaryDecodeRejections(t *testing.T) {
	cases := []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"truncated prefix", func(b []byte) []byte { return b[:2] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }},
		{"trailing garbage frame", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
		{"bad magic", func(b []byte) []byte { b[4] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[8] = 99; return b }},
		{"oversized length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b, MaxFrameBytes+1)
			return b
		}},
		{"undersized length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b, 3)
			return b
		}},
		{"machine index out of range", func(b []byte) []byte {
			// First machine column entry sits right after the record
			// count; overwrite it with a huge index.
			i := bytes.Index(b, []byte("hall-temp")) + len("hall-temp") + 4
			binary.LittleEndian.PutUint32(b[i:], 1<<20)
			return b
		}},
		{"inconsistent env marker", func(b []byte) []byte {
			// Flip the first record's machine index to -1 while its
			// job/phase indexes stay valid.
			i := bytes.Index(b, []byte("hall-temp")) + len("hall-temp") + 4
			binary.LittleEndian.PutUint32(b[i:], uint32(0xffffffff))
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mutateFrame(t, tc.fn)
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("want ErrFrame, got %v", err)
			}
		})
	}
}

func TestAppendFrameRejectsRaggedAndOversized(t *testing.T) {
	f := &Frame{
		Machines: []string{"m"}, Jobs: []string{"j"}, Phases: []string{"p"}, Sensors: []string{"s"},
		Machine: []int32{0, 0}, Job: []int32{0}, Phase: []int32{0}, Sensor: []int32{0},
		T: []int32{0}, Value: []float64{1},
	}
	if _, err := AppendFrame(nil, f); !errors.Is(err, ErrFrame) {
		t.Fatalf("ragged columns: want ErrFrame, got %v", err)
	}
	huge := &Frame{Machines: []string{strings.Repeat("x", maxDictEntries+1)}}
	if _, err := AppendFrame(nil, huge); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized dict entry: want ErrFrame, got %v", err)
	}
}

func TestDecodeRecordsBinaryContentType(t *testing.T) {
	in := frameRecords()
	body, err := EncodeBinary(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecords(bytes.NewReader(body), ContentTypeBinary)
	if err != nil {
		t.Fatalf("DecodeRecords binary: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("DecodeRecords drifted: %v", out)
	}
}
