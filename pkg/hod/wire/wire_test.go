package wire

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/wire_golden.json from the current encoders")

// goldenCases pins the JSON encoding of every request/response type of
// the v1 protocol. Each case is encoded, compared byte-for-byte against
// testdata/wire_golden.json, and round-tripped back into its Go type —
// so an SDK refactor cannot silently move a field, rename a tag, or
// change omitempty behaviour without updating the golden file (and
// thereby declaring a protocol change).
func goldenCases() []struct {
	Name  string
	Value any
} {
	return []struct {
		Name  string
		Value any
	}{
		{"record_machine", Record{Machine: "line-1/m1", Job: "j1", Phase: "print", Sensor: "temp-a", T: 7, Value: 21.5}},
		{"record_env", Record{Env: true, Sensor: "room-temp", T: 3, Value: 19.25}},
		{"job_meta", JobMeta{Machine: "line-1/m1", Job: "j1", Setup: []float64{0.2, 40, 210, 1, 0.5}, CAQ: []float64{0.1, 2, 3, 40, 0.2, 1}, Faulty: true}},
		{"topology", Topology{ID: "p1", Lines: []TopoLine{{ID: "line-1", Machines: []string{"line-1/m1", "line-1/m2"}}}, Phases: []string{"print"}, Sensors: []string{"temp-a"}, EnvSensors: []string{"room-temp"}, SetupDims: 5, CAQDims: 6}},
		{"topology_minimal", Topology{ID: "p2", Lines: []TopoLine{{ID: "l", Machines: []string{"m"}}}}},
		{"register_ack", RegisterAck{ID: "p1", Lines: 2, Machines: 6, Shards: 4, QueueDepth: 64}},
		{"plant_list", PlantList{Plants: []string{"p1", "p2"}}},
		{"ingest_ack", IngestAck{Records: 120, Rejected: 2, FirstRejection: `unknown sensor "nope"`}},
		{"ingest_ack_clean", IngestAck{Records: 120}},
		{"jobs_ack", JobsAck{Jobs: 11, Rejected: 1, FirstRejection: "missing job id"}},
		{"outlier", Outlier{Level: LevelPhase, Sensor: "temp-a", Index: 41, JobIndex: 2, GlobalScore: 3, Outlierness: 0.75, Support: 1, SeenAt: []Level{LevelPhase, LevelJob, LevelEnvironment}}},
		{"warning", Warning{Level: LevelJob, Below: LevelPhase, JobIndex: 4, Sensor: "temp-b", Reason: "outlier at job level not confirmed at phase level: possible wrong measurement"}},
		{"fleet_outlier", FleetOutlier{Machine: "line-1/m1", Outlier: Outlier{Level: LevelPhase, Sensor: "power", Index: 9, JobIndex: 0, GlobalScore: 1, Outlierness: 0.5, Support: 0, SeenAt: []Level{LevelPhase}}}},
		{"fleet_warning", FleetWarning{Machine: "line-1/m1", Reason: "possible wrong measurement"}},
		{"report_response", ReportResponse{
			Plant: "p1", Level: "phase", Machines: []string{"line-1/m1"}, Missing: []string{"line-1/m2"},
			TotalOutliers: 1, TopK: 20,
			Outliers:     []FleetOutlier{{Machine: "line-1/m1", Outlier: Outlier{Level: LevelPhase, Sensor: "temp-a", Index: 1, GlobalScore: 2, Outlierness: 0.6, Support: 1, SeenAt: []Level{LevelPhase, LevelJob}}}},
			Warnings:     []FleetWarning{{Machine: "line-1/m1", Reason: "r"}},
			DataRevision: 12,
		}},
		{"rollup_node", RollupNode{Key: "line-1/m1/print", Count: 40, Mean: 1.5, Std: 0.25, Min: 1, Max: 2}},
		{"cube_cell", CubeCell{Coord: []string{"line-1", "line-1/m1", "j1", "print", "temp-a"}, Count: 40, Sum: 60, Mean: 1.5, Min: 1, Max: 2}},
		{"cube_response", CubeResponse{
			Plant: "p1", Op: CubeOpDrilldown, Dims: []string{"line", "machine"},
			Where:      []string{"line=line-1"},
			Cells:      []CubeCell{{Coord: []string{"line-1", "line-1/m1"}, Count: 2, Sum: 6, Mean: 3, Min: 2, Max: 4}},
			TotalCells: 12,
		}},
		{"cube_response_members", CubeResponse{
			Plant: "p1", Op: CubeOpMembers, Dims: []string{"line", "machine", "job", "phase", "sensor"},
			Members: []string{"print", "recoat"}, TotalCells: 12,
		}},
		{"rollup_response", RollupResponse{Plant: "p1", Level: "machine", Nodes: []RollupNode{{Key: "line-1/m1", Count: 2, Mean: 3, Std: 0, Min: 3, Max: 3}}}},
		{"alert", Alert{Seq: 41, Machine: "line-1/m1", Phase: "print", Sensor: "vibration", T: 99, Value: 6.5, Score: 11.25}},
		{"alerts_response", AlertsResponse{Plant: "p1", Alerts: []Alert{{Seq: 1, Machine: "m", Phase: "p", Sensor: "s", T: 1, Value: 2, Score: 9}}}},
		{"stats_response", StatsResponse{Plant: "p1", AcceptedRecords: 1000, ReceivedRecords: 1010, RejectedRecords: 4, ShedBatches: 2, DataRevision: 17, Shards: 4, QueueDepths: []int{0, 1, 0, 0}, WALSegments: 3, SnapshotRev: 2}},
		{"restore_ack", RestoreAck{ID: "p1", Machines: 6, Records: 1010, SnapshotRev: 2}},
		{"error_envelope", ErrorEnvelope{Err: ErrorBody{Code: CodeBackpressure, Message: "ingest queue full, retry the batch"}}},
		{"event_alert", Event{Kind: EventAlert, Plant: "p1", Seq: 42, Coalesced: true,
			Alerts: []Alert{{Seq: 42, Machine: "line-1/m1", Phase: "print", Sensor: "vibration", T: 99, Value: 6.5, Score: 11.25}}}},
		{"event_cube_delta", Event{Kind: EventCubeDelta, Plant: "p1", Revision: 17}},
		{"event_stats", Event{Kind: EventStats, Plant: "p1", Revision: 17,
			Stats: &StatsResponse{Plant: "p1", AcceptedRecords: 10, ReceivedRecords: 10, DataRevision: 17, Shards: 1, QueueDepths: []int{0}}}},
		{"subscribe_request", SubscribeRequest{Channels: []string{"alerts:p1", "cube:*"},
			AfterSeq: map[string]uint64{"p1": 42}, AfterRev: map[string]uint64{"p1": 17}}},
		{"cluster_node", ClusterNode{ID: "n1", Addr: "http://10.0.0.1:8080", State: NodeActive}},
		{"cluster_membership", ClusterMembership{Epoch: 3, Nodes: []ClusterNode{
			{ID: "n1", Addr: "http://10.0.0.1:8080", State: NodeActive},
			{ID: "n2", Addr: "http://10.0.0.2:8080", State: NodeDraining}}}},
		{"cluster_placement", ClusterPlacement{Plant: "p1", Owner: "n1", Standby: "n2"}},
		{"cluster_status_response", ClusterStatusResponse{Epoch: 3,
			Nodes:      []ClusterNode{{ID: "n1", Addr: "http://10.0.0.1:8080", State: NodeActive}},
			Placements: []ClusterPlacement{{Plant: "p1", Owner: "n1"}}}},
		{"cluster_node_request", ClusterNodeRequest{ID: "n3", Addr: "http://10.0.0.3:8080"}},
		{"cluster_plant_request", ClusterPlantRequest{Plant: "p1"}},
		{"cluster_ack", ClusterAck{Epoch: 4, Moved: 2}},
		{"error_envelope_failover", ErrorEnvelope{Err: ErrorBody{Code: CodeFailover, Message: "plant move in progress"}}},
	}
}

func goldenPath() string { return filepath.Join("testdata", "wire_golden.json") }

func TestGoldenWireCompat(t *testing.T) {
	got := map[string]json.RawMessage{}
	for _, c := range goldenCases() {
		raw, err := json.Marshal(c.Value)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		got[c.Name] = raw
	}
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath())
		return
	}
	blob, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./pkg/hod/wire -update-golden` once): %v", err)
	}
	want := map[string]json.RawMessage{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCases() {
		w, ok := want[c.Name]
		if !ok {
			t.Errorf("%s: missing from golden file — new wire type? re-run with -update-golden and review the protocol diff", c.Name)
			continue
		}
		var wc, gc bytes.Buffer
		if err := json.Compact(&wc, w); err != nil {
			t.Fatalf("%s: golden entry is not valid JSON: %v", c.Name, err)
		}
		if err := json.Compact(&gc, got[c.Name]); err != nil {
			t.Fatal(err)
		}
		if wc.String() != gc.String() {
			t.Errorf("%s: wire encoding drifted from the pinned v1 protocol\n got: %s\nwant: %s", c.Name, gc.String(), wc.String())
		}
	}
	for name := range want {
		found := false
		for _, c := range goldenCases() {
			if c.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("golden entry %q has no matching case — wire type removed without updating the golden file", name)
		}
	}
}

// TestGoldenRoundTrip decodes each golden entry back into its Go type
// and re-encodes it, proving the tags parse what they emit.
func TestGoldenRoundTrip(t *testing.T) {
	for _, c := range goldenCases() {
		raw, err := json.Marshal(c.Value)
		if err != nil {
			t.Fatal(err)
		}
		back := reflect.New(reflect.TypeOf(c.Value))
		if err := json.Unmarshal(raw, back.Interface()); err != nil {
			t.Fatalf("%s: decode: %v", c.Name, err)
		}
		if !reflect.DeepEqual(back.Elem().Interface(), c.Value) {
			t.Errorf("%s: round trip changed the value\n got: %+v\nwant: %+v", c.Name, back.Elem().Interface(), c.Value)
		}
	}
}

func TestDecodeRecordsFormats(t *testing.T) {
	want := []Record{
		{Machine: "m", Job: "j", Phase: "print", Sensor: "temp-a", T: 0, Value: 1.5},
		{Machine: "m", Job: "j", Phase: "print", Sensor: "temp-b", T: 0, Value: 2.5},
	}
	nd, err := EncodeNDJSON(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		ct   string
		body string
	}{
		{"application/x-ndjson", string(nd)},
		{"application/json", `[{"machine":"m","job":"j","phase":"print","sensor":"temp-a","t":0,"value":1.5},` +
			`{"machine":"m","job":"j","phase":"print","sensor":"temp-b","t":0,"value":2.5}]`},
		{"text/csv; charset=utf-8", "machine,job,phase,t,temp-a,temp-b\nm,j,print,0,1.5,2.5\n"},
	} {
		got, err := DecodeRecords(strings.NewReader(tc.body), tc.ct)
		if err != nil {
			t.Fatalf("%s: %v", tc.ct, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: got %+v, want %+v", tc.ct, got, want)
		}
	}
	if _, err := DecodeCSV(strings.NewReader("t,room-temp\n0,19.5\nx,20\n")); err == nil {
		t.Error("bad env CSV t accepted")
	}
	got, err := DecodeCSV(strings.NewReader("t,room-temp\n0,19.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Env || got[0].Sensor != "room-temp" {
		t.Errorf("env CSV decoded to %+v", got)
	}
}

func TestTopologyValidate(t *testing.T) {
	ok := Topology{ID: "p", Lines: []TopoLine{{ID: "l", Machines: []string{"m"}}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]Topology{
		"no id":       {Lines: []TopoLine{{ID: "l", Machines: []string{"m"}}}},
		"no lines":    {ID: "p"},
		"empty line":  {ID: "p", Lines: []TopoLine{{ID: "l"}}},
		"dup machine": {ID: "p", Lines: []TopoLine{{ID: "l", Machines: []string{"m", "m"}}}},
		"narrow dims": {ID: "p", Lines: []TopoLine{{ID: "l", Machines: []string{"m"}}}, SetupDims: 2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"": LevelPhase, "1": LevelPhase, "phase": LevelPhase,
		"2": LevelJob, "job": LevelJob,
		"3": LevelEnvironment, "env": LevelEnvironment, "environment": LevelEnvironment,
		"4": LevelProductionLine, "line": LevelProductionLine, "production-line": LevelProductionLine,
		"5": LevelProduction, "production": LevelProduction,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("6"); err == nil {
		t.Error("ParseLevel(6) accepted")
	}
	if got := LevelProductionLine.String(); got != "production-line" {
		t.Errorf("String() = %q", got)
	}
	if Level(0).Valid() || Level(6).Valid() || !LevelPhase.Valid() {
		t.Error("Valid() wrong")
	}
}
