package wire

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"strconv"
	"strings"
)

// DecodeRecords parses one ingest request body. Three wire formats are
// accepted:
//
//   - NDJSON (default, application/x-ndjson): one Record object per line
//   - JSON (application/json): a single array of Record objects
//   - CSV (text/csv): the plantsim trace schemas — machine-sensor rows
//     "machine,job,phase,t,<sensor...>" or environment rows
//     "t,<env-sensor...>"
//   - binary (application/x-hod-batch): length-prefixed columnar
//     frames — see frame.go
//
// so `hodctl replay` and `curl --data-binary @sensors.csv` both work
// without client-side conversion.
func DecodeRecords(r io.Reader, contentType string) ([]Record, error) {
	mt := contentType
	if parsed, _, err := mime.ParseMediaType(contentType); err == nil {
		mt = parsed
	}
	switch mt {
	case "text/csv", "application/csv":
		return DecodeCSV(r)
	case "application/json":
		return DecodeJSONArray(r)
	case ContentTypeBinary:
		return DecodeBinary(r)
	default:
		return DecodeNDJSON(r)
	}
}

// EncodeNDJSON renders records in the default ingest format: one JSON
// object per line.
func EncodeNDJSON(recs []Record) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// DecodeJSONArray parses an application/json ingest body: one array of
// Record objects.
func DecodeJSONArray(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("json array: %w", err)
	}
	if len(out) > MaxBatchRecords {
		return nil, fmt.Errorf("batch of %d records exceeds the %d cap", len(out), MaxBatchRecords)
	}
	return out, nil
}

// DecodeNDJSON parses the default ingest body: one Record object per
// line, blank lines skipped.
func DecodeNDJSON(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("ndjson line %d: %w", line, err)
		}
		out = append(out, rec)
		if len(out) > MaxBatchRecords {
			return nil, fmt.Errorf("batch exceeds the %d-record cap", MaxBatchRecords)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ndjson: %w", err)
	}
	return out, nil
}

// DecodeCSV handles both plantsim trace schemas, dispatching on the
// header row.
func DecodeCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csv: missing header: %w", err)
	}
	switch {
	case len(header) >= 5 && header[0] == "machine" && header[1] == "job" &&
		header[2] == "phase" && header[3] == "t":
		return decodeMachineCSV(cr, header[4:])
	case len(header) >= 2 && header[0] == "t":
		return decodeEnvCSV(cr, header[1:])
	default:
		return nil, fmt.Errorf("csv: unrecognised header %q (want machine,job,phase,t,... or t,...)",
			strings.Join(header, ","))
	}
}

func decodeMachineCSV(cr *csv.Reader, sensors []string) ([]Record, error) {
	var out []Record
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csv line %d: %w", line+1, err)
		}
		line++
		if len(rec) != 4+len(sensors) {
			return nil, fmt.Errorf("csv line %d: %d fields, want %d", line, len(rec), 4+len(sensors))
		}
		t, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("csv line %d: bad t %q", line, rec[3])
		}
		for si, sensor := range sensors {
			v, err := strconv.ParseFloat(rec[4+si], 64)
			if err != nil {
				return nil, fmt.Errorf("csv line %d: bad %s value %q", line, sensor, rec[4+si])
			}
			out = append(out, Record{
				Machine: rec[0], Job: rec[1], Phase: rec[2],
				Sensor: sensor, T: t, Value: v,
			})
		}
		if len(out) > MaxBatchRecords {
			return nil, fmt.Errorf("batch exceeds the %d-record cap", MaxBatchRecords)
		}
	}
	return out, nil
}

func decodeEnvCSV(cr *csv.Reader, sensors []string) ([]Record, error) {
	var out []Record
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csv line %d: %w", line+1, err)
		}
		line++
		if len(rec) != 1+len(sensors) {
			return nil, fmt.Errorf("csv line %d: %d fields, want %d", line, len(rec), 1+len(sensors))
		}
		t, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("csv line %d: bad t %q", line, rec[0])
		}
		for si, sensor := range sensors {
			v, err := strconv.ParseFloat(rec[1+si], 64)
			if err != nil {
				return nil, fmt.Errorf("csv line %d: bad %s value %q", line, sensor, rec[1+si])
			}
			out = append(out, Record{Env: true, Sensor: sensor, T: t, Value: v})
		}
		if len(out) > MaxBatchRecords {
			return nil, fmt.Errorf("batch exceeds the %d-record cap", MaxBatchRecords)
		}
	}
	return out, nil
}
