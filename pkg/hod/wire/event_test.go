package wire

import (
	"fmt"
	"math/rand"
	"net/url"
	"reflect"
	"testing"
)

func TestParseChannel(t *testing.T) {
	for s, want := range map[string]Channel{
		"alerts:p1":    {Kind: EventAlert, Plant: "p1"},
		"cube:*":       {Kind: EventCubeDelta, Plant: "*"},
		"stats:pl-2":   {Kind: EventStats, Plant: "pl-2"},
		"alerts:a:b:c": {Kind: EventAlert, Plant: "a:b:c"},
	} {
		got, err := ParseChannel(s)
		if err != nil || got != want {
			t.Errorf("ParseChannel(%q) = %+v, %v; want %+v", s, got, err, want)
		}
		if got.String() != s {
			t.Errorf("Channel(%q).String() = %q", s, got.String())
		}
	}
	for _, bad := range []string{"", "alerts", "alerts:", "cube", "rollup:p1", "alerts:p\x01"} {
		if _, err := ParseChannel(bad); err == nil {
			t.Errorf("ParseChannel(%q) accepted", bad)
		}
	}
}

func TestSubscribeRequestRoundTrip(t *testing.T) {
	reqs := []SubscribeRequest{
		{Channels: []string{"alerts:p1"}},
		{Channels: []string{"alerts:p1", "cube:p1", "stats:*"},
			AfterSeq: map[string]uint64{"p1": 9, "p,2": 0},
			AfterRev: map[string]uint64{"p1": 1 << 40}},
	}
	for i, req := range reqs {
		// Through a full URL encode/parse cycle, like the real
		// transports: query string on the wire, url.Values off it.
		parsed, err := url.ParseQuery(req.Encode().Encode())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := DecodeSubscribeRequest(parsed)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("case %d: round trip changed the request\n got: %+v\nwant: %+v", i, got, req)
		}
	}
	for name, bad := range map[string]url.Values{
		"no channels":   {},
		"bad channel":   {"channel": {"nope"}},
		"bad after_seq": {"channel": {"alerts:p"}, "after_seq": {"p"}},
		"bad number":    {"channel": {"alerts:p"}, "after_seq": {"p=x"}},
		"dup plant":     {"channel": {"alerts:p"}, "after_rev": {"p=1", "p=2"}},
	} {
		if _, err := DecodeSubscribeRequest(bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCubeQueryParamsRoundTrip is the property test pinning the shared
// cube query grammar: any params encode to a query string that decodes
// back to the same params, including through a real URL parse.
func TestCubeQueryParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := CubeDims()
	ops := []string{"", CubeOpSlice, CubeOpRollup, CubeOpMembers, CubeOpDrilldown}
	for i := 0; i < 500; i++ {
		p := CubeQueryParams{Op: ops[rng.Intn(len(ops))]}
		if rng.Intn(2) == 0 {
			p.Dim = dims[rng.Intn(len(dims))]
		}
		for _, d := range dims {
			if rng.Intn(3) == 0 {
				if p.Where == nil {
					p.Where = map[string]string{}
				}
				p.Where[d] = fmt.Sprintf("m%d&?/ =x", rng.Intn(50))
			}
		}
		if n := rng.Intn(3); n > 0 {
			p.Keep = append([]string{}, dims[:n]...)
		}
		parsed, err := url.ParseQuery(p.Encode().Encode())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := DecodeCubeQueryParams(parsed)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("case %d: round trip changed the params\n got: %+v\nwant: %+v", i, got, p)
		}
	}
	for name, bad := range map[string]url.Values{
		"bare where": {"where": {"machine"}},
		"empty dim":  {"where": {"=m"}},
		"empty mem":  {"where": {"machine="}},
		"dup dim":    {"where": {"machine=a", "machine=b"}},
	} {
		if _, err := DecodeCubeQueryParams(bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
