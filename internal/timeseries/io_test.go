package timeseries

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	a := New("temp", t0, 250*time.Millisecond, []float64{1.5, 2.25, -3})
	b := New("vib", t0, 250*time.Millisecond, []float64{0.1, 0.2, 0.3})
	m, err := NewMulti(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width() != 2 || got.Len() != 3 {
		t.Fatalf("shape %dx%d", got.Width(), got.Len())
	}
	if got.Step != 250*time.Millisecond {
		t.Fatalf("step=%v", got.Step)
	}
	if !got.Start.Equal(t0) {
		t.Fatalf("start=%v", got.Start)
	}
	for j, d := range m.Dims {
		gd := got.Dims[j]
		if gd.Name != d.Name {
			t.Fatalf("dim %d name %q", j, gd.Name)
		}
		for i := range d.Values {
			if gd.Values[i] != d.Values[i] {
				t.Fatalf("dim %q[%d]=%v want %v", d.Name, i, gd.Values[i], d.Values[i])
			}
		}
	}
}

func TestReadCSVSingleRowDefaultsStep(t *testing.T) {
	in := "timestamp,x\n2026-06-12T00:00:00Z,5\n"
	m, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Step != time.Second || m.Len() != 1 || m.Dims[0].Values[0] != 5 {
		t.Fatalf("parsed %+v", m)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                                      // empty
		"timestamp,x\n",                         // header only
		"time,x\n2026-06-12T00:00:00Z,1\n",      // wrong header
		"timestamp,x\nnot-a-time,1\n",           // bad timestamp
		"timestamp,x\n2026-06-12T00:00:00Z,?\n", // bad value
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}
