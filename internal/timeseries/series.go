// Package timeseries defines the data shapes that flow between the
// production levels of the paper's hierarchy (Fig. 2): regular numeric
// time series (phase-level sensor values), discrete label sequences
// (phase-level event logs), multi-dimensional series (sensor blocks) and
// the aggregation ladders that turn a high-resolution phase series into
// job- and line-level summaries.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/stats"
)

// ErrMismatch is returned when series lengths or shapes do not conform.
var ErrMismatch = errors.New("timeseries: shape mismatch")

// Series is a regular (evenly sampled) univariate time series: the
// canonical phase-level signal. Start and Step fix the time axis;
// Values carries the samples.
type Series struct {
	Name   string
	Start  time.Time
	Step   time.Duration
	Values []float64
}

// New builds a Series over the given axis. A zero step is replaced by
// one second so that a Series is always well-formed.
func New(name string, start time.Time, step time.Duration, values []float64) *Series {
	if step <= 0 {
		step = time.Second
	}
	return &Series{Name: name, Start: start, Step: step, Values: values}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the timestamp of sample i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// IndexAt returns the sample index holding timestamp t, clamped to the
// series bounds, and false when the series is empty.
func (s *Series) IndexAt(t time.Time) (int, bool) {
	if len(s.Values) == 0 {
		return 0, false
	}
	i := int(t.Sub(s.Start) / s.Step)
	if i < 0 {
		i = 0
	}
	if i >= len(s.Values) {
		i = len(s.Values) - 1
	}
	return i, true
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	return &Series{
		Name:   s.Name,
		Start:  s.Start,
		Step:   s.Step,
		Values: append([]float64(nil), s.Values...),
	}
}

// Slice returns a view-series over samples [lo, hi); the underlying
// values are shared with the parent.
func (s *Series) Slice(lo, hi int) (*Series, error) {
	if lo < 0 || hi > len(s.Values) || lo > hi {
		return nil, fmt.Errorf("%w: slice [%d,%d) of %d samples", ErrMismatch, lo, hi, len(s.Values))
	}
	return &Series{
		Name:   s.Name,
		Start:  s.TimeAt(lo),
		Step:   s.Step,
		Values: s.Values[lo:hi],
	}, nil
}

// Stats returns the online summary of the series values.
func (s *Series) Stats() stats.Online {
	var o stats.Online
	o.AddAll(s.Values)
	return o
}

// ZNormalized returns a copy of the series with z-normalised values.
func (s *Series) ZNormalized() *Series {
	c := s.Clone()
	stats.Normalize(c.Values)
	return c
}

// Resample aggregates the series into buckets of the given factor using
// agg (e.g. stats.Mean). This is the CAQ operation the paper describes:
// data moves up a hierarchy level by dropping resolution. The tail
// samples that do not fill a whole bucket are aggregated as a final
// shorter bucket.
func (s *Series) Resample(factor int, agg func([]float64) float64) (*Series, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("%w: resample factor %d", ErrMismatch, factor)
	}
	if agg == nil {
		agg = stats.Mean
	}
	n := (len(s.Values) + factor - 1) / factor
	out := make([]float64, 0, n)
	for i := 0; i < len(s.Values); i += factor {
		hi := i + factor
		if hi > len(s.Values) {
			hi = len(s.Values)
		}
		out = append(out, agg(s.Values[i:hi]))
	}
	return &Series{
		Name:   s.Name,
		Start:  s.Start,
		Step:   time.Duration(factor) * s.Step,
		Values: out,
	}, nil
}

// MultiSeries is an aligned block of series sharing one time axis — the
// shape of a multi-sensor phase recording. Invariant: all Dims have the
// same length, start and step.
type MultiSeries struct {
	Start time.Time
	Step  time.Duration
	Dims  []*Series
}

// NewMulti aligns the given series into a block. All series must share
// length; the first series fixes the axis.
func NewMulti(dims ...*Series) (*MultiSeries, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("%w: no dimensions", ErrMismatch)
	}
	n := dims[0].Len()
	for _, d := range dims[1:] {
		if d.Len() != n {
			return nil, fmt.Errorf("%w: dim %q has %d samples, want %d", ErrMismatch, d.Name, d.Len(), n)
		}
	}
	return &MultiSeries{Start: dims[0].Start, Step: dims[0].Step, Dims: dims}, nil
}

// Len returns the number of time points.
func (m *MultiSeries) Len() int {
	if len(m.Dims) == 0 {
		return 0
	}
	return m.Dims[0].Len()
}

// Width returns the number of dimensions.
func (m *MultiSeries) Width() int { return len(m.Dims) }

// Row returns the cross-section vector at time index i.
func (m *MultiSeries) Row(i int) []float64 {
	out := make([]float64, len(m.Dims))
	for j, d := range m.Dims {
		out[j] = d.Values[i]
	}
	return out
}

// Rows materialises all cross-sections, the observation matrix consumed
// by the multivariate detectors.
func (m *MultiSeries) Rows() [][]float64 {
	out := make([][]float64, m.Len())
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Dim returns the series with the given name, or nil.
func (m *MultiSeries) Dim(name string) *Series {
	for _, d := range m.Dims {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Symbols is a discrete label sequence — the other phase-level data shape
// (§2: "discrete value sequences ... made of labels").
type Symbols struct {
	Name   string
	Labels []string
}

// NewSymbols builds a labelled sequence.
func NewSymbols(name string, labels []string) *Symbols {
	return &Symbols{Name: name, Labels: labels}
}

// Len returns the sequence length.
func (s *Symbols) Len() int { return len(s.Labels) }

// Alphabet returns the distinct labels in first-appearance order.
func (s *Symbols) Alphabet() []string {
	seen := make(map[string]bool, 8)
	var out []string
	for _, l := range s.Labels {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// NGrams returns all overlapping n-grams of the sequence as slices into
// the label storage. It returns nil when n exceeds the length.
func (s *Symbols) NGrams(n int) [][]string {
	if n <= 0 || n > len(s.Labels) {
		return nil
	}
	out := make([][]string, 0, len(s.Labels)-n+1)
	for i := 0; i+n <= len(s.Labels); i++ {
		out = append(out, s.Labels[i:i+n])
	}
	return out
}

// Discretize maps a numeric series to a Symbols sequence by equal-width
// binning with the given alphabet size — the bridge from time series to
// the sequence detectors (FSA, HMM, NPD, NMD).
func Discretize(s *Series, alphabet int) *Symbols {
	if alphabet < 2 {
		alphabet = 2
	}
	lo, hi := stats.MinMax(s.Values)
	labels := make([]string, len(s.Values))
	span := hi - lo
	for i, v := range s.Values {
		var bin int
		if span > 0 {
			bin = int((v - lo) / span * float64(alphabet))
			if bin >= alphabet {
				bin = alphabet - 1
			}
			if bin < 0 {
				bin = 0
			}
		}
		labels[i] = string(rune('a' + bin))
	}
	return &Symbols{Name: s.Name, Labels: labels}
}

// Interpolate fills NaN gaps in the values by linear interpolation
// between the nearest finite neighbours; leading/trailing gaps take the
// nearest finite value. It reports how many samples were filled.
func Interpolate(values []float64) int {
	n := len(values)
	filled := 0
	prev := -1 // last finite index
	for i := 0; i < n; i++ {
		if !math.IsNaN(values[i]) {
			if prev >= 0 && i-prev > 1 {
				// fill (prev, i)
				span := float64(i - prev)
				for k := prev + 1; k < i; k++ {
					frac := float64(k-prev) / span
					values[k] = values[prev]*(1-frac) + values[i]*frac
					filled++
				}
			} else if prev < 0 && i > 0 {
				for k := 0; k < i; k++ {
					values[k] = values[i]
					filled++
				}
			}
			prev = i
		}
	}
	if prev >= 0 && prev < n-1 {
		for k := prev + 1; k < n; k++ {
			values[k] = values[prev]
			filled++
		}
	}
	return filled
}
