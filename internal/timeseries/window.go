package timeseries

import (
	"fmt"

	"repro/internal/stats"
)

// Window is one extracted fixed-size window with its position in the
// parent series. The window-based detector families of the paper (NPD,
// NMD, OS and the discriminative clusterers) consume these.
type Window struct {
	Start  int // index of the first sample in the parent series
	Values []float64
}

// SlidingWindows extracts overlapping fixed-size windows with the given
// stride (stride=1 gives the "overlapping fixed size windows" of §3).
// The returned windows alias the parent storage; callers that mutate
// must copy first.
func SlidingWindows(values []float64, size, stride int) ([]Window, error) {
	if size <= 0 || stride <= 0 {
		return nil, fmt.Errorf("%w: window size %d stride %d", ErrMismatch, size, stride)
	}
	if size > len(values) {
		return nil, nil
	}
	out := make([]Window, 0, (len(values)-size)/stride+1)
	for i := 0; i+size <= len(values); i += stride {
		out = append(out, Window{Start: i, Values: values[i : i+size]})
	}
	return out, nil
}

// TumblingWindows extracts non-overlapping windows of the given size;
// the tail shorter than size is dropped (a partial window has different
// statistics and would distort window-database frequencies).
func TumblingWindows(values []float64, size int) ([]Window, error) {
	return SlidingWindows(values, size, size)
}

// NormalizedWindows extracts sliding windows and z-normalises a copy of
// each, the preprocessing shared by the shape-based detectors.
func NormalizedWindows(values []float64, size, stride int) ([]Window, error) {
	ws, err := SlidingWindows(values, size, stride)
	if err != nil {
		return nil, err
	}
	out := make([]Window, len(ws))
	for i, w := range ws {
		cp := append([]float64(nil), w.Values...)
		stats.Normalize(cp)
		out[i] = Window{Start: w.Start, Values: cp}
	}
	return out, nil
}

// SpreadPointScores converts per-window scores back to per-point scores
// by assigning each point the maximum score over the windows covering
// it. n is the parent length, size the window size. This is how
// window-based detectors report "exact positions of anomalies" (§3).
func SpreadPointScores(n int, windows []Window, scores []float64) ([]float64, error) {
	if len(windows) != len(scores) {
		return nil, fmt.Errorf("%w: %d windows, %d scores", ErrMismatch, len(windows), len(scores))
	}
	out := make([]float64, n)
	for wi, w := range windows {
		s := scores[wi]
		for i := w.Start; i < w.Start+len(w.Values) && i < n; i++ {
			if s > out[i] {
				out[i] = s
			}
		}
	}
	return out, nil
}

// PAA computes the piecewise aggregate approximation of values with the
// given number of segments — the dimensionality-reduction step shared by
// SAX and the clustering detectors. Segment boundaries follow the exact
// fractional scheme so all segments carry equal weight even when the
// length is not divisible.
func PAA(values []float64, segments int) ([]float64, error) {
	n := len(values)
	if segments <= 0 {
		return nil, fmt.Errorf("%w: %d segments", ErrMismatch, segments)
	}
	if segments >= n {
		return append([]float64(nil), values...), nil
	}
	out := make([]float64, segments)
	for s := 0; s < segments; s++ {
		lo := s * n / segments
		hi := (s + 1) * n / segments
		if hi <= lo {
			hi = lo + 1
		}
		out[s] = stats.Mean(values[lo:hi])
	}
	return out, nil
}
