package timeseries

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stats"
)

var t0 = time.Date(2026, 6, 12, 8, 0, 0, 0, time.UTC)

func TestSeriesAxis(t *testing.T) {
	s := New("temp", t0, time.Second, []float64{1, 2, 3})
	if s.Len() != 3 {
		t.Fatalf("Len=%d", s.Len())
	}
	if got := s.TimeAt(2); !got.Equal(t0.Add(2 * time.Second)) {
		t.Fatalf("TimeAt=%v", got)
	}
	i, ok := s.IndexAt(t0.Add(1500 * time.Millisecond))
	if !ok || i != 1 {
		t.Fatalf("IndexAt=%d ok=%v", i, ok)
	}
	// Clamping.
	if i, _ := s.IndexAt(t0.Add(-time.Hour)); i != 0 {
		t.Fatalf("clamp low=%d", i)
	}
	if i, _ := s.IndexAt(t0.Add(time.Hour)); i != 2 {
		t.Fatalf("clamp high=%d", i)
	}
	if _, ok := New("e", t0, time.Second, nil).IndexAt(t0); ok {
		t.Fatal("empty series should report !ok")
	}
}

func TestNewDefaultsStep(t *testing.T) {
	s := New("x", t0, 0, []float64{1})
	if s.Step != time.Second {
		t.Fatalf("default step=%v", s.Step)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New("x", t0, time.Second, []float64{1, 2})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestSlice(t *testing.T) {
	s := New("x", t0, time.Second, []float64{0, 1, 2, 3, 4})
	sub, err := s.Slice(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.Values[0] != 2 {
		t.Fatalf("Slice=%v", sub.Values)
	}
	if !sub.Start.Equal(t0.Add(2 * time.Second)) {
		t.Fatalf("Slice start=%v", sub.Start)
	}
	if _, err := s.Slice(3, 2); !errors.Is(err, ErrMismatch) {
		t.Fatal("want ErrMismatch")
	}
	if _, err := s.Slice(0, 9); !errors.Is(err, ErrMismatch) {
		t.Fatal("want ErrMismatch")
	}
}

func TestResample(t *testing.T) {
	s := New("x", t0, time.Second, []float64{1, 3, 5, 7, 9})
	r, err := s.Resample(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 9} // tail bucket has one sample
	if len(r.Values) != len(want) {
		t.Fatalf("resampled len=%d", len(r.Values))
	}
	for i := range want {
		if r.Values[i] != want[i] {
			t.Fatalf("r[%d]=%v want %v", i, r.Values[i], want[i])
		}
	}
	if r.Step != 2*time.Second {
		t.Fatalf("step=%v", r.Step)
	}
	if _, err := s.Resample(0, nil); !errors.Is(err, ErrMismatch) {
		t.Fatal("want ErrMismatch")
	}
	// Max aggregation.
	r2, _ := s.Resample(5, stats.Max)
	if len(r2.Values) != 1 || r2.Values[0] != 9 {
		t.Fatalf("max resample=%v", r2.Values)
	}
}

func TestZNormalized(t *testing.T) {
	s := New("x", t0, time.Second, []float64{1, 2, 3})
	z := s.ZNormalized()
	if s.Values[0] != 1 {
		t.Fatal("ZNormalized must not mutate parent")
	}
	o := z.Stats()
	if math.Abs(o.Mean()) > 1e-12 || math.Abs(o.StdDev()-1) > 1e-12 {
		t.Fatalf("znorm mean=%v std=%v", o.Mean(), o.StdDev())
	}
}

func TestMultiSeries(t *testing.T) {
	a := New("a", t0, time.Second, []float64{1, 2, 3})
	b := New("b", t0, time.Second, []float64{4, 5, 6})
	m, err := NewMulti(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 || m.Width() != 2 {
		t.Fatalf("shape %dx%d", m.Len(), m.Width())
	}
	row := m.Row(1)
	if row[0] != 2 || row[1] != 5 {
		t.Fatalf("Row=%v", row)
	}
	rows := m.Rows()
	if len(rows) != 3 || rows[2][1] != 6 {
		t.Fatalf("Rows=%v", rows)
	}
	if m.Dim("b") != b || m.Dim("zzz") != nil {
		t.Fatal("Dim lookup failed")
	}
	if _, err := NewMulti(a, New("c", t0, time.Second, []float64{1})); !errors.Is(err, ErrMismatch) {
		t.Fatal("want ErrMismatch")
	}
	if _, err := NewMulti(); !errors.Is(err, ErrMismatch) {
		t.Fatal("want ErrMismatch for empty")
	}
}

func TestSymbols(t *testing.T) {
	s := NewSymbols("phase", []string{"a", "b", "a", "c", "b"})
	if s.Len() != 5 {
		t.Fatalf("Len=%d", s.Len())
	}
	al := s.Alphabet()
	if len(al) != 3 || al[0] != "a" || al[1] != "b" || al[2] != "c" {
		t.Fatalf("Alphabet=%v", al)
	}
	gs := s.NGrams(2)
	if len(gs) != 4 || gs[0][0] != "a" || gs[0][1] != "b" {
		t.Fatalf("NGrams=%v", gs)
	}
	if s.NGrams(6) != nil || s.NGrams(0) != nil {
		t.Fatal("out-of-range NGrams should be nil")
	}
}

func TestDiscretize(t *testing.T) {
	s := New("x", t0, time.Second, []float64{0, 5, 10})
	sym := Discretize(s, 2)
	if sym.Labels[0] != "a" || sym.Labels[2] != "b" {
		t.Fatalf("Discretize=%v", sym.Labels)
	}
	// Constant series maps to a single symbol.
	c := Discretize(New("c", t0, time.Second, []float64{3, 3, 3}), 4)
	for _, l := range c.Labels {
		if l != "a" {
			t.Fatalf("constant should be all 'a': %v", c.Labels)
		}
	}
	// Alphabet below 2 is clamped.
	d := Discretize(s, 1)
	if d.Labels[2] != "b" {
		t.Fatalf("clamped alphabet: %v", d.Labels)
	}
}

func TestInterpolate(t *testing.T) {
	nan := math.NaN()
	vs := []float64{nan, 1, nan, nan, 4, nan}
	n := Interpolate(vs)
	if n != 4 {
		t.Fatalf("filled=%d", n)
	}
	want := []float64{1, 1, 2, 3, 4, 4}
	for i := range want {
		if math.Abs(vs[i]-want[i]) > 1e-12 {
			t.Fatalf("vs[%d]=%v want %v", i, vs[i], want[i])
		}
	}
	// All-NaN stays NaN, zero filled counted as 0 since no anchor.
	all := []float64{nan, nan}
	if Interpolate(all) != 0 || !math.IsNaN(all[0]) {
		t.Fatal("all-NaN should be untouched")
	}
}

func TestSlidingWindows(t *testing.T) {
	vs := []float64{0, 1, 2, 3, 4}
	ws, err := SlidingWindows(vs, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || ws[2].Start != 2 || ws[2].Values[0] != 2 {
		t.Fatalf("windows=%v", ws)
	}
	ws2, _ := SlidingWindows(vs, 2, 2)
	if len(ws2) != 2 {
		t.Fatalf("stride-2 windows=%d", len(ws2))
	}
	tw, _ := TumblingWindows(vs, 2)
	if len(tw) != 2 || tw[1].Start != 2 {
		t.Fatalf("tumbling=%v", tw)
	}
	if ws3, _ := SlidingWindows(vs, 9, 1); ws3 != nil {
		t.Fatal("oversize window should return nil")
	}
	if _, err := SlidingWindows(vs, 0, 1); !errors.Is(err, ErrMismatch) {
		t.Fatal("want ErrMismatch")
	}
}

func TestNormalizedWindows(t *testing.T) {
	vs := []float64{0, 1, 2, 3, 4, 5}
	ws, err := NormalizedWindows(vs, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		var o stats.Online
		o.AddAll(w.Values)
		if math.Abs(o.Mean()) > 1e-9 {
			t.Fatalf("window mean=%v", o.Mean())
		}
	}
	if vs[0] != 0 {
		t.Fatal("NormalizedWindows must not mutate parent")
	}
}

func TestSpreadPointScores(t *testing.T) {
	ws := []Window{{Start: 0, Values: make([]float64, 3)}, {Start: 2, Values: make([]float64, 3)}}
	pts, err := SpreadPointScores(5, ws, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 5, 5, 5}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("pts=%v", pts)
		}
	}
	if _, err := SpreadPointScores(5, ws, []float64{1}); !errors.Is(err, ErrMismatch) {
		t.Fatal("want ErrMismatch")
	}
}

func TestPAA(t *testing.T) {
	vs := []float64{1, 1, 5, 5}
	p, err := PAA(vs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 1 || p[1] != 5 {
		t.Fatalf("PAA=%v", p)
	}
	// More segments than points: identity copy.
	p2, _ := PAA(vs, 10)
	if len(p2) != 4 {
		t.Fatalf("identity PAA len=%d", len(p2))
	}
	p2[0] = 99
	if vs[0] != 1 {
		t.Fatal("identity PAA must copy")
	}
	if _, err := PAA(vs, 0); !errors.Is(err, ErrMismatch) {
		t.Fatal("want ErrMismatch")
	}
	// Non-divisible lengths cover all points.
	p3, _ := PAA([]float64{1, 2, 3, 4, 5}, 2)
	if len(p3) != 2 {
		t.Fatalf("PAA5/2 len=%d", len(p3))
	}
}

// Property: resampling by factor f shortens the series to ceil(n/f) and
// mean-resampling preserves the overall mean when f divides n.
func TestPropertyResample(t *testing.T) {
	f := func(raw []float64, fac uint8) bool {
		factor := int(fac)%8 + 1
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		s := New("p", t0, time.Second, vs)
		r, err := s.Resample(factor, nil)
		if err != nil {
			return false
		}
		wantLen := (len(vs) + factor - 1) / factor
		if r.Len() != wantLen {
			return false
		}
		if len(vs)%factor == 0 {
			if math.Abs(stats.Mean(r.Values)-stats.Mean(vs)) > 1e-6*(1+math.Abs(stats.Mean(vs))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sliding windows tile the series — every index in
// [0, n-size] starts exactly one stride-1 window.
func TestPropertyWindowsCover(t *testing.T) {
	f := func(n uint8, sz uint8) bool {
		length := int(n)%200 + 1
		size := int(sz)%length + 1
		vs := make([]float64, length)
		ws, err := SlidingWindows(vs, size, 1)
		if err != nil {
			return false
		}
		if len(ws) != length-size+1 {
			return false
		}
		for i, w := range ws {
			if w.Start != i || len(w.Values) != size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
