package timeseries

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteCSV writes a multi-series as CSV with an RFC 3339 timestamp
// column followed by one column per dimension.
func WriteCSV(w io.Writer, m *MultiSeries) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, 1+len(m.Dims))
	header = append(header, "timestamp")
	for _, d := range m.Dims {
		header = append(header, d.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < m.Len(); i++ {
		rec := make([]string, 0, len(header))
		rec = append(rec, m.Dims[0].TimeAt(i).Format(time.RFC3339Nano))
		for _, d := range m.Dims {
			rec = append(rec, strconv.FormatFloat(d.Values[i], 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a multi-series written by WriteCSV. The time step is
// inferred from the first two timestamps (one second for single-row
// files).
func ReadCSV(r io.Reader) (*MultiSeries, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("%w: CSV needs a header and at least one row", ErrMismatch)
	}
	header := records[0]
	if len(header) < 2 || header[0] != "timestamp" {
		return nil, fmt.Errorf("%w: first column must be \"timestamp\"", ErrMismatch)
	}
	rows := records[1:]
	start, err := time.Parse(time.RFC3339Nano, rows[0][0])
	if err != nil {
		return nil, fmt.Errorf("timeseries: bad timestamp %q: %w", rows[0][0], err)
	}
	step := time.Second
	if len(rows) > 1 {
		second, err := time.Parse(time.RFC3339Nano, rows[1][0])
		if err != nil {
			return nil, fmt.Errorf("timeseries: bad timestamp %q: %w", rows[1][0], err)
		}
		if d := second.Sub(start); d > 0 {
			step = d
		}
	}
	dims := make([]*Series, len(header)-1)
	for j := range dims {
		dims[j] = New(header[j+1], start, step, make([]float64, len(rows)))
	}
	for i, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("%w: row %d has %d fields, want %d", ErrMismatch, i+2, len(rec), len(header))
		}
		for j := range dims {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("timeseries: row %d column %q: %w", i+2, header[j+1], err)
			}
			dims[j].Values[i] = v
		}
	}
	return NewMulti(dims...)
}
