// Package gateway is the live push layer of the serving system: a
// per-channel subscription hub fanning out fold-path events
// (EWMA alerts, cube-delta notifications, stats snapshots) to
// WebSocket/SSE subscribers, plus the composable HTTP middleware chain
// (bearer auth, tenant scoping, per-tenant rate limits, request
// logging) the whole v1 surface is wrapped in.
//
// The hub's contract with the ingest path is strict: Publish never
// blocks and never buffers without bound. Every subscriber owns a
// small bounded queue of pending events keyed by (kind, plant); a slow
// consumer's stale entries are coalesced — cube/stats replaced by the
// latest snapshot, alert batches merged and ring-capped — instead of
// queued, so the cost of a stalled dashboard is one map entry, not a
// growing buffer, and the fold loop never waits on a socket.
package gateway

import (
	"context"
	"sort"
	"sync"

	"repro/pkg/hod/wire"
)

// AlertCoalesceCap bounds the alerts carried by one coalesced pending
// event — the same capacity as the server's alert ring, so a
// maximally-stale subscriber still reconstructs exactly the state
// GET /v1/plants/{id}/alerts would serve.
const AlertCoalesceCap = 512

// DefaultQueueCap bounds the distinct (kind, plant) pending entries
// per subscriber before the oldest entry is dropped (marked by a
// Coalesced successor).
const DefaultQueueCap = 256

// subKey identifies one coalescing slot: events of the same kind for
// the same plant collapse into each other.
type subKey struct {
	kind  wire.EventKind
	plant string
}

// Hub routes published events to subscribers by (kind, plant) channel,
// including "*" wildcard subscriptions.
type Hub struct {
	mu       sync.Mutex
	exact    map[subKey]map[*Subscriber]struct{}
	wildcard map[wire.EventKind]map[*Subscriber]struct{}
	closed   bool
}

// NewHub builds an empty hub.
func NewHub() *Hub {
	return &Hub{
		exact:    map[subKey]map[*Subscriber]struct{}{},
		wildcard: map[wire.EventKind]map[*Subscriber]struct{}{},
	}
}

// Subscribe registers a subscriber for the channels. allowed, when
// non-nil, restricts wildcard delivery to the named plants (tenant
// scoping); explicit channels are assumed pre-vetted by the caller.
// queueCap <= 0 takes DefaultQueueCap.
func (h *Hub) Subscribe(channels []wire.Channel, allowed map[string]bool, queueCap int) *Subscriber {
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	s := &Subscriber{
		hub:      h,
		channels: append([]wire.Channel(nil), channels...),
		allowed:  allowed,
		queueCap: queueCap,
		pending:  map[subKey]*wire.Event{},
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(s.done)
		s.closed = true
		return s
	}
	for _, ch := range s.channels {
		if ch.Plant == "*" {
			set := h.wildcard[ch.Kind]
			if set == nil {
				set = map[*Subscriber]struct{}{}
				h.wildcard[ch.Kind] = set
			}
			set[s] = struct{}{}
			continue
		}
		k := subKey{ch.Kind, ch.Plant}
		set := h.exact[k]
		if set == nil {
			set = map[*Subscriber]struct{}{}
			h.exact[k] = set
		}
		set[s] = struct{}{}
	}
	return s
}

// Publish fans the event out to every matching subscriber. It never
// blocks: delivery is an enqueue under the subscriber's mutex, with
// coalescing absorbing any backlog.
//
//hod:allow(determinism) fan-out order across independent subscribers is not a serialized surface: each subscriber's own stream stays in publish order
func (h *Hub) Publish(ev wire.Event) {
	h.mu.Lock()
	var targets []*Subscriber
	for s := range h.exact[subKey{ev.Kind, ev.Plant}] {
		targets = append(targets, s)
	}
	for s := range h.wildcard[ev.Kind] {
		if s.allowed == nil || s.allowed[ev.Plant] {
			targets = append(targets, s)
		}
	}
	h.mu.Unlock()
	for _, s := range targets {
		s.enqueue(ev)
	}
}

// unsubscribe removes the subscriber from every routing set.
func (h *Hub) unsubscribe(s *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range s.channels {
		if ch.Plant == "*" {
			delete(h.wildcard[ch.Kind], s)
			continue
		}
		delete(h.exact[subKey{ch.Kind, ch.Plant}], s)
	}
}

// Close closes every subscriber and refuses new ones — the server's
// shutdown path, unblocking writer goroutines on hijacked connections
// the HTTP server no longer owns.
//
//hod:allow(determinism) teardown order across independent subscribers is unobservable: each one just sees its own channel close
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	var subs []*Subscriber
	for _, set := range h.exact {
		for s := range set {
			subs = append(subs, s)
		}
	}
	for _, set := range h.wildcard {
		for s := range set {
			subs = append(subs, s)
		}
	}
	h.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// Subscriber is one connection's view of the hub: a bounded pending
// queue drained by the connection's writer goroutine via Next.
type Subscriber struct {
	hub      *Hub
	channels []wire.Channel
	allowed  map[string]bool
	queueCap int

	mu        sync.Mutex
	order     []subKey
	pending   map[subKey]*wire.Event
	coalesced uint64
	dropped   uint64
	closed    bool

	wake chan struct{} // 1-buffered: "queue went non-empty"
	done chan struct{}
}

// enqueue adds the event to the pending queue, coalescing per
// (kind, plant) slot and bounding the number of distinct slots.
func (s *Subscriber) enqueue(ev wire.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	k := subKey{ev.Kind, ev.Plant}
	if ex, ok := s.pending[k]; ok {
		coalesce(ex, ev)
		s.coalesced++
		return
	}
	if len(s.order) >= s.queueCap {
		// Too many distinct slots pending: drop the stalest slot and
		// mark the newcomer so the consumer knows the stream gapped.
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.pending, oldest)
		s.dropped++
		ev.Coalesced = true
	}
	stored := ev
	stored.Alerts = append([]wire.Alert(nil), ev.Alerts...)
	s.pending[k] = &stored
	s.order = append(s.order, k)
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// coalesce folds a new event into the pending one of the same slot.
// Cube/stats events are latest-snapshot: the event with the higher
// revision wins (Coalesced marks the survivor) — by revision, not
// arrival order, so a connect-time seed racing a live publish can never
// regress the snapshot. Alert events merge their batches in seq order,
// deduplicating (a seeded ring overlaps the live stream) and trimming
// to AlertCoalesceCap from the front — exactly the server ring's
// retention, so the final coalesced state converges to what polling
// would return. Every merged alert event is marked Coalesced — it no
// longer maps 1:1 to a published fold batch — whether or not the trim
// also lost history.
func coalesce(ex *wire.Event, ev wire.Event) {
	switch ev.Kind {
	case wire.EventAlert:
		ex.Alerts = mergeAlerts(ex.Alerts, ev.Alerts)
		if ev.Seq > ex.Seq {
			ex.Seq = ev.Seq
		}
		ex.Coalesced = true
		if len(ex.Alerts) > AlertCoalesceCap {
			ex.Alerts = ex.Alerts[len(ex.Alerts)-AlertCoalesceCap:]
		}
		if ev.Revision > ex.Revision {
			ex.Revision = ev.Revision
		}
	default:
		if ev.Revision >= ex.Revision {
			*ex = ev
			ex.Alerts = append([]wire.Alert(nil), ev.Alerts...)
		}
		ex.Coalesced = true
	}
}

// mergeAlerts merges two seq-ordered alert batches into a fresh slice,
// dropping duplicate seqs (the newer copy wins).
func mergeAlerts(a, b []wire.Alert) []wire.Alert {
	merged := make([]wire.Alert, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Seq < merged[j].Seq })
	out := merged[:0]
	for _, al := range merged {
		if n := len(out); n > 0 && out[n-1].Seq == al.Seq {
			out[n-1] = al
			continue
		}
		out = append(out, al)
	}
	return out
}

// Seed enqueues an event directly into this subscriber's queue,
// bypassing channel routing — the connect-time replay path: the server
// seeds the current alert ring / revision / stats before live events
// flow, and coalescing folds any concurrently published event into the
// same slot, so the seed can never be reordered after fresher data.
func (s *Subscriber) Seed(ev wire.Event) { s.enqueue(ev) }

// Next blocks until an event is pending, the subscriber is closed, or
// the context ends. ok is false only when the subscriber is closed;
// a context end returns ok true with a zero-kind event, letting writer
// loops use per-iteration timeouts for heartbeats.
func (s *Subscriber) Next(ctx context.Context) (ev wire.Event, ok bool) {
	for {
		s.mu.Lock()
		if len(s.order) > 0 {
			k := s.order[0]
			s.order = s.order[1:]
			ev = *s.pending[k]
			delete(s.pending, k)
			s.mu.Unlock()
			return ev, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return wire.Event{}, false
		}
		select {
		case <-s.wake:
		case <-s.done:
			// Drain anything enqueued before the close won the race.
			s.mu.Lock()
			empty := len(s.order) == 0
			s.mu.Unlock()
			if empty {
				return wire.Event{}, false
			}
		case <-ctx.Done():
			return wire.Event{}, true
		}
	}
}

// Close unregisters the subscriber and unblocks Next.
func (s *Subscriber) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.hub.unsubscribe(s)
	close(s.done)
}

// Stats reports the coalescing counters: events merged into a pending
// slot, and whole slots dropped at the queue cap.
func (s *Subscriber) Stats() (coalesced, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coalesced, s.dropped
}

// Pending reports the current queue depth (distinct pending slots) —
// bounded by the queue cap whatever the publisher does.
func (s *Subscriber) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}
