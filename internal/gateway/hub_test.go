package gateway

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/pkg/hod/wire"
)

func alertEv(plant string, seqs ...uint64) wire.Event {
	ev := wire.Event{Kind: wire.EventAlert, Plant: plant}
	for _, s := range seqs {
		ev.Alerts = append(ev.Alerts, wire.Alert{Seq: s, Machine: "m", Phase: "p", Sensor: "s", T: int(s)})
		if s > ev.Seq {
			ev.Seq = s
		}
	}
	return ev
}

func TestHubRoutesByChannel(t *testing.T) {
	h := NewHub()
	a := h.Subscribe([]wire.Channel{{Kind: wire.EventAlert, Plant: "p1"}}, nil, 0)
	b := h.Subscribe([]wire.Channel{{Kind: wire.EventAlert, Plant: "p2"}}, nil, 0)
	all := h.Subscribe([]wire.Channel{{Kind: wire.EventAlert, Plant: "*"}}, nil, 0)
	stats := h.Subscribe([]wire.Channel{{Kind: wire.EventStats, Plant: "p1"}}, nil, 0)
	defer h.Close()

	h.Publish(alertEv("p1", 1))
	if got := a.Pending(); got != 1 {
		t.Errorf("a pending = %d", got)
	}
	if got := b.Pending(); got != 0 {
		t.Errorf("b pending = %d (cross-plant leak)", got)
	}
	if got := all.Pending(); got != 1 {
		t.Errorf("wildcard pending = %d", got)
	}
	if got := stats.Pending(); got != 0 {
		t.Errorf("stats pending = %d (cross-kind leak)", got)
	}
}

func TestHubWildcardRespectsTenantScope(t *testing.T) {
	h := NewHub()
	defer h.Close()
	s := h.Subscribe([]wire.Channel{{Kind: wire.EventAlert, Plant: "*"}}, map[string]bool{"p1": true}, 0)
	h.Publish(alertEv("p1", 1))
	h.Publish(alertEv("p2", 2))
	ev, ok := s.Next(context.Background())
	if !ok || ev.Plant != "p1" {
		t.Fatalf("got %+v %v", ev, ok)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("foreign plant delivered to scoped wildcard: pending=%d", got)
	}
}

func TestSlowConsumerCoalescesAlerts(t *testing.T) {
	h := NewHub()
	defer h.Close()
	s := h.Subscribe([]wire.Channel{{Kind: wire.EventAlert, Plant: "p"}}, nil, 0)
	// Nobody drains: publish far more alerts than the ring holds.
	total := 3 * AlertCoalesceCap
	for i := 1; i <= total; i++ {
		h.Publish(alertEv("p", uint64(i)))
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("pending slots = %d, want 1 (coalesced)", got)
	}
	ev, ok := s.Next(context.Background())
	if !ok {
		t.Fatal("closed")
	}
	if !ev.Coalesced {
		t.Error("trimmed merge not marked Coalesced")
	}
	if len(ev.Alerts) != AlertCoalesceCap {
		t.Fatalf("alerts = %d, want %d", len(ev.Alerts), AlertCoalesceCap)
	}
	// The survivors are exactly the newest AlertCoalesceCap seqs in order.
	for i, a := range ev.Alerts {
		want := uint64(total - AlertCoalesceCap + 1 + i)
		if a.Seq != want {
			t.Fatalf("alert[%d].Seq = %d, want %d", i, a.Seq, want)
		}
	}
	if ev.Seq != uint64(total) {
		t.Errorf("event seq = %d, want %d", ev.Seq, total)
	}
	if co, _ := s.Stats(); co == 0 {
		t.Error("coalesce counter not advanced")
	}
}

func TestSlowConsumerStatsLatestWins(t *testing.T) {
	h := NewHub()
	defer h.Close()
	s := h.Subscribe([]wire.Channel{{Kind: wire.EventStats, Plant: "p"}}, nil, 0)
	for rev := uint64(1); rev <= 10; rev++ {
		h.Publish(wire.Event{Kind: wire.EventStats, Plant: "p", Revision: rev,
			Stats: &wire.StatsResponse{Plant: "p", DataRevision: rev}})
	}
	ev, _ := s.Next(context.Background())
	if ev.Revision != 10 || ev.Stats.DataRevision != 10 || !ev.Coalesced {
		t.Fatalf("got %+v", ev)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("pending = %d after drain", got)
	}
}

func TestQueueCapBoundsDistinctSlots(t *testing.T) {
	h := NewHub()
	defer h.Close()
	s := h.Subscribe([]wire.Channel{{Kind: wire.EventAlert, Plant: "*"}}, nil, 4)
	for i := 0; i < 100; i++ {
		h.Publish(alertEv(fmt.Sprintf("p%d", i), uint64(i+1)))
	}
	if got := s.Pending(); got != 4 {
		t.Fatalf("pending = %d, want cap 4", got)
	}
	if _, dropped := s.Stats(); dropped != 96 {
		t.Fatalf("dropped = %d, want 96", dropped)
	}
}

func TestNextContextAndClose(t *testing.T) {
	h := NewHub()
	s := h.Subscribe([]wire.Channel{{Kind: wire.EventAlert, Plant: "p"}}, nil, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if ev, ok := s.Next(ctx); !ok || ev.Kind != "" {
		t.Fatalf("ctx timeout: got %+v %v, want zero event + ok", ev, ok)
	}
	done := make(chan bool, 1)
	go func() {
		_, ok := s.Next(context.Background())
		done <- ok
	}()
	s.Close()
	if ok := <-done; ok {
		t.Fatal("Next returned ok after Close")
	}
	// Publishing to a closed subscriber is a no-op.
	h.Publish(alertEv("p", 1))
	if got := s.Pending(); got != 0 {
		t.Fatalf("closed subscriber buffered %d", got)
	}
}

func TestPublishConcurrentWithSubscribeRace(t *testing.T) {
	h := NewHub()
	defer h.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
				h.Publish(alertEv("p", uint64(i)))
			}
		}
	}()
	for i := 0; i < 50; i++ {
		s := h.Subscribe([]wire.Channel{{Kind: wire.EventAlert, Plant: "p"}}, nil, 0)
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if ev, ok := s.Next(ctx); !ok || ev.Kind != wire.EventAlert {
			cancel()
			t.Fatalf("subscriber %d: got %+v %v", i, ev, ok)
		}
		cancel()
		s.Close()
	}
	close(stop)
	wg.Wait()
}
