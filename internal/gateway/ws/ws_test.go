package ws

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// pair dials a real HTTP test server whose handler upgrades, giving a
// client and server Conn over one TCP connection.
func pair(t *testing.T) (client, server *Conn) {
	t.Helper()
	var (
		mu sync.Mutex
		sc *Conn
	)
	done := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Accept(w, r)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		mu.Lock()
		sc = c
		mu.Unlock()
		close(done)
	}))
	t.Cleanup(hs.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cc, err := Dial(ctx, hs.URL, nil)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	t.Cleanup(func() { cc.Close(); sc.Close() })
	return cc, sc
}

func TestEchoBothDirections(t *testing.T) {
	cc, sc := pair(t)
	sizes := []int{0, 1, 125, 126, 4096, 1 << 16, 1<<16 + 3}
	for _, n := range sizes {
		msg := bytes.Repeat([]byte{byte(n % 251)}, n)
		if err := cc.WriteMessage(OpBinary, msg); err != nil {
			t.Fatalf("client write %d: %v", n, err)
		}
		op, got, err := sc.ReadMessage()
		if err != nil || op != OpBinary || !bytes.Equal(got, msg) {
			t.Fatalf("server read %d: op=%v len=%d err=%v", n, op, len(got), err)
		}
		if err := sc.WriteMessage(OpText, msg); err != nil {
			t.Fatalf("server write %d: %v", n, err)
		}
		op, got, err = cc.ReadMessage()
		if err != nil || op != OpText || !bytes.Equal(got, msg) {
			t.Fatalf("client read %d: op=%v len=%d err=%v", n, op, len(got), err)
		}
	}
}

func TestPingAutoPong(t *testing.T) {
	cc, sc := pair(t)
	// The server pings; the client answers from inside ReadMessage
	// while blocked waiting for data.
	if err := sc.WriteMessage(OpPing, []byte("hb")); err != nil {
		t.Fatal(err)
	}
	readDone := make(chan error, 1)
	go func() {
		_, _, err := cc.ReadMessage()
		readDone <- err
	}()
	// The server should observe the pong as a no-op inside its own
	// read; follow with a real message so both reads terminate.
	if err := sc.WriteMessage(OpText, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := <-readDone; err != nil {
		t.Fatalf("client read after ping: %v", err)
	}
	if err := cc.WriteMessage(OpText, []byte("x")); err != nil {
		t.Fatal(err)
	}
	op, msg, err := sc.ReadMessage()
	if err != nil || op != OpText || string(msg) != "x" {
		t.Fatalf("server read: %q %v %v", msg, op, err)
	}
}

func TestCloseHandshake(t *testing.T) {
	cc, sc := pair(t)
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.ReadMessage(); err != ErrClosed {
		t.Fatalf("server read after client close: %v, want ErrClosed", err)
	}
	if err := sc.WriteMessage(OpText, []byte("late")); err != ErrClosed {
		t.Fatalf("server write after close handshake: %v, want ErrClosed", err)
	}
}

func TestRejectedHandshakeCarriesBody(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		w.Write([]byte(`{"error":{"code":"forbidden","message":"no"}}`))
	}))
	defer hs.Close()
	_, err := Dial(context.Background(), hs.URL, nil)
	he, ok := err.(*HandshakeError)
	if !ok {
		t.Fatalf("err = %v, want *HandshakeError", err)
	}
	if he.StatusCode != http.StatusForbidden || !strings.Contains(string(he.Body), `"forbidden"`) {
		t.Fatalf("handshake error = %d %q", he.StatusCode, he.Body)
	}
}

func TestAcceptRejectsPlainGET(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/subscribe", nil)
	if _, err := Accept(rec, req); err == nil {
		t.Fatal("plain GET accepted as websocket")
	}
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestDialHeadersReachServer(t *testing.T) {
	var got string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("Authorization")
		c, err := Accept(w, r)
		if err == nil {
			c.Close()
		}
	}))
	defer hs.Close()
	h := http.Header{}
	h.Set("Authorization", "Bearer k1")
	cc, err := Dial(context.Background(), hs.URL, h)
	if err != nil {
		t.Fatal(err)
	}
	cc.Close()
	if got != "Bearer k1" {
		t.Fatalf("Authorization = %q", got)
	}
}
