// Package ws is a minimal RFC 6455 WebSocket implementation — just the
// server handshake, a client dial, and the frame codec — so the live
// push gateway stays standard-library only. It supports what the
// gateway needs and nothing more: unfragmented text/binary writes,
// fragmented reads, ping/pong (pongs answered inside ReadMessage),
// close handshake, client-side masking. No extensions, no
// subprotocols, no compression.
package ws

import (
	"bufio"
	"context"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/pkg/hod/wire"
)

// Frame opcodes of RFC 6455 §5.2.
const (
	OpText   byte = 0x1
	OpBinary byte = 0x2
	OpClose  byte = 0x8
	OpPing   byte = 0x9
	OpPong   byte = 0xA
)

// guid is the fixed handshake GUID of RFC 6455 §1.3.
const guid = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// MaxMessageBytes caps one assembled message; the gateway's events are
// small, so anything bigger is a broken or hostile peer.
const MaxMessageBytes = 1 << 22

// ErrClosed reports that the peer completed the close handshake (or
// the connection was locally closed).
var ErrClosed = errors.New("ws: connection closed")

// HandshakeError carries the HTTP status and body of a dial rejected
// before the upgrade — the server's error envelope travels in Body, so
// callers can surface the typed API error (401/403/...) behind it.
type HandshakeError struct {
	StatusCode int
	Body       []byte
}

func (e *HandshakeError) Error() string {
	return fmt.Sprintf("ws: handshake rejected: status %d", e.StatusCode)
}

// Conn is one WebSocket connection. Reads must come from a single
// goroutine; writes are mutex-serialized, so control replies from the
// read side interleave safely with the owner's message writes.
type Conn struct {
	c      net.Conn
	br     *bufio.Reader
	client bool // mask outgoing frames

	wmu    sync.Mutex
	closed bool
}

// accept computes the Sec-WebSocket-Accept token for a handshake key.
func accept(key string) string {
	h := sha1.Sum([]byte(key + guid))
	return base64.StdEncoding.EncodeToString(h[:])
}

// writeHandshakeError rejects a pre-upgrade handshake with the v1
// error envelope: even a failed dial surfaces a typed, machine-
// readable error (HandshakeError carries the body back to the typed
// client on the dial side).
func writeHandshakeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wire.ErrorEnvelope{Err: wire.ErrorBody{Code: code, Message: msg}})
}

// Accept upgrades an HTTP request to a WebSocket connection (server
// side). On failure it writes the HTTP error itself and returns the
// reason; on success the caller owns the hijacked connection and must
// Close it.
func Accept(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") ||
		!headerContainsToken(r.Header, "Connection", "upgrade") {
		writeHandshakeError(w, http.StatusBadRequest, wire.CodeBadRequest, "ws: not a websocket handshake")
		return nil, fmt.Errorf("ws: not a websocket handshake")
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		writeHandshakeError(w, http.StatusUpgradeRequired, wire.CodeBadRequest, "ws: unsupported websocket version")
		return nil, fmt.Errorf("ws: unsupported version %q", r.Header.Get("Sec-WebSocket-Version"))
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		writeHandshakeError(w, http.StatusBadRequest, wire.CodeBadRequest, "ws: missing Sec-WebSocket-Key")
		return nil, fmt.Errorf("ws: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeHandshakeError(w, http.StatusInternalServerError, wire.CodeInternal, "ws: connection cannot be hijacked")
		return nil, fmt.Errorf("ws: ResponseWriter does not support hijacking")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	// The handshake response is tiny; a stuck peer should not pin the
	// handler forever.
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + accept(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err == nil {
		err = rw.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake write: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})
	return &Conn{c: conn, br: rw.Reader}, nil
}

// headerContainsToken reports whether any comma-separated value of the
// header contains the token (case-insensitive) — "Connection:
// keep-alive, Upgrade" must match.
func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Dial opens a client WebSocket connection to rawURL (http://, ws://,
// or a bare host/path — TLS is not supported) sending the extra
// headers, typically Authorization. A non-101 response becomes a
// *HandshakeError carrying the response body.
func Dial(ctx context.Context, rawURL string, header http.Header) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("ws: dial %q: %w", rawURL, err)
	}
	switch u.Scheme {
	case "http", "ws", "":
	default:
		return nil, fmt.Errorf("ws: dial %q: unsupported scheme %q", rawURL, u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, fmt.Errorf("ws: dial %s: %w", host, err)
	}
	// The handshake honours the context; established connections are
	// governed by deadlines the caller sets.
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	keyBytes := make([]byte, 16)
	if _, err := rand.Read(keyBytes); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes)
	path := u.RequestURI()
	var b strings.Builder
	b.WriteString("GET " + path + " HTTP/1.1\r\n")
	b.WriteString("Host: " + u.Host + "\r\n")
	b.WriteString("Upgrade: websocket\r\n")
	b.WriteString("Connection: Upgrade\r\n")
	b.WriteString("Sec-WebSocket-Key: " + key + "\r\n")
	b.WriteString("Sec-WebSocket-Version: 13\r\n")
	names := make([]string, 0, len(header))
	for name := range header {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, v := range header[name] {
			b.WriteString(name + ": " + v + "\r\n")
		}
	}
	b.WriteString("\r\n")
	if _, err := io.WriteString(conn, b.String()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake write: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake read: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		conn.Close()
		return nil, &HandshakeError{StatusCode: resp.StatusCode, Body: body}
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != accept(key) {
		conn.Close()
		return nil, fmt.Errorf("ws: bad Sec-WebSocket-Accept %q", got)
	}
	conn.SetDeadline(time.Time{})
	return &Conn{c: conn, br: br, client: true}, nil
}

// WriteMessage sends one unfragmented frame.
func (c *Conn) WriteMessage(op byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.writeFrame(op, payload)
}

// writeFrame emits one FIN frame; the caller holds wmu.
func (c *Conn) writeFrame(op byte, payload []byte) error {
	var hdr [14]byte
	hdr[0] = 0x80 | op // FIN set
	n := 2
	switch l := len(payload); {
	case l < 126:
		hdr[1] = byte(l)
	case l < 1<<16:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(l))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(l))
		n = 10
	}
	if c.client {
		hdr[1] |= 0x80
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		copy(hdr[n:], mask[:])
		n += 4
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ mask[i&3]
		}
		payload = masked
	}
	if _, err := c.c.Write(hdr[:n]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.c.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadMessage returns the next text or binary message, reassembling
// fragments. Pings are answered with pongs, pongs are discarded, and a
// close frame is echoed before returning ErrClosed.
func (c *Conn) ReadMessage() (byte, []byte, error) {
	var msgOp byte
	var msg []byte
	for {
		fin, op, payload, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case OpPing:
			c.wmu.Lock()
			if !c.closed {
				c.writeFrame(OpPong, payload)
			}
			c.wmu.Unlock()
			continue
		case OpPong:
			continue
		case OpClose:
			c.wmu.Lock()
			if !c.closed {
				c.closed = true
				c.writeFrame(OpClose, payload)
			}
			c.wmu.Unlock()
			return 0, nil, ErrClosed
		case OpText, OpBinary:
			if msgOp != 0 {
				return 0, nil, fmt.Errorf("ws: new message interleaved mid-fragmentation")
			}
			msgOp = op
		case 0x0: // continuation
			if msgOp == 0 {
				return 0, nil, fmt.Errorf("ws: continuation frame without a message")
			}
		default:
			return 0, nil, fmt.Errorf("ws: unknown opcode %#x", op)
		}
		if len(msg)+len(payload) > MaxMessageBytes {
			return 0, nil, fmt.Errorf("ws: message exceeds %d bytes", MaxMessageBytes)
		}
		msg = append(msg, payload...)
		if fin {
			return msgOp, msg, nil
		}
	}
}

// readFrame reads one raw frame.
func (c *Conn) readFrame() (fin bool, op byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(c.br, hdr[:]); err != nil {
		return false, 0, nil, err
	}
	fin = hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return false, 0, nil, fmt.Errorf("ws: reserved bits set (extensions unsupported)")
	}
	op = hdr[0] & 0x0f
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7f)
	if op >= OpClose { // control frames
		if !fin || length > 125 {
			return false, 0, nil, fmt.Errorf("ws: malformed control frame")
		}
	}
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > MaxMessageBytes {
		return false, 0, nil, fmt.Errorf("ws: frame exceeds %d bytes", MaxMessageBytes)
	}
	// RFC 6455 §5.1: clients mask, servers don't. Enforcing the
	// direction catches proxies mangling the stream early.
	if c.client == masked {
		return false, 0, nil, fmt.Errorf("ws: wrong masking direction")
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, mask[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i&3]
		}
	}
	return fin, op, payload, nil
}

// SetReadDeadline bounds the next ReadMessage.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

// SetWriteDeadline bounds the next WriteMessage.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.c.SetWriteDeadline(t) }

// Close sends a close frame (best effort) and closes the connection.
func (c *Conn) Close() error {
	c.wmu.Lock()
	if !c.closed {
		c.closed = true
		c.c.SetWriteDeadline(time.Now().Add(time.Second))
		c.writeFrame(OpClose, nil)
	}
	c.wmu.Unlock()
	return c.c.Close()
}
