package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/pkg/hod/wire"
)

// Middleware wraps an http.Handler. The chain is applied per route,
// after the mux has matched — so r.PathValue is populated and the
// tenant-scope check can read the {id} segment directly.
type Middleware func(http.Handler) http.Handler

// Chain composes middlewares outermost-first:
// Chain(a, b, c)(h) serves a(b(c(h))).
func Chain(mws ...Middleware) Middleware {
	return func(h http.Handler) http.Handler {
		for i := len(mws) - 1; i >= 0; i-- {
			h = mws[i](h)
		}
		return h
	}
}

// WriteError emits the v1 error envelope
// {"error":{"code":"...","message":"..."}} — the one encoding the
// middleware chain and the server handlers share.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wire.ErrorEnvelope{Err: wire.ErrorBody{Code: code, Message: msg}})
}

// Tenant is one API-key principal: a display name, the plants it may
// touch (empty = every plant, an operator key), and its token-bucket
// rate limit (RatePerSec 0 = unlimited).
type Tenant struct {
	Name       string   `json:"name"`
	Plants     []string `json:"plants,omitempty"`
	RatePerSec float64  `json:"rate_per_sec,omitempty"`
	Burst      int      `json:"burst,omitempty"`
}

// Auth maps API keys to tenants. A nil or empty Auth disables
// authentication entirely (the back-compat default): every middleware
// built from it passes requests through untouched.
type Auth struct {
	byKey map[string]*Grant
}

// NewAuth indexes the key → tenant table. Tenant plant lists become
// sets; each tenant gets one token bucket shared by all its requests.
func NewAuth(keys map[string]Tenant) *Auth {
	if len(keys) == 0 {
		return nil
	}
	a := &Auth{byKey: make(map[string]*Grant, len(keys))}
	for key, t := range keys {
		g := &Grant{Tenant: t}
		if len(t.Plants) > 0 {
			g.plants = make(map[string]bool, len(t.Plants))
			for _, p := range t.Plants {
				g.plants[p] = true
			}
		}
		if t.RatePerSec > 0 {
			burst := t.Burst
			if burst <= 0 {
				burst = int(t.RatePerSec) + 1
			}
			g.bucket = &bucket{rate: t.RatePerSec, cap: float64(burst), tokens: float64(burst)}
		}
		a.byKey[key] = g
	}
	return a
}

// Enabled reports whether any key is configured.
func (a *Auth) Enabled() bool { return a != nil && len(a.byKey) > 0 }

// lookup resolves an API key.
func (a *Auth) lookup(key string) (*Grant, bool) {
	if a == nil {
		return nil, false
	}
	g, ok := a.byKey[key]
	return g, ok
}

// Grant is an authenticated tenant attached to a request context.
type Grant struct {
	Tenant Tenant
	plants map[string]bool
	bucket *bucket
}

// Allows reports whether the tenant may read or subscribe to the
// plant. An empty plant list is an operator grant allowing everything.
func (g *Grant) Allows(plant string) bool {
	return g == nil || g.plants == nil || g.plants[plant]
}

// AllowedPlants returns the tenant's plant set, nil for operator
// grants — the shape the hub takes for wildcard scoping.
func (g *Grant) AllowedPlants() map[string]bool {
	if g == nil {
		return nil
	}
	return g.plants
}

type ctxKey int

const grantKey ctxKey = 0

// GrantFrom returns the tenant grant attached by BearerAuth, if any.
// No grant means the server runs in unauthenticated mode.
func GrantFrom(ctx context.Context) (*Grant, bool) {
	g, ok := ctx.Value(grantKey).(*Grant)
	return g, ok
}

// bucket is one token bucket: rate tokens/second, capacity cap.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	cap    float64
	tokens float64
	last   time.Time
}

// take spends one token, or reports how long until one accrues.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.cap {
			b.tokens = b.cap
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// BearerAuth resolves the request's API key — "Authorization: Bearer
// {key}" or an X-API-Key header — to a tenant grant and attaches it to
// the context. A missing or unknown key is a 401 with the wire error
// envelope. With auth disabled it is a no-op.
func BearerAuth(a *Auth) Middleware {
	return func(next http.Handler) http.Handler {
		if !a.Enabled() {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			key := r.Header.Get("X-API-Key")
			if h := r.Header.Get("Authorization"); h != "" {
				bearer, ok := strings.CutPrefix(h, "Bearer ")
				if !ok {
					WriteError(w, http.StatusUnauthorized, wire.CodeUnauthorized, "malformed Authorization header (want Bearer {key})")
					return
				}
				key = bearer
			}
			if key == "" {
				WriteError(w, http.StatusUnauthorized, wire.CodeUnauthorized, "missing API key (Authorization: Bearer {key} or X-API-Key)")
				return
			}
			g, ok := a.lookup(key)
			if !ok {
				WriteError(w, http.StatusUnauthorized, wire.CodeUnauthorized, "unknown API key")
				return
			}
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), grantKey, g)))
		})
	}
}

// TenantScope rejects requests whose {id} path segment names a plant
// outside the tenant's grant with a 403. Routes without an {id}
// segment pass through (their handlers vet body-borne plant ids via
// GrantFrom). Unauthenticated mode passes through.
func TenantScope() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if g, ok := GrantFrom(r.Context()); ok {
				if id := r.PathValue("id"); id != "" && !g.Allows(id) {
					WriteError(w, http.StatusForbidden, wire.CodeForbidden,
						fmt.Sprintf("tenant %s is not scoped to plant %q", g.Tenant.Name, id))
					return
				}
			}
			next.ServeHTTP(w, r)
		})
	}
}

// RateLimit spends one token of the tenant's bucket per request,
// answering exhaustion with the ingest path's existing backpressure
// grammar: 429 plus Retry-After (ceiling seconds), which the typed
// client already honours with jittered retries. Tenants without a
// configured rate — and unauthenticated mode — pass through.
func RateLimit() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if g, ok := GrantFrom(r.Context()); ok && g.bucket != nil {
				if ok, retry := g.bucket.take(time.Now()); !ok {
					secs := int(retry/time.Second) + 1
					w.Header().Set("Retry-After", strconv.Itoa(secs))
					WriteError(w, http.StatusTooManyRequests, wire.CodeRateLimited,
						fmt.Sprintf("tenant %s over its rate limit", g.Tenant.Name))
					return
				}
			}
			next.ServeHTTP(w, r)
		})
	}
}

// RequestLog logs one line per request: method, path, status, tenant,
// duration. A nil logf disables it.
func RequestLog(logf func(format string, args ...any)) Middleware {
	return func(next http.Handler) http.Handler {
		if logf == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
			next.ServeHTTP(sw, r)
			tenant := "-"
			if g, ok := GrantFrom(r.Context()); ok {
				tenant = g.Tenant.Name
			}
			logf("%s %s %d tenant=%s %s", r.Method, r.URL.Path, sw.status, tenant, time.Since(start).Round(time.Microsecond))
		})
	}
}

// statusWriter records the status code while forwarding everything —
// including the Hijacker the WebSocket upgrade needs and the Flusher
// SSE needs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying Flusher (SSE).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack forwards to the underlying Hijacker (WebSocket upgrade).
func (w *statusWriter) Hijack() (c net.Conn, rw *bufio.ReadWriter, err error) {
	hj, ok := w.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("gateway: underlying ResponseWriter cannot hijack")
	}
	return hj.Hijack()
}
