package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// chainFor builds the full production stack around a trivial handler,
// mirroring how the server wraps its routes.
func chainFor(a *Auth) http.Handler {
	mux := http.NewServeMux()
	h := Chain(BearerAuth(a), TenantScope(), RateLimit())(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ok"))
		}))
	mux.Handle("GET /v1/plants/{id}/alerts", h)
	return mux
}

func testAuth() *Auth {
	return NewAuth(map[string]Tenant{
		"key-a":  {Name: "acme", Plants: []string{"p1"}},
		"key-b":  {Name: "bravo", Plants: []string{"p2"}},
		"key-op": {Name: "op"},
		"key-rl": {Name: "limited", Plants: []string{"p1"}, RatePerSec: 0.001, Burst: 1},
	})
}

func TestMiddlewareTable(t *testing.T) {
	srv := chainFor(testAuth())
	cases := []struct {
		name       string
		path       string
		header     map[string]string
		wantStatus int
		wantCode   string // error envelope code; "" = success
		repeat     int    // extra identical requests before the asserted one
	}{
		{name: "missing key", path: "/v1/plants/p1/alerts", wantStatus: 401, wantCode: "unauthorized"},
		{name: "invalid key", path: "/v1/plants/p1/alerts",
			header: map[string]string{"Authorization": "Bearer nope"}, wantStatus: 401, wantCode: "unauthorized"},
		{name: "malformed authorization", path: "/v1/plants/p1/alerts",
			header: map[string]string{"Authorization": "Basic xyz"}, wantStatus: 401, wantCode: "unauthorized"},
		{name: "scoped tenant own plant", path: "/v1/plants/p1/alerts",
			header: map[string]string{"Authorization": "Bearer key-a"}, wantStatus: 200},
		{name: "x-api-key works too", path: "/v1/plants/p1/alerts",
			header: map[string]string{"X-API-Key": "key-a"}, wantStatus: 200},
		{name: "foreign tenant", path: "/v1/plants/p1/alerts",
			header: map[string]string{"Authorization": "Bearer key-b"}, wantStatus: 403, wantCode: "forbidden"},
		{name: "operator reads any plant", path: "/v1/plants/p2/alerts",
			header: map[string]string{"Authorization": "Bearer key-op"}, wantStatus: 200},
		{name: "rate limited", path: "/v1/plants/p1/alerts",
			header: map[string]string{"Authorization": "Bearer key-rl"}, repeat: 1,
			wantStatus: 429, wantCode: "rate_limited"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rec *httptest.ResponseRecorder
			for i := 0; i <= tc.repeat; i++ {
				req := httptest.NewRequest(http.MethodGet, tc.path, nil)
				for k, v := range tc.header {
					req.Header.Set(k, v)
				}
				rec = httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
			}
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d body=%s, want %d", rec.Code, rec.Body, tc.wantStatus)
			}
			if tc.wantCode == "" {
				return
			}
			var env struct {
				Err struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("body %q is not the wire envelope: %v", rec.Body, err)
			}
			if env.Err.Code != tc.wantCode || env.Err.Message == "" {
				t.Fatalf("envelope = %+v, want code %q", env.Err, tc.wantCode)
			}
			if tc.wantStatus == 429 && rec.Header().Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		})
	}
}

func TestUnauthenticatedModePassesThrough(t *testing.T) {
	srv := chainFor(nil) // no tenants configured: back-compat default
	req := httptest.NewRequest(http.MethodGet, "/v1/plants/p1/alerts", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status = %d, want open access without tenants", rec.Code)
	}
}

func TestBucketRefills(t *testing.T) {
	b := &bucket{rate: 10, cap: 1, tokens: 1}
	now := time.Unix(0, 0)
	if ok, _ := b.take(now); !ok {
		t.Fatal("first take failed")
	}
	ok, retry := b.take(now)
	if ok || retry <= 0 || retry > 200*time.Millisecond {
		t.Fatalf("second take: ok=%v retry=%v", ok, retry)
	}
	if ok, _ := b.take(now.Add(150 * time.Millisecond)); !ok {
		t.Fatal("bucket did not refill")
	}
}

func TestChainOrder(t *testing.T) {
	var got []string
	mk := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				got = append(got, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(mk("a"), mk("b"), mk("c"))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, "h")
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if strings.Join(got, "") != "abch" {
		t.Fatalf("order = %v", got)
	}
}

func TestRequestLogIncludesTenant(t *testing.T) {
	var lines []string
	logf := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	a := testAuth()
	h := Chain(BearerAuth(a), RequestLog(logf))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	req := httptest.NewRequest(http.MethodGet, "/v1/plants", nil)
	req.Header.Set("Authorization", "Bearer key-a")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if len(lines) != 1 || !strings.Contains(lines[0], "tenant=acme") || !strings.Contains(lines[0], "204") {
		t.Fatalf("log = %v", lines)
	}
}
