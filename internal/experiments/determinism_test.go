package experiments

import "testing"

// setWorkers temporarily pins the engine's fan-out width.
func setWorkers(t *testing.T, n int) {
	t.Helper()
	old := Workers
	Workers = n
	t.Cleanup(func() { Workers = old })
}

// TestRunTable1DeterministicAcrossWorkers asserts the parallel engine
// changes nothing but wall-clock: the rendered Table 1 of a strictly
// sequential run (Workers=1 takes the no-goroutine fast path) must be
// byte-identical to a heavily parallel run.
func TestRunTable1DeterministicAcrossWorkers(t *testing.T) {
	setWorkers(t, 1)
	seq, err := RunTable1(1)
	if err != nil {
		t.Fatal(err)
	}
	setWorkers(t, 8)
	par, err := RunTable1(1)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("parallel Table 1 diverged from sequential run:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq, par)
	}
}

// TestRunAblationDeterministicAcrossWorkers covers the other parallel
// path: machine fan-out with a shared plant cache plus variant fan-out.
func TestRunAblationDeterministicAcrossWorkers(t *testing.T) {
	setWorkers(t, 1)
	seq, err := RunAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	setWorkers(t, 8)
	par, err := RunAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("parallel ablation diverged from sequential run:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq, par)
	}
}

// TestRunFig1DeterministicAcrossWorkers pins the grid fan-out of the
// outlier-type sweep.
func TestRunFig1DeterministicAcrossWorkers(t *testing.T) {
	setWorkers(t, 1)
	seq, err := RunFig1(2)
	if err != nil {
		t.Fatal(err)
	}
	setWorkers(t, 8)
	par, err := RunFig1(2)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("parallel Fig. 1 diverged from sequential run:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq, par)
	}
}
