package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
)

// FlatVsHierResult is the E6 ablation: a flat single-level detector
// cannot tell process faults from measurement errors (it calls every
// deviation a fault), while the hierarchical triple can.
type FlatVsHierResult struct {
	Flat Quality
	Hier Quality
}

// Quality is a precision/recall/F1 triple for fault identification.
type Quality struct {
	Precision, Recall, F1 float64
}

// RunFlatVsHier evaluates fault identification (is this outlier a real
// process fault?) under the flat baseline and under Algorithm 1's
// combined rule.
func RunFlatVsHier(seed int64) (*FlatVsHierResult, error) {
	obs, _, err := collectAlg1Observations(seed, core.Options{MaxOutliers: 1024}, nil)
	if err != nil {
		return nil, err
	}
	truth := make([]bool, len(obs))
	flatPred := make([]bool, len(obs))
	hierPred := make([]bool, len(obs))
	for i, o := range obs {
		truth[i] = o.isFault
		flatPred[i] = true // flat detection: every outlier is an alert
		hierPred[i] = o.support >= 0.5 && o.globalScore >= 2
	}
	flat, err := eval.Confuse(flatPred, truth)
	if err != nil {
		return nil, err
	}
	hier, err := eval.Confuse(hierPred, truth)
	if err != nil {
		return nil, err
	}
	return &FlatVsHierResult{
		Flat: Quality{flat.Precision(), flat.Recall(), flat.F1()},
		Hier: Quality{hier.Precision(), hier.Recall(), hier.F1()},
	}, nil
}

// String renders the comparison.
func (r *FlatVsHierResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-10s %-10s %-10s\n", "approach", "precision", "recall", "F1")
	fmt.Fprintf(&b, "%-28s %-10.3f %-10.3f %-10.3f\n", "flat (single level)", r.Flat.Precision, r.Flat.Recall, r.Flat.F1)
	fmt.Fprintf(&b, "%-28s %-10.3f %-10.3f %-10.3f\n", "hierarchical (Algorithm 1)", r.Hier.Precision, r.Hier.Recall, r.Hier.F1)
	return b.String()
}
