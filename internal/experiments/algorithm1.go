package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parallel"
	"repro/internal/plant"
)

// Alg1Result measures the claims of Algorithm 1 on the simulated
// plant: the support value separates process faults from measurement
// errors, and the global score grows with cross-level visibility.
type Alg1Result struct {
	// Outlier population sizes.
	FaultOutliers int
	MeasOutliers  int
	// Mean support per ground-truth kind.
	FaultSupport float64
	MeasSupport  float64
	// ROC-AUC of the support value as a fault-vs-measurement-error
	// classifier.
	SupportAUC float64
	// Mean global score per kind.
	FaultGlobalScore float64
	MeasGlobalScore  float64
	// Fault identification quality of the combined rule
	// (support ≥ 0.5 ∧ global score ≥ 2) against ground truth.
	RulePrecision float64
	RuleRecall    float64
	RuleF1        float64
}

// alg1Observation is one phase-level temperature outlier attributed to
// a ground-truth event.
type alg1Observation struct {
	isFault     bool
	support     float64
	globalScore int
}

// RunAlg1 simulates a plant with both event kinds, runs Algorithm 1 on
// every machine from the phase level, attributes the reported
// temperature outliers to ground-truth events, and scores the triple's
// discriminative power.
func RunAlg1(seed int64) (*Alg1Result, error) {
	obs, _, err := collectAlg1Observations(seed, core.Options{MaxOutliers: 1024}, nil)
	if err != nil {
		return nil, err
	}
	return summarizeAlg1(obs)
}

// machineSweep is the per-machine result of one Algorithm 1 pass.
type machineSweep struct {
	obs      []alg1Observation
	warnings int
}

// simulateExperimentPlant builds the standard Algorithm 1 experiment
// plant plus the shared score cache. The cache only holds
// variant-independent plant-level scores (environment tracker,
// production cube, line robust z), so ablation variants can share one
// plant and one cache.
func simulateExperimentPlant(seed int64) (*plant.Plant, *core.PlantCache, error) {
	p, err := plant.Simulate(plant.Config{
		Seed: seed, Lines: 2, MachinesPerLine: 3, JobsPerMachine: 12,
		FaultRate: 0.25, MeasurementErrorRate: 0.25,
	})
	if err != nil {
		return nil, nil, err
	}
	return p, core.NewPlantCache(p), nil
}

// collectAlg1Observations simulates the standard experiment plant and
// sweeps it once.
func collectAlg1Observations(seed int64, opts core.Options, mod func(*core.Hierarchy)) ([]alg1Observation, int, error) {
	p, cache, err := simulateExperimentPlant(seed)
	if err != nil {
		return nil, 0, err
	}
	return sweepPlant(p, cache, opts, mod)
}

// sweepPlant runs Algorithm 1 on every machine from the phase level —
// machines in parallel over one shared plant cache — and attributes
// the reported temperature outliers to ground-truth events. The
// optional mod hook adjusts each hierarchy before detection (the
// ablations use it). Observations are concatenated in machine order,
// so the result is identical to a sequential sweep.
func sweepPlant(p *plant.Plant, cache *core.PlantCache, opts core.Options, mod func(*core.Hierarchy)) ([]alg1Observation, int, error) {
	machines := p.Machines()
	sweeps, err := parallel.Map(len(machines), Workers, func(mi int) (machineSweep, error) {
		m := machines[mi]
		// Ground truth per job: fault, measurement error, or both.
		faultJobs := map[int]bool{}
		measJobs := map[int]bool{}
		for ji, j := range m.Jobs {
			for _, ph := range j.Phases {
				for _, e := range ph.Events {
					switch e.Kind {
					case plant.ProcessFault:
						faultJobs[ji] = true
					case plant.MeasurementError:
						measJobs[ji] = true
					}
				}
			}
		}
		var sweep machineSweep
		h, err := core.NewHierarchyWithCache(p, m.ID, cache)
		if err != nil {
			return sweep, err
		}
		if mod != nil {
			mod(h)
		}
		rep, err := core.FindHierarchicalOutliers(h, core.LevelPhase, opts)
		if err != nil {
			return sweep, err
		}
		sweep.warnings = len(rep.Warnings)
		for _, o := range rep.Outliers {
			if o.Sensor != "temp-a" && o.Sensor != "temp-b" {
				continue
			}
			isFault := faultJobs[o.JobIndex]
			isMeas := measJobs[o.JobIndex]
			if isFault == isMeas {
				continue // unattributable (both or neither) — skip
			}
			sweep.obs = append(sweep.obs, alg1Observation{
				isFault:     isFault,
				support:     o.Support,
				globalScore: o.GlobalScore,
			})
		}
		return sweep, nil
	})
	if err != nil {
		return nil, 0, err
	}
	var observations []alg1Observation
	warnings := 0
	for _, s := range sweeps {
		observations = append(observations, s.obs...)
		warnings += s.warnings
	}
	return observations, warnings, nil
}

func summarizeAlg1(observations []alg1Observation) (*Alg1Result, error) {
	res := &Alg1Result{}
	var scores []float64
	var truth []bool
	var pred []bool
	for _, o := range observations {
		scores = append(scores, o.support)
		truth = append(truth, o.isFault)
		pred = append(pred, o.support >= 0.5 && o.globalScore >= 2)
		if o.isFault {
			res.FaultOutliers++
			res.FaultSupport += o.support
			res.FaultGlobalScore += float64(o.globalScore)
		} else {
			res.MeasOutliers++
			res.MeasSupport += o.support
			res.MeasGlobalScore += float64(o.globalScore)
		}
	}
	if res.FaultOutliers == 0 || res.MeasOutliers == 0 {
		return nil, fmt.Errorf("experiments: seed produced no attributable outliers of both kinds (fault=%d meas=%d)",
			res.FaultOutliers, res.MeasOutliers)
	}
	res.FaultSupport /= float64(res.FaultOutliers)
	res.FaultGlobalScore /= float64(res.FaultOutliers)
	res.MeasSupport /= float64(res.MeasOutliers)
	res.MeasGlobalScore /= float64(res.MeasOutliers)
	auc, err := eval.ROCAUC(scores, truth)
	if err != nil {
		return nil, err
	}
	res.SupportAUC = auc
	c, err := eval.Confuse(pred, truth)
	if err != nil {
		return nil, err
	}
	res.RulePrecision = c.Precision()
	res.RuleRecall = c.Recall()
	res.RuleF1 = c.F1()
	return res, nil
}

// String renders the Algorithm 1 experiment.
func (r *Alg1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "phase-level temperature outliers: %d from faults, %d from measurement errors\n",
		r.FaultOutliers, r.MeasOutliers)
	fmt.Fprintf(&b, "%-28s %-12s %-12s\n", "", "fault", "meas.error")
	fmt.Fprintf(&b, "%-28s %-12.3f %-12.3f\n", "mean support", r.FaultSupport, r.MeasSupport)
	fmt.Fprintf(&b, "%-28s %-12.3f %-12.3f\n", "mean global score", r.FaultGlobalScore, r.MeasGlobalScore)
	fmt.Fprintf(&b, "support AUC (fault vs meas): %.3f\n", r.SupportAUC)
	fmt.Fprintf(&b, "rule support>=0.5 & gs>=2:   P=%.3f R=%.3f F1=%.3f\n",
		r.RulePrecision, r.RuleRecall, r.RuleF1)
	return b.String()
}

// AblationResult compares Algorithm 1 variants (DESIGN.md §5): the
// full algorithm, raw (unnormalised) support, no downward pass, and
// the naive phase detector.
type AblationResult struct {
	Variants []AblationVariant
}

// AblationVariant is one ablation row.
type AblationVariant struct {
	Name       string
	SupportAUC float64
	RuleF1     float64
	Warnings   int
}

// RunAblation executes the ablation matrix. The four variants evaluate
// concurrently over one shared plant (they would each simulate an
// identical one from the seed) and one shared score cache — only the
// per-machine hierarchies, which the variants modify, stay private.
func RunAblation(seed int64) (*AblationResult, error) {
	variants := []struct {
		name string
		opts core.Options
		mod  func(*core.Hierarchy)
	}{
		{"full algorithm", core.Options{MaxOutliers: 1024}, nil},
		{"raw support (no normalisation)", core.Options{MaxOutliers: 1024, RawSupport: true}, nil},
		{"no downward pass", core.Options{MaxOutliers: 1024, DisableDownPass: true}, nil},
		{"naive phase detector", core.Options{MaxOutliers: 1024}, func(h *core.Hierarchy) { h.NaivePhase = true }},
	}
	p, cache, err := simulateExperimentPlant(seed)
	if err != nil {
		return nil, err
	}
	rows, err := parallel.Map(len(variants), Workers, func(i int) (AblationVariant, error) {
		v := variants[i]
		row, err := runAblationVariant(p, cache, v.opts, v.mod)
		if err != nil {
			return AblationVariant{}, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		row.Name = v.name
		return *row, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Variants: rows}, nil
}

func runAblationVariant(p *plant.Plant, cache *core.PlantCache, opts core.Options, mod func(*core.Hierarchy)) (*AblationVariant, error) {
	observations, warnings, err := sweepPlant(p, cache, opts, mod)
	if err != nil {
		return nil, err
	}
	sum, err := summarizeAlg1(observations)
	if err != nil {
		// A variant that surfaces no attributable outliers (the naive
		// phase detector drowns the faults in cross-phase variance) is
		// a legitimate ablation outcome: it scores zero.
		return &AblationVariant{SupportAUC: 0, RuleF1: 0, Warnings: warnings}, nil
	}
	return &AblationVariant{SupportAUC: sum.SupportAUC, RuleF1: sum.RuleF1, Warnings: warnings}, nil
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-12s %-10s %-10s\n", "variant", "supportAUC", "ruleF1", "warnings")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, "%-34s %-12.3f %-10.3f %-10d\n", v.Name, v.SupportAUC, v.RuleF1, v.Warnings)
	}
	return b.String()
}
