package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/detector"
	"repro/internal/detector/registry"
	"repro/internal/eval"
	"repro/internal/generator"
	"repro/internal/parallel"
	"repro/internal/plant"
)

// Fig1Result reproduces Fig. 1: for each of the four Fox outlier
// types, the detection quality (ROC-AUC) of a panel of point
// detectors.
type Fig1Result struct {
	Types     []generator.OutlierType
	Detectors []string
	// AUC[t][d] is the ROC-AUC of detector d on outlier type t.
	AUC [][]float64
}

// Fig1Panel lists the point detectors exercised per outlier type.
var Fig1Panel = []string{"ar", "em-gmm", "pca-space", "one-class-svm", "som", "single-linkage", "olap-cube", "hist-deviant", "profile"}

// fig1Workload holds one outlier type's generated series triple.
type fig1Workload struct {
	clean, train, test *generator.Labeled
}

// RunFig1 injects each Fig. 1 outlier type separately and measures how
// well each PTS-capable detector recovers it. The workloads per type
// and then the full type × detector grid are evaluated concurrently;
// every cell gets a fresh detector and reads the shared workloads
// read-only, and RNGs are derived from the seed per workload, so the
// matrix matches the sequential execution exactly.
func RunFig1(seed int64) (*Fig1Result, error) {
	res := &Fig1Result{Types: generator.AllOutlierTypes, Detectors: Fig1Panel}
	cfg := generator.Config{N: 3000, Phi: 0.6}
	workloads, err := parallel.Map(len(generator.AllOutlierTypes), Workers, func(ti int) (fig1Workload, error) {
		typ := generator.AllOutlierTypes[ti]
		var w fig1Workload
		var err error
		if w.clean, err = generator.Workload(cfg, typ, 0, 0, rand.New(rand.NewSource(seed))); err != nil {
			return w, err
		}
		if w.train, err = generator.Workload(cfg, typ, 8, 7, rand.New(rand.NewSource(seed+int64(ti)+1))); err != nil {
			return w, err
		}
		if w.test, err = generator.Workload(cfg, typ, 8, 7, rand.New(rand.NewSource(seed+int64(ti)+100))); err != nil {
			return w, err
		}
		return w, nil
	})
	if err != nil {
		return nil, err
	}
	cells, err := parallel.Map(len(workloads)*len(Fig1Panel), Workers, func(k int) (float64, error) {
		w, name := workloads[k/len(Fig1Panel)], Fig1Panel[k%len(Fig1Panel)]
		entry, err := registry.ByName(name)
		if err != nil {
			return 0, err
		}
		d := entry.New()
		if sup, ok := d.(detector.SupervisedPoint); ok {
			if err := sup.FitPoints(w.train.Series.Values, w.train.PointLabels); err != nil {
				return 0, fmt.Errorf("%s: %w", name, err)
			}
		} else if f, ok := d.(detector.Fitter); ok {
			if err := f.Fit(w.clean.Series.Values); err != nil {
				return 0, fmt.Errorf("%s: %w", name, err)
			}
		}
		ps, ok := d.(detector.PointScorer)
		if !ok {
			return 0, fmt.Errorf("%s: not a point scorer", name)
		}
		scores, err := ps.ScorePoints(w.test.Series.Values)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		auc, err := eval.ROCAUC(scores, w.test.PointLabels)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		return auc, nil
	})
	if err != nil {
		return nil, err
	}
	for ti := range workloads {
		lo, hi := ti*len(Fig1Panel), (ti+1)*len(Fig1Panel)
		// Cap each row's capacity so rows stay isolated despite the
		// shared backing array.
		res.AUC = append(res.AUC, cells[lo:hi:hi])
	}
	return res, nil
}

// String renders the Fig. 1 detection matrix.
func (r *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s", "outlier type")
	for _, d := range r.Detectors {
		fmt.Fprintf(&b, " %-14s", d)
	}
	b.WriteByte('\n')
	for ti, typ := range r.Types {
		fmt.Fprintf(&b, "%-20s", typ)
		for di := range r.Detectors {
			fmt.Fprintf(&b, " %-14.3f", r.AUC[ti][di])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LevelCensus describes one hierarchy level's data shape in the
// simulated plant — the reproduction of Fig. 2's structural claims.
type LevelCensus struct {
	Level          string
	DataKind       string
	Series         int // number of series / vectors at this level
	Dimensionality int
	SamplesEach    int
}

// Fig2Result is the level census.
type Fig2Result struct {
	Levels []LevelCensus
}

// RunFig2 simulates the plant and reports, per hierarchy level, the
// data shape the level provides.
func RunFig2(seed int64) (*Fig2Result, error) {
	p, err := plant.Simulate(plant.Config{Seed: seed, FaultRate: 0.2, MeasurementErrorRate: 0.2})
	if err != nil {
		return nil, err
	}
	machines := p.Machines()
	m := machines[0]
	stream, err := m.PhaseStream()
	if err != nil {
		return nil, err
	}
	jv := m.JobVectors()
	ls, err := m.LineSeries()
	if err != nil {
		return nil, err
	}
	prod, err := p.ProductionSeries()
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Levels: []LevelCensus{
		{Level: "1 phase", DataKind: "multi-dimensional high-resolution time series", Series: len(machines), Dimensionality: stream.Width(), SamplesEach: stream.Len()},
		{Level: "2 job", DataKind: "high-dimensional setup + CAQ vectors", Series: len(machines), Dimensionality: len(jv[0]), SamplesEach: len(jv)},
		{Level: "3 environment", DataKind: "co-measured climate time series", Series: 1, Dimensionality: p.Environment.Width(), SamplesEach: p.Environment.Len()},
		{Level: "4 production line", DataKind: "per-job aggregate time series", Series: len(machines), Dimensionality: 1, SamplesEach: ls.Len()},
		{Level: "5 production", DataKind: "cross-machine series batch", Series: 1, Dimensionality: len(prod), SamplesEach: prod[0].Len()},
	}}
	return res, nil
}

// String renders the level census.
func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-48s %-8s %-6s %-10s\n", "level", "data kind", "series", "dims", "samples")
	for _, l := range r.Levels {
		fmt.Fprintf(&b, "%-18s %-48s %-8d %-6d %-10d\n", l.Level, l.DataKind, l.Series, l.Dimensionality, l.SamplesEach)
	}
	return b.String()
}

// Fig3Result wraps the reproduced bibliometric counts.
type Fig3Result struct {
	Rows []corpus.Fig3Row
}

// RunFig3 generates the calibrated corpus and executes the Fig. 3
// query pipeline on the search engine.
func RunFig3(seed int64) (*Fig3Result, error) {
	e := corpus.NewEngine(corpus.GenerateFig3Corpus(rand.New(rand.NewSource(seed))))
	rows, err := corpus.RunFig3(e)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Rows: rows}, nil
}

// String renders the Fig. 3 bar data as a table with unit-scaled bars.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-12s %-12s %s\n", "term", "time series", "autom.ctrl", "")
	max := 1
	for _, row := range r.Rows {
		if row.TimeSeries > max {
			max = row.TimeSeries
		}
	}
	for _, row := range r.Rows {
		bar := strings.Repeat("#", row.TimeSeries*40/max)
		fmt.Fprintf(&b, "%-24s %-12d %-12d %s\n", row.Term, row.TimeSeries, row.Automation, bar)
	}
	return b.String()
}
