// Package experiments regenerates every table and figure of the paper
// from the implemented system: Table 1 (technique categorisation with
// conformance runs), Fig. 1 (outlier types), Fig. 2 (hierarchy level
// census), Algorithm 1 (the triple on simulated production data),
// Fig. 3 (bibliometrics) and the ablations DESIGN.md calls out. Both
// the benchmark suite and cmd/benchtab are thin wrappers over this
// package.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/detector"
	"repro/internal/detector/registry"
	"repro/internal/eval"
	"repro/internal/generator"
	"repro/internal/parallel"
)

// Workers bounds the experiment engine's fan-out: 0 (the default) uses
// GOMAXPROCS, 1 forces the strictly sequential reference execution.
// Every work item draws from its own seed-derived RNG and results are
// collected in index order, so the output is byte-identical at any
// setting — Workers only trades wall-clock for cores.
var Workers = 0

// Table1Row is one measured row of the reproduced Table 1: the
// technique's static capability columns plus, for every declared ✓, the
// ROC-AUC of a conformance run on the standard workload.
type Table1Row struct {
	Info   detector.Info
	AUCPts float64 // NaN when PTS not declared
	AUCSsq float64
	AUCTss float64
}

// Table1Result is the full reproduced table.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 executes the conformance suite: every Table 1 technique is
// constructed from the registry, trained per its interface contract
// (Fitter on clean data, Supervised* on labelled data) and scored on
// held-out contaminated workloads at every granularity it declares.
// Conformance runs are evaluated concurrently at (technique,
// granularity) grain — finer than per-technique, so one heavy
// technique cannot become the critical path of the whole table. Every
// run constructs a fresh detector and derives its RNGs from the seed
// alone, and results land in registry order, so the table is
// byte-identical to a sequential run.
func RunTable1(seed int64) (*Table1Result, error) {
	type conformance struct {
		entry   registry.Entry
		row     int
		kind    string // PTS, SSQ, or TSS
		run     func(registry.Entry, int64) (float64, error)
		aucCell func(*Table1Row) *float64
	}
	rows := make([]Table1Row, len(registry.Table1))
	var cells []conformance
	for i, entry := range registry.Table1 {
		rows[i] = Table1Row{Info: entry.Info, AUCPts: math.NaN(), AUCSsq: math.NaN(), AUCTss: math.NaN()}
		if entry.Info.Capability.Points {
			cells = append(cells, conformance{entry, i, "PTS", conformPoints,
				func(r *Table1Row) *float64 { return &r.AUCPts }})
		}
		if entry.Info.Capability.Subsequences {
			cells = append(cells, conformance{entry, i, "SSQ", conformWindows,
				func(r *Table1Row) *float64 { return &r.AUCSsq }})
		}
		if entry.Info.Capability.Series {
			cells = append(cells, conformance{entry, i, "TSS", conformSeries,
				func(r *Table1Row) *float64 { return &r.AUCTss }})
		}
	}
	aucs, err := parallel.Map(len(cells), Workers, func(k int) (float64, error) {
		c := cells[k]
		auc, err := c.run(c.entry, seed)
		if err != nil {
			return 0, fmt.Errorf("%s/%s: %w", c.entry.Info.Name, c.kind, err)
		}
		return auc, nil
	})
	if err != nil {
		return nil, err
	}
	for k, c := range cells {
		*c.aucCell(&rows[c.row]) = aucs[k]
	}
	return &Table1Result{Rows: rows}, nil
}

// conformPoints runs the PTS conformance workload: mixed Fox outliers
// on an AR(1) base.
func conformPoints(entry registry.Entry, seed int64) (float64, error) {
	cfg := generator.Config{N: 2000, Phi: 0.5}
	clean, err := generator.MixedWorkload(cfg, 0, 0, rand.New(rand.NewSource(seed)))
	if err != nil {
		return 0, err
	}
	train, err := generator.MixedWorkload(cfg, 10, 7, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return 0, err
	}
	test, err := generator.MixedWorkload(cfg, 10, 7, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		return 0, err
	}
	d := entry.New()
	if sup, ok := d.(detector.SupervisedPoint); ok {
		if err := sup.FitPoints(train.Series.Values, train.PointLabels); err != nil {
			return 0, err
		}
	} else if f, ok := d.(detector.Fitter); ok {
		if err := f.Fit(clean.Series.Values); err != nil {
			return 0, err
		}
	}
	ps, ok := d.(detector.PointScorer)
	if !ok {
		return 0, fmt.Errorf("declares PTS but cannot score points")
	}
	scores, err := ps.ScorePoints(test.Series.Values)
	if err != nil {
		return 0, err
	}
	if len(scores) != test.Series.Len() {
		return 0, fmt.Errorf("returned %d scores for %d samples", len(scores), test.Series.Len())
	}
	return eval.ROCAUC(scores, test.PointLabels)
}

// conformWindows runs the SSQ conformance workload: discord-style
// subsequence anomalies in a periodic signal.
func conformWindows(entry registry.Entry, seed int64) (float64, error) {
	const (
		n      = 3072
		length = 48
		count  = 5
		wsize  = 32
		stride = 4
	)
	clean, err := generator.SubseqWorkload(n, length, 0, rand.New(rand.NewSource(seed)))
	if err != nil {
		return 0, err
	}
	train, err := generator.SubseqWorkload(n, length, count, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return 0, err
	}
	test, err := generator.SubseqWorkload(n, length, count, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		return 0, err
	}
	d := entry.New()
	if sup, ok := d.(detector.SupervisedWindow); ok {
		if err := sup.FitWindows(train.Series.Values, train.PointLabels, wsize, stride); err != nil {
			return 0, err
		}
	} else if f, ok := d.(detector.Fitter); ok {
		if err := f.Fit(clean.Series.Values); err != nil {
			return 0, err
		}
	}
	ws, ok := d.(detector.WindowScorer)
	if !ok {
		return 0, fmt.Errorf("declares SSQ but cannot score windows")
	}
	scored, err := ws.ScoreWindows(test.Series.Values, wsize, stride)
	if err != nil {
		return 0, err
	}
	scores := make([]float64, len(scored))
	truth := make([]bool, len(scored))
	for i, w := range scored {
		scores[i] = w.Score
		for k := w.Start; k < w.Start+wsize && k < len(test.PointLabels); k++ {
			if test.PointLabels[k] {
				truth[i] = true
				break
			}
		}
	}
	return eval.ROCAUC(scores, truth)
}

// conformSeries runs the TSS conformance workload: whole-series regime
// anomalies.
func conformSeries(entry registry.Entry, seed int64) (float64, error) {
	train, err := generator.SeriesWorkload(40, 8, 256, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return 0, err
	}
	test, err := generator.SeriesWorkload(40, 8, 256, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		return 0, err
	}
	trainBatch := make([][]float64, len(train.Series))
	for i, s := range train.Series {
		trainBatch[i] = s.Values
	}
	testBatch := make([][]float64, len(test.Series))
	for i, s := range test.Series {
		testBatch[i] = s.Values
	}
	d := entry.New()
	if sup, ok := d.(detector.SupervisedSeries); ok {
		if err := sup.FitSeries(trainBatch, train.Labels); err != nil {
			return 0, err
		}
	} else if f, ok := d.(detector.Fitter); ok {
		var all []float64
		for i, s := range trainBatch {
			if !train.Labels[i] {
				all = append(all, s...)
			}
		}
		if err := f.Fit(all); err != nil {
			return 0, err
		}
	}
	ss, ok := d.(detector.SeriesScorer)
	if !ok {
		return 0, fmt.Errorf("declares TSS but cannot score series")
	}
	scores, err := ss.ScoreSeries(testBatch)
	if err != nil {
		return 0, err
	}
	return eval.ROCAUC(scores, test.Labels)
}

// String renders the reproduced Table 1 with the conformance AUCs.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-38s %-5s %-10s %-10s %-10s\n", "Technique", "Type", "PTS", "SSQ", "TSS")
	cell := func(declared bool, auc float64) string {
		if !declared {
			return ""
		}
		return fmt.Sprintf("x %.2f", auc)
	}
	for _, row := range r.Rows {
		c := row.Info.Capability
		fmt.Fprintf(&b, "%-38s %-5s %-10s %-10s %-10s\n",
			row.Info.Title+" "+row.Info.Citation, string(row.Info.Family),
			cell(c.Points, row.AUCPts), cell(c.Subsequences, row.AUCSsq), cell(c.Series, row.AUCTss))
	}
	return b.String()
}
