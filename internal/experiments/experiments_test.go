package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunTable1AllCapabilitiesScored(t *testing.T) {
	res, err := RunTable1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 21 {
		t.Fatalf("rows=%d want 21", len(res.Rows))
	}
	for _, row := range res.Rows {
		c := row.Info.Capability
		if c.Points != !math.IsNaN(row.AUCPts) {
			t.Errorf("%s: PTS declared=%v scored=%v", row.Info.Name, c.Points, !math.IsNaN(row.AUCPts))
		}
		if c.Subsequences != !math.IsNaN(row.AUCSsq) {
			t.Errorf("%s: SSQ declared=%v scored=%v", row.Info.Name, c.Subsequences, !math.IsNaN(row.AUCSsq))
		}
		if c.Series != !math.IsNaN(row.AUCTss) {
			t.Errorf("%s: TSS declared=%v scored=%v", row.Info.Name, c.Series, !math.IsNaN(row.AUCTss))
		}
		// Every conformance run must produce a valid AUC in [0, 1].
		for _, auc := range []float64{row.AUCPts, row.AUCSsq, row.AUCTss} {
			if !math.IsNaN(auc) && (auc < 0 || auc > 1) {
				t.Errorf("%s: AUC %v out of range", row.Info.Name, auc)
			}
		}
	}
	out := res.String()
	if !strings.Contains(out, "Match Count Sequence Similarity") {
		t.Fatal("render missing rows")
	}
}

func TestRunFig1ShapesAndSignal(t *testing.T) {
	res, err := RunFig1(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AUC) != 4 || len(res.AUC[0]) != len(Fig1Panel) {
		t.Fatalf("matrix %dx%d", len(res.AUC), len(res.AUC[0]))
	}
	// The AR predictive model must be strong on additive outliers
	// (row 0) — the shape every PM evaluation reports.
	arIdx := -1
	for i, n := range res.Detectors {
		if n == "ar" {
			arIdx = i
		}
	}
	if res.AUC[0][arIdx] < 0.9 {
		t.Fatalf("AR on AO AUC=%.3f want >= 0.9", res.AUC[0][arIdx])
	}
	if !strings.Contains(res.String(), "additive-outlier") {
		t.Fatal("render missing outlier types")
	}
}

func TestRunFig2Census(t *testing.T) {
	res, err := RunFig2(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 5 {
		t.Fatalf("levels=%d", len(res.Levels))
	}
	// Level 1 must be the highest-resolution view.
	if res.Levels[0].SamplesEach <= res.Levels[3].SamplesEach {
		t.Fatal("phase level should out-resolve the line level")
	}
	// Level 2 must be the highest-dimensional per-item view.
	if res.Levels[1].Dimensionality <= res.Levels[3].Dimensionality {
		t.Fatal("job level should be higher-dimensional than line level")
	}
	if !strings.Contains(res.String(), "environment") {
		t.Fatal("render missing levels")
	}
}

func TestRunFig3ReproducesShape(t *testing.T) {
	res, err := RunFig3(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	byTerm := map[string]int{}
	for _, r := range res.Rows {
		byTerm[r.Term] = r.TimeSeries
	}
	if byTerm["anomaly detection"] <= byTerm["outlier detection"] {
		t.Fatal("anomaly detection must dominate outlier detection (Fig. 3 shape)")
	}
	if !strings.Contains(res.String(), "anomaly detection") {
		t.Fatal("render missing terms")
	}
}

func TestRunAlg1SupportSeparates(t *testing.T) {
	res, err := RunAlg1(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultSupport <= res.MeasSupport {
		t.Fatalf("fault support %.3f must exceed measurement-error support %.3f",
			res.FaultSupport, res.MeasSupport)
	}
	if res.SupportAUC < 0.9 {
		t.Fatalf("support AUC=%.3f want >= 0.9", res.SupportAUC)
	}
	if res.FaultGlobalScore <= res.MeasGlobalScore {
		t.Fatalf("fault global score %.3f must exceed measurement-error %.3f",
			res.FaultGlobalScore, res.MeasGlobalScore)
	}
	if !strings.Contains(res.String(), "mean support") {
		t.Fatal("render incomplete")
	}
}

func TestRunFlatVsHier(t *testing.T) {
	res, err := RunFlatVsHier(5)
	if err != nil {
		t.Fatal(err)
	}
	// The hierarchical rule must improve fault-identification
	// precision over the flat baseline without collapsing recall.
	if res.Hier.Precision <= res.Flat.Precision {
		t.Fatalf("hierarchical precision %.3f must beat flat %.3f",
			res.Hier.Precision, res.Flat.Precision)
	}
	if res.Hier.F1 <= res.Flat.F1 {
		t.Fatalf("hierarchical F1 %.3f must beat flat %.3f", res.Hier.F1, res.Flat.F1)
	}
	if !strings.Contains(res.String(), "flat (single level)") {
		t.Fatal("render incomplete")
	}
}

func TestRunAblation(t *testing.T) {
	res, err := RunAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("variants=%d", len(res.Variants))
	}
	full := res.Variants[0]
	noDown := res.Variants[2]
	if noDown.Warnings != 0 {
		t.Fatal("no-down-pass variant must not warn")
	}
	if full.SupportAUC < 0.85 {
		t.Fatalf("full algorithm support AUC=%.3f", full.SupportAUC)
	}
	if !strings.Contains(res.String(), "naive phase detector") {
		t.Fatal("render incomplete")
	}
}
