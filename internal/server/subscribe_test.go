package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/plant"
	"repro/pkg/hod"
	"repro/pkg/hod/wire"
)

// pushFixture spins up a server (plus options), registers one plantsim
// plant, and returns everything a push test needs. The low alert
// threshold makes the EWMA trackers fire constantly, so the alert ring
// wraps — the interesting regime for coalescing.
type pushFixture struct {
	srv  *Server
	ts   *httptest.Server
	c    *hod.Client
	recs []Record
	id   string
}

func newPushFixture(t *testing.T, opts Options, clientOpts ...hod.ClientOption) *pushFixture {
	t.Helper()
	if opts.AlertThreshold == 0 {
		opts.AlertThreshold = 0.5
	}
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	p, err := plant.Simulate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := &pushFixture{
		srv: srv, ts: ts, id: "push-plant",
		c:    hod.NewClient(ts.URL, clientOpts...),
		recs: machineRecords(p),
	}
	if _, err := f.c.Register(context.Background(), topoFromPlant(f.id, p)); err != nil {
		t.Fatal(err)
	}
	return f
}

// ingestAll uploads every record in batches and waits for the fold
// pipelines to drain.
func (f *pushFixture) ingestAll(t *testing.T, ctx context.Context) {
	t.Helper()
	bs := f.c.BatchStream(f.id, 500)
	for _, r := range f.recs {
		if err := bs.Add(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	drain, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := f.c.WaitDrained(drain, f.id, uint64(len(f.recs))); err != nil {
		t.Fatal(err)
	}
}

// TestWSSubscriberConvergesToPolledAlerts is the E2E acceptance: a
// WebSocket subscriber attached during a plantsim replay receives an
// alert stream whose final coalesced state — the last ring-capacity
// alerts by Seq — is byte-identical to what polling the alerts
// endpoint returns after the drain.
func TestWSSubscriberConvergesToPolledAlerts(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	f := newPushFixture(t, Options{})
	sub, err := f.c.SubscribeAlerts(ctx, f.id)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Drain the stream concurrently with ingest; the iterator dedups by
	// Seq, so delivered alerts are exactly-once and seq-ordered.
	var mu sync.Mutex
	var delivered []wire.Alert
	drained := make(chan error, 1)
	go func() {
		for {
			ev, err := sub.Next(ctx)
			if err != nil {
				drained <- err
				return
			}
			mu.Lock()
			delivered = append(delivered, ev.Alerts...)
			mu.Unlock()
		}
	}()

	f.ingestAll(t, ctx)
	polled, err := f.c.Alerts(ctx, f.id, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(polled.Alerts) == 0 {
		t.Fatal("fixture produced no alerts; the convergence check is vacuous")
	}
	wantMax := polled.Alerts[len(polled.Alerts)-1].Seq

	// Wait for the push stream to catch up to the polled high-water
	// mark, then compare final states.
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		n := len(delivered)
		var gotMax uint64
		if n > 0 {
			gotMax = delivered[n-1].Seq
		}
		mu.Unlock()
		if gotMax >= wantMax {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("push stream stalled at seq %d, polled ring ends at %d", gotMax, wantMax)
		}
		time.Sleep(10 * time.Millisecond)
	}
	sub.Close()
	if err := <-drained; !errors.Is(err, hod.ErrSubscriptionClosed) && ctx.Err() == nil {
		t.Fatalf("drain goroutine: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(delivered); i++ {
		if delivered[i].Seq <= delivered[i-1].Seq {
			t.Fatalf("delivered alerts not strictly seq-ordered at %d: %d then %d",
				i, delivered[i-1].Seq, delivered[i].Seq)
		}
	}
	if len(delivered) < len(polled.Alerts) {
		t.Fatalf("delivered %d alerts, polled ring holds %d", len(delivered), len(polled.Alerts))
	}
	final := delivered[len(delivered)-len(polled.Alerts):]
	gotJSON, _ := json.Marshal(final)
	wantJSON, _ := json.Marshal(polled.Alerts)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("final coalesced push state differs from polled alerts:\npush:   %.200s...\npolled: %.200s...",
			gotJSON, wantJSON)
	}
}

// TestStalledSubscriberCoalesces pins the slow-consumer contract end to
// end: a subscriber that never reads during the whole replay does not
// block ingest, and once it resumes it converges to the same final
// ring state — receiving Coalesced events instead of the full history.
func TestStalledSubscriberCoalesces(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	f := newPushFixture(t, Options{})
	sub, err := f.c.SubscribeAlerts(ctx, f.id)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Stall: no Next calls while the whole trace folds. Ingest must
	// finish regardless — the hub never blocks the fold path.
	f.ingestAll(t, ctx)
	polled, err := f.c.Alerts(ctx, f.id, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(polled.Alerts) < alertRingCap {
		t.Fatalf("fixture raised %d alerts, want a full ring (%d) to exercise trimming",
			len(polled.Alerts), alertRingCap)
	}
	wantMax := polled.Alerts[len(polled.Alerts)-1].Seq

	// Resume. The iterator dedups, so collecting until the high-water
	// mark yields each seq at most once; the server side must have
	// coalesced (we slept through thousands of events).
	var got []wire.Alert
	sawCoalesced := false
	for {
		next, cancelNext := context.WithTimeout(ctx, 30*time.Second)
		ev, err := sub.Next(next)
		cancelNext()
		if err != nil {
			t.Fatalf("resume: %v (got %d alerts so far)", err, len(got))
		}
		if ev.Coalesced {
			sawCoalesced = true
		}
		got = append(got, ev.Alerts...)
		if len(got) > 0 && got[len(got)-1].Seq >= wantMax {
			break
		}
	}
	if !sawCoalesced {
		t.Error("stalled subscriber resumed without any Coalesced event")
	}
	if len(got) < len(polled.Alerts) {
		t.Fatalf("resumed stream delivered %d alerts, ring holds %d", len(got), len(polled.Alerts))
	}
	final := got[len(got)-len(polled.Alerts):]
	gotJSON, _ := json.Marshal(final)
	wantJSON, _ := json.Marshal(polled.Alerts)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("stalled subscriber's final state differs from polled alerts")
	}
}

// TestForeignTenantSubscribeRejected pins the auth contract of the
// push endpoints: the handshake is refused before any upgrade, with
// the typed wire envelope, on both transports.
func TestForeignTenantSubscribeRejected(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv := New(Options{Tenants: testTenants()})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	op := hod.NewClient(ts.URL, hod.WithAPIKey("key-op"))
	p, err := plant.Simulate(plant.Config{Seed: 3, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := op.Register(ctx, topoFromPlant("p2", p)); err != nil {
		t.Fatal(err)
	}

	scoped := hod.NewClient(ts.URL, hod.WithAPIKey("key-acme")) // granted p1 only
	for _, mode := range []struct {
		name string
		opts []hod.SubscribeOption
	}{{"websocket", nil}, {"sse", []hod.SubscribeOption{hod.WithSSE()}}} {
		t.Run(mode.name, func(t *testing.T) {
			_, err := scoped.Subscribe(ctx, wire.SubscribeRequest{Channels: []string{"alerts:p2"}}, mode.opts...)
			if !errors.Is(err, hod.ErrForbidden) {
				t.Fatalf("foreign-tenant subscribe: err = %v, want ErrForbidden", err)
			}
			var apiErr *hod.APIError
			if !errors.As(err, &apiErr) || apiErr.Code != wire.CodeForbidden || apiErr.Status != 403 {
				t.Fatalf("err = %#v, want typed envelope with code %q", err, wire.CodeForbidden)
			}
		})
	}

	// No key at all in authenticated mode: 401 before the upgrade.
	anon := hod.NewClient(ts.URL)
	if _, err := anon.Subscribe(ctx, wire.SubscribeRequest{Channels: []string{"alerts:p2"}}); !errors.Is(err, hod.ErrUnauthorized) {
		t.Fatalf("anonymous subscribe: err = %v, want ErrUnauthorized", err)
	}
	// Unknown plant: typed 404, same pre-upgrade path.
	if _, err := op.Subscribe(ctx, wire.SubscribeRequest{Channels: []string{"alerts:ghost"}}); !errors.Is(err, hod.ErrUnknownPlant) {
		t.Fatalf("unknown-plant subscribe: err = %v, want ErrUnknownPlant", err)
	}
}

// TestConcurrentSubscribersDuringIngest races N mixed-transport,
// mixed-kind subscribers against a live replay — the -race suite's
// gateway workout. Every alert subscriber must converge to the polled
// ring state.
func TestConcurrentSubscribersDuringIngest(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	f := newPushFixture(t, Options{})

	const nSubs = 6
	subs := make([]*hod.Subscription, nSubs)
	for i := range subs {
		var opts []hod.SubscribeOption
		if i%2 == 1 {
			opts = append(opts, hod.WithSSE())
		}
		var (
			sub *hod.Subscription
			err error
		)
		switch i % 3 {
		case 0:
			sub, err = f.c.Subscribe(ctx, wire.SubscribeRequest{Channels: []string{"alerts:" + f.id}}, opts...)
		case 1:
			sub, err = f.c.Subscribe(ctx, wire.SubscribeRequest{Channels: []string{"alerts:*", "stats:*"}}, opts...)
		case 2:
			sub, err = f.c.Subscribe(ctx, wire.SubscribeRequest{Channels: []string{"cube:" + f.id, "stats:" + f.id}}, opts...)
		}
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
		defer sub.Close()
	}

	type result struct {
		alerts []wire.Alert
		stats  int
		cubes  int
		err    error
	}
	results := make([]result, nSubs)
	var wg sync.WaitGroup
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub *hod.Subscription) {
			defer wg.Done()
			for {
				ev, err := sub.Next(ctx)
				if err != nil {
					if !errors.Is(err, hod.ErrSubscriptionClosed) && ctx.Err() == nil {
						results[i].err = err
					}
					return
				}
				switch ev.Kind {
				case wire.EventAlert:
					results[i].alerts = append(results[i].alerts, ev.Alerts...)
				case wire.EventStats:
					results[i].stats++
				case wire.EventCubeDelta:
					results[i].cubes++
				}
			}
		}(i, sub)
	}

	f.ingestAll(t, ctx)
	polled, err := f.c.Alerts(ctx, f.id, -1)
	if err != nil {
		t.Fatal(err)
	}
	wantMax := polled.Alerts[len(polled.Alerts)-1].Seq

	// Give the streams a moment to catch up, then close everything.
	deadline := time.Now().Add(30 * time.Second)
	for {
		behind := false
		for i := range results {
			if i%3 == 2 {
				continue // no alert channel
			}
			if n := len(results[i].alerts); n == 0 || results[i].alerts[n-1].Seq < wantMax {
				behind = true
			}
		}
		if !behind || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, sub := range subs {
		sub.Close()
	}
	wg.Wait()

	wantJSON, _ := json.Marshal(polled.Alerts)
	for i, res := range results {
		if res.err != nil {
			t.Errorf("subscriber %d: %v", i, res.err)
			continue
		}
		switch i % 3 {
		case 0, 1:
			if len(res.alerts) < len(polled.Alerts) {
				t.Errorf("subscriber %d: delivered %d alerts, ring holds %d", i, len(res.alerts), len(polled.Alerts))
				continue
			}
			final := res.alerts[len(res.alerts)-len(polled.Alerts):]
			gotJSON, _ := json.Marshal(final)
			if string(gotJSON) != string(wantJSON) {
				t.Errorf("subscriber %d: final alert state differs from polled ring", i)
			}
		case 2:
			if res.stats == 0 || res.cubes == 0 {
				t.Errorf("subscriber %d: stats=%d cubes=%d, want both > 0", i, res.stats, res.cubes)
			}
		}
	}
}

// TestSubscriptionReconnectResumes drops the transport mid-stream and
// checks the iterator resumes from its cursor without replaying or
// losing alerts.
func TestSubscriptionReconnectResumes(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	f := newPushFixture(t, Options{})
	sub, err := f.c.SubscribeAlerts(ctx, f.id)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	f.ingestAll(t, ctx)
	polled, err := f.c.Alerts(ctx, f.id, -1)
	if err != nil {
		t.Fatal(err)
	}
	wantMax := polled.Alerts[len(polled.Alerts)-1].Seq

	var got []wire.Alert
	dropped := false
	for {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		got = append(got, ev.Alerts...)
		if !dropped && len(got) > 0 {
			sub.Drop() // sever mid-stream; the next call must reconnect
			dropped = true
		}
		if n := len(got); n > 0 && got[n-1].Seq >= wantMax {
			break
		}
	}
	if sub.Reconnects() == 0 {
		t.Error("transport was dropped but the subscription never reconnected")
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("resume replayed or reordered: seq %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
	final := got[len(got)-len(polled.Alerts):]
	gotJSON, _ := json.Marshal(final)
	wantJSON, _ := json.Marshal(polled.Alerts)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("post-reconnect final state differs from polled alerts")
	}
}
