package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/gateway"
	"repro/internal/gateway/ws"
	"repro/pkg/hod/wire"
)

// The live push endpoints: GET /v1/subscribe upgrades to a WebSocket,
// GET /v1/events serves the same stream over SSE for clients that
// cannot speak WebSocket. Both share one grammar
// (wire.SubscribeRequest in the query string), one validation path
// (resolveSubscribe, before any protocol upgrade, so errors travel as
// plain HTTP with the typed envelope), one connect-time replay
// (seedSubscription) and one event source (the gateway hub, fed at
// fold-batch boundaries). Delivery is at-least-once: a reconnecting
// client resumes via after_seq/after_rev and dedups alerts by Seq.

const (
	// heartbeatInterval paces keepalives on an otherwise idle stream —
	// a WebSocket ping or an SSE comment line.
	heartbeatInterval = 15 * time.Second
	// pushWriteTimeout bounds one frame write; a peer that cannot
	// accept a frame in this window is disconnected (its state is
	// cheaply reconstructed on reconnect via the resume protocol).
	pushWriteTimeout = 10 * time.Second
)

// resolveSubscribe parses and vets a subscription request before any
// upgrade: bad grammar is 400, an explicit channel naming an unknown
// plant is 404, one outside the tenant's grant is 403 — all with the
// wire envelope, while the connection is still plain HTTP. On success
// it returns the parsed channels and the wildcard scope set for the
// hub (nil = unrestricted).
func (s *Server) resolveSubscribe(w http.ResponseWriter, r *http.Request) (req wire.SubscribeRequest, chans []wire.Channel, allowed map[string]bool, ok bool) {
	req, err := wire.DecodeSubscribeRequest(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return req, nil, nil, false
	}
	g, scoped := gateway.GrantFrom(r.Context())
	for _, name := range req.Channels {
		ch, err := wire.ParseChannel(name)
		if err != nil { // unreachable: Decode already parsed each channel
			writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
			return req, nil, nil, false
		}
		if ch.Plant != "*" {
			if _, exists := s.plant(ch.Plant); !exists {
				writeErr(w, http.StatusNotFound, wire.CodeUnknownPlant, fmt.Sprintf("unknown plant %q", ch.Plant))
				return req, nil, nil, false
			}
			if scoped && !g.Allows(ch.Plant) {
				writeErr(w, http.StatusForbidden, wire.CodeForbidden,
					fmt.Sprintf("tenant %s is not scoped to plant %q", g.Tenant.Name, ch.Plant))
				return req, nil, nil, false
			}
		}
		chans = append(chans, ch)
	}
	if scoped {
		allowed = g.AllowedPlants()
	}
	return req, chans, allowed, true
}

// visiblePlants lists the registered plants the subscriber may see,
// sorted for a deterministic seed order.
func (s *Server) visiblePlants(allowed map[string]bool) []string {
	s.mu.RLock()
	ids := make([]string, 0, len(s.plants))
	for id := range s.plants {
		if allowed == nil || allowed[id] {
			ids = append(ids, id)
		}
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// seedSubscription replays current state into a fresh subscription so
// a connecting client needs no separate poll: the alert ring (filtered
// by the resume cursor, Coalesced marking a gap the ring already
// trimmed), a cube_delta when the data revision passed the client's,
// and a stats snapshot. Seeding after hub.Subscribe is race-free by
// the coalescing rules — a concurrently published event lands in the
// same (kind, plant) slot, where alerts dedup by Seq and snapshots
// resolve by revision.
func (s *Server) seedSubscription(sub *gateway.Subscriber, chans []wire.Channel, allowed map[string]bool, req wire.SubscribeRequest) {
	for _, ch := range chans {
		plants := []string{ch.Plant}
		if ch.Plant == "*" {
			plants = s.visiblePlants(allowed)
		}
		for _, id := range plants {
			ps, ok := s.plant(id)
			if !ok {
				continue
			}
			switch ch.Kind {
			case wire.EventAlert:
				after := req.AfterSeq[id]
				all := ps.recentAlerts(0)
				var keep []wire.Alert
				for _, a := range all {
					if a.Seq > after {
						keep = append(keep, a)
					}
				}
				if len(keep) == 0 {
					continue
				}
				ev := wire.Event{Kind: wire.EventAlert, Plant: id, Seq: keep[len(keep)-1].Seq, Alerts: keep}
				// A multi-alert seed is a compressed snapshot, not a
				// 1:1 live fold event — and a gap past the cursor means
				// the ring already trimmed history. Either way the
				// client is catching up, and the event says so.
				if len(keep) > 1 || keep[0].Seq > after+1 {
					ev.Coalesced = true
				}
				sub.Seed(ev)
			case wire.EventCubeDelta:
				if rev := ps.dataRev.Load(); rev > 0 && rev > req.AfterRev[id] {
					sub.Seed(wire.Event{Kind: wire.EventCubeDelta, Plant: id, Revision: rev})
				}
			case wire.EventStats:
				st := ps.statsNow()
				sub.Seed(wire.Event{Kind: wire.EventStats, Plant: id, Revision: st.DataRevision, Stats: &st})
			}
		}
	}
}

// handleSubscribe serves GET /v1/subscribe: validate, upgrade to a
// WebSocket, then stream events as JSON text frames. One goroutine
// reads (control frames, peer close detection), one writes — the
// subscriber queue decouples both from the fold path.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	req, chans, allowed, ok := s.resolveSubscribe(w, r)
	if !ok {
		return
	}
	conn, err := ws.Accept(w, r)
	if err != nil {
		return // Accept already answered with plain HTTP
	}
	defer conn.Close()
	sub := s.hub.Subscribe(chans, allowed, s.opts.SubscriberQueue)
	defer sub.Close()
	s.seedSubscription(sub, chans, allowed, req)

	// The connection is hijacked: the peer hanging up surfaces only as
	// a read error, so a reader goroutine turns that into cancellation
	// (and services ping/close control frames along the way).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		defer cancel()
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				return
			}
		}
	}()

	for {
		tick, cancelTick := context.WithTimeout(ctx, heartbeatInterval)
		ev, open := sub.Next(tick)
		cancelTick()
		if !open || ctx.Err() != nil {
			return
		}
		conn.SetWriteDeadline(time.Now().Add(pushWriteTimeout))
		if ev.Kind == "" { // heartbeat tick: keep intermediaries awake
			if err := conn.WriteMessage(ws.OpPing, nil); err != nil {
				return
			}
			continue
		}
		buf, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if err := conn.WriteMessage(ws.OpText, buf); err != nil {
			return
		}
	}
}

// handleEvents serves GET /v1/events: the same stream over SSE —
// "event: {kind}\ndata: {json}\n\n" frames, comment lines as
// heartbeats — for clients without WebSocket support (curl included).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	req, chans, allowed, ok := s.resolveSubscribe(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeErr(w, http.StatusInternalServerError, wire.CodeInternal, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	sub := s.hub.Subscribe(chans, allowed, s.opts.SubscriberQueue)
	defer sub.Close()
	s.seedSubscription(sub, chans, allowed, req)

	ctx := r.Context() // SSE stays an ordinary response: disconnect cancels it
	for {
		tick, cancelTick := context.WithTimeout(ctx, heartbeatInterval)
		ev, open := sub.Next(tick)
		cancelTick()
		if !open || ctx.Err() != nil {
			return
		}
		if ev.Kind == "" {
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
			continue
		}
		buf, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, buf); err != nil {
			return
		}
		fl.Flush()
	}
}
