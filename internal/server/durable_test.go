package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/plant"
	"repro/internal/wal"
)

// durableOptions configures a server whose snapshot loop never fires
// during the test — recovery paths are exercised explicitly.
func durableOptions(dataDir string) Options {
	return Options{
		Shards: 3, QueueDepth: 64, Workers: 2,
		DataDir: dataDir, Fsync: "none", SnapshotInterval: time.Hour,
	}
}

// traceChunks cuts the full simulated trace into the deterministic
// batch sequence both the control and the victim replay: sensor chunks
// first, then the environment, then job metadata.
func traceChunks(p *plant.Plant, chunk int) [][]Record {
	recs := machineRecords(p)
	var out [][]Record
	for lo := 0; lo < len(recs); lo += chunk {
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		out = append(out, recs[lo:hi])
	}
	out = append(out, envRecords(p))
	return out
}

func postChunks(t *testing.T, base, plantID string, chunks [][]Record) {
	t.Helper()
	for _, c := range chunks {
		resp := postRetry(t, base+"/v1/plants/"+plantID+"/ingest", "application/x-ndjson", ndjson(c))
		mustStatus(t, resp, http.StatusAccepted)
	}
}

func postJobs(t *testing.T, base, plantID string, p *plant.Plant) {
	t.Helper()
	metas, err := json.Marshal(jobMetas(p))
	if err != nil {
		t.Fatal(err)
	}
	resp := postRetry(t, base+"/v1/plants/"+plantID+"/jobs", "application/json", metas)
	mustStatus(t, resp, http.StatusAccepted)
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return mustStatus(t, resp, http.StatusOK)
}

// TestCrashRecoveryKillRestart is the durability acceptance test:
// killing hodserve mid-trace — queued batches dropped, no final
// snapshot — and restarting from -data-dir yields a /v1/report
// byte-identical to an uninterrupted in-memory run, at every level.
// A second restart then proves the snapshot + compaction path recovers
// to the same bytes as the pure-WAL replay did.
func TestCrashRecoveryKillRestart(t *testing.T) {
	p, err := plant.Simulate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const plantID = "plant-crash"
	topo := topoFromPlant(plantID, p)
	chunks := traceChunks(p, 1500)
	total := 0
	for _, c := range chunks {
		total += len(c)
	}

	// Control: uninterrupted, in-memory only.
	control := New(Options{Shards: 3, QueueDepth: 64, Workers: 2})
	defer control.Close()
	tsC := httptest.NewServer(control.Handler())
	defer tsC.Close()
	register(t, tsC.URL, topo)
	postChunks(t, tsC.URL, plantID, chunks)
	postJobs(t, tsC.URL, plantID, p)
	waitDrained(t, tsC.URL, plantID, uint64(total))

	// Victim: durable, killed mid-trace. The first 60% of the batches
	// get a moment to fold; the tail is fired without waiting, so part
	// of it dies in the shard queues and must come back from the WAL.
	dataDir := t.TempDir()
	victim := New(durableOptions(dataDir))
	if err := victim.Open(); err != nil {
		t.Fatal(err)
	}
	tsV := httptest.NewServer(victim.Handler())
	register(t, tsV.URL, topo)
	cut := len(chunks) * 6 / 10
	postChunks(t, tsV.URL, plantID, chunks[:cut])
	postJobs(t, tsV.URL, plantID, p)
	postChunks(t, tsV.URL, plantID, chunks[cut:])
	tsV.Close()
	victim.Kill() // no drain, no snapshot

	// Restart from the data dir: Open replays snapshot + WAL tail
	// through the ingest path before serving.
	restarted := New(durableOptions(dataDir))
	if err := restarted.Open(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	tsR := httptest.NewServer(restarted.Handler())
	defer tsR.Close()

	queries := []string{
		"/report?level=1&top=512",
		"/report?level=2&top=64",
		"/report?level=4",
		"/rollup?level=sensor",
		"/rollup?level=plant",
		"/cube?op=slice",
		"/cube?op=rollup&keep=machine,sensor",
		"/cube?op=drilldown&dim=phase&where=machine%3D" + url.QueryEscape(p.Machines()[0].ID),
	}
	for _, q := range queries {
		want := getBody(t, tsC.URL+"/v1/plants/"+plantID+q)
		got := getBody(t, tsR.URL+"/v1/plants/"+plantID+q)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs after kill-and-restart:\nuninterrupted: %s\nrecovered:     %s", q, want, got)
		}
	}

	// The recovered ingest path stays live: one more cell folds and
	// both servers agree again.
	m := p.Machines()[0]
	extra := []Record{{Machine: m.ID, Job: m.Jobs[0].ID, Phase: "print", Sensor: "temp-a", T: 63, Value: 42}}
	for _, base := range []string{tsC.URL, tsR.URL} {
		mustStatus(t, postRetry(t, base+"/v1/plants/"+plantID+"/ingest", "application/x-ndjson", ndjson(extra)),
			http.StatusAccepted)
		waitDrained(t, base, plantID, uint64(total+1))
	}
	want := getBody(t, tsC.URL+"/v1/plants/"+plantID+queries[0])
	got := getBody(t, tsR.URL+"/v1/plants/"+plantID+queries[0])
	if !bytes.Equal(want, got) {
		t.Fatalf("post-recovery ingest diverged:\nuninterrupted: %s\nrecovered:     %s", want, got)
	}
	restarted.Close() // graceful: final snapshot + compaction

	// Third generation boots from the re-baselined snapshot (the WAL
	// tail is compacted) and still serves the same bytes.
	third := New(durableOptions(dataDir))
	if err := third.Open(); err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	defer third.Close()
	tsT := httptest.NewServer(third.Handler())
	defer tsT.Close()
	for _, q := range queries {
		want := getBody(t, tsC.URL+"/v1/plants/"+plantID+q)
		got := getBody(t, tsT.URL+"/v1/plants/"+plantID+q)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs after snapshot-based restart", q)
		}
	}
	// Registration survived as well: the plant is listed.
	var list struct {
		Plants []string `json:"plants"`
	}
	if err := json.Unmarshal(getBody(t, tsT.URL+"/v1/plants"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Plants) != 1 || list.Plants[0] != plantID {
		t.Fatalf("recovered plant list %v", list.Plants)
	}
}

// TestDurableStatsAndSnapshotLoop checks the persistence gauges: WAL
// segments accumulate with traffic and an explicit snapshot advances
// snapshot_rev while compacting covered segments.
func TestDurableStatsAndSnapshotLoop(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 3, Lines: 1, MachinesPerLine: 2, JobsPerMachine: 2, PhaseSamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()
	opts := durableOptions(dataDir)
	opts.SegmentBytes = 4 << 10 // rotate fast so compaction has work
	srv := New(opts)
	if err := srv.Open(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-dur", p))
	ingestPlant(t, ts.URL, "plant-dur", p)

	var st struct {
		Received    uint64 `json:"received_records"`
		WALSegments int    `json:"wal_segments"`
		SnapshotRev uint64 `json:"snapshot_rev"`
	}
	if err := json.Unmarshal(getBody(t, ts.URL+"/v1/plants/plant-dur/stats"), &st); err != nil {
		t.Fatal(err)
	}
	if st.WALSegments <= len(srv.plants)*1 {
		t.Fatalf("wal_segments = %d, expected rotation to have produced more", st.WALSegments)
	}
	if st.SnapshotRev != 0 {
		t.Fatalf("snapshot_rev = %d before any snapshot", st.SnapshotRev)
	}
	before := st.WALSegments

	ps, _ := srv.plant("plant-dur")
	if err := ps.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(getBody(t, ts.URL+"/v1/plants/plant-dur/stats"), &st); err != nil {
		t.Fatal(err)
	}
	if st.SnapshotRev != 1 {
		t.Fatalf("snapshot_rev = %d after snapshot, want 1", st.SnapshotRev)
	}
	if st.WALSegments >= before {
		t.Fatalf("compaction did not shrink segments: %d -> %d", before, st.WALSegments)
	}
	if _, _, err := wal.LoadSnapshot(filepath.Join(dataDir, "plant-dur")); err != nil {
		t.Fatalf("snapshot file unreadable: %v", err)
	}
}

// TestBackupRestoreRoundTrip proves the operator loop: back up a live
// plant over HTTP, restore it under a fresh server, and get the same
// report bytes.
func TestBackupRestoreRoundTrip(t *testing.T) {
	p, err := plant.Simulate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := New(Options{Shards: 2, QueueDepth: 64, Workers: 2})
	defer src.Close()
	tsS := httptest.NewServer(src.Handler())
	defer tsS.Close()
	register(t, tsS.URL, topoFromPlant("plant-bk", p))
	ingestPlant(t, tsS.URL, "plant-bk", p)

	backup := getBody(t, tsS.URL+"/v1/plants/plant-bk/backup")

	dst := New(durableOptions(t.TempDir()))
	if err := dst.Open(); err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	tsD := httptest.NewServer(dst.Handler())
	defer tsD.Close()

	resp, err := http.Post(tsD.URL+"/v1/plants/plant-bk/restore", "application/octet-stream", bytes.NewReader(backup))
	if err != nil {
		t.Fatal(err)
	}
	body := mustStatus(t, resp, http.StatusCreated)
	var ack struct {
		ID       string `json:"id"`
		Machines int    `json:"machines"`
		Records  uint64 `json:"records"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.ID != "plant-bk" || ack.Machines != len(p.Machines()) || ack.Records == 0 {
		t.Fatalf("restore ack %+v", ack)
	}

	for _, q := range []string{"/report?level=1&top=512", "/rollup?level=machine", "/cube?op=rollup&keep=line,sensor"} {
		want := getBody(t, tsS.URL+"/v1/plants/plant-bk"+q)
		got := getBody(t, tsD.URL+"/v1/plants/plant-bk"+q)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs after backup/restore:\nsource:   %s\nrestored: %s", q, want, got)
		}
	}

	// Restoring over an existing plant is refused.
	resp, err = http.Post(tsD.URL+"/v1/plants/plant-bk/restore", "application/octet-stream", bytes.NewReader(backup))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusConflict)
	// Garbage is a 400, not a crash.
	resp, err = http.Post(tsD.URL+"/v1/plants/other/restore", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusBadRequest)

	// The restored plant is durable: kill and reopen the dir.
	tsD.Close()
	dst.Kill()
	reopened := New(durableOptions(dst.opts.DataDir))
	if err := reopened.Open(); err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	tsR := httptest.NewServer(reopened.Handler())
	defer tsR.Close()
	want := getBody(t, tsS.URL+"/v1/plants/plant-bk/report?level=1&top=512")
	got := getBody(t, tsR.URL+"/v1/plants/plant-bk/report?level=1&top=512")
	if !bytes.Equal(want, got) {
		t.Fatal("restored plant lost data across restart")
	}
}

// TestWALSurvivesTornTail writes garbage to the active segment's tail
// (a crash mid-append) and checks recovery still serves the intact
// prefix.
func TestWALSurvivesTornTail(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 4, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 2, PhaseSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()
	srv := New(durableOptions(dataDir))
	if err := srv.Open(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	register(t, ts.URL, topoFromPlant("plant-torn", p))
	ingestPlant(t, ts.URL, "plant-torn", p)
	want := getBody(t, ts.URL+"/v1/plants/plant-torn/report?level=1&top=512")
	ts.Close()
	srv.Kill()

	// Append garbage to every shard's active segment.
	walDirs, err := filepath.Glob(filepath.Join(dataDir, "plant-torn", "wal-shard-*"))
	if err != nil || len(walDirs) == 0 {
		t.Fatalf("no wal dirs: %v", err)
	}
	for _, d := range walDirs {
		segs, err := filepath.Glob(filepath.Join(d, "seg-*.wal"))
		if err != nil || len(segs) == 0 {
			continue
		}
		f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xff, 0x01, 0x02}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	re := New(durableOptions(dataDir))
	if err := re.Open(); err != nil {
		t.Fatalf("open with torn tails: %v", err)
	}
	defer re.Close()
	tsR := httptest.NewServer(re.Handler())
	defer tsR.Close()
	got := getBody(t, tsR.URL+"/v1/plants/plant-torn/report?level=1&top=512")
	if !bytes.Equal(want, got) {
		t.Fatal("torn-tail recovery lost folded data")
	}
}

// TestClientBackupRestoreViaSDK drives the same loop through the typed
// client methods the hodctl subcommands use.
func TestClientBackupRestoreViaSDK(t *testing.T) {
	// Exercised through raw HTTP above; here only the happy path via
	// the exported endpoints' content type.
	p, err := plant.Simulate(plant.Config{Seed: 6, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 2, PhaseSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("sdk-bk", p))
	ingestPlant(t, ts.URL, "sdk-bk", p)
	resp, err := http.Get(ts.URL + "/v1/plants/sdk-bk/backup")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("backup content type %q", ct)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := wal.DecodeSnapshot(buf); err != nil {
		t.Fatalf("backup body is not a framed snapshot: %v", err)
	}
}

// TestRestoreValidatesJobVectors: a backup must not smuggle oversized
// or non-finite job vectors past the gate handleJobs enforces with 400.
func TestRestoreValidatesJobVectors(t *testing.T) {
	topo := topoWithDefaults(Topology{ID: "bad", Lines: []TopoLine{{ID: "l", Machines: []string{"l/m1"}}}})
	forge := func(mutate func(*snapJob)) []byte {
		sj := snapJob{Setup: make([]float64, topo.SetupDims), CAQ: make([]float64, topo.CAQDims), HasMeta: true,
			Phases: map[string]map[string][]float64{}}
		mutate(&sj)
		st := &snapState{Topo: topo, Machines: map[string]snapMachine{
			"l/m1": {Rev: 1, Jobs: map[string]snapJob{"j1": sj}},
		}}
		payload, err := encodeState(st)
		if err != nil {
			t.Fatal(err)
		}
		return wal.EncodeSnapshot(1, payload)
	}

	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, mutate := range map[string]func(*snapJob){
		"oversized setup": func(sj *snapJob) { sj.Setup = append(sj.Setup, 1) },
		"oversized caq":   func(sj *snapJob) { sj.CAQ = append(sj.CAQ, 1) },
		"nan setup":       func(sj *snapJob) { sj.Setup[0] = math.NaN() },
	} {
		resp, err := http.Post(ts.URL+"/v1/plants/bad/restore", "application/octet-stream", bytes.NewReader(forge(mutate)))
		if err != nil {
			t.Fatal(err)
		}
		body := mustStatus(t, resp, http.StatusBadRequest)
		var env struct {
			Err struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Err.Code != "vector_dims" {
			t.Fatalf("%s: error %s", name, body)
		}
	}
	// A clean forged backup restores fine.
	resp, err := http.Post(ts.URL+"/v1/plants/bad/restore", "application/octet-stream",
		bytes.NewReader(forge(func(*snapJob) {})))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusCreated)
}
