// Package server is the fleet serving layer: a stdlib-only HTTP
// service that ingests live sensor samples for a registered fleet of
// plants, shards them onto per-machine pipelines with bounded queues
// (backpressure surfaces as 429 + Retry-After), maintains an
// incremental roll-up of aggregates up the
// sensor→phase→machine→line→plant levels, and serves hierarchical
// outlier reports computed by Algorithm 1 over an incrementally
// assembled plant snapshot — a roll-up never recomputes untouched
// subtrees thanks to the invalidatable core.PlantCache.
//
// Endpoints (all JSON unless noted):
//
//	POST /v1/plants                          register a plant topology
//	GET  /v1/plants                          list registered plants
//	POST /v1/plants/{id}/ingest              samples: NDJSON, JSON array, CSV, or binary columnar frames
//	POST /v1/plants/{id}/jobs                job metadata (setup + CAQ vectors)
//	GET  /v1/plants/{id}/report              fleet outlier report (?level=&top=&machine=)
//	GET  /v1/plants/{id}/rollup              incremental aggregates (?level=sensor|phase|machine|line|plant)
//	GET  /v1/plants/{id}/cube                OLAP cube queries (?op=slice|rollup|members|drilldown)
//	GET  /v1/plants/{id}/alerts              recent streaming alerts (?limit=)
//	GET  /v1/plants/{id}/stats               ingest counters, queue depths, durability gauges
//	GET  /v1/plants/{id}/backup              consistent snapshot of the plant (binary)
//	POST /v1/plants/{id}/restore             recreate a plant from a backup
//	GET  /healthz                            liveness
//
// With Options.DataDir set, every accepted ingest batch is appended to
// a CRC-checksummed per-shard WAL before it is acknowledged and the
// serving state is periodically snapshotted; Open() recovers the fleet
// after a crash or restart by replaying snapshot + WAL tail through
// the same ingest path (safe because the store is idempotent).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/gateway"
	"repro/internal/olap"
	"repro/internal/wal"
	"repro/pkg/hod/wire"
)

// Options tunes the serving layer.
type Options struct {
	// Workers bounds the parallel fan-out of report computation across
	// machines (0 = GOMAXPROCS), wired to internal/parallel.
	Workers int
	// Shards is the number of ingest pipelines per plant (default 4).
	// Machines hash onto shards, so per-machine sample order is kept.
	Shards int
	// QueueDepth bounds each shard's admission queue in batches
	// (default 64). A full queue sheds load with 429 + Retry-After.
	QueueDepth int
	// MaxBodyBytes caps one ingest request body (default 64 MiB).
	MaxBodyBytes int64
	// AlertThreshold is the robust-z score at which the streaming
	// EWMA tracker raises a live alert (default 8).
	AlertThreshold float64
	// MaxOutliers bounds each machine's report (default 512).
	MaxOutliers int
	// DataDir enables durability: per-plant WAL + snapshots live under
	// it, and Open() recovers the registered fleet from it. Empty means
	// in-memory only (the pre-durability behaviour).
	DataDir string
	// Fsync is the WAL fsync policy: "always" (default, group-committed
	// before the ingest ack), "interval" (background flush), or "none".
	Fsync string
	// SnapshotInterval is the cadence of the background compacting
	// snapshot (default 30s).
	SnapshotInterval time.Duration
	// SegmentBytes rotates WAL segments at this size (default 8 MiB).
	SegmentBytes int64
	// Tenants enables authenticated multi-tenant mode: API key →
	// tenant grant (name, plant scope, rate limit). Empty keeps the
	// back-compat default of an open, unauthenticated server.
	Tenants map[string]gateway.Tenant
	// RequestLog, when non-nil, logs one line per request through the
	// middleware chain.
	RequestLog func(format string, args ...any)
	// SubscriberQueue bounds the distinct pending (kind, plant) event
	// slots per push subscriber before coalescing drops the stalest
	// slot (default gateway.DefaultQueueCap).
	SubscriberQueue int
	// ClusterNodeID enables cluster mode: the node gates plant-scoped
	// requests on rendezvous ownership under the membership table the
	// router pushes, and keeps warm standbys by tailing owner WALs.
	// Cluster mode wants a DataDir (standbys seed over the WAL
	// contract) and an unauthenticated internal network (no Tenants).
	ClusterNodeID string
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.AlertThreshold <= 0 {
		o.AlertThreshold = 8
	}
	if o.MaxOutliers <= 0 {
		o.MaxOutliers = 512
	}
	if o.SnapshotInterval <= 0 {
		o.SnapshotInterval = 30 * time.Second
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	return o
}

// Server is the fleet serving layer. Create with New, expose via
// Handler, stop with Close (drains all in-flight batches).
type Server struct {
	opts   Options
	mux    *http.ServeMux
	hub    *gateway.Hub
	auth   *gateway.Auth
	mu     sync.RWMutex
	plants map[string]*plantState
	closed atomic.Bool

	// cluster is the node's cluster-mode state (membership view + WAL
	// tailers); clusterHC carries its node-to-node HTTP traffic.
	cluster   clusterState
	clusterHC *http.Client
}

// New builds a server with the given options. Every route of the typed
// route table is wrapped in the gateway middleware chain — bearer
// auth, tenant scoping, per-tenant rate limits, request logging — all
// of which pass through untouched when no tenants are configured.
func New(opts Options) *Server {
	s := &Server{
		opts:      opts.withDefaults(),
		mux:       http.NewServeMux(),
		hub:       gateway.NewHub(),
		plants:    make(map[string]*plantState),
		clusterHC: &http.Client{Timeout: 30 * time.Second},
	}
	s.cluster.tailers = make(map[string]*walTailer)
	s.auth = gateway.NewAuth(s.opts.Tenants)
	chain := gateway.Chain(
		gateway.BearerAuth(s.auth),
		gateway.TenantScope(),
		gateway.RateLimit(),
		gateway.RequestLog(s.opts.RequestLog),
	)
	for _, rt := range s.routes() {
		h := http.Handler(rt.handler)
		if !rt.open {
			h = chain(h)
		}
		s.mux.Handle(rt.method+" "+rt.pattern, h)
	}
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeListener serves the v1 API on ln in the background and returns
// a stop function that closes the HTTP listener (the serving state
// itself is stopped with Close). It lets in-process consumers — tests,
// examples — host a fleet endpoint without touching net/http
// themselves.
func (s *Server) ServeListener(ln net.Listener) (stop func()) {
	hs := &http.Server{Handler: s.mux}
	go hs.Serve(ln)
	return func() { hs.Close() }
}

// Close stops admission and drains every plant's shard queues; safe to
// call once the HTTP listener has shut down (or is about to — new
// ingests get 503). Push subscribers are closed first: their
// connections are hijacked from the HTTP server, so nothing else would
// unblock the writer goroutines.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.stopAllTailers()
	s.hub.Close()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, ps := range s.plants {
		//hod:allow(lockorder) shutdown path: draining every plant under the fleet read lock is Close's contract, and closed is already set so no admit path contends
		ps.close()
	}
}

func (s *Server) plant(id string) (*plantState, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ps, ok := s.plants[id]
	return ps, ok
}

func (s *Server) withPlant(fn func(http.ResponseWriter, *http.Request, *plantState)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Ownership gating precedes the plant lookup: in a cluster, "not
		// registered here" usually means "lives on another node", and the
		// retriable 503 must win over a terminal 404.
		if !s.clusterGate(w, r, r.PathValue("id")) {
			return
		}
		ps, ok := s.plant(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, wire.CodeUnknownPlant, fmt.Sprintf("unknown plant %q", r.PathValue("id")))
			return
		}
		fn(w, r, ps)
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, wire.CodeShuttingDown, "server is shutting down")
		return
	}
	var topo Topology
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&topo); err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, "bad topology: "+err.Error())
		return
	}
	topo = topoWithDefaults(topo)
	if err := topo.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	// The register route has no {id} path segment for the scope
	// middleware to vet — the plant id rides in the body, so the
	// tenant check happens here.
	if g, ok := gateway.GrantFrom(r.Context()); ok && !g.Allows(topo.ID) {
		writeErr(w, http.StatusForbidden, wire.CodeForbidden,
			fmt.Sprintf("tenant %s is not scoped to plant %q", g.Tenant.Name, topo.ID))
		return
	}
	// Like the tenant check, ownership gating waits for the body: the
	// plant id a cluster node must own rides inside the topology.
	if !s.clusterGate(w, r, topo.ID) {
		return
	}
	s.mu.Lock()
	// Re-check under the lock: Close() iterates s.plants under it, so
	// a registration racing shutdown must not start workers Close will
	// never drain.
	if s.closed.Load() {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, wire.CodeShuttingDown, "server is shutting down")
		return
	}
	if _, exists := s.plants[topo.ID]; exists {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, wire.CodeAlreadyRegistered, fmt.Sprintf("plant %q already registered", topo.ID))
		return
	}
	ps := newPlantState(topo)
	ps.makeShards(s.opts.Shards, s.opts.QueueDepth)
	ps.alertThreshold = s.opts.AlertThreshold
	ps.publish = s.hub.Publish
	if s.opts.DataDir != "" {
		//hod:allow(lockorder) registration atomicity: the duplicate-ID check and plant-dir creation must be one critical section or two concurrent registers of the same ID could both succeed
		if _, err := s.persistNewPlant(ps, topo); err != nil {
			s.mu.Unlock()
			writeErr(w, http.StatusInternalServerError, wire.CodeInternal, "persisting plant: "+err.Error())
			return
		}
	}
	ps.spawn()
	s.plants[topo.ID] = ps
	s.mu.Unlock()
	machines := 0
	for _, l := range topo.Lines {
		machines += len(l.Machines)
	}
	writeJSON(w, http.StatusCreated, wire.RegisterAck{
		ID: topo.ID, Lines: len(topo.Lines), Machines: machines,
		Shards: s.opts.Shards, QueueDepth: s.opts.QueueDepth,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	g, scoped := gateway.GrantFrom(r.Context())
	s.mu.RLock()
	ids := make([]string, 0, len(s.plants))
	for id := range s.plants {
		if scoped && !g.Allows(id) {
			continue // a tenant's list shows only its own plants
		}
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, wire.PlantList{Plants: ids})
}

// handleIngest admits one sample batch: decode, resolve against the
// plant's intern tables, shard, and enqueue. A full shard queue rejects
// the whole batch with 429 — the store is idempotent (set-at-index), so
// the client simply retries the batch after Retry-After seconds. Binary
// bodies (application/x-hod-batch) skip the Record materialisation
// entirely: each frame's dictionaries resolve straight to interned ids.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, ps *plantState) {
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, wire.CodeShuttingDown, "server is shutting down")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var (
		refs     []recordRef
		rejected int
		firstErr string
	)
	if mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err == nil && mt == wire.ContentTypeBinary {
		fr := walFramePool.Get().(*wire.Frame)
		defer walFramePool.Put(fr)
		total := 0
		for {
			err := wire.ReadFrame(body, fr)
			if err == io.EOF {
				break
			}
			if err != nil {
				// A malformed frame is a protocol violation, not a bad
				// record: reject the request before admitting anything,
				// like a bad NDJSON line rejects its whole body.
				writeErr(w, http.StatusBadRequest, wire.CodeBadFrame, err.Error())
				return
			}
			if total += fr.Len(); total > wire.MaxBatchRecords {
				writeErr(w, http.StatusBadRequest, wire.CodeBadFrame,
					fmt.Sprintf("batch exceeds the %d-record cap", wire.MaxBatchRecords))
				return
			}
			var rej int
			var ferr string
			refs, rej, ferr = ps.resolveFrame(refs, fr)
			rejected += rej
			if firstErr == "" {
				firstErr = ferr
			}
		}
		if total == 0 {
			writeJSON(w, http.StatusOK, wire.IngestAck{})
			return
		}
	} else {
		recs, err := wire.DecodeRecords(body, r.Header.Get("Content-Type"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
			return
		}
		if len(recs) == 0 {
			writeJSON(w, http.StatusOK, wire.IngestAck{})
			return
		}
		refs, rejected, firstErr = ps.resolveRecords(nil, recs)
	}
	ps.rejected.Add(uint64(rejected))

	// Partition onto shards preserving order within each machine.
	// Admission is all-or-nothing per shard; a single overloaded shard
	// sheds the batch. Chunks already admitted stay admitted — the
	// idempotent store makes the client's full-batch retry safe. With
	// durability on, each chunk is WAL-appended (group-committed per
	// shard) before it is enqueued, so a 202 means the data survives a
	// crash.
	for idx, chunk := range ps.chunkRefs(refs) {
		if len(chunk) == 0 {
			continue
		}
		admitted, err := ps.admit(idx, chunk)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, wire.CodeInternal, "wal append: "+err.Error())
			return
		}
		if !admitted {
			ps.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, wire.CodeBackpressure, "ingest queue full, retry the batch")
			return
		}
	}
	writeJSON(w, http.StatusAccepted, wire.IngestAck{
		Records: len(refs), Rejected: rejected, FirstRejection: firstErr,
	})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request, ps *plantState) {
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, wire.CodeShuttingDown, "server is shutting down")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var metas []JobMeta
	if err := json.NewDecoder(body).Decode(&metas); err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, "bad job metadata: "+err.Error())
		return
	}
	// Vector validation rejects the whole batch with a machine-readable
	// 400: a too-long setup/CAQ vector would otherwise be silently
	// truncated by the padVector materialisation, and a non-finite one
	// would poison the level-2 detectors and the report encoder.
	for _, m := range metas {
		if len(m.Setup) > ps.topo.SetupDims || len(m.CAQ) > ps.topo.CAQDims {
			writeErr(w, http.StatusBadRequest, wire.CodeVectorDims, fmt.Sprintf(
				"job %s: setup/caq vector longer than the registered dims (%d/%d); refusing to truncate",
				m.Job, ps.topo.SetupDims, ps.topo.CAQDims))
			return
		}
		for _, v := range m.Setup {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				writeErr(w, http.StatusBadRequest, wire.CodeBadRequest,
					fmt.Sprintf("job %s: non-finite setup value", m.Job))
				return
			}
		}
		for _, v := range m.CAQ {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				writeErr(w, http.StatusBadRequest, wire.CodeBadRequest,
					fmt.Sprintf("job %s: non-finite caq value", m.Job))
				return
			}
		}
	}
	rejected := 0
	var firstErr string
	valid := metas[:0]
	for _, m := range metas {
		switch {
		case ps.machines[m.Machine] == nil:
			rejected++
			if firstErr == "" {
				firstErr = fmt.Sprintf("unregistered machine %q", m.Machine)
			}
		case m.Job == "":
			rejected++
			if firstErr == "" {
				firstErr = "missing job id"
			}
		default:
			valid = append(valid, m)
		}
	}
	ps.applyJobMetas(valid)
	if err := ps.appendJobs(valid); err != nil {
		writeErr(w, http.StatusInternalServerError, wire.CodeInternal, "wal append: "+err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, wire.JobsAck{
		Jobs: len(valid), Rejected: rejected, FirstRejection: firstErr,
	})
}

func (s *Server) handleRollup(w http.ResponseWriter, r *http.Request, ps *plantState) {
	// rollup returns the level it resolved the request to, so the
	// echoed Level is by construction the one that was computed —
	// resolving the default twice let the two drift.
	level, nodes, err := ps.rollup(r.URL.Query().Get("level"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, wire.RollupResponse{Plant: ps.topo.ID, Level: level, Nodes: nodes})
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request, ps *plantState) {
	limit, err := queryInt(r, "limit", 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	alerts := ps.recentAlerts(limit)
	writeJSON(w, http.StatusOK, wire.AlertsResponse{Plant: ps.topo.ID, Alerts: alerts})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, ps *plantState) {
	writeJSON(w, http.StatusOK, ps.statsNow())
}

// handleBackup streams a consistent snapshot of the plant — the same
// framed format the durability layer persists, so a backup taken from
// a diskless server can still seed a restore elsewhere.
func (s *Server) handleBackup(w http.ResponseWriter, r *http.Request, ps *plantState) {
	st := ps.captureState()
	if ps.dur != nil {
		st.SnapshotRev = ps.dur.snapRev.Load()
	}
	// A backup re-seeds fresh WALs on restore; per-shard positions of
	// *this* server's logs would be poison there. The one consumer that
	// wants them — a standby seeding itself before tailing this node's
	// WAL — asks with ?positions=1 on the internal cluster path.
	if !(r.URL.Query().Get("positions") == "1" && r.Header.Get(cluster.InternalHeader) == "1") {
		st.ShardSeqs = nil
	}
	payload, err := encodeState(st)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, wire.CodeInternal, "encoding snapshot: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(wal.EncodeSnapshot(st.SnapshotRev, payload))
}

// handleRestore recreates a plant from a backup body. The plant id
// must not be registered yet; the topology rides inside the backup.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, wire.CodeShuttingDown, "server is shutting down")
		return
	}
	if !s.clusterGate(w, r, r.PathValue("id")) {
		return
	}
	// A backup holds the whole plant, not one ingest batch — cap it
	// well above MaxBodyBytes or Backup output could never round-trip.
	restoreCap := s.opts.MaxBodyBytes
	if restoreCap < maxRestoreBytes {
		restoreCap = maxRestoreBytes
	}
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, restoreCap))
	if err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, "reading backup: "+err.Error())
		return
	}
	rev, payload, err := wal.DecodeSnapshot(buf)
	if err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	st, err := decodeState(payload)
	if err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, "decoding backup state: "+err.Error())
		return
	}
	id := r.PathValue("id")
	if st.Topo.ID != id {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("backup holds plant %q, not %q", st.Topo.ID, id))
		return
	}
	if err := st.Topo.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	if err := validateState(st); err != nil {
		// The ingest path rejects oversized and non-finite job vectors
		// with 400; a backup must not smuggle them past the same gate.
		// Malformed or non-finite cube cells are the cube-fed flavour
		// of the same policy and carry the generic bad_request code.
		code := wire.CodeVectorDims
		if errors.Is(err, olap.ErrNonFinite) || errors.Is(err, olap.ErrSchema) {
			code = wire.CodeBadRequest
		}
		writeErr(w, http.StatusBadRequest, code, err.Error())
		return
	}
	st.ShardSeqs = nil // positions of the source server's WALs, if any
	// The rebased snapshot the data dir will hold; encoded before the
	// registry lock so the gob pass doesn't stall unrelated requests.
	st.SnapshotRev = rev
	rebased, err := encodeState(st)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, wire.CodeInternal, "encoding snapshot: "+err.Error())
		return
	}

	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, wire.CodeShuttingDown, "server is shutting down")
		return
	}
	if _, exists := s.plants[id]; exists {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, wire.CodeAlreadyRegistered,
			fmt.Sprintf("plant %q already registered; restore needs a fresh id", id))
		return
	}
	ps := newPlantState(st.Topo)
	ps.makeShards(s.opts.Shards, s.opts.QueueDepth)
	ps.alertThreshold = s.opts.AlertThreshold
	ps.publish = s.hub.Publish
	ps.applyState(st)
	if s.opts.DataDir != "" {
		//hod:allow(lockorder) restore atomicity: the exists-check and plant-dir creation must be one critical section or a concurrent register of the same ID could interleave
		cleanup, err := s.persistNewPlant(ps, st.Topo)
		if err != nil {
			s.mu.Unlock()
			writeErr(w, http.StatusInternalServerError, wire.CodeInternal, "persisting plant: "+err.Error())
			return
		}
		// Make the restored baseline itself durable: the fresh WALs are
		// empty, so everything must come from the snapshot file.
		//hod:allow(lockorder) same restore critical section: the baseline snapshot must land before the plant becomes visible
		if err := wal.SaveSnapshot(ps.dur.dir, rev, rebased); err != nil {
			cleanup()
			s.mu.Unlock()
			writeErr(w, http.StatusInternalServerError, wire.CodeInternal, "persisting snapshot: "+err.Error())
			return
		}
		ps.dur.snapRev.Store(rev)
	}
	ps.spawn()
	s.plants[id] = ps
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, wire.RestoreAck{
		ID: id, Machines: len(st.Machines), Records: st.Received, SnapshotRev: rev,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr emits the structured error envelope of the v1 protocol:
// {"error":{"code":"...","message":"..."}}. The code is one of the
// wire.Code* constants, which the typed client maps onto errors.Is-able
// sentinel errors. The encoding itself lives in the gateway package —
// the one definition handlers and middleware share.
func writeErr(w http.ResponseWriter, status int, code, msg string) {
	gateway.WriteError(w, status, code, msg)
}

// queryInt parses a non-negative integer query parameter. A missing or
// empty value yields the default; a malformed or negative value is an
// error — callers turn it into a 400 instead of silently serving the
// default for a query the client plainly did not mean.
func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s value %q (want a non-negative integer)", key, v)
	}
	return n, nil
}
