package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// TestClusterControlSurfaceGuard pins the contract the route table
// documents: the mutating node-side cluster endpoints (membership,
// replicate, release) are inert outside cluster mode and demand the
// internal header inside it. Before this guard, any client of a
// standalone open server could POST /v1/cluster/release and have the
// plant's data dir removed.
func TestClusterControlSurfaceGuard(t *testing.T) {
	mutating := []string{"/v1/cluster/membership", "/v1/cluster/replicate", "/v1/cluster/release"}

	post := func(ts *httptest.Server, path, body string, internal bool) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if internal {
			req.Header.Set(cluster.InternalHeader, "1")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Standalone server (no -node-id): the surface is inert, header or
	// not.
	standalone := New(Options{Shards: 2, QueueDepth: 16})
	defer standalone.Close()
	tsS := httptest.NewServer(standalone.Handler())
	defer tsS.Close()
	for _, path := range mutating {
		for _, internal := range []bool{false, true} {
			if resp := post(tsS, path, `{"plant":"p1"}`, internal); resp.StatusCode != http.StatusBadRequest {
				t.Errorf("standalone POST %s (internal=%v) = %d, want 400", path, internal, resp.StatusCode)
			}
		}
	}

	// Cluster node: external traffic (no internal header) is refused
	// with a 403 and mutates nothing; internal traffic reaches the
	// handler.
	node := New(Options{Shards: 2, QueueDepth: 16, DataDir: t.TempDir(), Fsync: "none", ClusterNodeID: "n1"})
	if err := node.Open(); err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	tsN := httptest.NewServer(node.Handler())
	defer tsN.Close()

	register(t, tsN.URL, Topology{ID: "p1", Lines: []TopoLine{{ID: "l1", Machines: []string{"m1"}}}})
	for _, path := range mutating {
		if resp := post(tsN, path, `{"plant":"p1"}`, false); resp.StatusCode != http.StatusForbidden {
			t.Errorf("cluster node POST %s without internal header = %d, want 403", path, resp.StatusCode)
		}
	}
	if _, ok := node.plant("p1"); !ok {
		t.Fatal("unauthenticated release attempt removed the plant")
	}
	// With the header, release goes through (and is idempotent).
	if resp := post(tsN, "/v1/cluster/release", `{"plant":"p1"}`, true); resp.StatusCode != http.StatusOK {
		t.Fatalf("internal release = %d, want 200", resp.StatusCode)
	}
	if _, ok := node.plant("p1"); ok {
		t.Fatal("internal release did not remove the plant")
	}
	if resp := post(tsN, "/v1/cluster/release", `{"plant":"p1"}`, true); resp.StatusCode != http.StatusOK {
		t.Fatalf("repeated internal release = %d, want 200", resp.StatusCode)
	}
}

// TestApplyFramesTornVersusCorrupt pins the tailer's decode contract:
// a torn trailing frame (response cut mid-frame) is silently retried
// from the cursor, while a structurally corrupt frame — a length claim
// past the cap, or a payload that does not decode — surfaces as
// errShipCorrupt so the tail loop stops refetching the same bad bytes.
func TestApplyFramesTornVersusCorrupt(t *testing.T) {
	tailer := &walTailer{after: make([]uint64, 1)}

	// Torn mid-header and torn mid-payload: no error, no progress.
	var torn bytes.Buffer
	if err := cluster.WriteShipFrame(&torn, 7, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{4, torn.Len() - 3} {
		progress, err := tailer.applyFrames(nil, 0, bytes.NewReader(torn.Bytes()[:cut]))
		if err != nil || progress {
			t.Fatalf("torn frame cut at %d: progress=%v err=%v, want silent retry", cut, progress, err)
		}
	}

	// A frame whose header claims an absurd length is corruption, not a
	// torn tail.
	var huge bytes.Buffer
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], 7)
	binary.LittleEndian.PutUint32(hdr[8:12], 1<<30)
	huge.Write(hdr[:])
	if _, err := tailer.applyFrames(nil, 0, &huge); !errors.Is(err, errShipCorrupt) {
		t.Fatalf("oversized length claim: err = %v, want errShipCorrupt", err)
	}

	// A complete frame whose payload is not a WAL entry is corruption
	// too.
	var garbage bytes.Buffer
	if err := cluster.WriteShipFrame(&garbage, 7, []byte("not a gob entry")); err != nil {
		t.Fatal(err)
	}
	if _, err := tailer.applyFrames(nil, 0, &garbage); !errors.Is(err, errShipCorrupt) {
		t.Fatalf("undecodable payload: err = %v, want errShipCorrupt", err)
	}
}
