package server

import "net/http"

// route is one entry of the server's typed route table: the v1 surface
// as data, consumed both by New (which mounts every entry, wrapping the
// non-open ones in the gateway middleware chain) and by tests that
// enumerate the surface. Plant-scoped routes carry the {id} wildcard in
// their pattern; the ServeMux extracts it once and both the scope
// middleware and withPlant read it via r.PathValue — no handler parses
// the path by hand.
type route struct {
	method  string
	pattern string
	// open routes skip the middleware chain — only liveness, which must
	// answer even with auth misconfigured. The push endpoints go through
	// the chain like everything else (TenantScope passes routes without
	// an {id} segment; per-channel scoping happens in the handler).
	open    bool
	handler http.HandlerFunc
}

// routes returns the complete v1 route table. Every endpoint the server
// serves is an entry here; the package doc lists the same set in prose.
func (s *Server) routes() []route {
	return []route{
		{method: "GET", pattern: "/healthz", open: true, handler: s.handleHealthz},
		{method: "POST", pattern: "/v1/plants", handler: s.handleRegister},
		{method: "GET", pattern: "/v1/plants", handler: s.handleList},
		{method: "POST", pattern: "/v1/plants/{id}/ingest", handler: s.withPlant(s.handleIngest)},
		{method: "POST", pattern: "/v1/plants/{id}/jobs", handler: s.withPlant(s.handleJobs)},
		{method: "GET", pattern: "/v1/plants/{id}/report", handler: s.withPlant(s.handleReport)},
		{method: "GET", pattern: "/v1/plants/{id}/rollup", handler: s.withPlant(s.handleRollup)},
		{method: "GET", pattern: "/v1/plants/{id}/cube", handler: s.withPlant(s.handleCube)},
		{method: "GET", pattern: "/v1/plants/{id}/alerts", handler: s.withPlant(s.handleAlerts)},
		{method: "GET", pattern: "/v1/plants/{id}/stats", handler: s.withPlant(s.handleStats)},
		{method: "GET", pattern: "/v1/plants/{id}/backup", handler: s.withPlant(s.handleBackup)},
		{method: "POST", pattern: "/v1/plants/{id}/restore", handler: s.handleRestore},
		{method: "GET", pattern: "/v1/subscribe", handler: s.handleSubscribe},
		{method: "GET", pattern: "/v1/events", handler: s.handleEvents},
		// The node-side cluster control surface (internal/cluster
		// NodeRoutes): membership pushes, standby seeding, WAL tailing.
		// Mounted unconditionally — outside cluster mode membership
		// pushes are refused and the rest is inert — and guarded by the
		// internal header where it mutates, not by tenant auth: cluster
		// traffic assumes an unauthenticated internal network.
		{method: "GET", pattern: "/v1/cluster/status", handler: s.handleClusterStatus},
		{method: "POST", pattern: "/v1/cluster/membership", handler: s.handleClusterMembership},
		{method: "POST", pattern: "/v1/cluster/replicate", handler: s.handleClusterReplicate},
		{method: "POST", pattern: "/v1/cluster/release", handler: s.handleClusterRelease},
		{method: "GET", pattern: "/v1/plants/{id}/wal", handler: s.handleWalTail},
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
