package server

import (
	"log"
	"net/http"

	"repro/internal/olap"
	"repro/pkg/hod/wire"
)

// The serving layer maintains one OLAP cube per plant over the machine
// sensor stream — dimensions line × machine × job × phase × sensor,
// one fact per first-seen sample — updated incrementally inside the
// per-shard fold path (foldRefs, under foldMu/rollMu). Because the
// cube is folded exactly where the roll-up leaves are, it rides the
// WAL + snapshot recovery contract for free: replayed batches rebuild
// it through the same path, and captureState/applyState carry its
// cells across restarts, backups, and restores.

// cubeDims are the fixed dimensions of the per-plant serving cube —
// the wire package owns the list, shared with the SDK's batch builder.
var cubeDims = wire.CubeDims()

// newServeCube builds an empty cube with the serving dimensions. The
// dims are a package constant, so New cannot fail.
func newServeCube() *olap.Cube {
	c, err := olap.New(cubeDims...)
	if err != nil {
		panic(err)
	}
	return c
}

// mergedCube assembles one queryable cube from the shard-local slices,
// translating interned coordinates back to strings — the query
// boundary where ids stop. Machines hash onto exactly one shard, so
// shard cubes never hold the same coordinate, and each translated cell
// is added exactly once; merge order cannot matter. Shard cells always
// hold finite aggregates (Observe/AddAggregate refuse sum overflow), so
// AddAggregate failing here should be impossible — but a query handler
// must not be able to panic the plant, so a failing cell is logged and
// skipped instead.
func (ps *plantState) mergedCube() *olap.Cube {
	out := newServeCube()
	for _, sh := range ps.shards {
		sh.rollMu.Lock()
		sh.cube.Each(func(cell *olap.IntCell) {
			coord := ps.cubeCoordOf(cell.Coord)
			if err := out.AddAggregate(coord, cell.Count, cell.Sum, cell.Min, cell.Max); err != nil {
				log.Printf("server: plant %s: cube query skipping cell %v: %v", ps.topo.ID, coord, err)
			}
		})
		sh.rollMu.Unlock()
	}
	return out
}

// queryCube returns the merged cube at the current data revision,
// re-merging the shard cubes only when ingest has advanced it. The
// cached cube is immutable once built (queries only read it), so it is
// shared across concurrent handlers.
func (ps *plantState) queryCube() *olap.Cube {
	rev := ps.dataRev.Load()
	ps.cubeMu.Lock()
	defer ps.cubeMu.Unlock()
	if ps.cubeCache == nil || ps.cubeCacheRev != rev {
		ps.cubeCache = ps.mergedCube()
		ps.cubeCacheRev = rev
	}
	return ps.cubeCache
}

// handleCube answers one OLAP query over the plant's cube:
//
//	GET /v1/plants/{id}/cube?op=slice&where=machine=line-0/m-0&where=phase=print
//	GET /v1/plants/{id}/cube?op=rollup&keep=line,sensor
//	GET /v1/plants/{id}/cube?op=members&dim=phase
//	GET /v1/plants/{id}/cube?op=drilldown&dim=machine&where=line=line-0
//
// op defaults to slice. where repeats as dim=member pairs; keep is a
// comma-separated dimension list. Cells come back in deterministic
// coordinate order, so equal queries yield byte-identical bodies.
func (s *Server) handleCube(w http.ResponseWriter, r *http.Request, ps *plantState) {
	// The grammar is wire.CubeQueryParams — the same Encode/Decode pair
	// the SDK builds requests with, so client and server cannot drift.
	p, err := wire.DecodeCubeQueryParams(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	query := olap.Query{Op: p.Op, Dim: p.Dim, Keep: p.Keep, Where: p.Where}
	res, err := ps.queryCube().Answer(query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, wire.CubeResponse{
		Plant: ps.topo.ID, Op: res.Op, Dims: res.Dims, Where: res.Where,
		Members: res.Members, Cells: res.Cells, TotalCells: res.TotalCells,
	})
}
