package server

import (
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"

	"repro/internal/plant"
	"repro/pkg/hod/wire"
)

func binaryBody(t *testing.T, recs []Record) []byte {
	t.Helper()
	body, err := wire.EncodeBinary(recs)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postBinaryChunks(t *testing.T, base, plantID string, chunks [][]Record) {
	t.Helper()
	for _, c := range chunks {
		resp := postRetry(t, base+"/v1/plants/"+plantID+"/ingest", wire.ContentTypeBinary, binaryBody(t, c))
		mustStatus(t, resp, http.StatusAccepted)
	}
}

// TestBinaryIngestByteIdenticalToNDJSON is the binary-path acceptance
// test: the same trace replayed as binary columnar frames into a
// durable server answers every query byte-identically to an NDJSON
// replay into an in-memory control — and keeps doing so after a kill
// and a WAL-replay restart, proving the binary frames logged verbatim
// in the WAL rebuild the exact same state.
func TestBinaryIngestByteIdenticalToNDJSON(t *testing.T) {
	p, err := plant.Simulate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const plantID = "plant-binary"
	topo := topoFromPlant(plantID, p)
	chunks := traceChunks(p, 1500)
	total := 0
	for _, c := range chunks {
		total += len(c)
	}

	// Control: uninterrupted, in-memory, NDJSON.
	control := New(Options{Shards: 3, QueueDepth: 64, Workers: 2})
	defer control.Close()
	tsC := httptest.NewServer(control.Handler())
	defer tsC.Close()
	register(t, tsC.URL, topo)
	postChunks(t, tsC.URL, plantID, chunks)
	postJobs(t, tsC.URL, plantID, p)
	waitDrained(t, tsC.URL, plantID, uint64(total))

	// Subject: durable, binary frames all the way down.
	dataDir := t.TempDir()
	subject := New(durableOptions(dataDir))
	if err := subject.Open(); err != nil {
		t.Fatal(err)
	}
	tsS := httptest.NewServer(subject.Handler())
	register(t, tsS.URL, topo)
	postBinaryChunks(t, tsS.URL, plantID, chunks)
	postJobs(t, tsS.URL, plantID, p)
	waitDrained(t, tsS.URL, plantID, uint64(total))

	queries := []string{
		"/report?level=1&top=512",
		"/report?level=2&top=64",
		"/report?level=4",
		"/rollup?level=sensor",
		"/rollup?level=machine",
		"/rollup?level=plant",
		"/cube?op=slice",
		"/cube?op=rollup&keep=machine,sensor",
		"/cube?op=drilldown&dim=phase&where=machine%3D" + url.QueryEscape(p.Machines()[0].ID),
	}
	for _, q := range queries {
		want := getBody(t, tsC.URL+"/v1/plants/"+plantID+q)
		got := getBody(t, tsS.URL+"/v1/plants/"+plantID+q)
		if string(want) != string(got) {
			t.Fatalf("binary ingest diverged from NDJSON on %s:\nndjson: %s\nbinary: %s", q, want, got)
		}
	}

	// Kill without drain or snapshot: recovery must replay the
	// binary-tagged WAL frames through the same fold path.
	tsS.Close()
	subject.Kill()
	restarted := New(durableOptions(dataDir))
	if err := restarted.Open(); err != nil {
		t.Fatalf("recovery from binary WAL failed: %v", err)
	}
	defer restarted.Close()
	tsR := httptest.NewServer(restarted.Handler())
	defer tsR.Close()
	for _, q := range queries {
		want := getBody(t, tsC.URL+"/v1/plants/"+plantID+q)
		got := getBody(t, tsR.URL+"/v1/plants/"+plantID+q)
		if string(want) != string(got) {
			t.Fatalf("binary WAL recovery diverged on %s:\nndjson: %s\nrecovered: %s", q, want, got)
		}
	}
}

// TestBinaryFrameHTTPRejections pins the admission contract of the
// binary path: structural damage rejects the whole request with 400
// and the bad_frame code, identifier drift stays a per-record
// rejection with the text path's messages — and neither wedges the
// shard pipelines for the next valid batch.
func TestBinaryFrameHTTPRejections(t *testing.T) {
	srv := New(Options{Shards: 2, QueueDepth: 16, Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	topo := Topology{
		ID:      "plant-frames",
		Lines:   []TopoLine{{ID: "line-0", Machines: []string{"m-0", "m-1"}}},
		Phases:  []string{"heat"},
		Sensors: []string{"temp"},
	}
	register(t, ts.URL, topo)
	ingestURL := ts.URL + "/v1/plants/plant-frames/ingest"

	valid := []Record{
		{Machine: "m-0", Job: "job-1", Phase: "heat", Sensor: "temp", T: 0, Value: 20},
		{Machine: "m-1", Job: "job-1", Phase: "heat", Sensor: "temp", T: 0, Value: 21},
	}
	// Resolve the server's defaulted phase/sensor names so the frames
	// reference real identifiers.
	probe := postRetry(t, ingestURL, "application/x-ndjson", ndjson(valid))
	body := mustStatus(t, probe, http.StatusAccepted)
	var ack wire.IngestAck
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Rejected > 0 {
		t.Fatalf("probe batch rejected: %s", ack.FirstRejection)
	}

	wantBadFrame := func(t *testing.T, raw []byte) {
		t.Helper()
		resp := postRetry(t, ingestURL, wire.ContentTypeBinary, raw)
		errBody := mustStatus(t, resp, http.StatusBadRequest)
		var env wire.ErrorEnvelope
		if err := json.Unmarshal(errBody, &env); err != nil {
			t.Fatalf("error envelope: %v in %s", err, errBody)
		}
		if env.Err.Code != wire.CodeBadFrame {
			t.Fatalf("error code %q, want %q (%s)", env.Err.Code, wire.CodeBadFrame, errBody)
		}
	}

	good := binaryBody(t, valid)

	t.Run("truncated", func(t *testing.T) {
		wantBadFrame(t, good[:len(good)-3])
	})
	t.Run("garbage", func(t *testing.T) {
		wantBadFrame(t, []byte("this is not a frame at all, not even close"))
	})
	t.Run("oversized length prefix", func(t *testing.T) {
		raw := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(raw, wire.MaxFrameBytes+1)
		wantBadFrame(t, raw)
	})
	t.Run("dictionary index out of range", func(t *testing.T) {
		raw := append([]byte(nil), good...)
		// The machine column starts right after the u32 record count,
		// which follows the last sensor dictionary entry.
		i := len(raw) - 2*(5*4+8) // two records of five i32 columns + one f64
		binary.LittleEndian.PutUint32(raw[i:], 1<<20)
		wantBadFrame(t, raw)
	})
	t.Run("unknown machine stays per-record", func(t *testing.T) {
		recs := append([]Record{{Machine: "ghost", Job: "job-1", Phase: "heat", Sensor: "temp", T: 1, Value: 5}}, valid...)
		recs[1].T, recs[2].T = 1, 1
		resp := postRetry(t, ingestURL, wire.ContentTypeBinary, binaryBody(t, recs))
		ackBody := mustStatus(t, resp, http.StatusAccepted)
		var a wire.IngestAck
		if err := json.Unmarshal(ackBody, &a); err != nil {
			t.Fatal(err)
		}
		if a.Rejected != 1 || a.Records != 2 {
			t.Fatalf("ack %+v, want 2 admitted / 1 rejected", a)
		}
		if !strings.Contains(a.FirstRejection, `unregistered machine "ghost"`) {
			t.Fatalf("first rejection %q lost the text path's message", a.FirstRejection)
		}
	})
	t.Run("pipelines not wedged", func(t *testing.T) {
		recs := append([]Record(nil), valid...)
		for i := range recs {
			recs[i].T = 2
		}
		resp := postRetry(t, ingestURL, wire.ContentTypeBinary, binaryBody(t, recs))
		mustStatus(t, resp, http.StatusAccepted)
		waitDrained(t, ts.URL, "plant-frames", 6)
	})
}

// binaryTestTopo is a hand-rolled topology for plantState-level tests:
// explicit phases/sensors, two machines across two lines.
func binaryTestTopo() Topology {
	return Topology{
		ID:         "plant-intern",
		Lines:      []TopoLine{{ID: "l0", Machines: []string{"m0"}}, {ID: "l1", Machines: []string{"m1"}}},
		Phases:     []string{"heat", "cool"},
		Sensors:    []string{"temp", "pressure"},
		EnvSensors: []string{"hall-temp"},
	}
}

func binaryTestRecords() []Record {
	return []Record{
		{Machine: "m0", Job: "job-b", Phase: "heat", Sensor: "temp", T: 0, Value: 1},
		{Machine: "m0", Job: "job-a", Phase: "cool", Sensor: "pressure", T: 1, Value: 2},
		{Machine: "m1", Job: "job-c", Phase: "heat", Sensor: "temp", T: 0, Value: 3},
		{Env: true, Sensor: "hall-temp", T: 0, Value: 19},
	}
}

// foldPlant resolves and folds records straight through the shard fold
// path (no workers), the way WAL replay does.
func foldPlant(t *testing.T, ps *plantState, recs []Record) {
	t.Helper()
	refs, rejected, firstErr := ps.resolveRecords(nil, recs)
	if rejected > 0 {
		t.Fatalf("resolve rejected %d: %s", rejected, firstErr)
	}
	ps.foldResolved(refs, 0)
}

// TestSnapshotRoundTripPreservesJobInterns pins the intern-table
// snapshot contract: a restore reproduces the exact job-id assignment
// the snapshot was captured under.
func TestSnapshotRoundTripPreservesJobInterns(t *testing.T) {
	ps := newPlantState(binaryTestTopo())
	ps.makeShards(2, 8)
	ps.alertThreshold = 1e18
	foldPlant(t, ps, binaryTestRecords())

	st := ps.captureState()
	if want := ps.in.jobs.Names(); !reflect.DeepEqual(st.JobInterns, want) {
		t.Fatalf("snapshot JobInterns %v, want %v", st.JobInterns, want)
	}

	restored := newPlantState(binaryTestTopo())
	restored.makeShards(2, 8)
	restored.applyState(st)
	if got := restored.in.jobs.Names(); !reflect.DeepEqual(got, st.JobInterns) {
		t.Fatalf("restored interns %v, want %v", got, st.JobInterns)
	}
	for wantID, name := range st.JobInterns {
		if id, ok := restored.in.jobs.ID(name); !ok || int(id) != wantID {
			t.Fatalf("job %q restored as id %d (ok=%v), want %d", name, id, ok, wantID)
		}
	}
}

// TestLegacySnapshotReintersDeterministically covers snapshots from
// before interning (JobInterns absent): two independent restores must
// assign identical job ids, so follower/standby pairs restored from
// the same backup agree.
func TestLegacySnapshotReintersDeterministically(t *testing.T) {
	ps := newPlantState(binaryTestTopo())
	ps.makeShards(2, 8)
	ps.alertThreshold = 1e18
	foldPlant(t, ps, binaryTestRecords())
	st := ps.captureState()
	st.JobInterns = nil // simulate a pre-intern snapshot

	restore := func() *plantState {
		r := newPlantState(binaryTestTopo())
		r.makeShards(2, 8)
		r.applyState(st)
		return r
	}
	a, b := restore(), restore()
	if got, want := a.in.jobs.Names(), b.in.jobs.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy re-intern diverged between restores: %v vs %v", got, want)
	}
	if a.in.jobs.Len() != 3 {
		t.Fatalf("expected 3 re-interned jobs, got %d (%v)", a.in.jobs.Len(), a.in.jobs.Names())
	}
	// The restored state must answer like the original, whatever ids it
	// picked.
	wantLevel, wantNodes, err := ps.rollup("sensor")
	if err != nil {
		t.Fatal(err)
	}
	gotLevel, gotNodes, err := a.rollup("sensor")
	if err != nil {
		t.Fatal(err)
	}
	if wantLevel != gotLevel || !reflect.DeepEqual(wantNodes, gotNodes) {
		t.Fatalf("legacy restore rollup drifted:\nwant %v\n got %v", wantNodes, gotNodes)
	}
}

// TestIngestSteadyStateZeroAlloc is the zero-alloc gate of the tentpole:
// once identifiers are interned and cells exist, both halves of the
// per-record hot path — batch resolution at admission and the shard
// fold — run without a single allocation.
func TestIngestSteadyStateZeroAlloc(t *testing.T) {
	ps := newPlantState(binaryTestTopo())
	ps.makeShards(1, 8)
	ps.alertThreshold = 1e18
	recs := binaryTestRecords()
	foldPlant(t, ps, recs) // warm: intern jobs, materialise cells

	refs := make([]recordRef, 0, len(recs))
	if n := testing.AllocsPerRun(1000, func() {
		var rejected int
		refs, rejected, _ = ps.resolveRecords(refs[:0], recs)
		if rejected > 0 {
			t.Fatal("resolution rejected a warm record")
		}
	}); n != 0 {
		t.Fatalf("resolveRecords allocates %v per run on interned identifiers, want 0", n)
	}

	sh := ps.shards[0]
	if n := testing.AllocsPerRun(1000, func() {
		ps.foldRefs(sh, refs)
	}); n != 0 {
		t.Fatalf("foldRefs allocates %v per run on an idempotent replay, want 0", n)
	}

	// The binary admission path too: a decoded frame of known
	// identifiers resolves without allocating per record (the dictionary
	// tables are per frame, amortised across its records).
	fr := new(wire.Frame)
	body := binaryBody(t, recs)
	if err := wire.DecodeFrame(body[4:], fr); err != nil {
		t.Fatal(err)
	}
	perRecord := testing.AllocsPerRun(1000, func() {
		var rejected int
		refs, rejected, _ = ps.resolveFrame(refs[:0], fr)
		if rejected > 0 {
			t.Fatal("frame resolution rejected a warm record")
		}
	}) / float64(len(recs))
	if perRecord > 2 {
		t.Fatalf("resolveFrame allocates %v per record, want the dictionary cost amortised (<= 2)", perRecord)
	}
}
