package server

import (
	"net"
	"net/http"
	"testing"
	"time"
)

// TestFaultListenerDropsArmedAccepts pins the fault listener contract:
// each armed drop RSTs exactly one accepted connection, unarmed
// accepts pass through untouched, and the drop counter reflects what
// actually happened on the wire.
func TestFaultListenerDropsArmedAccepts(t *testing.T) {
	srv := New(Options{Shards: 1, QueueDepth: 8})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFaultListener(ln)
	stop := srv.ServeListener(fl)
	defer stop()
	base := "http://" + ln.Addr().String()

	// Each request uses a fresh connection so every accept is observed.
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
	if resp, err := client.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-arm health: %v", err)
	}

	fl.DropNext(2)
	fails := 0
	for i := 0; i < 2; i++ {
		if _, err := client.Get(base + "/healthz"); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("%d of 2 armed connections failed, want 2", fails)
	}
	if got := fl.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}

	// Schedule consumed: the listener is transparent again.
	if resp, err := client.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm health: %v", err)
	}
	if got := fl.Dropped(); got != 2 {
		t.Fatalf("Dropped() advanced to %d on a clean accept", got)
	}
}
