package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/plant"
	"repro/pkg/hod/wire"
)

func testConfig() plant.Config {
	return plant.Config{
		Seed: 5, Lines: 2, MachinesPerLine: 3, JobsPerMachine: 6,
		PhaseSamples: 40, FaultRate: 0.3, MeasurementErrorRate: 0.3,
	}
}

func topoFromPlant(id string, p *plant.Plant) Topology {
	topo := Topology{ID: id}
	for _, l := range p.Lines {
		tl := TopoLine{ID: l.ID}
		for _, m := range l.Machines {
			tl.Machines = append(tl.Machines, m.ID)
		}
		topo.Lines = append(topo.Lines, tl)
	}
	return topo
}

func machineRecords(p *plant.Plant) []Record {
	var out []Record
	for _, m := range p.Machines() {
		for _, job := range m.Jobs {
			for _, ph := range job.Phases {
				for _, dim := range ph.Sensors.Dims {
					for t, v := range dim.Values {
						out = append(out, Record{
							Machine: m.ID, Job: job.ID, Phase: ph.Name,
							Sensor: dim.Name, T: t, Value: v,
						})
					}
				}
			}
		}
	}
	return out
}

func envRecords(p *plant.Plant) []Record {
	var out []Record
	for _, dim := range p.Environment.Dims {
		for t, v := range dim.Values {
			out = append(out, Record{Env: true, Sensor: dim.Name, T: t, Value: v})
		}
	}
	return out
}

func jobMetas(p *plant.Plant) []JobMeta {
	var out []JobMeta
	for _, m := range p.Machines() {
		for _, job := range m.Jobs {
			out = append(out, JobMeta{
				Machine: m.ID, Job: job.ID,
				Setup: job.Setup, CAQ: job.CAQ, Faulty: job.Faulty,
			})
		}
	}
	return out
}

func ndjson(recs []Record) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		_ = enc.Encode(r)
	}
	return buf.Bytes()
}

// postRetry POSTs body, retrying on 429 with the advertised backoff —
// the client contract the idempotent store makes safe.
func postRetry(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	for try := 0; try < 200; try++ {
		resp, err := http.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return resp
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("batch never admitted after 200 retries")
	return nil
}

func mustStatus(t *testing.T, resp *http.Response, want int) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != want {
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, want, body)
	}
	return body
}

// ingestPlant replays the whole plant (sensors in chunks, environment,
// job metadata) through the HTTP API and waits for the pipelines to
// drain.
func ingestPlant(t *testing.T, base, plantID string, p *plant.Plant) {
	t.Helper()
	recs := machineRecords(p)
	env := envRecords(p)
	const chunk = 5000
	for lo := 0; lo < len(recs); lo += chunk {
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		resp := postRetry(t, base+"/v1/plants/"+plantID+"/ingest", "application/x-ndjson", ndjson(recs[lo:hi]))
		mustStatus(t, resp, http.StatusAccepted)
	}
	resp := postRetry(t, base+"/v1/plants/"+plantID+"/ingest", "application/x-ndjson", ndjson(env))
	mustStatus(t, resp, http.StatusAccepted)

	metas, err := json.Marshal(jobMetas(p))
	if err != nil {
		t.Fatal(err)
	}
	resp = postRetry(t, base+"/v1/plants/"+plantID+"/jobs", "application/json", metas)
	mustStatus(t, resp, http.StatusAccepted)

	waitDrained(t, base, plantID, uint64(len(recs)+len(env)))
}

func waitDrained(t *testing.T, base, plantID string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/plants/" + plantID + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Received    uint64 `json:"received_records"`
			QueueDepths []int  `json:"queue_depths"`
		}
		body := mustStatus(t, resp, http.StatusOK)
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		drained := st.Received >= want
		for _, d := range st.QueueDepths {
			if d > 0 {
				drained = false
			}
		}
		if drained {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("pipelines did not drain %d records in time", want)
}

func register(t *testing.T, base string, topo Topology) {
	t.Helper()
	buf, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/plants", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusCreated)
}

// TestEndToEndMatchesBatchPipeline is the acceptance test: replaying a
// simulated trace through the ingest API yields exactly the outliers
// the batch core pipeline computes on the same data — per machine and
// fleet-ranked top-K.
func TestEndToEndMatchesBatchPipeline(t *testing.T) {
	p, err := plant.Simulate(testConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Batch reference: one shared cache, Algorithm 1 per machine. The
	// serving layer answers in wire shapes, so the expectation converts
	// through the same core Wire() conversion the server uses.
	cache := core.NewPlantCache(p)
	batch := map[string]*core.Report{}
	type taggedOutlier struct {
		machine string
		outlier core.Outlier
	}
	var ranked []taggedOutlier
	for _, m := range p.Machines() {
		h, err := core.NewHierarchyWithCache(p, m.ID, cache)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.FindHierarchicalOutliers(h, core.LevelPhase, core.Options{MaxOutliers: 512})
		if err != nil {
			t.Fatal(err)
		}
		batch[m.ID] = rep
		for _, o := range rep.Outliers {
			ranked = append(ranked, taggedOutlier{m.ID, o})
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool { return core.RankLess(ranked[i].outlier, ranked[j].outlier) })
	fleet := make([]FleetOutlier, len(ranked))
	for i, to := range ranked {
		fleet[i] = FleetOutlier{Machine: to.machine, Outlier: to.outlier.Wire()}
	}

	srv := New(Options{Shards: 3, QueueDepth: 16, Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	register(t, ts.URL, topoFromPlant("plant-e2e", p))
	ingestPlant(t, ts.URL, "plant-e2e", p)

	// Per-machine drill-down equality.
	for _, m := range p.Machines() {
		resp, err := http.Get(ts.URL + "/v1/plants/plant-e2e/report?level=phase&top=512&machine=" + m.ID)
		if err != nil {
			t.Fatal(err)
		}
		body := mustStatus(t, resp, http.StatusOK)
		var got ReportResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		// The serving layer ranks operator-facing output with the
		// paper's combined-importance order (core.Rank); apply the same
		// ranking to the batch report before comparing.
		wantRanked := core.Rank(batch[m.ID].Outliers)
		if len(got.Outliers) != len(wantRanked) {
			t.Fatalf("machine %s: %d outliers via HTTP, %d via batch", m.ID, len(got.Outliers), len(wantRanked))
		}
		for i := range wantRanked {
			if !reflect.DeepEqual(got.Outliers[i].Outlier, wantRanked[i].Wire()) {
				t.Fatalf("machine %s outlier %d differs:\nhttp:  %+v\nbatch: %+v",
					m.ID, i, got.Outliers[i].Outlier, wantRanked[i])
			}
		}
		if len(got.Warnings) != len(batch[m.ID].Warnings) {
			t.Fatalf("machine %s: %d warnings via HTTP, %d via batch", m.ID, len(got.Warnings), len(batch[m.ID].Warnings))
		}
	}

	// Fleet-ranked top-K equality.
	resp, err := http.Get(ts.URL + "/v1/plants/plant-e2e/report?level=1&top=10")
	if err != nil {
		t.Fatal(err)
	}
	var got ReportResponse
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusOK), &got); err != nil {
		t.Fatal(err)
	}
	wantTop := fleet
	if len(wantTop) > 10 {
		wantTop = wantTop[:10]
	}
	if len(got.Outliers) != len(wantTop) {
		t.Fatalf("fleet top-K: got %d, want %d", len(got.Outliers), len(wantTop))
	}
	for i := range wantTop {
		if got.Outliers[i].Machine != wantTop[i].Machine ||
			!reflect.DeepEqual(got.Outliers[i].Outlier, wantTop[i].Outlier) {
			t.Fatalf("fleet outlier %d differs:\nhttp:  %+v\nbatch: %+v", i, got.Outliers[i], wantTop[i])
		}
	}
	if got.TotalOutliers != len(fleet) {
		t.Fatalf("total_outliers %d, want %d", got.TotalOutliers, len(fleet))
	}

	// Roll-up sanity: plant-level count equals every machine sample.
	resp, err = http.Get(ts.URL + "/v1/plants/plant-e2e/rollup?level=plant")
	if err != nil {
		t.Fatal(err)
	}
	var roll struct {
		Nodes []RollupNode `json:"nodes"`
	}
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusOK), &roll); err != nil {
		t.Fatal(err)
	}
	if len(roll.Nodes) != 1 {
		t.Fatalf("plant rollup nodes = %d", len(roll.Nodes))
	}
	if want := len(machineRecords(p)); roll.Nodes[0].Count != want {
		t.Fatalf("plant rollup count %d, want %d", roll.Nodes[0].Count, want)
	}
	resp, err = http.Get(ts.URL + "/v1/plants/plant-e2e/rollup?level=machine")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusOK), &roll); err != nil {
		t.Fatal(err)
	}
	if len(roll.Nodes) != len(p.Machines()) {
		t.Fatalf("machine rollup nodes = %d, want %d", len(roll.Nodes), len(p.Machines()))
	}
}

// TestIncrementalSnapshotReusesUntouchedMachines checks the serving
// contract behind "a roll-up never recomputes untouched subtrees":
// after new data for one machine, the snapshot rebuilds only that
// machine's view.
func TestIncrementalSnapshotReusesUntouchedMachines(t *testing.T) {
	p, err := plant.Simulate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Shards: 2, QueueDepth: 32})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-inc", p))
	ingestPlant(t, ts.URL, "plant-inc", p)

	resp, err := http.Get(ts.URL + "/v1/plants/plant-inc/report?level=4")
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusOK)

	ps, ok := srv.plant("plant-inc")
	if !ok {
		t.Fatal("plant state missing")
	}
	machines := p.Machines()
	touched, untouched := machines[0].ID, machines[1].ID
	ps.reportMu.Lock()
	beforeTouched := ps.built[touched]
	beforeUntouched := ps.built[untouched]
	ps.reportMu.Unlock()

	// One extra sample for the touched machine (a fresh cell).
	extra := []Record{{
		Machine: touched, Job: machines[0].Jobs[0].ID, Phase: "print",
		Sensor: "temp-a", T: 40, Value: 123.0,
	}}
	stats0 := acceptedCount(t, ts.URL, "plant-inc")
	mustStatus(t, postRetry(t, ts.URL+"/v1/plants/plant-inc/ingest", "application/x-ndjson", ndjson(extra)),
		http.StatusAccepted)
	waitDrained(t, ts.URL, "plant-inc", stats0+1)

	resp, err = http.Get(ts.URL + "/v1/plants/plant-inc/report?level=4")
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusOK)

	ps.reportMu.Lock()
	defer ps.reportMu.Unlock()
	if ps.built[touched] == beforeTouched {
		t.Fatal("touched machine was not rebuilt")
	}
	if ps.built[untouched] != beforeUntouched {
		t.Fatal("untouched machine was rebuilt")
	}
}

func acceptedCount(t *testing.T, base, plantID string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/plants/" + plantID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Accepted uint64 `json:"accepted_records"`
	}
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	return st.Accepted
}

// TestBackpressure429 fills a shard queue with no consumer and checks
// the 429 + Retry-After contract.
func TestBackpressure429(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 2, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	topo := topoWithDefaults(topoFromPlant("plant-bp", p))
	s := New(Options{})
	ps := newPlantState(topo)
	ps.makeShards(1, 1) // capacity 1 batch, and no worker draining it
	s.plants["plant-bp"] = ps
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rec := ndjson([]Record{{
		Machine: p.Machines()[0].ID, Job: p.Machines()[0].Jobs[0].ID,
		Phase: "print", Sensor: "temp-a", T: 0, Value: 1,
	}})
	resp, err := http.Post(ts.URL+"/v1/plants/plant-bp/ingest", "application/x-ndjson", bytes.NewReader(rec))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusAccepted)

	resp, err = http.Post(ts.URL+"/v1/plants/plant-bp/ingest", "application/x-ndjson", bytes.NewReader(rec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	mustStatus(t, resp, http.StatusTooManyRequests)
}

// TestConcurrentClientsSmoke hammers one plant from many goroutines —
// ingest, reports, rollups, alerts — and relies on -race in CI to
// surface synchronization bugs.
func TestConcurrentClientsSmoke(t *testing.T) {
	p, err := plant.Simulate(plant.Config{
		Seed: 9, Lines: 2, MachinesPerLine: 2, JobsPerMachine: 3,
		PhaseSamples: 20, FaultRate: 0.4, MeasurementErrorRate: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Shards: 2, QueueDepth: 4, Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-smoke", p))

	recs := machineRecords(p)
	env := envRecords(p)
	var wg sync.WaitGroup
	clients := 6
	per := (len(recs) + clients - 1) / clients
	for c := 0; c < clients; c++ {
		lo := c * per
		hi := lo + per
		if hi > len(recs) {
			hi = len(recs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(chunk []Record) {
			defer wg.Done()
			const sub = 500
			for i := 0; i < len(chunk); i += sub {
				j := i + sub
				if j > len(chunk) {
					j = len(chunk)
				}
				resp := postRetry(t, ts.URL+"/v1/plants/plant-smoke/ingest", "application/x-ndjson", ndjson(chunk[i:j]))
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(recs[lo:hi])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postRetry(t, ts.URL+"/v1/plants/plant-smoke/ingest", "application/x-ndjson", ndjson(env))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	// Readers race the writers.
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for _, path := range []string{"/report?level=1&top=5", "/rollup?level=machine", "/alerts", "/stats"} {
					resp, err := http.Get(ts.URL + "/v1/plants/plant-smoke" + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	waitDrained(t, ts.URL, "plant-smoke", uint64(len(recs)+len(env)))

	resp, err := http.Get(ts.URL + "/v1/plants/plant-smoke/report?level=1&top=20")
	if err != nil {
		t.Fatal(err)
	}
	var rep ReportResponse
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusOK), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Machines) != len(p.Machines()) {
		t.Fatalf("report covers %d machines, want %d", len(rep.Machines), len(p.Machines()))
	}
}

// TestGracefulShutdownDrains verifies Close drains admitted batches
// and subsequent ingests are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 4, Lines: 1, MachinesPerLine: 2, JobsPerMachine: 2, PhaseSamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Shards: 2, QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-shut", p))

	recs := machineRecords(p)
	mustStatus(t, postRetry(t, ts.URL+"/v1/plants/plant-shut/ingest", "application/x-ndjson", ndjson(recs)),
		http.StatusAccepted)
	srv.Close() // must drain the admitted batch

	ps, _ := srv.plant("plant-shut")
	if got := ps.accepted.Load(); got != uint64(len(recs)) {
		t.Fatalf("after Close accepted=%d, want %d (drain incomplete)", got, len(recs))
	}
	resp, err := http.Post(ts.URL+"/v1/plants/plant-shut/ingest", "application/x-ndjson", bytes.NewReader(ndjson(recs[:1])))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusServiceUnavailable)
}

// TestCSVIngest replays the plantsim wide-row schema.
func TestCSVIngest(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 3, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 2, PhaseSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-csv", p))

	var b strings.Builder
	b.WriteString("machine,job,phase,t," + strings.Join(plant.SensorNames, ",") + "\n")
	m := p.Machines()[0]
	rows := 0
	for _, job := range m.Jobs {
		for _, ph := range job.Phases {
			for ti := 0; ti < ph.Sensors.Len(); ti++ {
				fmt.Fprintf(&b, "%s,%s,%s,%d", m.ID, job.ID, ph.Name, ti)
				for _, v := range ph.Sensors.Row(ti) {
					fmt.Fprintf(&b, ",%g", v)
				}
				b.WriteString("\n")
				rows++
			}
		}
	}
	resp := postRetry(t, ts.URL+"/v1/plants/plant-csv/ingest", "text/csv", []byte(b.String()))
	var ack struct {
		Records int `json:"records"`
	}
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusAccepted), &ack); err != nil {
		t.Fatal(err)
	}
	if want := rows * len(plant.SensorNames); ack.Records != want {
		t.Fatalf("csv ingest admitted %d records, want %d", ack.Records, want)
	}
	waitDrained(t, ts.URL, "plant-csv", uint64(rows*len(plant.SensorNames)))
	resp, err = http.Get(ts.URL + "/v1/plants/plant-csv/report?level=1&top=5")
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusOK)
}

// TestValidationRejections counts bad records without failing a batch.
func TestValidationRejections(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 3, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-val", p))

	m := p.Machines()[0]
	batch := []Record{
		{Machine: m.ID, Job: m.Jobs[0].ID, Phase: "print", Sensor: "temp-a", T: 0, Value: 1},
		{Machine: "ghost", Job: "j", Phase: "print", Sensor: "temp-a", T: 0, Value: 1},
		{Machine: m.ID, Job: m.Jobs[0].ID, Phase: "melt", Sensor: "temp-a", T: 0, Value: 1},
		{Machine: m.ID, Job: m.Jobs[0].ID, Phase: "print", Sensor: "nope", T: 0, Value: 1},
		{Machine: m.ID, Job: m.Jobs[0].ID, Phase: "print", Sensor: "temp-a", T: -1, Value: 1},
	}
	resp := postRetry(t, ts.URL+"/v1/plants/plant-val/ingest", "application/x-ndjson", ndjson(batch))
	var ack struct {
		Records  int `json:"records"`
		Rejected int `json:"rejected"`
	}
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusAccepted), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Records != 1 || ack.Rejected != 4 {
		t.Fatalf("records=%d rejected=%d, want 1/4", ack.Records, ack.Rejected)
	}
}

// TestErrorEnvelopeAndStrictQueries pins satellite behaviour of the
// v1 protocol: every error body is the structured envelope
// {"error":{"code","message"}}, and malformed query integers are a 400
// instead of a silent fall-back to the default.
func TestErrorEnvelopeAndStrictQueries(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 3, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-env", p))

	envelope := func(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		body := mustStatus(t, resp, wantStatus)
		var env wire.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("error body is not the envelope: %v (%s)", err, body)
		}
		if env.Err.Code != wantCode {
			t.Fatalf("error code %q, want %q (%s)", env.Err.Code, wantCode, body)
		}
		if env.Err.Message == "" {
			t.Fatalf("empty error message: %s", body)
		}
	}

	// Unknown plant → unknown_plant.
	resp, err := http.Get(ts.URL + "/v1/plants/ghost/stats")
	if err != nil {
		t.Fatal(err)
	}
	envelope(t, resp, http.StatusNotFound, wire.CodeUnknownPlant)

	// Malformed ?top and ?limit → bad_request, not the default.
	for _, path := range []string{
		"/v1/plants/plant-env/report?top=banana",
		"/v1/plants/plant-env/report?top=-3",
		"/v1/plants/plant-env/alerts?limit=1.5",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		envelope(t, resp, http.StatusBadRequest, wire.CodeBadRequest)
	}

	// Double registration → already_registered.
	buf, _ := json.Marshal(topoFromPlant("plant-env", p))
	resp, err = http.Post(ts.URL+"/v1/plants", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	envelope(t, resp, http.StatusConflict, wire.CodeAlreadyRegistered)

	// Report before any data → no_data.
	resp, err = http.Get(ts.URL + "/v1/plants/plant-env/report")
	if err != nil {
		t.Fatal(err)
	}
	envelope(t, resp, http.StatusConflict, wire.CodeNoData)

	// Undecodable ingest body → bad_request.
	resp, err = http.Post(ts.URL+"/v1/plants/plant-env/ingest", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	envelope(t, resp, http.StatusBadRequest, wire.CodeBadRequest)
}

// TestCorrectedValueReachesSnapshot re-sends an existing cell with a
// different value and checks the next snapshot serves the correction
// (the streaming roll-up intentionally keeps first-seen values only).
func TestCorrectedValueReachesSnapshot(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 8, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 6})
	if err != nil {
		t.Fatal(err)
	}
	topo := topoWithDefaults(topoFromPlant("corr", p))
	ps := newPlantState(topo)
	ps.start(1, 8, 1e9)
	defer ps.close()

	m := p.Machines()[0]
	cell := Record{Machine: m.ID, Job: m.Jobs[0].ID, Phase: "print", Sensor: "temp-a", T: 0, Value: 100}
	push := func(rec Record) {
		t.Helper()
		refs, rejected, firstErr := ps.resolveRecords(nil, []Record{rec})
		if rejected != 0 {
			t.Fatalf("record rejected: %s", firstErr)
		}
		if !ps.shardFor(rec.Machine).q.TryPush(shardBatch{refs: refs}) {
			t.Fatal("push failed")
		}
	}
	push(cell)
	waitRev := func(min uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for ps.dataRev.Load() < min {
			if time.Now().After(deadline) {
				t.Fatalf("dataRev stuck at %d, want >= %d", ps.dataRev.Load(), min)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitRev(1)
	ps.reportMu.Lock()
	if err := ps.snapshot(); err != nil {
		t.Fatal(err)
	}
	am, err := ps.assembled.MachineByID(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := am.Jobs[0].Phases[0].Sensors.Dim("temp-a").Values[0]; got != 100 {
		t.Fatalf("initial value %v, want 100", got)
	}
	ps.reportMu.Unlock()

	// Correction: same cell, new value — not fresh, but must still
	// reach the next snapshot.
	cell.Value = 200
	push(cell)
	waitRev(2)
	ps.reportMu.Lock()
	defer ps.reportMu.Unlock()
	if err := ps.snapshot(); err != nil {
		t.Fatal(err)
	}
	am, err = ps.assembled.MachineByID(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := am.Jobs[0].Phases[0].Sensors.Dim("temp-a").Values[0]; got != 200 {
		t.Fatalf("corrected value %v did not reach the snapshot, want 200", got)
	}
}

// TestReplaySurvivesUnknownMachine is the successor of the old
// shard-worker nil-deref regression test: a WAL entry can carry a
// record for a machine the current topology no longer registers
// (topology drift in a replayed log). Interning makes the crash
// structurally impossible — an unresolvable record never becomes a
// recordRef — but the replay path must still count it as rejected and
// keep folding the rest of the entry.
func TestReplaySurvivesUnknownMachine(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 2, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	topo := topoWithDefaults(topoFromPlant("plant-ghost", p))
	ps := newPlantState(topo)
	ps.makeShards(1, 8)
	ps.alertThreshold = 1e9
	defer ps.close()

	m := p.Machines()[0]
	ps.replayEntry(walEntry{Recs: []Record{
		{Machine: "ghost", Job: "j", Phase: "print", Sensor: "temp-a", T: 0, Value: 1},
		{Machine: m.ID, Job: m.Jobs[0].ID, Phase: "print", Sensor: "temp-a", T: 0, Value: 1},
	}})
	if got := ps.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	if got := ps.received.Load(); got != 1 {
		t.Fatalf("received = %d, want 1", got)
	}
	if got := ps.accepted.Load(); got != 1 {
		t.Fatalf("accepted = %d, want 1", got)
	}
	// Replay keeps folding after the drift: a second entry lands too.
	ps.replayEntry(walEntry{Recs: []Record{
		{Machine: m.ID, Job: m.Jobs[0].ID, Phase: "print", Sensor: "temp-a", T: 1, Value: 2},
	}})
	if got := ps.accepted.Load(); got != 2 {
		t.Fatalf("accepted = %d, want 2", got)
	}
}

// TestVectorDimsRejected pins the oversized setup/CAQ contract: the
// batch is refused with the structured 400 envelope and the dedicated
// vector_dims code instead of being silently truncated by padVector.
func TestVectorDimsRejected(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 3, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-dims", p))

	m := p.Machines()[0]
	long := make([]float64, wire.DefaultSetupDims+1)
	metas, _ := json.Marshal([]JobMeta{{Machine: m.ID, Job: m.Jobs[0].ID, Setup: long}})
	resp, err := http.Post(ts.URL+"/v1/plants/plant-dims/jobs", "application/json", bytes.NewReader(metas))
	if err != nil {
		t.Fatal(err)
	}
	body := mustStatus(t, resp, http.StatusBadRequest)
	var env wire.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not the error envelope: %s", body)
	}
	if env.Err.Code != wire.CodeVectorDims {
		t.Fatalf("error code %q, want %q", env.Err.Code, wire.CodeVectorDims)
	}
	// Oversized CAQ trips the same gate.
	metas, _ = json.Marshal([]JobMeta{{Machine: m.ID, Job: m.Jobs[0].ID, CAQ: make([]float64, wire.DefaultCAQDims+1)}})
	resp, err = http.Post(ts.URL+"/v1/plants/plant-dims/jobs", "application/json", bytes.NewReader(metas))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusBadRequest)
	// An exact-width vector is still welcome.
	metas, _ = json.Marshal([]JobMeta{{Machine: m.ID, Job: m.Jobs[0].ID,
		Setup: make([]float64, wire.DefaultSetupDims), CAQ: make([]float64, wire.DefaultCAQDims)}})
	resp, err = http.Post(ts.URL+"/v1/plants/plant-dims/jobs", "application/json", bytes.NewReader(metas))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusAccepted)
}

// TestAlertRingWraparound pins recentAlerts ordering across the ring's
// wrap: oldest first, newest last, and a limit keeps the newest.
func TestAlertRingWraparound(t *testing.T) {
	ps := &plantState{}
	const extra = 100
	for i := 0; i < alertRingCap+extra; i++ {
		ps.pushAlert(Alert{T: i})
	}
	all := ps.recentAlerts(0)
	if len(all) != alertRingCap {
		t.Fatalf("ring holds %d alerts, want %d", len(all), alertRingCap)
	}
	if all[0].T != extra {
		t.Fatalf("oldest alert T=%d, want %d (ring did not evict oldest-first)", all[0].T, extra)
	}
	for i := 1; i < len(all); i++ {
		if all[i].T != all[i-1].T+1 {
			t.Fatalf("alerts out of order at %d: T=%d after T=%d", i, all[i].T, all[i-1].T)
		}
	}
	last := ps.recentAlerts(10)
	if len(last) != 10 || last[9].T != alertRingCap+extra-1 || last[0].T != alertRingCap+extra-10 {
		t.Fatalf("limit window wrong: first T=%d last T=%d", last[0].T, last[9].T)
	}
	// Before the ring fills, order is insertion order.
	small := &plantState{}
	for i := 0; i < 5; i++ {
		small.pushAlert(Alert{T: i})
	}
	got := small.recentAlerts(0)
	if len(got) != 5 || got[0].T != 0 || got[4].T != 4 {
		t.Fatalf("unfilled ring order wrong: %+v", got)
	}
}

// TestReceivedRecordsCountsIdempotentReplay pins the drain-watcher
// contract: re-sending an already-ingested trace advances
// received_records (accepted_records stays put), so WaitDrained-style
// polling terminates on replays.
func TestReceivedRecordsCountsIdempotentReplay(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 4, Lines: 1, MachinesPerLine: 2, JobsPerMachine: 2, PhaseSamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Shards: 2, QueueDepth: 16})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-replay", p))

	recs := machineRecords(p)
	mustStatus(t, postRetry(t, ts.URL+"/v1/plants/plant-replay/ingest", "application/x-ndjson", ndjson(recs)),
		http.StatusAccepted)
	waitDrained(t, ts.URL, "plant-replay", uint64(len(recs)))

	// Replay the identical trace: every record is an idempotent
	// overwrite, yet the drain target is still reached.
	mustStatus(t, postRetry(t, ts.URL+"/v1/plants/plant-replay/ingest", "application/x-ndjson", ndjson(recs)),
		http.StatusAccepted)
	waitDrained(t, ts.URL, "plant-replay", uint64(2*len(recs)))

	var st struct {
		Accepted uint64 `json:"accepted_records"`
		Received uint64 `json:"received_records"`
	}
	if err := json.Unmarshal(getBody(t, ts.URL+"/v1/plants/plant-replay/stats"), &st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted != uint64(len(recs)) {
		t.Fatalf("accepted = %d, want %d (replay must not double-count fresh cells)", st.Accepted, len(recs))
	}
	if st.Received != uint64(2*len(recs)) {
		t.Fatalf("received = %d, want %d", st.Received, 2*len(recs))
	}
}
