package server

import (
	"net"
	"sync/atomic"
)

// This file holds the deterministic fault hooks the scenario engine
// (internal/scenario) and the crash-recovery tests drive: a kill
// switch that abandons the process state the way kill -9 would, and a
// listener wrapper that injects connection resets at scheduled points.

// Kill abandons the whole server the way a crash would: queued batches
// are dropped unfolded, no final snapshot is written, WALs are closed
// as-is. Recovery must come from the data dir alone (Open on a fresh
// Server). It is a test/scenario hook — production shutdown is Close,
// which drains.
func (s *Server) Kill() {
	s.closed.Store(true)
	s.stopAllTailers()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, ps := range s.plants {
		//hod:allow(lockorder) crash simulation: abandoning plant goroutines under the fleet read lock is the point, and closed is already set so no admit path contends
		ps.kill()
	}
}

// FaultListener wraps a net.Listener with a deterministic
// connection-reset injector: each armed drop closes exactly one
// accepted connection immediately (with SO_LINGER zeroed, so TCP
// clients observe a hard reset rather than a graceful close). The
// scenario engine arms it between batches to simulate a flaky network
// path in front of an otherwise healthy server.
type FaultListener struct {
	net.Listener
	armed   atomic.Int64
	dropped atomic.Uint64
}

// NewFaultListener wraps ln. Pass the result to ServeListener.
func NewFaultListener(ln net.Listener) *FaultListener {
	return &FaultListener{Listener: ln}
}

// DropNext arms the listener to reset the next n accepted connections.
// Arming is cumulative and safe for concurrent use.
func (l *FaultListener) DropNext(n int) {
	if n > 0 {
		l.armed.Add(int64(n))
	}
}

// Dropped reports how many connections were reset so far.
func (l *FaultListener) Dropped() uint64 { return l.dropped.Load() }

// Accept accepts from the wrapped listener, consuming one armed drop
// per connection until the budget is spent.
func (l *FaultListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if !l.takeDrop() {
			return c, nil
		}
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetLinger(0) // RST, not FIN: clients see "connection reset"
		}
		_ = c.Close()
		l.dropped.Add(1)
	}
}

func (l *FaultListener) takeDrop() bool {
	for {
		n := l.armed.Load()
		if n <= 0 {
			return false
		}
		if l.armed.CompareAndSwap(n, n-1) {
			return true
		}
	}
}
