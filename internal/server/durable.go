package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/intern"
	"repro/internal/olap"
	"repro/internal/stats"
	"repro/internal/wal"
	"repro/pkg/hod/wire"
)

// The durability layer makes the ingest path survive crashes and
// restarts. Every accepted shard chunk is appended to a per-shard
// segmented WAL (internal/wal) before it is enqueued, and a background
// loop periodically snapshots the whole serving state of a plant —
// stores, roll-up leaves, alert ring, trackers, counters — compacting
// WAL segments the snapshot covers. On startup the state is rebuilt by
// applying the snapshot and replaying the WAL tail through the regular
// fold path; the idempotent set-at-index store makes over-replay
// harmless, so the recovery boundary only has to be conservative.

// walEntry is one durable unit of the legacy gob encoding: a shard
// chunk of validated records, or a batch of applied job metadata
// (shard 0's log). New record chunks are written as tagged binary
// frames (walRefTag below); gob remains for job metadata and for
// replaying logs written before the binary format existed.
type walEntry struct {
	Recs []wire.Record
	Jobs []wire.JobMeta
}

func encodeEntry(e walEntry) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeEntry(p []byte) (walEntry, error) {
	var e walEntry
	err := gob.NewDecoder(bytes.NewReader(p)).Decode(&e)
	return e, err
}

// walRefTag marks a WAL payload holding one wire.Frame (without its
// length prefix — the WAL already frames payloads) instead of a gob
// walEntry. A gob stream's first byte is an unsigned varint length in
// 0x01..0x7f (or a 0xf8..0xff length-of-length marker), so 0xB1 never
// collides with a legacy entry.
const walRefTag = 0xB1

// The admit path re-encodes each chunk into a frame without touching
// the JSON machinery; the scratch encode buffers and the replay-side
// decode frames are pooled so a steady ingest load allocates per batch,
// not per byte. wal.Log.AppendBuffered copies the payload synchronously,
// which is what makes returning the buffer to the pool right after the
// append safe.
var (
	walBufPool = sync.Pool{New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	}}
	walFramePool = sync.Pool{New: func() any { return new(wire.Frame) }}
)

// appendRefFrame encodes one admitted chunk onto dst as a wire.Frame.
// The identifier dictionaries are the plant's own intern tables (so the
// per-record columns are the interned ids verbatim, except jobs, which
// get a chunk-local dictionary to keep frames self-contained), and the
// sensor dictionary is walSensors — machine sensors followed by
// environment sensors — so environment refs encode without a separate
// marker column.
func (ps *plantState) appendRefFrame(dst []byte, f *wire.Frame, refs []recordRef) ([]byte, error) {
	f.Reset()
	f.Machines = append(f.Machines, ps.in.machines.Names()...)
	f.Phases = append(f.Phases, ps.in.phases.Names()...)
	f.Sensors = append(f.Sensors, ps.in.walSensors...)
	nSensors := int32(ps.in.sensors.Len())
	var jobLocal map[int32]int32
	for _, ref := range refs {
		if ref.machine < 0 {
			f.Machine = append(f.Machine, -1)
			f.Job = append(f.Job, -1)
			f.Phase = append(f.Phase, -1)
			f.Sensor = append(f.Sensor, nSensors+ref.sensor)
		} else {
			if jobLocal == nil {
				jobLocal = make(map[int32]int32, 8)
			}
			ji, ok := jobLocal[ref.job]
			if !ok {
				ji = int32(len(f.Jobs))
				f.Jobs = append(f.Jobs, ps.in.jobs.Name(ref.job))
				jobLocal[ref.job] = ji
			}
			f.Machine = append(f.Machine, ref.machine)
			f.Job = append(f.Job, ji)
			f.Phase = append(f.Phase, ref.phase)
			f.Sensor = append(f.Sensor, ref.sensor)
		}
		f.T = append(f.T, ref.t)
		f.Value = append(f.Value, ref.value)
	}
	out, err := wire.AppendFrame(dst, f)
	if err != nil {
		return dst, err
	}
	// Strip the length prefix AppendFrame wrote: the WAL length-frames
	// payloads itself, and replay hands the payload to DecodeFrame
	// directly.
	copy(out[len(dst):], out[len(dst)+4:])
	return out[:len(out)-4], nil
}

// Snapshot payload: the full serving state of one plant, captured at a
// shard batch boundary. ShardSeqs pins the WAL position the capture
// covers per shard — replay starts after it, compaction ends at it.
type (
	snapJob struct {
		Setup, CAQ      []float64
		Faulty, HasMeta bool
		Phases          map[string]map[string][]float64 // phase → sensor → samples
	}
	snapMachine struct {
		Rev  uint64
		Jobs map[string]snapJob
	}
	snapLeaf struct {
		Machine, Phase, Sensor string
		Roll                   stats.OnlineState
	}
	snapTracker struct {
		Machine, Sensor string
		EWMA            stats.EWMAState
	}
	snapCubeCell struct {
		Coord         []string // line, machine, job, phase, sensor
		Count         int
		Sum, Min, Max float64
	}
	snapState struct {
		Topo     wire.Topology
		Machines map[string]snapMachine
		Env      map[string][]float64
		EnvRev   uint64

		DataRev, Accepted, Received, Rejected, Shed uint64

		Leaves    []snapLeaf
		Trackers  []snapTracker
		CubeCells []snapCubeCell
		Alerts    []wire.Alert // oldest first
		AlertSeq  uint64       // plant-wide alert sequence high-water mark

		ShardSeqs   []uint64
		SnapshotRev uint64

		// JobInterns is the job intern table in id order, so a restore
		// reproduces the exact id assignment the snapshot was captured
		// under. Absent (nil) in snapshots from before interning; those
		// re-intern deterministically on apply.
		JobInterns []string
	}
)

func encodeState(st *snapState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeState(p []byte) (*snapState, error) {
	var st snapState
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// plantDur is one plant's durability attachment: its directory, the
// per-shard WALs, and the snapshot bookkeeping.
type plantDur struct {
	dir         string
	logs        []*wal.Log
	syncOnAdmit bool       // fsync policy is SyncAlways: sync before the 202 ack
	snapMu      sync.Mutex // one snapshot/compaction at a time
	snapRev     atomic.Uint64
	stop        chan struct{}
	done        chan struct{}
}

func (d *plantDur) close() {
	if d.stop != nil {
		close(d.stop)
		<-d.done
		d.stop = nil
	}
	for _, l := range d.logs {
		_ = l.Close()
	}
}

func (d *plantDur) segments() int {
	n := 0
	for _, l := range d.logs {
		n += l.Segments()
	}
	return n
}

const (
	plantMetaName = "meta.json"
	walDirPrefix  = "wal-shard-"

	// maxRestoreBytes is the floor of the restore body cap — a backup
	// carries a whole plant, not one ingest batch.
	maxRestoreBytes = 1 << 30
)

// validateState applies the ingest path's job-vector gate to a decoded
// backup: oversized vectors would be silently truncated by padVector at
// report-build time and non-finite ones would poison the level-2
// detectors — exactly what handleJobs rejects with 400.
func validateState(st *snapState) error {
	for machineID, sm := range st.Machines {
		for jobID, sj := range sm.Jobs {
			if len(sj.Setup) > st.Topo.SetupDims || len(sj.CAQ) > st.Topo.CAQDims {
				return fmt.Errorf("backup: machine %s job %s: setup/caq vector longer than the topology dims (%d/%d)",
					machineID, jobID, st.Topo.SetupDims, st.Topo.CAQDims)
			}
			for _, v := range sj.Setup {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("backup: machine %s job %s: non-finite setup value", machineID, jobID)
				}
			}
			for _, v := range sj.CAQ {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("backup: machine %s job %s: non-finite caq value", machineID, jobID)
				}
			}
		}
	}
	// Cube cells are fed back through olap.AddAggregate on apply; a
	// forged backup must not smuggle past the gates the live ingest
	// path enforces — non-finite aggregates (ErrNonFinite), wrong
	// arity, empty cells, or coordinate members carrying control
	// characters (which could collide with the cube's reserved key
	// separator). Rejecting here keeps applyState's apply loop
	// infallible for vetted state.
	for _, cc := range st.CubeCells {
		if len(cc.Coord) != len(cubeDims) {
			return fmt.Errorf("backup: cube cell %v: %w: coordinate arity %d, want %d",
				cc.Coord, olap.ErrSchema, len(cc.Coord), len(cubeDims))
		}
		if cc.Count <= 0 {
			return fmt.Errorf("backup: cube cell %v: %w: count %d", cc.Coord, olap.ErrSchema, cc.Count)
		}
		for _, m := range cc.Coord {
			if err := wire.ValidIdent("cube member", m); err != nil {
				return fmt.Errorf("backup: %w: %v", olap.ErrSchema, err)
			}
		}
		for _, v := range []float64{cc.Sum, cc.Min, cc.Max} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("backup: cube cell %v: %w", cc.Coord, olap.ErrNonFinite)
			}
		}
	}
	return nil
}

func walDirName(i int) string { return fmt.Sprintf("%s%03d", walDirPrefix, i) }

// plantDirName maps a plant id onto a filesystem-safe directory name.
func plantDirName(id string) string { return url.PathEscape(id) }

func (s *Server) walOptions() (wal.Options, error) {
	pol, err := wal.ParseSyncPolicy(s.opts.Fsync)
	if err != nil {
		return wal.Options{}, err
	}
	return wal.Options{Policy: pol, SegmentBytes: s.opts.SegmentBytes}, nil
}

// attachDur opens (creating if needed) the plant's durability
// directory: one WAL per shard. Shards must already be made.
func (ps *plantState) attachDur(dir string, wopts wal.Options) error {
	d := &plantDur{dir: dir, syncOnAdmit: wopts.Policy == wal.SyncAlways}
	for i := range ps.shards {
		l, err := wal.Open(filepath.Join(dir, walDirName(i)), wopts)
		if err != nil {
			d.close()
			return err
		}
		d.logs = append(d.logs, l)
	}
	ps.dur = d
	return nil
}

// persistMeta writes the registered topology so a restart can rebuild
// the plant before any snapshot exists.
func persistMeta(dir string, topo Topology) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(topo, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, plantMetaName), append(buf, '\n'), 0o644)
}

// startSnapshotLoop snapshots the plant every interval until close.
func (ps *plantState) startSnapshotLoop(interval time.Duration) {
	d := ps.dur
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go func() {
		defer close(d.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				if err := ps.writeSnapshot(); err != nil {
					// Swallowing this would mean unbounded WAL growth
					// with no operator signal; the next tick retries.
					log.Printf("server: snapshot of plant %s failed: %v", ps.topo.ID, err)
				}
			}
		}
	}()
}

// admit makes one shard chunk durable (when a WAL is attached) and
// enqueues it. admitMu keeps enqueue order equal to WAL sequence
// order, which is what lets foldedSeq act as the compaction boundary:
// every WAL entry at or below it is folded into memory. The fsync
// happens *after* admitMu is released: concurrent batches on a shard
// then share one group-committed fsync (wal.SyncTo) instead of
// serializing on the disk. If the fsync fails the caller returns 500
// — the batch may already be folding in memory, but the client never
// gets a 202 for data that is not on disk, and its retry is
// idempotent.
//
//hod:hotpath
func (ps *plantState) admit(idx int, chunk []recordRef) (bool, error) {
	sh := ps.shards[idx]
	if ps.dur == nil {
		return sh.q.TryPush(shardBatch{refs: chunk}), nil
	}
	bp := walBufPool.Get().(*[]byte)
	fr := walFramePool.Get().(*wire.Frame)
	payload, err := ps.appendRefFrame(append((*bp)[:0], walRefTag), fr, chunk)
	walFramePool.Put(fr)
	if err != nil {
		walBufPool.Put(bp)
		return false, err
	}
	log := ps.dur.logs[idx]
	sh.admitMu.Lock()
	//hod:allow(lockorder) admitMu exists to make WAL sequence order equal admit order; the buffered append is its critical section, and the fsync is group-committed after release via SyncTo
	seq, err := log.AppendBuffered(payload)
	// AppendBuffered copied the payload; the scratch buffer can go back
	// to the pool whatever happened next.
	*bp = payload
	walBufPool.Put(bp)
	if err != nil {
		sh.admitMu.Unlock()
		return false, err
	}
	// A full queue still sheds the batch with 429 even though its WAL
	// entry was written: depending on when the next snapshot compacts
	// past it, a crash-recovery may or may not fold it. Both outcomes
	// are within the 429 contract — the client was told the batch was
	// NOT admitted and must re-send, and its retry is idempotent
	// whether or not the shed entry resurfaced.
	admitted := sh.q.TryPush(shardBatch{seq: seq, refs: chunk})
	sh.admitMu.Unlock()
	if ps.dur.syncOnAdmit {
		if err := log.SyncTo(seq); err != nil {
			return admitted, err
		}
	}
	return admitted, nil
}

// appendJobs logs applied job metadata on shard 0's WAL. Metadata is
// applied to the store *before* this append: if the entry reaches the
// log, replaying it is idempotent; if the process dies in between, the
// client never got an ack and re-sends.
func (ps *plantState) appendJobs(metas []JobMeta) error {
	if ps.dur == nil || len(metas) == 0 {
		return nil
	}
	payload, err := encodeEntry(walEntry{Jobs: metas})
	if err != nil {
		return err
	}
	_, err = ps.dur.logs[0].Append(payload)
	return err
}

// captureState stops every shard worker at a batch boundary and copies
// the full serving state — the consistent cut that makes snapshot +
// WAL-tail replay reproduce exactly what an uninterrupted run holds.
func (ps *plantState) captureState() *snapState {
	for _, sh := range ps.shards {
		sh.foldMu.Lock()
	}
	defer func() {
		for _, sh := range ps.shards {
			sh.foldMu.Unlock()
		}
	}()

	st := &snapState{
		Topo:     ps.topo,
		Machines: make(map[string]snapMachine, len(ps.machines)),
		DataRev:  ps.dataRev.Load(),
		Accepted: ps.accepted.Load(),
		Received: ps.received.Load(),
		Rejected: ps.rejected.Load(),
		Shed:     ps.shed.Load(),
	}
	st.ShardSeqs = make([]uint64, len(ps.shards))
	for i, sh := range ps.shards {
		st.ShardSeqs[i] = sh.foldedSeq.Load()
	}
	st.JobInterns = ps.in.jobs.Names()
	for id, ms := range ps.machines {
		ms.mu.Lock()
		sm := snapMachine{Rev: ms.rev, Jobs: make(map[string]snapJob, len(ms.jobs))}
		for jid, js := range ms.jobs {
			sj := snapJob{
				Setup:   append([]float64(nil), js.setup...),
				CAQ:     append([]float64(nil), js.caq...),
				Faulty:  js.faulty,
				HasMeta: js.hasMeta,
				Phases:  make(map[string]map[string][]float64, len(js.phases)),
			}
			// The snapshot schema carries names, not ids: a backup must
			// restore into a process whose job-id assignment differs.
			for phID, g := range js.phases {
				if g == nil {
					continue
				}
				cells := make(map[string][]float64, len(g.bufs))
				for sID, buf := range g.bufs {
					if len(buf) == 0 {
						continue
					}
					cells[ps.topo.Sensors[sID]] = append([]float64(nil), buf...)
				}
				sj.Phases[ps.topo.Phases[phID]] = cells
			}
			sm.Jobs[jid] = sj
		}
		ms.mu.Unlock()
		st.Machines[id] = sm
	}
	ps.env.mu.Lock()
	st.EnvRev = ps.env.rev
	st.Env = make(map[string][]float64, len(ps.env.bufs))
	for id, buf := range ps.env.bufs {
		if len(buf) == 0 {
			continue
		}
		st.Env[ps.topo.EnvSensors[id]] = append([]float64(nil), buf...)
	}
	ps.env.mu.Unlock()
	for _, sh := range ps.shards {
		sh.rollMu.Lock()
		for k, o := range sh.roll {
			sk := ps.rollKeyOf(k)
			st.Leaves = append(st.Leaves, snapLeaf{Machine: sk.machine, Phase: sk.phase, Sensor: sk.sensor, Roll: o.State()})
		}
		for k, tr := range sh.trackers {
			st.Trackers = append(st.Trackers, snapTracker{
				Machine: ps.in.machines.Name(k.machine), Sensor: ps.in.sensors.Name(k.sensor), EWMA: tr.State(),
			})
		}
		sh.cube.Each(func(cell *olap.IntCell) {
			st.CubeCells = append(st.CubeCells, snapCubeCell{
				Coord: ps.cubeCoordOf(cell.Coord),
				Count: cell.Count, Sum: cell.Sum, Min: cell.Min, Max: cell.Max,
			})
		})
		sh.rollMu.Unlock()
	}
	// The shard cubes iterate in map order; sort the translated cells so
	// two captures of the same state encode to the same bytes.
	sort.Slice(st.CubeCells, func(i, j int) bool {
		a, b := st.CubeCells[i].Coord, st.CubeCells[j].Coord
		for d := range a {
			if a[d] != b[d] {
				return a[d] < b[d]
			}
		}
		return false
	})
	st.Alerts = ps.recentAlerts(0)
	ps.alertMu.Lock()
	st.AlertSeq = ps.alertSeq
	ps.alertMu.Unlock()
	return st
}

// applyState loads a captured snapshot into a quiescent plantState
// (shards made, workers not yet spawned). Roll-up leaves and trackers
// are routed by the *current* machine→shard hash, so a restart with a
// different shard count still lands them where the worker expects.
func (ps *plantState) applyState(st *snapState) {
	// Reproduce the job-id assignment the snapshot was captured under;
	// snapshots from before interning carry no table, so re-intern in
	// sorted machine/job order — deterministic regardless of the map
	// iteration the capture side used.
	if st.JobInterns != nil {
		ps.in.jobs = intern.NewDyn(st.JobInterns)
	} else {
		machineIDs := make([]string, 0, len(st.Machines))
		for id := range st.Machines {
			machineIDs = append(machineIDs, id)
		}
		sort.Strings(machineIDs)
		for _, id := range machineIDs {
			jobIDs := make([]string, 0, len(st.Machines[id].Jobs))
			for jid := range st.Machines[id].Jobs {
				jobIDs = append(jobIDs, jid)
			}
			sort.Strings(jobIDs)
			for _, jid := range jobIDs {
				ps.in.jobs.Intern(jid)
			}
		}
	}
	for id, sm := range st.Machines {
		ms := ps.machines[id]
		if ms == nil {
			continue // machine no longer in the registered topology
		}
		ms.rev = sm.Rev
		for jid, sj := range sm.Jobs {
			js := &jobStore{
				setup:   append([]float64(nil), sj.Setup...),
				caq:     append([]float64(nil), sj.CAQ...),
				faulty:  sj.Faulty,
				hasMeta: sj.HasMeta,
				phases:  make([]*cellGrid, ms.nPhases),
			}
			for ph, cells := range sj.Phases {
				phID, ok := ps.in.phases.ID(ph)
				if !ok {
					log.Printf("server: plant %s: dropping snapshot phase %q (not in the registered topology)", ps.topo.ID, ph)
					continue
				}
				g := &cellGrid{bufs: make([][]float64, ms.nSensors)}
				for sensor, buf := range cells {
					sID, ok := ps.in.sensors.ID(sensor)
					if !ok {
						log.Printf("server: plant %s: dropping snapshot sensor %q (not in the registered topology)", ps.topo.ID, sensor)
						continue
					}
					g.bufs[sID] = append([]float64(nil), buf...)
				}
				js.phases[phID] = g
			}
			ms.jobs[jid] = js
			ms.jobsByID[ps.in.jobs.Intern(jid)] = js
		}
	}
	ps.env.rev = st.EnvRev
	for sensor, buf := range st.Env {
		id, ok := ps.in.envSensors.ID(sensor)
		if !ok {
			log.Printf("server: plant %s: dropping snapshot environment sensor %q", ps.topo.ID, sensor)
			continue
		}
		ps.env.bufs[id] = append([]float64(nil), buf...)
	}
	ps.dataRev.Store(st.DataRev)
	ps.accepted.Store(st.Accepted)
	ps.received.Store(st.Received)
	ps.rejected.Store(st.Rejected)
	ps.shed.Store(st.Shed)
	for _, lf := range st.Leaves {
		mid, ok1 := ps.in.machines.ID(lf.Machine)
		pid, ok2 := ps.in.phases.ID(lf.Phase)
		sid, ok3 := ps.in.sensors.ID(lf.Sensor)
		if !ok1 || !ok2 || !ok3 {
			log.Printf("server: plant %s: dropping snapshot roll-up leaf %s/%s/%s", ps.topo.ID, lf.Machine, lf.Phase, lf.Sensor)
			continue
		}
		sh := ps.shards[ps.shardOf[mid]]
		o := stats.OnlineFromState(lf.Roll)
		sh.roll[rollRef{machine: mid, phase: pid, sensor: sid}] = &o
	}
	for _, tk := range st.Trackers {
		mid, ok1 := ps.in.machines.ID(tk.Machine)
		sid, ok2 := ps.in.sensors.ID(tk.Sensor)
		if !ok1 || !ok2 {
			log.Printf("server: plant %s: dropping snapshot tracker %s/%s", ps.topo.ID, tk.Machine, tk.Sensor)
			continue
		}
		sh := ps.shards[ps.shardOf[mid]]
		sh.trackers[trackRef{machine: mid, sensor: sid}] = stats.EWMAFromState(tk.EWMA)
	}
	for _, cc := range st.CubeCells {
		if len(cc.Coord) != len(cubeDims) {
			continue // cube schema drift in an old snapshot
		}
		lid, ok0 := ps.in.lines.ID(cc.Coord[0])
		mid, ok1 := ps.in.machines.ID(cc.Coord[1])
		pid, ok2 := ps.in.phases.ID(cc.Coord[3])
		sid, ok3 := ps.in.sensors.ID(cc.Coord[4])
		if !ok0 || !ok1 || !ok2 || !ok3 {
			log.Printf("server: plant %s: dropping snapshot cube cell %v (coordinate not in the registered topology)", ps.topo.ID, cc.Coord)
			continue
		}
		coord := olap.IntCoord{lid, mid, ps.in.jobs.Intern(cc.Coord[2]), pid, sid}
		// Coord[1] is the machine: route the cell to the shard whose
		// worker folds that machine under the current shard count.
		// AddAggregate cannot fail on vetted state: our own snapshots
		// hold only cells the fold path accepted, and restore bodies
		// passed validateState (arity, count, finiteness, separator).
		sh := ps.shards[ps.shardOf[mid]]
		if err := sh.cube.AddAggregate(coord, cc.Count, cc.Sum, cc.Min, cc.Max); err != nil {
			log.Printf("server: plant %s: dropping malformed snapshot cube cell %v: %v", ps.topo.ID, cc.Coord, err)
		}
	}
	alerts := st.Alerts
	if len(alerts) > alertRingCap {
		alerts = alerts[len(alerts)-alertRingCap:]
	}
	ps.alerts = append([]Alert(nil), alerts...)
	ps.alertHead = 0
	// Resume the alert sequence past everything the snapshot carries —
	// snapshots from before the sequence existed gob-decode AlertSeq as
	// zero, so fall back to the ring's own high-water mark.
	ps.alertSeq = st.AlertSeq
	for _, a := range alerts {
		if a.Seq > ps.alertSeq {
			ps.alertSeq = a.Seq
		}
	}
}

// writeSnapshot captures, persists, and compacts: the snapshot file is
// replaced atomically, then every WAL segment it fully covers is
// deleted.
func (ps *plantState) writeSnapshot() error {
	d := ps.dur
	if d == nil {
		return nil
	}
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	st := ps.captureState()
	rev := d.snapRev.Load() + 1
	st.SnapshotRev = rev
	payload, err := encodeState(st)
	if err != nil {
		return err
	}
	if err := wal.SaveSnapshot(d.dir, rev, payload); err != nil {
		return err
	}
	d.snapRev.Store(rev)
	var firstErr error
	for i, l := range d.logs {
		if i >= len(st.ShardSeqs) {
			break
		}
		if err := l.CompactThrough(st.ShardSeqs[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// recover rebuilds the serving state from snapshot + WAL tail, replays
// through the regular fold path, then re-baselines: a fresh snapshot
// is written and fully covered segments are compacted away, so the
// next restart starts from a short tail.
func (ps *plantState) recover() error {
	d := ps.dur
	rev, payload, err := wal.LoadSnapshot(d.dir)
	if err != nil {
		return err
	}
	var shardSeqs []uint64
	if payload != nil {
		st, err := decodeState(payload)
		if err != nil {
			return err
		}
		ps.applyState(st)
		d.snapRev.Store(rev)
		shardSeqs = st.ShardSeqs
	}
	// If the shard count changed since the snapshot, the per-shard
	// boundaries no longer line up — replay everything; over-replay is
	// idempotent.
	aligned := len(shardSeqs) == len(d.logs)
	for i, l := range d.logs {
		var after uint64
		if aligned {
			after = shardSeqs[i]
		}
		if err := l.Replay(after, func(seq uint64, p []byte) error {
			if err := ps.replayPayload(p); err != nil {
				return err
			}
			ps.shards[i].foldedSeq.Store(seq)
			return nil
		}); err != nil {
			return err
		}
	}
	// WAL directories beyond the current shard count (the previous run
	// used more shards): replay them fully, then drop them after the
	// re-baseline snapshot has captured their contents.
	strays, err := ps.strayWalDirs()
	if err != nil {
		return err
	}
	for _, dir := range strays {
		l, err := wal.Open(dir, wal.Options{Policy: wal.SyncNone})
		if err != nil {
			return err
		}
		err = l.Replay(0, func(_ uint64, p []byte) error {
			return ps.replayPayload(p)
		})
		l.Close()
		if err != nil {
			return err
		}
	}
	if err := ps.writeSnapshot(); err != nil {
		return err
	}
	for _, dir := range strays {
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
	}
	return nil
}

// replayPayload folds one WAL payload through the regular ingest path,
// dispatching on the leading tag byte: binary ref frames (walRefTag)
// re-resolve their dictionaries against the current intern tables;
// everything else is a legacy gob walEntry.
func (ps *plantState) replayPayload(p []byte) error {
	if len(p) > 0 && p[0] == walRefTag {
		var f wire.Frame
		if err := wire.DecodeFrame(p[1:], &f); err != nil {
			return err
		}
		refs, rejected, _ := ps.resolveFrame(nil, &f)
		ps.foldResolved(refs, rejected)
		return nil
	}
	ent, err := decodeEntry(p)
	if err != nil {
		return err
	}
	ps.replayEntry(ent)
	return nil
}

// replayEntry folds one legacy gob WAL entry.
func (ps *plantState) replayEntry(ent walEntry) {
	if len(ent.Recs) > 0 {
		refs, rejected, _ := ps.resolveRecords(nil, ent.Recs)
		ps.foldResolved(refs, rejected)
	}
	if len(ent.Jobs) > 0 {
		ps.applyJobMetas(ent.Jobs)
	}
}

// foldResolved folds re-resolved replay refs shard by shard. A record
// the current topology no longer resolves — the WAL was written under a
// different registration — counts as rejected, the same signal the live
// path gives its client.
func (ps *plantState) foldResolved(refs []recordRef, rejected int) {
	if rejected > 0 {
		ps.rejected.Add(uint64(rejected))
	}
	for idx, chunk := range ps.chunkRefs(refs) {
		if len(chunk) > 0 {
			ps.foldRefs(ps.shards[idx], chunk)
		}
	}
}

// applyJobMetas applies already-validated job metadata, advancing the
// data revision once if anything changed — shared by the HTTP handler
// and WAL replay.
func (ps *plantState) applyJobMetas(metas []JobMeta) {
	changed := false
	for _, m := range metas {
		ms := ps.machines[m.Machine]
		if ms == nil {
			continue // topology drift in a replayed entry
		}
		if ms.setMeta(ps.in.jobs.Intern(m.Job), m) {
			changed = true
		}
	}
	if changed {
		ps.dataRev.Add(1)
	}
}

func (ps *plantState) strayWalDirs() ([]string, error) {
	ents, err := os.ReadDir(ps.dur.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, walDirPrefix) {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimPrefix(name, walDirPrefix))
		if err != nil || idx < len(ps.shards) {
			continue
		}
		out = append(out, filepath.Join(ps.dur.dir, name))
	}
	return out, nil
}

// Open loads every plant persisted under Options.DataDir: topology
// from meta.json, state from snapshot + WAL replay. Call it once after
// New and before serving traffic; without a data dir it is a no-op.
func (s *Server) Open() error {
	if s.opts.DataDir == "" {
		return nil
	}
	if _, err := s.walOptions(); err != nil {
		return err // surface a bad -fsync value before first ingest
	}
	if err := os.MkdirAll(s.opts.DataDir, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(s.opts.DataDir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.opts.DataDir, e.Name(), plantMetaName)); err != nil {
			continue
		}
		if err := s.loadPlant(e.Name()); err != nil {
			return fmt.Errorf("server: recovering plant dir %s: %w", e.Name(), err)
		}
	}
	return nil
}

// persistNewPlant sets up the durability directory of a freshly
// registered plant: meta.json, empty WALs, and the snapshot loop.
// Called with s.mu held, before the plant becomes visible. On error —
// its own or a later one reported through the returned cleanup — the
// directory is removed again (when this call created it), so a restart
// cannot resurrect an empty ghost plant from a half-written meta.json
// and then refuse the operator's retry with 409.
func (s *Server) persistNewPlant(ps *plantState, topo Topology) (cleanup func(), err error) {
	wopts, err := s.walOptions()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(s.opts.DataDir, plantDirName(topo.ID))
	_, statErr := os.Stat(dir)
	created := os.IsNotExist(statErr)
	cleanup = func() {
		if ps.dur != nil {
			ps.dur.close()
			ps.dur = nil
		}
		if created {
			_ = os.RemoveAll(dir)
		}
	}
	if err := persistMeta(dir, topo); err != nil {
		cleanup()
		return nil, err
	}
	if err := ps.attachDur(dir, wopts); err != nil {
		cleanup()
		return nil, err
	}
	ps.startSnapshotLoop(s.opts.SnapshotInterval)
	return cleanup, nil
}

// loadPlant recovers one persisted plant directory into the registry.
func (s *Server) loadPlant(dirName string) error {
	dir := filepath.Join(s.opts.DataDir, dirName)
	buf, err := os.ReadFile(filepath.Join(dir, plantMetaName))
	if err != nil {
		return err
	}
	var topo Topology
	if err := json.Unmarshal(buf, &topo); err != nil {
		return err
	}
	topo = topoWithDefaults(topo)
	if err := topo.Validate(); err != nil {
		return err
	}
	wopts, err := s.walOptions()
	if err != nil {
		return err
	}
	ps := newPlantState(topo)
	ps.makeShards(s.opts.Shards, s.opts.QueueDepth)
	ps.alertThreshold = s.opts.AlertThreshold
	if err := ps.attachDur(dir, wopts); err != nil {
		return err
	}
	if err := ps.recover(); err != nil {
		ps.dur.close()
		return err
	}
	// Attach the push hook only after recovery: WAL replay rebuilds
	// state through the same fold path, and replaying history must not
	// re-emit it to live subscribers.
	ps.publish = s.hub.Publish
	ps.spawn()
	ps.startSnapshotLoop(s.opts.SnapshotInterval)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.plants[topo.ID]; exists {
		//hod:allow(lockorder) startup-only duplicate-load bail-out: the half-built plant never served traffic, so abandoning its goroutines under the fleet lock cannot stall a request
		ps.kill()
		return fmt.Errorf("plant %q loaded twice", topo.ID)
	}
	s.plants[topo.ID] = ps
	return nil
}
