package server

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/olap"
	"repro/internal/stats"
	"repro/internal/wal"
	"repro/pkg/hod/wire"
)

// The durability layer makes the ingest path survive crashes and
// restarts. Every accepted shard chunk is appended to a per-shard
// segmented WAL (internal/wal) before it is enqueued, and a background
// loop periodically snapshots the whole serving state of a plant —
// stores, roll-up leaves, alert ring, trackers, counters — compacting
// WAL segments the snapshot covers. On startup the state is rebuilt by
// applying the snapshot and replaying the WAL tail through the regular
// fold path; the idempotent set-at-index store makes over-replay
// harmless, so the recovery boundary only has to be conservative.

// walEntry is one durable unit: a shard chunk of validated records, or
// a batch of applied job metadata (shard 0's log). Encoded with gob —
// unlike JSON it round-trips the NaN-free floats and needs no escaping.
type walEntry struct {
	Recs []wire.Record
	Jobs []wire.JobMeta
}

func encodeEntry(e walEntry) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeEntry(p []byte) (walEntry, error) {
	var e walEntry
	err := gob.NewDecoder(bytes.NewReader(p)).Decode(&e)
	return e, err
}

// Snapshot payload: the full serving state of one plant, captured at a
// shard batch boundary. ShardSeqs pins the WAL position the capture
// covers per shard — replay starts after it, compaction ends at it.
type (
	snapJob struct {
		Setup, CAQ      []float64
		Faulty, HasMeta bool
		Phases          map[string]map[string][]float64 // phase → sensor → samples
	}
	snapMachine struct {
		Rev  uint64
		Jobs map[string]snapJob
	}
	snapLeaf struct {
		Machine, Phase, Sensor string
		Roll                   stats.OnlineState
	}
	snapTracker struct {
		Machine, Sensor string
		EWMA            stats.EWMAState
	}
	snapCubeCell struct {
		Coord         []string // line, machine, job, phase, sensor
		Count         int
		Sum, Min, Max float64
	}
	snapState struct {
		Topo     wire.Topology
		Machines map[string]snapMachine
		Env      map[string][]float64
		EnvRev   uint64

		DataRev, Accepted, Received, Rejected, Shed uint64

		Leaves    []snapLeaf
		Trackers  []snapTracker
		CubeCells []snapCubeCell
		Alerts    []wire.Alert // oldest first
		AlertSeq  uint64       // plant-wide alert sequence high-water mark

		ShardSeqs   []uint64
		SnapshotRev uint64
	}
)

func encodeState(st *snapState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeState(p []byte) (*snapState, error) {
	var st snapState
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// plantDur is one plant's durability attachment: its directory, the
// per-shard WALs, and the snapshot bookkeeping.
type plantDur struct {
	dir         string
	logs        []*wal.Log
	syncOnAdmit bool       // fsync policy is SyncAlways: sync before the 202 ack
	snapMu      sync.Mutex // one snapshot/compaction at a time
	snapRev     atomic.Uint64
	stop        chan struct{}
	done        chan struct{}
}

func (d *plantDur) close() {
	if d.stop != nil {
		close(d.stop)
		<-d.done
		d.stop = nil
	}
	for _, l := range d.logs {
		_ = l.Close()
	}
}

func (d *plantDur) segments() int {
	n := 0
	for _, l := range d.logs {
		n += l.Segments()
	}
	return n
}

const (
	plantMetaName = "meta.json"
	walDirPrefix  = "wal-shard-"

	// maxRestoreBytes is the floor of the restore body cap — a backup
	// carries a whole plant, not one ingest batch.
	maxRestoreBytes = 1 << 30
)

// validateState applies the ingest path's job-vector gate to a decoded
// backup: oversized vectors would be silently truncated by padVector at
// report-build time and non-finite ones would poison the level-2
// detectors — exactly what handleJobs rejects with 400.
func validateState(st *snapState) error {
	for machineID, sm := range st.Machines {
		for jobID, sj := range sm.Jobs {
			if len(sj.Setup) > st.Topo.SetupDims || len(sj.CAQ) > st.Topo.CAQDims {
				return fmt.Errorf("backup: machine %s job %s: setup/caq vector longer than the topology dims (%d/%d)",
					machineID, jobID, st.Topo.SetupDims, st.Topo.CAQDims)
			}
			for _, v := range sj.Setup {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("backup: machine %s job %s: non-finite setup value", machineID, jobID)
				}
			}
			for _, v := range sj.CAQ {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("backup: machine %s job %s: non-finite caq value", machineID, jobID)
				}
			}
		}
	}
	// Cube cells are fed back through olap.AddAggregate on apply; a
	// forged backup must not smuggle past the gates the live ingest
	// path enforces — non-finite aggregates (ErrNonFinite), wrong
	// arity, empty cells, or coordinate members carrying control
	// characters (which could collide with the cube's reserved key
	// separator). Rejecting here keeps applyState's apply loop
	// infallible for vetted state.
	for _, cc := range st.CubeCells {
		if len(cc.Coord) != len(cubeDims) {
			return fmt.Errorf("backup: cube cell %v: %w: coordinate arity %d, want %d",
				cc.Coord, olap.ErrSchema, len(cc.Coord), len(cubeDims))
		}
		if cc.Count <= 0 {
			return fmt.Errorf("backup: cube cell %v: %w: count %d", cc.Coord, olap.ErrSchema, cc.Count)
		}
		for _, m := range cc.Coord {
			if err := wire.ValidIdent("cube member", m); err != nil {
				return fmt.Errorf("backup: %w: %v", olap.ErrSchema, err)
			}
		}
		for _, v := range []float64{cc.Sum, cc.Min, cc.Max} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("backup: cube cell %v: %w", cc.Coord, olap.ErrNonFinite)
			}
		}
	}
	return nil
}

func walDirName(i int) string { return fmt.Sprintf("%s%03d", walDirPrefix, i) }

// plantDirName maps a plant id onto a filesystem-safe directory name.
func plantDirName(id string) string { return url.PathEscape(id) }

func (s *Server) walOptions() (wal.Options, error) {
	pol, err := wal.ParseSyncPolicy(s.opts.Fsync)
	if err != nil {
		return wal.Options{}, err
	}
	return wal.Options{Policy: pol, SegmentBytes: s.opts.SegmentBytes}, nil
}

// attachDur opens (creating if needed) the plant's durability
// directory: one WAL per shard. Shards must already be made.
func (ps *plantState) attachDur(dir string, wopts wal.Options) error {
	d := &plantDur{dir: dir, syncOnAdmit: wopts.Policy == wal.SyncAlways}
	for i := range ps.shards {
		l, err := wal.Open(filepath.Join(dir, walDirName(i)), wopts)
		if err != nil {
			d.close()
			return err
		}
		d.logs = append(d.logs, l)
	}
	ps.dur = d
	return nil
}

// persistMeta writes the registered topology so a restart can rebuild
// the plant before any snapshot exists.
func persistMeta(dir string, topo Topology) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(topo, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, plantMetaName), append(buf, '\n'), 0o644)
}

// startSnapshotLoop snapshots the plant every interval until close.
func (ps *plantState) startSnapshotLoop(interval time.Duration) {
	d := ps.dur
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go func() {
		defer close(d.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				if err := ps.writeSnapshot(); err != nil {
					// Swallowing this would mean unbounded WAL growth
					// with no operator signal; the next tick retries.
					log.Printf("server: snapshot of plant %s failed: %v", ps.topo.ID, err)
				}
			}
		}
	}()
}

// admit makes one shard chunk durable (when a WAL is attached) and
// enqueues it. admitMu keeps enqueue order equal to WAL sequence
// order, which is what lets foldedSeq act as the compaction boundary:
// every WAL entry at or below it is folded into memory. The fsync
// happens *after* admitMu is released: concurrent batches on a shard
// then share one group-committed fsync (wal.SyncTo) instead of
// serializing on the disk. If the fsync fails the caller returns 500
// — the batch may already be folding in memory, but the client never
// gets a 202 for data that is not on disk, and its retry is
// idempotent.
func (ps *plantState) admit(idx int, chunk []Record) (bool, error) {
	sh := ps.shards[idx]
	if ps.dur == nil {
		return sh.q.TryPush(shardBatch{recs: chunk}), nil
	}
	payload, err := encodeEntry(walEntry{Recs: chunk})
	if err != nil {
		return false, err
	}
	log := ps.dur.logs[idx]
	sh.admitMu.Lock()
	seq, err := log.AppendBuffered(payload)
	if err != nil {
		sh.admitMu.Unlock()
		return false, err
	}
	// A full queue still sheds the batch with 429 even though its WAL
	// entry was written: depending on when the next snapshot compacts
	// past it, a crash-recovery may or may not fold it. Both outcomes
	// are within the 429 contract — the client was told the batch was
	// NOT admitted and must re-send, and its retry is idempotent
	// whether or not the shed entry resurfaced.
	admitted := sh.q.TryPush(shardBatch{seq: seq, recs: chunk})
	sh.admitMu.Unlock()
	if ps.dur.syncOnAdmit {
		if err := log.SyncTo(seq); err != nil {
			return admitted, err
		}
	}
	return admitted, nil
}

// appendJobs logs applied job metadata on shard 0's WAL. Metadata is
// applied to the store *before* this append: if the entry reaches the
// log, replaying it is idempotent; if the process dies in between, the
// client never got an ack and re-sends.
func (ps *plantState) appendJobs(metas []JobMeta) error {
	if ps.dur == nil || len(metas) == 0 {
		return nil
	}
	payload, err := encodeEntry(walEntry{Jobs: metas})
	if err != nil {
		return err
	}
	_, err = ps.dur.logs[0].Append(payload)
	return err
}

// captureState stops every shard worker at a batch boundary and copies
// the full serving state — the consistent cut that makes snapshot +
// WAL-tail replay reproduce exactly what an uninterrupted run holds.
func (ps *plantState) captureState() *snapState {
	for _, sh := range ps.shards {
		sh.foldMu.Lock()
	}
	defer func() {
		for _, sh := range ps.shards {
			sh.foldMu.Unlock()
		}
	}()

	st := &snapState{
		Topo:     ps.topo,
		Machines: make(map[string]snapMachine, len(ps.machines)),
		DataRev:  ps.dataRev.Load(),
		Accepted: ps.accepted.Load(),
		Received: ps.received.Load(),
		Rejected: ps.rejected.Load(),
		Shed:     ps.shed.Load(),
	}
	st.ShardSeqs = make([]uint64, len(ps.shards))
	for i, sh := range ps.shards {
		st.ShardSeqs[i] = sh.foldedSeq.Load()
	}
	for id, ms := range ps.machines {
		ms.mu.Lock()
		sm := snapMachine{Rev: ms.rev, Jobs: make(map[string]snapJob, len(ms.jobs))}
		for jid, js := range ms.jobs {
			sj := snapJob{
				Setup:   append([]float64(nil), js.setup...),
				CAQ:     append([]float64(nil), js.caq...),
				Faulty:  js.faulty,
				HasMeta: js.hasMeta,
				Phases:  make(map[string]map[string][]float64, len(js.phases)),
			}
			for ph, g := range js.phases {
				cells := make(map[string][]float64, len(g.cells))
				for sensor, buf := range g.cells {
					cells[sensor] = append([]float64(nil), buf...)
				}
				sj.Phases[ph] = cells
			}
			sm.Jobs[jid] = sj
		}
		ms.mu.Unlock()
		st.Machines[id] = sm
	}
	ps.env.mu.Lock()
	st.EnvRev = ps.env.rev
	st.Env = make(map[string][]float64, len(ps.env.sensors))
	for sensor, buf := range ps.env.sensors {
		st.Env[sensor] = append([]float64(nil), buf...)
	}
	ps.env.mu.Unlock()
	for _, sh := range ps.shards {
		sh.rollMu.Lock()
		for k, o := range sh.roll {
			st.Leaves = append(st.Leaves, snapLeaf{Machine: k.machine, Phase: k.phase, Sensor: k.sensor, Roll: o.State()})
		}
		for k, tr := range sh.trackers {
			st.Trackers = append(st.Trackers, snapTracker{Machine: k.machine, Sensor: k.sensor, EWMA: tr.State()})
		}
		for _, cell := range sh.cube.Cells() {
			st.CubeCells = append(st.CubeCells, snapCubeCell{
				Coord: append([]string(nil), cell.Coord...),
				Count: cell.Count, Sum: cell.Sum, Min: cell.Min, Max: cell.Max,
			})
		}
		sh.rollMu.Unlock()
	}
	st.Alerts = ps.recentAlerts(0)
	ps.alertMu.Lock()
	st.AlertSeq = ps.alertSeq
	ps.alertMu.Unlock()
	return st
}

// applyState loads a captured snapshot into a quiescent plantState
// (shards made, workers not yet spawned). Roll-up leaves and trackers
// are routed by the *current* machine→shard hash, so a restart with a
// different shard count still lands them where the worker expects.
func (ps *plantState) applyState(st *snapState) {
	for id, sm := range st.Machines {
		ms := ps.machines[id]
		if ms == nil {
			continue // machine no longer in the registered topology
		}
		ms.rev = sm.Rev
		for jid, sj := range sm.Jobs {
			js := &jobStore{
				setup:   append([]float64(nil), sj.Setup...),
				caq:     append([]float64(nil), sj.CAQ...),
				faulty:  sj.Faulty,
				hasMeta: sj.HasMeta,
				phases:  make(map[string]*cellGrid, len(sj.Phases)),
			}
			for ph, cells := range sj.Phases {
				g := &cellGrid{cells: make(map[string][]float64, len(cells))}
				for sensor, buf := range cells {
					g.cells[sensor] = append([]float64(nil), buf...)
				}
				js.phases[ph] = g
			}
			ms.jobs[jid] = js
		}
	}
	ps.env.rev = st.EnvRev
	for sensor, buf := range st.Env {
		ps.env.sensors[sensor] = append([]float64(nil), buf...)
	}
	ps.dataRev.Store(st.DataRev)
	ps.accepted.Store(st.Accepted)
	ps.received.Store(st.Received)
	ps.rejected.Store(st.Rejected)
	ps.shed.Store(st.Shed)
	for _, lf := range st.Leaves {
		sh := ps.shardFor(lf.Machine)
		o := stats.OnlineFromState(lf.Roll)
		sh.roll[rollKey{machine: lf.Machine, phase: lf.Phase, sensor: lf.Sensor}] = &o
	}
	for _, tk := range st.Trackers {
		sh := ps.shardFor(tk.Machine)
		sh.trackers[rollKey{machine: tk.Machine, sensor: tk.Sensor}] = stats.EWMAFromState(tk.EWMA)
	}
	for _, cc := range st.CubeCells {
		if len(cc.Coord) != len(cubeDims) {
			continue // cube schema drift in an old snapshot
		}
		// Coord[1] is the machine: route the cell to the shard whose
		// worker folds that machine under the current shard count.
		// AddAggregate cannot fail on vetted state: our own snapshots
		// hold only cells the fold path accepted, and restore bodies
		// passed validateState (arity, count, finiteness, separator).
		sh := ps.shardFor(cc.Coord[1])
		if err := sh.cube.AddAggregate(cc.Coord, cc.Count, cc.Sum, cc.Min, cc.Max); err != nil {
			log.Printf("server: plant %s: dropping malformed snapshot cube cell %v: %v", ps.topo.ID, cc.Coord, err)
		}
	}
	alerts := st.Alerts
	if len(alerts) > alertRingCap {
		alerts = alerts[len(alerts)-alertRingCap:]
	}
	ps.alerts = append([]Alert(nil), alerts...)
	ps.alertHead = 0
	// Resume the alert sequence past everything the snapshot carries —
	// snapshots from before the sequence existed gob-decode AlertSeq as
	// zero, so fall back to the ring's own high-water mark.
	ps.alertSeq = st.AlertSeq
	for _, a := range alerts {
		if a.Seq > ps.alertSeq {
			ps.alertSeq = a.Seq
		}
	}
}

// writeSnapshot captures, persists, and compacts: the snapshot file is
// replaced atomically, then every WAL segment it fully covers is
// deleted.
func (ps *plantState) writeSnapshot() error {
	d := ps.dur
	if d == nil {
		return nil
	}
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	st := ps.captureState()
	rev := d.snapRev.Load() + 1
	st.SnapshotRev = rev
	payload, err := encodeState(st)
	if err != nil {
		return err
	}
	if err := wal.SaveSnapshot(d.dir, rev, payload); err != nil {
		return err
	}
	d.snapRev.Store(rev)
	var firstErr error
	for i, l := range d.logs {
		if i >= len(st.ShardSeqs) {
			break
		}
		if err := l.CompactThrough(st.ShardSeqs[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// recover rebuilds the serving state from snapshot + WAL tail, replays
// through the regular fold path, then re-baselines: a fresh snapshot
// is written and fully covered segments are compacted away, so the
// next restart starts from a short tail.
func (ps *plantState) recover() error {
	d := ps.dur
	rev, payload, err := wal.LoadSnapshot(d.dir)
	if err != nil {
		return err
	}
	var shardSeqs []uint64
	if payload != nil {
		st, err := decodeState(payload)
		if err != nil {
			return err
		}
		ps.applyState(st)
		d.snapRev.Store(rev)
		shardSeqs = st.ShardSeqs
	}
	// If the shard count changed since the snapshot, the per-shard
	// boundaries no longer line up — replay everything; over-replay is
	// idempotent.
	aligned := len(shardSeqs) == len(d.logs)
	for i, l := range d.logs {
		var after uint64
		if aligned {
			after = shardSeqs[i]
		}
		if err := l.Replay(after, func(seq uint64, p []byte) error {
			ent, err := decodeEntry(p)
			if err != nil {
				return err
			}
			ps.replayEntry(ent)
			ps.shards[i].foldedSeq.Store(seq)
			return nil
		}); err != nil {
			return err
		}
	}
	// WAL directories beyond the current shard count (the previous run
	// used more shards): replay them fully, then drop them after the
	// re-baseline snapshot has captured their contents.
	strays, err := ps.strayWalDirs()
	if err != nil {
		return err
	}
	for _, dir := range strays {
		l, err := wal.Open(dir, wal.Options{Policy: wal.SyncNone})
		if err != nil {
			return err
		}
		err = l.Replay(0, func(_ uint64, p []byte) error {
			ent, err := decodeEntry(p)
			if err != nil {
				return err
			}
			ps.replayEntry(ent)
			return nil
		})
		l.Close()
		if err != nil {
			return err
		}
	}
	if err := ps.writeSnapshot(); err != nil {
		return err
	}
	for _, dir := range strays {
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
	}
	return nil
}

// replayEntry folds one WAL entry through the regular ingest path.
func (ps *plantState) replayEntry(ent walEntry) {
	if len(ent.Recs) > 0 {
		chunks := make(map[int][]Record)
		for _, rec := range ent.Recs {
			idx := ps.shardIndexFor(rec.Machine)
			chunks[idx] = append(chunks[idx], rec)
		}
		for idx, recs := range chunks {
			ps.foldBatch(ps.shards[idx], recs)
		}
	}
	if len(ent.Jobs) > 0 {
		ps.applyJobMetas(ent.Jobs)
	}
}

// applyJobMetas applies already-validated job metadata, advancing the
// data revision once if anything changed — shared by the HTTP handler
// and WAL replay.
func (ps *plantState) applyJobMetas(metas []JobMeta) {
	changed := false
	for _, m := range metas {
		ms := ps.machines[m.Machine]
		if ms == nil {
			continue // topology drift in a replayed entry
		}
		if ms.setMeta(m) {
			changed = true
		}
	}
	if changed {
		ps.dataRev.Add(1)
	}
}

func (ps *plantState) strayWalDirs() ([]string, error) {
	ents, err := os.ReadDir(ps.dur.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, walDirPrefix) {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimPrefix(name, walDirPrefix))
		if err != nil || idx < len(ps.shards) {
			continue
		}
		out = append(out, filepath.Join(ps.dur.dir, name))
	}
	return out, nil
}

// Open loads every plant persisted under Options.DataDir: topology
// from meta.json, state from snapshot + WAL replay. Call it once after
// New and before serving traffic; without a data dir it is a no-op.
func (s *Server) Open() error {
	if s.opts.DataDir == "" {
		return nil
	}
	if _, err := s.walOptions(); err != nil {
		return err // surface a bad -fsync value before first ingest
	}
	if err := os.MkdirAll(s.opts.DataDir, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(s.opts.DataDir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.opts.DataDir, e.Name(), plantMetaName)); err != nil {
			continue
		}
		if err := s.loadPlant(e.Name()); err != nil {
			return fmt.Errorf("server: recovering plant dir %s: %w", e.Name(), err)
		}
	}
	return nil
}

// persistNewPlant sets up the durability directory of a freshly
// registered plant: meta.json, empty WALs, and the snapshot loop.
// Called with s.mu held, before the plant becomes visible. On error —
// its own or a later one reported through the returned cleanup — the
// directory is removed again (when this call created it), so a restart
// cannot resurrect an empty ghost plant from a half-written meta.json
// and then refuse the operator's retry with 409.
func (s *Server) persistNewPlant(ps *plantState, topo Topology) (cleanup func(), err error) {
	wopts, err := s.walOptions()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(s.opts.DataDir, plantDirName(topo.ID))
	_, statErr := os.Stat(dir)
	created := os.IsNotExist(statErr)
	cleanup = func() {
		if ps.dur != nil {
			ps.dur.close()
			ps.dur = nil
		}
		if created {
			_ = os.RemoveAll(dir)
		}
	}
	if err := persistMeta(dir, topo); err != nil {
		cleanup()
		return nil, err
	}
	if err := ps.attachDur(dir, wopts); err != nil {
		cleanup()
		return nil, err
	}
	ps.startSnapshotLoop(s.opts.SnapshotInterval)
	return cleanup, nil
}

// loadPlant recovers one persisted plant directory into the registry.
func (s *Server) loadPlant(dirName string) error {
	dir := filepath.Join(s.opts.DataDir, dirName)
	buf, err := os.ReadFile(filepath.Join(dir, plantMetaName))
	if err != nil {
		return err
	}
	var topo Topology
	if err := json.Unmarshal(buf, &topo); err != nil {
		return err
	}
	topo = topoWithDefaults(topo)
	if err := topo.Validate(); err != nil {
		return err
	}
	wopts, err := s.walOptions()
	if err != nil {
		return err
	}
	ps := newPlantState(topo)
	ps.makeShards(s.opts.Shards, s.opts.QueueDepth)
	ps.alertThreshold = s.opts.AlertThreshold
	if err := ps.attachDur(dir, wopts); err != nil {
		return err
	}
	if err := ps.recover(); err != nil {
		ps.dur.close()
		return err
	}
	// Attach the push hook only after recovery: WAL replay rebuilds
	// state through the same fold path, and replaying history must not
	// re-emit it to live subscribers.
	ps.publish = s.hub.Publish
	ps.spawn()
	ps.startSnapshotLoop(s.opts.SnapshotInterval)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.plants[topo.ID]; exists {
		ps.kill()
		return fmt.Errorf("plant %q loaded twice", topo.ID)
	}
	s.plants[topo.ID] = ps
	return nil
}
