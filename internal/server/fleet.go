package server

import (
	"fmt"
	"hash/fnv"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/olap"
	"repro/internal/plant"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/timeseries"
	"repro/pkg/hod/wire"
)

// rollKey addresses one leaf of the roll-up tree: the accumulator of
// one sensor within one phase of one machine. Shards keep their own
// leaf maps; queries merge them (stats.Online.Merge) and then fold the
// merged leaves up the sensor→phase→machine→line→plant levels.
type rollKey struct {
	machine, phase, sensor string
}

// rollRef is the interned form of rollKey the fold path keys the shard
// maps with — int comparisons and no per-record string hashing; ids
// translate back to rollKey at the query/snapshot boundary.
type rollRef struct {
	machine, phase, sensor int32
}

// trackRef keys the per-(machine, sensor) alert trackers.
type trackRef struct {
	machine, sensor int32
}

// shardBatch is one admitted unit of work: the resolved records plus
// the WAL sequence they were logged under (0 when durability is off).
type shardBatch struct {
	seq  uint64
	refs []recordRef
}

// shard is one ingest pipeline: a bounded queue feeding a single
// worker goroutine that owns the stores of the machines hashed onto
// it. Per-machine ordering is therefore free. The roll-up leaves and
// alert trackers are folded under rollMu (one lock round per fresh
// record) so the read side — roll-up queries and durability snapshots
// — can copy them consistently.
type shard struct {
	q *stream.Queue[shardBatch]

	// admitMu serializes WAL-append + enqueue so queue order equals
	// WAL sequence order — the invariant that makes foldedSeq a valid
	// compaction boundary. Only taken when durability is on.
	admitMu sync.Mutex

	// foldMu is held by the worker around each batch fold; the
	// snapshotter takes every shard's foldMu to capture a consistent
	// cut of stores + roll-ups + trackers at a batch boundary.
	foldMu    sync.Mutex
	foldedSeq atomic.Uint64 // newest WAL seq folded into memory

	dead atomic.Bool // kill(): drop queued batches instead of folding

	rollMu   sync.Mutex
	roll     map[rollRef]*stats.Online
	trackers map[trackRef]*stats.EWMATracker

	// cube holds this shard's slice of the plant's OLAP cube (the
	// machines hashed here), folded alongside the roll-up leaves under
	// rollMu; queries merge the shard cubes (translating interned
	// coordinates back to strings). cubeLast memoises the last-touched
	// cell: consecutive trace records almost always land in the same
	// cell (t varies fastest), so the hot path skips even the
	// array-keyed map access. Guarded by rollMu like the cube itself.
	cube     *olap.IntCube
	cubeLast struct {
		coord olap.IntCoord
		cell  *olap.IntCell
	}
}

// Alert is one streaming detection event raised at ingest time by the
// per-sensor EWMA tracker — the live complement of the batch report.
// Its wire shape is shared with the typed client.
type Alert = wire.Alert

// plantState is the serving state of one registered plant: sharded
// ingest on the write side, an incrementally maintained plant snapshot
// plus hierarchy/report caches on the read side.
type plantState struct {
	topo        Topology
	machineLine map[string]string

	// in is the interned identifier universe assigned at registration
	// (plus the growable job table); mstores mirrors machines by
	// interned machine id, and shardOf precomputes each machine's
	// pipeline index so routing never hashes a string per record.
	in      *plantInterns
	shardOf []int32

	machines map[string]*machineStore
	mstores  []*machineStore
	env      *envStore
	dataRev  atomic.Uint64

	shards []*shard
	wg     sync.WaitGroup

	alertMu   sync.Mutex
	alerts    []Alert
	alertHead int
	alertSeq  uint64 // plant-wide alert sequence, assigned under alertMu

	// publish, when non-nil, fans fold-path events out to the live
	// push gateway. It is called at batch boundaries only (end of
	// foldBatch) so event order follows the deterministic fold order,
	// and it must never block — the hub's bounded coalescing queues
	// guarantee that.
	publish func(wire.Event)

	accepted atomic.Uint64 // fresh records folded in
	received atomic.Uint64 // valid records folded, incl. idempotent replays
	rejected atomic.Uint64 // records failing validation
	shed     atomic.Uint64 // batches refused with 429

	alertThreshold float64

	// dur is the durability attachment (nil when the server runs
	// without a data dir): per-shard WALs plus snapshot state.
	dur *plantDur

	// Cube query cache: the shard cubes merged at one data revision.
	// Rebuilt only when ingest advances the revision, so a burst of
	// queries against a quiescent plant merges once (same pattern as
	// the report-side snapshot cache). Guarded by cubeMu.
	cubeMu       sync.Mutex
	cubeCache    *olap.Cube
	cubeCacheRev uint64

	// Read side, all guarded by reportMu: the assembled snapshot, the
	// revision it reflects, per-machine build revisions and built
	// machine objects, the shared PlantCache, per-machine hierarchies,
	// and the per-(machine, level) report cache.
	reportMu     sync.Mutex
	assembled    *plant.Plant
	assembledRev uint64
	machineRevAt map[string]uint64
	envRevAt     uint64
	built        map[string]*plant.Machine
	cache        *core.PlantCache
	hier         map[string]*core.Hierarchy
	reports      map[reportKey]*core.Report
}

type reportKey struct {
	machine string
	level   core.Level
}

const alertRingCap = 512

func newPlantState(topo Topology) *plantState {
	ps := &plantState{
		topo:         topo,
		machineLine:  make(map[string]string),
		in:           newPlantInterns(topo),
		machines:     make(map[string]*machineStore),
		env:          newEnvStore(len(topo.EnvSensors)),
		machineRevAt: make(map[string]uint64),
		built:        make(map[string]*plant.Machine),
		hier:         make(map[string]*core.Hierarchy),
		reports:      make(map[reportKey]*core.Report),
	}
	ps.mstores = make([]*machineStore, ps.in.machines.Len())
	for _, l := range topo.Lines {
		for _, m := range l.Machines {
			ps.machineLine[m] = l.ID
			ms := newMachineStore(len(topo.Phases), len(topo.Sensors))
			ps.machines[m] = ms
			if id, ok := ps.in.machines.ID(m); ok {
				ps.mstores[id] = ms
			}
		}
	}
	return ps
}

// makeShards builds the shard queues without workers (split out so
// tests can exercise admission without a consumer).
func (ps *plantState) makeShards(shards, queueDepth int) {
	if shards < 1 {
		shards = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	ps.shards = make([]*shard, shards)
	for i := range ps.shards {
		ps.shards[i] = &shard{
			q:        stream.NewQueue[shardBatch](queueDepth),
			roll:     make(map[rollRef]*stats.Online),
			trackers: make(map[trackRef]*stats.EWMATracker),
			cube:     olap.NewIntCube(),
		}
	}
	// Shard routing is decided once per machine at registration — the
	// hash function is unchanged (so shard ownership survives restarts
	// and mixed-version clusters), it just never runs per record again.
	ps.shardOf = make([]int32, ps.in.machines.Len())
	for id, name := range ps.in.machines.Names() {
		ps.shardOf[id] = int32(hashShardIndex(name, len(ps.shards)))
	}
}

// start spins up the shard pipelines.
func (ps *plantState) start(shards, queueDepth int, alertThreshold float64) {
	ps.makeShards(shards, queueDepth)
	ps.alertThreshold = alertThreshold
	ps.spawn()
}

// spawn starts the shard workers over already-made shards — split from
// start so the durable open path can replay the WAL into quiescent
// shards first.
func (ps *plantState) spawn() {
	for _, sh := range ps.shards {
		ps.wg.Add(1)
		go ps.work(sh)
	}
}

// close stops admission, drains every shard's backlog, and — when
// durability is on — writes a final snapshot, compacts the WAL, and
// closes it.
func (ps *plantState) close() {
	for _, sh := range ps.shards {
		sh.q.Close()
	}
	ps.wg.Wait()
	if ps.dur != nil {
		_ = ps.writeSnapshot()
		ps.dur.close()
	}
}

// kill abandons the plant the way a crash would: queued batches are
// dropped unfolded and no final snapshot is taken, so recovery must
// come from snapshot + WAL replay alone. Test hook for the
// kill-and-restart recovery contract.
func (ps *plantState) kill() {
	for _, sh := range ps.shards {
		sh.dead.Store(true)
		sh.q.Close()
	}
	ps.wg.Wait()
	if ps.dur != nil {
		ps.dur.close()
	}
}

// hashShardIndex is the machine→shard placement function, evaluated
// once per machine when the shards are made.
func hashShardIndex(machine string, shards int) int {
	if shards == 1 || machine == "" {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(machine))
	return int(h.Sum32()) % shards
}

// shardIndexFor routes a machine to its pipeline index; environment
// records ride on shard 0. Registered machines hit the precomputed
// table; unknown names (possible on cold paths like stray WAL replay)
// fall back to the hash.
func (ps *plantState) shardIndexFor(machine string) int {
	if id, ok := ps.in.machines.ID(machine); ok {
		return int(ps.shardOf[id])
	}
	return hashShardIndex(machine, len(ps.shards))
}

func (ps *plantState) shardFor(machine string) *shard {
	return ps.shards[ps.shardIndexFor(machine)]
}

// work is the shard worker loop: fold each admitted batch into the
// stores, the roll-up accumulators, and the online alert trackers.
func (ps *plantState) work(sh *shard) {
	defer ps.wg.Done()
	for {
		batch, ok := sh.q.Pop()
		if !ok {
			return
		}
		if sh.dead.Load() {
			continue // killed: simulate losing the backlog
		}
		sh.foldMu.Lock()
		ps.foldRefs(sh, batch.refs)
		if batch.seq > 0 {
			sh.foldedSeq.Store(batch.seq)
		}
		sh.foldMu.Unlock()
	}
}

// foldRefs folds one admitted batch of interned records into a shard's
// state. It is the single ingest fold path: the shard workers run it
// live, and the durable open path replays snapshot-uncovered WAL
// entries through it — replay is idempotent by construction because the
// store reports replayed cells as not fresh, which skips the roll-up
// and tracker side effects exactly like a client's 429 retry does.
// Every per-record step is id-keyed: no string is hashed, joined, or
// allocated between here and the stores.
func (ps *plantState) foldRefs(sh *shard, refs []recordRef) {
	var wrote bool
	var freshRecs uint64
	var newAlerts []Alert
	for _, ref := range refs {
		if ref.machine < 0 {
			fresh, changed := ps.env.set(ref.sensor, int(ref.t), ref.value)
			if fresh {
				freshRecs++
			}
			wrote = wrote || changed
			continue
		}
		ms := ps.mstores[ref.machine]
		fresh, changed := ms.setRef(ref, ps.in.jobs)
		wrote = wrote || changed // corrections must reach the next snapshot
		if !fresh {
			// Idempotent replay of an already-seen cell: the store
			// (and thus the report) carries any corrected value,
			// but the streaming roll-up and alert trackers fold
			// each cell's first-seen value only — Welford
			// accumulators cannot retract an observation.
			continue
		}
		freshRecs++
		key := rollRef{ref.machine, ref.phase, ref.sensor}
		trKey := trackRef{machine: ref.machine, sensor: ref.sensor}
		sh.rollMu.Lock()
		o, ok := sh.roll[key]
		if !ok {
			o = &stats.Online{}
			sh.roll[key] = o
		}
		o.Add(ref.value)
		// The OLAP cube folds each cell's first-seen value, exactly
		// like the roll-up leaves: its aggregates cannot retract an
		// observation. Live traffic cannot fail these folds (admission
		// guarantees finite values, the arity is fixed) — but a WAL
		// replay can still surface a sum overflow the cube refuses. The
		// store and roll-up still folded it, so log the divergence
		// instead of dropping it silently: /v1/cube would otherwise
		// undercount against /v1/rollup with no operator signal.
		cl := &sh.cubeLast
		coord := olap.IntCoord{ps.in.machineLine[ref.machine], ref.machine, ref.job, ref.phase, ref.sensor}
		var cubeErr error
		if cl.cell != nil && cl.coord == coord {
			cubeErr = cl.cell.Observe(ref.value)
		} else {
			if cubeErr = sh.cube.AddFact(coord, ref.value); cubeErr == nil {
				cl.coord = coord
				cl.cell = sh.cube.CellAt(coord)
			}
		}
		if cubeErr != nil {
			log.Printf("server: plant %s: cube fold dropped sample (machine %s job %s phase %s sensor %s t %d): %v",
				ps.topo.ID, ps.in.machines.Name(ref.machine), ps.in.jobs.Name(ref.job),
				ps.in.phases.Name(ref.phase), ps.in.sensors.Name(ref.sensor), ref.t, cubeErr)
		}
		tr, ok := sh.trackers[trKey]
		if !ok {
			tr = stats.NewEWMATracker(0.05)
			sh.trackers[trKey] = tr
		}
		score := tr.Add(ref.value)
		sh.rollMu.Unlock()
		if score >= ps.alertThreshold {
			newAlerts = append(newAlerts, ps.pushAlert(Alert{
				Machine: ps.in.machines.Name(ref.machine), Phase: ps.in.phases.Name(ref.phase),
				Sensor: ps.in.sensors.Name(ref.sensor),
				T:      int(ref.t), Value: ref.value, Score: score,
			}))
		}
	}
	// Revision before counters: drain-watchers (Client.WaitDrained)
	// poll received_records, so by the time the counter covers this
	// batch the data revision must already reflect it — otherwise a
	// report issued right after the drain could hit the snapshot
	// fast path at the old revision and miss the final batch.
	if wrote {
		ps.dataRev.Add(1)
	}
	ps.accepted.Add(freshRecs)
	ps.received.Add(uint64(len(refs)))
	ps.publishBatchEvents(wrote, newAlerts)
}

// publishBatchEvents pushes this batch's fold results to the gateway
// hub: one alert event carrying the batch's newly raised alerts, a
// cube_delta notification when the data revision advanced, and a stats
// snapshot after every batch (counters move even on idempotent
// replay). Runs at the foldMu batch boundary, so per-shard event order
// equals fold order; with no gateway attached it is a no-op.
func (ps *plantState) publishBatchEvents(wrote bool, newAlerts []Alert) {
	pub := ps.publish
	if pub == nil {
		return
	}
	if len(newAlerts) > 0 {
		pub(wire.Event{
			Kind: wire.EventAlert, Plant: ps.topo.ID,
			Seq: newAlerts[len(newAlerts)-1].Seq, Alerts: newAlerts,
		})
	}
	rev := ps.dataRev.Load()
	if wrote {
		pub(wire.Event{Kind: wire.EventCubeDelta, Plant: ps.topo.ID, Revision: rev})
	}
	st := ps.statsNow()
	pub(wire.Event{Kind: wire.EventStats, Plant: ps.topo.ID, Revision: rev, Stats: &st})
}

// statsNow assembles the stats snapshot served by GET stats and
// carried by push stats events.
func (ps *plantState) statsNow() wire.StatsResponse {
	walSegments := 0
	var snapRev uint64
	if ps.dur != nil {
		walSegments = ps.dur.segments()
		snapRev = ps.dur.snapRev.Load()
	}
	return wire.StatsResponse{
		Plant:           ps.topo.ID,
		AcceptedRecords: ps.accepted.Load(),
		ReceivedRecords: ps.received.Load(),
		RejectedRecords: ps.rejected.Load(),
		ShedBatches:     ps.shed.Load(),
		DataRevision:    ps.dataRev.Load(),
		Shards:          len(ps.shards),
		QueueDepths:     ps.queueDepths(),
		WALSegments:     walSegments,
		SnapshotRev:     snapRev,
	}
}

// pushAlert stamps the alert with the next plant-wide sequence number
// and appends it to the ring, returning the stamped alert for the push
// path.
func (ps *plantState) pushAlert(a Alert) Alert {
	ps.alertMu.Lock()
	defer ps.alertMu.Unlock()
	ps.alertSeq++
	a.Seq = ps.alertSeq
	if len(ps.alerts) < alertRingCap {
		ps.alerts = append(ps.alerts, a)
		return a
	}
	ps.alerts[ps.alertHead] = a
	ps.alertHead = (ps.alertHead + 1) % alertRingCap
	return a
}

// recentAlerts returns up to limit alerts, oldest first.
func (ps *plantState) recentAlerts(limit int) []Alert {
	ps.alertMu.Lock()
	defer ps.alertMu.Unlock()
	out := make([]Alert, 0, len(ps.alerts))
	for i := 0; i < len(ps.alerts); i++ {
		out = append(out, ps.alerts[(ps.alertHead+i)%len(ps.alerts)])
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// snapshot brings the assembled plant up to the current data revision,
// rebuilding only machines whose stores advanced and invalidating
// exactly the matching cache subtrees. Callers must hold reportMu.
func (ps *plantState) snapshot() error {
	cur := ps.dataRev.Load()
	if ps.assembled != nil && cur == ps.assembledRev {
		return nil
	}

	envChanged := false

	var lines []*plant.Line
	for _, tl := range ps.topo.Lines {
		line := &plant.Line{ID: tl.ID}
		for _, mID := range tl.Machines {
			st := ps.machines[mID]
			st.mu.Lock()
			rev := st.rev
			st.mu.Unlock()
			if rev == 0 {
				continue // no data yet
			}
			if prev, ok := ps.built[mID]; ok && ps.machineRevAt[mID] == rev {
				line.Machines = append(line.Machines, prev)
				continue
			}
			m, rev, err := buildMachine(ps.topo, tl.ID, mID, st)
			if err != nil {
				return err
			}
			if m == nil {
				continue
			}
			ps.built[mID] = m
			ps.machineRevAt[mID] = rev
			if ps.cache != nil {
				ps.cache.InvalidateMachine(mID)
			}
			line.Machines = append(line.Machines, m)
		}
		if len(line.Machines) > 0 {
			lines = append(lines, line)
		}
	}

	var env *timeseries.MultiSeries
	if ps.assembled != nil {
		env = ps.assembled.Environment
	}
	if envRev := ps.envRev(); env == nil || envRev != ps.envRevAt {
		var err error
		env, ps.envRevAt, err = ps.env.build(ps.topo)
		if err != nil {
			return err
		}
		envChanged = true
	}

	p := &plant.Plant{Lines: lines, Environment: env, Start: assemblyStart, Step: time.Second}
	if ps.cache == nil {
		ps.cache = core.NewPlantCache(p)
	} else {
		ps.cache.Rebind(p)
	}
	if envChanged {
		ps.cache.InvalidateEnv()
	}

	// Rebind surviving hierarchies; drop ones whose machine vanished.
	for id, h := range ps.hier {
		if _, err := p.MachineByID(id); err != nil {
			delete(ps.hier, id)
			continue
		}
		if err := h.Rebind(p, ps.cache); err != nil {
			delete(ps.hier, id)
		}
	}
	// Any report depends on the cross-level upward pass, so any data
	// change invalidates all of them.
	ps.reports = make(map[reportKey]*core.Report)
	ps.assembled = p
	ps.assembledRev = cur
	return nil
}

func (ps *plantState) envRev() uint64 {
	ps.env.mu.Lock()
	defer ps.env.mu.Unlock()
	return ps.env.rev
}

// hierarchyFor returns (building if needed) the hierarchy of one
// machine over the current snapshot. Callers must hold reportMu and
// have called snapshot.
func (ps *plantState) hierarchyFor(machineID string) (*core.Hierarchy, error) {
	if h, ok := ps.hier[machineID]; ok {
		return h, nil
	}
	h, err := core.NewHierarchyWithCache(ps.assembled, machineID, ps.cache)
	if err != nil {
		return nil, err
	}
	ps.hier[machineID] = h
	return h, nil
}

// activeMachines lists the machines present in the current snapshot,
// in topology order. Callers must hold reportMu and have called
// snapshot.
func (ps *plantState) activeMachines() []string {
	var out []string
	for _, l := range ps.assembled.Lines {
		for _, m := range l.Machines {
			out = append(out, m.ID)
		}
	}
	return out
}

// rollup merges the shard-local leaf accumulators and folds them up to
// the requested level: sensor, phase, machine, line, or plant. It
// returns the resolved level (the empty string defaults to "plant") so
// the handler echoes exactly what was computed instead of re-deriving
// the default. Leaves are merged in sorted key order — the parallel
// Welford merge is not floating-point associative, so map iteration
// order would otherwise leak last-ulp jitter into responses (and break
// the byte-identical crash-recovery contract).
func (ps *plantState) rollup(level string) (string, []RollupNode, error) {
	resolved, keyFn, err := rollupKeyFn(level, ps.topo.ID, ps.machineLine)
	if err != nil {
		return "", nil, err
	}
	type leafPair struct {
		k rollKey
		o stats.Online
	}
	var leaves []leafPair
	for _, sh := range ps.shards {
		sh.rollMu.Lock()
		for k, o := range sh.roll {
			leaves = append(leaves, leafPair{ps.rollKeyOf(k), *o})
		}
		sh.rollMu.Unlock()
	}
	sort.Slice(leaves, func(i, j int) bool {
		a, b := leaves[i].k, leaves[j].k
		if a.machine != b.machine {
			return a.machine < b.machine
		}
		if a.phase != b.phase {
			return a.phase < b.phase
		}
		return a.sensor < b.sensor
	})
	agg := make(map[string]stats.Online)
	for _, lp := range leaves {
		key := keyFn(lp.k)
		merged := agg[key]
		merged.Merge(lp.o)
		agg[key] = merged
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]RollupNode, 0, len(keys))
	for _, k := range keys {
		o := agg[k]
		out = append(out, RollupNode{
			Key: k, Count: o.N(), Mean: o.Mean(), Std: o.StdDev(),
			Min: o.Min(), Max: o.Max(),
		})
	}
	return resolved, out, nil
}

// rollKeyOf translates an interned leaf key back to its string form —
// the query/snapshot boundary where ids stop and names resume.
func (ps *plantState) rollKeyOf(k rollRef) rollKey {
	return rollKey{
		machine: ps.in.machines.Name(k.machine),
		phase:   ps.in.phases.Name(k.phase),
		sensor:  ps.in.sensors.Name(k.sensor),
	}
}

// RollupNode is one aggregate of the incremental roll-up tree; the
// wire shape is shared with the typed client.
type RollupNode = wire.RollupNode

// rollupKeyFn resolves a requested level name (empty = plant) into the
// canonical level it computes plus the leaf-grouping function.
func rollupKeyFn(level, plantID string, machineLine map[string]string) (string, func(rollKey) string, error) {
	switch level {
	case "sensor":
		return level, func(k rollKey) string { return k.machine + "/" + k.phase + "/" + k.sensor }, nil
	case "phase":
		return level, func(k rollKey) string { return k.machine + "/" + k.phase }, nil
	case "machine":
		return level, func(k rollKey) string { return k.machine }, nil
	case "line":
		return level, func(k rollKey) string { return machineLine[k.machine] }, nil
	case "plant", "":
		return "plant", func(rollKey) string { return plantID }, nil
	default:
		return "", nil, fmt.Errorf("unknown rollup level %q (want sensor|phase|machine|line|plant)", level)
	}
}

// queueDepths reports per-shard backlog for the stats endpoint.
func (ps *plantState) queueDepths() []int {
	out := make([]int, len(ps.shards))
	for i, sh := range ps.shards {
		out[i] = sh.q.Len()
	}
	return out
}
