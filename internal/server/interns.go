package server

import (
	"fmt"
	"math"

	"repro/internal/intern"
	"repro/internal/olap"
	"repro/pkg/hod/wire"
)

// The ingest hot path runs on interned identifiers: every topology
// name (line, machine, phase, sensor, environment sensor) gets an
// int32 id at registration, and job ids — the one namespace that
// arrives with the data — are interned on first sight. A validated
// record travels from admission through the WAL, the shard queues, the
// idempotent store, the roll-up leaves, and the OLAP cube as a
// recordRef of ids; strings are resolved exactly once per batch at
// admission and translated back only at the query/snapshot/alert
// boundary. Job-id assignment may differ between runs (shards intern
// concurrently) — that is safe precisely because ids never appear in
// responses or durable frames, which all carry names.

// recordRef is one admitted record in interned form. machine == -1
// marks an environment record, whose sensor indexes the environment
// namespace; everything else indexes the registration tables.
type recordRef struct {
	machine, job, phase, sensor int32
	t                           int32
	value                       float64
}

// plantInterns is the per-plant identifier universe.
type plantInterns struct {
	lines       *intern.Table
	machines    *intern.Table
	machineLine []int32 // machine id → line id
	phases      *intern.Table
	sensors     *intern.Table
	envSensors  *intern.Table
	jobs        *intern.DynTable

	// walSensors is the shared sensor dictionary of durable frames:
	// the machine-sensor namespace followed by the environment one, so
	// an environment ref's sensor encodes as len(sensors)+id.
	walSensors []string
}

func newPlantInterns(topo Topology) *plantInterns {
	var machines []string
	var lineOf []int32
	lines := make([]string, 0, len(topo.Lines))
	for li, l := range topo.Lines {
		lines = append(lines, l.ID)
		for _, m := range l.Machines {
			machines = append(machines, m)
			lineOf = append(lineOf, int32(li))
		}
	}
	in := &plantInterns{
		lines:       intern.New(lines),
		machines:    intern.New(machines),
		machineLine: lineOf,
		phases:      intern.New(topo.Phases),
		sensors:     intern.New(topo.Sensors),
		envSensors:  intern.New(topo.EnvSensors),
		jobs:        intern.NewDyn(nil),
	}
	in.walSensors = append(append([]string(nil), topo.Sensors...), topo.EnvSensors...)
	return in
}

// resolveRecord vets one decoded record against the topology and
// interns it — the checks (and their messages) are the admission
// contract the text codecs had before interning existed.
func (ps *plantState) resolveRecord(rec Record) (recordRef, error) {
	if rec.T < 0 || rec.T >= maxSampleIndex {
		return recordRef{}, fmt.Errorf("t %d out of [0, %d)", rec.T, maxSampleIndex)
	}
	if math.IsNaN(rec.Value) || math.IsInf(rec.Value, 0) {
		return recordRef{}, fmt.Errorf("non-finite value")
	}
	if rec.Env {
		id, ok := ps.in.envSensors.ID(rec.Sensor)
		if !ok {
			return recordRef{}, fmt.Errorf("unknown environment sensor %q", rec.Sensor)
		}
		return recordRef{machine: -1, job: -1, phase: -1, sensor: id, t: int32(rec.T), value: rec.Value}, nil
	}
	mid, ok := ps.in.machines.ID(rec.Machine)
	if !ok {
		return recordRef{}, fmt.Errorf("unregistered machine %q", rec.Machine)
	}
	if rec.Job == "" {
		return recordRef{}, fmt.Errorf("missing job id")
	}
	// Job ids are the one free-form cube coordinate (the others are
	// vetted at registration): a control character could collide with
	// the cube's reserved key separator and silently merge cells.
	if err := wire.ValidIdent("job", rec.Job); err != nil {
		return recordRef{}, err
	}
	pid, ok := ps.in.phases.ID(rec.Phase)
	if !ok {
		return recordRef{}, fmt.Errorf("unknown phase %q", rec.Phase)
	}
	sid, ok := ps.in.sensors.ID(rec.Sensor)
	if !ok {
		return recordRef{}, fmt.Errorf("unknown sensor %q", rec.Sensor)
	}
	return recordRef{
		machine: mid, job: ps.in.jobs.Intern(rec.Job), phase: pid, sensor: sid,
		t: int32(rec.T), value: rec.Value,
	}, nil
}

// resolveRecords resolves a decoded batch onto dst, returning the
// rejected count and the first rejection reason.
func (ps *plantState) resolveRecords(dst []recordRef, recs []Record) ([]recordRef, int, string) {
	rejected := 0
	firstErr := ""
	for _, rec := range recs {
		ref, err := ps.resolveRecord(rec)
		if err != nil {
			rejected++
			if firstErr == "" {
				firstErr = err.Error()
			}
			continue
		}
		dst = append(dst, ref)
	}
	return dst, rejected, firstErr
}

// resolveFrame resolves one structurally valid binary frame onto dst.
// The frame-local dictionaries are resolved once; records referencing
// an unresolvable name (or failing the t/finiteness gates) are
// rejected per record with the same reasons the text path produces.
func (ps *plantState) resolveFrame(dst []recordRef, f *wire.Frame) ([]recordRef, int, string) {
	machineIDs := make([]int32, len(f.Machines))
	for i, name := range f.Machines {
		if id, ok := ps.in.machines.ID(name); ok {
			machineIDs[i] = id
		} else {
			machineIDs[i] = -1
		}
	}
	phaseIDs := make([]int32, len(f.Phases))
	for i, name := range f.Phases {
		if id, ok := ps.in.phases.ID(name); ok {
			phaseIDs[i] = id
		} else {
			phaseIDs[i] = -1
		}
	}
	sensorIDs := make([]int32, len(f.Sensors))
	envIDs := make([]int32, len(f.Sensors))
	for i, name := range f.Sensors {
		if id, ok := ps.in.sensors.ID(name); ok {
			sensorIDs[i] = id
		} else {
			sensorIDs[i] = -1
		}
		if id, ok := ps.in.envSensors.ID(name); ok {
			envIDs[i] = id
		} else {
			envIDs[i] = -1
		}
	}
	// Job names are vetted per dictionary entry but interned lazily:
	// an entry only referenced by otherwise-rejected records must not
	// grow the plant's job table.
	jobIDs := make([]int32, len(f.Jobs))
	jobErrs := make([]error, len(f.Jobs))
	for i, name := range f.Jobs {
		jobIDs[i] = -1
		switch {
		case name == "":
			jobErrs[i] = fmt.Errorf("missing job id")
		default:
			jobErrs[i] = wire.ValidIdent("job", name)
		}
	}

	rejected := 0
	firstErr := ""
	reject := func(err error) {
		rejected++
		if firstErr == "" {
			firstErr = err.Error()
		}
	}
	for i := 0; i < f.Len(); i++ {
		t := f.T[i]
		if t < 0 || t >= maxSampleIndex {
			reject(fmt.Errorf("t %d out of [0, %d)", t, maxSampleIndex))
			continue
		}
		v := f.Value[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			reject(fmt.Errorf("non-finite value"))
			continue
		}
		if f.Machine[i] < 0 {
			eid := envIDs[f.Sensor[i]]
			if eid < 0 {
				reject(fmt.Errorf("unknown environment sensor %q", f.Sensors[f.Sensor[i]]))
				continue
			}
			dst = append(dst, recordRef{machine: -1, job: -1, phase: -1, sensor: eid, t: t, value: v})
			continue
		}
		mid := machineIDs[f.Machine[i]]
		if mid < 0 {
			reject(fmt.Errorf("unregistered machine %q", f.Machines[f.Machine[i]]))
			continue
		}
		ji := f.Job[i]
		if jobErrs[ji] != nil {
			reject(jobErrs[ji])
			continue
		}
		pid := phaseIDs[f.Phase[i]]
		if pid < 0 {
			reject(fmt.Errorf("unknown phase %q", f.Phases[f.Phase[i]]))
			continue
		}
		sid := sensorIDs[f.Sensor[i]]
		if sid < 0 {
			reject(fmt.Errorf("unknown sensor %q", f.Sensors[f.Sensor[i]]))
			continue
		}
		if jobIDs[ji] < 0 {
			jobIDs[ji] = ps.in.jobs.Intern(f.Jobs[ji])
		}
		dst = append(dst, recordRef{machine: mid, job: jobIDs[ji], phase: pid, sensor: sid, t: t, value: v})
	}
	return dst, rejected, firstErr
}

// cubeCoordOf translates an interned cube coordinate back to its
// string form for snapshots and merged query cubes.
func (ps *plantState) cubeCoordOf(c olap.IntCoord) []string {
	return []string{
		ps.in.lines.Name(c[0]), ps.in.machines.Name(c[1]), ps.in.jobs.Name(c[2]),
		ps.in.phases.Name(c[3]), ps.in.sensors.Name(c[4]),
	}
}

// chunkRefs partitions resolved refs onto the shard pipelines using
// the per-machine precomputed shard index (environment refs ride on
// shard 0), preserving order within each machine.
func (ps *plantState) chunkRefs(refs []recordRef) [][]recordRef {
	chunks := make([][]recordRef, len(ps.shards))
	for _, ref := range refs {
		idx := int32(0)
		if ref.machine >= 0 {
			idx = ps.shardOf[ref.machine]
		}
		chunks[idx] = append(chunks[idx], ref)
	}
	return chunks
}
