package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/wal"
	"repro/pkg/hod/wire"
)

// This file is the node side of cluster mode (internal/cluster holds
// placement and the router). A server started with Options.ClusterNodeID
// set gates every plant-scoped request on rendezvous ownership under the
// epoch-versioned membership table the router pushes, serves the
// node-to-node control surface (membership, replicate, release, WAL
// tail), and runs one tailer goroutine per standby plant that ships the
// owner's WAL into the local fold path. Cluster traffic assumes an
// unauthenticated internal network: the internal header marks it, and
// it must not be combined with Options.Tenants.

// clusterState is a node's view of the cluster: the latest membership
// push and the WAL tailers of the plants it keeps warm.
type clusterState struct {
	mu      sync.RWMutex
	mem     wire.ClusterMembership
	tailers map[string]*walTailer

	// opMu serializes plant surgery (seed, release): a reseed racing a
	// release must not interleave drop/install halves.
	opMu sync.Mutex
}

func (s *Server) clusterMembership() wire.ClusterMembership {
	s.cluster.mu.RLock()
	defer s.cluster.mu.RUnlock()
	return s.cluster.mem
}

// clusterGate enforces ownership of a plant-scoped request. It returns
// true when the handler should proceed. Outside cluster mode, for
// internal traffic, and before the first membership push it passes
// everything through; otherwise the request must be routed at the
// node's epoch, and the node must own the plant — or be its standby
// serving an explicit follower read. Both refusals are 503s the typed
// client retries after Retry-After, mapping onto hod.ErrFailover when
// the budget runs out.
func (s *Server) clusterGate(w http.ResponseWriter, r *http.Request, plantID string) bool {
	if s.opts.ClusterNodeID == "" {
		return true
	}
	if r.Header.Get(cluster.InternalHeader) == "1" {
		return true
	}
	mem := s.clusterMembership()
	if mem.Epoch == 0 {
		return true // no membership pushed yet: behave standalone
	}
	if h := r.Header.Get(cluster.EpochHeader); h != "" && h != strconv.FormatUint(mem.Epoch, 10) {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, wire.CodeFailover,
			fmt.Sprintf("request routed at epoch %s, node %s is at epoch %d", h, s.opts.ClusterNodeID, mem.Epoch))
		return false
	}
	owner, ok := cluster.Owner(mem, plantID)
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, wire.CodeFailover,
			fmt.Sprintf("no active nodes at epoch %d", mem.Epoch))
		return false
	}
	if owner.ID == s.opts.ClusterNodeID {
		return true
	}
	if sb, ok := cluster.Standby(mem, plantID); ok && sb.ID == s.opts.ClusterNodeID &&
		cluster.FollowerRead(r.Method, r.URL.Path, r.URL.Query()) {
		return true
	}
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable, wire.CodeNotOwner,
		fmt.Sprintf("plant %q is owned by node %s at epoch %d", plantID, owner.ID, mem.Epoch))
	return false
}

// clusterInternal guards the mutating node-side cluster control
// surface (membership, replicate, release): only a cluster node serves
// it, and only for traffic marked with the internal header. Without
// both checks a standalone open server — or any tenant of a
// multi-tenant one, since TenantScope only scopes {id} routes — could
// POST /v1/cluster/release and destroy a plant's data dir.
func (s *Server) clusterInternal(w http.ResponseWriter, r *http.Request) bool {
	if s.opts.ClusterNodeID == "" {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, "not a cluster node (no -node-id)")
		return false
	}
	if r.Header.Get(cluster.InternalHeader) != "1" {
		writeErr(w, http.StatusForbidden, wire.CodeForbidden, "internal cluster route")
		return false
	}
	return true
}

// handleClusterStatus reports the node's membership view and the
// placement of every plant it holds.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	mem := s.clusterMembership()
	s.mu.RLock()
	ids := make([]string, 0, len(s.plants))
	for id := range s.plants {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	resp := wire.ClusterStatusResponse{Epoch: mem.Epoch, Nodes: mem.Nodes}
	for _, id := range ids {
		owner, standby, _, hasStandby := cluster.Placement(mem, id)
		p := wire.ClusterPlacement{Plant: id, Owner: owner.ID}
		if hasStandby {
			p.Standby = standby.ID
		}
		resp.Placements = append(resp.Placements, p)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterMembership accepts a membership push from the router.
// Pushes are idempotent at the same epoch; a stale epoch is refused so
// a partitioned router cannot roll a node's view backwards.
func (s *Server) handleClusterMembership(w http.ResponseWriter, r *http.Request) {
	if !s.clusterInternal(w, r) {
		return
	}
	var m wire.ClusterMembership
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&m); err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, "bad membership: "+err.Error())
		return
	}
	if m.Epoch == 0 || len(m.Nodes) == 0 {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, "membership needs an epoch and at least one node")
		return
	}
	s.cluster.mu.Lock()
	if m.Epoch < s.cluster.mem.Epoch {
		cur := s.cluster.mem.Epoch
		s.cluster.mu.Unlock()
		writeErr(w, http.StatusConflict, wire.CodeFailover,
			fmt.Sprintf("stale membership epoch %d, node is at %d", m.Epoch, cur))
		return
	}
	s.cluster.mem = m
	s.cluster.mu.Unlock()
	go s.reconcileCluster(m)
	writeJSON(w, http.StatusOK, wire.ClusterAck{Epoch: m.Epoch})
}

// reconcileCluster reacts to a membership change: a node that now owns
// a plant it was tailing has been promoted — the tailer stops and the
// replicated state starts serving. Seeding new standbys and releasing
// surplus copies stay router-driven (replicate/release), so the one
// decision a node takes on its own is the one that must not wait.
func (s *Server) reconcileCluster(m wire.ClusterMembership) {
	self := s.opts.ClusterNodeID
	s.mu.RLock()
	ids := make([]string, 0, len(s.plants))
	for id := range s.plants {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	// Promote in sorted order: reconciling the same membership epoch
	// must take the same steps in the same order on every node.
	sort.Strings(ids)
	for _, id := range ids {
		if owner, ok := cluster.Owner(m, id); ok && owner.ID == self {
			s.stopTailer(id)
		}
	}
}

// handleClusterReplicate makes this node the warm standby of a plant:
// drop any stale local copy, seed from the owner's snapshot (with WAL
// positions), and tail the owner's log from there.
func (s *Server) handleClusterReplicate(w http.ResponseWriter, r *http.Request) {
	if !s.clusterInternal(w, r) {
		return
	}
	var req wire.ClusterPlantRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil || req.Plant == "" {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, "bad replicate request")
		return
	}
	if err := s.seedStandby(req.Plant); err != nil {
		writeErr(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, wire.ClusterAck{Epoch: s.clusterMembership().Epoch, Moved: 1})
}

// handleClusterRelease drops the local copy of a plant (data dir
// included). Idempotent: releasing a plant the node does not hold acks.
func (s *Server) handleClusterRelease(w http.ResponseWriter, r *http.Request) {
	if !s.clusterInternal(w, r) {
		return
	}
	var req wire.ClusterPlantRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil || req.Plant == "" {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, "bad release request")
		return
	}
	s.cluster.opMu.Lock()
	s.stopTailer(req.Plant)
	moved := 0
	if s.dropPlantLocal(req.Plant) {
		moved = 1
	}
	s.cluster.opMu.Unlock()
	writeJSON(w, http.StatusOK, wire.ClusterAck{Epoch: s.clusterMembership().Epoch, Moved: moved})
}

// handleWalTail streams WAL frames of one shard with seq > after, in
// the ship framing, capped at ~1 MiB per response. The headers carry
// the log's retained bounds; a position before the oldest retained
// frame answers 410 so the standby re-seeds from a snapshot.
func (s *Server) handleWalTail(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(cluster.InternalHeader) != "1" {
		writeErr(w, http.StatusForbidden, wire.CodeForbidden, "internal cluster route")
		return
	}
	ps, ok := s.plant(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, wire.CodeUnknownPlant, fmt.Sprintf("unknown plant %q", r.PathValue("id")))
		return
	}
	if ps.dur == nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, "plant has no WAL (server runs without -data)")
		return
	}
	shardIdx, err := queryInt(r, "shard", 0)
	if err != nil || shardIdx >= len(ps.dur.logs) {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, fmt.Sprintf("bad shard index (log has %d)", len(ps.dur.logs)))
		return
	}
	after, err := queryUint64(r, "after")
	if err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	l := ps.dur.logs[shardIdx]
	first, last := l.Bounds()
	w.Header().Set(cluster.WalFirstHeader, strconv.FormatUint(first, 10))
	w.Header().Set(cluster.WalLastHeader, strconv.FormatUint(last, 10))
	wrote := false
	err = l.ReadAfter(after, 1<<20, func(seq uint64, payload []byte) error {
		if !wrote {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		return cluster.WriteShipFrame(w, seq, payload)
	})
	switch {
	case errors.Is(err, wal.ErrCompacted) && !wrote:
		writeErr(w, http.StatusGone, wire.CodeFailover, "requested WAL frames compacted; re-seed from a snapshot")
	case err != nil && !wrote:
		writeErr(w, http.StatusInternalServerError, wire.CodeInternal, "wal tail: "+err.Error())
	case err != nil:
		// Mid-stream failure after frames went out: the body ends at a
		// clean frame boundary and the tailer refetches from its cursor.
	case !wrote:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK) // nothing pending
	}
}

// dropPlantLocal removes a plant from the registry the abrupt way —
// queued batches dropped, no final snapshot — and deletes its data
// dir. Used by release and re-seed, where the local copy is surplus.
func (s *Server) dropPlantLocal(id string) bool {
	s.mu.Lock()
	ps, ok := s.plants[id]
	if ok {
		delete(s.plants, id)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	ps.kill()
	if s.opts.DataDir != "" {
		_ = os.RemoveAll(filepath.Join(s.opts.DataDir, plantDirName(id)))
	}
	return true
}

// seedStandby installs a warm copy of a plant from its current owner:
// internal backup with WAL positions, the restore install sequence,
// then a tailer from those positions.
func (s *Server) seedStandby(plantID string) error {
	s.cluster.opMu.Lock()
	defer s.cluster.opMu.Unlock()
	if s.closed.Load() {
		return fmt.Errorf("cluster: server is shutting down")
	}
	mem := s.clusterMembership()
	owner, ok := cluster.Owner(mem, plantID)
	if !ok {
		return fmt.Errorf("cluster: plant %q has no owner at epoch %d", plantID, mem.Epoch)
	}
	if owner.ID == s.opts.ClusterNodeID {
		return fmt.Errorf("cluster: node %s owns plant %q; nothing to replicate", owner.ID, plantID)
	}
	s.stopTailer(plantID)
	s.dropPlantLocal(plantID)

	req, err := http.NewRequest("GET", owner.Addr+"/v1/plants/"+url.PathEscape(plantID)+"/backup?positions=1", nil)
	if err != nil {
		return err
	}
	req.Header.Set(cluster.InternalHeader, "1")
	resp, err := s.clusterHC.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: seeding plant %q from %s: %w", plantID, owner.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: seeding plant %q from %s: status %d", plantID, owner.ID, resp.StatusCode)
	}
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxRestoreBytes))
	if err != nil {
		return err
	}
	rev, payload, err := wal.DecodeSnapshot(buf)
	if err != nil {
		return err
	}
	st, err := decodeState(payload)
	if err != nil {
		return err
	}
	if st.Topo.ID != plantID {
		return fmt.Errorf("cluster: owner %s sent plant %q, wanted %q", owner.ID, st.Topo.ID, plantID)
	}
	// The owner's per-shard fold positions are where tailing starts;
	// they mean nothing to the local (re-seeded, empty) WALs.
	positions := append([]uint64(nil), st.ShardSeqs...)
	st.ShardSeqs = nil
	st.SnapshotRev = rev

	ps := newPlantState(st.Topo)
	ps.makeShards(s.opts.Shards, s.opts.QueueDepth)
	ps.alertThreshold = s.opts.AlertThreshold
	ps.publish = s.hub.Publish
	ps.applyState(st)
	var rebased []byte
	if s.opts.DataDir != "" {
		if rebased, err = encodeState(st); err != nil {
			return err
		}
	}
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return fmt.Errorf("cluster: server is shutting down")
	}
	if _, exists := s.plants[plantID]; exists {
		s.mu.Unlock()
		return fmt.Errorf("cluster: plant %q reappeared during seeding", plantID)
	}
	if s.opts.DataDir != "" {
		//hod:allow(lockorder) seeding atomicity: the exists-check, plant-dir creation and baseline snapshot must be one critical section or a concurrent re-register of the same plant could interleave
		cleanup, err := s.persistNewPlant(ps, st.Topo)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		//hod:allow(lockorder) same seeding critical section: the baseline must be durable before the plant becomes visible
		if err := wal.SaveSnapshot(ps.dur.dir, rev, rebased); err != nil {
			cleanup()
			s.mu.Unlock()
			return err
		}
		ps.dur.snapRev.Store(rev)
	}
	ps.spawn()
	s.plants[plantID] = ps
	s.mu.Unlock()
	s.startTailer(plantID, positions)
	return nil
}

// reseedStandby is seedStandby for the tailer's gap path, where there
// is no HTTP response to carry the error.
func (s *Server) reseedStandby(plantID string) {
	if err := s.seedStandby(plantID); err != nil {
		log.Printf("server: cluster: re-seeding standby of plant %s: %v", plantID, err)
	}
}

// walTailer keeps one standby plant warm: it polls every shard log of
// the owner for frames past its cursor and folds them through the
// regular admit path — local WAL, local shard hash, idempotent folds —
// so a promoted standby serves exactly what it replicated.
type walTailer struct {
	s       *Server
	plant   string
	after   []uint64 // applied position per *owner* shard
	corrupt int      // consecutive polls that hit a corrupt frame
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
}

var (
	errTailerStopped = errors.New("tailer stopped")
	errTailerReseed  = errors.New("tailer gap: re-seed")
	errShipCorrupt   = errors.New("corrupt ship frame")
)

// maxCorruptPolls is how many consecutive corrupt tail responses the
// tailer tolerates before giving up on its cursor and re-seeding from
// a snapshot — a genuinely corrupt owner log would otherwise be
// refetched from the same position forever.
const maxCorruptPolls = 5

func (s *Server) startTailer(plant string, positions []uint64) {
	t := &walTailer{
		s: s, plant: plant,
		after: append([]uint64(nil), positions...),
		stop:  make(chan struct{}), done: make(chan struct{}),
	}
	s.cluster.mu.Lock()
	old := s.cluster.tailers[plant]
	s.cluster.tailers[plant] = t
	s.cluster.mu.Unlock()
	if old != nil {
		old.halt()
	}
	go t.run()
}

func (s *Server) stopTailer(plant string) {
	s.cluster.mu.Lock()
	t := s.cluster.tailers[plant]
	delete(s.cluster.tailers, plant)
	s.cluster.mu.Unlock()
	if t != nil {
		t.halt()
	}
}

func (s *Server) stopAllTailers() {
	s.cluster.mu.Lock()
	ts := s.cluster.tailers
	s.cluster.tailers = make(map[string]*walTailer)
	s.cluster.mu.Unlock()
	for _, t := range ts {
		t.halt()
	}
}

// halt stops the tailer and waits for its loop to exit.
func (t *walTailer) halt() {
	t.once.Do(func() { close(t.stop) })
	<-t.done
}

func (t *walTailer) run() {
	defer close(t.done)
	for {
		select {
		case <-t.stop:
			return
		default:
		}
		progress, err := t.pollOnce()
		switch {
		case errors.Is(err, errTailerStopped):
			return
		case errors.Is(err, errTailerReseed):
			// The owner compacted past our cursor. Re-seed from a fresh
			// snapshot — in a goroutine, because seedStandby halts this
			// tailer and halt waits on our done channel.
			go t.s.reseedStandby(t.plant)
			return
		case errors.Is(err, errShipCorrupt):
			// Not a torn tail: the owner answered a full frame that does
			// not decode. Refetching the same cursor would replay the same
			// bytes, so after a few strikes abandon the cursor entirely.
			t.corrupt++
			log.Printf("server: cluster: tailing plant %s: %v", t.plant, err)
			if t.corrupt >= maxCorruptPolls {
				log.Printf("server: cluster: plant %s: %d consecutive corrupt tail responses; re-seeding from a snapshot", t.plant, t.corrupt)
				go t.s.reseedStandby(t.plant)
				return
			}
		case err != nil:
			log.Printf("server: cluster: tailing plant %s: %v", t.plant, err)
		default:
			t.corrupt = 0
		}
		if !progress || err != nil {
			select {
			case <-t.stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
		}
	}
}

// pollOnce fetches and applies pending frames from every owner shard.
// An unreachable owner is not an error — the node may be dying, and
// promotion arrives via the next membership push.
func (t *walTailer) pollOnce() (bool, error) {
	s := t.s
	mem := s.clusterMembership()
	owner, ok := cluster.Owner(mem, t.plant)
	if !ok {
		return false, nil
	}
	if owner.ID == s.opts.ClusterNodeID {
		return false, errTailerStopped // promoted
	}
	ps, ok := s.plant(t.plant)
	if !ok {
		return false, errTailerStopped // released under us
	}
	progress := false
	for i := range t.after {
		req, err := http.NewRequest("GET",
			owner.Addr+"/v1/plants/"+url.PathEscape(t.plant)+"/wal?shard="+strconv.Itoa(i)+
				"&after="+strconv.FormatUint(t.after[i], 10), nil)
		if err != nil {
			return progress, err
		}
		req.Header.Set(cluster.InternalHeader, "1")
		resp, err := s.clusterHC.Do(req)
		if err != nil {
			return progress, nil // owner unreachable: retry next poll
		}
		if resp.StatusCode == http.StatusGone {
			resp.Body.Close()
			return progress, errTailerReseed
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return progress, fmt.Errorf("owner %s shard %d: status %d", owner.ID, i, resp.StatusCode)
		}
		p, err := t.applyFrames(ps, i, resp.Body)
		resp.Body.Close()
		progress = progress || p
		if err != nil {
			return progress, err
		}
	}
	return progress, nil
}

// applyFrames folds one tail response into the local plant. A torn
// trailing frame is not an error: the cursor only advances past fully
// applied entries, so the refetch resumes exactly there. Any other
// decode failure is surfaced as errShipCorrupt — refetching would
// replay the same bad bytes, so the caller must not retry silently.
func (t *walTailer) applyFrames(ps *plantState, shardIdx int, body io.Reader) (bool, error) {
	progress := false
	for {
		seq, payload, err := cluster.ReadShipFrame(body)
		if err == io.EOF {
			return progress, nil
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return progress, nil // torn trailing frame: refetch from the cursor
		}
		if err != nil {
			return progress, fmt.Errorf("shard %d: %w: %v", shardIdx, errShipCorrupt, err)
		}
		if err := t.apply(ps, payload); err != nil {
			if errors.Is(err, errShipCorrupt) {
				return progress, fmt.Errorf("shard %d seq %d: %w", shardIdx, seq, err)
			}
			return progress, err
		}
		t.after[shardIdx] = seq
		progress = true
	}
}

// apply folds one owner WAL payload through the standby's own admit
// path: resolved against the local intern tables, re-chunked by the
// local shard placement (the owner's shard count need not match),
// durably logged locally, idempotently folded. Payloads dispatch like
// local replay: tagged binary ref frames, else legacy gob entries.
func (t *walTailer) apply(ps *plantState, payload []byte) error {
	if len(payload) > 0 && payload[0] == walRefTag {
		var f wire.Frame
		if err := wire.DecodeFrame(payload[1:], &f); err != nil {
			return fmt.Errorf("%w: %v", errShipCorrupt, err)
		}
		refs, rejected, _ := ps.resolveFrame(nil, &f)
		if rejected > 0 {
			ps.rejected.Add(uint64(rejected))
		}
		return t.admitRefs(ps, refs)
	}
	ent, err := decodeEntry(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", errShipCorrupt, err)
	}
	if len(ent.Recs) > 0 {
		refs, rejected, _ := ps.resolveRecords(nil, ent.Recs)
		if rejected > 0 {
			ps.rejected.Add(uint64(rejected))
		}
		if err := t.admitRefs(ps, refs); err != nil {
			return err
		}
	}
	if len(ent.Jobs) > 0 {
		ps.applyJobMetas(ent.Jobs)
		if err := ps.appendJobs(ent.Jobs); err != nil {
			return err
		}
	}
	return nil
}

// admitRefs pushes resolved refs through the local admit path, waiting
// out backpressure — a standby has no client to bounce a 429 to.
func (t *walTailer) admitRefs(ps *plantState, refs []recordRef) error {
	for idx, chunk := range ps.chunkRefs(refs) {
		if len(chunk) == 0 {
			continue
		}
		for {
			admitted, err := ps.admit(idx, chunk)
			if err != nil {
				return err
			}
			if admitted {
				break
			}
			select {
			case <-t.stop:
				return errTailerStopped
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	return nil
}

// queryUint64 parses an optional uint64 query parameter (missing = 0).
func queryUint64(r *http.Request, key string) (uint64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s value %q (want a non-negative integer)", key, v)
	}
	return n, nil
}
