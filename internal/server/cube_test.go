package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/plant"
	"repro/internal/wal"
	"repro/pkg/hod"
	"repro/pkg/hod/wire"
)

// plantCSVBodies renders the whole machine trace as plantsim-schema CSV
// bodies, one per machine — "the same CSVs" both the HTTP replay and
// the offline cube are built from.
func plantCSVBodies(p *plant.Plant) []string {
	var out []string
	for _, m := range p.Machines() {
		var b strings.Builder
		b.WriteString("machine,job,phase,t," + strings.Join(plant.SensorNames, ",") + "\n")
		for _, job := range m.Jobs {
			for _, ph := range job.Phases {
				for ti := 0; ti < ph.Sensors.Len(); ti++ {
					fmt.Fprintf(&b, "%s,%s,%s,%d", m.ID, job.ID, ph.Name, ti)
					for _, v := range ph.Sensors.Row(ti) {
						fmt.Fprintf(&b, ",%g", v)
					}
					b.WriteString("\n")
				}
			}
		}
		out = append(out, b.String())
	}
	return out
}

// cubeQueries is the query battery every cube equality check runs:
// full slice, per-dimension constraints, roll-ups, drill-downs, and a
// members listing.
func cubeQueries(p *plant.Plant) []string {
	m0 := p.Machines()[0].ID
	return []string{
		"/cube",
		"/cube?op=slice&where=" + url.QueryEscape("machine="+m0),
		"/cube?op=slice&where=" + url.QueryEscape("phase=print") + "&where=" + url.QueryEscape("sensor=temp-a"),
		"/cube?op=rollup&keep=line,sensor",
		"/cube?op=rollup&keep=machine",
		"/cube?op=rollup&keep=phase&where=" + url.QueryEscape("line="+p.Lines[0].ID),
		"/cube?op=drilldown&dim=machine&where=" + url.QueryEscape("line="+p.Lines[0].ID),
		"/cube?op=drilldown&dim=phase&where=" + url.QueryEscape("machine="+m0),
		"/cube?op=members&dim=sensor",
	}
}

// offlineCubeResponse evaluates one /cube query string against a
// batch-built SDK cube and renders it exactly like the server does —
// the byte-identical expectation.
func offlineCubeResponse(t *testing.T, cube *hod.Cube, plantID, query string) []byte {
	t.Helper()
	u, err := url.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	vals := u.Query()
	q := hod.CubeQuery{Op: vals.Get("op"), Dim: vals.Get("dim")}
	if keep := vals.Get("keep"); keep != "" {
		q.Keep = strings.Split(keep, ",")
	}
	if raw := vals["where"]; len(raw) > 0 {
		q.Where = map[string]string{}
		for _, w := range raw {
			dim, member, _ := strings.Cut(w, "=")
			q.Where[dim] = member
		}
	}
	resp, err := cube.Query(q)
	if err != nil {
		t.Fatalf("offline %s: %v", query, err)
	}
	resp.Plant = plantID
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCubeE2ECrashRecoveryMatchesOffline is the cube acceptance test:
// a plantsim-schema CSV trace replayed over HTTP — with the server
// killed and restarted from its data dir mid-trace — must answer every
// cube query byte-identical to a cube built offline from the same
// CSVs.
func TestCubeE2ECrashRecoveryMatchesOffline(t *testing.T) {
	p, err := plant.Simulate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const plantID = "plant-cube"
	topo := topoWithDefaults(topoFromPlant(plantID, p))
	bodies := plantCSVBodies(p)

	// Offline reference: decode the same CSV bodies and batch-build the
	// SDK cube.
	var recs []wire.Record
	for _, body := range bodies {
		part, err := wire.DecodeRecords(strings.NewReader(body), "text/csv")
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, part...)
	}
	offline, err := hod.CubeFromRecords(topo, recs)
	if err != nil {
		t.Fatal(err)
	}

	// Victim: durable, killed after the first 60% of the machines'
	// CSVs; the tail is ingested after recovery, so the final cube
	// mixes snapshot/WAL-recovered cells with live-folded ones.
	dataDir := t.TempDir()
	victim := New(durableOptions(dataDir))
	if err := victim.Open(); err != nil {
		t.Fatal(err)
	}
	tsV := httptest.NewServer(victim.Handler())
	register(t, tsV.URL, topo)
	cut := len(bodies) * 6 / 10
	for _, body := range bodies[:cut] {
		mustStatus(t, postRetry(t, tsV.URL+"/v1/plants/"+plantID+"/ingest", "text/csv", []byte(body)),
			http.StatusAccepted)
	}
	tsV.Close()
	victim.Kill() // no drain, no final snapshot

	restarted := New(durableOptions(dataDir))
	if err := restarted.Open(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer restarted.Close()
	tsR := httptest.NewServer(restarted.Handler())
	defer tsR.Close()
	total := 0
	for _, body := range bodies {
		part, _ := wire.DecodeRecords(strings.NewReader(body), "text/csv")
		total += len(part)
	}
	for _, body := range bodies[cut:] {
		mustStatus(t, postRetry(t, tsR.URL+"/v1/plants/"+plantID+"/ingest", "text/csv", []byte(body)),
			http.StatusAccepted)
	}
	waitDrained(t, tsR.URL, plantID, uint64(total))

	for _, q := range cubeQueries(p) {
		want := offlineCubeResponse(t, offline, plantID, q)
		got := getBody(t, tsR.URL+"/v1/plants/"+plantID+q)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs from the offline cube:\noffline: %s\nserved:  %s", q, want, got)
		}
	}

	// A second restart serves from the re-baselined snapshot (Close
	// compacted the WAL) and still matches offline, byte for byte.
	restarted.Close()
	third := New(durableOptions(dataDir))
	if err := third.Open(); err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	defer third.Close()
	tsT := httptest.NewServer(third.Handler())
	defer tsT.Close()
	for _, q := range cubeQueries(p) {
		want := offlineCubeResponse(t, offline, plantID, q)
		got := getBody(t, tsT.URL+"/v1/plants/"+plantID+q)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs after snapshot-based restart", q)
		}
	}
}

// TestCubeQueryValidation pins the 400 envelope for malformed cube
// queries.
func TestCubeQueryValidation(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 3, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-cq", p))

	for name, q := range map[string]string{
		"unknown op":        "?op=pivot",
		"unknown where dim": "?where=galaxy%3Dg",
		"bad where":         "?where=machine",
		"dup where":         "?where=phase%3Dprint&where=phase%3Dmelt",
		"rollup no keep":    "?op=rollup",
		"unknown keep":      "?op=rollup&keep=galaxy",
		"members no dim":    "?op=members",
		"drill pinned dim":  "?op=drilldown&dim=line&where=line%3Dl",
	} {
		resp, err := http.Get(ts.URL + "/v1/plants/plant-cq/cube" + q)
		if err != nil {
			t.Fatal(err)
		}
		body := mustStatus(t, resp, http.StatusBadRequest)
		var env wire.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Err.Code != wire.CodeBadRequest {
			t.Fatalf("%s: error body %s", name, body)
		}
	}

	// An empty plant answers with an empty cube, not an error.
	resp, err := http.Get(ts.URL + "/v1/plants/plant-cq/cube")
	if err != nil {
		t.Fatal(err)
	}
	var cr wire.CubeResponse
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusOK), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.TotalCells != 0 || len(cr.Cells) != 0 || cr.Op != wire.CubeOpSlice {
		t.Fatalf("empty cube response %+v", cr)
	}
}

// TestCubeSkipsNonFiniteRecords: a NaN sample in a CSV batch is
// rejected by ingest validation (the PR 4 non-finite policy) and never
// reaches the cube — the cube's own ErrNonFinite gate is the second
// line of defence.
func TestCubeSkipsNonFiniteRecords(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 3, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-nan", p))

	m := p.Machines()[0]
	csv := "machine,job,phase,t,temp-a\n" +
		fmt.Sprintf("%s,%s,print,0,1.5\n", m.ID, m.Jobs[0].ID) +
		fmt.Sprintf("%s,%s,print,1,NaN\n", m.ID, m.Jobs[0].ID)
	resp := postRetry(t, ts.URL+"/v1/plants/plant-nan/ingest", "text/csv", []byte(csv))
	var ack wire.IngestAck
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusAccepted), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Records != 1 || ack.Rejected != 1 {
		t.Fatalf("ack %+v, want 1 admitted / 1 rejected", ack)
	}
	waitDrained(t, ts.URL, "plant-nan", 1)

	var cr wire.CubeResponse
	if err := json.Unmarshal(getBody(t, ts.URL+"/v1/plants/plant-nan/cube"), &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Cells) != 1 || cr.Cells[0].Count != 1 || cr.Cells[0].Sum != 1.5 {
		t.Fatalf("cube cells %+v, want the single finite sample", cr.Cells)
	}
}

// TestRestoreRejectsMalformedCubeCells: a forged backup cannot smuggle
// a malformed cube cell past the gate — non-finite aggregates, empty
// cells, wrong arity, and coordinate members carrying control
// characters are all refused with the generic bad_request code (the
// cube-fed flavour of the non-finite 400 policy), never silently
// dropped by applyState.
func TestRestoreRejectsMalformedCubeCells(t *testing.T) {
	topo := topoWithDefaults(Topology{ID: "cube-bad", Lines: []TopoLine{{ID: "l", Machines: []string{"l/m1"}}}})
	goodCoord := []string{"l", "l/m1", "j1", "print", "temp-a"}
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, cell := range map[string]snapCubeCell{
		"non-finite sum": {Coord: goodCoord, Count: 1, Sum: math.Inf(1)},
		"empty cell":     {Coord: goodCoord, Count: 0, Sum: 1, Min: 1, Max: 1},
		"wrong arity":    {Coord: goodCoord[:3], Count: 1, Sum: 1, Min: 1, Max: 1},
		"key separator":  {Coord: []string{"l", "l/m1", "j\x1fprint", "x", "temp-a"}, Count: 1, Sum: 1, Min: 1, Max: 1},
	} {
		st := &snapState{Topo: topo, Machines: map[string]snapMachine{}, CubeCells: []snapCubeCell{cell}}
		payload, err := encodeState(st)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/plants/cube-bad/restore", "application/octet-stream",
			bytes.NewReader(wal.EncodeSnapshot(1, payload)))
		if err != nil {
			t.Fatal(err)
		}
		body := mustStatus(t, resp, http.StatusBadRequest)
		var env wire.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Err.Code != wire.CodeBadRequest {
			t.Fatalf("%s: error body %s, want code %s", name, body, wire.CodeBadRequest)
		}
	}
}

// TestControlCharIdentifiersRejected: cube coordinates are built from
// registered identifiers and the free-form job id; a member carrying
// the cube's reserved 0x1f key separator could collide two distinct
// coordinates onto one cell, so both registration and ingest refuse
// control characters.
func TestControlCharIdentifiersRejected(t *testing.T) {
	// Registration: a phase with the separator is a 400.
	bad := topoWithDefaults(Topology{ID: "ctl", Lines: []TopoLine{{ID: "l", Machines: []string{"l/m1"}}}})
	bad.Phases = append(bad.Phases, "print\x1fx")
	if err := bad.Validate(); err == nil {
		t.Fatal("topology with a control-character phase validated")
	}

	p, err := plant.Simulate(plant.Config{Seed: 3, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	register(t, ts.URL, topoFromPlant("plant-ctl", p))

	// Ingest: a job id with the separator is rejected per-record.
	m := p.Machines()[0]
	batch := []Record{{Machine: m.ID, Job: "j\x1fx", Phase: "print", Sensor: "temp-a", T: 0, Value: 1}}
	resp := postRetry(t, ts.URL+"/v1/plants/plant-ctl/ingest", "application/x-ndjson", ndjson(batch))
	var ack wire.IngestAck
	if err := json.Unmarshal(mustStatus(t, resp, http.StatusAccepted), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Records != 0 || ack.Rejected != 1 {
		t.Fatalf("ack %+v, want the control-character job rejected", ack)
	}
}

// TestRollupLevelEchoesComputed pins the resolved-level contract: the
// echoed Level is the one rollup computed, including the default.
func TestRollupLevelEchoesComputed(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 3, Lines: 1, MachinesPerLine: 1, JobsPerMachine: 1, PhaseSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	topo := topoWithDefaults(topoFromPlant("plant-echo", p))
	ps := newPlantState(topo)
	ps.makeShards(1, 1)
	level, _, err := ps.rollup("")
	if err != nil || level != "plant" {
		t.Fatalf("rollup(\"\") resolved to %q, %v; want plant", level, err)
	}
	level, _, err = ps.rollup("sensor")
	if err != nil || level != "sensor" {
		t.Fatalf("rollup(sensor) resolved to %q, %v", level, err)
	}

	srv := New(Options{})
	defer srv.Close()
	srv.plants["plant-echo"] = ps
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for query, want := range map[string]string{"": "plant", "?level=machine": "machine"} {
		var rr wire.RollupResponse
		if err := json.Unmarshal(getBody(t, ts.URL+"/v1/plants/plant-echo/rollup"+query), &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Level != want {
			t.Fatalf("rollup%s echoed level %q, want %q", query, rr.Level, want)
		}
	}
}
