package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gateway"
)

// testTenants is the authenticated-mode fixture shared by the gateway
// integration tests: one scoped tenant, one operator.
func testTenants() map[string]gateway.Tenant {
	return map[string]gateway.Tenant{
		"key-acme": {Name: "acme", Plants: []string{"p1"}},
		"key-op":   {Name: "op"},
	}
}

// The v1 surface, pinned. A new endpoint must be added here AND to the
// route table (and the package doc) — the test fails on any drift in
// either direction.
var wantRoutes = []string{
	"GET /healthz",
	"POST /v1/plants",
	"GET /v1/plants",
	"POST /v1/plants/{id}/ingest",
	"POST /v1/plants/{id}/jobs",
	"GET /v1/plants/{id}/report",
	"GET /v1/plants/{id}/rollup",
	"GET /v1/plants/{id}/cube",
	"GET /v1/plants/{id}/alerts",
	"GET /v1/plants/{id}/stats",
	"GET /v1/plants/{id}/backup",
	"POST /v1/plants/{id}/restore",
	"GET /v1/subscribe",
	"GET /v1/events",
	"GET /v1/cluster/status",
	"POST /v1/cluster/membership",
	"POST /v1/cluster/replicate",
	"POST /v1/cluster/release",
	"GET /v1/plants/{id}/wal",
}

func TestRouteTablePinned(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	got := map[string]bool{}
	openCount := 0
	for _, rt := range s.routes() {
		key := rt.method + " " + rt.pattern
		if got[key] {
			t.Fatalf("duplicate route %s", key)
		}
		got[key] = true
		if rt.handler == nil {
			t.Fatalf("route %s has a nil handler", key)
		}
		if rt.open {
			openCount++
			if rt.pattern != "/healthz" {
				t.Errorf("route %s skips the middleware chain; only /healthz may", key)
			}
		}
	}
	for _, key := range wantRoutes {
		if !got[key] {
			t.Errorf("route table is missing %s", key)
		}
		delete(got, key)
	}
	for key := range got {
		t.Errorf("route table has unpinned route %s", key)
	}
	if openCount != 1 {
		t.Errorf("open routes = %d, want 1 (/healthz)", openCount)
	}
}

// TestRouteTableMatchesClusterSpec pins the server's route table
// against the routing tier's copy of the surface: the router proxies
// exactly what cluster.V1Routes says, so any drift between the two
// tables would silently strand an endpoint outside the cluster.
func TestRouteTableMatchesClusterSpec(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	served := map[string]bool{}
	for _, rt := range s.routes() {
		served[rt.method+" "+rt.pattern] = true
	}
	specs := append(cluster.V1Routes(), cluster.NodeRoutes()...)
	for _, sp := range specs {
		key := sp.Method + " " + sp.Pattern
		if !served[key] {
			t.Errorf("cluster route spec %s is not in the server's route table", key)
		}
		delete(served, key)
	}
	for key := range served {
		t.Errorf("server route %s is missing from the cluster route specs", key)
	}
}

// TestEveryRouteMounted proves the table is what New actually serves:
// each entry answers something other than the mux's own text/plain 404
// fallback (handler-level JSON 404s for the unknown plant id count as
// mounted).
func TestEveryRouteMounted(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	for _, rt := range s.routes() {
		path := strings.ReplaceAll(rt.pattern, "{id}", "nope")
		req := httptest.NewRequest(rt.method, path, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code == 405 {
			t.Errorf("%s %s: method not allowed — pattern/method mismatch", rt.method, path)
		}
		if rec.Code == 404 && !strings.Contains(rec.Header().Get("Content-Type"), "json") {
			t.Errorf("%s %s: mux fallback 404 — route not mounted", rt.method, path)
		}
	}
}

// TestHealthzOpenWithAuth pins the one middleware exemption: liveness
// answers without a key even in authenticated mode, while the rest of
// the surface demands one.
func TestHealthzOpenWithAuth(t *testing.T) {
	s := New(Options{Tenants: testTenants()})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz = %d with auth enabled, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/plants", nil))
	if rec.Code != 401 {
		t.Fatalf("unauthenticated list = %d, want 401", rec.Code)
	}
}
