package server

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/internal/intern"
	"repro/internal/plant"
	"repro/internal/timeseries"
	"repro/pkg/hod/wire"
)

// maxSampleIndex limits a single ingested cell: it bounds the memory
// one malformed record can pin, not the fleet's total volume.
const maxSampleIndex = 1 << 16 // samples per (job, phase, sensor)

// The server compiles against the shared wire package — pkg/hod/wire
// is the single source of truth for the v1 protocol, shared with the
// typed client (pkg/hod.Client).
type (
	Record   = wire.Record
	JobMeta  = wire.JobMeta
	Topology = wire.Topology
	TopoLine = wire.TopoLine
)

// topoWithDefaults fills the omitted topology fields with the
// simulator's shapes, so a plantsim trace replays without ceremony.
func topoWithDefaults(t Topology) Topology {
	if len(t.Phases) == 0 {
		t.Phases = append([]string(nil), plant.PhaseNames...)
	}
	if len(t.Sensors) == 0 {
		t.Sensors = append([]string(nil), plant.SensorNames...)
	}
	if len(t.EnvSensors) == 0 {
		t.EnvSensors = []string{"room-temp", "humidity"}
	}
	if t.SetupDims <= 0 {
		t.SetupDims = wire.DefaultSetupDims
	}
	if t.CAQDims <= 0 {
		t.CAQDims = wire.DefaultCAQDims
	}
	return t
}

// cellGrid holds the per-sensor sample buffers of one (job, phase),
// indexed by interned sensor id. Cells are written set-at-index with
// NaN holes, so replayed batches are idempotent — the retry story
// after a 429 needs no dedup state.
type cellGrid struct {
	bufs [][]float64 // sensor id → samples
}

// set writes one sample and reports whether the cell was previously
// empty (a fresh observation rather than an idempotent overwrite) and
// whether the stored value changed at all.
func (g *cellGrid) set(sensor int32, t int, v float64) (fresh, changed bool) {
	buf := g.bufs[sensor]
	for len(buf) <= t {
		buf = append(buf, math.NaN())
	}
	fresh = math.IsNaN(buf[t])
	changed = fresh || buf[t] != v
	buf[t] = v
	g.bufs[sensor] = buf
	return fresh, changed
}

type jobStore struct {
	setup, caq []float64
	faulty     bool
	hasMeta    bool
	phases     []*cellGrid // phase id → grid, nil until touched
}

// machineStore buffers one machine's ingested data. Exactly one shard
// worker writes it (machines hash onto shards), the lock exists for
// the report-side snapshot reads. Jobs are reachable two ways over the
// same jobStore pointers: by name for the read/snapshot side and by
// interned id for the fold path.
type machineStore struct {
	mu                sync.Mutex
	rev               uint64
	nPhases, nSensors int
	jobs              map[string]*jobStore
	jobsByID          map[int32]*jobStore
}

func newMachineStore(nPhases, nSensors int) *machineStore {
	return &machineStore{
		nPhases: nPhases, nSensors: nSensors,
		jobs:     make(map[string]*jobStore),
		jobsByID: make(map[int32]*jobStore),
	}
}

// job returns (creating if needed) the store of one job. Callers must
// hold mu and pass the interned id with its name.
func (ms *machineStore) job(id int32, name string) *jobStore {
	j, ok := ms.jobsByID[id]
	if !ok {
		// The name map can already hold the job when a legacy snapshot
		// was applied before its id existed; re-link rather than fork.
		if j, ok = ms.jobs[name]; !ok {
			j = &jobStore{phases: make([]*cellGrid, ms.nPhases)}
			ms.jobs[name] = j
		}
		ms.jobsByID[id] = j
	}
	return j
}

// setRef folds one interned machine record. jobs resolves the job name
// on the one-time create path.
func (ms *machineStore) setRef(ref recordRef, jobs *intern.DynTable) (fresh, changed bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	j, ok := ms.jobsByID[ref.job]
	if !ok {
		j = ms.job(ref.job, jobs.Name(ref.job))
	}
	g := j.phases[ref.phase]
	if g == nil {
		g = &cellGrid{bufs: make([][]float64, ms.nSensors)}
		j.phases[ref.phase] = g
	}
	fresh, changed = g.set(ref.sensor, int(ref.t), ref.value)
	if changed {
		ms.rev++
	}
	return fresh, changed
}

// setMeta applies one job's metadata and reports whether anything
// changed. Re-applying identical metadata — a client retry or a WAL
// replay — must not advance the revision, or a recovered server would
// drift from an uninterrupted one.
func (ms *machineStore) setMeta(id int32, m JobMeta) (changed bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	j := ms.job(id, m.Job)
	if j.hasMeta && j.faulty == m.Faulty && slices.Equal(j.setup, m.Setup) && slices.Equal(j.caq, m.CAQ) {
		return false
	}
	j.setup = append([]float64(nil), m.Setup...)
	j.caq = append([]float64(nil), m.CAQ...)
	j.faulty = m.Faulty
	j.hasMeta = true
	ms.rev++
	return true
}

// envStore buffers the shared shop-floor climate series, indexed by
// interned environment-sensor id.
type envStore struct {
	mu   sync.Mutex
	rev  uint64
	bufs [][]float64 // env sensor id → samples
}

func newEnvStore(nSensors int) *envStore {
	return &envStore{bufs: make([][]float64, nSensors)}
}

func (es *envStore) set(sensor int32, t int, v float64) (fresh, changed bool) {
	es.mu.Lock()
	defer es.mu.Unlock()
	buf := es.bufs[sensor]
	for len(buf) <= t {
		buf = append(buf, math.NaN())
	}
	fresh = math.IsNaN(buf[t])
	changed = fresh || buf[t] != v
	if changed {
		es.rev++
	}
	buf[t] = v
	es.bufs[sensor] = buf
	return fresh, changed
}

// assemblyStart anchors the assembled time axes. Detection never reads
// wall-clock positions — only sample indices — so a fixed epoch keeps
// snapshots reproducible.
var assemblyStart = time.Date(2026, 6, 1, 6, 0, 0, 0, time.UTC)

// buildMachine materialises one machine's plant view from its store:
// jobs in ID order, phases in schedule order, sensors in registered
// order, NaN holes linearly interpolated. Returns nil when the machine
// has no complete phase yet.
func buildMachine(topo Topology, lineID, machineID string, ms *machineStore) (*plant.Machine, uint64, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if len(ms.jobs) == 0 {
		return nil, ms.rev, nil
	}
	jobIDs := make([]string, 0, len(ms.jobs))
	for id := range ms.jobs {
		jobIDs = append(jobIDs, id)
	}
	sort.Strings(jobIDs)

	m := &plant.Machine{ID: machineID, Line: lineID}
	offset := 0
	for _, jobID := range jobIDs {
		js := ms.jobs[jobID]
		job := &plant.Job{
			ID:      jobID,
			Machine: machineID,
			Line:    lineID,
			Start:   assemblyStart.Add(time.Duration(offset) * time.Second),
			Faulty:  js.faulty,
		}
		job.Setup = padVector(js.setup, topo.SetupDims)
		job.CAQ = padVector(js.caq, topo.CAQDims)
		for phID, phName := range topo.Phases {
			if phID >= len(js.phases) {
				break
			}
			g := js.phases[phID]
			if g == nil {
				continue
			}
			n := 0
			for _, buf := range g.bufs {
				if len(buf) > n {
					n = len(buf)
				}
			}
			if n == 0 {
				continue
			}
			phStart := assemblyStart.Add(time.Duration(offset) * time.Second)
			dims := make([]*timeseries.Series, 0, len(topo.Sensors))
			for sID, sensor := range topo.Sensors {
				var cells []float64
				if sID < len(g.bufs) {
					cells = g.bufs[sID]
				}
				vals := make([]float64, n)
				copy(vals, cells)
				for i := len(cells); i < n; i++ {
					vals[i] = math.NaN()
				}
				timeseries.Interpolate(vals)
				dims = append(dims, timeseries.New(sensor, phStart, time.Second, vals))
			}
			sensors, err := timeseries.NewMulti(dims...)
			if err != nil {
				return nil, ms.rev, fmt.Errorf("server: machine %s job %s phase %s: %w", machineID, jobID, phName, err)
			}
			job.Phases = append(job.Phases, &plant.Phase{Name: phName, Sensors: sensors})
			offset += n
		}
		if len(job.Phases) == 0 {
			continue
		}
		m.Jobs = append(m.Jobs, job)
	}
	if len(m.Jobs) == 0 {
		return nil, ms.rev, nil
	}
	return m, ms.rev, nil
}

// buildEnvironment materialises the climate multi-series; sensors with
// no data become empty series so the hierarchy's environment level
// degrades to "nothing detected" instead of erroring.
func (es *envStore) build(topo Topology) (*timeseries.MultiSeries, uint64, error) {
	es.mu.Lock()
	defer es.mu.Unlock()
	dims := make([]*timeseries.Series, 0, len(topo.EnvSensors))
	n := 0
	for id := range topo.EnvSensors {
		if id < len(es.bufs) && len(es.bufs[id]) > n {
			n = len(es.bufs[id])
		}
	}
	for id, s := range topo.EnvSensors {
		var cells []float64
		if id < len(es.bufs) {
			cells = es.bufs[id]
		}
		vals := make([]float64, n)
		copy(vals, cells)
		for i := len(cells); i < n; i++ {
			vals[i] = math.NaN()
		}
		timeseries.Interpolate(vals)
		dims = append(dims, timeseries.New(s, assemblyStart, time.Second, vals))
	}
	ms, err := timeseries.NewMulti(dims...)
	if err != nil {
		return nil, es.rev, err
	}
	return ms, es.rev, nil
}

func padVector(v []float64, dims int) []float64 {
	out := make([]float64, dims)
	copy(out, v)
	return out
}
