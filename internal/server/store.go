package server

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/internal/plant"
	"repro/internal/timeseries"
	"repro/pkg/hod/wire"
)

// maxSampleIndex limits a single ingested cell: it bounds the memory
// one malformed record can pin, not the fleet's total volume.
const maxSampleIndex = 1 << 16 // samples per (job, phase, sensor)

// The server compiles against the shared wire package — pkg/hod/wire
// is the single source of truth for the v1 protocol, shared with the
// typed client (pkg/hod.Client).
type (
	Record   = wire.Record
	JobMeta  = wire.JobMeta
	Topology = wire.Topology
	TopoLine = wire.TopoLine
)

// topoWithDefaults fills the omitted topology fields with the
// simulator's shapes, so a plantsim trace replays without ceremony.
func topoWithDefaults(t Topology) Topology {
	if len(t.Phases) == 0 {
		t.Phases = append([]string(nil), plant.PhaseNames...)
	}
	if len(t.Sensors) == 0 {
		t.Sensors = append([]string(nil), plant.SensorNames...)
	}
	if len(t.EnvSensors) == 0 {
		t.EnvSensors = []string{"room-temp", "humidity"}
	}
	if t.SetupDims <= 0 {
		t.SetupDims = wire.DefaultSetupDims
	}
	if t.CAQDims <= 0 {
		t.CAQDims = wire.DefaultCAQDims
	}
	return t
}

// cellGrid holds the per-sensor sample buffers of one (job, phase).
// Cells are written set-at-index with NaN holes, so replayed batches
// are idempotent — the retry story after a 429 needs no dedup state.
type cellGrid struct {
	cells map[string][]float64
}

// set writes one sample and reports whether the cell was previously
// empty (a fresh observation rather than an idempotent overwrite) and
// whether the stored value changed at all.
func (g *cellGrid) set(sensor string, t int, v float64) (fresh, changed bool) {
	buf := g.cells[sensor]
	for len(buf) <= t {
		buf = append(buf, math.NaN())
	}
	fresh = math.IsNaN(buf[t])
	changed = fresh || buf[t] != v
	buf[t] = v
	g.cells[sensor] = buf
	return fresh, changed
}

type jobStore struct {
	setup, caq []float64
	faulty     bool
	hasMeta    bool
	phases     map[string]*cellGrid
}

// machineStore buffers one machine's ingested data. Exactly one shard
// worker writes it (machines hash onto shards), the lock exists for
// the report-side snapshot reads.
type machineStore struct {
	mu   sync.Mutex
	rev  uint64
	jobs map[string]*jobStore
}

func newMachineStore() *machineStore {
	return &machineStore{jobs: make(map[string]*jobStore)}
}

func (ms *machineStore) job(id string) *jobStore {
	j, ok := ms.jobs[id]
	if !ok {
		j = &jobStore{phases: make(map[string]*cellGrid)}
		ms.jobs[id] = j
	}
	return j
}

func (ms *machineStore) set(rec Record) (fresh, changed bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	j := ms.job(rec.Job)
	g, ok := j.phases[rec.Phase]
	if !ok {
		g = &cellGrid{cells: make(map[string][]float64)}
		j.phases[rec.Phase] = g
	}
	fresh, changed = g.set(rec.Sensor, rec.T, rec.Value)
	if changed {
		ms.rev++
	}
	return fresh, changed
}

// setMeta applies one job's metadata and reports whether anything
// changed. Re-applying identical metadata — a client retry or a WAL
// replay — must not advance the revision, or a recovered server would
// drift from an uninterrupted one.
func (ms *machineStore) setMeta(m JobMeta) (changed bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	j := ms.job(m.Job)
	if j.hasMeta && j.faulty == m.Faulty && slices.Equal(j.setup, m.Setup) && slices.Equal(j.caq, m.CAQ) {
		return false
	}
	j.setup = append([]float64(nil), m.Setup...)
	j.caq = append([]float64(nil), m.CAQ...)
	j.faulty = m.Faulty
	j.hasMeta = true
	ms.rev++
	return true
}

// envStore buffers the shared shop-floor climate series.
type envStore struct {
	mu      sync.Mutex
	rev     uint64
	sensors map[string][]float64
}

func newEnvStore() *envStore {
	return &envStore{sensors: make(map[string][]float64)}
}

func (es *envStore) set(rec Record) (fresh, changed bool) {
	es.mu.Lock()
	defer es.mu.Unlock()
	buf := es.sensors[rec.Sensor]
	for len(buf) <= rec.T {
		buf = append(buf, math.NaN())
	}
	fresh = math.IsNaN(buf[rec.T])
	changed = fresh || buf[rec.T] != rec.Value
	if changed {
		es.rev++
	}
	buf[rec.T] = rec.Value
	es.sensors[rec.Sensor] = buf
	return fresh, changed
}

// assemblyStart anchors the assembled time axes. Detection never reads
// wall-clock positions — only sample indices — so a fixed epoch keeps
// snapshots reproducible.
var assemblyStart = time.Date(2026, 6, 1, 6, 0, 0, 0, time.UTC)

// buildMachine materialises one machine's plant view from its store:
// jobs in ID order, phases in schedule order, sensors in registered
// order, NaN holes linearly interpolated. Returns nil when the machine
// has no complete phase yet.
func buildMachine(topo Topology, lineID, machineID string, ms *machineStore) (*plant.Machine, uint64, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if len(ms.jobs) == 0 {
		return nil, ms.rev, nil
	}
	jobIDs := make([]string, 0, len(ms.jobs))
	for id := range ms.jobs {
		jobIDs = append(jobIDs, id)
	}
	sort.Strings(jobIDs)

	m := &plant.Machine{ID: machineID, Line: lineID}
	offset := 0
	for _, jobID := range jobIDs {
		js := ms.jobs[jobID]
		job := &plant.Job{
			ID:      jobID,
			Machine: machineID,
			Line:    lineID,
			Start:   assemblyStart.Add(time.Duration(offset) * time.Second),
			Faulty:  js.faulty,
		}
		job.Setup = padVector(js.setup, topo.SetupDims)
		job.CAQ = padVector(js.caq, topo.CAQDims)
		for _, phName := range topo.Phases {
			g, ok := js.phases[phName]
			if !ok {
				continue
			}
			n := 0
			for _, buf := range g.cells {
				if len(buf) > n {
					n = len(buf)
				}
			}
			if n == 0 {
				continue
			}
			phStart := assemblyStart.Add(time.Duration(offset) * time.Second)
			dims := make([]*timeseries.Series, 0, len(topo.Sensors))
			for _, sensor := range topo.Sensors {
				vals := make([]float64, n)
				copy(vals, g.cells[sensor])
				for i := len(g.cells[sensor]); i < n; i++ {
					vals[i] = math.NaN()
				}
				timeseries.Interpolate(vals)
				dims = append(dims, timeseries.New(sensor, phStart, time.Second, vals))
			}
			sensors, err := timeseries.NewMulti(dims...)
			if err != nil {
				return nil, ms.rev, fmt.Errorf("server: machine %s job %s phase %s: %w", machineID, jobID, phName, err)
			}
			job.Phases = append(job.Phases, &plant.Phase{Name: phName, Sensors: sensors})
			offset += n
		}
		if len(job.Phases) == 0 {
			continue
		}
		m.Jobs = append(m.Jobs, job)
	}
	if len(m.Jobs) == 0 {
		return nil, ms.rev, nil
	}
	return m, ms.rev, nil
}

// buildEnvironment materialises the climate multi-series; sensors with
// no data become empty series so the hierarchy's environment level
// degrades to "nothing detected" instead of erroring.
func (es *envStore) build(topo Topology) (*timeseries.MultiSeries, uint64, error) {
	es.mu.Lock()
	defer es.mu.Unlock()
	dims := make([]*timeseries.Series, 0, len(topo.EnvSensors))
	n := 0
	for _, s := range topo.EnvSensors {
		if len(es.sensors[s]) > n {
			n = len(es.sensors[s])
		}
	}
	for _, s := range topo.EnvSensors {
		vals := make([]float64, n)
		copy(vals, es.sensors[s])
		for i := len(es.sensors[s]); i < n; i++ {
			vals[i] = math.NaN()
		}
		timeseries.Interpolate(vals)
		dims = append(dims, timeseries.New(s, assemblyStart, time.Second, vals))
	}
	ms, err := timeseries.NewMulti(dims...)
	if err != nil {
		return nil, es.rev, err
	}
	return ms, es.rev, nil
}

func padVector(v []float64, dims int) []float64 {
	out := make([]float64, dims)
	copy(out, v)
	return out
}
