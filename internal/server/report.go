package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/parallel"
)

// FleetOutlier is one outlier of the fleet report, tagged with the
// machine it belongs to.
type FleetOutlier struct {
	Machine string `json:"machine"`
	core.Outlier
}

// FleetWarning is one measurement-error warning, machine-tagged.
type FleetWarning struct {
	Machine string `json:"machine"`
	Reason  string `json:"reason"`
}

// ReportResponse is the fleet outlier report: per-machine Algorithm 1
// runs over the incremental snapshot, ranked fleet-wide, top-K
// truncated.
type ReportResponse struct {
	Plant         string         `json:"plant"`
	Level         string         `json:"level"`
	Machines      []string       `json:"machines"`
	Missing       []string       `json:"missing,omitempty"`
	TotalOutliers int            `json:"total_outliers"`
	TopK          int            `json:"top_k"`
	Outliers      []FleetOutlier `json:"outliers"`
	Warnings      []FleetWarning `json:"warnings,omitempty"`
	DataRevision  uint64         `json:"data_revision"`
}

// handleReport computes (or serves from cache) the hierarchical
// outlier report. ?level=1..5 (or a level name) picks the start level,
// ?top=K bounds the outlier list, ?machine=id restricts to one
// machine's drill-down.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request, ps *plantState) {
	level, err := parseLevel(r.URL.Query().Get("level"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	topK := queryInt(r, "top", 20)
	machineFilter := r.URL.Query().Get("machine")

	ps.reportMu.Lock()
	defer ps.reportMu.Unlock()
	if err := ps.snapshot(); err != nil {
		writeErr(w, http.StatusInternalServerError, "snapshot: "+err.Error())
		return
	}
	if ps.assembled == nil || len(ps.assembled.Lines) == 0 {
		writeErr(w, http.StatusConflict, "no data ingested yet")
		return
	}

	machines := ps.activeMachines()
	if machineFilter != "" {
		found := false
		for _, id := range machines {
			if id == machineFilter {
				found = true
				break
			}
		}
		if !found {
			writeErr(w, http.StatusNotFound, fmt.Sprintf("machine %q has no data (or is unregistered)", machineFilter))
			return
		}
		machines = []string{machineFilter}
	}
	var missing []string
	for m := range ps.machineLine {
		if _, err := ps.assembled.MachineByID(m); err != nil {
			missing = append(missing, m)
		}
	}
	sort.Strings(missing) // map iteration order must not leak into responses

	reports, err := ps.reportsFor(machines, level, s.opts)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}

	resp := ReportResponse{
		Plant: ps.topo.ID, Level: level.String(), Machines: machines,
		Missing: missing, TopK: topK, DataRevision: ps.assembledRev,
	}
	var tagged []FleetOutlier
	for i, rep := range reports {
		for _, o := range rep.Outliers {
			tagged = append(tagged, FleetOutlier{Machine: machines[i], Outlier: o})
		}
		for _, warn := range rep.Warnings {
			resp.Warnings = append(resp.Warnings, FleetWarning{Machine: machines[i], Reason: warn.Reason})
		}
	}
	resp.TotalOutliers = len(tagged)
	// Rank fleet-wide with the paper's comparator; the stable sort
	// keeps topology order for equal triples — deterministic responses.
	sort.SliceStable(tagged, func(i, j int) bool {
		return core.RankLess(tagged[i].Outlier, tagged[j].Outlier)
	})
	if topK < len(tagged) {
		tagged = tagged[:topK]
	}
	resp.Outliers = tagged
	writeJSON(w, http.StatusOK, resp)
}

// reportsFor runs Algorithm 1 for each machine (parallel fan-out via
// internal/parallel, bounded by the -workers knob), serving untouched
// machines from the per-revision report cache.
func (ps *plantState) reportsFor(machines []string, level core.Level, opts Options) ([]*core.Report, error) {
	coreOpts := core.Options{MaxOutliers: opts.MaxOutliers}
	out := make([]*core.Report, len(machines))
	var misses []int
	for i, id := range machines {
		if rep, ok := ps.reports[reportKey{id, level}]; ok {
			out[i] = rep
		} else {
			misses = append(misses, i)
		}
	}
	if len(misses) == 0 {
		return out, nil
	}
	// Hierarchies must exist before the parallel section (map writes).
	hs := make([]*core.Hierarchy, len(misses))
	for k, i := range misses {
		h, err := ps.hierarchyFor(machines[i])
		if err != nil {
			return nil, err
		}
		hs[k] = h
	}
	reps, err := parallel.Map(len(misses), opts.Workers, func(k int) (*core.Report, error) {
		return core.FindHierarchicalOutliers(hs[k], level, coreOpts)
	})
	if err != nil {
		return nil, err
	}
	for k, i := range misses {
		out[i] = reps[k]
		ps.reports[reportKey{machines[i], level}] = reps[k]
	}
	return out, nil
}

func parseLevel(s string) (core.Level, error) {
	switch s {
	case "", "1", "phase":
		return core.LevelPhase, nil
	case "2", "job":
		return core.LevelJob, nil
	case "3", "environment", "env":
		return core.LevelEnvironment, nil
	case "4", "production-line", "line":
		return core.LevelProductionLine, nil
	case "5", "production":
		return core.LevelProduction, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		lv := core.Level(n)
		if lv.Valid() {
			return lv, nil
		}
	}
	return 0, fmt.Errorf("unknown level %q (want 1..5 or phase|job|environment|production-line|production)", s)
}
