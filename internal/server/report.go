package server

import (
	"fmt"
	"net/http"
	"sort"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/pkg/hod/wire"
)

// The report wire shapes live in pkg/hod/wire, shared with the typed
// client; the server only converts core results onto them.
type (
	FleetOutlier   = wire.FleetOutlier
	FleetWarning   = wire.FleetWarning
	ReportResponse = wire.ReportResponse
)

// handleReport computes (or serves from cache) the hierarchical
// outlier report. ?level=1..5 (or a level name) picks the start level,
// ?top=K bounds the outlier list, ?machine=id restricts to one
// machine's drill-down.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request, ps *plantState) {
	level, err := parseLevel(r.URL.Query().Get("level"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	topK, err := queryInt(r, "top", 20)
	if err != nil {
		writeErr(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	machineFilter := r.URL.Query().Get("machine")

	ps.reportMu.Lock()
	defer ps.reportMu.Unlock()
	if err := ps.snapshot(); err != nil {
		writeErr(w, http.StatusInternalServerError, wire.CodeInternal, "snapshot: "+err.Error())
		return
	}
	if ps.assembled == nil || len(ps.assembled.Lines) == 0 {
		writeErr(w, http.StatusConflict, wire.CodeNoData, "no data ingested yet")
		return
	}

	machines := ps.activeMachines()
	if machineFilter != "" {
		found := false
		for _, id := range machines {
			if id == machineFilter {
				found = true
				break
			}
		}
		if !found {
			writeErr(w, http.StatusNotFound, wire.CodeUnknownMachine,
				fmt.Sprintf("machine %q has no data (or is unregistered)", machineFilter))
			return
		}
		machines = []string{machineFilter}
	}
	var missing []string
	for m := range ps.machineLine {
		if _, err := ps.assembled.MachineByID(m); err != nil {
			missing = append(missing, m)
		}
	}
	sort.Strings(missing) // map iteration order must not leak into responses

	reports, err := ps.reportsFor(machines, level, s.opts)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
		return
	}

	resp := ReportResponse{
		Plant: ps.topo.ID, Level: level.String(), Machines: machines,
		Missing: missing, TopK: topK, DataRevision: ps.assembledRev,
	}
	// Rank fleet-wide with the paper's comparator while still holding
	// core.Outlier values; the stable sort keeps topology order for
	// equal triples — deterministic responses.
	type tagged struct {
		machine string
		outlier core.Outlier
	}
	var all []tagged
	for i, rep := range reports {
		for _, o := range rep.Outliers {
			all = append(all, tagged{machines[i], o})
		}
		for _, warn := range rep.Warnings {
			resp.Warnings = append(resp.Warnings, FleetWarning{Machine: machines[i], Reason: warn.Reason})
		}
	}
	resp.TotalOutliers = len(all)
	sort.SliceStable(all, func(i, j int) bool {
		return core.RankLess(all[i].outlier, all[j].outlier)
	})
	if topK < len(all) {
		all = all[:topK]
	}
	resp.Outliers = make([]FleetOutlier, len(all))
	for i, t := range all {
		resp.Outliers[i] = FleetOutlier{Machine: t.machine, Outlier: t.outlier.Wire()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// reportsFor runs Algorithm 1 for each machine (parallel fan-out via
// internal/parallel, bounded by the -workers knob), serving untouched
// machines from the per-revision report cache.
func (ps *plantState) reportsFor(machines []string, level core.Level, opts Options) ([]*core.Report, error) {
	coreOpts := core.Options{MaxOutliers: opts.MaxOutliers}
	out := make([]*core.Report, len(machines))
	var misses []int
	for i, id := range machines {
		if rep, ok := ps.reports[reportKey{id, level}]; ok {
			out[i] = rep
		} else {
			misses = append(misses, i)
		}
	}
	if len(misses) == 0 {
		return out, nil
	}
	// Hierarchies must exist before the parallel section (map writes).
	hs := make([]*core.Hierarchy, len(misses))
	for k, i := range misses {
		h, err := ps.hierarchyFor(machines[i])
		if err != nil {
			return nil, err
		}
		hs[k] = h
	}
	reps, err := parallel.Map(len(misses), opts.Workers, func(k int) (*core.Report, error) {
		return core.FindHierarchicalOutliers(hs[k], level, coreOpts)
	})
	if err != nil {
		return nil, err
	}
	for k, i := range misses {
		out[i] = reps[k]
		ps.reports[reportKey{machines[i], level}] = reps[k]
	}
	return out, nil
}

// parseLevel maps the wire's level grammar onto the core enum — the
// two packages use the same 1..5 integers.
func parseLevel(s string) (core.Level, error) {
	lv, err := wire.ParseLevel(s)
	if err != nil {
		return 0, err
	}
	return core.Level(lv), nil
}
