package softsensor

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/plant"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

var t0 = time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)

// block builds a three-channel multiseries where target = 2*a - b + 1
// plus noise.
func block(t *testing.T, n int, rng *rand.Rand, corrupt func(i int, tgt []float64)) *timeseries.MultiSeries {
	t.Helper()
	a := make([]float64, n)
	b := make([]float64, n)
	tgt := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64() * 2
		b[i] = rng.NormFloat64()
		tgt[i] = 2*a[i] - b[i] + 1 + rng.NormFloat64()*0.05
	}
	if corrupt != nil {
		for i := range tgt {
			corrupt(i, tgt)
		}
	}
	ms, err := timeseries.NewMulti(
		timeseries.New("a", t0, time.Second, a),
		timeseries.New("b", t0, time.Second, b),
		timeseries.New("target", t0, time.Second, tgt),
	)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestFitRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ms := block(t, 500, rng, nil)
	m, err := Fit(ms, "target", 0)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(ms)
	if err != nil {
		t.Fatal(err)
	}
	tgt := ms.Dim("target")
	if r := stats.Correlation(pred.Values, tgt.Values); r < 0.999 {
		t.Fatalf("prediction correlation %v", r)
	}
	if pred.Name != "soft:target" {
		t.Fatalf("name=%q", pred.Name)
	}
}

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ms := block(t, 500, rng, nil)
	if _, err := Fit(ms, "nope", 0); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput for unknown target")
	}
	short := block(t, 8, rng, nil)
	if _, err := Fit(short, "target", 0); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput for too few samples")
	}
	single, _ := timeseries.NewMulti(timeseries.New("x", t0, time.Second, make([]float64, 50)))
	if _, err := Fit(single, "x", 0); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput without inputs")
	}
}

func TestResidualsFlagLyingSensor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	clean := block(t, 600, rng, nil)
	m, err := Fit(clean, "target", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same generating law, but the target lies between 300 and 320.
	rng2 := rand.New(rand.NewSource(4))
	dirty := block(t, 600, rng2, func(i int, tgt []float64) {
		if i >= 300 && i < 320 {
			tgt[i] += 15
		}
	})
	res, err := m.Residuals(dirty)
	if err != nil {
		t.Fatal(err)
	}
	inside, outside := 0.0, 0.0
	for i, r := range res {
		if i >= 300 && i < 320 {
			if r > inside {
				inside = r
			}
		} else if r > outside {
			outside = r
		}
	}
	if inside < 5*outside {
		t.Fatalf("lying stretch residual %v should dwarf normal max %v", inside, outside)
	}
	// The virtual sensor does NOT support the deviation: inputs were
	// calm, so this is a measurement error.
	ok, err := m.Support(dirty, 310, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("virtual sensor must not support a lone lying target")
	}
}

func TestSupportConfirmsPhysicalShift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	clean := block(t, 600, rng, nil)
	m, err := Fit(clean, "target", 0)
	if err != nil {
		t.Fatal(err)
	}
	// A physical deviation: input a jumps, so the true target moves
	// and the soft prediction moves with it.
	a := make([]float64, 600)
	bvals := make([]float64, 600)
	tgt := make([]float64, 600)
	rng2 := rand.New(rand.NewSource(6))
	for i := range a {
		a[i] = rng2.NormFloat64() * 2
		if i >= 300 {
			a[i] += 10 // physical input shift
		}
		bvals[i] = rng2.NormFloat64()
		tgt[i] = 2*a[i] - bvals[i] + 1 + rng2.NormFloat64()*0.05
	}
	ms, err := timeseries.NewMulti(
		timeseries.New("a", t0, time.Second, a),
		timeseries.New("b", t0, time.Second, bvals),
		timeseries.New("target", t0, time.Second, tgt),
	)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := m.Support(ms, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("virtual sensor should confirm a physical input shift")
	}
	if _, err := m.Support(ms, -1, 4); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput for bad index")
	}
}

func TestOnPlantVibrationChannel(t *testing.T) {
	// The plant's vibration channel has no physical twin; the soft
	// sensor predicts it from temperature and power, providing virtual
	// redundancy.
	p, err := plant.Simulate(plant.Config{Seed: 7, JobsPerMachine: 6})
	if err != nil {
		t.Fatal(err)
	}
	m := p.Machines()[0]
	stream, err := m.PhaseStream()
	if err != nil {
		t.Fatal(err)
	}
	model, err := Fit(stream, "vibration", 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Residuals(stream)
	if err != nil {
		t.Fatal(err)
	}
	// Clean plant: residuals stay moderate.
	if q := stats.Quantile(res, 0.99); q > 6 {
		t.Fatalf("clean-plant vibration residual q99=%v", q)
	}
}

func TestPredictMissingChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ms := block(t, 500, rng, nil)
	m, err := Fit(ms, "target", 0)
	if err != nil {
		t.Fatal(err)
	}
	partial, _ := timeseries.NewMulti(timeseries.New("a", t0, time.Second, make([]float64, 10)))
	if _, err := m.Predict(partial); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput for missing input channel")
	}
	if _, err := (&Model{}).Predict(ms); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput for unfitted model")
	}
}
