// Package softsensor implements soft sensor modelling — "sensors can
// be simulated using software" (paper §5, [40]). A soft sensor
// predicts one physical channel from the others by ridge-regularised
// least squares; the prediction acts as a *virtual redundant sensor*,
// giving the hierarchy a support signal for channels that have no
// physical twin, and its residual is itself an outlier score (the
// fusion of outlier detection and soft sensing the cited work
// proposes).
package softsensor

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// ErrInput is returned for malformed inputs.
var ErrInput = errors.New("softsensor: invalid input")

// Model predicts a target channel from the remaining channels.
type Model struct {
	Target  string
	Inputs  []string
	weights []float64 // per input
	bias    float64
	resStd  float64
	fitted  bool
}

// Fit trains the soft sensor on a (mostly clean) multi-series: target
// is the channel to virtualise, all other channels are inputs. Ridge
// regularisation keeps near-collinear sensor blocks solvable.
func Fit(ms *timeseries.MultiSeries, target string, ridge float64) (*Model, error) {
	tgt := ms.Dim(target)
	if tgt == nil {
		return nil, fmt.Errorf("%w: unknown target %q", ErrInput, target)
	}
	if ms.Width() < 2 {
		return nil, fmt.Errorf("%w: need at least one input channel", ErrInput)
	}
	if ridge <= 0 {
		ridge = 1e-6
	}
	var inputs []*timeseries.Series
	var names []string
	for _, d := range ms.Dims {
		if d.Name != target {
			inputs = append(inputs, d)
			names = append(names, d.Name)
		}
	}
	n := ms.Len()
	k := len(inputs)
	if n < 4*(k+1) {
		return nil, fmt.Errorf("%w: %d samples for %d inputs", ErrInput, n, k)
	}
	// Normal equations with bias: solve (XᵀX + λI)w = Xᵀy where X has a
	// trailing 1-column for the bias.
	dim := k + 1
	xtx := linalg.NewMatrix(dim, dim)
	xty := make([]float64, dim)
	row := make([]float64, dim)
	for t := 0; t < n; t++ {
		for j, in := range inputs {
			row[j] = in.Values[t]
		}
		row[k] = 1
		y := tgt.Values[t]
		for a := 0; a < dim; a++ {
			for b := a; b < dim; b++ {
				xtx.Set(a, b, xtx.At(a, b)+row[a]*row[b])
			}
			xty[a] += row[a] * y
		}
	}
	for a := 0; a < dim; a++ {
		for b := 0; b < a; b++ {
			xtx.Set(a, b, xtx.At(b, a))
		}
		xtx.Set(a, a, xtx.At(a, a)+ridge*float64(n))
	}
	w, err := linalg.SolveSPD(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("softsensor: normal equations: %w", err)
	}
	m := &Model{Target: target, Inputs: names, weights: w[:k], bias: w[k], fitted: true}
	// Residual spread on the training data.
	res := make([]float64, n)
	for t := 0; t < n; t++ {
		res[t] = tgt.Values[t] - m.predictAt(inputs, t)
	}
	m.resStd = stats.StdDev(res)
	if m.resStd < 1e-9 {
		m.resStd = 1e-9
	}
	return m, nil
}

func (m *Model) predictAt(inputs []*timeseries.Series, t int) float64 {
	pred := m.bias
	for j, in := range inputs {
		pred += m.weights[j] * in.Values[t]
	}
	return pred
}

// Predict returns the virtual sensor series for a multi-series with
// the same input channels.
func (m *Model) Predict(ms *timeseries.MultiSeries) (*timeseries.Series, error) {
	if !m.fitted {
		return nil, fmt.Errorf("%w: model not fitted", ErrInput)
	}
	inputs := make([]*timeseries.Series, len(m.Inputs))
	for j, name := range m.Inputs {
		d := ms.Dim(name)
		if d == nil {
			return nil, fmt.Errorf("%w: input channel %q missing", ErrInput, name)
		}
		inputs[j] = d
	}
	vals := make([]float64, ms.Len())
	for t := range vals {
		vals[t] = m.predictAt(inputs, t)
	}
	return timeseries.New("soft:"+m.Target, ms.Start, ms.Step, vals), nil
}

// Residuals returns the standardised residuals |actual−predicted|/σ —
// the fused outlier score of the soft-sensor approach. A channel that
// departs from what its peers imply is either faulty or lying; cross
// checking with the peers' own scores disambiguates (see Support).
func (m *Model) Residuals(ms *timeseries.MultiSeries) ([]float64, error) {
	pred, err := m.Predict(ms)
	if err != nil {
		return nil, err
	}
	tgt := ms.Dim(m.Target)
	if tgt == nil {
		return nil, fmt.Errorf("%w: target channel %q missing", ErrInput, m.Target)
	}
	out := make([]float64, ms.Len())
	for t := range out {
		out[t] = math.Abs(tgt.Values[t]-pred.Values[t]) / m.resStd
	}
	return out, nil
}

// Support reports, for an outlier at sample t on the target channel,
// whether the virtual sensor *confirms* the measured value: true when
// the measurement agrees with what the peer channels imply (small
// standardised residual). A physically deviating process moves the
// inputs too, so the prediction follows the measurement and support
// holds; a lone lying sensor departs from its prediction and support
// fails — virtual redundancy in the sense of the paper's support
// value.
func (m *Model) Support(ms *timeseries.MultiSeries, t int, threshold float64) (bool, error) {
	if t < 0 || t >= ms.Len() {
		return false, fmt.Errorf("%w: sample %d out of range", ErrInput, t)
	}
	if threshold <= 0 {
		threshold = 4
	}
	res, err := m.Residuals(ms)
	if err != nil {
		return false, err
	}
	return res[t] < threshold, nil
}
