// Package parallel provides the bounded worker pool and deterministic
// ordered fan-out primitives the experiment engine runs on.
//
// Every fan-out collects its results by index, so callers observe
// exactly the output a sequential loop would have produced — parallel
// evaluation is an implementation detail, not a semantic change. RNG
// discipline is the caller's job: each work item must derive its own
// generator (e.g. rand.New(rand.NewSource(seed+i))) instead of sharing
// one across items.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: n > 0 is taken as-is, anything
// else falls back to GOMAXPROCS, so a zero value always means "use the
// hardware".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(0..n-1) on at most workers goroutines (0 =
// GOMAXPROCS) and returns the results in index order. When calls fail,
// the error of the lowest index wins — the same error a sequential
// loop would have surfaced first. All n calls run to completion even
// after a failure, keeping side effects (caches, RNG draws inside an
// item) independent of scheduling.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers = Workers(workers)
	if workers == 1 || n == 1 {
		// Strictly sequential fast path: no goroutines at all, so a
		// workers=1 run is bit-for-bit the reference execution.
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
	} else {
		if workers > n {
			workers = n
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
