package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d]=%d want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	want := errors.New("boom-3")
	_, err := Map(20, 8, func(i int) (int, error) {
		if i == 3 {
			return 0, want
		}
		if i > 10 {
			return 0, fmt.Errorf("boom-%d", i)
		}
		return i, nil
	})
	if err != want {
		t.Fatalf("err=%v want %v", err, want)
	}
}

func TestMapRunsEveryItemDespiteError(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(30, 4, func(i int) (int, error) {
		calls.Add(1)
		return 0, errors.New("always")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if calls.Load() != 30 {
		t.Fatalf("calls=%d want 30", calls.Load())
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit count must pass through")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("fallback must be at least 1")
	}
}
