package corpus

import (
	"errors"
	"math/rand"
	"testing"
)

func engine() *Engine {
	return NewEngine([]Document{
		{ID: 0, Topics: []string{"anomaly detection", "time series"}, Categories: []string{"automation control systems"}},
		{ID: 1, Topics: []string{"anomaly detection", "time series"}, Categories: []string{"computer science"}},
		{ID: 2, Topics: []string{"anomaly detection"}, Categories: []string{"computer science"}},
		{ID: 3, Topics: []string{"fault detection", "time series"}, Categories: []string{"automation control systems"}},
	})
}

func TestSearchConjunction(t *testing.T) {
	e := engine()
	ids, err := e.Search(Query{Topics: []string{"anomaly detection", "time series"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("ids=%v", ids)
	}
	n, err := e.Count(Query{Topics: []string{"anomaly detection"}})
	if err != nil || n != 3 {
		t.Fatalf("count=%d err=%v", n, err)
	}
}

func TestCategoryFacet(t *testing.T) {
	e := engine()
	n, err := e.Count(Query{Topics: []string{"anomaly detection", "time series"}, Category: "automation control systems"})
	if err != nil || n != 1 {
		t.Fatalf("count=%d err=%v", n, err)
	}
}

func TestNormalization(t *testing.T) {
	e := engine()
	n, err := e.Count(Query{Topics: []string{"  Anomaly   DETECTION "}})
	if err != nil || n != 3 {
		t.Fatalf("case/space-insensitive count=%d err=%v", n, err)
	}
}

func TestEmptyQueryAndMisses(t *testing.T) {
	e := engine()
	if _, err := e.Search(Query{}); !errors.Is(err, ErrQuery) {
		t.Fatal("want ErrQuery")
	}
	n, err := e.Count(Query{Topics: []string{"no such topic"}})
	if err != nil || n != 0 {
		t.Fatalf("miss count=%d err=%v", n, err)
	}
	// Early-exit path: first term matches, second doesn't.
	n, _ = e.Count(Query{Topics: []string{"anomaly detection", "no such topic"}})
	if n != 0 {
		t.Fatalf("conjunction with miss=%d", n)
	}
}

func TestIntersect(t *testing.T) {
	got := intersect([]int{1, 3, 5, 7}, []int{2, 3, 5, 8})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("intersect=%v", got)
	}
	if intersect(nil, []int{1}) != nil {
		t.Fatal("empty intersect should be nil")
	}
}

func TestFig3CorpusReproducesCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	docs := GenerateFig3Corpus(rng)
	e := NewEngine(docs)
	if e.Size() < 5000 {
		t.Fatalf("corpus size=%d suspiciously small", e.Size())
	}
	rows, err := RunFig3(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig3Calibration) {
		t.Fatalf("rows=%d", len(rows))
	}
	for i, row := range rows {
		cal := Fig3Calibration[i]
		if row.TimeSeries != cal.TimeSeries {
			t.Fatalf("%s: TS=%d want %d", row.Term, row.TimeSeries, cal.TimeSeries)
		}
		if row.Automation != cal.Automation {
			t.Fatalf("%s: ACS=%d want %d", row.Term, row.Automation, cal.Automation)
		}
	}
}

func TestFig3ShapeProperties(t *testing.T) {
	// The qualitative shape of Fig. 3 that any reproduction must hold:
	// anomaly detection dominates the time-series counts, fault
	// detection dominates the automation-category counts, and deviant
	// discovery is negligible in both.
	rng := rand.New(rand.NewSource(2))
	e := NewEngine(GenerateFig3Corpus(rng))
	rows, err := RunFig3(e)
	if err != nil {
		t.Fatal(err)
	}
	byTerm := map[string]Fig3Row{}
	for _, r := range rows {
		byTerm[r.Term] = r
	}
	for _, r := range rows {
		if r.Term != "anomaly detection" && r.TimeSeries >= byTerm["anomaly detection"].TimeSeries {
			t.Fatalf("%s TS count %d >= anomaly detection", r.Term, r.TimeSeries)
		}
		if r.Term != "fault detection" && r.Automation >= byTerm["fault detection"].Automation {
			t.Fatalf("%s ACS count %d >= fault detection", r.Term, r.Automation)
		}
	}
	dd := byTerm["deviant discovery"]
	if dd.TimeSeries > 20 {
		t.Fatalf("deviant discovery should be negligible, got %d", dd.TimeSeries)
	}
}

func TestDeterministicCorpusForSeed(t *testing.T) {
	a := GenerateFig3Corpus(rand.New(rand.NewSource(3)))
	b := GenerateFig3Corpus(rand.New(rand.NewSource(3)))
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for i := range a {
		if a[i].Title != b[i].Title {
			t.Fatal("same seed must reproduce the corpus")
		}
	}
}
