// Package corpus implements a small in-memory bibliographic search
// engine — inverted index, boolean AND queries over topic phrases,
// category facets — plus a synthetic corpus generator calibrated to
// the paper's Fig. 3. The paper built Fig. 3 by querying Web of
// Science for eight outlier-detection synonyms, filtering each by
// "time series" and then by the category "automation control systems";
// this package reproduces that query pipeline over a corpus we can
// ship.
package corpus

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// ErrQuery is returned for malformed queries.
var ErrQuery = errors.New("corpus: invalid query")

// Document is one bibliographic record.
type Document struct {
	ID         int
	Title      string
	Topics     []string // topic phrases, e.g. "anomaly detection"
	Categories []string // WoS-style subject categories
	Year       int
}

// Engine is an inverted-index search engine over documents.
type Engine struct {
	docs []Document
	// topic phrase → sorted doc IDs
	topicIndex map[string][]int
	// category → sorted doc IDs
	categoryIndex map[string][]int
}

// NewEngine builds an engine over the given documents.
func NewEngine(docs []Document) *Engine {
	e := &Engine{
		docs:          docs,
		topicIndex:    make(map[string][]int),
		categoryIndex: make(map[string][]int),
	}
	for _, d := range docs {
		for _, t := range d.Topics {
			key := normalize(t)
			e.topicIndex[key] = append(e.topicIndex[key], d.ID)
		}
		for _, c := range d.Categories {
			key := normalize(c)
			e.categoryIndex[key] = append(e.categoryIndex[key], d.ID)
		}
	}
	for _, idx := range []map[string][]int{e.topicIndex, e.categoryIndex} {
		for k := range idx {
			sort.Ints(idx[k])
		}
	}
	return e
}

func normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// Size returns the number of indexed documents.
func (e *Engine) Size() int { return len(e.docs) }

// Query is a conjunction of topic phrases with an optional category
// facet — the WoS pipeline of Fig. 3.
type Query struct {
	Topics   []string // all must match
	Category string   // optional facet
}

// Count returns the number of documents matching the query.
func (e *Engine) Count(q Query) (int, error) {
	ids, err := e.Search(q)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// Search returns the sorted IDs of documents matching the query.
func (e *Engine) Search(q Query) ([]int, error) {
	if len(q.Topics) == 0 {
		return nil, fmt.Errorf("%w: need at least one topic phrase", ErrQuery)
	}
	var result []int
	for i, t := range q.Topics {
		posting := e.topicIndex[normalize(t)]
		if i == 0 {
			result = append([]int(nil), posting...)
		} else {
			result = intersect(result, posting)
		}
		if len(result) == 0 {
			return nil, nil
		}
	}
	if q.Category != "" {
		result = intersect(result, e.categoryIndex[normalize(q.Category)])
	}
	return result, nil
}

// intersect merges two sorted ID lists.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Fig3Term is one of the eight research-field terms of Fig. 3 together
// with its calibrated article counts: articles mentioning the term AND
// "time series", and the subset additionally categorised under
// "automation control systems".
type Fig3Term struct {
	Term       string
	TimeSeries int
	Automation int
}

// Fig3Calibration transcribes the magnitudes visible in the paper's
// Fig. 3 bar chart (heights read off the published figure; the
// ordering and ratios are what the reproduction must preserve).
var Fig3Calibration = []Fig3Term{
	{"anomaly detection", 1950, 120},
	{"outlier detection", 450, 30},
	{"event detection", 570, 45},
	{"novelty detection", 155, 10},
	{"deviant discovery", 6, 1},
	{"change point detection", 700, 25},
	{"fault detection", 1050, 390},
	{"intrusion detection", 300, 35},
}

// CategoryACS is the category facet of Fig. 3.
const CategoryACS = "automation control systems"

// TopicTimeSeries is the first filter of Fig. 3.
const TopicTimeSeries = "time series"

// GenerateFig3Corpus synthesises a bibliographic corpus whose query
// counts reproduce the calibration exactly, plus distractor documents
// (term without "time series", unrelated topics) so the boolean
// pipeline is actually exercised.
func GenerateFig3Corpus(rng *rand.Rand) []Document {
	var docs []Document
	id := 0
	add := func(topics []string, cats []string) {
		docs = append(docs, Document{
			ID:         id,
			Title:      fmt.Sprintf("synthetic article %d on %s", id, topics[0]),
			Topics:     topics,
			Categories: cats,
			Year:       1990 + rng.Intn(29),
		})
		id++
	}
	otherCats := []string{"computer science", "engineering electrical", "statistics probability", "mathematics applied"}
	for _, cal := range Fig3Calibration {
		// Documents matching term AND time series AND the ACS category.
		for i := 0; i < cal.Automation; i++ {
			add([]string{cal.Term, TopicTimeSeries}, []string{CategoryACS, otherCats[rng.Intn(len(otherCats))]})
		}
		// Term AND time series, other categories.
		for i := 0; i < cal.TimeSeries-cal.Automation; i++ {
			add([]string{cal.Term, TopicTimeSeries}, []string{otherCats[rng.Intn(len(otherCats))]})
		}
		// Distractors: the term without the time-series topic (between
		// 30% and 130% of the TS count, varying per term).
		distractors := cal.TimeSeries/3 + rng.Intn(cal.TimeSeries+1)
		for i := 0; i < distractors; i++ {
			add([]string{cal.Term}, []string{otherCats[rng.Intn(len(otherCats))]})
		}
	}
	// Unrelated noise documents.
	noiseTopics := []string{"deep learning", "data mining", "signal processing", "control theory"}
	for i := 0; i < 1500; i++ {
		add([]string{noiseTopics[rng.Intn(len(noiseTopics))]}, []string{otherCats[rng.Intn(len(otherCats))]})
	}
	// Shuffle so index order is not generation order.
	rng.Shuffle(len(docs), func(i, j int) { docs[i], docs[j] = docs[j], docs[i] })
	return docs
}

// Fig3Row is one measured row of the reproduced Fig. 3.
type Fig3Row struct {
	Term       string
	TimeSeries int
	Automation int
}

// RunFig3 executes the Fig. 3 query pipeline — term AND "time series",
// then the ACS category facet — against the engine and returns the
// per-term counts in calibration order.
func RunFig3(e *Engine) ([]Fig3Row, error) {
	out := make([]Fig3Row, 0, len(Fig3Calibration))
	for _, cal := range Fig3Calibration {
		ts, err := e.Count(Query{Topics: []string{cal.Term, TopicTimeSeries}})
		if err != nil {
			return nil, err
		}
		acs, err := e.Count(Query{Topics: []string{cal.Term, TopicTimeSeries}, Category: CategoryACS})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig3Row{Term: cal.Term, TimeSeries: ts, Automation: acs})
	}
	return out, nil
}
