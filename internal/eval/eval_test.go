package eval

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

func TestConfusionBasics(t *testing.T) {
	pred := []bool{true, true, false, false, true}
	truth := []bool{true, false, true, false, true}
	c, err := Confuse(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion=%+v", c)
	}
	near(t, c.Precision(), 2.0/3.0, 1e-12, "precision")
	near(t, c.Recall(), 2.0/3.0, 1e-12, "recall")
	near(t, c.F1(), 2.0/3.0, 1e-12, "f1")
	near(t, c.Accuracy(), 0.6, 1e-12, "accuracy")
	if _, err := Confuse(pred, truth[:2]); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput")
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty confusion should be all zeros")
	}
	if c.String() == "" {
		t.Fatal("String should render")
	}
}

func TestROCAUCPerfectAndRandom(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []bool{true, true, false, false}
	auc, err := ROCAUC(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	near(t, auc, 1, 1e-12, "perfect AUC")
	// Inverted ranking gives 0.
	inv, _ := ROCAUC([]float64{0.1, 0.2, 0.8, 0.9}, truth)
	near(t, inv, 0, 1e-12, "inverted AUC")
	// All ties give 0.5.
	tie, _ := ROCAUC([]float64{5, 5, 5, 5}, truth)
	near(t, tie, 0.5, 1e-12, "tied AUC")
}

func TestROCAUCErrors(t *testing.T) {
	if _, err := ROCAUC([]float64{1}, []bool{true, false}); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput for length mismatch")
	}
	if _, err := ROCAUC([]float64{1, 2}, []bool{true, true}); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput for single class")
	}
}

func TestROCAUCLargeRandomNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	scores := make([]float64, n)
	truth := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		truth[i] = rng.Float64() < 0.3
	}
	auc, err := ROCAUC(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	near(t, auc, 0.5, 0.02, "random AUC")
}

func TestPRAUC(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []bool{true, true, false, false}
	ap, err := PRAUC(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	near(t, ap, 1, 1e-12, "perfect AP")
	// Worst ranking: positives last → AP = (1/3 + 2/4)/2.
	worst, _ := PRAUC([]float64{0.1, 0.2, 0.8, 0.9}, truth)
	near(t, worst, (1.0/3.0+0.5)/2, 1e-12, "worst AP")
	if _, err := PRAUC(scores, []bool{false, false, false, false}); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput without positives")
	}
	if _, err := PRAUC(scores[:1], truth); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput for mismatch")
	}
}

func TestPrecisionAtK(t *testing.T) {
	scores := []float64{10, 9, 8, 1, 0}
	truth := []bool{true, false, true, false, true}
	p, err := PrecisionAtK(scores, truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	near(t, p, 2.0/3.0, 1e-12, "P@3")
	// k beyond n clamps.
	p2, _ := PrecisionAtK(scores, truth, 100)
	near(t, p2, 3.0/5.0, 1e-12, "P@n")
	if _, err := PrecisionAtK(scores, truth, 0); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput for k=0")
	}
	if _, err := PrecisionAtK(scores[:1], truth, 1); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput for mismatch")
	}
}

func TestThresholdAndTopK(t *testing.T) {
	scores := []float64{1, 5, 3, 2}
	pred := Threshold(scores, 3)
	want := []bool{false, true, true, false}
	for i := range want {
		if pred[i] != want[i] {
			t.Fatalf("pred=%v", pred)
		}
	}
	th := TopKThreshold(scores, 2)
	near(t, th, 3, 0, "TopK threshold")
	if !math.IsInf(TopKThreshold(nil, 3), 1) {
		t.Fatal("empty TopKThreshold should be +Inf")
	}
	near(t, TopKThreshold(scores, 100), 1, 0, "clamped k")
}

func TestPointAdjust(t *testing.T) {
	truth := []bool{false, true, true, true, false, true, true, false}
	pred := []bool{false, false, true, false, false, false, false, false}
	adj, err := PointAdjust(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, true, false, false, false, false}
	for i := range want {
		if adj[i] != want[i] {
			t.Fatalf("adj=%v want %v", adj, want)
		}
	}
	// False positives outside ranges survive adjustment.
	pred2 := []bool{true, false, false, false, false, false, false, false}
	adj2, _ := PointAdjust(pred2, truth)
	if !adj2[0] {
		t.Fatal("FP outside episode must remain")
	}
	if _, err := PointAdjust(pred[:2], truth); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput")
	}
}

func TestEpisodeRecall(t *testing.T) {
	truth := []bool{false, true, true, false, true, false}
	pred := []bool{false, true, false, false, false, false}
	r, err := EpisodeRecall(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	near(t, r, 0.5, 1e-12, "episode recall")
	if _, err := EpisodeRecall(pred, make([]bool, 6)); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput without episodes")
	}
	if _, err := EpisodeRecall(pred[:1], truth); !errors.Is(err, ErrInput) {
		t.Fatal("want ErrInput for mismatch")
	}
}

// Property: AUC of scores equals 1 - AUC of negated scores.
func TestPropertyAUCSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(100)
		scores := make([]float64, n)
		truth := make([]bool, n)
		pos := 0
		for i := range scores {
			scores[i] = rng.NormFloat64()
			truth[i] = rng.Float64() < 0.4
			if truth[i] {
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true
		}
		neg := make([]float64, n)
		for i, s := range scores {
			neg[i] = -s
		}
		a, err1 := ROCAUC(scores, truth)
		b, err2 := ROCAUC(neg, truth)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a+b-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: point adjustment never reduces the predicted set and never
// flips a prediction off.
func TestPropertyPointAdjustMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		pred := make([]bool, n)
		truth := make([]bool, n)
		for i := range pred {
			pred[i] = rng.Float64() < 0.2
			truth[i] = rng.Float64() < 0.3
		}
		adj, err := PointAdjust(pred, truth)
		if err != nil {
			return false
		}
		for i := range pred {
			if pred[i] && !adj[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
