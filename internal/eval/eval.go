// Package eval provides the detection-quality metrics used by the
// experiment harness: confusion-matrix metrics, threshold-free ranking
// metrics (ROC-AUC, PR-AUC, precision@k) and the point-adjusted protocol
// for range anomalies.
package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInput is returned for malformed metric inputs.
var ErrInput = errors.New("eval: invalid input")

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse tallies predictions against truth.
func Confuse(pred, truth []bool) (Confusion, error) {
	if len(pred) != len(truth) {
		return Confusion{}, fmt.Errorf("%w: %d predictions, %d labels", ErrInput, len(pred), len(truth))
	}
	var c Confusion
	for i := range pred {
		switch {
		case pred[i] && truth[i]:
			c.TP++
		case pred[i] && !truth[i]:
			c.FP++
		case !pred[i] && truth[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c, nil
}

// Precision is TP / (TP + FP); 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP + FN); 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is (TP + TN) / total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d P=%.3f R=%.3f F1=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.F1())
}

// ROCAUC returns the area under the ROC curve for scores (higher = more
// anomalous) against boolean truth. Ties receive the standard half
// credit (the Mann-Whitney formulation). It returns an error unless both
// classes are present.
func ROCAUC(scores []float64, truth []bool) (float64, error) {
	if len(scores) != len(truth) {
		return 0, fmt.Errorf("%w: %d scores, %d labels", ErrInput, len(scores), len(truth))
	}
	var pos, neg int
	for _, b := range truth {
		if b {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("%w: ROC needs both classes (pos=%d neg=%d)", ErrInput, pos, neg)
	}
	// Rank-sum with midranks for ties.
	type sl struct {
		s float64
		y bool
	}
	items := make([]sl, len(scores))
	for i := range scores {
		items[i] = sl{scores[i], truth[i]}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s < items[j].s })
	var rankSum float64
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].s == items[i].s {
			j++
		}
		// midrank of the tie group [i, j), 1-based ranks
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if items[k].y {
				rankSum += mid
			}
		}
		i = j
	}
	p, n := float64(pos), float64(neg)
	return (rankSum - p*(p+1)/2) / (p * n), nil
}

// PRAUC returns the area under the precision-recall curve using the
// step-wise (average precision) estimator.
func PRAUC(scores []float64, truth []bool) (float64, error) {
	if len(scores) != len(truth) {
		return 0, fmt.Errorf("%w: %d scores, %d labels", ErrInput, len(scores), len(truth))
	}
	var pos int
	for _, b := range truth {
		if b {
			pos++
		}
	}
	if pos == 0 {
		return 0, fmt.Errorf("%w: PR-AUC needs positive labels", ErrInput)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var tp, fp int
	var ap float64
	for _, i := range idx {
		if truth[i] {
			tp++
			ap += float64(tp) / float64(tp+fp)
		} else {
			fp++
		}
	}
	return ap / float64(pos), nil
}

// PrecisionAtK returns the fraction of the k highest-scored items that
// are true anomalies. k is clamped to the sample size.
func PrecisionAtK(scores []float64, truth []bool, k int) (float64, error) {
	if len(scores) != len(truth) {
		return 0, fmt.Errorf("%w: %d scores, %d labels", ErrInput, len(scores), len(truth))
	}
	if k <= 0 {
		return 0, fmt.Errorf("%w: k=%d", ErrInput, k)
	}
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	hit := 0
	for _, i := range idx[:k] {
		if truth[i] {
			hit++
		}
	}
	return float64(hit) / float64(k), nil
}

// Threshold returns pred[i] = scores[i] >= thresh.
func Threshold(scores []float64, thresh float64) []bool {
	out := make([]bool, len(scores))
	for i, s := range scores {
		out[i] = s >= thresh
	}
	return out
}

// TopKThreshold returns the score value such that exactly the k highest
// scores are at or above it (ties may admit more). Useful when the
// expected contamination rate is known.
func TopKThreshold(scores []float64, k int) float64 {
	if len(scores) == 0 || k <= 0 {
		return math.Inf(1)
	}
	if k > len(scores) {
		k = len(scores)
	}
	cp := append([]float64(nil), scores...)
	sort.Sort(sort.Reverse(sort.Float64Slice(cp)))
	return cp[k-1]
}

// PointAdjust expands predictions under the point-adjusted protocol:
// when any point inside a true anomalous range is predicted, the whole
// range counts as detected. Ranges are maximal runs of true labels.
// This matches how operators consume alerts — one hit inside an episode
// resolves the episode.
func PointAdjust(pred, truth []bool) ([]bool, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("%w: %d predictions, %d labels", ErrInput, len(pred), len(truth))
	}
	adj := append([]bool(nil), pred...)
	i := 0
	for i < len(truth) {
		if !truth[i] {
			i++
			continue
		}
		j := i
		for j < len(truth) && truth[j] {
			j++
		}
		hit := false
		for k := i; k < j; k++ {
			if pred[k] {
				hit = true
				break
			}
		}
		if hit {
			for k := i; k < j; k++ {
				adj[k] = true
			}
		}
		i = j
	}
	return adj, nil
}

// EpisodeRecall returns the fraction of maximal true-anomaly runs that
// contain at least one predicted point.
func EpisodeRecall(pred, truth []bool) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("%w: %d predictions, %d labels", ErrInput, len(pred), len(truth))
	}
	episodes, hits := 0, 0
	i := 0
	for i < len(truth) {
		if !truth[i] {
			i++
			continue
		}
		j := i
		for j < len(truth) && truth[j] {
			j++
		}
		episodes++
		for k := i; k < j; k++ {
			if pred[k] {
				hits++
				break
			}
		}
		i = j
	}
	if episodes == 0 {
		return 0, fmt.Errorf("%w: no anomaly episodes in truth", ErrInput)
	}
	return float64(hits) / float64(episodes), nil
}
