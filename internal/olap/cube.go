// Package olap implements a small in-memory OLAP cube — the substrate
// the UOA detector family analyses ("an Online Analytical Processing
// (OLAP) cube can be analyzed … with each cell as a measure", paper §3).
// It supports dimensions with discrete members, measure aggregation,
// roll-up, slicing and subspace (group-by) iteration.
package olap

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrSchema is returned for schema violations (unknown dimensions,
// wrong coordinate arity).
var ErrSchema = errors.New("olap: schema violation")

// ErrNonFinite is returned when a fact's measure is NaN or ±Inf. A
// single non-finite measure would poison a cell's Sum/Min/Max forever
// (aggregates cannot retract an observation), so the cube refuses it
// at the door — the same policy the serving layer's ingest validation
// applies to sample values.
var ErrNonFinite = errors.New("olap: non-finite measure")

// Preallocated Observe rejections: the per-sample fold path must not
// allocate even when refusing input, so the coordinate context that
// AddFact puts in its errors is deliberately absent here — Observe
// callers already hold the cell and can attach it themselves.
var (
	errObserveNonFinite = fmt.Errorf("%w: non-finite observation", ErrNonFinite)
	errSumOverflow      = fmt.Errorf("%w: sum overflow", ErrNonFinite)
)

// Cube is a dense-logical, sparse-physical OLAP cube: cells exist only
// once a fact lands in them.
type Cube struct {
	dims  []string
	index map[string]int
	cells map[string]*Cell
}

// Cell aggregates the facts sharing one coordinate.
type Cell struct {
	Coord []string
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns the cell's mean measure.
func (c *Cell) Mean() float64 {
	if c.Count == 0 {
		return 0
	}
	return c.Sum / float64(c.Count)
}

// Observe folds one measure into the cell in place — the fast path
// for callers streaming runs of samples into one cell (they look the
// cell up once and skip the per-fact coordinate key join). The same
// ErrNonFinite gate as AddFact applies.
//
//hod:hotpath
func (c *Cell) Observe(value float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return errObserveNonFinite
	}
	sum := c.Sum + value
	if math.IsInf(sum, 0) {
		// Finite inputs can still overflow the accumulated sum; folding
		// it would poison the cell forever, so refuse the observation
		// and keep the every-cell-holds-finite-aggregates invariant.
		return errSumOverflow
	}
	if c.Count == 0 {
		c.Min, c.Max = value, value
	} else {
		if value < c.Min {
			c.Min = value
		}
		if value > c.Max {
			c.Max = value
		}
	}
	c.Count++
	c.Sum = sum
	return nil
}

// New creates a cube with the given dimension names.
func New(dims ...string) (*Cube, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("%w: cube needs at least one dimension", ErrSchema)
	}
	idx := make(map[string]int, len(dims))
	for i, d := range dims {
		if _, dup := idx[d]; dup {
			return nil, fmt.Errorf("%w: duplicate dimension %q", ErrSchema, d)
		}
		idx[d] = i
	}
	return &Cube{dims: append([]string(nil), dims...), index: idx, cells: make(map[string]*Cell)}, nil
}

// Dims returns the dimension names in order.
func (c *Cube) Dims() []string { return append([]string(nil), c.dims...) }

// keySep joins coordinate members inside cell keys; AddAggregate
// rejects members containing it, or two distinct coordinates could
// collide on one joined key and silently merge their cells.
const keySep = '\x1f'

// key joins a coordinate; members must not contain the separator.
func key(coord []string) string { return strings.Join(coord, string(keySep)) }

// AddFact folds one measure value into the cell at coord. Non-finite
// measures are rejected with ErrNonFinite.
func (c *Cube) AddFact(coord []string, value float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("%w: %v at %v", ErrNonFinite, value, coord)
	}
	return c.AddAggregate(coord, 1, value, value, value)
}

// AddAggregate merges one pre-aggregated cell into the cube — the
// primitive behind AddFact, cube merging, and snapshot restore. The
// aggregate must be finite and hold at least one observation.
func (c *Cube) AddAggregate(coord []string, count int, sum, min, max float64) error {
	if len(coord) != len(c.dims) {
		return fmt.Errorf("%w: coordinate arity %d, want %d", ErrSchema, len(coord), len(c.dims))
	}
	for _, m := range coord {
		if strings.ContainsRune(m, keySep) {
			return fmt.Errorf("%w: member %q contains the reserved key separator", ErrSchema, m)
		}
	}
	if count <= 0 {
		return fmt.Errorf("%w: aggregate count %d at %v", ErrSchema, count, coord)
	}
	for _, v := range []float64{sum, min, max} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %v at %v", ErrNonFinite, v, coord)
		}
	}
	k := key(coord)
	cell, ok := c.cells[k]
	if !ok {
		cell = &Cell{Coord: append([]string(nil), coord...), Min: min, Max: max}
		c.cells[k] = cell
	}
	// A fresh cell cannot overflow (its sum is the vetted input); an
	// existing one can — refuse the merge rather than poison the cell.
	merged := cell.Sum + sum
	if math.IsInf(merged, 0) {
		return fmt.Errorf("%w: sum overflow at %v", ErrNonFinite, coord)
	}
	cell.Count += count
	cell.Sum = merged
	if min < cell.Min {
		cell.Min = min
	}
	if max > cell.Max {
		cell.Max = max
	}
	return nil
}

// CellAt returns the cell at the exact coordinate, or nil.
func (c *Cube) CellAt(coord []string) *Cell {
	if len(coord) != len(c.dims) {
		return nil
	}
	return c.cells[key(coord)]
}

// coordLess orders equal-arity coordinates element-wise — the same
// total order as comparing the joined cell keys (the separator sorts
// below every allowed member character), without re-joining strings
// inside a sort comparator.
func coordLess(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Cells returns all cells in deterministic coordinate order.
func (c *Cube) Cells() []*Cell {
	out := make([]*Cell, 0, len(c.cells))
	for _, cell := range c.cells {
		out = append(out, cell)
	}
	sort.Slice(out, func(i, j int) bool {
		return coordLess(out[i].Coord, out[j].Coord)
	})
	return out
}

// Len returns the number of materialised cells.
func (c *Cube) Len() int { return len(c.cells) }

// matcher compiles a dimension=member constraint set into (index,
// member) pairs, rejecting unknown dimensions.
func (c *Cube) matcher(constraints map[string]string) ([][2]int, []string, error) {
	if len(constraints) == 0 {
		return nil, nil, nil
	}
	dims := make([]string, 0, len(constraints))
	for d := range constraints {
		if _, ok := c.index[d]; !ok {
			return nil, nil, fmt.Errorf("%w: unknown dimension %q", ErrSchema, d)
		}
		dims = append(dims, d)
	}
	sort.Strings(dims)
	pairs := make([][2]int, 0, len(dims))
	members := make([]string, 0, len(dims))
	for i, d := range dims {
		pairs = append(pairs, [2]int{c.index[d], i})
		members = append(members, constraints[d])
	}
	return pairs, members, nil
}

func matches(cell *Cell, pairs [][2]int, members []string) bool {
	for _, p := range pairs {
		if cell.Coord[p[0]] != members[p[1]] {
			return false
		}
	}
	return true
}

// Slice returns the cells whose coordinate matches all the given
// dimension=member constraints, in deterministic coordinate order.
// Only the matching cells are collected and sorted, so the per-query
// cost scales with the answer, not with the whole cube.
func (c *Cube) Slice(constraints map[string]string) ([]*Cell, error) {
	pairs, members, err := c.matcher(constraints)
	if err != nil {
		return nil, err
	}
	var out []*Cell
	for _, cell := range c.cells {
		if matches(cell, pairs, members) {
			out = append(out, cell)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return coordLess(out[i].Coord, out[j].Coord)
	})
	return out, nil
}

// RollUp aggregates the cube onto the given subset of dimensions,
// returning a new cube whose cells merge all members of the dropped
// dimensions.
func (c *Cube) RollUp(keep ...string) (*Cube, error) {
	return c.GroupBy(nil, keep)
}

// GroupBy filters the cube by the dimension=member constraints and
// aggregates the matching cells onto the keep dimensions — the shared
// engine behind roll-up (no constraints) and drill-down (constraints
// plus one expanded dimension). Matching cells are folded in sorted
// coordinate order: a float sum is not associative, so map iteration
// order would otherwise leak last-ulp jitter into equal queries.
func (c *Cube) GroupBy(constraints map[string]string, keep []string) (*Cube, error) {
	if len(keep) == 0 {
		return nil, fmt.Errorf("%w: group-by must keep at least one dimension", ErrSchema)
	}
	keepIdx := make([]int, len(keep))
	for i, d := range keep {
		idx, ok := c.index[d]
		if !ok {
			return nil, fmt.Errorf("%w: unknown dimension %q", ErrSchema, d)
		}
		keepIdx[i] = idx
	}
	matched, err := c.Slice(constraints)
	if err != nil {
		return nil, err
	}
	out, err := New(keep...)
	if err != nil {
		return nil, err
	}
	for _, cell := range matched {
		coord := make([]string, len(keepIdx))
		for i, idx := range keepIdx {
			coord[i] = cell.Coord[idx]
		}
		if err := out.AddAggregate(coord, cell.Count, cell.Sum, cell.Min, cell.Max); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Members returns the distinct members of a dimension in sorted order.
func (c *Cube) Members(dim string) ([]string, error) {
	idx, ok := c.index[dim]
	if !ok {
		return nil, fmt.Errorf("%w: unknown dimension %q", ErrSchema, dim)
	}
	set := map[string]bool{}
	for _, cell := range c.cells {
		set[cell.Coord[idx]] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}

// Subspaces enumerates every non-empty subset of dimensions (the cuboid
// lattice) ordered by ascending dimensionality — the search space of
// "mining approximate top-k subspace anomalies".
func (c *Cube) Subspaces() [][]string {
	n := len(c.dims)
	var out [][]string
	for mask := 1; mask < 1<<n; mask++ {
		var dims []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				dims = append(dims, c.dims[i])
			}
		}
		out = append(out, dims)
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}
