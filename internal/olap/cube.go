// Package olap implements a small in-memory OLAP cube — the substrate
// the UOA detector family analyses ("an Online Analytical Processing
// (OLAP) cube can be analyzed … with each cell as a measure", paper §3).
// It supports dimensions with discrete members, measure aggregation,
// roll-up, slicing and subspace (group-by) iteration.
package olap

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrSchema is returned for schema violations (unknown dimensions,
// wrong coordinate arity).
var ErrSchema = errors.New("olap: schema violation")

// Cube is a dense-logical, sparse-physical OLAP cube: cells exist only
// once a fact lands in them.
type Cube struct {
	dims  []string
	index map[string]int
	cells map[string]*Cell
}

// Cell aggregates the facts sharing one coordinate.
type Cell struct {
	Coord []string
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns the cell's mean measure.
func (c *Cell) Mean() float64 {
	if c.Count == 0 {
		return 0
	}
	return c.Sum / float64(c.Count)
}

// New creates a cube with the given dimension names.
func New(dims ...string) (*Cube, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("%w: cube needs at least one dimension", ErrSchema)
	}
	idx := make(map[string]int, len(dims))
	for i, d := range dims {
		if _, dup := idx[d]; dup {
			return nil, fmt.Errorf("%w: duplicate dimension %q", ErrSchema, d)
		}
		idx[d] = i
	}
	return &Cube{dims: append([]string(nil), dims...), index: idx, cells: make(map[string]*Cell)}, nil
}

// Dims returns the dimension names in order.
func (c *Cube) Dims() []string { return append([]string(nil), c.dims...) }

// key joins a coordinate; members must not contain the separator.
func key(coord []string) string { return strings.Join(coord, "\x1f") }

// AddFact folds one measure value into the cell at coord.
func (c *Cube) AddFact(coord []string, value float64) error {
	if len(coord) != len(c.dims) {
		return fmt.Errorf("%w: coordinate arity %d, want %d", ErrSchema, len(coord), len(c.dims))
	}
	k := key(coord)
	cell, ok := c.cells[k]
	if !ok {
		cell = &Cell{Coord: append([]string(nil), coord...), Min: value, Max: value}
		c.cells[k] = cell
	}
	cell.Count++
	cell.Sum += value
	if value < cell.Min {
		cell.Min = value
	}
	if value > cell.Max {
		cell.Max = value
	}
	return nil
}

// CellAt returns the cell at the exact coordinate, or nil.
func (c *Cube) CellAt(coord []string) *Cell {
	if len(coord) != len(c.dims) {
		return nil
	}
	return c.cells[key(coord)]
}

// Cells returns all cells in deterministic coordinate order.
func (c *Cube) Cells() []*Cell {
	out := make([]*Cell, 0, len(c.cells))
	for _, cell := range c.cells {
		out = append(out, cell)
	}
	sort.Slice(out, func(i, j int) bool {
		return key(out[i].Coord) < key(out[j].Coord)
	})
	return out
}

// Len returns the number of materialised cells.
func (c *Cube) Len() int { return len(c.cells) }

// Slice returns the cells whose coordinate matches all the given
// dimension=member constraints.
func (c *Cube) Slice(constraints map[string]string) ([]*Cell, error) {
	for d := range constraints {
		if _, ok := c.index[d]; !ok {
			return nil, fmt.Errorf("%w: unknown dimension %q", ErrSchema, d)
		}
	}
	var out []*Cell
	for _, cell := range c.Cells() {
		match := true
		for d, m := range constraints {
			if cell.Coord[c.index[d]] != m {
				match = false
				break
			}
		}
		if match {
			out = append(out, cell)
		}
	}
	return out, nil
}

// RollUp aggregates the cube onto the given subset of dimensions,
// returning a new cube whose cells merge all members of the dropped
// dimensions.
func (c *Cube) RollUp(keep ...string) (*Cube, error) {
	if len(keep) == 0 {
		return nil, fmt.Errorf("%w: roll-up must keep at least one dimension", ErrSchema)
	}
	keepIdx := make([]int, len(keep))
	for i, d := range keep {
		idx, ok := c.index[d]
		if !ok {
			return nil, fmt.Errorf("%w: unknown dimension %q", ErrSchema, d)
		}
		keepIdx[i] = idx
	}
	out, err := New(keep...)
	if err != nil {
		return nil, err
	}
	for _, cell := range c.cells {
		coord := make([]string, len(keepIdx))
		for i, idx := range keepIdx {
			coord[i] = cell.Coord[idx]
		}
		k := key(coord)
		target, ok := out.cells[k]
		if !ok {
			target = &Cell{Coord: coord, Min: cell.Min, Max: cell.Max}
			out.cells[k] = target
		}
		target.Count += cell.Count
		target.Sum += cell.Sum
		if cell.Min < target.Min {
			target.Min = cell.Min
		}
		if cell.Max > target.Max {
			target.Max = cell.Max
		}
	}
	return out, nil
}

// Members returns the distinct members of a dimension in sorted order.
func (c *Cube) Members(dim string) ([]string, error) {
	idx, ok := c.index[dim]
	if !ok {
		return nil, fmt.Errorf("%w: unknown dimension %q", ErrSchema, dim)
	}
	set := map[string]bool{}
	for _, cell := range c.cells {
		set[cell.Coord[idx]] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}

// Subspaces enumerates every non-empty subset of dimensions (the cuboid
// lattice) ordered by ascending dimensionality — the search space of
// "mining approximate top-k subspace anomalies".
func (c *Cube) Subspaces() [][]string {
	n := len(c.dims)
	var out [][]string
	for mask := 1; mask < 1<<n; mask++ {
		var dims []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				dims = append(dims, c.dims[i])
			}
		}
		out = append(out, dims)
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}
