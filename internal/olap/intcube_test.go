package olap

import (
	"errors"
	"math"
	"testing"
)

func TestIntCubeMirrorsCube(t *testing.T) {
	ic := NewIntCube()
	coord := IntCoord{0, 1, 2, 3, 4}
	for _, v := range []float64{2, -1, 5} {
		if err := ic.AddFact(coord, v); err != nil {
			t.Fatalf("AddFact(%v): %v", v, err)
		}
	}
	cell := ic.CellAt(coord)
	if cell == nil {
		t.Fatal("cell missing")
	}
	if cell.Count != 3 || cell.Sum != 6 || cell.Min != -1 || cell.Max != 5 {
		t.Fatalf("aggregates drifted: %+v", cell)
	}
	if err := ic.AddFact(coord, math.NaN()); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("NaN fact: want ErrNonFinite, got %v", err)
	}
	if err := ic.AddFact(IntCoord{9, 9, 9, 9, 9}, math.Inf(1)); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Inf first fact: want ErrNonFinite, got %v", err)
	}
	if ic.Len() != 1 {
		t.Fatalf("rejected first fact must not materialise a cell: len %d", ic.Len())
	}
	if err := ic.AddAggregate(coord, 0, 1, 1, 1); !errors.Is(err, ErrSchema) {
		t.Fatalf("zero-count aggregate: want ErrSchema, got %v", err)
	}
	if err := ic.AddAggregate(coord, 2, 4, 1, 3); err != nil {
		t.Fatalf("AddAggregate: %v", err)
	}
	if cell.Count != 5 || cell.Sum != 10 || cell.Min != -1 || cell.Max != 5 {
		t.Fatalf("merged aggregates drifted: %+v", cell)
	}
}

// TestObserveFastPathZeroAlloc pins the per-record fold cost: once a
// cell exists, folding another sample into it — interned or string
// cube — must not allocate. This is the gate the ingest hot path
// (foldRefs' cubeLast memo) relies on.
func TestObserveFastPathZeroAlloc(t *testing.T) {
	ic := &IntCell{}
	if err := ic.Observe(1); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if err := ic.Observe(2.5); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("IntCell.Observe allocates %v per run, want 0", n)
	}

	sc := &Cell{Coord: []string{"l", "m", "j", "p", "s"}}
	if err := sc.Observe(1); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if err := sc.Observe(2.5); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Cell.Observe allocates %v per run, want 0", n)
	}

	cube := NewIntCube()
	coord := IntCoord{0, 1, 2, 3, 4}
	if err := cube.AddFact(coord, 1); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if err := cube.AddFact(coord, 2); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("IntCube.AddFact (existing cell) allocates %v per run, want 0", n)
	}
}
