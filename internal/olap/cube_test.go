package olap

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustCube(t *testing.T, dims ...string) *Cube {
	t.Helper()
	c, err := New(dims...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema for no dims")
	}
	if _, err := New("a", "a"); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema for duplicate dims")
	}
	c := mustCube(t, "machine", "sensor")
	dims := c.Dims()
	if len(dims) != 2 || dims[0] != "machine" {
		t.Fatalf("dims=%v", dims)
	}
}

func TestAddFactAndCellAt(t *testing.T) {
	c := mustCube(t, "m", "s")
	if err := c.AddFact([]string{"m1"}, 1); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema for wrong arity")
	}
	for _, v := range []float64{1, 3, 5} {
		if err := c.AddFact([]string{"m1", "temp"}, v); err != nil {
			t.Fatal(err)
		}
	}
	cell := c.CellAt([]string{"m1", "temp"})
	if cell == nil {
		t.Fatal("cell missing")
	}
	if cell.Count != 3 || cell.Sum != 9 || cell.Min != 1 || cell.Max != 5 {
		t.Fatalf("cell=%+v", cell)
	}
	if math.Abs(cell.Mean()-3) > 1e-12 {
		t.Fatalf("mean=%v", cell.Mean())
	}
	if c.CellAt([]string{"zz", "temp"}) != nil {
		t.Fatal("missing cell should be nil")
	}
	if c.CellAt([]string{"m1"}) != nil {
		t.Fatal("wrong arity should be nil")
	}
	if (&Cell{}).Mean() != 0 {
		t.Fatal("empty cell mean should be 0")
	}
}

func TestCellsDeterministicOrder(t *testing.T) {
	c := mustCube(t, "m")
	c.AddFact([]string{"b"}, 1)
	c.AddFact([]string{"a"}, 2)
	c.AddFact([]string{"c"}, 3)
	cells := c.Cells()
	if len(cells) != 3 || c.Len() != 3 {
		t.Fatalf("cells=%d", len(cells))
	}
	if cells[0].Coord[0] != "a" || cells[2].Coord[0] != "c" {
		t.Fatalf("order wrong: %v %v", cells[0].Coord, cells[2].Coord)
	}
}

func TestSlice(t *testing.T) {
	c := mustCube(t, "m", "s")
	c.AddFact([]string{"m1", "temp"}, 1)
	c.AddFact([]string{"m1", "vib"}, 2)
	c.AddFact([]string{"m2", "temp"}, 3)
	got, err := c.Slice(map[string]string{"m": "m1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("slice=%d cells", len(got))
	}
	if _, err := c.Slice(map[string]string{"nope": "x"}); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema")
	}
}

func TestRollUp(t *testing.T) {
	c := mustCube(t, "m", "s")
	c.AddFact([]string{"m1", "temp"}, 1)
	c.AddFact([]string{"m1", "vib"}, 3)
	c.AddFact([]string{"m2", "temp"}, 10)
	rolled, err := c.RollUp("m")
	if err != nil {
		t.Fatal(err)
	}
	m1 := rolled.CellAt([]string{"m1"})
	if m1 == nil || m1.Count != 2 || m1.Sum != 4 || m1.Min != 1 || m1.Max != 3 {
		t.Fatalf("m1=%+v", m1)
	}
	m2 := rolled.CellAt([]string{"m2"})
	if m2 == nil || m2.Count != 1 || m2.Sum != 10 {
		t.Fatalf("m2=%+v", m2)
	}
	if _, err := c.RollUp(); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema for empty roll-up")
	}
	if _, err := c.RollUp("zzz"); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema for unknown dim")
	}
}

func TestMembers(t *testing.T) {
	c := mustCube(t, "m", "s")
	c.AddFact([]string{"m2", "temp"}, 1)
	c.AddFact([]string{"m1", "temp"}, 1)
	c.AddFact([]string{"m1", "vib"}, 1)
	ms, err := c.Members("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] != "m1" || ms[1] != "m2" {
		t.Fatalf("members=%v", ms)
	}
	if _, err := c.Members("x"); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema")
	}
}

func TestSubspacesLattice(t *testing.T) {
	c := mustCube(t, "a", "b", "c")
	subs := c.Subspaces()
	if len(subs) != 7 { // 2³-1
		t.Fatalf("subspaces=%d", len(subs))
	}
	// Ordered by ascending dimensionality.
	for i := 1; i < len(subs); i++ {
		if len(subs[i]) < len(subs[i-1]) {
			t.Fatalf("lattice order broken at %d: %v", i, subs)
		}
	}
}

func TestAddFactRejectsNonFinite(t *testing.T) {
	c := mustCube(t, "m")
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := c.AddFact([]string{"m1"}, v); !errors.Is(err, ErrNonFinite) {
			t.Fatalf("AddFact(%v) = %v, want ErrNonFinite", v, err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("rejected facts materialised %d cells", c.Len())
	}
	// A finite fact into a cell a non-finite one targeted still works.
	if err := c.AddFact([]string{"m1"}, 2); err != nil {
		t.Fatal(err)
	}
	if cell := c.CellAt([]string{"m1"}); cell.Count != 1 || cell.Sum != 2 {
		t.Fatalf("cell=%+v", cell)
	}
	// AddAggregate applies the same gate, plus a count sanity check.
	if err := c.AddAggregate([]string{"m2"}, 1, math.NaN(), 0, 0); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("AddAggregate NaN sum = %v", err)
	}
	if err := c.AddAggregate([]string{"m2"}, 0, 1, 1, 1); !errors.Is(err, ErrSchema) {
		t.Fatalf("AddAggregate count 0 = %v", err)
	}
	// A member containing the reserved key separator could collide two
	// coordinates onto one cell key; it is a schema violation instead.
	if err := c.AddFact([]string{"a\x1fb"}, 1); !errors.Is(err, ErrSchema) {
		t.Fatalf("AddFact with key separator = %v", err)
	}
	// Finite inputs whose accumulated sum would overflow are refused —
	// a cell never holds a non-finite aggregate.
	if err := c.AddFact([]string{"big"}, 1e308); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFact([]string{"big"}, 1e308); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("sum-overflow AddFact = %v, want ErrNonFinite", err)
	}
	big := c.CellAt([]string{"big"})
	if big.Count != 1 || math.IsInf(big.Sum, 0) {
		t.Fatalf("overflowed fold mutated the cell: %+v", big)
	}
	if err := big.Observe(1e308); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("sum-overflow Observe = %v, want ErrNonFinite", err)
	}
}

func TestGroupByAndDrilldownAnswer(t *testing.T) {
	c := mustCube(t, "line", "machine", "sensor")
	facts := []struct {
		coord []string
		v     float64
	}{
		{[]string{"l1", "m1", "temp"}, 1},
		{[]string{"l1", "m1", "vib"}, 2},
		{[]string{"l1", "m2", "temp"}, 3},
		{[]string{"l2", "m3", "temp"}, 4},
	}
	for _, f := range facts {
		if err := c.AddFact(f.coord, f.v); err != nil {
			t.Fatal(err)
		}
	}
	// GroupBy = slice + roll-up in one pass.
	g, err := c.GroupBy(map[string]string{"line": "l1"}, []string{"machine"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("grouped cells = %d", g.Len())
	}
	m1 := g.CellAt([]string{"m1"})
	if m1 == nil || m1.Count != 2 || m1.Sum != 3 {
		t.Fatalf("m1=%+v", m1)
	}

	// The drilldown op keeps the constrained dims plus the target, in
	// cube dimension order.
	res, err := c.Answer(Query{Op: "drilldown", Dim: "machine", Where: map[string]string{"line": "l1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dims) != 2 || res.Dims[0] != "line" || res.Dims[1] != "machine" {
		t.Fatalf("drilldown dims = %v", res.Dims)
	}
	if len(res.Cells) != 2 || res.Cells[0].Coord[1] != "m1" || res.Cells[1].Coord[1] != "m2" {
		t.Fatalf("drilldown cells = %+v", res.Cells)
	}
	if len(res.Where) != 1 || res.Where[0] != "line=l1" {
		t.Fatalf("where echo = %v", res.Where)
	}
	if res.TotalCells != c.Len() {
		t.Fatalf("total cells = %d, want %d", res.TotalCells, c.Len())
	}

	// Op validation: drilling into a pinned dim, unknown ops, and
	// mismatched operands are schema errors.
	for name, q := range map[string]Query{
		"pinned dim":      {Op: "drilldown", Dim: "line", Where: map[string]string{"line": "l1"}},
		"unknown op":      {Op: "pivot"},
		"slice with keep": {Op: "slice", Keep: []string{"line"}},
		"rollup with dim": {Op: "rollup", Keep: []string{"line"}, Dim: "machine"},
		"members + where": {Op: "members", Dim: "line", Where: map[string]string{"line": "l1"}},
		"unknown where":   {Where: map[string]string{"galaxy": "g"}},
	} {
		if _, err := c.Answer(q); !errors.Is(err, ErrSchema) {
			t.Fatalf("%s: err = %v, want ErrSchema", name, err)
		}
	}

	// members answers through the same entry point.
	res, err = c.Answer(Query{Op: "members", Dim: "line"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 2 || res.Members[0] != "l1" || res.Members[1] != "l2" {
		t.Fatalf("members = %v", res.Members)
	}
}

// Property: for random fact sets and random constraints, Slice and
// RollUp (GroupBy) conserve Count and Sum against the full cube.
func TestPropertySliceRollUpConservation(t *testing.T) {
	f := func(vals []float64, members []uint8, pin uint8) bool {
		if len(vals) == 0 || len(members) < len(vals) {
			return true
		}
		c := mustCubeQuick()
		var wantCount int
		var wantSum float64
		pinned := string(rune('a' + pin%3))
		var pinCount int
		var pinSum float64
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				continue
			}
			d1 := string(rune('a' + members[i]%3))
			d2 := string(rune('x' + members[i]%2))
			if err := c.AddFact([]string{d1, d2}, v); err != nil {
				return false
			}
			wantCount++
			wantSum += v
			if d1 == pinned {
				pinCount++
				pinSum += v
			}
		}
		if wantCount == 0 {
			return true
		}
		close := func(got, want float64) bool {
			return math.Abs(got-want) < 1e-6*(1+math.Abs(want))
		}
		// Slice at full dimensionality conserves within the constraint.
		sliced, err := c.Slice(map[string]string{"d1": pinned})
		if err != nil {
			return false
		}
		var gotCount int
		var gotSum float64
		for _, cell := range sliced {
			gotCount += cell.Count
			gotSum += cell.Sum
		}
		if gotCount != pinCount || !close(gotSum, pinSum) {
			return false
		}
		// RollUp onto each single dimension conserves the full totals.
		for _, keep := range [][]string{{"d1"}, {"d2"}} {
			rolled, err := c.RollUp(keep...)
			if err != nil {
				return false
			}
			gotCount, gotSum = 0, 0
			for _, cell := range rolled.Cells() {
				gotCount += cell.Count
				gotSum += cell.Sum
			}
			if gotCount != wantCount || !close(gotSum, wantSum) {
				return false
			}
		}
		// Slice + RollUp composed (GroupBy) conserves within the slice.
		grouped, err := c.GroupBy(map[string]string{"d1": pinned}, []string{"d2"})
		if err != nil {
			return false
		}
		gotCount, gotSum = 0, 0
		for _, cell := range grouped.Cells() {
			gotCount += cell.Count
			gotSum += cell.Sum
		}
		return gotCount == pinCount && close(gotSum, pinSum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: roll-up preserves total count and sum.
func TestPropertyRollUpConservation(t *testing.T) {
	f := func(vals []float64, members []uint8) bool {
		if len(vals) == 0 || len(members) < len(vals) {
			return true
		}
		c := mustCubeQuick()
		var wantCount int
		var wantSum float64
		for i, v := range vals {
			// Bound magnitudes so the conservation sum cannot overflow.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				continue
			}
			m := []string{string(rune('a' + members[i]%3)), string(rune('x' + members[i]%2))}
			if err := c.AddFact(m, v); err != nil {
				return false
			}
			wantCount++
			wantSum += v
		}
		if wantCount == 0 {
			return true
		}
		rolled, err := c.RollUp("d1")
		if err != nil {
			return false
		}
		var gotCount int
		var gotSum float64
		for _, cell := range rolled.Cells() {
			gotCount += cell.Count
			gotSum += cell.Sum
		}
		return gotCount == wantCount && math.Abs(gotSum-wantSum) < 1e-6*(1+math.Abs(wantSum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mustCubeQuick() *Cube {
	c, err := New("d1", "d2")
	if err != nil {
		panic(err)
	}
	return c
}
