package olap

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustCube(t *testing.T, dims ...string) *Cube {
	t.Helper()
	c, err := New(dims...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema for no dims")
	}
	if _, err := New("a", "a"); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema for duplicate dims")
	}
	c := mustCube(t, "machine", "sensor")
	dims := c.Dims()
	if len(dims) != 2 || dims[0] != "machine" {
		t.Fatalf("dims=%v", dims)
	}
}

func TestAddFactAndCellAt(t *testing.T) {
	c := mustCube(t, "m", "s")
	if err := c.AddFact([]string{"m1"}, 1); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema for wrong arity")
	}
	for _, v := range []float64{1, 3, 5} {
		if err := c.AddFact([]string{"m1", "temp"}, v); err != nil {
			t.Fatal(err)
		}
	}
	cell := c.CellAt([]string{"m1", "temp"})
	if cell == nil {
		t.Fatal("cell missing")
	}
	if cell.Count != 3 || cell.Sum != 9 || cell.Min != 1 || cell.Max != 5 {
		t.Fatalf("cell=%+v", cell)
	}
	if math.Abs(cell.Mean()-3) > 1e-12 {
		t.Fatalf("mean=%v", cell.Mean())
	}
	if c.CellAt([]string{"zz", "temp"}) != nil {
		t.Fatal("missing cell should be nil")
	}
	if c.CellAt([]string{"m1"}) != nil {
		t.Fatal("wrong arity should be nil")
	}
	if (&Cell{}).Mean() != 0 {
		t.Fatal("empty cell mean should be 0")
	}
}

func TestCellsDeterministicOrder(t *testing.T) {
	c := mustCube(t, "m")
	c.AddFact([]string{"b"}, 1)
	c.AddFact([]string{"a"}, 2)
	c.AddFact([]string{"c"}, 3)
	cells := c.Cells()
	if len(cells) != 3 || c.Len() != 3 {
		t.Fatalf("cells=%d", len(cells))
	}
	if cells[0].Coord[0] != "a" || cells[2].Coord[0] != "c" {
		t.Fatalf("order wrong: %v %v", cells[0].Coord, cells[2].Coord)
	}
}

func TestSlice(t *testing.T) {
	c := mustCube(t, "m", "s")
	c.AddFact([]string{"m1", "temp"}, 1)
	c.AddFact([]string{"m1", "vib"}, 2)
	c.AddFact([]string{"m2", "temp"}, 3)
	got, err := c.Slice(map[string]string{"m": "m1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("slice=%d cells", len(got))
	}
	if _, err := c.Slice(map[string]string{"nope": "x"}); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema")
	}
}

func TestRollUp(t *testing.T) {
	c := mustCube(t, "m", "s")
	c.AddFact([]string{"m1", "temp"}, 1)
	c.AddFact([]string{"m1", "vib"}, 3)
	c.AddFact([]string{"m2", "temp"}, 10)
	rolled, err := c.RollUp("m")
	if err != nil {
		t.Fatal(err)
	}
	m1 := rolled.CellAt([]string{"m1"})
	if m1 == nil || m1.Count != 2 || m1.Sum != 4 || m1.Min != 1 || m1.Max != 3 {
		t.Fatalf("m1=%+v", m1)
	}
	m2 := rolled.CellAt([]string{"m2"})
	if m2 == nil || m2.Count != 1 || m2.Sum != 10 {
		t.Fatalf("m2=%+v", m2)
	}
	if _, err := c.RollUp(); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema for empty roll-up")
	}
	if _, err := c.RollUp("zzz"); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema for unknown dim")
	}
}

func TestMembers(t *testing.T) {
	c := mustCube(t, "m", "s")
	c.AddFact([]string{"m2", "temp"}, 1)
	c.AddFact([]string{"m1", "temp"}, 1)
	c.AddFact([]string{"m1", "vib"}, 1)
	ms, err := c.Members("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] != "m1" || ms[1] != "m2" {
		t.Fatalf("members=%v", ms)
	}
	if _, err := c.Members("x"); !errors.Is(err, ErrSchema) {
		t.Fatal("want ErrSchema")
	}
}

func TestSubspacesLattice(t *testing.T) {
	c := mustCube(t, "a", "b", "c")
	subs := c.Subspaces()
	if len(subs) != 7 { // 2³-1
		t.Fatalf("subspaces=%d", len(subs))
	}
	// Ordered by ascending dimensionality.
	for i := 1; i < len(subs); i++ {
		if len(subs[i]) < len(subs[i-1]) {
			t.Fatalf("lattice order broken at %d: %v", i, subs)
		}
	}
}

// Property: roll-up preserves total count and sum.
func TestPropertyRollUpConservation(t *testing.T) {
	f := func(vals []float64, members []uint8) bool {
		if len(vals) == 0 || len(members) < len(vals) {
			return true
		}
		c := mustCubeQuick()
		var wantCount int
		var wantSum float64
		for i, v := range vals {
			// Bound magnitudes so the conservation sum cannot overflow.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				continue
			}
			m := []string{string(rune('a' + members[i]%3)), string(rune('x' + members[i]%2))}
			if err := c.AddFact(m, v); err != nil {
				return false
			}
			wantCount++
			wantSum += v
		}
		if wantCount == 0 {
			return true
		}
		rolled, err := c.RollUp("d1")
		if err != nil {
			return false
		}
		var gotCount int
		var gotSum float64
		for _, cell := range rolled.Cells() {
			gotCount += cell.Count
			gotSum += cell.Sum
		}
		return gotCount == wantCount && math.Abs(gotSum-wantSum) < 1e-6*(1+math.Abs(wantSum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mustCubeQuick() *Cube {
	c, err := New("d1", "d2")
	if err != nil {
		panic(err)
	}
	return c
}
