package olap

import (
	"fmt"
	"sort"

	"repro/pkg/hod/wire"
)

// Query is one cube question: an operation plus its operands. The
// zero value of everything but Op is legal where the op allows it.
//
//	slice      Where (optional)           cells at full dimensionality
//	rollup     Keep (required), Where     aggregate onto the kept dims
//	members    Dim (required)             distinct members of one dim
//	drilldown  Dim (required), Where      expand one dim within a slice
type Query struct {
	Op    string            // wire.CubeOp*; "" means slice
	Where map[string]string // dimension=member constraints
	Keep  []string          // rollup: dimensions to keep
	Dim   string            // members/drilldown: target dimension
}

// Result is the evaluated answer, already in wire shape minus the
// plant id (the serving layer and the embedded SDK cube both wrap it
// into a wire.CubeResponse, so the two paths are provably equal).
type Result struct {
	Op         string
	Dims       []string
	Where      []string
	Members    []string
	Cells      []wire.CubeCell
	TotalCells int
}

// Answer evaluates one query against the cube. Cells are returned in
// deterministic coordinate order; Where echoes the constraints sorted
// by dimension name.
func (c *Cube) Answer(q Query) (Result, error) {
	res := Result{Op: q.Op, TotalCells: c.Len(), Where: EchoWhere(q.Where)}
	if res.Op == "" {
		res.Op = wire.CubeOpSlice
	}
	switch res.Op {
	case wire.CubeOpSlice:
		if len(q.Keep) > 0 || q.Dim != "" {
			return Result{}, fmt.Errorf("%w: slice takes only where constraints", ErrSchema)
		}
		cells, err := c.Slice(q.Where)
		if err != nil {
			return Result{}, err
		}
		res.Dims = c.Dims()
		res.Cells = WireCells(cells)
	case wire.CubeOpRollup:
		if q.Dim != "" {
			return Result{}, fmt.Errorf("%w: rollup takes keep dims, not a target dim", ErrSchema)
		}
		rolled, err := c.GroupBy(q.Where, q.Keep)
		if err != nil {
			return Result{}, err
		}
		res.Dims = rolled.Dims()
		res.Cells = WireCells(rolled.Cells())
	case wire.CubeOpMembers:
		if len(q.Where) > 0 || len(q.Keep) > 0 {
			return Result{}, fmt.Errorf("%w: members takes only a dim", ErrSchema)
		}
		members, err := c.Members(q.Dim)
		if err != nil {
			return Result{}, err
		}
		res.Dims = c.Dims()
		res.Members = members
	case wire.CubeOpDrilldown:
		if len(q.Keep) > 0 {
			return Result{}, fmt.Errorf("%w: drilldown takes a dim plus where constraints", ErrSchema)
		}
		if _, ok := c.index[q.Dim]; !ok {
			return Result{}, fmt.Errorf("%w: unknown dimension %q", ErrSchema, q.Dim)
		}
		if _, pinned := q.Where[q.Dim]; pinned {
			return Result{}, fmt.Errorf("%w: drilldown dimension %q is pinned by a where constraint", ErrSchema, q.Dim)
		}
		// Expand along Dim inside the slice: keep the constrained
		// dimensions (self-describing coordinates) plus the drill
		// target, in cube dimension order.
		var keep []string
		for _, d := range c.dims {
			if _, ok := q.Where[d]; ok || d == q.Dim {
				keep = append(keep, d)
			}
		}
		grouped, err := c.GroupBy(q.Where, keep)
		if err != nil {
			return Result{}, err
		}
		res.Dims = grouped.Dims()
		res.Cells = WireCells(grouped.Cells())
	default:
		return Result{}, fmt.Errorf("%w: unknown cube op %q (want slice|rollup|members|drilldown)", ErrSchema, res.Op)
	}
	return res, nil
}

// EchoWhere renders a constraint set as sorted "dim=member" strings —
// the canonical echo both the server response and the embedded cube
// use.
func EchoWhere(where map[string]string) []string {
	if len(where) == 0 {
		return nil
	}
	out := make([]string, 0, len(where))
	for d, m := range where {
		out = append(out, d+"="+m)
	}
	sort.Strings(out)
	return out
}

// WireCells converts cells (already in deterministic order) to the
// shared wire shape.
func WireCells(cells []*Cell) []wire.CubeCell {
	if len(cells) == 0 {
		return nil
	}
	out := make([]wire.CubeCell, len(cells))
	for i, cell := range cells {
		out[i] = wire.CubeCell{
			Coord: append([]string(nil), cell.Coord...),
			Count: cell.Count, Sum: cell.Sum, Mean: cell.Mean(),
			Min: cell.Min, Max: cell.Max,
		}
	}
	return out
}
