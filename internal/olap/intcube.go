package olap

import (
	"fmt"
	"math"
)

// The serving layer's ingest path folds facts into per-shard cubes at
// record rate; joining five strings into a map key per fact is what
// the zero-alloc ingest work removed. IntCube is the hot-path twin of
// Cube: coordinates are fixed-arity arrays of interned int32 ids, so a
// cell lookup is one array-keyed map access with no allocation. The
// query surface stays on Cube — the shard IntCubes are translated back
// to string coordinates when a query (or snapshot) merges them.

// IntCoord is one interned cube coordinate: line, machine, job, phase,
// sensor ids in dimension order.
type IntCoord [5]int32

// IntCell aggregates the facts sharing one interned coordinate. The
// measure fields mirror Cell.
type IntCell struct {
	Coord IntCoord
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Observe folds one measure into the cell in place — same gates and
// semantics as Cell.Observe, minus the string coordinate in the error
// (callers translate ids when surfacing it).
//
//hod:hotpath
func (c *IntCell) Observe(value float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return errObserveNonFinite
	}
	sum := c.Sum + value
	if math.IsInf(sum, 0) {
		return errSumOverflow
	}
	if c.Count == 0 {
		c.Min, c.Max = value, value
	} else {
		if value < c.Min {
			c.Min = value
		}
		if value > c.Max {
			c.Max = value
		}
	}
	c.Count++
	c.Sum = sum
	return nil
}

// IntCube is a sparse cube over interned coordinates.
type IntCube struct {
	cells map[IntCoord]*IntCell
}

// NewIntCube returns an empty interned cube.
func NewIntCube() *IntCube {
	return &IntCube{cells: make(map[IntCoord]*IntCell)}
}

// CellAt returns the cell at coord, or nil.
func (c *IntCube) CellAt(coord IntCoord) *IntCell { return c.cells[coord] }

// AddFact folds one measure into the cell at coord, creating it on
// first touch. Non-finite measures and sum overflow are refused with
// ErrNonFinite, like Cube.AddFact.
func (c *IntCube) AddFact(coord IntCoord, value float64) error {
	cell, ok := c.cells[coord]
	if !ok {
		if math.IsNaN(value) || math.IsInf(value, 0) {
			return fmt.Errorf("%w: %v at %v", ErrNonFinite, value, coord)
		}
		cell = &IntCell{Coord: coord}
		c.cells[coord] = cell
	}
	return cell.Observe(value)
}

// AddAggregate merges one pre-aggregated cell — the snapshot-restore
// primitive, mirroring Cube.AddAggregate's gates.
func (c *IntCube) AddAggregate(coord IntCoord, count int, sum, min, max float64) error {
	if count <= 0 {
		return fmt.Errorf("%w: aggregate count %d at %v", ErrSchema, count, coord)
	}
	for _, v := range []float64{sum, min, max} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %v at %v", ErrNonFinite, v, coord)
		}
	}
	cell, ok := c.cells[coord]
	if !ok {
		cell = &IntCell{Coord: coord, Min: min, Max: max}
		c.cells[coord] = cell
	}
	merged := cell.Sum + sum
	if math.IsInf(merged, 0) {
		return fmt.Errorf("%w: sum overflow at %v", ErrNonFinite, coord)
	}
	cell.Count += count
	cell.Sum = merged
	if min < cell.Min {
		cell.Min = min
	}
	if max > cell.Max {
		cell.Max = max
	}
	return nil
}

// Len returns the number of materialised cells.
func (c *IntCube) Len() int { return len(c.cells) }

// Each visits every cell in map order — callers needing determinism
// sort after translating ids to strings.
func (c *IntCube) Each(fn func(*IntCell)) {
	for _, cell := range c.cells {
		fn(cell)
	}
}
