package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/plant"
)

func TestRankOrdering(t *testing.T) {
	outliers := []Outlier{
		{Index: 0, GlobalScore: 1, Support: 1, Outlierness: 0.9},
		{Index: 1, GlobalScore: 3, Support: 0, Outlierness: 0.1},
		{Index: 2, GlobalScore: 1, Support: 1, Outlierness: 0.5},
		{Index: 3, GlobalScore: 1, Support: 0, Outlierness: 0.99},
	}
	ranked := Rank(outliers)
	wantOrder := []int{1, 0, 2, 3}
	for i, w := range wantOrder {
		if ranked[i].Index != w {
			t.Fatalf("rank %d = index %d, want %d", i, ranked[i].Index, w)
		}
	}
	// Input untouched.
	if outliers[0].Index != 0 {
		t.Fatal("Rank mutated input")
	}
}

func TestClassify(t *testing.T) {
	if c := Classify(Outlier{Support: 1, GlobalScore: 2}); c != ClassFault {
		t.Fatalf("fault class=%v", c)
	}
	if c := Classify(Outlier{Support: 0, Outlierness: 0.8, GlobalScore: 1}); c != ClassMeasurement {
		t.Fatalf("meas class=%v", c)
	}
	if c := Classify(Outlier{Support: 0, Outlierness: 0.2, GlobalScore: 1}); c != ClassUnconfirmed {
		t.Fatalf("unconfirmed class=%v", c)
	}
}

func TestSummarizeAndRender(t *testing.T) {
	p, err := plant.Simulate(plant.Config{Seed: 3, FaultRate: 0.4, MeasurementErrorRate: 0.3, JobsPerMachine: 12})
	if err != nil {
		t.Fatal(err)
	}
	var machine string
	for _, e := range p.Events {
		if e.Kind == plant.ProcessFault {
			machine = e.Machine
			break
		}
	}
	if machine == "" {
		t.Skip("no fault for this seed")
	}
	h, err := NewHierarchy(p, machine)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FindHierarchicalOutliers(h, LevelPhase, Options{MaxOutliers: 512})
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(h, rep)
	if sum.Machine != machine || len(sum.Jobs) == 0 {
		t.Fatalf("summary=%+v", sum)
	}
	// Jobs sorted ascending.
	for i := 1; i < len(sum.Jobs); i++ {
		if sum.Jobs[i].JobIndex <= sum.Jobs[i-1].JobIndex {
			t.Fatal("jobs not sorted")
		}
	}
	// At least one job classified as a fault (the seed has faults).
	foundFault := false
	for _, j := range sum.Jobs {
		if j.Class == ClassFault {
			foundFault = true
		}
	}
	if !foundFault {
		t.Fatal("no job classified as fault")
	}
	text := sum.String()
	if !strings.Contains(text, machine) || !strings.Contains(text, "process-fault") {
		t.Fatalf("render incomplete:\n%s", text)
	}
	var buf bytes.Buffer
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Summary
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Machine != machine {
		t.Fatal("JSON round trip lost machine")
	}
}
