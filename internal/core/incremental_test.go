package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/plant"
)

func simTwo(t *testing.T, seed int64) (*plant.Plant, *plant.Plant) {
	t.Helper()
	cfg := plant.Config{Seed: seed, FaultRate: 0.3, MeasurementErrorRate: 0.3, JobsPerMachine: 6, PhaseSamples: 40}
	a, err := plant.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plant.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestPlantCacheRebindKeepsUntouchedSubtrees verifies the incremental
// contract: after Rebind to a snapshot that reuses machine objects,
// line scores come back from cache (same slice), while the
// production entry is recomputed.
func TestPlantCacheRebindKeepsUntouchedSubtrees(t *testing.T) {
	p, _ := simTwo(t, 7)
	c := NewPlantCache(p)
	m := p.Machines()[0]
	before, err := c.LineScores(m)
	if err != nil {
		t.Fatal(err)
	}
	envBefore, err := c.EnvScores()
	if err != nil {
		t.Fatal(err)
	}

	// A snapshot wrapping the same machines: line + env entries stay.
	snap := &plant.Plant{Lines: p.Lines, Environment: p.Environment, Start: p.Start, Step: p.Step}
	c.Rebind(snap)
	after, err := c.LineScores(m)
	if err != nil {
		t.Fatal(err)
	}
	if &before[0] != &after[0] {
		t.Fatal("Rebind dropped an untouched machine's line scores")
	}
	envAfter, err := c.EnvScores()
	if err != nil {
		t.Fatal(err)
	}
	if &envBefore[0] != &envAfter[0] {
		t.Fatal("Rebind dropped untouched environment scores")
	}

	// Explicit invalidation recomputes (equal values, fresh slice).
	c.InvalidateMachine(m.ID)
	fresh, err := c.LineScores(m)
	if err != nil {
		t.Fatal(err)
	}
	if &fresh[0] == &after[0] {
		t.Fatal("InvalidateMachine did not drop the entry")
	}
	if !reflect.DeepEqual(fresh, after) {
		t.Fatal("recomputed line scores differ from cached ones")
	}
	c.InvalidateEnv()
	envFresh, err := c.EnvScores()
	if err != nil {
		t.Fatal(err)
	}
	if &envFresh[0] == &envAfter[0] {
		t.Fatal("InvalidateEnv did not drop the entry")
	}
}

// TestHierarchyRebindMatchesFreshRun checks that a rebound hierarchy
// produces exactly the report a from-scratch hierarchy over the same
// snapshot would.
func TestHierarchyRebindMatchesFreshRun(t *testing.T) {
	p1, p2 := simTwo(t, 11)
	id := p1.Machines()[1].ID

	h, err := NewHierarchy(p1, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FindHierarchicalOutliers(h, LevelPhase, Options{}); err != nil {
		t.Fatal(err)
	}

	// Rebind to an independently simulated but identical plant: every
	// machine object is different, so all memos must drop.
	c2 := NewPlantCache(p2)
	if err := h.Rebind(p2, c2); err != nil {
		t.Fatal(err)
	}
	got, err := FindHierarchicalOutliers(h, LevelPhase, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewHierarchy(p2, id)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FindHierarchicalOutliers(fresh, LevelPhase, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rebound report differs from fresh run: got %d outliers, want %d",
			len(got.Outliers), len(want.Outliers))
	}
}

// TestHierarchyRebindSameMachineKeepsPhaseScores ensures the expensive
// machine-local profile memo survives a rebind that reuses the machine.
func TestHierarchyRebindSameMachineKeepsPhaseScores(t *testing.T) {
	p, _ := simTwo(t, 3)
	id := p.Machines()[0].ID
	h, err := NewHierarchy(p, id)
	if err != nil {
		t.Fatal(err)
	}
	before, err := h.phaseLevelScores()
	if err != nil {
		t.Fatal(err)
	}
	snap := &plant.Plant{Lines: p.Lines, Environment: p.Environment, Start: p.Start, Step: p.Step}
	if err := h.Rebind(snap, NewPlantCache(snap)); err != nil {
		t.Fatal(err)
	}
	after, err := h.phaseLevelScores()
	if err != nil {
		t.Fatal(err)
	}
	if !sameScoreMap(before, after) {
		t.Fatal("rebind with an unchanged machine dropped the phase-score memo")
	}
}

func sameScoreMap(a, b map[string][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		if len(av) > 0 && &av[0] != &bv[0] {
			return false
		}
		for i := range av {
			if av[i] != bv[i] && !(math.IsNaN(av[i]) && math.IsNaN(bv[i])) {
				return false
			}
		}
	}
	return true
}
