package core

import "repro/pkg/hod/wire"

// Wire converts the result record to its shared wire shape — the one
// conversion both the serving layer and the public SDK apply, so a new
// field cannot silently reach one surface and not the other. Levels
// are the same 1..5 integers on both sides.
func (o Outlier) Wire() wire.Outlier {
	seen := make([]wire.Level, len(o.SeenAt))
	for i, lv := range o.SeenAt {
		seen[i] = wire.Level(lv)
	}
	return wire.Outlier{
		Level:       wire.Level(o.Level),
		Sensor:      o.Sensor,
		Index:       o.Index,
		JobIndex:    o.JobIndex,
		GlobalScore: o.GlobalScore,
		Outlierness: o.Outlierness,
		Support:     o.Support,
		SeenAt:      seen,
	}
}

// Wire converts the warning to its shared wire shape.
func (w Warning) Wire() wire.Warning {
	return wire.Warning{
		Level:    wire.Level(w.Level),
		Below:    wire.Level(w.Below),
		JobIndex: w.JobIndex,
		Sensor:   w.Sensor,
		Reason:   w.Reason,
	}
}

// FromWire rebuilds the core triple of a wire outlier — the inverse
// direction consumers need to reuse core's comparators and decision
// rules on wire data.
func FromWire(o wire.Outlier) Outlier {
	seen := make([]Level, len(o.SeenAt))
	for i, lv := range o.SeenAt {
		seen[i] = Level(lv)
	}
	return Outlier{
		Level:       Level(o.Level),
		Sensor:      o.Sensor,
		Index:       o.Index,
		JobIndex:    o.JobIndex,
		GlobalScore: o.GlobalScore,
		Outlierness: o.Outlierness,
		Support:     o.Support,
		SeenAt:      seen,
	}
}
