package core

import (
	"fmt"
	"sort"
)

// Options tunes Algorithm 1.
type Options struct {
	// Thresholds per level, in robust-z-like units. An outlier is
	// "detected in a level" when that level's score reaches the
	// threshold. Zero values take the defaults below.
	PhaseThreshold      float64
	JobThreshold        float64
	EnvThreshold        float64
	LineThreshold       float64
	ProductionThreshold float64
	// MaxOutliers bounds the reported outlier list (default 64).
	MaxOutliers int
	// DisableDownPass turns off the downward recursion of Algorithm 1
	// (exposed for the ablation benchmark).
	DisableDownPass bool
	// RawSupport reports the support count without dividing by the
	// number of corresponding sensors (ablation of the paper's
	// "support /= Number of Corresponding Sensors" step).
	RawSupport bool
	// SoftSensorSupport enables virtual redundancy (§5 soft sensor
	// modelling): sensors without a physical twin get their support
	// from a soft sensor predicting them out of the peer channels.
	SoftSensorSupport bool
}

func (o Options) withDefaults() Options {
	if o.PhaseThreshold <= 0 {
		o.PhaseThreshold = 6
	}
	if o.JobThreshold <= 0 {
		o.JobThreshold = 3.5
	}
	if o.EnvThreshold <= 0 {
		o.EnvThreshold = 6
	}
	if o.LineThreshold <= 0 {
		o.LineThreshold = 3
	}
	if o.ProductionThreshold <= 0 {
		o.ProductionThreshold = 2.5
	}
	if o.MaxOutliers <= 0 {
		o.MaxOutliers = 64
	}
	return o
}

// Outlier is the algorithm's result record: the paper's triple plus
// the location of the finding. The JSON form (levels as 1..5) is what
// the serving layer returns.
type Outlier struct {
	Level       Level   `json:"level"`
	Sensor      string  `json:"sensor,omitempty"` // phase level only
	Index       int     `json:"index"`            // position on the start level's axis
	JobIndex    int     `json:"job"`              // the job the finding falls into
	GlobalScore int     `json:"global_score"`
	Outlierness float64 `json:"outlierness"`
	Support     float64 `json:"support"`
	// SeenAt lists every level that confirmed the outlier during the
	// global-score recursion (includes the start level).
	SeenAt []Level `json:"seen_at"`
}

// Warning is a measurement-error warning from the downward pass: an
// outlier visible at Level but absent at Below.
type Warning struct {
	Level    Level  `json:"level"`
	Below    Level  `json:"below"`
	JobIndex int    `json:"job"`
	Sensor   string `json:"sensor,omitempty"`
	Reason   string `json:"reason"`
}

// Report is the output of FindHierarchicalOutliers.
type Report struct {
	StartLevel Level
	Outliers   []Outlier
	Warnings   []Warning
}

// FindHierarchicalOutliers is Algorithm 1. It chooses the
// level-appropriate detection algorithm, computes the outlier list at
// the start level, derives the support from corresponding sensors, and
// computes the global score by recursing up (outlier confirmed above ⇒
// score++) and down (outlier absent below ⇒ measurement-error
// warning).
func FindHierarchicalOutliers(h *Hierarchy, startLevel Level, opts Options) (*Report, error) {
	if !startLevel.Valid() {
		return nil, fmt.Errorf("core: invalid start level %d", int(startLevel))
	}
	opts = opts.withDefaults()
	rep := &Report{StartLevel: startLevel}

	switch startLevel {
	case LevelPhase:
		if err := findPhaseOutliers(h, opts, rep); err != nil {
			return nil, err
		}
	case LevelJob:
		if err := findJobOutliers(h, opts, rep); err != nil {
			return nil, err
		}
	case LevelEnvironment:
		if err := findEnvOutliers(h, opts, rep); err != nil {
			return nil, err
		}
	case LevelProductionLine:
		if err := findLineOutliers(h, opts, rep); err != nil {
			return nil, err
		}
	case LevelProduction:
		if err := findProductionOutliers(h, opts, rep); err != nil {
			return nil, err
		}
	}
	// Deterministic ordering: strongest first, then by position.
	sort.SliceStable(rep.Outliers, func(i, j int) bool {
		a, b := rep.Outliers[i], rep.Outliers[j]
		if a.GlobalScore != b.GlobalScore {
			return a.GlobalScore > b.GlobalScore
		}
		if a.Outlierness != b.Outlierness {
			return a.Outlierness > b.Outlierness
		}
		return a.Index < b.Index
	})
	if len(rep.Outliers) > opts.MaxOutliers {
		rep.Outliers = rep.Outliers[:opts.MaxOutliers]
	}
	return rep, nil
}

// detectedAt reports whether the given level confirms an outlier for
// the job at jobIdx (levels above phase resolve by job; production by
// machine).
func detectedAt(h *Hierarchy, level Level, jobIdx int, opts Options) (bool, error) {
	switch level {
	case LevelPhase:
		scores, err := h.phaseLevelScores()
		if err != nil {
			return false, err
		}
		lo := jobIdx * h.perJob
		for _, sensorScores := range scores {
			// Clamp per sensor: a short sensor stream must not truncate
			// the scan range of the sensors after it.
			hi := lo + h.perJob
			if hi > len(sensorScores) {
				hi = len(sensorScores)
			}
			for i := lo; i < hi; i++ {
				if sensorScores[i] >= opts.PhaseThreshold {
					return true, nil
				}
			}
		}
		return false, nil
	case LevelJob:
		scores, err := h.jobLevelScores()
		if err != nil {
			return false, err
		}
		if jobIdx < 0 || jobIdx >= len(scores) {
			return false, nil
		}
		return scores[jobIdx] >= opts.JobThreshold, nil
	case LevelEnvironment:
		scores, err := h.envLevelScores()
		if err != nil {
			return false, err
		}
		lo := jobIdx * h.perJob
		hi := lo + h.perJob
		if hi > len(scores) {
			hi = len(scores)
		}
		for i := lo; i < hi; i++ {
			if scores[i] >= opts.EnvThreshold {
				return true, nil
			}
		}
		return false, nil
	case LevelProductionLine:
		scores, err := h.lineLevelScores()
		if err != nil {
			return false, err
		}
		if jobIdx < 0 || jobIdx >= len(scores) {
			return false, nil
		}
		return scores[jobIdx] >= opts.LineThreshold, nil
	case LevelProduction:
		scores, idx, err := h.productionLevelScores()
		if err != nil {
			return false, err
		}
		return scores[idx] >= opts.ProductionThreshold, nil
	default:
		return false, fmt.Errorf("core: invalid level %d", int(level))
	}
}

// globalScore implements CalcGlobalScore of Algorithm 1: it counts the
// levels confirming the outlier, walking up from the start level (the
// start level itself counts 1), and runs the downward pass that emits
// measurement-error warnings. It returns the score, the confirming
// levels, and any warnings.
func globalScore(h *Hierarchy, start Level, jobIdx int, sensor string, opts Options) (int, []Level, []Warning, error) {
	score := 1
	seen := []Level{start}
	var warnings []Warning
	// Upward pass: CalcGlobalScore(level++, true). The recursion of
	// Algorithm 1 stops at the first level that does not confirm.
	for lv := start + 1; lv <= MaxLevel; lv++ {
		ok, err := detectedAt(h, lv, jobIdx, opts)
		if err != nil {
			return 0, nil, nil, err
		}
		if !ok {
			break
		}
		score++
		seen = append(seen, lv)
	}
	// Downward pass: CalcGlobalScore(level--, false). If a lower level
	// shows no outlier while this level does, a measurement error must
	// be assumed (§4).
	if !opts.DisableDownPass {
		for lv := start - 1; lv >= MinLevel; lv-- {
			ok, err := detectedAt(h, lv, jobIdx, opts)
			if err != nil {
				return 0, nil, nil, err
			}
			if !ok {
				warnings = append(warnings, Warning{
					Level:    start,
					Below:    lv,
					JobIndex: jobIdx,
					Sensor:   sensor,
					Reason: fmt.Sprintf("outlier at %s level not confirmed at %s level: possible wrong measurement",
						start, lv),
				})
				break
			}
			score++
			seen = append(seen, lv)
		}
	}
	return score, seen, warnings, nil
}
