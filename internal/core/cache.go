package core

import (
	"errors"
	"math"
	"sync"

	"repro/internal/detector/olapcube"
	"repro/internal/plant"
	"repro/internal/stats"
)

var errMissingRoomTemp = errors.New("core: environment series missing room-temp")

// memo is a resettable once: each getter fills its entry exactly once
// between invalidations, holding the entry lock across both the fill
// and the read so a concurrent reset+refill can never race a reader.
// Unlike sync.Once it can be reset, which is what lets the serving
// layer roll new data into a live cache without rebuilding the
// untouched entries. Refills always allocate fresh slices, so values
// returned before a reset stay valid for their holders.
type memo struct {
	mu   sync.Mutex
	done bool
}

// do runs fill once per validity window, then snap — both under the
// entry lock, so the pattern that keeps readers safe from a concurrent
// reset+refill lives in one place.
func (m *memo) do(fill, snap func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.done {
		fill()
		m.done = true
	}
	snap()
}

// reset marks the entry stale so the next getter refills it.
func (m *memo) reset() {
	m.mu.Lock()
	m.done = false
	m.mu.Unlock()
}

// PlantCache shares the plant-wide score computations across the
// machine hierarchies of one plant. The environment tracker and the
// production-level cube compare the whole shop floor, so without
// sharing every machine's Hierarchy recomputes them from scratch —
// once per machine for the experiments, and once per sibling lookup
// inside lineSupport. All methods are safe for concurrent use; the
// parallel experiment engine evaluates machines on one shared cache.
//
// For incremental serving the cache is additionally *invalidatable*:
// Rebind swaps in a new plant snapshot (dropping the plant-spanning
// production entry), InvalidateEnv drops the environment tracker, and
// InvalidateMachine drops one machine's line scores — so a roll-up
// after fresh data never recomputes untouched subtrees.
type PlantCache struct {
	mu    sync.Mutex // guards plant pointer and the line map
	plant *plant.Plant

	envMemo memo
	env     []float64
	envErr  error

	prodMemo memo
	prod     []float64
	prodIdx  map[string]int
	prodErr  error

	line map[string]*lineEntry
}

type lineEntry struct {
	memo   memo
	scores []float64
	err    error
}

// NewPlantCache builds an empty cache for the plant. Hierarchies
// constructed with NewHierarchyWithCache over the same cache share
// every plant-level computation.
func NewPlantCache(p *plant.Plant) *PlantCache {
	return &PlantCache{plant: p, line: make(map[string]*lineEntry)}
}

// Plant returns the plant snapshot the cache is currently bound to.
func (c *PlantCache) Plant() *plant.Plant {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.plant
}

// Rebind points the cache at a new plant snapshot and drops the
// production-level entry (it spans every machine, so any change
// invalidates it). The environment and per-machine line entries are
// kept: callers invalidate exactly the subtrees whose data changed via
// InvalidateEnv and InvalidateMachine.
func (c *PlantCache) Rebind(p *plant.Plant) {
	c.mu.Lock()
	c.plant = p
	c.mu.Unlock()
	c.prodMemo.reset()
}

// InvalidateEnv drops the cached environment scores; the next EnvScores
// call recomputes them from the bound plant.
func (c *PlantCache) InvalidateEnv() { c.envMemo.reset() }

// InvalidateMachine drops one machine's cached line scores. The
// production entry is left alone — pair with Rebind when machine data
// changed, which drops it.
func (c *PlantCache) InvalidateMachine(id string) {
	c.mu.Lock()
	e, ok := c.line[id]
	c.mu.Unlock()
	if ok {
		e.memo.reset()
	}
}

// EnvScores returns the level-3 drift scores (EWMA tracker over the
// room-temperature series), computed once per plant.
func (c *PlantCache) EnvScores() (scores []float64, err error) {
	c.envMemo.do(
		func() { c.env, c.envErr = computeEnvScores(c.Plant()) },
		func() { scores, err = c.env, c.envErr })
	return scores, err
}

// ProductionScores returns the level-5 cube scores for every machine
// plus the machine-ID → index mapping, computed once per plant.
func (c *PlantCache) ProductionScores() (scores []float64, idx map[string]int, err error) {
	c.prodMemo.do(
		func() { c.prod, c.prodIdx, c.prodErr = computeProductionScores(c.Plant()) },
		func() { scores, idx, err = c.prod, c.prodIdx, c.prodErr })
	return scores, idx, err
}

// LineScores returns the level-4 robust scores of one machine,
// computed once per machine — sibling-support lookups hit the cache
// instead of rebuilding the series. Each entry fills under its own
// lock, so concurrent fills for different machines never serialize.
func (c *PlantCache) LineScores(m *plant.Machine) ([]float64, error) {
	c.mu.Lock()
	e, ok := c.line[m.ID]
	if !ok {
		e = &lineEntry{}
		c.line[m.ID] = e
	}
	c.mu.Unlock()
	var scores []float64
	var err error
	e.memo.do(
		func() { e.scores, e.err = computeLineScores(m) },
		func() { scores, err = e.scores, e.err })
	return scores, err
}

func computeEnvScores(p *plant.Plant) ([]float64, error) {
	if p.Environment == nil {
		return nil, errMissingRoomTemp
	}
	room := p.Environment.Dim("room-temp")
	if room == nil {
		return nil, errMissingRoomTemp
	}
	tr := stats.NewEWMATracker(0.05)
	out := make([]float64, room.Len())
	for i, v := range room.Values {
		out[i] = tr.Add(v)
	}
	return out, nil
}

func computeProductionScores(p *plant.Plant) ([]float64, map[string]int, error) {
	series, err := p.ProductionSeries()
	if err != nil {
		return nil, nil, err
	}
	batch := make([][]float64, len(series))
	machines := p.Machines()
	idx := make(map[string]int, len(machines))
	for i, s := range series {
		batch[i] = s.Values
		idx[machines[i].ID] = i
	}
	var raw []float64
	if len(batch) >= 3 {
		d := olapcube.New()
		raw, err = d.ScoreSeries(batch)
		if err != nil {
			return nil, nil, err
		}
	} else {
		raw = make([]float64, len(batch))
	}
	return raw, idx, nil
}

func computeLineScores(m *plant.Machine) ([]float64, error) {
	ls, err := m.LineSeries()
	if err != nil {
		return nil, err
	}
	qs, err := m.QualitySeries()
	if err != nil {
		return nil, err
	}
	zTemp := stats.RobustZScores(ls.Values)
	zQual := stats.RobustZScores(qs.Values)
	out := make([]float64, len(zTemp))
	for i := range out {
		// A job is line-level anomalous when either its mean
		// temperature or its quality deviates.
		out[i] = math.Max(math.Abs(zTemp[i]), math.Abs(zQual[i]))
	}
	return out, nil
}
