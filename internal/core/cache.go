package core

import (
	"errors"
	"math"
	"sync"

	"repro/internal/detector/olapcube"
	"repro/internal/plant"
	"repro/internal/stats"
)

var errMissingRoomTemp = errors.New("core: environment series missing room-temp")

// PlantCache shares the plant-wide score computations across the
// machine hierarchies of one plant. The environment tracker and the
// production-level cube compare the whole shop floor, so without
// sharing every machine's Hierarchy recomputes them from scratch —
// once per machine for the experiments, and once per sibling lookup
// inside lineSupport. All methods are safe for concurrent use; the
// parallel experiment engine evaluates machines on one shared cache.
type PlantCache struct {
	plant *plant.Plant

	envOnce sync.Once
	env     []float64
	envErr  error

	prodOnce sync.Once
	prod     []float64
	prodIdx  map[string]int
	prodErr  error

	mu   sync.Mutex // guards the line map only; entries fill via their own Once
	line map[string]*lineEntry
}

type lineEntry struct {
	once   sync.Once
	scores []float64
	err    error
}

// NewPlantCache builds an empty cache for the plant. Hierarchies
// constructed with NewHierarchyWithCache over the same cache share
// every plant-level computation.
func NewPlantCache(p *plant.Plant) *PlantCache {
	return &PlantCache{plant: p, line: make(map[string]*lineEntry)}
}

// EnvScores returns the level-3 drift scores (EWMA tracker over the
// room-temperature series), computed once per plant.
func (c *PlantCache) EnvScores() ([]float64, error) {
	c.envOnce.Do(func() { c.env, c.envErr = computeEnvScores(c.plant) })
	return c.env, c.envErr
}

// ProductionScores returns the level-5 cube scores for every machine
// plus the machine-ID → index mapping, computed once per plant.
func (c *PlantCache) ProductionScores() ([]float64, map[string]int, error) {
	c.prodOnce.Do(func() { c.prod, c.prodIdx, c.prodErr = computeProductionScores(c.plant) })
	return c.prod, c.prodIdx, c.prodErr
}

// LineScores returns the level-4 robust scores of one machine,
// computed once per machine — sibling-support lookups hit the cache
// instead of rebuilding the series. Each entry fills under its own
// Once, so concurrent fills for different machines never serialize.
func (c *PlantCache) LineScores(m *plant.Machine) ([]float64, error) {
	c.mu.Lock()
	e, ok := c.line[m.ID]
	if !ok {
		e = &lineEntry{}
		c.line[m.ID] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.scores, e.err = computeLineScores(m) })
	return e.scores, e.err
}

func computeEnvScores(p *plant.Plant) ([]float64, error) {
	room := p.Environment.Dim("room-temp")
	if room == nil {
		return nil, errMissingRoomTemp
	}
	tr := stats.NewEWMATracker(0.05)
	out := make([]float64, room.Len())
	for i, v := range room.Values {
		out[i] = tr.Add(v)
	}
	return out, nil
}

func computeProductionScores(p *plant.Plant) ([]float64, map[string]int, error) {
	series, err := p.ProductionSeries()
	if err != nil {
		return nil, nil, err
	}
	batch := make([][]float64, len(series))
	machines := p.Machines()
	idx := make(map[string]int, len(machines))
	for i, s := range series {
		batch[i] = s.Values
		idx[machines[i].ID] = i
	}
	var raw []float64
	if len(batch) >= 3 {
		d := olapcube.New()
		raw, err = d.ScoreSeries(batch)
		if err != nil {
			return nil, nil, err
		}
	} else {
		raw = make([]float64, len(batch))
	}
	return raw, idx, nil
}

func computeLineScores(m *plant.Machine) ([]float64, error) {
	ls, err := m.LineSeries()
	if err != nil {
		return nil, err
	}
	qs, err := m.QualitySeries()
	if err != nil {
		return nil, err
	}
	zTemp := stats.RobustZScores(ls.Values)
	zQual := stats.RobustZScores(qs.Values)
	out := make([]float64, len(zTemp))
	for i := range out {
		// A job is line-level anomalous when either its mean
		// temperature or its quality deviates.
		out[i] = math.Max(math.Abs(zTemp[i]), math.Abs(zQual[i]))
	}
	return out, nil
}
