package core

import (
	"sort"

	"repro/internal/plant"
	"repro/internal/stats"
)

// findPhaseOutliers is the start-level = phase instantiation of
// Algorithm 1: per-sensor point outliers, support from the redundant
// sensor group, global score from the upward pass.
func findPhaseOutliers(h *Hierarchy, opts Options, rep *Report) error {
	scores, err := h.phaseLevelScores()
	if err != nil {
		return err
	}
	// Walk sensors in sorted order so the outlier and warning lists are
	// deterministic — map iteration order must not leak into reports.
	sensors := make([]string, 0, len(scores))
	for sensor := range scores {
		sensors = append(sensors, sensor)
	}
	sort.Strings(sensors)
	for _, sensor := range sensors {
		ss := scores[sensor]
		for i, z := range ss {
			if z < opts.PhaseThreshold {
				continue
			}
			jobIdx, err := h.Machine.JobIndexOfSample(i)
			if err != nil {
				return err
			}
			support := phaseSupport(h, scores, sensor, i, opts)
			gs, seen, warns, err := globalScore(h, LevelPhase, jobIdx, sensor, opts)
			if err != nil {
				return err
			}
			rep.Outliers = append(rep.Outliers, Outlier{
				Level:       LevelPhase,
				Sensor:      sensor,
				Index:       i,
				JobIndex:    jobIdx,
				GlobalScore: gs,
				Outlierness: Outlierness(z, opts.PhaseThreshold),
				Support:     support,
				SeenAt:      seen,
			})
			rep.Warnings = append(rep.Warnings, warns...)
		}
	}
	return nil
}

// phaseSupport computes the paper's support value: for each
// corresponding sensor, support++ when it confirms the outlier at the
// same time (within a small tolerance window); then support is divided
// by the number of corresponding sensors (unless the raw-support
// ablation is on). Sensors without a physical twin can fall back to a
// soft sensor (virtual redundancy) when the option is enabled.
func phaseSupport(h *Hierarchy, scores map[string][]float64, sensor string, idx int, opts Options) float64 {
	corresponding := plant.Correspondence[sensor]
	if len(corresponding) == 0 {
		if opts.SoftSensorSupport {
			if ok, err := h.softSupport(sensor, idx, opts.PhaseThreshold); err == nil && ok {
				return 1
			}
		}
		return 0
	}
	const tolerance = 3 // samples: redundant sensors may lag slightly
	support := 0.0
	for _, other := range corresponding {
		ss, ok := scores[other]
		if !ok {
			continue
		}
		lo, hi := idx-tolerance, idx+tolerance
		if lo < 0 {
			lo = 0
		}
		if hi >= len(ss) {
			hi = len(ss) - 1
		}
		for i := lo; i <= hi; i++ {
			if ss[i] >= opts.PhaseThreshold {
				support++
				break
			}
		}
	}
	if opts.RawSupport {
		return support
	}
	return support / float64(len(corresponding))
}

// findJobOutliers starts Algorithm 1 at the job level.
func findJobOutliers(h *Hierarchy, opts Options, rep *Report) error {
	scores, err := h.jobLevelScores()
	if err != nil {
		return err
	}
	for jobIdx, z := range scores {
		if z < opts.JobThreshold {
			continue
		}
		gs, seen, warns, err := globalScore(h, LevelJob, jobIdx, "", opts)
		if err != nil {
			return err
		}
		rep.Outliers = append(rep.Outliers, Outlier{
			Level:       LevelJob,
			Index:       jobIdx,
			JobIndex:    jobIdx,
			GlobalScore: gs,
			Outlierness: Outlierness(z, opts.JobThreshold),
			// Job vectors have no redundant counterpart in this plant;
			// support stays 0 at this level.
			SeenAt: seen,
		})
		rep.Warnings = append(rep.Warnings, warns...)
	}
	return nil
}

// findEnvOutliers starts Algorithm 1 at the environment level.
func findEnvOutliers(h *Hierarchy, opts Options, rep *Report) error {
	scores, err := h.envLevelScores()
	if err != nil {
		return err
	}
	for i, z := range scores {
		if z < opts.EnvThreshold {
			continue
		}
		jobIdx, err := h.Machine.JobIndexOfSample(i)
		if err != nil {
			return err
		}
		gs, seen, warns, err := globalScore(h, LevelEnvironment, jobIdx, "room-temp", opts)
		if err != nil {
			return err
		}
		rep.Outliers = append(rep.Outliers, Outlier{
			Level:       LevelEnvironment,
			Sensor:      "room-temp",
			Index:       i,
			JobIndex:    jobIdx,
			GlobalScore: gs,
			Outlierness: Outlierness(z, opts.EnvThreshold),
			Support:     envSupport(h, i, opts),
			SeenAt:      seen,
		})
		rep.Warnings = append(rep.Warnings, warns...)
	}
	return nil
}

// envSupport checks the humidity channel for a concurrent disturbance
// — the environment level's corresponding sensor (§4's example is the
// room temperature supporting another measurement; here the climate
// channels support each other).
func envSupport(h *Hierarchy, idx int, opts Options) float64 {
	hum := h.Plant.Environment.Dim("humidity")
	if hum == nil {
		return 0
	}
	// One-off tracker run; environment support queries are rare.
	tr := stats.NewEWMATracker(0.05)
	for i, v := range hum.Values {
		z := tr.Add(v)
		if i == idx {
			if z >= opts.EnvThreshold {
				return 1
			}
			return 0
		}
	}
	return 0
}

// findLineOutliers starts Algorithm 1 at the production-line level.
func findLineOutliers(h *Hierarchy, opts Options, rep *Report) error {
	scores, err := h.lineLevelScores()
	if err != nil {
		return err
	}
	for jobIdx, z := range scores {
		if z < opts.LineThreshold {
			continue
		}
		gs, seen, warns, err := globalScore(h, LevelProductionLine, jobIdx, "", opts)
		if err != nil {
			return err
		}
		rep.Outliers = append(rep.Outliers, Outlier{
			Level:       LevelProductionLine,
			Index:       jobIdx,
			JobIndex:    jobIdx,
			GlobalScore: gs,
			Outlierness: Outlierness(z, opts.LineThreshold),
			Support:     lineSupport(h, jobIdx, opts),
			SeenAt:      seen,
		})
		rep.Warnings = append(rep.Warnings, warns...)
	}
	return nil
}

// lineSupport checks sibling machines on the same line for a
// concurrent job-level deviation: a line-wide disturbance (bad
// material batch) shows on the corresponding machines.
func lineSupport(h *Hierarchy, jobIdx int, opts Options) float64 {
	var line *plant.Line
	for _, l := range h.Plant.Lines {
		for _, m := range l.Machines {
			if m.ID == h.Machine.ID {
				line = l
			}
		}
	}
	if line == nil || len(line.Machines) < 2 {
		return 0
	}
	confirming, siblings := 0, 0
	for _, m := range line.Machines {
		if m.ID == h.Machine.ID {
			continue
		}
		siblings++
		// Siblings share this hierarchy's plant cache, so their line
		// scores are computed once per machine, not once per lookup.
		sib, err := NewHierarchyWithCache(h.Plant, m.ID, h.cache)
		if err != nil {
			continue
		}
		ok, err := detectedAt(sib, LevelProductionLine, jobIdx, opts)
		if err == nil && ok {
			confirming++
		}
	}
	if siblings == 0 {
		return 0
	}
	if opts.RawSupport {
		return float64(confirming)
	}
	return float64(confirming) / float64(siblings)
}

// findProductionOutliers starts Algorithm 1 at the production level:
// is this machine an outlier among all machines?
func findProductionOutliers(h *Hierarchy, opts Options, rep *Report) error {
	scores, idx, err := h.productionLevelScores()
	if err != nil {
		return err
	}
	z := scores[idx]
	if z < opts.ProductionThreshold {
		return nil
	}
	// The production level has one finding per machine; its "index" is
	// the machine's position. The downward pass covers every job: the
	// warning fires only if no job shows lower-level trouble.
	bestJob, found := 0, false
	for jobIdx := range h.Machine.Jobs {
		ok, err := detectedAt(h, LevelProductionLine, jobIdx, opts)
		if err != nil {
			return err
		}
		if ok {
			bestJob, found = jobIdx, true
			break
		}
	}
	jobIdx := bestJob
	if !found {
		jobIdx = 0
	}
	gs, seen, warns, err := globalScore(h, LevelProduction, jobIdx, "", opts)
	if err != nil {
		return err
	}
	rep.Outliers = append(rep.Outliers, Outlier{
		Level:       LevelProduction,
		Index:       idx,
		JobIndex:    jobIdx,
		GlobalScore: gs,
		Outlierness: Outlierness(z, opts.ProductionThreshold),
		Support:     0,
		SeenAt:      seen,
	})
	rep.Warnings = append(rep.Warnings, warns...)
	return nil
}
