// Package core implements the paper's primary contribution: the
// five-level production hierarchy (Fig. 2) and Algorithm 1
// (FindHierarchicalOutlier), which characterises every outlier by the
// triple ⟨global score, outlierness, support⟩:
//
//   - global score — in how many hierarchy levels the outlier is
//     visible; the higher, the more obvious the outlier (§4);
//   - outlierness — the significance assigned by the level-appropriate
//     detection algorithm, normalised to [0, 1];
//   - support — the fraction of corresponding (redundant) sensors that
//     confirm the outlier; low support flags measurement errors.
//
// The algorithm also performs the downward pass of Algorithm 1: an
// outlier visible at a high level with no trace at the level below
// raises a measurement-error warning.
package core

import "fmt"

// Level enumerates the five production levels of Fig. 2, ordered from
// the most detailed view (phase) to the most aggregated (production).
type Level int

const (
	// LevelPhase (1) carries multi-dimensional high-resolution sensor
	// series and discrete sequences per production phase.
	LevelPhase Level = iota + 1
	// LevelJob (2) carries the high-dimensional setup and CAQ vectors
	// of whole jobs.
	LevelJob
	// LevelEnvironment (3) carries series measured alongside but not
	// inside the process, e.g. room temperature.
	LevelEnvironment
	// LevelProductionLine (4) carries per-job aggregate series over
	// the job sequence of a machine/line.
	LevelProductionLine
	// LevelProduction (5) spans machines — the most complex scenario.
	LevelProduction
)

// MinLevel and MaxLevel bound the hierarchy.
const (
	MinLevel = LevelPhase
	MaxLevel = LevelProduction
)

// String names the level like the paper does.
func (l Level) String() string {
	switch l {
	case LevelPhase:
		return "phase"
	case LevelJob:
		return "job"
	case LevelEnvironment:
		return "environment"
	case LevelProductionLine:
		return "production-line"
	case LevelProduction:
		return "production"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Valid reports whether l is one of the five levels.
func (l Level) Valid() bool { return l >= MinLevel && l <= MaxLevel }

// Levels lists all five levels bottom-up.
func Levels() []Level {
	return []Level{LevelPhase, LevelJob, LevelEnvironment, LevelProductionLine, LevelProduction}
}
