package core

import (
	"strings"
	"testing"

	"repro/internal/plant"
)

func simulate(t *testing.T, cfg plant.Config) *plant.Plant {
	t.Helper()
	p, err := plant.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func hier(t *testing.T, p *plant.Plant, machine string) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(p, machine)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestLevelStringAndValidity(t *testing.T) {
	names := map[Level]string{
		LevelPhase:          "phase",
		LevelJob:            "job",
		LevelEnvironment:    "environment",
		LevelProductionLine: "production-line",
		LevelProduction:     "production",
	}
	for lv, want := range names {
		if lv.String() != want || !lv.Valid() {
			t.Fatalf("level %d: %q valid=%v", int(lv), lv.String(), lv.Valid())
		}
	}
	if Level(0).Valid() || Level(6).Valid() {
		t.Fatal("out-of-range levels must be invalid")
	}
	if len(Levels()) != 5 {
		t.Fatal("five levels expected")
	}
	if !strings.Contains(Level(9).String(), "Level(9)") {
		t.Fatal("unknown level string")
	}
}

func TestNewHierarchyUnknownMachine(t *testing.T) {
	p := simulate(t, plant.Config{Seed: 1})
	if _, err := NewHierarchy(p, "nope"); err == nil {
		t.Fatal("want error for unknown machine")
	}
}

func TestInvalidStartLevel(t *testing.T) {
	p := simulate(t, plant.Config{Seed: 1})
	h := hier(t, p, p.Machines()[0].ID)
	if _, err := FindHierarchicalOutliers(h, Level(0), Options{}); err == nil {
		t.Fatal("want error for invalid start level")
	}
}

func TestCleanPlantIsQuiet(t *testing.T) {
	p := simulate(t, plant.Config{Seed: 2})
	h := hier(t, p, p.Machines()[0].ID)
	rep, err := FindHierarchicalOutliers(h, LevelPhase, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outliers) > 3 {
		t.Fatalf("clean plant produced %d phase outliers", len(rep.Outliers))
	}
}

// faultyMachine returns a machine of p with a process fault and one
// with a measurement error, or skips.
func eventMachines(t *testing.T, p *plant.Plant) (faulty, lying string) {
	t.Helper()
	for _, e := range p.Events {
		if e.Kind == plant.ProcessFault && faulty == "" {
			faulty = e.Machine
		}
		if e.Kind == plant.MeasurementError && lying == "" {
			lying = e.Machine
		}
	}
	if faulty == "" || lying == "" {
		t.Skip("simulation produced no usable events for this seed")
	}
	return faulty, lying
}

func TestProcessFaultHasHighSupportAndGlobalScore(t *testing.T) {
	p := simulate(t, plant.Config{Seed: 3, FaultRate: 0.4, JobsPerMachine: 10})
	faulty := ""
	for _, e := range p.Events {
		if e.Kind == plant.ProcessFault {
			faulty = e.Machine
			break
		}
	}
	if faulty == "" {
		t.Fatal("no fault injected")
	}
	h := hier(t, p, faulty)
	rep, err := FindHierarchicalOutliers(h, LevelPhase, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outliers) == 0 {
		t.Fatal("fault not detected at phase level")
	}
	// Find outliers on temperature sensors inside the faulty job; the
	// fault is physical, so the redundant partner must support it.
	var supported, multiLevel bool
	for _, o := range rep.Outliers {
		if o.Sensor != "temp-a" && o.Sensor != "temp-b" {
			continue
		}
		if o.Support >= 1 {
			supported = true
		}
		if o.GlobalScore >= 2 {
			multiLevel = true
		}
	}
	if !supported {
		t.Fatal("process fault should be supported by the redundant sensor")
	}
	if !multiLevel {
		t.Fatal("process fault should propagate to at least one higher level")
	}
}

func TestMeasurementErrorHasZeroSupport(t *testing.T) {
	p := simulate(t, plant.Config{Seed: 4, MeasurementErrorRate: 0.5, JobsPerMachine: 10})
	lying := ""
	var ev plant.Event
	for _, e := range p.Events {
		if e.Kind == plant.MeasurementError {
			lying = e.Machine
			ev = e
			break
		}
	}
	if lying == "" {
		t.Fatal("no measurement error injected")
	}
	h := hier(t, p, lying)
	rep, err := FindHierarchicalOutliers(h, LevelPhase, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The lying sensor's outliers must carry zero support.
	var found bool
	for _, o := range rep.Outliers {
		if o.Sensor == ev.Sensor && o.Support == 0 {
			found = true
		}
		if o.Sensor == ev.Sensor && o.Support > 0 {
			t.Fatalf("lying sensor outlier has support %v", o.Support)
		}
	}
	if !found {
		t.Fatal("measurement error not detected on the lying sensor")
	}
}

func TestSupportSeparatesFaultFromMeasurementError(t *testing.T) {
	// The paper's central claim: support distinguishes real faults
	// (confirmed by redundant sensors) from measurement errors.
	p := simulate(t, plant.Config{Seed: 5, FaultRate: 0.3, MeasurementErrorRate: 0.3, JobsPerMachine: 12})
	faultJobs := map[string]map[int]bool{}
	lieJobs := map[string]map[int]bool{}
	for _, e := range p.Events {
		ji := jobIndexOf(t, p, e)
		switch e.Kind {
		case plant.ProcessFault:
			if faultJobs[e.Machine] == nil {
				faultJobs[e.Machine] = map[int]bool{}
			}
			faultJobs[e.Machine][ji] = true
		case plant.MeasurementError:
			if lieJobs[e.Machine] == nil {
				lieJobs[e.Machine] = map[int]bool{}
			}
			lieJobs[e.Machine][ji] = true
		}
	}
	var faultSupports, lieSupports []float64
	for _, m := range p.Machines() {
		h := hier(t, p, m.ID)
		rep, err := FindHierarchicalOutliers(h, LevelPhase, Options{MaxOutliers: 512})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range rep.Outliers {
			if o.Sensor != "temp-a" && o.Sensor != "temp-b" {
				continue
			}
			switch {
			case faultJobs[m.ID][o.JobIndex] && !lieJobs[m.ID][o.JobIndex]:
				faultSupports = append(faultSupports, o.Support)
			case lieJobs[m.ID][o.JobIndex] && !faultJobs[m.ID][o.JobIndex]:
				lieSupports = append(lieSupports, o.Support)
			}
		}
	}
	if len(faultSupports) == 0 || len(lieSupports) == 0 {
		t.Skip("seed produced no separable events")
	}
	if mean(faultSupports) <= mean(lieSupports) {
		t.Fatalf("fault support %.2f should exceed measurement-error support %.2f",
			mean(faultSupports), mean(lieSupports))
	}
}

func jobIndexOf(t *testing.T, p *plant.Plant, e plant.Event) int {
	t.Helper()
	m, err := p.MachineByID(e.Machine)
	if err != nil {
		t.Fatal(err)
	}
	for ji, j := range m.Jobs {
		if j.ID == e.Job {
			return ji
		}
	}
	t.Fatalf("job %s not found", e.Job)
	return -1
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestStartAtJobLevelDownPassWarnings(t *testing.T) {
	p := simulate(t, plant.Config{Seed: 6, FaultRate: 0.4, JobsPerMachine: 12})
	var machine string
	for _, e := range p.Events {
		if e.Kind == plant.ProcessFault {
			machine = e.Machine
			break
		}
	}
	if machine == "" {
		t.Fatal("no fault injected")
	}
	h := hier(t, p, machine)
	rep, err := FindHierarchicalOutliers(h, LevelJob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outliers) == 0 {
		t.Fatal("faulty job not flagged at job level")
	}
	// Identify the machine's truly faulty jobs.
	m, err := p.MachineByID(machine)
	if err != nil {
		t.Fatal(err)
	}
	faulty := map[int]bool{}
	for ji, j := range m.Jobs {
		if j.Faulty {
			faulty[ji] = true
		}
	}
	// At least one truly faulty job must be flagged, confirmed below
	// (global score ≥ 2) and free of measurement warnings; benign
	// setup deviations may flag and warn — that is the algorithm
	// working as designed.
	warned := map[int]bool{}
	for _, w := range rep.Warnings {
		warned[w.JobIndex] = true
	}
	confirmed := false
	for _, o := range rep.Outliers {
		if faulty[o.JobIndex] && o.GlobalScore >= 2 && !warned[o.JobIndex] {
			confirmed = true
		}
		if faulty[o.JobIndex] && warned[o.JobIndex] {
			t.Fatalf("real fault in job %d raised a measurement warning", o.JobIndex)
		}
	}
	if !confirmed {
		t.Fatalf("no faulty job confirmed below job level: outliers=%+v warnings=%+v",
			rep.Outliers, rep.Warnings)
	}
}

func TestDownPassAblation(t *testing.T) {
	p := simulate(t, plant.Config{Seed: 6, FaultRate: 0.4, JobsPerMachine: 12})
	var machine string
	for _, e := range p.Events {
		if e.Kind == plant.ProcessFault {
			machine = e.Machine
			break
		}
	}
	h := hier(t, p, machine)
	with, err := FindHierarchicalOutliers(h, LevelJob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := FindHierarchicalOutliers(h, LevelJob, Options{DisableDownPass: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(without.Warnings) != 0 {
		t.Fatal("down pass disabled must not warn")
	}
	// Global scores can only shrink without the downward confirmations.
	if len(with.Outliers) != len(without.Outliers) {
		t.Fatalf("outlier counts differ: %d vs %d", len(with.Outliers), len(without.Outliers))
	}
	for i := range with.Outliers {
		if without.Outliers[i].GlobalScore > with.Outliers[i].GlobalScore {
			t.Fatal("down pass cannot reduce global score")
		}
	}
}

func TestOutliernessMapping(t *testing.T) {
	if Outlierness(0, 5) != 0 {
		t.Fatal("zero deviation should map to 0")
	}
	at := Outlierness(5, 5)
	if at != 0.5 {
		t.Fatalf("threshold maps to %v, want 0.5", at)
	}
	if Outlierness(50, 5) <= 0.9 {
		t.Fatal("extreme deviation should approach 1")
	}
	if Outlierness(-1, 5) != 0 {
		t.Fatal("negative deviation clamps to 0")
	}
}

func TestMaxOutliersBound(t *testing.T) {
	p := simulate(t, plant.Config{Seed: 7, FaultRate: 0.8, MeasurementErrorRate: 0.8, JobsPerMachine: 12})
	h := hier(t, p, p.Machines()[0].ID)
	rep, err := FindHierarchicalOutliers(h, LevelPhase, Options{MaxOutliers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outliers) > 5 {
		t.Fatalf("MaxOutliers violated: %d", len(rep.Outliers))
	}
	// Sorted strongest-first.
	for i := 1; i < len(rep.Outliers); i++ {
		a, b := rep.Outliers[i-1], rep.Outliers[i]
		if a.GlobalScore < b.GlobalScore {
			t.Fatal("outliers not sorted by global score")
		}
	}
}

func TestSoftSensorSupportForUnpairedSensors(t *testing.T) {
	// Vibration has no physical twin. During a process fault the
	// vibration rises together with temperature and power, so the
	// soft sensor (predicting vibration from its peers) confirms the
	// deviation — support flips from 0 to 1 when the option is on.
	p := simulate(t, plant.Config{Seed: 9, FaultRate: 0.25, JobsPerMachine: 12})
	// Lower the phase threshold so the (smaller) vibration deviation
	// registers at all.
	optsOff := Options{PhaseThreshold: 3.5, MaxOutliers: 2048}
	optsOn := Options{PhaseThreshold: 3.5, MaxOutliers: 2048, SoftSensorSupport: true}

	vibSupport := func(opts Options) (withSupport, total int) {
		for _, m := range p.Machines() {
			faultJobs := map[int]bool{}
			any := false
			for ji, j := range m.Jobs {
				if j.Faulty {
					faultJobs[ji] = true
					any = true
				}
			}
			if !any {
				continue
			}
			h := hier(t, p, m.ID)
			rep, err := FindHierarchicalOutliers(h, LevelPhase, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range rep.Outliers {
				if o.Sensor != "vibration" || !faultJobs[o.JobIndex] {
					continue
				}
				total++
				if o.Support > 0 {
					withSupport++
				}
			}
		}
		return withSupport, total
	}
	offSup, offTotal := vibSupport(optsOff)
	onSup, onTotal := vibSupport(optsOn)
	if offTotal == 0 || onTotal == 0 {
		t.Skip("no vibration outliers at this threshold for this seed")
	}
	if offSup != 0 {
		t.Fatalf("without soft sensors vibration support should be 0, got %d/%d", offSup, offTotal)
	}
	if onSup == 0 {
		t.Fatalf("soft sensor should confirm fault-driven vibration outliers (0/%d)", onTotal)
	}
}

func TestStartAtProductionLevel(t *testing.T) {
	// Give one machine many faults so it deviates at plant scope.
	p := simulate(t, plant.Config{Seed: 8, FaultRate: 0.9, JobsPerMachine: 10, Lines: 1, MachinesPerLine: 4})
	// Find the machine with most faults.
	counts := map[string]int{}
	for _, e := range p.Events {
		if e.Kind == plant.ProcessFault {
			counts[e.Machine]++
		}
	}
	// All machines are faulty here; production level may or may not
	// flag ours — the API contract is simply "no error".
	h := hier(t, p, p.Machines()[0].ID)
	if _, err := FindHierarchicalOutliers(h, LevelProduction, Options{}); err != nil {
		t.Fatal(err)
	}
	// Environment level runs too.
	if _, err := FindHierarchicalOutliers(h, LevelEnvironment, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := FindHierarchicalOutliers(h, LevelProductionLine, Options{}); err != nil {
		t.Fatal(err)
	}
}
