package core

import (
	"fmt"
	"math"

	"repro/internal/plant"
	"repro/internal/softsensor"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// Hierarchy is one machine's aligned view over the five production
// levels, extracted from a simulated (or recorded) plant. It caches
// the per-level detection runs so the recursive global-score passes do
// not recompute them.
type Hierarchy struct {
	Plant   *plant.Plant
	Machine *plant.Machine

	// NaivePhase switches the phase-level detector from the job-cycle
	// profile to a plain global robust z — the "wrong algorithm for
	// the level" ablation showing why Algorithm 1's ChooseAlgorithm
	// step matters. Set before the first detection call.
	NaivePhase bool

	perPhase int // samples per phase
	perJob   int // samples per job

	// cache shares plant-wide computations (environment tracker,
	// production cube, per-machine line scores) with the other
	// hierarchies of the same plant.
	cache *PlantCache

	// Per-level normalised scores, computed lazily.
	phaseScores map[string][]float64 // sensor → per-sample z
	jobScores   []float64            // per job index
	envScores   []float64            // per environment sample
	lineScores  []float64            // per job index
	prodScores  []float64            // per machine index
	prodIndex   int                  // this machine's index in prodScores

	// Soft-sensor models for virtual redundancy, built lazily per
	// target sensor.
	softModels map[string]*softsensor.Model
	softStream *timeseries.MultiSeries
}

// NewHierarchy builds the hierarchy view for one machine of the plant
// with a private plant cache. Callers inspecting several machines of
// the same plant should share one cache via NewHierarchyWithCache.
func NewHierarchy(p *plant.Plant, machineID string) (*Hierarchy, error) {
	return NewHierarchyWithCache(p, machineID, NewPlantCache(p))
}

// NewHierarchyWithCache builds the hierarchy view for one machine,
// sharing the given plant cache so environment, production, and
// sibling line scores are computed once per plant instead of once per
// machine hierarchy.
func NewHierarchyWithCache(p *plant.Plant, machineID string, cache *PlantCache) (*Hierarchy, error) {
	m, err := p.MachineByID(machineID)
	if err != nil {
		return nil, err
	}
	if len(m.Jobs) == 0 || len(m.Jobs[0].Phases) == 0 {
		return nil, fmt.Errorf("core: machine %s has no recorded jobs", machineID)
	}
	if cache == nil {
		cache = NewPlantCache(p)
	}
	perPhase := m.Jobs[0].Phases[0].Sensors.Len()
	return &Hierarchy{
		Plant:    p,
		Machine:  m,
		perPhase: perPhase,
		perJob:   perPhase * len(m.Jobs[0].Phases),
		cache:    cache,
	}, nil
}

// SamplesPerJob returns the number of level-1 samples a job spans.
func (h *Hierarchy) SamplesPerJob() int { return h.perJob }

// Rebind points the hierarchy at a new plant snapshot and cache,
// dropping exactly the memos the snapshot invalidates. The plant-level
// scores (environment, line, production) always re-pull from the cache
// — which serves them memoized when their subtree is untouched. The
// machine-local memos (phase profile scores, job scores, soft-sensor
// models) survive when the snapshot reuses the same machine object,
// which is how the serving layer avoids re-profiling machines that
// received no new data.
func (h *Hierarchy) Rebind(p *plant.Plant, cache *PlantCache) error {
	m, err := p.MachineByID(h.Machine.ID)
	if err != nil {
		return err
	}
	if len(m.Jobs) == 0 || len(m.Jobs[0].Phases) == 0 {
		return fmt.Errorf("core: machine %s has no recorded jobs", m.ID)
	}
	if cache == nil {
		cache = NewPlantCache(p)
	}
	if m != h.Machine {
		h.phaseScores = nil
		h.jobScores = nil
		h.softModels = nil
		h.softStream = nil
		h.perPhase = m.Jobs[0].Phases[0].Sensors.Len()
		h.perJob = h.perPhase * len(m.Jobs[0].Phases)
	}
	h.Plant = p
	h.Machine = m
	h.cache = cache
	h.envScores = nil
	h.lineScores = nil
	h.prodScores = nil
	return nil
}

// ---- Level detectors (ChooseAlgorithm of Algorithm 1) ----
//
// Each level carries a different data shape, so a different detector
// family fits (§3): robust point scoring for the high-resolution phase
// series, a multivariate density model for the high-dimensional job
// vectors, a drift-following tracker for the environment, robust
// scoring for the short line series, and a cross-machine cube
// comparison at the production level. All scores are normalised to
// robust z-like scales so thresholds compare across levels.

// phaseLevelScores runs the level-1 detector: a profile-similarity
// scorer exploiting the repetitive job cycle. Every job traverses the
// same phase schedule, so position t within the job cycle has a
// cross-job profile (median/MAD); the score of a sample is its robust
// deviation from its position's profile. Temperature channels are
// first referenced to the job's nozzle setpoint (a known setup
// parameter), so per-job setpoint variation does not blur the profile
// — exactly the kind of context variable the paper says production
// levels contribute.
func (h *Hierarchy) phaseLevelScores() (map[string][]float64, error) {
	if h.phaseScores != nil {
		return h.phaseScores, nil
	}
	stream, err := h.Machine.PhaseStream()
	if err != nil {
		return nil, err
	}
	jobs := h.Machine.Jobs
	out := make(map[string][]float64, len(stream.Dims))
	if h.NaivePhase {
		for _, dim := range stream.Dims {
			z := stats.RobustZScores(dim.Values)
			scores := make([]float64, len(z))
			for i, v := range z {
				scores[i] = math.Abs(v)
			}
			out[dim.Name] = scores
		}
		h.phaseScores = out
		return out, nil
	}
	for _, dim := range stream.Dims {
		isTemp := dim.Name == "temp-a" || dim.Name == "temp-b"
		n := dim.Len()
		adj := make([]float64, n)
		for i, v := range dim.Values {
			if isTemp {
				ji := i / h.perJob
				if ji >= len(jobs) {
					ji = len(jobs) - 1
				}
				v -= jobs[ji].Setup[2] // reference to the job setpoint
			}
			adj[i] = v
		}
		scores := make([]float64, n)
		col := make([]float64, 0, len(jobs))
		scratch := make([]float64, len(jobs))
		for pos := 0; pos < h.perJob && pos < n; pos++ {
			col = col[:0]
			for i := pos; i < n; i += h.perJob {
				col = append(col, adj[i])
			}
			med, mad := stats.MedianMAD(col, scratch)
			// Floor the spread: with few jobs the MAD of a quiet
			// position underestimates the sensor noise.
			if stats.DegenerateMAD(mad) || mad < 0.3 {
				mad = 0.3
			}
			for i := pos; i < n; i += h.perJob {
				d := adj[i] - med
				if d < 0 {
					d = -d
				}
				scores[i] = d / mad
			}
		}
		out[dim.Name] = scores
	}
	h.phaseScores = out
	return out, nil
}

// jobLevelScores runs the level-2 detector: per-column robust z over
// the setup+CAQ vectors, taking each job's worst column. The
// column-wise view keeps a single degraded quality metric visible even
// when ten healthy columns would wash it out of a joint density — the
// high-dimensional regime §5 discusses.
func (h *Hierarchy) jobLevelScores() ([]float64, error) {
	if h.jobScores != nil {
		return h.jobScores, nil
	}
	rows := h.Machine.JobVectors()
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: machine %s has no job vectors", h.Machine.ID)
	}
	dims := len(rows[0])
	out := make([]float64, len(rows))
	col := make([]float64, len(rows))
	for d := 0; d < dims; d++ {
		for i, r := range rows {
			col[i] = r[d]
		}
		z := robustStandardize(col)
		for i := range out {
			if z[i] > out[i] {
				out[i] = z[i]
			}
		}
	}
	h.jobScores = out
	return out, nil
}

// envLevelScores runs the level-3 detector: an EWMA drift tracker over
// the room-temperature series, computed once per plant via the cache.
func (h *Hierarchy) envLevelScores() ([]float64, error) {
	if h.envScores != nil {
		return h.envScores, nil
	}
	out, err := h.cache.EnvScores()
	if err != nil {
		return nil, err
	}
	h.envScores = out
	return out, nil
}

// lineLevelScores runs the level-4 detector: robust z over the per-job
// aggregate series of the machine, shared via the plant cache so
// sibling-support lookups reuse it.
func (h *Hierarchy) lineLevelScores() ([]float64, error) {
	if h.lineScores != nil {
		return h.lineScores, nil
	}
	out, err := h.cache.LineScores(h.Machine)
	if err != nil {
		return nil, err
	}
	h.lineScores = out
	return out, nil
}

// productionLevelScores runs the level-5 detector: the OLAP-cube
// series scorer across every machine of the plant, computed once per
// plant via the cache.
func (h *Hierarchy) productionLevelScores() ([]float64, int, error) {
	if h.prodScores != nil {
		return h.prodScores, h.prodIndex, nil
	}
	raw, idxByID, err := h.cache.ProductionScores()
	if err != nil {
		return nil, 0, fmt.Errorf("core: production-level detector: %w", err)
	}
	idx, ok := idxByID[h.Machine.ID]
	if !ok {
		return nil, 0, fmt.Errorf("core: machine %s not in production view", h.Machine.ID)
	}
	h.prodScores = raw
	h.prodIndex = idx
	return raw, idx, nil
}

// robustStandardize converts raw scores to |x−median|/MAD, falling
// back to standard deviation for MAD-degenerate inputs.
func robustStandardize(raw []float64) []float64 {
	med, mad := stats.MedianMAD(raw, nil)
	if stats.DegenerateMAD(mad) {
		_, sd := stats.MeanStd(raw)
		if sd == 0 {
			return make([]float64, len(raw))
		}
		mad = sd
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = math.Abs(v-med) / mad
	}
	return out
}

// softSupport reports whether a soft sensor (predicting the target
// channel from its peers) confirms the measured value at sample idx —
// virtual redundancy for channels without a physical twin. The model
// is trained once per sensor on the machine's own stream.
func (h *Hierarchy) softSupport(sensor string, idx int, threshold float64) (bool, error) {
	if h.softStream == nil {
		stream, err := h.Machine.PhaseStream()
		if err != nil {
			return false, err
		}
		h.softStream = stream
		h.softModels = make(map[string]*softsensor.Model)
	}
	model, ok := h.softModels[sensor]
	if !ok {
		var err error
		model, err = softsensor.Fit(h.softStream, sensor, 1e-3)
		if err != nil {
			return false, err
		}
		h.softModels[sensor] = model
	}
	return model.Support(h.softStream, idx, threshold)
}

// Outlierness converts a robust z-like score into the paper's [0, 1]
// outlierness via a saturating map: 0.5 at the detection threshold,
// approaching 1 for extreme deviations.
func Outlierness(z, threshold float64) float64 {
	if z < 0 {
		z = 0
	}
	return z / (z + threshold)
}
