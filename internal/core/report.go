package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// RankLess is the paper's combined-importance order: global score
// first (the more levels confirm, the more obvious), then support
// (corroborated findings over lone voices), then outlierness. Exported
// so fleet-level consumers can rank machine-tagged outlier lists with
// exactly the same comparator.
func RankLess(a, b Outlier) bool {
	if a.GlobalScore != b.GlobalScore {
		return a.GlobalScore > b.GlobalScore
	}
	if a.Support != b.Support {
		return a.Support > b.Support
	}
	return a.Outlierness > b.Outlierness
}

// Rank orders outliers by RankLess. It returns a new slice; the input
// is untouched.
func Rank(outliers []Outlier) []Outlier {
	out := append([]Outlier(nil), outliers...)
	sort.SliceStable(out, func(i, j int) bool { return RankLess(out[i], out[j]) })
	return out
}

// Classify applies the decision rule evaluated in EXPERIMENTS.md: an
// outlier with corroboration (support ≥ 0.5) that propagates upward
// (global score ≥ 2) is a process fault; an uncorroborated one is a
// suspected measurement error; everything else stays an unconfirmed
// observation.
type Classification string

// The three outcome classes of Classify.
const (
	ClassFault       Classification = "process-fault"
	ClassMeasurement Classification = "measurement-error"
	ClassUnconfirmed Classification = "unconfirmed"
)

// Classify labels one outlier.
func Classify(o Outlier) Classification {
	switch {
	case o.Support >= 0.5 && o.GlobalScore >= 2:
		return ClassFault
	case o.Support < 0.5 && o.Outlierness >= 0.5:
		return ClassMeasurement
	default:
		return ClassUnconfirmed
	}
}

// Summary aggregates a report per job for operator consumption.
type Summary struct {
	Machine  string       `json:"machine"`
	Start    string       `json:"start_level"`
	Jobs     []JobSummary `json:"jobs"`
	Warnings []string     `json:"warnings,omitempty"`
}

// JobSummary is the per-job digest.
type JobSummary struct {
	JobIndex   int            `json:"job"`
	Outliers   int            `json:"outliers"`
	MaxGlobal  int            `json:"max_global_score"`
	MaxSupport float64        `json:"max_support"`
	MaxOutlier float64        `json:"max_outlierness"`
	Class      Classification `json:"class"`
	SeenLevels []string       `json:"seen_levels"`
}

// Summarize digests a report into one row per affected job.
func Summarize(h *Hierarchy, rep *Report) *Summary {
	s := &Summary{Machine: h.Machine.ID, Start: rep.StartLevel.String()}
	byJob := map[int][]Outlier{}
	for _, o := range rep.Outliers {
		byJob[o.JobIndex] = append(byJob[o.JobIndex], o)
	}
	jobIdxs := make([]int, 0, len(byJob))
	for ji := range byJob {
		jobIdxs = append(jobIdxs, ji)
	}
	sort.Ints(jobIdxs)
	for _, ji := range jobIdxs {
		outliers := Rank(byJob[ji])
		top := outliers[0]
		levels := map[Level]bool{}
		for _, o := range outliers {
			for _, lv := range o.SeenAt {
				levels[lv] = true
			}
		}
		var seen []string
		for _, lv := range Levels() {
			if levels[lv] {
				seen = append(seen, lv.String())
			}
		}
		js := JobSummary{
			JobIndex:   ji,
			Outliers:   len(outliers),
			Class:      Classify(top),
			SeenLevels: seen,
		}
		for _, o := range outliers {
			if o.GlobalScore > js.MaxGlobal {
				js.MaxGlobal = o.GlobalScore
			}
			if o.Support > js.MaxSupport {
				js.MaxSupport = o.Support
			}
			if o.Outlierness > js.MaxOutlier {
				js.MaxOutlier = o.Outlierness
			}
		}
		s.Jobs = append(s.Jobs, js)
	}
	for _, w := range rep.Warnings {
		s.Warnings = append(s.Warnings, w.Reason)
	}
	return s
}

// WriteJSON emits the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// String renders the summary as a text table.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s (start level %s)\n", s.Machine, s.Start)
	fmt.Fprintf(&b, "%-5s %-9s %-7s %-8s %-12s %-18s %s\n",
		"job", "outliers", "global", "support", "outlierness", "class", "seen")
	for _, j := range s.Jobs {
		fmt.Fprintf(&b, "%-5d %-9d %-7d %-8.2f %-12.3f %-18s %s\n",
			j.JobIndex, j.Outliers, j.MaxGlobal, j.MaxSupport, j.MaxOutlier, j.Class,
			strings.Join(j.SeenLevels, ","))
	}
	for _, w := range s.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	return b.String()
}
