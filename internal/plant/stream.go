package plant

import (
	"context"
	"fmt"

	"repro/internal/stream"
)

// StreamSource replays a machine's concatenated phase recordings as a
// live sample stream, interleaving all sensors in time order — the
// bridge between the simulated plant and the online pipeline of
// internal/stream.
type StreamSource struct {
	samples []stream.Sample
	pos     int
}

// NewStreamSource builds the source for one machine of the plant.
func NewStreamSource(p *Plant, machineID string) (*StreamSource, error) {
	m, err := p.MachineByID(machineID)
	if err != nil {
		return nil, err
	}
	ms, err := m.PhaseStream()
	if err != nil {
		return nil, err
	}
	if ms.Len() == 0 {
		return nil, fmt.Errorf("plant: machine %s has no samples", machineID)
	}
	samples := make([]stream.Sample, 0, ms.Len()*ms.Width())
	for i := 0; i < ms.Len(); i++ {
		at := ms.Dims[0].TimeAt(i)
		for _, d := range ms.Dims {
			samples = append(samples, stream.Sample{Sensor: d.Name, At: at, Value: d.Values[i]})
		}
	}
	return &StreamSource{samples: samples}, nil
}

// Len returns the total number of samples the source will emit.
func (s *StreamSource) Len() int { return len(s.samples) }

// Next implements stream.Source.
func (s *StreamSource) Next(ctx context.Context) (stream.Sample, bool) {
	if ctx.Err() != nil || s.pos >= len(s.samples) {
		return stream.Sample{}, false
	}
	out := s.samples[s.pos]
	s.pos++
	return out, true
}
