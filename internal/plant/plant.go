// Package plant simulates an additive-manufacturing (industrial
// 3D-printing) production plant — the use case that motivates the
// paper and the "real-life data of a company" its future-work
// evaluation calls for. The simulator produces data for all five
// hierarchy levels of Fig. 2:
//
//	level 1 (phase):           high-resolution multi-sensor series per
//	                           production phase, with redundant
//	                           temperature sensors
//	level 2 (job):             setup parameter vectors and CAQ quality
//	                           vectors per job
//	level 3 (environment):     room climate series over the whole horizon
//	level 4 (production line): per-job aggregate series per machine/line
//	level 5 (production):      cross-machine comparison data
//
// Two ground-truth event kinds are injected: *process faults* (the
// physical signal deviates — every redundant sensor sees it) and
// *measurement errors* (one sensor lies — its redundant partner does
// not confirm). Separating the two is exactly what the paper's support
// value is for.
package plant

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/timeseries"
)

// EventKind distinguishes the two injected ground-truth event types.
type EventKind int

const (
	// ProcessFault is a real physical deviation (overheating, clog):
	// all redundant sensors observe it and quality degrades.
	ProcessFault EventKind = iota
	// MeasurementError is a lying sensor: only one sensor of a
	// redundant group shows the deviation and quality is unaffected.
	MeasurementError
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case ProcessFault:
		return "process-fault"
	case MeasurementError:
		return "measurement-error"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// PhaseNames lists the production phases of one print job in order
// (§2: "preparation, warm-up, and calibration" plus the print itself
// and cooldown).
var PhaseNames = []string{"preparation", "warm-up", "calibration", "print", "cooldown"}

// SensorNames lists the phase-level sensors. temp-a and temp-b are the
// redundant pair measuring the same chamber temperature (§1: "machines
// are often equipped with redundant sensors, e.g., to measure the
// temperature of the same machine at different places").
var SensorNames = []string{"temp-a", "temp-b", "vibration", "power"}

// Correspondence maps each sensor to the sensors that corroborate it —
// the paper's "corresponding sensors".
var Correspondence = map[string][]string{
	"temp-a": {"temp-b"},
	"temp-b": {"temp-a"},
}

// Event is one injected ground-truth anomaly.
type Event struct {
	Kind    EventKind
	Line    string
	Machine string
	Job     string
	Phase   string
	Sensor  string // affected sensor for measurement errors, "" for faults
	Index   int    // sample offset within the phase
	Length  int    // affected samples
}

// Phase is one production phase recording.
type Phase struct {
	Name    string
	Sensors *timeseries.MultiSeries
	Events  []Event
}

// Job is one print job: setup, phases, quality check.
type Job struct {
	ID      string
	Machine string
	Line    string
	Start   time.Time
	// Setup parameters chosen during job preparation (§2: "during the
	// setup, parameters are selected and the job is prepared"):
	// layer height (mm), print speed (mm/s), chamber setpoint (°C),
	// extrusion multiplier, material batch viscosity index.
	Setup []float64
	// CAQ is the computer-aided quality vector measured after the job:
	// dimensional error (mm), surface roughness (µm), porosity (%),
	// tensile strength (MPa), warp (mm), completion ratio.
	CAQ    []float64
	Phases []*Phase
	// Faulty reports whether any process fault hit this job.
	Faulty bool
}

// Machine is one 3D printer running a sequence of jobs.
type Machine struct {
	ID   string
	Line string
	Jobs []*Job
	// Bias models per-machine calibration offsets (°C).
	Bias float64
}

// Line is one production line of machines.
type Line struct {
	ID       string
	Machines []*Machine
}

// Plant is the full simulated production.
type Plant struct {
	Lines       []*Line
	Environment *timeseries.MultiSeries // room-temp, humidity
	Start       time.Time
	Step        time.Duration
	Events      []Event
}

// Config parameterises the simulation.
type Config struct {
	Lines           int
	MachinesPerLine int
	JobsPerMachine  int
	PhaseSamples    int // samples per phase at level-1 resolution
	Seed            int64
	// FaultRate is the per-job probability of a process fault.
	FaultRate float64
	// MeasurementErrorRate is the per-job probability of a lying
	// sensor.
	MeasurementErrorRate float64
}

func (c Config) withDefaults() Config {
	if c.Lines <= 0 {
		c.Lines = 2
	}
	if c.MachinesPerLine <= 0 {
		c.MachinesPerLine = 3
	}
	if c.JobsPerMachine <= 0 {
		c.JobsPerMachine = 8
	}
	if c.PhaseSamples <= 0 {
		c.PhaseSamples = 120
	}
	if c.FaultRate < 0 {
		c.FaultRate = 0
	}
	if c.MeasurementErrorRate < 0 {
		c.MeasurementErrorRate = 0
	}
	return c
}

// Simulate runs the plant simulation.
func Simulate(cfg Config) (*Plant, error) {
	cfg = cfg.withDefaults()
	if cfg.FaultRate > 1 || cfg.MeasurementErrorRate > 1 {
		return nil, fmt.Errorf("plant: rates must be probabilities (fault=%v, meas=%v)",
			cfg.FaultRate, cfg.MeasurementErrorRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Date(2026, 6, 1, 6, 0, 0, 0, time.UTC)
	step := time.Second
	p := &Plant{Start: start, Step: step}

	jobSamples := cfg.PhaseSamples * len(PhaseNames)
	horizon := cfg.JobsPerMachine * jobSamples

	// Environment (level 3): slow daily-style cycle plus noise, shared
	// by the whole shop floor.
	room := make([]float64, horizon)
	hum := make([]float64, horizon)
	for t := range room {
		cyc := math.Sin(2 * math.Pi * float64(t) / float64(horizon) * 2) // two slow cycles
		room[t] = 22 + 1.5*cyc + rng.NormFloat64()*0.15
		hum[t] = 45 - 4*cyc + rng.NormFloat64()*0.5
	}
	env, err := timeseries.NewMulti(
		timeseries.New("room-temp", start, step, room),
		timeseries.New("humidity", start, step, hum),
	)
	if err != nil {
		return nil, err
	}
	p.Environment = env

	for li := 0; li < cfg.Lines; li++ {
		line := &Line{ID: fmt.Sprintf("line-%d", li+1)}
		for mi := 0; mi < cfg.MachinesPerLine; mi++ {
			m := &Machine{
				ID:   fmt.Sprintf("%s/m%d", line.ID, mi+1),
				Line: line.ID,
				Bias: rng.NormFloat64() * 0.4,
			}
			for ji := 0; ji < cfg.JobsPerMachine; ji++ {
				job := simulateJob(cfg, m, ji, start.Add(time.Duration(ji*jobSamples)*step), room, ji*jobSamples, rng)
				m.Jobs = append(m.Jobs, job)
				for _, ph := range job.Phases {
					p.Events = append(p.Events, ph.Events...)
				}
			}
			line.Machines = append(line.Machines, m)
		}
		p.Lines = append(p.Lines, line)
	}
	return p, nil
}

// simulateJob produces one job with its phases, setup and CAQ vector.
func simulateJob(cfg Config, m *Machine, ji int, jobStart time.Time, room []float64, roomOffset int, rng *rand.Rand) *Job {
	job := &Job{
		ID:      fmt.Sprintf("%s/job-%02d", m.ID, ji+1),
		Machine: m.ID,
		Line:    m.Line,
		Start:   jobStart,
	}
	// Setup vector: realistic additive-manufacturing parameters with
	// small batch-to-batch variation.
	setpoint := 210 + rng.NormFloat64()*2
	job.Setup = []float64{
		0.2 + rng.NormFloat64()*0.01, // layer height mm
		55 + rng.NormFloat64()*3,     // print speed mm/s
		setpoint,                     // nozzle setpoint °C
		1 + rng.NormFloat64()*0.03,   // extrusion multiplier
		100 + rng.NormFloat64()*5,    // material viscosity index
	}

	fault := rng.Float64() < cfg.FaultRate
	measErr := rng.Float64() < cfg.MeasurementErrorRate
	faultPhase := 3 // print phase carries process faults
	measPhase := rng.Intn(len(PhaseNames))
	measSensor := "temp-a"
	if rng.Float64() < 0.5 {
		measSensor = "temp-b"
	}

	var faultSeverity float64
	for pi, phName := range PhaseNames {
		phStart := jobStart.Add(time.Duration(pi*cfg.PhaseSamples) * time.Second)
		ph, severity := simulatePhase(cfg, m, job, phName, pi, phStart,
			room, roomOffset+pi*cfg.PhaseSamples,
			fault && pi == faultPhase, measErr && pi == measPhase, measSensor, rng)
		job.Phases = append(job.Phases, ph)
		faultSeverity += severity
	}
	job.Faulty = fault

	// CAQ vector (level 2): quality degrades with fault severity; a
	// measurement error leaves quality untouched.
	q := faultSeverity
	job.CAQ = []float64{
		0.05 + 0.10*q + math.Abs(rng.NormFloat64())*0.01, // dimensional error mm
		6 + 14*q + rng.NormFloat64()*0.5,                 // roughness µm
		1.5 + 6*q + math.Abs(rng.NormFloat64())*0.2,      // porosity %
		48 - 16*q + rng.NormFloat64()*1.2,                // tensile MPa
		0.1 + 0.5*q + math.Abs(rng.NormFloat64())*0.03,   // warp mm
		1 - 0.25*q + rng.NormFloat64()*0.005,             // completion
	}
	return job
}

// simulatePhase synthesises the sensor block of one phase and returns
// the fault severity contribution (0 when no process fault).
func simulatePhase(cfg Config, m *Machine, job *Job, phName string, phaseIdx int, phStart time.Time,
	room []float64, roomOffset int, injectFault, injectMeas bool, measSensor string, rng *rand.Rand) (*Phase, float64) {

	n := cfg.PhaseSamples
	setpoint := job.Setup[2]
	phys := make([]float64, n) // true chamber temperature
	vib := make([]float64, n)
	pow := make([]float64, n)
	for t := 0; t < n; t++ {
		frac := float64(t) / float64(n)
		roomT := room[clampIdx(roomOffset+t, len(room))]
		var target, vibBase, powBase float64
		switch phName {
		case "preparation":
			target = roomT + 5
			vibBase, powBase = 0.2, 0.4
		case "warm-up":
			target = roomT + (setpoint-roomT)*frac
			vibBase, powBase = 0.3, 2.5
		case "calibration":
			target = setpoint
			vibBase, powBase = 0.8, 1.2
		case "print":
			target = setpoint + 1.5*math.Sin(2*math.Pi*frac*6)
			vibBase, powBase = 1.6, 2.0
		case "cooldown":
			target = setpoint - (setpoint-roomT)*frac
			vibBase, powBase = 0.2, 0.3
		}
		phys[t] = target + m.Bias + rng.NormFloat64()*0.3
		vib[t] = vibBase + 0.15*math.Abs(rng.NormFloat64())
		pow[t] = powBase + 0.05*phys[t]/10 + rng.NormFloat64()*0.05
	}

	ph := &Phase{Name: phName}
	var severity float64

	// Process fault: heater runaway during the print — the physical
	// temperature drifts up and vibration grows. Every sensor sees it.
	if injectFault {
		at := n / 3
		length := n / 3
		severity = 0.5 + rng.Float64()*0.5
		for t := at; t < at+length && t < n; t++ {
			ramp := float64(t-at) / float64(length)
			phys[t] += severity * 14 * ramp
			vib[t] += severity * 2.4 * ramp
			pow[t] += severity * 1.6 * ramp
		}
		ph.Events = append(ph.Events, Event{
			Kind: ProcessFault, Line: job.Line, Machine: job.Machine,
			Job: job.ID, Phase: phName, Index: at, Length: length,
		})
	}

	// Redundant sensors read the same physical signal with independent
	// noise and tiny mounting offsets.
	ta := make([]float64, n)
	tb := make([]float64, n)
	for t := 0; t < n; t++ {
		ta[t] = phys[t] + 0.2 + rng.NormFloat64()*0.15
		tb[t] = phys[t] - 0.2 + rng.NormFloat64()*0.15
	}

	// Measurement error: one temperature sensor sticks at a bogus
	// value for a stretch; its partner is unaffected.
	if injectMeas {
		at := n / 2
		length := n / 6
		if length < 4 {
			length = 4
		}
		bogus := phys[at] + 18
		target := ta
		if measSensor == "temp-b" {
			target = tb
		}
		for t := at; t < at+length && t < n; t++ {
			target[t] = bogus + rng.NormFloat64()*0.05
		}
		ph.Events = append(ph.Events, Event{
			Kind: MeasurementError, Line: job.Line, Machine: job.Machine,
			Job: job.ID, Phase: phName, Sensor: measSensor, Index: at, Length: length,
		})
	}

	ms, err := timeseries.NewMulti(
		timeseries.New("temp-a", phStart, time.Second, ta),
		timeseries.New("temp-b", phStart, time.Second, tb),
		timeseries.New("vibration", phStart, time.Second, vib),
		timeseries.New("power", phStart, time.Second, pow),
	)
	if err != nil {
		// All four series share n samples by construction; a failure
		// here is a programming error.
		panic(err)
	}
	ph.Sensors = ms
	return ph, severity
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
