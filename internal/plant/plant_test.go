package plant

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func simulateT(t *testing.T, cfg Config) *Plant {
	t.Helper()
	p, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaultsAndShape(t *testing.T) {
	p := simulateT(t, Config{Seed: 1})
	if len(p.Lines) != 2 {
		t.Fatalf("lines=%d", len(p.Lines))
	}
	if len(p.Lines[0].Machines) != 3 {
		t.Fatalf("machines=%d", len(p.Lines[0].Machines))
	}
	m := p.Lines[0].Machines[0]
	if len(m.Jobs) != 8 {
		t.Fatalf("jobs=%d", len(m.Jobs))
	}
	job := m.Jobs[0]
	if len(job.Phases) != len(PhaseNames) {
		t.Fatalf("phases=%d", len(job.Phases))
	}
	for i, ph := range job.Phases {
		if ph.Name != PhaseNames[i] {
			t.Fatalf("phase %d = %q", i, ph.Name)
		}
		if ph.Sensors.Width() != len(SensorNames) || ph.Sensors.Len() != 120 {
			t.Fatalf("sensor block %dx%d", ph.Sensors.Width(), ph.Sensors.Len())
		}
	}
	if len(job.Setup) != 5 || len(job.CAQ) != 6 {
		t.Fatalf("setup=%d caq=%d", len(job.Setup), len(job.CAQ))
	}
	if p.Environment.Len() != 8*5*120 {
		t.Fatalf("environment len=%d", p.Environment.Len())
	}
}

func TestRateValidation(t *testing.T) {
	if _, err := Simulate(Config{FaultRate: 2}); err == nil {
		t.Fatal("want error for rate > 1")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := simulateT(t, Config{Seed: 42, FaultRate: 0.3, MeasurementErrorRate: 0.3})
	b := simulateT(t, Config{Seed: 42, FaultRate: 0.3, MeasurementErrorRate: 0.3})
	va := a.Lines[0].Machines[0].Jobs[0].Phases[0].Sensors.Dims[0].Values
	vb := b.Lines[0].Machines[0].Jobs[0].Phases[0].Sensors.Dims[0].Values
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("same seed must reproduce the plant")
		}
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("event streams differ")
	}
}

func TestRedundantSensorsAgree(t *testing.T) {
	p := simulateT(t, Config{Seed: 2})
	ph := p.Lines[0].Machines[0].Jobs[0].Phases[3]
	ta := ph.Sensors.Dim("temp-a").Values
	tb := ph.Sensors.Dim("temp-b").Values
	if r := stats.Correlation(ta, tb); r < 0.95 {
		t.Fatalf("redundant sensors correlate %v, want > 0.95", r)
	}
	// The mounting offsets put them ~0.4 apart.
	diff := stats.Mean(ta) - stats.Mean(tb)
	if math.Abs(diff-0.4) > 0.2 {
		t.Fatalf("mounting offset=%v want ~0.4", diff)
	}
}

func TestProcessFaultVisibleOnBothSensorsAndCAQ(t *testing.T) {
	p := simulateT(t, Config{Seed: 3, FaultRate: 1})
	m := p.Lines[0].Machines[0]
	job := m.Jobs[0]
	if !job.Faulty {
		t.Fatal("job should be faulty at rate 1")
	}
	ph := job.Phases[3] // print
	var ev *Event
	for i := range ph.Events {
		if ph.Events[i].Kind == ProcessFault {
			ev = &ph.Events[i]
		}
	}
	if ev == nil {
		t.Fatal("no fault event recorded")
	}
	ta := ph.Sensors.Dim("temp-a").Values
	tb := ph.Sensors.Dim("temp-b").Values
	end := ev.Index + ev.Length - 1
	// Both sensors deviate upward at the end of the fault ramp.
	pre := stats.Mean(ta[:ev.Index])
	if ta[end] < pre+4 || tb[end] < pre+4 {
		t.Fatalf("fault ramp not visible on both sensors: a=%v b=%v pre=%v", ta[end], tb[end], pre)
	}
	// Quality degrades vs a clean plant.
	clean := simulateT(t, Config{Seed: 3, FaultRate: 0})
	dirtyErr := job.CAQ[0]
	cleanErr := clean.Lines[0].Machines[0].Jobs[0].CAQ[0]
	if dirtyErr < cleanErr {
		t.Fatalf("faulty dimensional error %v should exceed clean %v", dirtyErr, cleanErr)
	}
}

func TestMeasurementErrorOnlyOneSensor(t *testing.T) {
	p := simulateT(t, Config{Seed: 4, MeasurementErrorRate: 1})
	var ev *Event
	var phase *Phase
	for _, m := range p.Machines() {
		for _, job := range m.Jobs {
			for _, ph := range job.Phases {
				for i := range ph.Events {
					if ph.Events[i].Kind == MeasurementError {
						ev = &ph.Events[i]
						phase = ph
					}
				}
			}
		}
	}
	if ev == nil {
		t.Fatal("no measurement error at rate 1")
	}
	bad := phase.Sensors.Dim(ev.Sensor).Values
	partner := Correspondence[ev.Sensor][0]
	good := phase.Sensors.Dim(partner).Values
	mid := ev.Index + ev.Length/2
	if bad[mid]-good[mid] < 10 {
		t.Fatalf("lying sensor should be far from its partner: %v vs %v", bad[mid], good[mid])
	}
}

func TestViews(t *testing.T) {
	p := simulateT(t, Config{Seed: 5})
	m := p.Lines[0].Machines[0]
	stream, err := m.PhaseStream()
	if err != nil {
		t.Fatal(err)
	}
	if stream.Len() != 8*5*120 || stream.Width() != 4 {
		t.Fatalf("stream %dx%d", stream.Width(), stream.Len())
	}
	jv := m.JobVectors()
	if len(jv) != 8 || len(jv[0]) != 11 {
		t.Fatalf("job vectors %dx%d", len(jv), len(jv[0]))
	}
	ls, err := m.LineSeries()
	if err != nil {
		t.Fatal(err)
	}
	if ls.Len() != 8 {
		t.Fatalf("line series len=%d", ls.Len())
	}
	qs, err := m.QualitySeries()
	if err != nil || qs.Len() != 8 {
		t.Fatalf("quality series len err=%v", err)
	}
	ps, err := p.ProductionSeries()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 6 {
		t.Fatalf("production series=%d", len(ps))
	}
	if _, err := p.MachineByID("nope"); err == nil {
		t.Fatal("want error for unknown machine")
	}
	got, err := p.MachineByID(m.ID)
	if err != nil || got != m {
		t.Fatal("MachineByID failed")
	}
}

func TestOffsetsRoundTrip(t *testing.T) {
	p := simulateT(t, Config{Seed: 6})
	m := p.Lines[0].Machines[0]
	off, err := m.PhaseOffset(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if off != 2*5*120+3*120 {
		t.Fatalf("offset=%d", off)
	}
	ji, err := m.JobIndexOfSample(off)
	if err != nil || ji != 2 {
		t.Fatalf("job index=%d err=%v", ji, err)
	}
	if _, err := m.PhaseOffset(99, 0); err == nil {
		t.Fatal("want error for bad job index")
	}
	if _, err := m.PhaseOffset(0, 99); err == nil {
		t.Fatal("want error for bad phase index")
	}
	if _, err := m.JobIndexOfSample(-1); err == nil {
		t.Fatal("want error for negative sample")
	}
	// Beyond the end clamps to the last job.
	ji, _ = m.JobIndexOfSample(1 << 20)
	if ji != 7 {
		t.Fatalf("clamped job index=%d", ji)
	}
}

func TestEventsFor(t *testing.T) {
	p := simulateT(t, Config{Seed: 7, FaultRate: 0.5, MeasurementErrorRate: 0.5})
	m := p.Lines[0].Machines[0]
	evs := p.EventsFor(m.ID)
	for _, e := range evs {
		if e.Machine != m.ID {
			t.Fatalf("foreign event %+v", e)
		}
	}
	if len(p.EventsFor("nope")) != 0 {
		t.Fatal("unknown machine should have no events")
	}
}
