package plant

import (
	"fmt"
	"time"

	"repro/internal/stats"
	"repro/internal/timeseries"
)

// The view helpers below extract the level-specific data shapes of
// Fig. 2 from a simulated plant, ready for the hierarchy algorithm.

// MachineByID returns the machine with the given ID.
func (p *Plant) MachineByID(id string) (*Machine, error) {
	for _, l := range p.Lines {
		for _, m := range l.Machines {
			if m.ID == id {
				return m, nil
			}
		}
	}
	return nil, fmt.Errorf("plant: unknown machine %q", id)
}

// Machines returns all machines in deterministic order.
func (p *Plant) Machines() []*Machine {
	var out []*Machine
	for _, l := range p.Lines {
		out = append(out, l.Machines...)
	}
	return out
}

// PhaseStream concatenates all phase recordings of a machine into one
// aligned multi-series — the level-1 view over the machine's whole
// history.
func (m *Machine) PhaseStream() (*timeseries.MultiSeries, error) {
	if len(m.Jobs) == 0 {
		return nil, fmt.Errorf("plant: machine %s has no jobs", m.ID)
	}
	concat := make(map[string][]float64, len(SensorNames))
	for _, job := range m.Jobs {
		for _, ph := range job.Phases {
			for _, dim := range ph.Sensors.Dims {
				concat[dim.Name] = append(concat[dim.Name], dim.Values...)
			}
		}
	}
	first := m.Jobs[0].Phases[0].Sensors
	dims := make([]*timeseries.Series, 0, len(SensorNames))
	for _, name := range SensorNames {
		dims = append(dims, timeseries.New(name, first.Start, first.Step, concat[name]))
	}
	return timeseries.NewMulti(dims...)
}

// JobVectors returns, per job of the machine, the concatenated
// setup+CAQ vector — the level-2 high-dimensional data.
func (m *Machine) JobVectors() [][]float64 {
	out := make([][]float64, len(m.Jobs))
	for i, j := range m.Jobs {
		v := make([]float64, 0, len(j.Setup)+len(j.CAQ))
		v = append(v, j.Setup...)
		v = append(v, j.CAQ...)
		out[i] = v
	}
	return out
}

// LineSeries returns the level-4 view of a machine: the per-job mean
// chamber temperature over job sequence — "if jobs over time are
// investigated, the high-dimensional setup provides also a time
// series" (§2).
func (m *Machine) LineSeries() (*timeseries.Series, error) {
	if len(m.Jobs) == 0 {
		return nil, fmt.Errorf("plant: machine %s has no jobs", m.ID)
	}
	vals := make([]float64, len(m.Jobs))
	for i, j := range m.Jobs {
		var o stats.Online
		for _, ph := range j.Phases {
			if d := ph.Sensors.Dim("temp-a"); d != nil {
				o.AddAll(d.Values)
			}
		}
		vals[i] = o.Mean()
	}
	jobDur := m.Jobs[0].Phases[0].Sensors.Step *
		time.Duration(len(m.Jobs[0].Phases)*m.Jobs[0].Phases[0].Sensors.Len())
	return timeseries.New(m.ID+"/job-mean-temp", m.Jobs[0].Start, jobDur, vals), nil
}

// QualitySeries returns the per-job CAQ dimensional-error series for a
// machine — the quality trend the line level watches.
func (m *Machine) QualitySeries() (*timeseries.Series, error) {
	if len(m.Jobs) == 0 {
		return nil, fmt.Errorf("plant: machine %s has no jobs", m.ID)
	}
	vals := make([]float64, len(m.Jobs))
	for i, j := range m.Jobs {
		vals[i] = j.CAQ[0]
	}
	jobDur := m.Jobs[0].Phases[0].Sensors.Step *
		time.Duration(len(m.Jobs[0].Phases)*m.Jobs[0].Phases[0].Sensors.Len())
	return timeseries.New(m.ID+"/dim-error", m.Jobs[0].Start, jobDur, vals), nil
}

// ProductionSeries returns the level-5 view: one line series per
// machine across the whole plant, aligned by job sequence.
func (p *Plant) ProductionSeries() ([]*timeseries.Series, error) {
	var out []*timeseries.Series
	for _, m := range p.Machines() {
		s, err := m.LineSeries()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("plant: no machines")
	}
	return out, nil
}

// EventsFor returns the ground-truth events of one machine.
func (p *Plant) EventsFor(machineID string) []Event {
	var out []Event
	for _, e := range p.Events {
		if e.Machine == machineID {
			out = append(out, e)
		}
	}
	return out
}

// PhaseOffset returns the sample offset of (jobIdx, phaseIdx) within
// the machine's concatenated phase stream.
func (m *Machine) PhaseOffset(jobIdx, phaseIdx int) (int, error) {
	if jobIdx < 0 || jobIdx >= len(m.Jobs) {
		return 0, fmt.Errorf("plant: job index %d out of range", jobIdx)
	}
	job := m.Jobs[jobIdx]
	if phaseIdx < 0 || phaseIdx >= len(job.Phases) {
		return 0, fmt.Errorf("plant: phase index %d out of range", phaseIdx)
	}
	perPhase := job.Phases[0].Sensors.Len()
	perJob := perPhase * len(job.Phases)
	return jobIdx*perJob + phaseIdx*perPhase, nil
}

// JobIndexOfSample maps a sample offset in the concatenated phase
// stream back to the job sequence index — the level-1 → level-2/4
// position mapping of the hierarchy.
func (m *Machine) JobIndexOfSample(sample int) (int, error) {
	if len(m.Jobs) == 0 {
		return 0, fmt.Errorf("plant: machine %s has no jobs", m.ID)
	}
	perPhase := m.Jobs[0].Phases[0].Sensors.Len()
	perJob := perPhase * len(m.Jobs[0].Phases)
	if sample < 0 {
		return 0, fmt.Errorf("plant: negative sample offset %d", sample)
	}
	idx := sample / perJob
	if idx >= len(m.Jobs) {
		idx = len(m.Jobs) - 1
	}
	return idx, nil
}
