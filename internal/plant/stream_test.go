package plant

import (
	"context"
	"testing"

	"repro/internal/stream"
)

func TestStreamSourceEmitsAllSamples(t *testing.T) {
	p := simulateT(t, Config{Seed: 1, JobsPerMachine: 2})
	m := p.Machines()[0]
	src, err := NewStreamSource(p, m.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 5 * 120 * len(SensorNames)
	if src.Len() != want {
		t.Fatalf("Len=%d want %d", src.Len(), want)
	}
	got := stream.Collect(stream.Pump(context.Background(), src, 128))
	if len(got) != want {
		t.Fatalf("collected %d samples, want %d", len(got), want)
	}
	// Sensors interleave at each timestamp.
	seen := map[string]bool{}
	for _, s := range got[:len(SensorNames)] {
		seen[s.Sensor] = true
	}
	if len(seen) != len(SensorNames) {
		t.Fatalf("first tick sensors=%v", seen)
	}
	// Time is monotone non-decreasing.
	for i := 1; i < len(got); i++ {
		if got[i].At.Before(got[i-1].At) {
			t.Fatal("timestamps not monotone")
		}
	}
}

func TestStreamSourceUnknownMachine(t *testing.T) {
	p := simulateT(t, Config{Seed: 1})
	if _, err := NewStreamSource(p, "nope"); err == nil {
		t.Fatal("want error")
	}
}

func TestStreamSourceRespectsCancel(t *testing.T) {
	p := simulateT(t, Config{Seed: 1, JobsPerMachine: 1})
	src, err := NewStreamSource(p, p.Machines()[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := src.Next(ctx); ok {
		t.Fatal("cancelled source should stop")
	}
}
