// Package analysistest runs an analyzer over testdata packages and
// checks its diagnostics against `// want "regexp"` comments — the
// same contract as golang.org/x/tools/go/analysis/analysistest, on
// the homegrown framework.
//
// A want comment sits on the line the diagnostic is expected on and
// names one or more quoted regexps:
//
//	time.Sleep(d) // want `while holding mutex "s\.mu"`
//
// Every emitted diagnostic must match a want on its line and every
// want must be matched, or the test fails. Diagnostics silenced by
// //hod:allow are NOT matched against wants — they come back in the
// Result's Suppressed list for the caller to assert on, mirroring how
// the real runner reports them.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads root/src/<pkg> for each named package, applies the
// analyzer, and matches the emitted diagnostics against the want
// comments in every loaded file. The full result is returned so tests
// can additionally assert on suppressions and suggested fixes.
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgs ...string) analysis.Result {
	t.Helper()
	prog, err := analysis.LoadTestdata(root, pkgs)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	res := analysis.Run(prog, []*analysis.Analyzer{a})

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := map[string]map[int][]*want{} // file -> line -> pending wants
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					patterns, err := parseWants(strings.TrimPrefix(text, "want "))
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					for _, p := range patterns {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
						}
						m := wants[pos.Filename]
						if m == nil {
							m = map[int][]*want{}
							wants[pos.Filename] = m
						}
						m[pos.Line] = append(m[pos.Line], &want{re: re, raw: p})
					}
				}
			}
		}
	}

	for _, d := range res.Diagnostics {
		matched := false
		for _, w := range wants[d.Position.Filename][d.Position.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Position, d.Analyzer, d.Message)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", file, line, w.raw)
				}
			}
		}
	}
	return res
}

// parseWants splits `"a" "b"` (or backquoted forms) into patterns.
func parseWants(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		var end int
		switch s[0] {
		case '"':
			end = 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
		case '`':
			end = strings.IndexByte(s[1:], '`')
			if end >= 0 {
				end++
			}
		default:
			return nil, fmt.Errorf("want: expected quoted pattern, got %q", s)
		}
		if end < 1 || end >= len(s) {
			return nil, fmt.Errorf("want: unterminated pattern %q", s)
		}
		p, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("want: %q: %v", s[:end+1], err)
		}
		out = append(out, p)
		s = s[end+1:]
	}
}
