package analysis

import (
	"go/ast"
	"go/types"
)

// A FuncNode is one declared module function in the static call
// graph, with its statically-resolved call sites.
type FuncNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	// Calls are the call sites in the function body (including bodies
	// of function literals declared inside it) whose callee resolves
	// statically — direct calls and concrete method calls. Calls
	// through interfaces or stored function values have no edge; the
	// analyzers that need soundness there are backed by runtime gates.
	Calls []CallSite
}

// A CallSite pairs a call expression with its resolved callee.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
	// InGo marks a call that is (or is inside the body spawned by) a
	// go statement: it runs concurrently, so it does not block the
	// enclosing function.
	InGo bool
	// InFuncLit marks a call inside a function literal: it runs when
	// the literal runs, which may be never, later, or elsewhere.
	InFuncLit bool
}

// A CallGraph maps every declared module function to its node.
type CallGraph struct {
	Nodes map[*types.Func]*FuncNode
}

// CallGraph builds (once) the program-wide static call graph.
func (pr *Program) CallGraph() *CallGraph {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.graph != nil {
		return pr.graph
	}
	g := &CallGraph{Nodes: map[*types.Func]*FuncNode{}}
	for _, pkg := range pr.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: obj, Pkg: pkg, Decl: fd}
				var walk func(n ast.Node, inGo, inLit bool)
				walk = func(n ast.Node, inGo, inLit bool) {
					switch n := n.(type) {
					case *ast.GoStmt:
						walk(n.Call, true, inLit)
						return
					case *ast.FuncLit:
						walk(n.Body, inGo, true)
						return
					case *ast.CallExpr:
						if callee := pkg.CalleeOf(n); callee != nil {
							node.Calls = append(node.Calls, CallSite{Call: n, Callee: callee, InGo: inGo, InFuncLit: inLit})
						}
					}
					ast.Inspect(n, func(c ast.Node) bool {
						if c == n || c == nil {
							return c == n
						}
						walk(c, inGo, inLit)
						return false
					})
				}
				walk(fd.Body, false, false)
				g.Nodes[obj] = node
			}
		}
	}
	pr.graph = g
	return g
}

// CalleeOf statically resolves a call expression to the function it
// invokes, or nil for dynamic calls, builtins, and conversions.
func (pkg *Package) CalleeOf(call *ast.CallExpr) *types.Func {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return origin(f)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return origin(f)
			}
			return nil
		}
		// Package-qualified call: pkg.F(...).
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return origin(f)
		}
	case *ast.IndexExpr: // explicit generic instantiation F[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			if f, ok := pkg.Info.Uses[id].(*types.Func); ok {
				return origin(f)
			}
		}
	}
	return nil
}

// Reachable computes the set of module functions statically reachable
// from the roots (inclusive).
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	var stack []*types.Func
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := g.Nodes[fn]
		if node == nil {
			continue // stdlib or bodiless: edges end here
		}
		for _, cs := range node.Calls {
			if !seen[cs.Callee] {
				seen[cs.Callee] = true
				stack = append(stack, cs.Callee)
			}
		}
	}
	return seen
}
