package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// An AllowTag is one parsed //hod:allow(analyzer,...) reason comment.
type AllowTag struct {
	Analyzers []string
	Reason    string
	Pos       token.Pos
}

func (t *AllowTag) covers(analyzer string) bool {
	for _, a := range t.Analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// annotations indexes one package's //hod:* comments.
type annotations struct {
	// line-level allows: file name -> line -> tags (a tag on line N
	// covers diagnostics on N and N+1, i.e. the annotated line itself
	// and the trailing-comment form).
	byLine map[string]map[int][]*AllowTag
	// function-level allows from doc comments, keyed by declaration.
	byFunc []funcAllow
	// hotpath root declarations.
	hotpath []*ast.FuncDecl
	// malformed annotations (missing reason, unknown shape) — these
	// are diagnostics in their own right.
	malformed []Diagnostic
}

// Hotpath returns the declarations whose doc comment carries the
// //hod:hotpath root marker.
func (an *annotations) Hotpath() []*ast.FuncDecl { return an.hotpath }

type funcAllow struct {
	decl *ast.FuncDecl
	tags []*AllowTag
}

const (
	allowPrefix   = "hod:allow("
	hotpathMarker = "hod:hotpath"
)

// Annotations parses and caches the package's //hod:* comments.
func (pkg *Package) Annotations(fset *token.FileSet) *annotations {
	if pkg.annots != nil {
		return pkg.annots
	}
	an := &annotations{byLine: map[string]map[int][]*AllowTag{}}
	for _, f := range pkg.Files {
		fname := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "hod:") {
					continue
				}
				if text == hotpathMarker || strings.HasPrefix(text, hotpathMarker+" ") {
					continue // handled via doc comments below
				}
				tag, bad := parseAllow(text, c.Pos())
				if bad != "" {
					an.malformed = append(an.malformed, Diagnostic{
						Pos:      c.Pos(),
						Position: fset.Position(c.Pos()),
						Analyzer: "hodlint",
						Message:  bad,
					})
					continue
				}
				line := fset.Position(c.Pos()).Line
				m := an.byLine[fname]
				if m == nil {
					m = map[int][]*AllowTag{}
					an.byLine[fname] = m
				}
				m[line] = append(m[line], tag)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var tags []*AllowTag
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text == hotpathMarker || strings.HasPrefix(text, hotpathMarker+" ") {
					an.hotpath = append(an.hotpath, fd)
				}
				if strings.HasPrefix(text, allowPrefix) {
					if tag, bad := parseAllow(text, c.Pos()); bad == "" {
						tags = append(tags, tag)
					}
				}
			}
			if len(tags) > 0 {
				an.byFunc = append(an.byFunc, funcAllow{decl: fd, tags: tags})
			}
		}
	}
	pkg.annots = an
	return an
}

// parseAllow parses "hod:allow(a,b) reason"; a non-empty second
// return describes why the annotation is malformed.
func parseAllow(text string, pos token.Pos) (*AllowTag, string) {
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, "unrecognized //hod: annotation (want //hod:hotpath or //hod:allow(analyzer) reason)"
	}
	rest := text[len(allowPrefix):]
	close := strings.IndexByte(rest, ')')
	if close < 0 {
		return nil, "malformed //hod:allow: missing ')'"
	}
	var names []string
	for _, n := range strings.Split(rest[:close], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, "malformed //hod:allow: no analyzer named"
	}
	reason := strings.TrimSpace(rest[close+1:])
	if reason == "" {
		return nil, "//hod:allow(" + rest[:close] + ") needs a reason: a suppression without a why is a landmine"
	}
	return &AllowTag{Analyzers: names, Reason: reason, Pos: pos}, ""
}

// allowFor reports the tag suppressing a diagnostic of the named
// analyzer at pos, if any: same line, the line above, or the
// enclosing function's doc comment.
func (pkg *Package) allowFor(fset *token.FileSet, analyzer string, pos token.Pos) *AllowTag {
	an := pkg.Annotations(fset)
	p := fset.Position(pos)
	if m := an.byLine[p.Filename]; m != nil {
		for _, line := range [2]int{p.Line, p.Line - 1} {
			for _, tag := range m[line] {
				if tag.covers(analyzer) {
					return tag
				}
			}
		}
	}
	for _, fa := range an.byFunc {
		if fa.decl.Pos() <= pos && pos <= fa.decl.End() {
			for _, tag := range fa.tags {
				if tag.covers(analyzer) {
					return tag
				}
			}
		}
	}
	return nil
}
