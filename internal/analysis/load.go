package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// progImporter resolves module packages from the program being built
// and everything else (the stdlib) from source via the compiler-
// independent importer, so loading needs neither export data nor
// network access.
type progImporter struct {
	prog *Program
	std  types.ImporterFrom
}

func (im *progImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *progImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := im.prog.byPath[path]; p != nil {
		return p.Types, nil
	}
	return im.std.ImportFrom(path, dir, mode)
}

// listedPackage is the slice of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
}

// LoadModule runs `go list` for the given patterns (default ./...)
// under dir, then parses and typechecks every listed package in
// dependency order. Test files are excluded on purpose: the invariants
// hodlint proves are production-path invariants, and tests earn their
// fmt.Sprintf calls.
func LoadModule(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v: %s", err, errb.String())
	}
	var metas []*listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		metas = append(metas, lp)
	}
	byPath := make(map[string]*listedPackage, len(metas))
	for _, m := range metas {
		byPath[m.ImportPath] = m
	}
	// Topological order over the module-internal import edges.
	var order []*listedPackage
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(m *listedPackage) error
	visit = func(m *listedPackage) error {
		switch state[m.ImportPath] {
		case 1:
			return fmt.Errorf("import cycle through %s", m.ImportPath)
		case 2:
			return nil
		}
		state[m.ImportPath] = 1
		for _, imp := range m.Imports {
			if dep := byPath[imp]; dep != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[m.ImportPath] = 2
		order = append(order, m)
		return nil
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ImportPath < metas[j].ImportPath })
	for _, m := range metas {
		if err := visit(m); err != nil {
			return nil, err
		}
	}

	prog := &Program{Fset: token.NewFileSet(), byPath: map[string]*Package{}}
	imp := &progImporter{prog: prog, std: importer.ForCompiler(prog.Fset, "source", nil).(types.ImporterFrom)}
	for _, m := range order {
		var files []string
		for _, f := range m.GoFiles {
			files = append(files, filepath.Join(m.Dir, f))
		}
		pkg, err := typecheck(prog, imp, m.ImportPath, m.Dir, files)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[m.ImportPath] = pkg
	}
	return prog, nil
}

// LoadTestdata loads analysistest-style packages rooted at
// root/src/<path>, resolving imports between them recursively and the
// stdlib from source. Used by the analyzer test harness.
func LoadTestdata(root string, pkgs []string) (*Program, error) {
	prog := &Program{Fset: token.NewFileSet(), byPath: map[string]*Package{}}
	imp := &progImporter{prog: prog, std: importer.ForCompiler(prog.Fset, "source", nil).(types.ImporterFrom)}
	loading := map[string]bool{}
	var load func(path string) error
	load = func(path string) error {
		if prog.byPath[path] != nil {
			return nil
		}
		if loading[path] {
			return fmt.Errorf("import cycle through %s", path)
		}
		loading[path] = true
		dir := filepath.Join(root, "src", filepath.FromSlash(path))
		ents, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("testdata package %s: %v", path, err)
		}
		var files []string
		for _, e := range ents {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			return fmt.Errorf("testdata package %s: no .go files", path)
		}
		// Resolve sibling testdata imports first so typechecking
		// finds them in prog.byPath.
		for _, fname := range files {
			src, err := os.ReadFile(fname)
			if err != nil {
				return err
			}
			f, err := parser.ParseFile(token.NewFileSet(), fname, src, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, is := range f.Imports {
				p, _ := strconv.Unquote(is.Path.Value)
				if st, err := os.Stat(filepath.Join(root, "src", filepath.FromSlash(p))); err == nil && st.IsDir() {
					if err := load(p); err != nil {
						return err
					}
				}
			}
		}
		pkg, err := typecheck(prog, imp, path, dir, files)
		if err != nil {
			return err
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[path] = pkg
		return nil
	}
	for _, p := range pkgs {
		if err := load(p); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// typecheck parses and checks one package's files into the program.
func typecheck(prog *Program, imp types.Importer, path, dir string, filenames []string) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir, Src: map[string][]byte{}}
	for _, fname := range filenames {
		src, err := os.ReadFile(fname)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(prog.Fset, fname, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", fname, err)
		}
		pkg.Src[fname] = src
		pkg.Files = append(pkg.Files, f)
	}
	conf := types.Config{Importer: imp}
	info := newInfo()
	tpkg, err := conf.Check(path, prog.Fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}
