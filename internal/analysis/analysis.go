// Package analysis is the repo's static-analysis framework: a small,
// stdlib-only re-creation of the golang.org/x/tools/go/analysis shape
// (Analyzer / Pass / Diagnostic / suggested fixes) plus a loader that
// typechecks the whole module from source and a static call graph.
//
// It exists because the repo's load-bearing invariants — zero
// allocations on the admit path, byte-determinism of every serialized
// surface, no blocking work under shard/plant locks, typed error
// envelopes on every /v1/* boundary — are otherwise enforced only by
// runtime tests, which catch a violation on the inputs they happen to
// run. The analyzers in the sibling packages (hotpath, lockorder,
// determinism, apierr) prove them at every call site instead, and
// cmd/hodlint drives them as a multichecker.
//
// Two source-level annotations tie the tree to the analyzers:
//
//	//hod:hotpath
//	    in a function's doc comment marks it as an allocation-free
//	    root; the hotpath analyzer checks everything statically
//	    reachable from it.
//
//	//hod:allow(analyzer[,analyzer]) reason
//	    on the offending line (or the line above it, or in the
//	    enclosing function's doc comment) suppresses a diagnostic.
//	    The reason is mandatory: an allow without one is itself a
//	    finding. Suppressions are counted and surfaced, never silent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// An Analyzer describes one named analysis pass. Run is invoked once
// per loaded package; whole-program analyzers reach the other
// packages (and the shared call graph) through Pass.Prog.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed diagnostic (used when attaching a
// suggested fix).
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	d.Position = p.Prog.Fset.Position(d.Pos)
	*p.diags = append(*p.diags, d)
}

// A Diagnostic is one finding, pinned to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
	// Fix, when non-nil, is a mechanical rewrite that resolves the
	// finding (hodlint -fix applies it, -json emits it).
	Fix *SuggestedFix
	// Allow is set on suppressed diagnostics: the annotation that
	// silenced this finding.
	Allow *AllowTag
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// A SuggestedFix is a set of text edits that resolves a diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A TextEdit replaces the source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// A Package is one typechecked module package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	// Src maps a file name (as recorded in the FileSet) to its raw
	// bytes, for suggested-fix extraction and application.
	Src   map[string][]byte
	Types *types.Package
	Info  *types.Info

	annots *annotations // lazily built annotation index
}

// A Program is the whole loaded module: every package typechecked
// against shared object identities, so *types.Func values compare
// equal across package boundaries.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	byPath map[string]*Package

	mu    sync.Mutex
	graph *CallGraph
	cache map[string]any
}

// Package returns the loaded package with the given import path, or
// nil if the path is outside the loaded set.
func (pr *Program) Package(path string) *Package { return pr.byPath[path] }

// Cached memoizes a whole-program computation (reachability sets,
// may-block fixpoints) under a string key, so per-package passes
// share one result.
func (pr *Program) Cached(key string, build func() any) any {
	pr.mu.Lock()
	if pr.cache == nil {
		pr.cache = map[string]any{}
	}
	v, ok := pr.cache[key]
	pr.mu.Unlock()
	if ok {
		return v
	}
	// Built outside the lock: build() may itself need the program
	// (e.g. the call graph). Passes run sequentially, so the worst
	// case of a concurrent driver is a duplicated computation.
	v = build()
	pr.mu.Lock()
	pr.cache[key] = v
	pr.mu.Unlock()
	return v
}

// FuncFor returns the declaration node of fn if it is a module
// function, or nil for stdlib / interface / synthetic functions.
func (pr *Program) FuncFor(fn *types.Func) *FuncNode { return pr.CallGraph().Nodes[origin(fn)] }

// origin maps an instantiated generic function back to its generic
// declaration, the identity the call graph is keyed by.
func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}
