package hotpath_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	a := hotpath.New(hotpath.Config{InternPkgs: []string{"hotpath/intern"}})
	res := analysistest.Run(t, "testdata", a, "hotpath/a")
	if len(res.Suppressed) != 1 {
		t.Fatalf("suppressed = %d, want 1 (the //hod:allow in Allowed)", len(res.Suppressed))
	}
	sup := res.Suppressed[0]
	if sup.Allow == nil || !strings.Contains(sup.Allow.Reason, "cold error path") {
		t.Errorf("suppression lost its reason: %+v", sup.Allow)
	}
}
