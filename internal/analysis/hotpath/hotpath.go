// Package hotpath proves the zero-allocation ingest invariant at
// compile time: every function statically reachable from a
// //hod:hotpath root (the admit path, cube Observe, WAL append, frame
// decode) must not call fmt, concatenate strings, convert
// []byte<->string outside the intern tables, or box values into
// interface parameters. PR 9's AllocsPerRun gates catch a regression
// on the inputs they run; this analyzer catches it on every call site.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Config scopes the analyzer. InternPkgs are the packages whose job
// IS []byte<->string conversion — the interning seam the invariant
// routes through.
type Config struct {
	InternPkgs []string
}

// DefaultConfig is the repo's production wiring.
var DefaultConfig = Config{
	InternPkgs: []string{"repro/internal/intern"},
}

// New builds the analyzer with an explicit config (tests use this).
func New(cfg Config) *analysis.Analyzer {
	a := &analyzer{cfg: cfg}
	return &analysis.Analyzer{
		Name: "hotpath",
		Doc:  "forbid allocation idioms in functions reachable from //hod:hotpath roots",
		Run:  a.run,
	}
}

// Analyzer is the production-configured instance.
var Analyzer = New(DefaultConfig)

type analyzer struct {
	cfg Config
}

// reachableSet computes, once per program, the set of module
// functions reachable from the //hod:hotpath roots.
func (a *analyzer) reachableSet(prog *analysis.Program) map[*types.Func]bool {
	return prog.Cached("hotpath.reachable", func() any {
		var roots []*types.Func
		for _, pkg := range prog.Packages {
			for _, fd := range pkg.Annotations(prog.Fset).Hotpath() {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, fn)
				}
			}
		}
		return prog.CallGraph().Reachable(roots)
	}).(map[*types.Func]bool)
}

func (a *analyzer) run(pass *analysis.Pass) {
	reachable := a.reachableSet(pass.Prog)
	if len(reachable) == 0 {
		return
	}
	for _, node := range pass.Prog.CallGraph().Nodes {
		if node.Pkg != pass.Pkg || !reachable[node.Fn] {
			continue
		}
		a.checkFunc(pass, node)
	}
}

func (a *analyzer) isInternPkg(path string) bool {
	for _, p := range a.cfg.InternPkgs {
		if p == path {
			return true
		}
	}
	return false
}

func (a *analyzer) checkFunc(pass *analysis.Pass, node *analysis.FuncNode) {
	pkg := pass.Pkg
	name := node.Fn.Name()
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pkg, n) {
				pass.Reportf(n.OpPos, "%s is on a //hod:hotpath path but concatenates strings (allocates); build into a pooled []byte instead", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pkg, n.Lhs[0]) {
				pass.Reportf(n.TokPos, "%s is on a //hod:hotpath path but concatenates strings (allocates); build into a pooled []byte instead", name)
			}
		case *ast.CallExpr:
			a.checkCall(pass, node, n)
		}
		return true
	})
}

func (a *analyzer) checkCall(pass *analysis.Pass, node *analysis.FuncNode, call *ast.CallExpr) {
	pkg := pass.Pkg
	name := node.Fn.Name()

	// Conversions: string([]byte) / []byte(string) allocate and must
	// route through the intern tables.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if a.isInternPkg(pkg.Path) {
			return
		}
		dst := tv.Type.Underlying()
		src := pkg.Info.Types[call.Args[0]].Type
		if src != nil {
			switch {
			case isString(dst) && isByteSlice(src.Underlying()):
				pass.Reportf(call.Pos(), "%s is on a //hod:hotpath path but converts []byte to string (allocates); identifiers must flow through the intern tables as int32 ids", name)
			case isByteSlice(dst) && isString(src.Underlying()):
				pass.Reportf(call.Pos(), "%s is on a //hod:hotpath path but converts string to []byte (allocates); identifiers must flow through the intern tables as int32 ids", name)
			}
		}
		return
	}

	callee := pkg.CalleeOf(call)
	if callee == nil {
		return
	}
	if cp := callee.Pkg(); cp != nil && cp.Path() == "fmt" {
		pass.Reportf(call.Pos(), "%s is on a //hod:hotpath path but calls fmt.%s (allocates on every call)", name, callee.Name())
		return
	}

	// Boxing: a non-pointer-shaped concrete argument passed to an
	// interface parameter allocates. Pointer-shaped values (pointers,
	// maps, chans, funcs) fit in an interface word and do not.
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			param = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no boxing
			}
			param = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if _, isTP := param.(*types.TypeParam); isTP {
			continue
		}
		if !types.IsInterface(param.Underlying()) {
			continue
		}
		at := pkg.Info.Types[arg].Type
		if at == nil || types.IsInterface(at.Underlying()) || isPointerShaped(at.Underlying()) {
			continue
		}
		pass.Reportf(arg.Pos(), "%s is on a //hod:hotpath path but boxes %s into an interface argument of %s (allocates)", name, types.TypeString(at, types.RelativeTo(pkg.Types)), callee.Name())
	}
}

func isStringExpr(pkg *analysis.Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil { // constants fold at compile time
		return false
	}
	return isString(tv.Type.Underlying())
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isPointerShaped(t types.Type) bool {
	switch t.(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return t.(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
