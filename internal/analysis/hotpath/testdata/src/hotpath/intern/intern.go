// Package intern stands in for the repo's intern tables: the one
// place []byte<->string conversion is sanctioned on a hot path.
package intern

// ID materializes the bytes; inside an InternPkg the conversion is
// legal by construction.
func ID(b []byte) string { return string(b) }
