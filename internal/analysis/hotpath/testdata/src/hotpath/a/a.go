package a

import (
	"fmt"

	"hotpath/intern"
)

// Hot is the admit fast path in miniature.
//
//hod:hotpath
func Hot(b []byte, s string) string {
	fmt.Println("x")           // want `Hot is on a //hod:hotpath path but calls fmt\.Println`
	_ = s + s                  // want `Hot is on a //hod:hotpath path but concatenates strings`
	_ = string(b)              // want `converts \[\]byte to string`
	_ = []byte(s)              // want `converts string to \[\]byte`
	sink(42)                   // want `boxes int into an interface argument of sink`
	sink(&b)                   // pointer-shaped: fits the interface word, no boxing
	_ = intern.ID(b)           // the sanctioned conversion seam
	const greeting = "a" + "b" // constant folding, not a runtime concat
	_ = greeting
	return helper(s)
}

// helper is reachable from Hot, so the invariant follows it here.
func helper(s string) string {
	var out string
	out += s // want `helper is on a //hod:hotpath path but concatenates strings`
	return out
}

// Cold is not reachable from any root: anything goes.
func Cold(b []byte) string {
	fmt.Println("cold")
	return string(b)
}

// Allowed exercises the escape hatch: the violation is suppressed and
// surfaces in the suppression count instead.
//
//hod:hotpath
func Allowed() {
	//hod:allow(hotpath) cold error path, exercised only in tests
	fmt.Println("allowed")
}

func sink(v interface{}) {}
