package a

import "math/rand" // want `surface package imports math/rand`

// Roll draws from the global, unseeded source.
func Roll() int { return rand.Int() }
