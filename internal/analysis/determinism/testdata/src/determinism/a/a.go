package a

import (
	"sort"
	"time"
)

// Surface leaks map order into its return value.
func Surface(m map[string]int) []string {
	var keys []string
	for k := range m { // want `Surface ranges over map m in nondeterministic order and appends to keys`
		keys = append(keys, k)
	}
	return keys
}

// Sorted is the canonical fix: append inside, sort after.
func Sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count folds order-insensitively: no finding.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Send leaks map order into a channel.
func Send(m map[string]int, ch chan string) {
	for k := range m { // want `Send ranges over map m in nondeterministic order and sends on a channel`
		ch <- k
	}
}

// Stamp reads the wall clock on a surface.
func Stamp() int64 {
	return time.Now().UnixNano() // want `Stamp calls time\.Now in a surface package`
}

type conn struct{}

func (conn) SetReadDeadline(t time.Time) error { return nil }

// Deadline shows the exempt seam: time.Now inside a deadline-setter
// argument is I/O plumbing, not surface data.
func Deadline(c conn) {
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
}

// Allowed exercises the escape hatch at function level.
//
//hod:allow(determinism) fan-out order across test fixtures is unobservable
func Allowed(m map[string]struct{}, ch chan string) {
	for k := range m {
		ch <- k
	}
}
