// Package determinism proves the byte-determinism invariant of the
// repo's serialized surfaces (reports, roll-ups, cubes, snapshots,
// WAL frames): inside the surface packages it forbids
//
//   - ranging over a map when the iteration order can leak into
//     ordered output — appending to an outer slice (unless that slice
//     is sorted afterwards in the same function), writing to an
//     encoder/writer, sending on a channel, or building a string;
//   - time.Now outside I/O-deadline plumbing — timestamps that reach
//     a surface must come through an injected clock seam;
//   - importing math/rand at all — randomness must come through an
//     injected, seeded source.
//
// Order-insensitive map loops (counting, aggregating into another
// map, min/max folds) are deliberately not flagged.
package determinism

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Config scopes the analyzer to the packages whose output is pinned
// byte-for-byte (golden files, oracle comparisons, WAL replay).
type Config struct {
	// SurfacePkgs are import-path prefixes; a package matches if it
	// equals a prefix or lives under it. The map-iteration-order rule
	// applies here.
	SurfacePkgs []string
	// ClockPkgs scopes the time.Now / math/rand rules: packages whose
	// *data* is byte-pinned, where a wall-clock read or random draw
	// breaks replay. Middleware logging, retry backoff, and test
	// harness timeouts live outside it on purpose — they are
	// operational wall-clock, not surface bytes.
	ClockPkgs []string
}

// DefaultConfig is the repo's production wiring: every package on the
// serve/persist path whose bytes are pinned by tests or the WAL
// contract.
var DefaultConfig = Config{
	SurfacePkgs: []string{
		"repro/internal/server",
		"repro/internal/gateway",
		"repro/internal/cluster",
		"repro/internal/olap",
		"repro/internal/core",
		"repro/internal/eval",
		"repro/internal/wal",
		"repro/internal/stream",
		"repro/internal/scenario",
		"repro/pkg/hod",
	},
	ClockPkgs: []string{
		"repro/internal/server",
		"repro/internal/olap",
		"repro/internal/core",
		"repro/internal/eval",
		"repro/internal/wal",
		"repro/internal/stream",
		"repro/pkg/hod/wire",
	},
}

// New builds the analyzer with an explicit config (tests use this).
func New(cfg Config) *analysis.Analyzer {
	a := &analyzer{cfg: cfg}
	return &analysis.Analyzer{
		Name: "determinism",
		Doc:  "forbid map-iteration order, time.Now and math/rand from leaking into serialized surfaces",
		Run:  a.run,
	}
}

// Analyzer is the production-configured instance.
var Analyzer = New(DefaultConfig)

type analyzer struct {
	cfg Config
}

func inScope(pkgs []string, path string) bool {
	for _, p := range pkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func (a *analyzer) run(pass *analysis.Pass) {
	if !inScope(a.cfg.SurfacePkgs, pass.Pkg.Path) && !inScope(a.cfg.ClockPkgs, pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if inScope(a.cfg.ClockPkgs, pass.Pkg.Path) {
			a.checkImports(pass, f)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(pass, fd)
		}
	}
}

func (a *analyzer) checkImports(pass *analysis.Pass, f *ast.File) {
	for _, is := range f.Imports {
		path := strings.Trim(is.Path.Value, `"`)
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(is.Pos(), "surface package imports %s; randomness on a serialized surface must come through an injected seeded source", path)
		}
	}
}

func (a *analyzer) checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	// Collect argument ranges of deadline setters: time.Now there is
	// I/O plumbing, not surface data.
	deadlineArgs := []ast.Node{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				for _, arg := range call.Args {
					deadlineArgs = append(deadlineArgs, arg)
				}
			}
		}
		return true
	})
	inDeadline := func(pos token.Pos) bool {
		for _, n := range deadlineArgs {
			if n.Pos() <= pos && pos <= n.End() {
				return true
			}
		}
		return false
	}

	clockScope := inScope(a.cfg.ClockPkgs, pkg.Path)
	surfaceScope := inScope(a.cfg.SurfacePkgs, pkg.Path)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !clockScope {
				return true
			}
			callee := pkg.CalleeOf(n)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if callee.Pkg().Path() == "time" && callee.Name() == "Now" && !inDeadline(n.Pos()) {
				pass.Reportf(n.Pos(), "%s calls time.Now in a surface package; route timestamps through the injected clock seam so replay stays byte-identical", fd.Name.Name)
			}
		case *ast.RangeStmt:
			if surfaceScope {
				a.checkMapRange(pass, fd, n)
			}
		}
		return true
	})
}

// checkMapRange flags a range over a map whose body leaks iteration
// order into ordered output.
func (a *analyzer) checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	pkg := pass.Pkg
	tv, ok := pkg.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var sink string
	var appendTargets []types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "sends on a channel"
			return false
		case *ast.AssignStmt:
			// x = append(x, ...) to a variable declared outside the
			// loop, or s += ... string building.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if tv, ok := pkg.Info.Types[n.Lhs[0]]; ok && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if obj := objOf(pkg, n.Lhs[0]); obj != nil && obj.Pos() < rng.Pos() {
							sink = "builds a string"
							return false
						}
					}
				}
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && pkg.CalleeOf(call) == nil {
					if i < len(n.Lhs) {
						if obj := objOf(pkg, n.Lhs[i]); obj != nil && obj.Pos() < rng.Pos() {
							appendTargets = append(appendTargets, obj)
						}
					}
				}
			}
		case *ast.CallExpr:
			callee := pkg.CalleeOf(n)
			if callee == nil || !orderSensitiveEmit(callee.Name()) {
				return true
			}
			// Operational logging is not a serialized surface.
			if p := callee.Pkg(); p != nil && p.Path() == "log" {
				return true
			}
			sink = "writes to " + callee.Name()
			return false
		}
		return true
	})
	if sink == "" && len(appendTargets) > 0 {
		// The canonical fix — collect keys, sort, iterate — appends
		// inside the loop and sorts after it. Honor it.
		for _, obj := range appendTargets {
			if !sortedAfter(pkg, fd, rng, obj) {
				sink = "appends to " + obj.Name() + " (never sorted afterwards)"
				break
			}
		}
	}
	if sink != "" {
		pass.Reportf(rng.Pos(), "%s ranges over map %s in nondeterministic order and %s, which feeds a serialized surface; iterate sorted keys instead", fd.Name.Name, exprText(rng.X), sink)
	}
}

// orderSensitiveEmit reports whether a callee name is an ordered
// emission: writers, encoders, printers.
func orderSensitiveEmit(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo", "Encode", "EncodeToken", "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
		return true
	}
	return false
}

// sortedAfter reports whether obj is passed to a sort call in the
// statements following the range loop inside the same function.
func sortedAfter(pkg *analysis.Package, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rng.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := pkg.CalleeOf(call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		switch name := callee.Name(); {
		case strings.Contains(name, "Sort"):
		case name == "Slice" || name == "SliceStable" || name == "Stable":
		case name == "Strings" || name == "Ints" || name == "Float64s":
		default:
			return true
		}
		for _, arg := range call.Args {
			if o := objOf(pkg, arg); o == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

func objOf(pkg *analysis.Package, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if o := pkg.Info.Uses[id]; o != nil {
			return o
		}
		return pkg.Info.Defs[id]
	}
	return nil
}

func exprText(e ast.Expr) string {
	var b strings.Builder
	_ = printer.Fprint(&b, token.NewFileSet(), e)
	return b.String()
}
