package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	a := determinism.New(determinism.Config{
		SurfacePkgs: []string{"determinism/a"},
		ClockPkgs:   []string{"determinism/a"},
	})
	res := analysistest.Run(t, "testdata", a, "determinism/a")
	if len(res.Suppressed) != 1 {
		t.Fatalf("suppressed = %d, want 1 (the //hod:allow on Allowed)", len(res.Suppressed))
	}
}
