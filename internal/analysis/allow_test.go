package analysis

import (
	"strings"
	"testing"
)

// TestMalformedAnnotations proves broken //hod: comments are findings
// in their own right — a suppression without a reason must not parse
// into silence.
func TestMalformedAnnotations(t *testing.T) {
	prog, err := LoadTestdata("testdata", []string{"allowbad/a"})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(prog, nil)
	wants := []string{
		"needs a reason",
		"missing ')'",
		"unrecognized //hod: annotation",
	}
	if len(res.Diagnostics) != len(wants) {
		t.Fatalf("diagnostics = %d, want %d: %+v", len(res.Diagnostics), len(wants), res.Diagnostics)
	}
	for i, w := range wants {
		if !strings.Contains(res.Diagnostics[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want it to mention %q", i, res.Diagnostics[i].Message, w)
		}
	}
}
