package analysis

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// A Result is one multichecker run: findings that stand, findings
// silenced by //hod:allow (counted, never dropped on the floor), and
// malformed annotations.
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  []Diagnostic
}

// Run applies every analyzer to every package of the program,
// filters the findings through the //hod:allow index, and returns
// both halves sorted by position.
func Run(prog *Program, analyzers []*Analyzer) Result {
	var res Result
	for _, pkg := range prog.Packages {
		res.Diagnostics = append(res.Diagnostics, pkg.Annotations(prog.Fset).malformed...)
	}
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			var diags []Diagnostic
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			a.Run(pass)
			for _, d := range diags {
				if tag := pkg.allowFor(prog.Fset, a.Name, d.Pos); tag != nil {
					d.Allow = tag
					res.Suppressed = append(res.Suppressed, d)
				} else {
					res.Diagnostics = append(res.Diagnostics, d)
				}
			}
		}
	}
	sortDiags(res.Diagnostics)
	sortDiags(res.Suppressed)
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i].Position, ds[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return ds[i].Message < ds[j].Message
	})
}

// SrcText returns the source bytes behind a [pos, end) range, used to
// splice original argument text into suggested fixes.
func (pr *Program) SrcText(pkg *Package, pos, end int, file string) string {
	src := pkg.Src[file]
	if src == nil || pos < 0 || end > len(src) || pos > end {
		return ""
	}
	return string(src[pos:end])
}

// ApplyFixes rewrites the files touched by the diagnostics' suggested
// fixes in place and returns the file names written. Edits are
// applied last-to-first per file so earlier offsets stay valid, and
// the result is gofmt-ed before writing.
func ApplyFixes(prog *Program, diags []Diagnostic) ([]string, error) {
	type edit struct {
		pos, end int
		text     string
	}
	perFile := map[string][]edit{}
	srcOf := map[string][]byte{}
	for _, pkg := range prog.Packages {
		for name, src := range pkg.Src {
			srcOf[name] = src
		}
	}
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			p := prog.Fset.Position(e.Pos)
			q := prog.Fset.Position(e.End)
			if p.Filename != q.Filename {
				return nil, fmt.Errorf("fix for %s spans files", d.Position)
			}
			perFile[p.Filename] = append(perFile[p.Filename], edit{p.Offset, q.Offset, e.NewText})
		}
	}
	var written []string
	for name, edits := range perFile {
		src, ok := srcOf[name]
		if !ok {
			return nil, fmt.Errorf("no source for %s", name)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].pos > edits[j].pos })
		out := append([]byte(nil), src...)
		last := len(out) + 1
		for _, e := range edits {
			if e.end > last {
				return nil, fmt.Errorf("overlapping fixes in %s", name)
			}
			out = append(out[:e.pos], append([]byte(e.text), out[e.end:]...)...)
			last = e.pos
		}
		if fmted, err := format.Source(out); err == nil {
			out = fmted
		}
		if err := os.WriteFile(name, out, 0o644); err != nil {
			return nil, err
		}
		written = append(written, name)
	}
	sort.Strings(written)
	return written, nil
}
