package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	a := lockorder.New(lockorder.Config{OpLocks: []string{"opMu"}})
	res := analysistest.Run(t, "testdata", a, "lockorder/a")
	if len(res.Suppressed) != 1 {
		t.Fatalf("suppressed = %d, want 1 (the //hod:allow in Allowed)", len(res.Suppressed))
	}
}
