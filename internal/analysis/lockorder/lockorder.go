// Package lockorder proves the no-blocking-under-locks invariant:
// while a sync.Mutex/RWMutex is held, a function must not perform a
// blocking channel operation, sleep, do file or network I/O, or call
// a module function that (transitively) does. Non-blocking tries —
// selects with a default clause — are explicitly fine: that is how
// the shard queues shed load under locks.
//
// Critical sections are tracked syntactically per statement list:
// mu.Lock() opens one, the matching mu.Unlock() closes it, and
// `defer mu.Unlock()` holds it to the end of the function. May-block
// facts for module functions come from a fixpoint over the static
// call graph seeded with direct evidence (blocking channel ops,
// time.Sleep, and an I/O denylist over os / net / net/http / bufio
// and friends).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Config tunes the analyzer. OpLocks names mutex fields that exist
// to serialize whole operations (snapshot writes, cluster moves,
// report fan-outs) rather than to guard in-memory state: blocking
// inside them is their purpose, so they are exempt. The invariant
// targets data locks, where a blocked holder stalls every reader.
type Config struct {
	OpLocks []string
}

// DefaultConfig is the repo's production wiring: opMu (cluster op
// serializers on router and server), reportMu (one report fan-out at
// a time), snapMu (one snapshot writer at a time), and wmu (the
// websocket write serializer — writing a frame IS the operation).
var DefaultConfig = Config{
	OpLocks: []string{"opMu", "reportMu", "snapMu", "wmu"},
}

// New builds the analyzer with an explicit config (tests use this).
func New(cfg Config) *analysis.Analyzer {
	a := &analyzerState{cfg: cfg}
	return &analysis.Analyzer{
		Name: "lockorder",
		Doc:  "forbid blocking channel ops, sleeps, and I/O while a mutex is held",
		Run:  a.run,
	}
}

// Analyzer is the production-configured instance.
var Analyzer = New(DefaultConfig)

type analyzerState struct {
	cfg Config
}

// isOpLock reports whether a held-lock key ("rt.opMu", "c.wmu")
// names an exempted operation serializer by its final field name.
func (a *analyzerState) isOpLock(key string) bool {
	name := key
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		name = key[i+1:]
	}
	for _, n := range a.cfg.OpLocks {
		if n == name {
			return true
		}
	}
	return false
}

// blockEvidence explains why a function may block, for diagnostics:
// either direct ("sleeps", "does file I/O via os.Create") or a short
// call chain ("calls wal.AppendBuffered, which does file I/O ...").
type blockEvidence struct {
	what string
}

func (a *analyzerState) run(pass *analysis.Pass) {
	facts := mayBlockFacts(pass.Prog)
	for _, node := range pass.Prog.CallGraph().Nodes {
		if node.Pkg != pass.Pkg {
			continue
		}
		w := &walker{pass: pass, a: a, facts: facts}
		w.stmts(node.Decl.Body.List, nil)
	}
}

// mayBlockFacts computes, once per program, which module functions
// may block, with a human-readable why.
func mayBlockFacts(prog *analysis.Program) map[*types.Func]*blockEvidence {
	return prog.Cached("lockorder.mayblock", func() any {
		g := prog.CallGraph()
		facts := map[*types.Func]*blockEvidence{}
		// Seed: direct evidence in each body.
		for fn, node := range g.Nodes {
			if what := directBlocking(node); what != "" {
				facts[fn] = &blockEvidence{what: what}
			}
		}
		// Propagate through module call edges to fixpoint.
		for changed := true; changed; {
			changed = false
			for fn, node := range g.Nodes {
				if facts[fn] != nil {
					continue
				}
				for _, cs := range node.Calls {
					if cs.InGo || cs.InFuncLit {
						// Runs concurrently or only when the literal
						// runs: neither blocks this function's caller.
						continue
					}
					ev := facts[cs.Callee]
					if ev == nil {
						continue
					}
					what := ev.what
					if !strings.HasPrefix(what, "calls ") {
						what = fmt.Sprintf("calls %s, which %s", calleeLabel(cs.Callee), what)
					} else {
						what = fmt.Sprintf("calls %s, which may block (%s)", calleeLabel(cs.Callee), what)
					}
					facts[fn] = &blockEvidence{what: what}
					changed = true
					break
				}
			}
		}
		return facts
	}).(map[*types.Func]*blockEvidence)
}

func calleeLabel(fn *types.Func) string {
	if p := fn.Pkg(); p != nil {
		return p.Name() + "." + fn.Name()
	}
	return fn.Name()
}

// directBlocking scans one body for first-hand blocking evidence.
func directBlocking(node *analysis.FuncNode) string {
	var what string
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			if selectHasDefault(n) {
				return false // non-blocking try; nothing under it blocks
			}
			what = "contains a blocking select"
			return false
		case *ast.SendStmt:
			what = "sends on a channel"
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				what = "receives from a channel"
				return false
			}
		case *ast.CallExpr:
			if callee := node.Pkg.CalleeOf(n); callee != nil {
				if w := stdlibBlocking(callee); w != "" {
					what = w
					return false
				}
			}
		case *ast.GoStmt:
			return false // the spawned body runs elsewhere
		case *ast.FuncLit:
			return false // runs when the literal runs, not here
		}
		return true
	}
	ast.Inspect(node.Decl.Body, visit)
	return what
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// ioFuncs is the stdlib denylist: functions and methods that touch
// the disk or the network. Keyed by package path; "*" entries are
// function names, "T.M" entries are method names on any receiver in
// that package (embedding-safe: the method's own package is checked).
var ioFuncs = map[string]map[string]string{
	"time": {
		"Sleep": "sleeps",
	},
	"os": {
		"Open": "does file I/O", "OpenFile": "does file I/O", "Create": "does file I/O",
		"CreateTemp": "does file I/O", "MkdirTemp": "does file I/O",
		"ReadFile": "does file I/O", "WriteFile": "does file I/O", "ReadDir": "does file I/O",
		"Remove": "does file I/O", "RemoveAll": "does file I/O", "Rename": "does file I/O",
		"Mkdir": "does file I/O", "MkdirAll": "does file I/O",
		"Stat": "does file I/O", "Lstat": "does file I/O", "Truncate": "does file I/O",
		"Chmod": "does file I/O", "Chtimes": "does file I/O", "Symlink": "does file I/O",
		// *os.File methods
		"Read": "does file I/O", "ReadAt": "does file I/O", "Write": "does file I/O",
		"WriteAt": "does file I/O", "WriteString": "does file I/O", "Seek": "does file I/O",
		"Sync": "fsyncs", "Close": "does file I/O", "Readdirnames": "does file I/O",
	},
	"net": {
		"Dial": "does network I/O", "DialTimeout": "does network I/O", "Listen": "does network I/O",
		"Accept": "does network I/O", "Read": "does network I/O", "Write": "does network I/O",
		"Close": "does network I/O",
	},
	"net/http": {
		"Get": "does network I/O", "Post": "does network I/O", "PostForm": "does network I/O",
		"Head": "does network I/O", "Do": "does network I/O",
	},
	"bufio": {
		"Flush": "flushes buffered I/O",
	},
	"sync": {
		"Wait": "waits on a sync primitive",
	},
	"io": {
		"Copy": "does I/O", "CopyN": "does I/O", "ReadAll": "does I/O", "ReadFull": "does I/O",
	},
}

func stdlibBlocking(fn *types.Func) string {
	p := fn.Pkg()
	if p == nil {
		return ""
	}
	if m := ioFuncs[p.Path()]; m != nil {
		return m[fn.Name()]
	}
	return ""
}

// heldLock is one currently-held mutex, identified by the source text
// of its receiver expression.
type heldLock struct {
	key  string
	read bool // RLock
}

type walker struct {
	pass  *analysis.Pass
	a     *analyzerState
	facts map[*types.Func]*blockEvidence
}

// stmts walks one statement list tracking the held-lock stack. Nested
// blocks inherit a copy: an unlock inside an if-branch releases only
// on that path.
func (w *walker) stmts(list []ast.Stmt, held []heldLock) {
	held = append([]heldLock(nil), held...)
	for _, stmt := range list {
		if key, op, read := w.lockOp(stmt); key != "" {
			if w.a.isOpLock(key) {
				continue // exempted operation serializer
			}
			switch op {
			case "lock":
				held = append(held, heldLock{key: key, read: read})
			case "unlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].key == key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case "deferunlock":
				// Held for the remainder of this list. If it is not
				// currently on the stack (Lock came earlier via a
				// helper), conservatively add it.
				found := false
				for _, h := range held {
					if h.key == key {
						found = true
					}
				}
				if !found {
					held = append(held, heldLock{key: key, read: read})
				}
			}
			continue
		}
		// Compound statements: check their header parts (init/cond),
		// then recurse into bodies with lock-op tracking; everything
		// else is checked whole.
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			w.stmts(s.List, held)
		case *ast.IfStmt:
			w.checkHeld(held, s.Init, s.Cond)
			w.stmts(s.Body.List, held)
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					w.stmts(e.List, held)
				case *ast.IfStmt:
					w.stmts([]ast.Stmt{e}, held)
				}
			}
		case *ast.ForStmt:
			w.checkHeld(held, s.Init, s.Cond, s.Post)
			w.stmts(s.Body.List, held)
		case *ast.RangeStmt:
			w.checkHeld(held, s.X)
			w.stmts(s.Body.List, held)
		case *ast.SwitchStmt:
			w.checkHeld(held, s.Init, s.Tag)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.stmts(cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			w.checkHeld(held, s.Init)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.stmts(cc.Body, held)
				}
			}
		default:
			w.checkHeld(held, stmt)
		}
	}
}

// checkHeld checks each non-nil node if any lock is held.
func (w *walker) checkHeld(held []heldLock, nodes ...ast.Node) {
	if len(held) == 0 {
		return
	}
	for _, n := range nodes {
		switch n := n.(type) {
		case nil:
		case ast.Stmt:
			w.check(n, held)
		case ast.Expr:
			w.check(n, held)
		}
	}
}

// lockOp classifies a statement as a lock/unlock/defer-unlock on a
// sync mutex, returning the receiver key.
func (w *walker) lockOp(stmt ast.Stmt) (key, op string, read bool) {
	var call *ast.CallExpr
	deferred := false
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
		deferred = true
	}
	if call == nil {
		return "", "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn := w.pass.Pkg.CalleeOf(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock":
		if !deferred {
			return exprKey(sel.X), "lock", false
		}
	case "RLock":
		if !deferred {
			return exprKey(sel.X), "lock", true
		}
	case "Unlock":
		if deferred {
			return exprKey(sel.X), "deferunlock", false
		}
		return exprKey(sel.X), "unlock", false
	case "RUnlock":
		if deferred {
			return exprKey(sel.X), "deferunlock", true
		}
		return exprKey(sel.X), "unlock", true
	}
	return "", "", false
}

func exprKey(e ast.Expr) string {
	var b strings.Builder
	_ = printer.Fprint(&b, token.NewFileSet(), e)
	return b.String()
}

// check scans one statement or expression executed with locks held.
func (w *walker) check(node ast.Node, held []heldLock) {
	lock := held[len(held)-1]
	mode := "mutex"
	if lock.read {
		mode = "read lock"
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later, not under this lock (immediate calls are rare enough to accept the gap)
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			return false // handled by stmts() recursion with lock-op tracking
		case *ast.SelectStmt:
			if selectHasDefault(n) {
				return false // non-blocking try: the sanctioned pattern
			}
			w.pass.Reportf(n.Pos(), "blocking select while holding %s %q; use a select with default or move it outside the critical section", mode, lock.key)
			return false
		case *ast.SendStmt:
			w.pass.Reportf(n.Pos(), "channel send while holding %s %q; use a non-blocking select or move it outside the critical section", mode, lock.key)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.pass.Reportf(n.Pos(), "channel receive while holding %s %q; move it outside the critical section", mode, lock.key)
				return false
			}
		case *ast.CallExpr:
			callee := w.pass.Pkg.CalleeOf(n)
			if callee == nil {
				return true
			}
			if what := stdlibBlocking(callee); what != "" {
				w.pass.Reportf(n.Pos(), "%s %s while holding %s %q; move it outside the critical section", calleeLabel(callee), what, mode, lock.key)
				return true
			}
			if ev := w.facts[callee]; ev != nil {
				w.pass.Reportf(n.Pos(), "call to %s while holding %s %q may block: it %s", calleeLabel(callee), mode, lock.key, ev.what)
			}
		}
		return true
	}
	ast.Inspect(node, visit)
}
