package a

import (
	"os"
	"sync"
	"time"
)

type S struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	opMu sync.Mutex
	ch   chan int
	f    *os.File
}

// Bad holds a data mutex across every kind of blocking operation.
func (s *S) Bad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1                    // want `channel send while holding mutex "s\.mu"`
	<-s.ch                       // want `channel receive while holding mutex "s\.mu"`
	time.Sleep(time.Millisecond) // want `time\.Sleep sleeps while holding mutex "s\.mu"`
	_, _ = s.f.Write(nil)        // want `os\.Write does file I/O while holding mutex "s\.mu"`
	blocker(s.ch)                // want `call to a\.blocker while holding mutex "s\.mu" may block: it receives from a channel`
	indirect(s.ch)               // want `call to a\.indirect while holding mutex "s\.mu" may block: it calls a\.blocker, which receives from a channel`
}

// BadRead does it under a read lock.
func (s *S) BadRead() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.ch <- 2 // want `channel send while holding read lock "s\.rw"`
}

func blocker(ch chan int) { <-ch }

func indirect(ch chan int) { blocker(ch) }

// Released blocks only after the unlock: clean.
func (s *S) Released() {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
}

// NonBlocking shows the sanctioned patterns under a lock: a select
// with default, and work handed to a goroutine.
func (s *S) NonBlocking() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
	go func() { <-s.ch }()
}

// Op holds an operation-serializing lock over the file write — that
// is the lock's whole job, so the config exempts it.
func (s *S) Op() {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	_, _ = s.f.Write(nil)
}

// Allowed exercises the escape hatch.
func (s *S) Allowed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//hod:allow(lockorder) shutdown-only path, nothing contends by then
	s.ch <- 9
}
