package apierr_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/apierr"
)

func testConfig() apierr.Config {
	return apierr.Config{
		BoundaryPkgs: []string{"apierr", "apierrfix"},
		Helpers: map[string]string{
			"apierr/a":    "writeErr(%s, %s, %s, %s)",
			"apierrfix/a": "writeErr(%s, %s, %s, %s)",
		},
		FallbackHelper: "writeErr(%s, %s, %s, %s)",
		CodeForStatus: map[int64]string{
			400: `"bad_request"`,
			404: `"not_found"`,
			500: `"internal"`,
		},
		FallbackCode: `"internal"`,
	}
}

func TestApierr(t *testing.T) {
	a := apierr.New(testConfig())
	res := analysistest.Run(t, "testdata", a, "apierr/a")
	if len(res.Suppressed) != 1 {
		t.Fatalf("suppressed = %d, want 1 (the //hod:allow on legacy)", len(res.Suppressed))
	}
	// The http.Error finding must carry a fix that keeps the original
	// writer, status, and message argument text.
	var found bool
	for _, d := range res.Diagnostics {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			if e.NewText == `writeErr(w, http.StatusBadRequest, "bad_request", "bad request")` {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no suggested fix rewrote http.Error into the envelope helper; got %+v", res.Diagnostics)
	}
}

// TestApplyFixes runs the -fix path end to end: copy the input into a
// temp tree, apply the suggested fixes in place, compare with golden.
func TestApplyFixes(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "apierrfix", "a", "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	dir := filepath.Join(tmp, "src", "apierrfix", "a")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}

	prog, err := analysis.LoadTestdata(tmp, []string{"apierrfix/a"})
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(prog, []*analysis.Analyzer{apierr.New(testConfig())})
	if len(res.Diagnostics) != 2 {
		t.Fatalf("diagnostics = %d, want 2 (http.Error + http.NotFound)", len(res.Diagnostics))
	}
	written, err := analysis.ApplyFixes(prog, res.Diagnostics)
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != 1 {
		t.Fatalf("files written = %v, want just the copied a.go", written)
	}
	got, err := os.ReadFile(filepath.Join(dir, "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "src", "apierrfix", "a", "a.go.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(golden) {
		t.Errorf("fixed file mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
