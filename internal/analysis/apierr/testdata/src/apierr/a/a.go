package a

import "net/http"

func handler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "bad request", http.StatusBadRequest) // want `http\.Error writes a text/plain body outside the typed wire envelope`
	http.NotFound(w, r)                                 // want `http\.NotFound writes a text/plain body outside the typed wire envelope`
	writeErr(w, http.StatusBadRequest, "bad_request", "bad request")
}

// legacy keeps its naked http.Error through the escape hatch.
//
//hod:allow(apierr) pre-envelope handshake peers parse this text body
func legacy(w http.ResponseWriter) {
	http.Error(w, "nope", http.StatusInternalServerError)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {}
