package a

import "net/http"

func handler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "" {
		http.Error(w, "missing path", http.StatusBadRequest)
		return
	}
	http.NotFound(w, r)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {}
