// Package apierr proves the typed-error-envelope invariant of the
// /v1/* wire contract: handler packages must emit errors through the
// envelope helpers (server.writeErr / gateway.WriteError), never
// through naked http.Error or http.NotFound — those write text/plain
// bodies the typed client cannot map onto errors.Is-able sentinels.
//
// Each finding carries a suggested fix that rewrites the call to the
// package's envelope helper, picking the wire code from the status
// argument when it is a constant; hodlint -fix applies it, so future
// PRs can auto-migrate.
package apierr

import (
	"fmt"
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Config scopes the analyzer and names each package's envelope
// helper. A Helper is a format string receiving (writer, status, wire
// code, message) argument texts.
type Config struct {
	// BoundaryPkgs are import-path prefixes of handler packages.
	BoundaryPkgs []string
	// Helpers maps a package path (or prefix) to its envelope-helper
	// call template; FallbackHelper is used when no entry matches.
	Helpers        map[string]string
	FallbackHelper string
	// CodeForStatus maps known HTTP status values to wire-code source
	// text; FallbackCode covers the rest (and non-constant statuses).
	CodeForStatus map[int64]string
	FallbackCode  string
}

// DefaultConfig is the repo's production wiring.
var DefaultConfig = Config{
	BoundaryPkgs: []string{"repro/internal/server", "repro/internal/gateway"},
	Helpers: map[string]string{
		"repro/internal/server":     "writeErr(%s, %s, %s, %s)",
		"repro/internal/gateway":    "WriteError(%s, %s, %s, %s)",
		"repro/internal/gateway/ws": "writeHandshakeError(%s, %s, %s, %s)",
	},
	FallbackHelper: "gateway.WriteError(%s, %s, %s, %s)",
	CodeForStatus: map[int64]string{
		400: "wire.CodeBadRequest",
		401: "wire.CodeUnauthorized",
		403: "wire.CodeForbidden",
		404: "wire.CodeUnknownPlant",
		426: "wire.CodeBadRequest",
		429: "wire.CodeRateLimited",
		500: "wire.CodeInternal",
		503: "wire.CodeShuttingDown",
	},
	FallbackCode: "wire.CodeInternal",
}

// New builds the analyzer with an explicit config (tests use this).
func New(cfg Config) *analysis.Analyzer {
	a := &analyzer{cfg: cfg}
	return &analysis.Analyzer{
		Name: "apierr",
		Doc:  "handler packages must emit errors through the typed wire envelope, not http.Error",
		Run:  a.run,
	}
}

// Analyzer is the production-configured instance.
var Analyzer = New(DefaultConfig)

type analyzer struct {
	cfg Config
}

func (a *analyzer) inScope(path string) bool {
	for _, p := range a.cfg.BoundaryPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func (a *analyzer) helperFor(path string) string {
	if h, ok := a.cfg.Helpers[path]; ok {
		return h
	}
	best := ""
	var tmpl string
	for p, h := range a.cfg.Helpers {
		if strings.HasPrefix(path, p+"/") && len(p) > len(best) {
			best, tmpl = p, h
		}
	}
	if tmpl != "" {
		return tmpl
	}
	return a.cfg.FallbackHelper
}

func (a *analyzer) run(pass *analysis.Pass) {
	if !a.inScope(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := pass.Pkg.CalleeOf(call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "net/http" {
				return true
			}
			switch callee.Name() {
			case "Error":
				a.reportError(pass, call)
			case "NotFound":
				a.reportNotFound(pass, call)
			}
			return true
		})
	}
}

// argText extracts the original source text of an expression.
func argText(pass *analysis.Pass, e ast.Expr) string {
	p := pass.Prog.Fset.Position(e.Pos())
	q := pass.Prog.Fset.Position(e.End())
	return pass.Prog.SrcText(pass.Pkg, p.Offset, q.Offset, p.Filename)
}

// codeFor picks the wire code text for the status expression.
func (a *analyzer) codeFor(pass *analysis.Pass, status ast.Expr) string {
	if tv, ok := pass.Pkg.Info.Types[status]; ok && tv.Value != nil {
		if v, exact := constInt(tv.Value.ExactString()); exact {
			if code, ok := a.cfg.CodeForStatus[v]; ok {
				return code
			}
		}
	}
	return a.cfg.FallbackCode
}

func constInt(s string) (int64, bool) {
	var v int64
	_, err := fmt.Sscanf(s, "%d", &v)
	return v, err == nil
}

func (a *analyzer) reportError(pass *analysis.Pass, call *ast.CallExpr) {
	d := analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: "http.Error writes a text/plain body outside the typed wire envelope; use the package's envelope helper",
	}
	if len(call.Args) == 3 {
		w, msg, status := argText(pass, call.Args[0]), argText(pass, call.Args[1]), argText(pass, call.Args[2])
		code := a.codeFor(pass, call.Args[2])
		d.Fix = &analysis.SuggestedFix{
			Message: "rewrite to the typed envelope helper",
			Edits: []analysis.TextEdit{{
				Pos:     call.Pos(),
				End:     call.End(),
				NewText: fmt.Sprintf(a.helperFor(pass.Pkg.Path), w, status, code, msg),
			}},
		}
	}
	pass.Report(d)
}

func (a *analyzer) reportNotFound(pass *analysis.Pass, call *ast.CallExpr) {
	d := analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: "http.NotFound writes a text/plain body outside the typed wire envelope; use the package's envelope helper",
	}
	if len(call.Args) == 2 {
		w := argText(pass, call.Args[0])
		code := a.cfg.CodeForStatus[404]
		if code == "" {
			code = a.cfg.FallbackCode
		}
		d.Fix = &analysis.SuggestedFix{
			Message: "rewrite to the typed envelope helper",
			Edits: []analysis.TextEdit{{
				Pos:     call.Pos(),
				End:     call.End(),
				NewText: fmt.Sprintf(a.helperFor(pass.Pkg.Path), w, "http.StatusNotFound", code, `"not found"`),
			}},
		}
	}
	pass.Report(d)
}
