package a

//hod:allow(hotpath)
func MissingReason() {}

//hod:allow(hotpath missing the close paren
func MissingParens() {}

//hod:frobnicate
func Unrecognized() {}
