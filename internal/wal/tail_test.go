package wal

import (
	"fmt"
	"testing"
)

// readSeqs collects (seq, payload) pairs via ReadAfter.
func readSeqs(t *testing.T, l *Log, after uint64, maxBytes int64) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	if err := l.ReadAfter(after, maxBytes, func(seq uint64, payload []byte) error {
		out[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatalf("ReadAfter(%d): %v", after, err)
	}
	return out
}

// TestReadAfterTailsLiveLog pins the tailing contract replication rides
// on: frames past a cursor come back in order, a cursor at the tip
// yields nothing, and appends made after a read are picked up by the
// next one — on a log that stays open and appending throughout.
func TestReadAfterTailsLiveLog(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := readSeqs(t, l, 4, 1<<20)
	if len(got) != 6 {
		t.Fatalf("ReadAfter(4) returned %d frames, want 6", len(got))
	}
	for seq := uint64(5); seq <= 10; seq++ {
		if got[seq] != fmt.Sprintf("p%d", seq) {
			t.Fatalf("seq %d = %q", seq, got[seq])
		}
	}
	if got := readSeqs(t, l, 10, 1<<20); len(got) != 0 {
		t.Fatalf("cursor at tip returned %d frames", len(got))
	}
	if _, err := l.Append([]byte("p11")); err != nil {
		t.Fatal(err)
	}
	if got := readSeqs(t, l, 10, 1<<20); len(got) != 1 || got[11] != "p11" {
		t.Fatalf("tail after live append = %v, want {11:p11}", got)
	}
	if first, last := l.Bounds(); first != 1 || last != 11 {
		t.Fatalf("Bounds() = (%d, %d), want (1, 11)", first, last)
	}
}

// TestReadAfterBudgetStopsAtFrameBoundary: the byte budget bounds one
// response without tearing frames — the reader resumes from its cursor.
func TestReadAfterBudgetStopsAtFrameBoundary(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 8; i++ {
		if _, err := l.Append(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	var seqs []uint64
	if err := l.ReadAfter(0, 250, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatalf("budgeted ReadAfter: %v", err)
	}
	if len(seqs) == 0 || len(seqs) >= 8 {
		t.Fatalf("250-byte budget returned %d of 8 frames, want a strict prefix", len(seqs))
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d; budget must not skip", i, seq)
		}
	}
	// Resume from the cursor: the rest arrives.
	rest := readSeqs(t, l, seqs[len(seqs)-1], 1<<20)
	if len(seqs)+len(rest) != 8 {
		t.Fatalf("prefix %d + resume %d != 8", len(seqs), len(rest))
	}
}

// TestReadAfterCompactedGap: a cursor before the oldest retained frame
// answers ErrCompacted — the standby's signal to re-seed from a
// snapshot instead of tailing.
func TestReadAfterCompactedGap(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CompactThrough(7); err != nil {
		t.Fatal(err)
	}
	first, _ := l.Bounds()
	if first <= 1 {
		t.Fatalf("compaction kept first=%d; test needs a gap", first)
	}
	err = l.ReadAfter(0, 1<<20, func(uint64, []byte) error { return nil })
	if err != ErrCompacted {
		t.Fatalf("ReadAfter(0) after compaction = %v, want ErrCompacted", err)
	}
	// A cursor inside the retained range still reads cleanly.
	got := readSeqs(t, l, first-1, 1<<20)
	if len(got) == 0 || got[10] != "p10" {
		t.Fatalf("retained-range read = %v", got)
	}
}
