// Package wal is the durability layer of the serving stack: a
// segmented, CRC-checksummed append-only log plus atomically replaced
// snapshot files. The serving layer appends every accepted ingest
// batch before acknowledging it and periodically compacts the log
// against a snapshot of the in-memory stores; on startup it replays
// snapshot + log tail through the regular ingest path, which is safe
// because the ingest store is idempotent (set-at-index).
//
// On-disk layout of one log directory:
//
//	seg-<first-seq>.wal    frames: [len u32][crc u32][seq u64][payload]
//
// The CRC (Castagnoli) covers seq + payload. A torn tail — a partial
// or corrupt frame at the end of the newest segment, the signature of
// a crash mid-write — is truncated away on open; corruption anywhere
// else is an error, because data the caller believed fsynced would be
// silently lost.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy says when appended frames are fsynced to disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Append returns — group-committed, so
	// concurrent appenders share one fsync. Survives power loss.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (default 200ms). A
	// crash of the process alone loses nothing (the data is in the OS
	// page cache); power loss can lose the last interval.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes on its own
	// schedule. Fastest, weakest.
	SyncNone
)

// ParseSyncPolicy maps the -fsync flag grammar onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none", "off":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options tunes one log.
type Options struct {
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// SegmentBytes rotates to a fresh segment once the active one
	// grows past this size (default 8 MiB).
	SegmentBytes int64
	// SyncEvery is the background fsync cadence under SyncInterval
	// (default 200ms).
	SyncEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 200 * time.Millisecond
	}
	return o
}

// ErrCorrupt marks corruption in a *sealed* part of the log — any
// segment but the newest, or the verified prefix of the newest. Unlike
// a torn tail (a crash mid-write, silently truncated on open), sealed
// corruption means frames the caller believed durable are damaged, so
// both Open and Replay refuse to proceed rather than skip records. The
// wrapped message names the segment file and its ordinal index so an
// operator knows exactly which file to restore or discard.
var ErrCorrupt = errors.New("wal: sealed segment corrupt")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const frameHeader = 4 + 4 + 8 // len + crc + seq

// maxFrameBytes bounds one payload so a corrupt length field cannot
// make replay allocate gigabytes.
const maxFrameBytes = 256 << 20

// segment is one on-disk log file and the seq range it holds.
type segment struct {
	path        string
	first, last uint64 // last == first-1 when empty
	bytes       int64
}

// Log is a segmented append-only log. Appends are safe for concurrent
// use; Replay and Compact must not race Append (the serving layer
// replays before it starts accepting traffic and compacts under its
// snapshot lock). ReadAfter is the one read that may race everything —
// it snapshots the verified byte bounds under the lock and reads only
// immutable prefixes.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex // guards file writes, rotation, segment list
	f        *os.File
	segs     []segment // segs[len-1] is the active one
	nextSeq  uint64
	appended uint64 // last appended seq, 0 when none

	// Group commit: the first waiter to take syncMu fsyncs everything
	// appended so far; later waiters observe synced >= their seq and
	// return without touching the disk.
	syncMu sync.Mutex
	synced uint64

	tickStop chan struct{}
	tickDone chan struct{}
}

// Open scans dir (created if missing) and opens the newest segment for
// appending, truncating a torn tail if the process died mid-write.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if len(l.segs) == 0 {
		if err := l.rotateLocked(); err != nil {
			return nil, err
		}
	} else {
		active := &l.segs[len(l.segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.f = f
	}
	if opts.Policy == SyncInterval {
		l.tickStop = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// segName formats a segment filename.
//
//hod:allow(hotpath) runs once per segment rotation (and at open), never per append
func segName(firstSeq uint64) string { return fmt.Sprintf("seg-%016x.wal", firstSeq) }

// scan reads every segment in seq order, verifying frames and learning
// the seq ranges; the newest segment is truncated at the first bad
// frame (torn tail), older segments must be fully intact.
func (l *Log) scan() error {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var firsts []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 16, 64)
		if err != nil {
			return fmt.Errorf("wal: alien file %s in %s", name, l.dir)
		}
		firsts = append(firsts, n)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	for i, first := range firsts {
		seg := segment{path: filepath.Join(l.dir, segName(first)), first: first, last: first - 1}
		last := i == len(firsts)-1
		validBytes, lastSeq, err := verifySegment(seg.path, first, last)
		if err != nil {
			return fmt.Errorf("segment %d of %d: %w", i, len(firsts), err)
		}
		seg.bytes = validBytes
		seg.last = lastSeq
		if len(l.segs) > 0 {
			// Retained segments must be contiguous: compaction only ever
			// drops a prefix, so a hole between segments means a sealed
			// file full of acked frames vanished.
			if prev := l.segs[len(l.segs)-1]; seg.first != prev.last+1 {
				return fmt.Errorf("segment %d of %d: %w: %s starts at seq %d but %s ends at %d (missing segment)",
					i, len(firsts), ErrCorrupt, seg.path, seg.first, prev.path, prev.last)
			}
		}
		if last {
			if fi, err := os.Stat(seg.path); err == nil && fi.Size() > validBytes {
				if err := os.Truncate(seg.path, validBytes); err != nil {
					return fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
				}
			}
			l.nextSeq = lastSeq + 1
			l.appended = lastSeq
			l.synced = lastSeq
		}
		l.segs = append(l.segs, seg)
	}
	return nil
}

// verifySegment walks one segment's frames. For the newest segment a
// bad or partial frame marks the valid prefix (torn tail); for older
// segments it is corruption.
func verifySegment(path string, firstSeq uint64, tolerateTail bool) (validBytes int64, lastSeq uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	lastSeq = firstSeq - 1
	var off int64
	hdr := make([]byte, frameHeader)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if err == io.EOF {
				return off, lastSeq, nil
			}
			if tolerateTail {
				return off, lastSeq, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: torn frame header at %d in a non-final segment", ErrCorrupt, path, off)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		seq := binary.LittleEndian.Uint64(hdr[8:16])
		if n > maxFrameBytes {
			if tolerateTail {
				return off, lastSeq, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: frame at %d claims %d bytes", ErrCorrupt, path, off, n)
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			if tolerateTail {
				return off, lastSeq, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: torn payload at %d in a non-final segment", ErrCorrupt, path, off)
		}
		if got := frameCRC(seq, payload); got != crc {
			if tolerateTail {
				return off, lastSeq, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: CRC mismatch at %d (frame seq %d)", ErrCorrupt, path, off, seq)
		}
		if seq != lastSeq+1 {
			if tolerateTail && seq <= lastSeq {
				// A stale frame past the live prefix — the signature of a
				// rewound-then-overwritten tail. Treat like any torn tail.
				return off, lastSeq, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: seq %d after %d (gap)", ErrCorrupt, path, seq, lastSeq)
		}
		lastSeq = seq
		off += frameHeader + int64(n)
	}
}

func frameCRC(seq uint64, payload []byte) uint32 {
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], seq)
	crc := crc32.Update(0, crcTable, seqb[:])
	return crc32.Update(crc, crcTable, payload)
}

// rotateLocked opens a fresh segment. Callers hold l.mu (or own the
// log exclusively during Open).
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
	}
	seg := segment{path: filepath.Join(l.dir, segName(l.nextSeq)), first: l.nextSeq, last: l.nextSeq - 1}
	f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.segs = append(l.segs, seg)
	return nil
}

// Append writes one frame and returns its sequence number. Under
// SyncAlways the frame (and, by group commit, every earlier one) is
// durable when Append returns.
//
//hod:hotpath
func (l *Log) Append(payload []byte) (uint64, error) {
	seq, err := l.AppendBuffered(payload)
	if err != nil {
		return 0, err
	}
	if l.opts.Policy == SyncAlways {
		if err := l.SyncTo(seq); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// AppendBuffered writes one frame without applying the sync policy.
// Callers that hold an admission lock pair it with SyncTo *after*
// releasing the lock, so concurrent appenders genuinely share one
// group-committed fsync instead of serializing on it.
//
//hod:allow(lockorder) l.mu is the segment-file mutex: serializing buffered writes (and rotation) is its purpose, and the fsync is deliberately outside it in SyncTo
func (l *Log) AppendBuffered(payload []byte) (uint64, error) {
	if len(payload) > maxFrameBytes {
		//hod:allow(hotpath) rejection path: a conforming admit pipeline never builds an oversized frame, so this never runs per-append
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds the %d cap", len(payload), maxFrameBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		//hod:allow(hotpath) closed-log error path, not the append fast path
		return 0, fmt.Errorf("wal: log is closed")
	}
	seq := l.nextSeq
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], frameCRC(seq, payload))
	binary.LittleEndian.PutUint64(frame[8:16], seq)
	copy(frame[frameHeader:], payload)
	active := &l.segs[len(l.segs)-1]
	if _, err := l.f.Write(frame); err != nil {
		// A partial write leaves garbage mid-segment; if it stayed, the
		// next successful append would land *after* it and a restart
		// would truncate everything from the garbage on — losing acked,
		// fsynced frames to the torn-tail rule. Rewind to the last good
		// frame boundary; if even that fails, seal the log so no ack
		// can ever be issued past the corruption.
		if terr := l.f.Truncate(active.bytes); terr != nil {
			l.f.Close()
			l.f = nil
			//hod:allow(hotpath) double-fault seal path: the disk is already failing, allocation cost is irrelevant
			return 0, fmt.Errorf("wal: write failed (%v) and rewind failed (%v); log sealed", err, terr)
		}
		return 0, err
	}
	l.nextSeq++
	l.appended = seq
	active.last = seq
	active.bytes += int64(len(frame))
	if active.bytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// SyncTo makes every frame up to (at least) seq durable, sharing one
// fsync among concurrent callers: the first waiter syncs everything
// appended so far, later waiters observe their seq already covered and
// return without touching the disk.
//
//hod:allow(lockorder) syncMu exists to serialize the group fsync; waiters queue on it to piggyback on the in-flight sync
func (l *Log) SyncTo(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced >= seq {
		return nil
	}
	l.mu.Lock()
	f := l.f
	covered := l.appended
	l.mu.Unlock()
	if f == nil {
		//hod:allow(hotpath) closed-log error path, not the sync fast path
		return fmt.Errorf("wal: log is closed")
	}
	if err := f.Sync(); err != nil {
		return err
	}
	l.synced = covered
	return nil
}

// Sync flushes everything appended so far to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	seq := l.appended
	l.mu.Unlock()
	if seq == 0 {
		return nil
	}
	return l.SyncTo(seq)
}

func (l *Log) syncLoop() {
	defer close(l.tickDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.tickStop:
			return
		case <-t.C:
			_ = l.Sync()
		}
	}
}

// Replay streams every retained frame in seq order to fn. Frames with
// seq <= afterSeq are skipped without decoding — the caller passes the
// snapshot's covered boundary.
func (l *Log) Replay(afterSeq uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	for i, seg := range segs {
		if seg.last < seg.first || seg.last <= afterSeq {
			continue
		}
		if err := replaySegment(seg, afterSeq, fn); err != nil {
			if errors.Is(err, ErrCorrupt) {
				return fmt.Errorf("segment %d of %d: %w", i, len(segs), err)
			}
			return err
		}
	}
	return nil
}

func replaySegment(seg segment, afterSeq uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := io.LimitReader(f, seg.bytes) // never read past the verified prefix
	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return nil
			}
			// The prefix was verified at open, so damage here happened
			// after open: sealed, acked frames are gone mid-file.
			return fmt.Errorf("%w: %s: torn frame header inside the verified prefix: %v", ErrCorrupt, seg.path, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		seq := binary.LittleEndian.Uint64(hdr[8:16])
		if n > maxFrameBytes {
			return fmt.Errorf("%w: %s: frame seq %d claims %d bytes", ErrCorrupt, seg.path, seq, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("%w: %s: truncated frame seq %d: %v", ErrCorrupt, seg.path, seq, err)
		}
		if frameCRC(seq, payload) != crc {
			return fmt.Errorf("%w: %s: CRC mismatch on frame seq %d", ErrCorrupt, seg.path, seq)
		}
		if seq <= afterSeq {
			continue
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
	}
}

// ErrCompacted reports a tail read that starts before the oldest
// retained frame: the requested range was compacted away, and the
// reader must re-seed from a snapshot instead of the log.
var ErrCompacted = errors.New("wal: requested frames compacted")

// errReadBudget stops a ReadAfter walk once the byte budget is spent.
var errReadBudget = errors.New("wal: read budget reached")

// Bounds reports the oldest retained and newest appended sequence
// numbers. first > last+1 never holds; an empty log reports
// (nextSeq, nextSeq-1).
func (l *Log) Bounds() (first, last uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].first, l.appended
}

// ReadAfter streams retained frames with seq > afterSeq to fn, capped
// at roughly maxBytes of payload per call (always at least one frame
// when any is pending). Unlike Replay it is safe to run concurrently
// with Append, SyncTo, and CompactThrough: it snapshots the segment
// list and verified byte bounds under the log's lock and reads only
// those immutable prefixes — a warm standby tails a live owner's log
// through it. When afterSeq+1 predates the oldest retained frame
// (compaction won the race), it returns ErrCompacted so the reader
// falls back to re-seeding from a snapshot.
func (l *Log) ReadAfter(afterSeq uint64, maxBytes int64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	if len(segs) > 0 && afterSeq+1 < segs[0].first {
		return ErrCompacted
	}
	var sent int64
	for i, seg := range segs {
		if seg.last < seg.first || seg.last <= afterSeq {
			continue
		}
		err := replaySegment(seg, afterSeq, func(seq uint64, payload []byte) error {
			if sent > 0 && sent+int64(len(payload)) > maxBytes {
				return errReadBudget
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
			sent += int64(len(payload))
			return nil
		})
		switch {
		case errors.Is(err, errReadBudget):
			return nil
		case os.IsNotExist(err):
			// The file vanished between the snapshot and the open:
			// compaction deleted it, so the caller's position predates
			// the retained log after all.
			return ErrCompacted
		case errors.Is(err, ErrCorrupt):
			return fmt.Errorf("segment %d of %d: %w", i, len(segs), err)
		case err != nil:
			return err
		}
		if sent >= maxBytes {
			return nil
		}
	}
	return nil
}

// CompactThrough deletes full segments whose every frame has
// seq <= coveredSeq. The active segment always survives, so appends
// continue uninterrupted.
//
//hod:allow(lockorder) removing a dead segment must be mutually exclusive with rotation picking a new filename; l.mu is the segment-file mutex
func (l *Log) CompactThrough(coveredSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	keep := make([]segment, 0, len(l.segs))
	for i, seg := range l.segs {
		active := i == len(l.segs)-1
		if active || seg.last > coveredSeq {
			keep = append(keep, seg)
			continue
		}
		if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			// An undeletable segment stays listed and is retried on the
			// next compaction.
			keep = append(keep, seg)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	l.segs = keep
	return firstErr
}

// LastSeq returns the newest appended sequence number (0 when empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Segments reports how many segment files the log currently holds.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Close flushes and closes the active segment. Further Appends fail.
//
//hod:allow(lockorder) shutdown path: the final flush+close must exclude concurrent appenders, which is exactly what l.mu is for
func (l *Log) Close() error {
	if l.tickStop != nil {
		close(l.tickStop)
		<-l.tickDone
		l.tickStop = nil
	}
	if err := l.Sync(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
