package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file format: [magic u32][rev u64][len u64][crc u32][payload].
// The file is written to a temp name, fsynced, and renamed over the
// previous snapshot, so a crash mid-write leaves the old one intact.

const snapMagic = 0x484f4453 // "HODS"

const snapHeader = 4 + 8 + 8 + 4

// SnapshotName is the file name snapshots live under inside a plant's
// durability directory.
const SnapshotName = "snapshot.snap"

// EncodeSnapshot frames a snapshot payload with its revision and CRC —
// the same bytes SaveSnapshot persists, reusable as a backup wire
// format.
func EncodeSnapshot(rev uint64, payload []byte) []byte {
	buf := make([]byte, snapHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], snapMagic)
	binary.LittleEndian.PutUint64(buf[4:12], rev)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.Checksum(payload, crcTable))
	copy(buf[snapHeader:], payload)
	return buf
}

// DecodeSnapshot verifies a framed snapshot and returns its revision
// and payload.
func DecodeSnapshot(buf []byte) (rev uint64, payload []byte, err error) {
	if len(buf) < snapHeader {
		return 0, nil, fmt.Errorf("wal: snapshot too short (%d bytes)", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != snapMagic {
		return 0, nil, fmt.Errorf("wal: not a snapshot (bad magic)")
	}
	rev = binary.LittleEndian.Uint64(buf[4:12])
	n := binary.LittleEndian.Uint64(buf[12:20])
	if n != uint64(len(buf)-snapHeader) {
		return 0, nil, fmt.Errorf("wal: snapshot length %d does not match payload %d", n, len(buf)-snapHeader)
	}
	payload = buf[snapHeader:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[20:24]) {
		return 0, nil, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	return rev, payload, nil
}

// SaveSnapshot atomically replaces dir/snapshot.snap with the framed
// payload: temp file, fsync, rename, directory fsync.
func SaveSnapshot(dir string, rev uint64, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(dir, SnapshotName)
	tmp, err := os.CreateTemp(dir, SnapshotName+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = os.Remove(tmpName) }
	if _, err := tmp.Write(EncodeSnapshot(rev, payload)); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmpName, final); err != nil {
		cleanup()
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadSnapshot reads dir/snapshot.snap. A missing file is not an error
// — it returns rev 0 and a nil payload (fresh directory).
func LoadSnapshot(dir string) (rev uint64, payload []byte, err error) {
	buf, err := os.ReadFile(filepath.Join(dir, SnapshotName))
	if os.IsNotExist(err) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, err
	}
	return DecodeSnapshot(buf)
}
