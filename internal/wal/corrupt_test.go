package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fillSegments writes count frames into a log rotated after every
// frame (SegmentBytes: 1), closes it, and returns the directory. With
// count frames the directory holds count sealed single-frame segments
// plus one empty active segment.
func fillSegments(t *testing.T, count int) string {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%02d-xxxxxxxxxxxx", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// flipByte corrupts one payload byte of the segment that starts at
// firstSeq.
func flipByte(t *testing.T, dir string, firstSeq uint64) string {
	t.Helper()
	path := filepath.Join(dir, segName(firstSeq))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSealedMidSegmentCorruptionOnOpen pins the contract for damage in
// a sealed *middle* segment — neither the first nor the tail, so no
// torn-tail leniency can apply: Open must fail with ErrCorrupt and the
// error must name the damaged segment (ordinal and file) instead of
// silently skipping its records.
func TestSealedMidSegmentCorruptionOnOpen(t *testing.T) {
	dir := fillSegments(t, 5)
	path := flipByte(t, dir, 3) // middle segment: frames 1..5 live in segments 0..4

	_, err := Open(dir, Options{Policy: SyncNone})
	if err == nil {
		t.Fatal("Open accepted a log with a corrupt sealed mid segment")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("errors.Is(err, ErrCorrupt) = false: %v", err)
	}
	for _, frag := range []string{"segment 2 of 6", path, "CRC mismatch"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not name %q", err, frag)
		}
	}
}

// TestSealedSeqGapIsCorruption: a sealed segment whose frames skip a
// sequence number hides lost records behind individually valid CRCs.
// Open must refuse it.
func TestSealedSeqGapIsCorruption(t *testing.T) {
	dir := fillSegments(t, 3)
	// Remove segment 1 (frame 2) entirely: segments 0 and 2 are intact,
	// but the log now claims seq 3 follows seq 1.
	if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, Options{Policy: SyncNone})
	if err == nil {
		t.Fatal("Open accepted a log with a missing sealed segment")
	}
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "missing segment") {
		t.Fatalf("want ErrCorrupt missing-segment, got: %v", err)
	}
}

// TestReplayDetectsPostOpenCorruption covers the later window: the
// segment verified clean at Open is damaged on disk afterwards (bad
// sector, external truncation). Replay must deliver the intact prefix,
// then stop with ErrCorrupt naming the segment — never skip past the
// damage to later frames.
func TestReplayDetectsPostOpenCorruption(t *testing.T) {
	dir := fillSegments(t, 5)
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	path := flipByte(t, dir, 3) // damage sealed segment 2 *after* open

	var seen []uint64
	err = l.Replay(0, func(seq uint64, _ []byte) error {
		seen = append(seen, seq)
		return nil
	})
	if err == nil {
		t.Fatal("Replay silently skipped a corrupt sealed frame")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("errors.Is(err, ErrCorrupt) = false: %v", err)
	}
	for _, frag := range []string{"segment 2 of", path} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not name %q", err, frag)
		}
	}
	// The intact prefix (frames 1 and 2) was delivered in order; frame 3
	// and everything after it must not have been.
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("delivered frames %v, want [1 2]", seen)
	}
}

// TestReplayDetectsPostOpenTruncation: shrinking a sealed segment under
// a live log surfaces as corruption, not EOF.
func TestReplayDetectsPostOpenTruncation(t *testing.T) {
	dir := fillSegments(t, 4)
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	path := filepath.Join(dir, segName(2))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	err = l.Replay(0, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "segment 1 of") {
		t.Fatalf("want ErrCorrupt for truncated sealed segment, got: %v", err)
	}
}
