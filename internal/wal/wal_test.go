package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func collect(t *testing.T, l *Log, after uint64) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	if err := l.Replay(after, func(seq uint64, payload []byte) error {
		out[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]string{}
	for i := 0; i < 50; i++ {
		payload := fmt.Sprintf("batch-%03d", i)
		seq, err := l.Append([]byte(payload))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq %d, want %d", seq, i+1)
		}
		want[seq] = payload
	}
	got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d frames, want %d", len(got), len(want))
	}
	for seq, p := range want {
		if got[seq] != p {
			t.Fatalf("seq %d replayed %q, want %q", seq, got[seq], p)
		}
	}
	// afterSeq skips the covered prefix.
	if got := collect(t, l, 47); len(got) != 3 || got[48] == "" {
		t.Fatalf("Replay(47) = %v", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: seqs continue where they left off, old frames still there.
	l2, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 50 {
		t.Fatalf("LastSeq after reopen = %d, want 50", l2.LastSeq())
	}
	if seq, err := l2.Append([]byte("post-reopen")); err != nil || seq != 51 {
		t.Fatalf("append after reopen: seq %d err %v", seq, err)
	}
	got = collect(t, l2, 0)
	if len(got) != 51 || got[51] != "post-reopen" {
		t.Fatalf("after reopen replayed %d frames", len(got))
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every frame rotates.
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Segments(); got < 10 {
		t.Fatalf("expected >= 10 segments, got %d", got)
	}
	if err := l.CompactThrough(7); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 0)
	for seq := uint64(8); seq <= 10; seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("frame %d lost by compaction (have %v)", seq, got)
		}
	}
	for seq := range got {
		if seq <= 7 {
			// Frames <= 7 may survive only if they share a segment with
			// a later frame; with 1-byte segments they must be gone.
			t.Fatalf("frame %d not compacted", seq)
		}
	}
	if l.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d", l.LastSeq())
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("keep-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage half-frame at the tail.
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer l2.Close()
	if l2.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", l2.LastSeq())
	}
	if got := collect(t, l2, 0); len(got) != 3 {
		t.Fatalf("replayed %d frames, want 3", len(got))
	}
	// And appends continue cleanly on the truncated file.
	if seq, err := l2.Append([]byte("after-tear")); err != nil || seq != 4 {
		t.Fatalf("append after tear: seq %d err %v", seq, err)
	}
	if got := collect(t, l2, 0); got[4] != "after-tear" {
		t.Fatalf("frame 4 = %q", got[4])
	}
}

func TestCorruptionInOldSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]byte("xxxxxxxxxxxxxxxx")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the FIRST segment — not a torn tail, real
	// corruption of supposedly durable data.
	seg := filepath.Join(dir, segName(1))
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Policy: SyncNone}); err == nil {
		t.Fatal("open accepted a corrupted non-final segment")
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if l.LastSeq() != writers*per {
		t.Fatalf("LastSeq = %d, want %d", l.LastSeq(), writers*per)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != writers*per {
		t.Fatalf("replayed %d frames, want %d", len(got), writers*per)
	}
}

func TestSnapshotRoundTripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	// Missing snapshot is a clean zero.
	rev, payload, err := LoadSnapshot(dir)
	if err != nil || rev != 0 || payload != nil {
		t.Fatalf("fresh dir: rev=%d payload=%v err=%v", rev, payload, err)
	}
	want := []byte("state-v1")
	if err := SaveSnapshot(dir, 7, want); err != nil {
		t.Fatal(err)
	}
	rev, payload, err = LoadSnapshot(dir)
	if err != nil || rev != 7 || !bytes.Equal(payload, want) {
		t.Fatalf("load: rev=%d payload=%q err=%v", rev, payload, err)
	}
	// Overwrite with a newer revision.
	if err := SaveSnapshot(dir, 8, []byte("state-v2")); err != nil {
		t.Fatal(err)
	}
	rev, payload, _ = LoadSnapshot(dir)
	if rev != 8 || string(payload) != "state-v2" {
		t.Fatalf("after replace: rev=%d payload=%q", rev, payload)
	}
	// A corrupted snapshot is detected, not silently applied.
	path := filepath.Join(dir, SnapshotName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshot(dir); err == nil {
		t.Fatal("corrupted snapshot loaded without error")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{
		"": SyncAlways, "always": SyncAlways,
		"interval": SyncInterval,
		"none":     SyncNone, "off": SyncNone,
	} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
	if SyncInterval.String() != "interval" {
		t.Errorf("String() = %q", SyncInterval.String())
	}
}
