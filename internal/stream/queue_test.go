package stream

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestQueueBoundedAdmission(t *testing.T) {
	q := NewQueue[int](2)
	if !q.TryPush(1) || !q.TryPush(2) {
		t.Fatal("pushes within capacity must succeed")
	}
	if q.TryPush(3) {
		t.Fatal("push beyond capacity must be rejected")
	}
	if q.Len() != 2 || q.Cap() != 2 {
		t.Fatalf("len=%d cap=%d", q.Len(), q.Cap())
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("pop = %v,%v", v, ok)
	}
	if !q.TryPush(3) {
		t.Fatal("push after pop must succeed")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[int](4)
	q.TryPush(10)
	q.TryPush(11)
	q.Close()
	if q.TryPush(12) {
		t.Fatal("push after close must be rejected")
	}
	var got []int
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("drained %v", got)
	}
	q.Close() // double close is a no-op
}

// TestQueueConcurrentProducers checks that under producer contention
// every accepted item is delivered exactly once.
func TestQueueConcurrentProducers(t *testing.T) {
	q := NewQueue[int](64)
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if q.TryPush(p*200 + i) {
					accepted.Add(1)
				}
			}
		}(p)
	}
	done := make(chan struct{})
	var popped int64
	go func() {
		defer close(done)
		for {
			if _, ok := q.Pop(); !ok {
				return
			}
			popped++
		}
	}()
	wg.Wait()
	q.Close()
	<-done
	if popped != accepted.Load() {
		t.Fatalf("popped %d items, accepted %d", popped, accepted.Load())
	}
	if popped == 0 {
		t.Fatal("no items made it through")
	}
}
