package stream

import "sync"

// Queue is a bounded MPSC work queue with non-blocking admission — the
// backpressure primitive of the ingest path. Producers TryPush and get
// an immediate accept/reject (the HTTP layer turns a reject into 429 +
// Retry-After); the consumer Pops until Close has been called and the
// backlog is drained, which is exactly the graceful-shutdown draining
// contract.
type Queue[T any] struct {
	mu     sync.Mutex
	closed bool
	ch     chan T
}

// NewQueue builds a queue holding at most capacity items (minimum 1).
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{ch: make(chan T, capacity)}
}

// TryPush admits v if the queue has room and is not closed. It never
// blocks; false means "shed load now".
func (q *Queue[T]) TryPush(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// Pop blocks until an item is available or the queue is closed and
// drained; ok is false only in the latter case.
func (q *Queue[T]) Pop() (v T, ok bool) {
	v, ok = <-q.ch
	return v, ok
}

// Close rejects all future pushes. Items already admitted remain
// poppable; the consumer drains them before Pop reports done.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.ch)
}

// Len returns the current backlog.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return cap(q.ch) }
