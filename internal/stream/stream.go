// Package stream provides the small streaming-pipeline substrate used
// by the online examples and the plant simulator: typed sample streams
// over channels, sliding-window operators, fan-out/fan-in, and an
// online detector adapter. The paper's phase level produces
// high-resolution live sensor data; this package is the plumbing that
// carries it.
package stream

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed stream.
var ErrClosed = errors.New("stream: closed")

// Sample is one timestamped sensor observation.
type Sample struct {
	Sensor string
	At     time.Time
	Value  float64
}

// Source produces samples until its context is cancelled or it is
// exhausted.
type Source interface {
	// Next returns the next sample; ok is false when the source is
	// exhausted.
	Next(ctx context.Context) (s Sample, ok bool)
}

// SliceSource replays a fixed sample slice, useful in tests and for
// feeding recorded data through the online operators.
type SliceSource struct {
	samples []Sample
	pos     int
}

// NewSliceSource builds a source over the given samples.
func NewSliceSource(samples []Sample) *SliceSource {
	return &SliceSource{samples: samples}
}

// Next implements Source.
func (s *SliceSource) Next(ctx context.Context) (Sample, bool) {
	if ctx.Err() != nil || s.pos >= len(s.samples) {
		return Sample{}, false
	}
	out := s.samples[s.pos]
	s.pos++
	return out, true
}

// Pump drains a Source into a channel, closing it when the source is
// exhausted or the context is cancelled. It returns the channel
// immediately and runs in a goroutine.
func Pump(ctx context.Context, src Source, buffer int) <-chan Sample {
	ch := make(chan Sample, buffer)
	go func() {
		defer close(ch)
		for {
			s, ok := src.Next(ctx)
			if !ok {
				return
			}
			select {
			case ch <- s:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

// Map applies fn to every sample of in.
func Map(ctx context.Context, in <-chan Sample, fn func(Sample) Sample) <-chan Sample {
	out := make(chan Sample)
	go func() {
		defer close(out)
		for s := range in {
			select {
			case out <- fn(s):
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Filter forwards only the samples for which keep returns true.
func Filter(ctx context.Context, in <-chan Sample, keep func(Sample) bool) <-chan Sample {
	out := make(chan Sample)
	go func() {
		defer close(out)
		for s := range in {
			if !keep(s) {
				continue
			}
			select {
			case out <- s:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// FanOut duplicates in onto n output channels. Every output receives
// every sample; a slow consumer backpressures the rest, matching the
// lossless semantics production monitoring requires.
func FanOut(ctx context.Context, in <-chan Sample, n int) []<-chan Sample {
	outs := make([]chan Sample, n)
	ros := make([]<-chan Sample, n)
	for i := range outs {
		outs[i] = make(chan Sample)
		ros[i] = outs[i]
	}
	go func() {
		defer func() {
			for _, o := range outs {
				close(o)
			}
		}()
		for s := range in {
			for _, o := range outs {
				select {
				case o <- s:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return ros
}

// Merge multiplexes several sample channels into one, closing the
// output when all inputs are drained.
func Merge(ctx context.Context, ins ...<-chan Sample) <-chan Sample {
	out := make(chan Sample)
	var wg sync.WaitGroup
	wg.Add(len(ins))
	for _, in := range ins {
		go func(in <-chan Sample) {
			defer wg.Done()
			for s := range in {
				select {
				case out <- s:
				case <-ctx.Done():
					return
				}
			}
		}(in)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// WindowEvent is one full sliding window emitted by Windower.
type WindowEvent struct {
	Sensor string
	Start  time.Time
	Values []float64
}

// Windower groups a sample stream into overlapping fixed-size windows
// per sensor.
type Windower struct {
	size, stride int
	buffers      map[string][]Sample
}

// NewWindower builds a windower with the given window size and stride.
// It panics on non-positive parameters (programmer error).
func NewWindower(size, stride int) *Windower {
	if size <= 0 || stride <= 0 {
		panic("stream: windower needs positive size and stride")
	}
	return &Windower{size: size, stride: stride, buffers: make(map[string][]Sample)}
}

// Feed adds one sample and returns any completed windows (usually zero
// or one).
func (w *Windower) Feed(s Sample) []WindowEvent {
	buf := append(w.buffers[s.Sensor], s)
	var out []WindowEvent
	for len(buf) >= w.size {
		vals := make([]float64, w.size)
		for i := 0; i < w.size; i++ {
			vals[i] = buf[i].Value
		}
		out = append(out, WindowEvent{Sensor: s.Sensor, Start: buf[0].At, Values: vals})
		buf = buf[w.stride:]
	}
	w.buffers[s.Sensor] = buf
	return out
}

// Windows transforms a sample stream into a window-event stream.
func Windows(ctx context.Context, in <-chan Sample, size, stride int) <-chan WindowEvent {
	out := make(chan WindowEvent)
	go func() {
		defer close(out)
		w := NewWindower(size, stride)
		for s := range in {
			for _, ev := range w.Feed(s) {
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out
}

// Alert is an online detection event.
type Alert struct {
	Sensor string
	At     time.Time
	Score  float64
	Value  float64
}

// PointDetectorFunc scores one new observation given the sensor name.
type PointDetectorFunc func(sensor string, value float64) float64

// Detect runs fn over the stream and emits an Alert for every sample
// whose score reaches threshold.
func Detect(ctx context.Context, in <-chan Sample, fn PointDetectorFunc, threshold float64) <-chan Alert {
	out := make(chan Alert)
	go func() {
		defer close(out)
		for s := range in {
			score := fn(s.Sensor, s.Value)
			if score < threshold {
				continue
			}
			select {
			case out <- Alert{Sensor: s.Sensor, At: s.At, Score: score, Value: s.Value}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Collect drains a channel into a slice (test/report helper).
func Collect[T any](in <-chan T) []T {
	var out []T
	for v := range in {
		out = append(out, v)
	}
	return out
}
