package stream

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/stats"
)

var base = time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)

func mkSamples(sensor string, vals ...float64) []Sample {
	out := make([]Sample, len(vals))
	for i, v := range vals {
		out[i] = Sample{Sensor: sensor, At: base.Add(time.Duration(i) * time.Second), Value: v}
	}
	return out
}

func TestSliceSourceAndPump(t *testing.T) {
	ctx := context.Background()
	src := NewSliceSource(mkSamples("t", 1, 2, 3))
	got := Collect(Pump(ctx, src, 0))
	if len(got) != 3 || got[2].Value != 3 {
		t.Fatalf("got=%v", got)
	}
}

func TestPumpRespectsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := NewSliceSource(mkSamples("t", 1, 2, 3))
	got := Collect(Pump(ctx, src, 0))
	if len(got) != 0 {
		t.Fatalf("cancelled pump delivered %d samples", len(got))
	}
}

func TestMapFilter(t *testing.T) {
	ctx := context.Background()
	in := Pump(ctx, NewSliceSource(mkSamples("t", 1, 2, 3, 4)), 0)
	doubled := Map(ctx, in, func(s Sample) Sample {
		s.Value *= 2
		return s
	})
	evens := Filter(ctx, doubled, func(s Sample) bool { return s.Value > 4 })
	got := Collect(evens)
	if len(got) != 2 || got[0].Value != 6 || got[1].Value != 8 {
		t.Fatalf("got=%v", got)
	}
}

func TestFanOutDeliversAll(t *testing.T) {
	ctx := context.Background()
	in := Pump(ctx, NewSliceSource(mkSamples("t", 1, 2, 3)), 0)
	outs := FanOut(ctx, in, 3)
	results := make([][]Sample, 3)
	done := make(chan int)
	for i, o := range outs {
		go func(i int, o <-chan Sample) {
			results[i] = Collect(o)
			done <- i
		}(i, o)
	}
	for range outs {
		<-done
	}
	for i, r := range results {
		if len(r) != 3 {
			t.Fatalf("branch %d received %d samples", i, len(r))
		}
	}
}

func TestMerge(t *testing.T) {
	ctx := context.Background()
	a := Pump(ctx, NewSliceSource(mkSamples("a", 1, 2)), 0)
	b := Pump(ctx, NewSliceSource(mkSamples("b", 3)), 0)
	got := Collect(Merge(ctx, a, b))
	if len(got) != 3 {
		t.Fatalf("merged %d samples", len(got))
	}
	bySensor := map[string]int{}
	for _, s := range got {
		bySensor[s.Sensor]++
	}
	if bySensor["a"] != 2 || bySensor["b"] != 1 {
		t.Fatalf("per-sensor=%v", bySensor)
	}
}

func TestWindowerOverlap(t *testing.T) {
	w := NewWindower(3, 1)
	var events []WindowEvent
	for _, s := range mkSamples("t", 0, 1, 2, 3, 4) {
		events = append(events, w.Feed(s)...)
	}
	if len(events) != 3 {
		t.Fatalf("events=%d want 3", len(events))
	}
	if events[0].Values[0] != 0 || events[2].Values[0] != 2 {
		t.Fatalf("window contents wrong: %v", events)
	}
	// Stride 3 (tumbling).
	w2 := NewWindower(3, 3)
	events = nil
	for _, s := range mkSamples("t", 0, 1, 2, 3, 4, 5) {
		events = append(events, w2.Feed(s)...)
	}
	if len(events) != 2 {
		t.Fatalf("tumbling events=%d want 2", len(events))
	}
}

func TestWindowerPerSensorIsolation(t *testing.T) {
	w := NewWindower(2, 2)
	var events []WindowEvent
	for i := 0; i < 2; i++ {
		events = append(events, w.Feed(Sample{Sensor: "a", Value: float64(i)})...)
		events = append(events, w.Feed(Sample{Sensor: "b", Value: float64(10 + i)})...)
	}
	if len(events) != 2 {
		t.Fatalf("events=%d want one per sensor", len(events))
	}
	for _, ev := range events {
		switch ev.Sensor {
		case "a":
			if ev.Values[0] != 0 {
				t.Fatalf("sensor a window=%v", ev.Values)
			}
		case "b":
			if ev.Values[0] != 10 {
				t.Fatalf("sensor b window=%v", ev.Values)
			}
		}
	}
}

func TestWindowerPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindower(0, 1)
}

func TestWindowsOperator(t *testing.T) {
	ctx := context.Background()
	in := Pump(ctx, NewSliceSource(mkSamples("t", 0, 1, 2, 3)), 0)
	events := Collect(Windows(ctx, in, 2, 1))
	if len(events) != 3 {
		t.Fatalf("events=%d", len(events))
	}
}

func TestDetectEmitsAlerts(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = 10 + rng.NormFloat64()
	}
	vals[250] = 30 // spike
	in := Pump(ctx, NewSliceSource(mkSamples("temp", vals...)), 0)
	trackers := map[string]*stats.EWMATracker{}
	alerts := Collect(Detect(ctx, in, func(sensor string, v float64) float64 {
		tr, ok := trackers[sensor]
		if !ok {
			tr = stats.NewEWMATracker(0.05)
			trackers[sensor] = tr
		}
		return tr.Add(v)
	}, 6))
	if len(alerts) == 0 {
		t.Fatal("no alerts for a 20σ spike")
	}
	found := false
	for _, a := range alerts {
		if a.Value == 30 && a.Sensor == "temp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("spike alert missing: %+v", alerts)
	}
}

func TestEndToEndPipeline(t *testing.T) {
	// Source → fan-out → (window branch, detect branch) → merge results.
	ctx := context.Background()
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i % 8)
	}
	in := Pump(ctx, NewSliceSource(mkSamples("s", vals...)), 8)
	branches := FanOut(ctx, in, 2)
	winDone := make(chan int)
	go func() {
		winDone <- len(Collect(Windows(ctx, branches[0], 8, 8)))
	}()
	alerts := Collect(Detect(ctx, branches[1], func(string, float64) float64 { return 0 }, 1))
	if n := <-winDone; n != 8 {
		t.Fatalf("windows=%d want 8", n)
	}
	if len(alerts) != 0 {
		t.Fatalf("alerts=%d want 0", len(alerts))
	}
}
