package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/pkg/hod/wire"
)

// Router is the cluster's coordinator and single proxy hop: it owns
// the membership table (nodes only hold pushed copies), proxies the
// whole public /v1 surface to the owning node of each plant, and
// drives the data movement that keeps placement true — moving plants
// over backup/restore when membership changes and seeding warm
// standbys over replicate. The pkg/hod client works against it
// unchanged: errors ride the typed envelope, failover surfaces as
// retriable 503s, and WebSocket/SSE subscriptions are forwarded to the
// owner with streaming flush. There is exactly one hop: client →
// router → owner; nodes never proxy to each other.
type Router struct {
	opts      RouterOptions
	mux       *http.ServeMux
	hc        *http.Client      // control plane: membership pushes, moves
	transport http.RoundTripper // data plane: proxied client requests

	// done ends background reconciliation (membership push retries);
	// closed by Close, which ServeListener's stop also invokes.
	done      chan struct{}
	closeOnce sync.Once

	// opMu serializes membership mutations and the data movement they
	// trigger — one join/drain/fail/rebalance at a time.
	opMu sync.Mutex

	mu         sync.RWMutex
	mem        wire.ClusterMembership
	plants     map[string]bool   // plant ids known to the cluster
	located    map[string]string // plant → node holding the live copy
	standbyLoc map[string]string // plant → node holding the warm copy
	moving     map[string]bool   // plants mid-move answer 503 failover
	proxies    map[string]*httputil.ReverseProxy
	parts      map[string]int // host → injected partition failures left
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Peers is the initial membership: every node the router starts
	// with, all active. IDs and addrs are required.
	Peers []wire.ClusterNode
	// Log, when non-nil, receives coordinator progress lines.
	Log func(format string, args ...any)
}

// NewRouter builds a router at epoch 1 over the given peers. Call
// Bootstrap to push membership and discover existing plants before
// serving traffic.
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one peer")
	}
	nodes := make([]wire.ClusterNode, len(opts.Peers))
	for i, p := range opts.Peers {
		if p.ID == "" || p.Addr == "" {
			return nil, fmt.Errorf("cluster: peer %d needs an id and an addr", i)
		}
		if _, err := url.Parse(p.Addr); err != nil {
			return nil, fmt.Errorf("cluster: peer %s: bad addr %q: %v", p.ID, p.Addr, err)
		}
		if p.State == "" {
			p.State = wire.NodeActive
		}
		nodes[i] = p
	}
	rt := &Router{
		opts:       opts,
		mux:        http.NewServeMux(),
		hc:         &http.Client{Timeout: 30 * time.Second},
		done:       make(chan struct{}),
		mem:        wire.ClusterMembership{Epoch: 1, Nodes: nodes},
		plants:     make(map[string]bool),
		located:    make(map[string]string),
		standbyLoc: make(map[string]string),
		moving:     make(map[string]bool),
		proxies:    make(map[string]*httputil.ReverseProxy),
		parts:      make(map[string]int),
	}
	// The data plane inherits DefaultTransport's pooling and timeout
	// tuning; a zero-value Transport would drop proxy settings and
	// idle-connection reuse under load.
	rt.transport = &partitionTransport{rt: rt, base: http.DefaultTransport.(*http.Transport).Clone()}
	rt.mount()
	return rt, nil
}

// Close stops the router's background reconciliation (membership push
// retries). Serving stops via the ServeListener stop func, which calls
// Close itself.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.done) })
}

func (rt *Router) logf(format string, args ...any) {
	if rt.opts.Log != nil {
		rt.opts.Log(format, args...)
		return
	}
	log.Printf("cluster: router: "+format, args...)
}

// mount wires the proxy surface (every V1Routes entry) plus the
// router's own coordinator API under /v1/cluster.
func (rt *Router) mount() {
	for _, sp := range V1Routes() {
		key := sp.Method + " " + sp.Pattern
		switch {
		case sp.Pattern == "/healthz":
			rt.mux.HandleFunc(key, func(w http.ResponseWriter, r *http.Request) {
				writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "router"})
			})
		case sp.Pattern == "/v1/plants" && sp.Method == "POST":
			rt.mux.HandleFunc(key, rt.handleRegister)
		case sp.Pattern == "/v1/plants" && sp.Method == "GET":
			rt.mux.HandleFunc(key, rt.handleList)
		case sp.Upgrade:
			sp := sp
			rt.mux.HandleFunc(key, func(w http.ResponseWriter, r *http.Request) {
				rt.handleSubscribe(w, r, sp)
			})
		default: // plant-scoped: proxy to the owner
			sp := sp
			rt.mux.HandleFunc(key, func(w http.ResponseWriter, r *http.Request) {
				rt.proxyPlant(w, r, r.PathValue("id"), sp)
			})
		}
	}
	rt.mux.HandleFunc("GET /v1/cluster/status", rt.handleStatus)
	rt.mux.HandleFunc("POST /v1/cluster/join", rt.handleJoin)
	rt.mux.HandleFunc("POST /v1/cluster/drain", rt.handleDrain)
	rt.mux.HandleFunc("POST /v1/cluster/fail", rt.handleFail)
	rt.mux.HandleFunc("POST /v1/cluster/rebalance", rt.handleRebalance)
}

// Handler returns the router's HTTP handler tree.
func (rt *Router) Handler() http.Handler { return rt.mux }

// ServeListener serves the router on ln in the background; the
// returned stop closes the HTTP listener.
func (rt *Router) ServeListener(ln net.Listener) (stop func()) {
	hs := &http.Server{Handler: rt.mux}
	go hs.Serve(ln)
	return func() { rt.Close(); hs.Close() }
}

// Bootstrap pushes the initial membership to every peer and adopts the
// plants they already hold (a router restart must not forget the
// fleet). Owners are assumed to sit where placement puts them.
func (rt *Router) Bootstrap() error {
	rt.opMu.Lock()
	defer rt.opMu.Unlock()
	mem := rt.membership()
	if err := rt.pushMembership(mem); err != nil {
		return err
	}
	for _, n := range mem.Nodes {
		if n.State == wire.NodeDown {
			continue
		}
		var pl wire.PlantList
		if err := rt.nodeGet(n, "/v1/plants", &pl); err != nil {
			return fmt.Errorf("cluster: listing plants on %s: %w", n.ID, err)
		}
		rt.mu.Lock()
		for _, id := range pl.Plants {
			rt.plants[id] = true
			if owner, ok := Owner(mem, id); ok {
				rt.located[id] = owner.ID
			}
		}
		rt.mu.Unlock()
	}
	return nil
}

func (rt *Router) membership() wire.ClusterMembership {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.mem
}

func (rt *Router) epoch() uint64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.mem.Epoch
}

func (rt *Router) plantList() []string {
	rt.mu.RLock()
	ids := make([]string, 0, len(rt.plants))
	for id := range rt.plants {
		ids = append(ids, id)
	}
	rt.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// failover answers a retriable 503 in the typed envelope: ownership is
// in flux and the client should simply try again.
func failover(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", "1")
	gateway.WriteError(w, http.StatusServiceUnavailable, wire.CodeFailover, fmt.Sprintf(format, args...))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// proxyRecorder wraps the client-facing ResponseWriter so the router
// knows whether a proxy attempt wrote anything — the line between
// "retry on the standby" and "the response is gone". It must keep
// hijack (WebSocket upgrades) and flush (SSE) working through the
// wrap.
type proxyRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
	err    error
}

func (p *proxyRecorder) WriteHeader(code int) {
	p.wrote = true
	p.status = code
	p.ResponseWriter.WriteHeader(code)
}

func (p *proxyRecorder) Write(b []byte) (int, error) {
	if !p.wrote {
		p.wrote = true
		p.status = http.StatusOK
	}
	return p.ResponseWriter.Write(b)
}

func (p *proxyRecorder) Flush() {
	p.wrote = true
	if f, ok := p.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (p *proxyRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h, ok := p.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("cluster: response writer cannot hijack")
	}
	p.wrote = true
	return h.Hijack()
}

// proxyFor returns (building and caching) the reverse proxy to one
// node. The Rewrite hook stamps the epoch at request time, so a proxy
// built at epoch 3 still routes correctly at epoch 7.
func (rt *Router) proxyFor(node wire.ClusterNode) *httputil.ReverseProxy {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if p, ok := rt.proxies[node.Addr]; ok {
		return p
	}
	target, err := url.Parse(node.Addr)
	if err != nil {
		return nil
	}
	p := &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(target)
			pr.Out.Host = target.Host
			pr.Out.Header.Set(EpochHeader, strconv.FormatUint(rt.epoch(), 10))
		},
		Transport:     rt.transport,
		FlushInterval: -1, // SSE: flush every frame
		ErrorHandler: func(w http.ResponseWriter, _ *http.Request, err error) {
			if rec, ok := w.(*proxyRecorder); ok {
				rec.err = err
				return
			}
			w.WriteHeader(http.StatusBadGateway)
		},
	}
	rt.proxies[node.Addr] = p
	return p
}

// tryProxy runs one proxy attempt; false means the node was
// unreachable before anything was written to the client.
func (rt *Router) tryProxy(rec *proxyRecorder, r *http.Request, node wire.ClusterNode) bool {
	p := rt.proxyFor(node)
	if p == nil {
		return false
	}
	rec.err = nil
	p.ServeHTTP(rec, r)
	return rec.err == nil
}

// proxyPlant routes one plant-scoped request: follower reads go to the
// warm standby, everything else to the owner. When the primary is
// unreachable and nothing reached the client yet, the analytic reads
// (sp.StaleFallback — never /backup or an upgrade) retry on the other
// replica with the internal header, marked with the stale header when
// the fallback copy is the standby's; writes answer a retriable 503
// and the client re-sends.
func (rt *Router) proxyPlant(w http.ResponseWriter, r *http.Request, plant string, sp RouteSpec) {
	rt.mu.RLock()
	moving := rt.moving[plant]
	mem := rt.mem
	rt.mu.RUnlock()
	if moving {
		failover(w, "plant %q is moving between nodes", plant)
		return
	}
	owner, ok := Owner(mem, plant)
	if !ok {
		failover(w, "no active nodes at epoch %d", mem.Epoch)
		return
	}
	primary := owner
	var secondary *wire.ClusterNode
	if sb, hasSb := Standby(mem, plant); hasSb {
		if FollowerRead(r.Method, r.URL.Path, r.URL.Query()) {
			primary, secondary = sb, &owner
		} else if r.Method == http.MethodGet && sp.StaleFallback {
			s := sb
			secondary = &s
		}
	}
	rec := &proxyRecorder{ResponseWriter: w}
	if rt.tryProxy(rec, r, primary) {
		return
	}
	if secondary != nil && !rec.wrote && r.Method == http.MethodGet {
		r2 := r.Clone(r.Context())
		r2.Header = r.Header.Clone()
		r2.Header.Set(InternalHeader, "1")
		if secondary.ID != owner.ID {
			// Falling back to the standby, not to the authoritative
			// owner of a follower read: flag the staleness.
			w.Header().Set(StaleHeader, "1")
		}
		if rt.tryProxy(rec, r2, *secondary) {
			return
		}
		w.Header().Del(StaleHeader)
	}
	if !rec.wrote {
		failover(w, "node %s unreachable; failover pending", primary.ID)
	}
}

// handleRegister sniffs the plant id out of the topology body (the one
// route whose id is not in the path), proxies the registration to the
// owning node, and — on success — seeds the warm standby.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		gateway.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, "reading topology: "+err.Error())
		return
	}
	var topo struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(buf, &topo); err != nil || topo.ID == "" {
		gateway.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, "bad topology: missing plant id")
		return
	}
	rt.mu.RLock()
	moving := rt.moving[topo.ID]
	mem := rt.mem
	rt.mu.RUnlock()
	if moving {
		failover(w, "plant %q is moving between nodes", topo.ID)
		return
	}
	owner, ok := Owner(mem, topo.ID)
	if !ok {
		failover(w, "no active nodes at epoch %d", mem.Epoch)
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(buf))
	r.ContentLength = int64(len(buf))
	rec := &proxyRecorder{ResponseWriter: w}
	if !rt.tryProxy(rec, r, owner) {
		if !rec.wrote {
			failover(w, "node %s unreachable; failover pending", owner.ID)
		}
		return
	}
	if rec.status == http.StatusCreated {
		rt.mu.Lock()
		rt.plants[topo.ID] = true
		rt.located[topo.ID] = owner.ID
		rt.mu.Unlock()
		go func() {
			if err := rt.ensureStandby(topo.ID); err != nil {
				rt.logf("seeding standby of plant %s: %v", topo.ID, err)
			}
		}()
	}
}

// handleList merges the plant lists of every reachable node; the
// standby's copy dedups against the owner's.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	mem := rt.membership()
	set := make(map[string]bool)
	for _, n := range mem.Nodes {
		if n.State == wire.NodeDown {
			continue
		}
		var pl wire.PlantList
		if err := rt.nodeGet(n, "/v1/plants", &pl); err != nil {
			continue // an unreachable node hides nothing the others hold
		}
		for _, id := range pl.Plants {
			set[id] = true
		}
	}
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, wire.PlantList{Plants: ids})
}

// handleSubscribe forwards a push subscription to the owner of the one
// plant its channels name. Wildcard and cross-plant subscriptions are
// refused: a routed stream follows exactly one plant's owner.
func (rt *Router) handleSubscribe(w http.ResponseWriter, r *http.Request, sp RouteSpec) {
	req, err := wire.DecodeSubscribeRequest(r.URL.Query())
	if err != nil {
		gateway.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	plant := ""
	for _, name := range req.Channels {
		ch, err := wire.ParseChannel(name)
		if err != nil {
			gateway.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
			return
		}
		if ch.Plant == "*" {
			gateway.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest,
				"wildcard channels are not routable in a cluster; subscribe to one plant")
			return
		}
		if plant == "" {
			plant = ch.Plant
		} else if plant != ch.Plant {
			gateway.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest,
				"channels span multiple plants; a routed subscription follows one plant's owner")
			return
		}
	}
	rt.proxyPlant(w, r, plant, sp)
}

// --- coordinator API -------------------------------------------------

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	mem := rt.membership()
	resp := wire.ClusterStatusResponse{Epoch: mem.Epoch, Nodes: mem.Nodes}
	for _, plant := range rt.plantList() {
		owner, standby, hasOwner, hasStandby := Placement(mem, plant)
		p := wire.ClusterPlacement{Plant: plant}
		if hasOwner {
			p.Owner = owner.ID
		}
		if hasStandby {
			p.Standby = standby.ID
		}
		resp.Placements = append(resp.Placements, p)
	}
	writeJSON(w, http.StatusOK, resp)
}

func decodeNodeReq(w http.ResponseWriter, r *http.Request) (wire.ClusterNodeRequest, bool) {
	var req wire.ClusterNodeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil || req.ID == "" {
		gateway.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, "bad node request: want {\"id\": ..., \"addr\": ...}")
		return req, false
	}
	return req, true
}

// handleJoin adds a node (or revives a drained/down one), bumps the
// epoch, and rebalances — rendezvous hashing moves ~1/N of the plants
// onto the new node and nothing else.
func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeNodeReq(w, r)
	if !ok {
		return
	}
	rt.opMu.Lock()
	defer rt.opMu.Unlock()
	mem, err := rt.mutateMembership(func(nodes []wire.ClusterNode) ([]wire.ClusterNode, error) {
		for i, n := range nodes {
			if n.ID == req.ID {
				nodes[i].State = wire.NodeActive
				if req.Addr != "" {
					nodes[i].Addr = req.Addr
				}
				return nodes, nil
			}
		}
		if req.Addr == "" {
			return nil, fmt.Errorf("joining a new node needs an addr")
		}
		return append(nodes, wire.ClusterNode{ID: req.ID, Addr: req.Addr, State: wire.NodeActive}), nil
	})
	if err != nil {
		gateway.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	if err := rt.pushMembership(mem); err != nil {
		rt.logf("membership push after join of %s: %v", req.ID, err)
	}
	moved := rt.rebalanceLocked()
	writeJSON(w, http.StatusOK, wire.ClusterAck{Epoch: mem.Epoch, Moved: moved})
}

// handleDrain marks a node draining — it takes no placements at the
// new epoch — and moves its plants off over backup/restore.
func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeNodeReq(w, r)
	if !ok {
		return
	}
	rt.opMu.Lock()
	defer rt.opMu.Unlock()
	mem, err := rt.mutateMembership(func(nodes []wire.ClusterNode) ([]wire.ClusterNode, error) {
		active, found := 0, false
		for i, n := range nodes {
			if n.ID == req.ID {
				nodes[i].State = wire.NodeDraining
				found = true
			} else if n.State == wire.NodeActive {
				active++
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown node %q", req.ID)
		}
		if active == 0 {
			return nil, fmt.Errorf("draining %s would leave no active nodes", req.ID)
		}
		return nodes, nil
	})
	if err != nil {
		gateway.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	if err := rt.pushMembership(mem); err != nil {
		rt.logf("membership push after drain of %s: %v", req.ID, err)
	}
	moved := rt.rebalanceLocked()
	writeJSON(w, http.StatusOK, wire.ClusterAck{Epoch: mem.Epoch, Moved: moved})
}

// handleFail marks a node down after a crash. No data moves: for every
// plant the dead node owned, the warm standby is already the top-ranked
// survivor, and the membership push tells it to stop tailing and serve.
// The router then re-seeds standbys for plants that lost a replica.
func (rt *Router) handleFail(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeNodeReq(w, r)
	if !ok {
		return
	}
	rt.opMu.Lock()
	defer rt.opMu.Unlock()
	oldMem := rt.membership()
	mem, err := rt.mutateMembership(func(nodes []wire.ClusterNode) ([]wire.ClusterNode, error) {
		for i, n := range nodes {
			if n.ID == req.ID {
				nodes[i].State = wire.NodeDown
				return nodes, nil
			}
		}
		return nil, fmt.Errorf("unknown node %q", req.ID)
	})
	if err != nil {
		gateway.WriteError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	if err := rt.pushMembership(mem); err != nil {
		rt.logf("membership push after failure of %s: %v", req.ID, err)
	}
	promoted := 0
	for _, plant := range rt.plantList() {
		owner, hasOwner := Owner(mem, plant)
		if !hasOwner {
			continue
		}
		rt.mu.Lock()
		prev := rt.located[plant]
		if prev != owner.ID {
			rt.located[plant] = owner.ID
			promoted++
		}
		rt.mu.Unlock()
		// A lost replica — the dead node was this plant's owner or its
		// standby under the old placement — means the survivor runs
		// unprotected until a fresh standby seeds.
		oldOwner, _, _, _ := Placement(oldMem, plant)
		oldStandby, hadStandby := Standby(oldMem, plant)
		if oldOwner.ID == req.ID || (hadStandby && oldStandby.ID == req.ID) {
			if err := rt.ensureStandby(plant); err != nil {
				rt.logf("re-seeding standby of plant %s after failure of %s: %v", plant, req.ID, err)
			}
		}
	}
	writeJSON(w, http.StatusOK, wire.ClusterAck{Epoch: mem.Epoch, Moved: promoted})
}

func (rt *Router) handleRebalance(w http.ResponseWriter, r *http.Request) {
	rt.opMu.Lock()
	defer rt.opMu.Unlock()
	moved := rt.rebalanceLocked()
	writeJSON(w, http.StatusOK, wire.ClusterAck{Epoch: rt.epoch(), Moved: moved})
}

// mutateMembership applies fn to a copy of the node table, bumps the
// epoch, and installs the result. Callers hold opMu.
func (rt *Router) mutateMembership(fn func([]wire.ClusterNode) ([]wire.ClusterNode, error)) (wire.ClusterMembership, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	nodes, err := fn(append([]wire.ClusterNode(nil), rt.mem.Nodes...))
	if err != nil {
		return wire.ClusterMembership{}, err
	}
	rt.mem = wire.ClusterMembership{Epoch: rt.mem.Epoch + 1, Nodes: nodes}
	return rt.mem, nil
}

// pushMembership sends the table to every node that could be serving.
// An unreachable down node is expected; an unreachable live one is
// returned so join/bootstrap surface it — and retried in the
// background, because clusterGate refuses every proxied request whose
// stamped epoch differs from the node's view: a single missed push
// would otherwise wedge that node at the stale epoch until the next
// membership change.
func (rt *Router) pushMembership(mem wire.ClusterMembership) error {
	var firstErr error
	for _, n := range mem.Nodes {
		if n.State == wire.NodeDown {
			continue
		}
		if err := rt.nodePost(n, "/v1/cluster/membership", mem, nil); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: pushing membership to %s: %w", n.ID, err)
			}
			rt.retryMembershipPush(n, mem)
		}
	}
	return firstErr
}

// retryMembershipPush keeps re-pushing mem to one node in the
// background until it acks. The retrier gives up when the router's
// epoch moves past mem.Epoch (the newer push spawns its own retrier)
// or the router shuts down. pushMembership runs under opMu once per
// epoch, so at most one retrier exists per (node, epoch).
func (rt *Router) retryMembershipPush(n wire.ClusterNode, mem wire.ClusterMembership) {
	go func() {
		backoff := 50 * time.Millisecond
		for {
			select {
			case <-rt.done:
				return
			case <-time.After(backoff):
			}
			if backoff < time.Second {
				backoff *= 2
			}
			if rt.epoch() != mem.Epoch {
				return
			}
			if err := rt.nodePost(n, "/v1/cluster/membership", mem, nil); err == nil {
				rt.logf("membership epoch %d reached %s after retry", mem.Epoch, n.ID)
				return
			}
		}
	}()
}

// rebalanceLocked moves every plant whose owner under the current
// membership differs from where its live copy sits, then trues up warm
// standbys. Callers hold opMu.
func (rt *Router) rebalanceLocked() int {
	mem := rt.membership()
	moved := 0
	for _, plant := range rt.plantList() {
		owner, ok := Owner(mem, plant)
		if !ok {
			continue
		}
		rt.mu.RLock()
		cur := rt.located[plant]
		rt.mu.RUnlock()
		if cur == "" {
			rt.mu.Lock()
			rt.located[plant] = owner.ID
			rt.mu.Unlock()
			cur = owner.ID
		}
		if cur != owner.ID {
			if err := rt.movePlant(plant, cur, owner, mem); err != nil {
				rt.logf("moving plant %s from %s to %s: %v", plant, cur, owner.ID, err)
				continue
			}
			moved++
		}
		sb, hasSb := Standby(mem, plant)
		rt.mu.RLock()
		sbCur := rt.standbyLoc[plant]
		rt.mu.RUnlock()
		if hasSb && sbCur != sb.ID {
			if err := rt.ensureStandby(plant); err != nil {
				rt.logf("seeding standby of plant %s: %v", plant, err)
			}
		}
	}
	return moved
}

// movePlant relocates a plant's live copy: gate client traffic, drain
// the old owner's queues, backup there, restore on the new owner,
// release the old copy. The backup/restore framing is the public one;
// the internal header bypasses ownership gates on both sides.
func (rt *Router) movePlant(plant, fromID string, to wire.ClusterNode, mem wire.ClusterMembership) error {
	from, ok := NodeByID(mem, fromID)
	if !ok {
		return fmt.Errorf("cluster: plant %s located on unknown node %q", plant, fromID)
	}
	rt.setMoving(plant, true)
	defer rt.setMoving(plant, false)

	// The new owner may hold a stale standby copy; restore needs a
	// clean slate. Release is idempotent.
	if err := rt.nodePost(to, "/v1/cluster/release", wire.ClusterPlantRequest{Plant: plant}, nil); err != nil {
		return fmt.Errorf("releasing stale copy on %s: %w", to.ID, err)
	}
	// Wait for the old owner to fold everything it acked — the backup
	// must capture every 202'd batch.
	rt.waitDrained(from, plant, 5*time.Second)

	backup, err := rt.fetchBackup(from, plant)
	if err != nil {
		return err
	}
	req, err := http.NewRequest("POST", to.Addr+"/v1/plants/"+url.PathEscape(plant)+"/restore", bytes.NewReader(backup))
	if err != nil {
		return err
	}
	req.Header.Set(InternalHeader, "1")
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rt.hc.Do(req)
	if err != nil {
		return fmt.Errorf("restoring on %s: %w", to.ID, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("restoring on %s: status %d", to.ID, resp.StatusCode)
	}
	if err := rt.nodePost(from, "/v1/cluster/release", wire.ClusterPlantRequest{Plant: plant}, nil); err != nil {
		rt.logf("releasing plant %s on %s after move: %v", plant, from.ID, err)
	}
	rt.mu.Lock()
	rt.located[plant] = to.ID
	delete(rt.standbyLoc, plant)
	rt.mu.Unlock()
	return nil
}

// ensureStandby seeds the warm standby of one plant under the current
// placement (a no-op cluster of one has none).
func (rt *Router) ensureStandby(plant string) error {
	mem := rt.membership()
	sb, ok := Standby(mem, plant)
	if !ok {
		return nil
	}
	if err := rt.nodePost(sb, "/v1/cluster/replicate", wire.ClusterPlantRequest{Plant: plant}, nil); err != nil {
		return err
	}
	rt.mu.Lock()
	rt.standbyLoc[plant] = sb.ID
	rt.mu.Unlock()
	return nil
}

// waitDrained polls the node's stats until every shard queue is empty
// (or the timeout passes — the move proceeds with what drained).
func (rt *Router) waitDrained(n wire.ClusterNode, plant string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var st wire.StatsResponse
		if err := rt.nodeGet(n, "/v1/plants/"+url.PathEscape(plant)+"/stats", &st); err != nil {
			return // unreachable: the backup fetch will surface it
		}
		idle := true
		for _, d := range st.QueueDepths {
			if d > 0 {
				idle = false
				break
			}
		}
		if idle {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (rt *Router) fetchBackup(n wire.ClusterNode, plant string) ([]byte, error) {
	req, err := http.NewRequest("GET", n.Addr+"/v1/plants/"+url.PathEscape(plant)+"/backup", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(InternalHeader, "1")
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("backup of %s from %s: %w", plant, n.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("backup of %s from %s: status %d", plant, n.ID, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 1<<30))
}

func (rt *Router) setMoving(plant string, v bool) {
	rt.mu.Lock()
	if v {
		rt.moving[plant] = true
	} else {
		delete(rt.moving, plant)
	}
	rt.mu.Unlock()
}

// nodeGet / nodePost are the router's control-plane calls: internal
// header set, JSON bodies, non-2xx is an error.
func (rt *Router) nodeGet(n wire.ClusterNode, path string, out any) error {
	req, err := http.NewRequest("GET", n.Addr+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set(InternalHeader, "1")
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (rt *Router) nodePost(n wire.ClusterNode, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest("POST", n.Addr+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set(InternalHeader, "1")
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// PartitionNext arms the data-plane transport to fail the next n
// proxied requests to nodeID as if the network path were cut — the
// scenario engine's router_partition fault. Control-plane calls
// (membership, moves) are unaffected.
func (rt *Router) PartitionNext(nodeID string, n int) {
	node, ok := NodeByID(rt.membership(), nodeID)
	if !ok {
		return
	}
	u, err := url.Parse(node.Addr)
	if err != nil {
		return
	}
	rt.mu.Lock()
	rt.parts[u.Host] += n
	rt.mu.Unlock()
}

func (rt *Router) takePartition(host string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.parts[host] > 0 {
		rt.parts[host]--
		return true
	}
	return false
}

// partitionTransport injects deterministic connect failures for the
// router_partition fault; otherwise it is a plain pooled transport.
type partitionTransport struct {
	rt   *Router
	base http.RoundTripper
}

func (t *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.rt.takePartition(req.URL.Host) {
		return nil, fmt.Errorf("cluster: injected partition to %s", req.URL.Host)
	}
	return t.base.RoundTrip(req)
}
