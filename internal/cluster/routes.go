package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/url"
	"strings"
)

// Cluster request headers. The router stamps every proxied request
// with the epoch it routed under, so a node that has moved on answers
// 503 failover instead of serving stale ownership; the internal header
// marks node-to-node and coordinator traffic, which bypasses ownership
// gating (backups during a move, WAL tailing by the standby).
const (
	EpochHeader    = "X-Hod-Cluster-Epoch"
	InternalHeader = "X-Hod-Cluster-Internal"
	WalFirstHeader = "X-Hod-Wal-First"
	WalLastHeader  = "X-Hod-Wal-Last"
	// StaleHeader marks a response the router served from the warm
	// standby because the owner was unreachable — an implicit stale
	// read the client did not opt into with ?consistency=follower.
	StaleHeader = "X-Hod-Cluster-Stale"
)

// ConsistencyParam is the query knob that opts a /cube or /rollup read
// into follower consistency: the router sends it to the warm standby,
// which may trail the owner by the unshipped WAL tail.
const (
	ConsistencyParam    = "consistency"
	ConsistencyFollower = "follower"
)

// RouteSpec describes one route of the v1 surface the way the routing
// tier needs it: where the plant id lives, whether the warm standby
// may serve it, and whether it upgrades to a push stream.
type RouteSpec struct {
	Method  string
	Pattern string
	// Open routes skip the auth middleware chain (liveness only).
	Open bool
	// PlantScoped routes carry the {id} wildcard; the router proxies
	// them to the plant's owner.
	PlantScoped bool
	// Follower routes may be served by the warm standby under the
	// explicit ?consistency=follower knob.
	Follower bool
	// StaleFallback routes may be retried on the warm standby when the
	// owner is unreachable and nothing reached the client yet — the
	// analytic reads, where a slightly stale answer beats a 503 while
	// failover settles. Never /backup: a stale backup restored later
	// would silently lose acked data.
	StaleFallback bool
	// Upgrade routes are the push endpoints (WebSocket / SSE); the
	// router forwards them to the owner with streaming flush.
	Upgrade bool
	// Internal routes are the node-side cluster control surface —
	// membership pushes, replication, WAL tailing. They demand the
	// internal header and are never proxied by the router.
	Internal bool
}

// V1Routes is the public v1 surface — the route table of the serving
// layer, mirrored here so the router provably proxies every route. A
// test in internal/server pins its own table against this list.
func V1Routes() []RouteSpec {
	return []RouteSpec{
		{Method: "GET", Pattern: "/healthz", Open: true},
		{Method: "POST", Pattern: "/v1/plants"},
		{Method: "GET", Pattern: "/v1/plants"},
		{Method: "POST", Pattern: "/v1/plants/{id}/ingest", PlantScoped: true},
		{Method: "POST", Pattern: "/v1/plants/{id}/jobs", PlantScoped: true},
		{Method: "GET", Pattern: "/v1/plants/{id}/report", PlantScoped: true, StaleFallback: true},
		{Method: "GET", Pattern: "/v1/plants/{id}/rollup", PlantScoped: true, Follower: true, StaleFallback: true},
		{Method: "GET", Pattern: "/v1/plants/{id}/cube", PlantScoped: true, Follower: true, StaleFallback: true},
		{Method: "GET", Pattern: "/v1/plants/{id}/alerts", PlantScoped: true, StaleFallback: true},
		{Method: "GET", Pattern: "/v1/plants/{id}/stats", PlantScoped: true, StaleFallback: true},
		{Method: "GET", Pattern: "/v1/plants/{id}/backup", PlantScoped: true},
		{Method: "POST", Pattern: "/v1/plants/{id}/restore", PlantScoped: true},
		{Method: "GET", Pattern: "/v1/subscribe", Upgrade: true},
		{Method: "GET", Pattern: "/v1/events", Upgrade: true},
	}
}

// NodeRoutes is the node-side cluster control surface, mounted by a
// hodserve running with a ClusterNodeID in addition to V1Routes.
func NodeRoutes() []RouteSpec {
	return []RouteSpec{
		{Method: "GET", Pattern: "/v1/cluster/status", Internal: true},
		{Method: "POST", Pattern: "/v1/cluster/membership", Internal: true},
		{Method: "POST", Pattern: "/v1/cluster/replicate", Internal: true},
		{Method: "POST", Pattern: "/v1/cluster/release", Internal: true},
		{Method: "GET", Pattern: "/v1/plants/{id}/wal", PlantScoped: true, Internal: true},
	}
}

// FollowerRead reports whether a request explicitly opts into follower
// consistency on a route the standby may serve (GET /cube, /rollup).
func FollowerRead(method, path string, query url.Values) bool {
	if method != "GET" || query.Get(ConsistencyParam) != ConsistencyFollower {
		return false
	}
	return strings.HasSuffix(path, "/cube") || strings.HasSuffix(path, "/rollup")
}

// shipHeader is [seq u64][len u32], little-endian — the framing of the
// WAL tail response body (GET /v1/plants/{id}/wal).
const shipHeader = 8 + 4

// maxShipFrame bounds one shipped payload so a corrupt length cannot
// make the standby allocate gigabytes; WAL frames share the same cap.
const maxShipFrame = 256 << 20

// WriteShipFrame appends one WAL frame to a tail response body.
func WriteShipFrame(w io.Writer, seq uint64, payload []byte) error {
	var hdr [shipHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadShipFrame reads one WAL frame from a tail response body,
// returning io.EOF at a clean frame boundary and ErrUnexpectedEOF on a
// torn one.
func ReadShipFrame(r io.Reader) (seq uint64, payload []byte, err error) {
	var hdr [shipHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	seq = binary.LittleEndian.Uint64(hdr[0:8])
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > maxShipFrame {
		return 0, nil, fmt.Errorf("cluster: ship frame seq %d claims %d bytes", seq, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("cluster: torn ship frame seq %d: %w", seq, err)
	}
	return seq, payload, nil
}
