// Router integration tests: real hodserve nodes behind a real Router,
// driven by the unchanged pkg/hod client. External test package so the
// serving layer can be imported without a cycle (server imports
// cluster for the gate and the route table).
package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/pkg/hod"
	"repro/pkg/hod/wire"
)

type testNode struct {
	node wire.ClusterNode
	srv  *server.Server
	stop func()
}

// startNodes boots n cluster nodes (own data dirs, ids n1..nN), each
// serving on a loopback listener.
func startNodes(t *testing.T, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i+1)
		srv := server.New(server.Options{
			Shards: 2, QueueDepth: 64, DataDir: t.TempDir(), Fsync: "none",
			SnapshotInterval: time.Hour, ClusterNodeID: id,
		})
		if err := srv.Open(); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			t.Fatal(err)
		}
		tn := &testNode{
			node: wire.ClusterNode{ID: id, Addr: "http://" + ln.Addr().String()},
			srv:  srv,
			stop: srv.ServeListener(ln),
		}
		t.Cleanup(func() { tn.stop(); tn.srv.Close() })
		nodes = append(nodes, tn)
	}
	return nodes
}

// startRouter builds a bootstrapped router over the given peers and
// serves it; returns the router and its base URL.
func startRouter(t *testing.T, peers []*testNode) (*cluster.Router, string) {
	t.Helper()
	nodes := make([]wire.ClusterNode, len(peers))
	for i, p := range peers {
		nodes[i] = p.node
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{Peers: nodes})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.ServeListener(ln))
	return rt, "http://" + ln.Addr().String()
}

// simPlant returns a small deterministic topology + trace for one plant.
func simPlant(t *testing.T, seed int64, id string) (wire.Topology, []wire.Record) {
	t.Helper()
	p, err := hod.Simulate(hod.SimConfig{
		Seed: seed, Lines: 2, MachinesPerLine: 2, JobsPerMachine: 2,
		PhaseSamples: 8, FaultRate: 0.3, MeasurementErrorRate: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p.Topology(id), p.Records()
}

// placementOf asks the router where a plant lives.
func placementOf(t *testing.T, ctx context.Context, c *hod.Client, plant string) wire.ClusterPlacement {
	t.Helper()
	st, err := c.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range st.Placements {
		if p.Plant == plant {
			return p
		}
	}
	t.Fatalf("router status has no placement for plant %q: %+v", plant, st.Placements)
	return wire.ClusterPlacement{}
}

func nodeByID(t *testing.T, nodes []*testNode, id string) *testNode {
	t.Helper()
	for _, n := range nodes {
		if n.node.ID == id {
			return n
		}
	}
	t.Fatalf("no test node %q", id)
	return nil
}

// getJSON does a raw GET (optionally with the internal header) and
// decodes the JSON body into out; non-2xx statuses come back as errors.
func getJSON(url string, internal bool, out any) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if internal {
		req.Header.Set(cluster.InternalHeader, "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

// waitReplicated polls the standby's follower-read cube until it equals
// the owner's authoritative cube — the standby has drained the WAL tail.
func waitReplicated(t *testing.T, ownerAddr, standbyAddr, plant string) wire.CubeResponse {
	t.Helper()
	var want wire.CubeResponse
	if err := getJSON(ownerAddr+"/v1/plants/"+plant+"/cube", false, &want); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		var got wire.CubeResponse
		err := getJSON(standbyAddr+"/v1/plants/"+plant+"/cube?consistency=follower", false, &got)
		if err == nil && reflect.DeepEqual(got, want) {
			return want
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby cube never converged: %v\nowner:   %+v\nstandby: %+v", err, want, got)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterProxiesV1Surface drives the public surface through the
// router and pins two contracts: every answer is byte-equal to asking
// the owning node directly (single proxy hop, no rewriting), and the
// router and every node hold the same epoch and compute the same owner.
func TestRouterProxiesV1Surface(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	nodes := startNodes(t, 3)
	_, base := startRouter(t, nodes)
	client := hod.NewClient(base)

	const plant = "plant-surface"
	topo, recs := simPlant(t, 21, plant)
	if _, err := client.Register(ctx, topo); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Ingest(ctx, plant, recs); err != nil {
		t.Fatal(err)
	}
	if err := client.WaitDrained(ctx, plant, uint64(len(recs))); err != nil {
		t.Fatal(err)
	}
	if plants, err := client.Plants(ctx); err != nil || len(plants) != 1 || plants[0] != plant {
		t.Fatalf("Plants() through router = %v, %v", plants, err)
	}

	pl := placementOf(t, ctx, client, plant)
	owner := nodeByID(t, nodes, pl.Owner)
	direct := hod.NewClient(owner.node.Addr)

	// Every plant-scoped read through the router equals the owner's
	// direct answer.
	viaRouter, err := client.Report(ctx, plant, hod.ReportQuery{})
	if err != nil {
		t.Fatal(err)
	}
	viaOwner, err := direct.Report(ctx, plant, hod.ReportQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaRouter, viaOwner) {
		t.Fatal("report through router differs from owner's direct report")
	}
	for _, q := range []string{"machine", "line", "plant"} {
		a, err := client.Rollup(ctx, plant, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := direct.Rollup(ctx, plant, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("rollup %q through router differs from direct", q)
		}
	}
	a, err := client.Cube(ctx, plant, hod.CubeQuery{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := direct.Cube(ctx, plant, hod.CubeQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cube through router differs from direct")
	}
	sa, err := client.Stats(ctx, plant)
	if err != nil || sa.ReceivedRecords != uint64(len(recs)) {
		t.Fatalf("stats through router: %+v, %v", sa, err)
	}

	// Epoch agreement: the router and every node report the same epoch,
	// and each node's locally computed placement matches the router's.
	rst, err := client.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		var nst wire.ClusterStatusResponse
		if err := getJSON(n.node.Addr+"/v1/cluster/status", true, &nst); err != nil {
			t.Fatal(err)
		}
		if nst.Epoch != rst.Epoch {
			t.Fatalf("node %s at epoch %d, router at %d", n.node.ID, nst.Epoch, rst.Epoch)
		}
		o, ok := cluster.Owner(wire.ClusterMembership{Epoch: nst.Epoch, Nodes: nst.Nodes}, plant)
		if !ok || o.ID != pl.Owner {
			t.Fatalf("node %s computes owner %s, router says %s", n.node.ID, o.ID, pl.Owner)
		}
	}

	// A plant nobody registered is a clean 404 through the proxy, not a
	// routing error.
	if _, err := client.Stats(ctx, "plant-ghost"); !errors.Is(err, hod.ErrUnknownPlant) {
		t.Fatalf("unknown plant through router: %v", err)
	}
}

// TestRouterFollowerReadAndFailover pins the replica path end to end:
// an explicit follower read is served by the warm standby; with the
// owner unreachable, plain GETs fall back to the standby (stale read)
// while writes surface the retriable failover envelope; and after the
// router declares the node failed, the promoted standby serves reads
// and writes as the new owner.
func TestRouterFollowerReadAndFailover(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	nodes := startNodes(t, 2)
	_, base := startRouter(t, nodes)
	client := hod.NewClient(base)

	const plant = "plant-fr"
	topo, recs := simPlant(t, 22, plant)
	if _, err := client.Register(ctx, topo); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Ingest(ctx, plant, recs); err != nil {
		t.Fatal(err)
	}
	if err := client.WaitDrained(ctx, plant, uint64(len(recs))); err != nil {
		t.Fatal(err)
	}

	pl := placementOf(t, ctx, client, plant)
	if pl.Standby == "" {
		t.Fatalf("two-node cluster seeded no standby: %+v", pl)
	}
	owner := nodeByID(t, nodes, pl.Owner)
	standby := nodeByID(t, nodes, pl.Standby)
	ownerCube := waitReplicated(t, owner.node.Addr, standby.node.Addr, plant)

	// Follower read through the router answers from the (converged)
	// standby and equals the owner's cube.
	var follower wire.CubeResponse
	if err := getJSON(base+"/v1/plants/"+plant+"/cube?consistency=follower", false, &follower); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(follower, ownerCube) {
		t.Fatal("follower read through router differs from owner cube")
	}
	report, err := client.Report(ctx, plant, hod.ReportQuery{})
	if err != nil {
		t.Fatal(err)
	}

	// With the owner up, responses carry no staleness flag.
	fresh, err := http.Get(base + "/v1/plants/" + plant + "/report")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, fresh.Body)
	fresh.Body.Close()
	if fresh.Header.Get(cluster.StaleHeader) != "" {
		t.Fatalf("owner-served report carries %s", cluster.StaleHeader)
	}

	// Owner drops off the network: idempotent analytic reads fall back
	// to the standby under the explicit stale-read contract, flagged
	// with the stale header...
	owner.stop()
	got, err := client.Report(ctx, plant, hod.ReportQuery{})
	if err != nil {
		t.Fatalf("report with owner down (stale fallback): %v", err)
	}
	if !reflect.DeepEqual(got, report) {
		t.Fatal("stale-fallback report differs from pre-failure report")
	}
	stale, err := http.Get(base + "/v1/plants/" + plant + "/report")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, stale.Body)
	stale.Body.Close()
	if stale.StatusCode != http.StatusOK || stale.Header.Get(cluster.StaleHeader) != "1" {
		t.Fatalf("stale fallback report: status %d, %s=%q, want 200 flagged stale",
			stale.StatusCode, cluster.StaleHeader, stale.Header.Get(cluster.StaleHeader))
	}
	// .../backup never falls back — a stale backup restored later would
	// silently lose acked data...
	bk, err := http.Get(base + "/v1/plants/" + plant + "/backup")
	if err != nil {
		t.Fatal(err)
	}
	bkBody, _ := io.ReadAll(bk.Body)
	bk.Body.Close()
	if bk.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("backup with owner down = %d, want 503 failover", bk.StatusCode)
	}
	var bkEnv wire.ErrorEnvelope
	if err := json.Unmarshal(bkBody, &bkEnv); err != nil || bkEnv.Err.Code != wire.CodeFailover {
		t.Fatalf("backup with owner down: not a failover envelope: %s", bkBody)
	}
	// ...while writes answer the retriable failover envelope.
	noRetry := hod.NewClient(base, hod.WithMaxRetries(0))
	if _, err := noRetry.Ingest(ctx, plant, recs[:1]); !errors.Is(err, hod.ErrFailover) {
		t.Fatalf("write with owner down = %v, want ErrFailover", err)
	}

	// The router declares the node failed: the standby promotes with no
	// data movement and serves reads and writes as the new owner.
	ack, err := client.ClusterFail(ctx, pl.Owner)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Epoch < 2 {
		t.Fatalf("fail did not bump epoch: %+v", ack)
	}
	pl2 := placementOf(t, ctx, client, plant)
	if pl2.Owner != pl.Standby {
		t.Fatalf("after fail, owner = %s, want promoted standby %s", pl2.Owner, pl.Standby)
	}
	got, err = client.Report(ctx, plant, hod.ReportQuery{})
	if err != nil {
		t.Fatalf("report after promotion: %v", err)
	}
	if !reflect.DeepEqual(got, report) {
		t.Fatal("promoted standby's report differs from the owner's pre-failure report")
	}
	if _, err := client.Ingest(ctx, plant, recs[:1]); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
}

// TestRouterRetriesMissedMembershipPush pins the reconciliation loop:
// clusterGate refuses every proxied request whose stamped epoch
// differs from the node's view, so a node that misses one membership
// push (transient listener outage) would answer 503 forever. The
// router must keep re-pushing in the background until the node acks.
func TestRouterRetriesMissedMembershipPush(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	nodes := startNodes(t, 3)
	_, base := startRouter(t, nodes[:2]) // n3 joins later
	client := hod.NewClient(base)

	// n2's listener goes away, so it misses the push the join of n3
	// triggers.
	addr := strings.TrimPrefix(nodes[1].node.Addr, "http://")
	nodes[1].stop()
	if _, err := client.ClusterJoin(ctx, nodes[2].node.ID, nodes[2].node.Addr); err != nil {
		t.Fatal(err)
	}
	want, err := client.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// n2 comes back on the same address. No further membership change
	// happens: only the background retrier can deliver the missed epoch.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nodes[1].srv.ServeListener(ln))
	deadline := time.Now().Add(15 * time.Second)
	for {
		var st wire.ClusterStatusResponse
		err := getJSON(nodes[1].node.Addr+"/v1/cluster/status", true, &st)
		if err == nil && st.Epoch == want.Epoch {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s never caught up to epoch %d (last status: %+v, err %v)",
				nodes[1].node.ID, want.Epoch, st, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterJoinDrainMovesPlants grows then shrinks a live cluster and
// pins the data path of rebalancing: joins move only plants the new
// node wins, drains empty the leaving node, and every plant's report is
// unchanged through both — the backup/restore move framing is lossless.
func TestRouterJoinDrainMovesPlants(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	nodes := startNodes(t, 3)
	_, base := startRouter(t, nodes[:2]) // n3 starts outside the cluster
	client := hod.NewClient(base)

	plants := []string{"plant-a", "plant-b", "plant-c", "plant-d", "plant-e", "plant-f"}
	reports := make(map[string]wire.ReportResponse)
	for i, id := range plants {
		topo, recs := simPlant(t, int64(30+i), id)
		if _, err := client.Register(ctx, topo); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Ingest(ctx, id, recs); err != nil {
			t.Fatal(err)
		}
		if err := client.WaitDrained(ctx, id, uint64(len(recs))); err != nil {
			t.Fatal(err)
		}
		rep, err := client.Report(ctx, id, hod.ReportQuery{})
		if err != nil {
			t.Fatal(err)
		}
		reports[id] = rep
	}
	checkAll := func(stage string) {
		t.Helper()
		for _, id := range plants {
			got, err := client.Report(ctx, id, hod.ReportQuery{})
			if err != nil {
				t.Fatalf("%s: report %s: %v", stage, id, err)
			}
			if !reflect.DeepEqual(got, reports[id]) {
				t.Fatalf("%s: plant %s report changed", stage, id)
			}
		}
	}

	before, err := client.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := client.ClusterJoin(ctx, nodes[2].node.ID, nodes[2].node.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Epoch <= before.Epoch {
		t.Fatalf("join did not bump epoch: %d -> %d", before.Epoch, ack.Epoch)
	}
	after, err := client.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, p := range after.Placements {
		for _, q := range before.Placements {
			if q.Plant == p.Plant && q.Owner != p.Owner {
				moved++
				if p.Owner != nodes[2].node.ID {
					t.Fatalf("join moved plant %s to %s, not the joining node", p.Plant, p.Owner)
				}
			}
		}
	}
	if moved != ack.Moved {
		t.Fatalf("join ack says %d moved, status shows %d", ack.Moved, moved)
	}
	checkAll("after join")

	// A balanced cluster has nothing to rebalance.
	if ack, err := client.ClusterRebalance(ctx); err != nil || ack.Moved != 0 {
		t.Fatalf("rebalance of balanced cluster moved %d, %v", ack.Moved, err)
	}

	drainID := nodes[0].node.ID
	if _, err := client.ClusterDrain(ctx, drainID); err != nil {
		t.Fatal(err)
	}
	final, err := client.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range final.Placements {
		if p.Owner == drainID || p.Standby == drainID {
			t.Fatalf("drained node %s still seated for plant %s: %+v", drainID, p.Plant, p)
		}
	}
	for _, n := range final.Nodes {
		if n.ID == drainID && n.State != wire.NodeDraining {
			t.Fatalf("drained node state = %s", n.State)
		}
	}
	checkAll("after drain")
}

// TestRouterRejectsUnroutableSubscriptions pins the push-route policy:
// wildcard and cross-plant subscriptions are refused with 400s that say
// why, and a single-plant SSE subscription streams through the proxy.
func TestRouterRejectsUnroutableSubscriptions(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	nodes := startNodes(t, 2)
	_, base := startRouter(t, nodes)
	client := hod.NewClient(base)

	for _, id := range []string{"plant-x", "plant-y"} {
		topo, _ := simPlant(t, 40, id)
		if _, err := client.Register(ctx, topo); err != nil {
			t.Fatal(err)
		}
	}

	expect400 := func(query, wantSubstr string) {
		t.Helper()
		resp, err := http.Get(base + "/v1/events?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/events?%s = %d, want 400", query, resp.StatusCode)
		}
		var env wire.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Err.Code != wire.CodeBadRequest {
			t.Fatalf("GET /v1/events?%s: not a typed envelope: %s", query, body)
		}
		if !strings.Contains(env.Err.Message, wantSubstr) {
			t.Fatalf("GET /v1/events?%s: message %q missing %q", query, env.Err.Message, wantSubstr)
		}
	}
	expect400("channel=alerts:*", "not routable")
	expect400("channel=alerts:plant-x&channel=cube:plant-y", "span multiple plants")

	// A single-plant SSE subscription proxies through with streaming
	// headers intact.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events?channel=alerts:plant-x", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("SSE subscribe through router = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("SSE content type through router = %q", ct)
	}
}
