// Package cluster is the horizontal-scale layer of the fleet serving
// stack: rendezvous-hash placement of plants onto nodes under an
// epoch-versioned membership table, a single-hop routing proxy that
// forwards the whole /v1 surface to the owning node, and the
// coordinator that moves plants (backup → restore) and seeds warm
// standbys (snapshot + WAL tailing) when membership changes.
//
// Placement is a pure function of (membership, plant id): a router and
// a node holding the same epoch can never disagree on an owner, and no
// placement state needs replicating besides the table itself.
package cluster

import (
	"hash/fnv"

	"repro/pkg/hod/wire"
)

// score is the rendezvous (highest-random-weight) score of one
// (node, plant) pair: a stable 64-bit hash, independent of the order
// nodes appear in the membership table.
func score(nodeID, plant string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(nodeID))
	h.Write([]byte{0x1f}) // unit separator: "ab"+"c" must not collide with "a"+"bc"
	h.Write([]byte(plant))
	return h.Sum64()
}

// better reports whether candidate (id a, score sa) beats the current
// best (id b, score sb). Ties break on the lexicographically smaller
// id so every replica of the table ranks identically.
func better(a string, sa uint64, b string, sb uint64) bool {
	if sa != sb {
		return sa > sb
	}
	return a < b
}

// Placement ranks the active nodes of m for plant by rendezvous score:
// the top node owns the plant, the runner-up is its warm standby.
// Draining and down nodes take no placements — which is exactly why a
// node death needs no data movement: dropping the owner promotes the
// old runner-up to the top for precisely that node's plants and
// changes nothing else.
func Placement(m wire.ClusterMembership, plant string) (owner, standby wire.ClusterNode, hasOwner, hasStandby bool) {
	var so, ss uint64
	for _, n := range m.Nodes {
		if n.State != wire.NodeActive {
			continue
		}
		sc := score(n.ID, plant)
		switch {
		case !hasOwner || better(n.ID, sc, owner.ID, so):
			if hasOwner {
				standby, ss, hasStandby = owner, so, true
			}
			owner, so, hasOwner = n, sc, true
		case !hasStandby || better(n.ID, sc, standby.ID, ss):
			standby, ss, hasStandby = n, sc, true
		}
	}
	return owner, standby, hasOwner, hasStandby
}

// Owner returns the owning node of plant under m.
func Owner(m wire.ClusterMembership, plant string) (wire.ClusterNode, bool) {
	owner, _, ok, _ := Placement(m, plant)
	return owner, ok
}

// Standby returns the warm-standby node of plant under m (absent when
// fewer than two nodes are active).
func Standby(m wire.ClusterMembership, plant string) (wire.ClusterNode, bool) {
	_, standby, _, ok := Placement(m, plant)
	return standby, ok
}

// NodeByID finds a node in the membership table.
func NodeByID(m wire.ClusterMembership, id string) (wire.ClusterNode, bool) {
	for _, n := range m.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return wire.ClusterNode{}, false
}
