package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/pkg/hod/wire"
)

func membershipOf(n int) wire.ClusterMembership {
	m := wire.ClusterMembership{Epoch: 1}
	for i := 0; i < n; i++ {
		m.Nodes = append(m.Nodes, wire.ClusterNode{
			ID: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("http://10.0.0.%d:7007", i+1), State: wire.NodeActive,
		})
	}
	return m
}

func plantIDs(n int, rng *rand.Rand) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("plant-%x", rng.Uint64())
	}
	return ids
}

// TestPlacementDeterministic pins the core cluster invariant: placement
// is a pure function of (membership, plant), so two holders of the same
// epoch — router and node — can never disagree on an owner, regardless
// of the order nodes appear in the table.
func TestPlacementDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := membershipOf(5)
	shuffled := wire.ClusterMembership{Epoch: m.Epoch, Nodes: append([]wire.ClusterNode(nil), m.Nodes...)}
	rng.Shuffle(len(shuffled.Nodes), func(i, j int) {
		shuffled.Nodes[i], shuffled.Nodes[j] = shuffled.Nodes[j], shuffled.Nodes[i]
	})
	for _, plant := range plantIDs(500, rng) {
		o1, s1, ok1, hs1 := Placement(m, plant)
		o2, s2, ok2, hs2 := Placement(shuffled, plant)
		if !ok1 || !ok2 || o1.ID != o2.ID || hs1 != hs2 || s1.ID != s2.ID {
			t.Fatalf("placement of %s depends on node order: (%s,%s) vs (%s,%s)", plant, o1.ID, s1.ID, o2.ID, s2.ID)
		}
		if o1.ID == s1.ID {
			t.Fatalf("plant %s: owner and standby are both %s", plant, o1.ID)
		}
	}
}

// TestRendezvousMinimalMovementOnJoin is the rendezvous property the
// whole design leans on: adding a node to an N-node cluster moves
// roughly 1/(N+1) of the plants — exactly the ones the new node now
// wins — and every other plant keeps its owner.
func TestRendezvousMinimalMovementOnJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const plants = 2000
	ids := plantIDs(plants, rng)
	for _, n := range []int{2, 4, 8} {
		before := membershipOf(n)
		after := membershipOf(n + 1) // same first n nodes + one more
		after.Epoch = 2
		moved := 0
		for _, plant := range ids {
			ob, _ := Owner(before, plant)
			oa, _ := Owner(after, plant)
			if ob.ID == oa.ID {
				continue
			}
			moved++
			// A move must be TO the joiner: rendezvous never reshuffles
			// plants between surviving nodes.
			if oa.ID != after.Nodes[n].ID {
				t.Fatalf("n=%d: plant %s moved %s -> %s, not to the joining node", n, plant, ob.ID, oa.ID)
			}
		}
		want := float64(plants) / float64(n+1)
		if f := float64(moved); f < want*0.7 || f > want*1.3 {
			t.Errorf("n=%d: join moved %d of %d plants, want ~%.0f (1/%d)", n, moved, plants, want, n+1)
		}
	}
}

// TestRendezvousMinimalMovementOnDrain mirrors the join property for
// shrinking: draining one node re-homes only that node's plants, and
// each lands on what was its warm standby.
func TestRendezvousMinimalMovementOnDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const plants = 2000
	ids := plantIDs(plants, rng)
	for _, n := range []int{3, 5, 9} {
		before := membershipOf(n)
		after := wire.ClusterMembership{Epoch: 2, Nodes: append([]wire.ClusterNode(nil), before.Nodes...)}
		after.Nodes[0].State = wire.NodeDraining
		moved := 0
		for _, plant := range ids {
			ob, _ := Owner(before, plant)
			oa, _ := Owner(after, plant)
			if ob.ID == oa.ID {
				continue
			}
			moved++
			if ob.ID != before.Nodes[0].ID {
				t.Fatalf("n=%d: plant %s moved off %s, which is not the draining node", n, plant, ob.ID)
			}
			sb, ok := Standby(before, plant)
			if !ok || oa.ID != sb.ID {
				t.Fatalf("n=%d: plant %s re-homed to %s, not its standby %s", n, plant, oa.ID, sb.ID)
			}
		}
		want := float64(plants) / float64(n)
		if f := float64(moved); f < want*0.7 || f > want*1.3 {
			t.Errorf("n=%d: drain moved %d of %d plants, want ~%.0f (1/%d)", n, moved, plants, want, n)
		}
	}
}

// TestPlacementSkipsInactiveNodes pins that draining and down nodes
// take no placements at all, in either seat.
func TestPlacementSkipsInactiveNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := membershipOf(4)
	m.Nodes[1].State = wire.NodeDraining
	m.Nodes[3].State = wire.NodeDown
	for _, plant := range plantIDs(300, rng) {
		o, s, ok, hs := Placement(m, plant)
		if !ok || !hs {
			t.Fatalf("plant %s: no full placement among 2 active nodes", plant)
		}
		for _, id := range []string{o.ID, s.ID} {
			if id == m.Nodes[1].ID || id == m.Nodes[3].ID {
				t.Fatalf("plant %s placed on inactive node %s", plant, id)
			}
		}
	}
}

// TestPlacementSingleNode: a cluster of one has an owner and no standby.
func TestPlacementSingleNode(t *testing.T) {
	m := membershipOf(1)
	o, _, ok, hs := Placement(m, "p")
	if !ok || o.ID != "n1" || hs {
		t.Fatalf("single-node placement = (%s, ok=%t, standby=%t), want (n1, true, false)", o.ID, ok, hs)
	}
	if _, _, ok, _ := Placement(wire.ClusterMembership{}, "p"); ok {
		t.Fatal("empty membership produced an owner")
	}
}
