// Package generator synthesises labelled workloads for the detector
// conformance runs and the paper's Fig. 1 experiment. It produces base
// signals (AR noise, sinusoids, trends), injects the four temporal
// outlier types of Fox (1972) shown in Fig. 1 — additive outlier,
// innovative outlier, temporary change, level shift — and also
// subsequence and whole-series anomalies, always together with exact
// ground-truth labels.
package generator

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/timeseries"
)

// OutlierType enumerates the four temporal outlier types of Fig. 1.
type OutlierType int

const (
	// AdditiveOutlier is an isolated spike: one sample is displaced,
	// the process itself is untouched.
	AdditiveOutlier OutlierType = iota
	// InnovativeOutlier is a shock entering the process dynamics: the
	// disturbance feeds through the AR recursion and decays with the
	// process memory.
	InnovativeOutlier
	// TemporaryChange shifts the level and decays geometrically back to
	// normal.
	TemporaryChange
	// LevelShift permanently moves the process mean.
	LevelShift
)

// String returns the conventional name of the outlier type.
func (o OutlierType) String() string {
	switch o {
	case AdditiveOutlier:
		return "additive-outlier"
	case InnovativeOutlier:
		return "innovative-outlier"
	case TemporaryChange:
		return "temporary-change"
	case LevelShift:
		return "level-shift"
	default:
		return fmt.Sprintf("OutlierType(%d)", int(o))
	}
}

// AllOutlierTypes lists the four Fig. 1 types in paper order.
var AllOutlierTypes = []OutlierType{AdditiveOutlier, InnovativeOutlier, TemporaryChange, LevelShift}

// Injection records one injected anomaly: its type, onset index, the
// indexes materially affected, and the magnitude in units of the base
// noise standard deviation.
type Injection struct {
	Type      OutlierType
	At        int
	Affected  []int
	Magnitude float64
}

// Labeled couples a generated series with its ground truth.
type Labeled struct {
	Series     *timeseries.Series
	Injections []Injection
	// PointLabels[i] is true when sample i belongs to an injected
	// anomaly (the Affected set of any injection).
	PointLabels []bool
}

// AnomalyIndexes returns the sorted affected indexes of all injections.
func (l *Labeled) AnomalyIndexes() []int {
	var out []int
	for i, b := range l.PointLabels {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// Config parameterises base-signal generation.
type Config struct {
	N        int           // number of samples
	Step     time.Duration // sample period (default 1s)
	Phi      float64       // AR(1) coefficient of the noise (0 = white)
	NoiseStd float64       // innovation standard deviation (default 1)
	Level    float64       // base level
	// Seasonal component: amplitude × sin(2π t / Period). Period 0
	// disables it.
	SeasonAmp    float64
	SeasonPeriod int
	Trend        float64 // per-sample linear drift
}

func (c Config) withDefaults() Config {
	if c.Step <= 0 {
		c.Step = time.Second
	}
	if c.NoiseStd <= 0 {
		c.NoiseStd = 1
	}
	return c
}

// Base generates the clean signal described by cfg using rng.
func Base(cfg Config, rng *rand.Rand) *timeseries.Series {
	cfg = cfg.withDefaults()
	vs := make([]float64, cfg.N)
	var ar float64
	for t := 0; t < cfg.N; t++ {
		ar = cfg.Phi*ar + rng.NormFloat64()*cfg.NoiseStd
		v := cfg.Level + ar + cfg.Trend*float64(t)
		if cfg.SeasonPeriod > 0 {
			v += cfg.SeasonAmp * math.Sin(2*math.Pi*float64(t)/float64(cfg.SeasonPeriod))
		}
		vs[t] = v
	}
	return timeseries.New("synthetic", time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), cfg.Step, vs)
}

// Inject applies one outlier of the given type at index at with the
// given magnitude (in noise standard deviations) to the series, and
// returns the injection record. phi is the process memory used by the
// innovative outlier and the temporary change decay (clamped to
// [0, 0.95]); pass the Config.Phi used for the base signal.
func Inject(s *timeseries.Series, typ OutlierType, at int, magnitudeSD, noiseStd, phi float64) (Injection, error) {
	n := s.Len()
	if at < 0 || at >= n {
		return Injection{}, fmt.Errorf("generator: injection index %d out of [0,%d)", at, n)
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 0.95 {
		phi = 0.95
	}
	amp := magnitudeSD * noiseStd
	inj := Injection{Type: typ, At: at, Magnitude: magnitudeSD}
	switch typ {
	case AdditiveOutlier:
		s.Values[at] += amp
		inj.Affected = []int{at}
	case InnovativeOutlier:
		// The shock propagates through the AR dynamics: effect at
		// t ≥ at is amp·φ^(t-at). Mark indexes until the effect decays
		// below half a standard deviation.
		effect := amp
		for t := at; t < n && math.Abs(effect) >= 0.5*noiseStd; t++ {
			s.Values[t] += effect
			inj.Affected = append(inj.Affected, t)
			effect *= phi
		}
		if len(inj.Affected) == 0 {
			s.Values[at] += amp
			inj.Affected = []int{at}
		}
	case TemporaryChange:
		// Decay constant fixed at the conventional 0.8 unless the
		// process memory is stronger.
		delta := math.Max(0.8, phi)
		effect := amp
		for t := at; t < n && math.Abs(effect) >= 0.5*noiseStd; t++ {
			s.Values[t] += effect
			inj.Affected = append(inj.Affected, t)
			effect *= delta
		}
		if len(inj.Affected) == 0 {
			s.Values[at] += amp
			inj.Affected = []int{at}
		}
	case LevelShift:
		for t := at; t < n; t++ {
			s.Values[t] += amp
		}
		// Only the onset region is labelled anomalous: after the shift
		// the new level is the new normal. We mark a short onset run so
		// point-adjusted evaluation has a target range.
		run := 5
		if at+run > n {
			run = n - at
		}
		for t := at; t < at+run; t++ {
			inj.Affected = append(inj.Affected, t)
		}
	default:
		return Injection{}, fmt.Errorf("generator: unknown outlier type %d", int(typ))
	}
	return inj, nil
}

// Workload draws a base signal and injects count outliers of the given
// type at well-separated positions. Magnitude is in noise standard
// deviations.
func Workload(cfg Config, typ OutlierType, count int, magnitudeSD float64, rng *rand.Rand) (*Labeled, error) {
	cfg = cfg.withDefaults()
	if count < 0 {
		return nil, fmt.Errorf("generator: negative injection count %d", count)
	}
	s := Base(cfg, rng)
	lab := &Labeled{Series: s, PointLabels: make([]bool, cfg.N)}
	if count == 0 {
		return lab, nil
	}
	positions, err := spacedPositions(cfg.N, count, rng)
	if err != nil {
		return nil, err
	}
	for _, at := range positions {
		inj, err := Inject(s, typ, at, magnitudeSD, cfg.NoiseStd, cfg.Phi)
		if err != nil {
			return nil, err
		}
		lab.Injections = append(lab.Injections, inj)
		for _, i := range inj.Affected {
			lab.PointLabels[i] = true
		}
	}
	return lab, nil
}

// MixedWorkload injects a mixture of all four types, cycling through
// them, for the capability conformance runs.
func MixedWorkload(cfg Config, count int, magnitudeSD float64, rng *rand.Rand) (*Labeled, error) {
	cfg = cfg.withDefaults()
	s := Base(cfg, rng)
	lab := &Labeled{Series: s, PointLabels: make([]bool, cfg.N)}
	if count <= 0 {
		return lab, nil
	}
	positions, err := spacedPositions(cfg.N, count, rng)
	if err != nil {
		return nil, err
	}
	for k, at := range positions {
		typ := AllOutlierTypes[k%len(AllOutlierTypes)]
		inj, err := Inject(s, typ, at, magnitudeSD, cfg.NoiseStd, cfg.Phi)
		if err != nil {
			return nil, err
		}
		lab.Injections = append(lab.Injections, inj)
		for _, i := range inj.Affected {
			lab.PointLabels[i] = true
		}
	}
	return lab, nil
}

// spacedPositions picks count injection positions, keeping a margin from
// the edges and a minimum gap so injected anomalies do not overlap.
func spacedPositions(n, count int, rng *rand.Rand) ([]int, error) {
	margin := n / 10
	if margin < 2 {
		margin = 2
	}
	usable := n - 2*margin
	if usable < count {
		return nil, fmt.Errorf("generator: cannot place %d injections in %d samples", count, n)
	}
	gap := usable / count
	out := make([]int, count)
	for k := 0; k < count; k++ {
		lo := margin + k*gap
		jitterSpan := gap / 2
		if jitterSpan < 1 {
			jitterSpan = 1
		}
		out[k] = lo + rng.Intn(jitterSpan)
	}
	return out, nil
}
