package generator

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/timeseries"
)

// SubseqAnomaly describes one injected anomalous subsequence.
type SubseqAnomaly struct {
	Start, Length int
	Kind          string // "flatline", "noise-burst", "frequency", "inverted"
}

// LabeledSubseq couples a series with subsequence-level ground truth.
type LabeledSubseq struct {
	Series      *timeseries.Series
	Anomalies   []SubseqAnomaly
	PointLabels []bool
}

// SubseqKinds lists the anomalous-shape kinds the generator can inject.
var SubseqKinds = []string{"flatline", "noise-burst", "frequency", "inverted"}

// SubseqWorkload generates a strongly periodic base signal and replaces
// count subsequences of the given length with anomalous shapes, cycling
// through SubseqKinds. Such discord-style workloads exercise the
// window/sequence detector families (NPD, NMD, OS, DA on windows).
func SubseqWorkload(n, length, count int, rng *rand.Rand) (*LabeledSubseq, error) {
	if length <= 0 || n <= 0 {
		return nil, fmt.Errorf("generator: invalid subsequence workload n=%d length=%d", n, length)
	}
	const period = 32
	vs := make([]float64, n)
	for t := range vs {
		vs[t] = math.Sin(2*math.Pi*float64(t)/period) + rng.NormFloat64()*0.08
	}
	s := timeseries.New("subseq", time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), time.Second, vs)
	lab := &LabeledSubseq{Series: s, PointLabels: make([]bool, n)}
	if count == 0 {
		return lab, nil
	}
	positions, err := spacedPositions(n-length, count, rng)
	if err != nil {
		return nil, err
	}
	for k, at := range positions {
		kind := SubseqKinds[k%len(SubseqKinds)]
		applySubseq(vs, at, length, kind, rng)
		lab.Anomalies = append(lab.Anomalies, SubseqAnomaly{Start: at, Length: length, Kind: kind})
		for i := at; i < at+length && i < n; i++ {
			lab.PointLabels[i] = true
		}
	}
	return lab, nil
}

func applySubseq(vs []float64, at, length int, kind string, rng *rand.Rand) {
	end := at + length
	if end > len(vs) {
		end = len(vs)
	}
	switch kind {
	case "flatline":
		level := vs[at]
		for i := at; i < end; i++ {
			vs[i] = level + rng.NormFloat64()*0.01
		}
	case "noise-burst":
		for i := at; i < end; i++ {
			vs[i] += rng.NormFloat64() * 1.5
		}
	case "frequency":
		// Triple the local frequency.
		for i := at; i < end; i++ {
			vs[i] = math.Sin(2*math.Pi*float64(i)*3/32) + rng.NormFloat64()*0.08
		}
	case "inverted":
		for i := at; i < end; i++ {
			vs[i] = -vs[i]
		}
	}
}

// LabeledSeries is a collection of whole series, some anomalous — the
// TSS-granularity workload for detectors that score entire series
// (phased k-means, rule/motif classifiers, vibration signatures).
type LabeledSeries struct {
	Series []*timeseries.Series
	Labels []bool // true = anomalous series
}

// SeriesWorkload generates total whole series of the given length; the
// final anomalous count of them deviate in shape (frequency and phase
// perturbation plus level offset). Normal series share one template
// family with small jitter, mimicking repeated production jobs.
func SeriesWorkload(total, anomalous, length int, rng *rand.Rand) (*LabeledSeries, error) {
	if anomalous > total {
		return nil, fmt.Errorf("generator: anomalous %d > total %d", anomalous, total)
	}
	out := &LabeledSeries{}
	for k := 0; k < total; k++ {
		isAnom := k >= total-anomalous
		vs := make([]float64, length)
		freq := 1.0 / 24
		amp := 1.0
		level := 0.0
		if isAnom {
			// Distinct regime: faster cycle, larger amplitude, offset.
			freq *= 1.9
			amp = 1.7
			level = 1.2
		}
		phase := rng.Float64() * 2 * math.Pi
		for t := range vs {
			vs[t] = level + amp*math.Sin(2*math.Pi*freq*float64(t)+phase) + rng.NormFloat64()*0.12
		}
		name := fmt.Sprintf("job-%03d", k)
		out.Series = append(out.Series, timeseries.New(name, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), time.Second, vs))
		out.Labels = append(out.Labels, isAnom)
	}
	// Shuffle so anomalies are not trivially at the end.
	rng.Shuffle(total, func(i, j int) {
		out.Series[i], out.Series[j] = out.Series[j], out.Series[i]
		out.Labels[i], out.Labels[j] = out.Labels[j], out.Labels[i]
	})
	return out, nil
}

// SymbolWorkload produces a discrete label sequence from a repeating
// grammar ("a b c d" cycles) with count anomalous runs of foreign
// symbols — the PTS/SSQ workload for the symbolic detectors (FSA, HMM,
// NPD, NMD).
func SymbolWorkload(n, runLength, count int, rng *rand.Rand) (*timeseries.Symbols, []bool, error) {
	if n <= 0 || runLength <= 0 {
		return nil, nil, fmt.Errorf("generator: invalid symbol workload n=%d run=%d", n, runLength)
	}
	grammar := []string{"a", "b", "c", "d"}
	labels := make([]string, n)
	truth := make([]bool, n)
	for i := range labels {
		labels[i] = grammar[i%len(grammar)]
	}
	if count > 0 {
		positions, err := spacedPositions(n-runLength, count, rng)
		if err != nil {
			return nil, nil, err
		}
		for _, at := range positions {
			for i := at; i < at+runLength && i < n; i++ {
				// Foreign symbols x/y/z never occur in the grammar.
				labels[i] = string(rune('x' + rng.Intn(3)))
				truth[i] = true
			}
		}
	}
	return timeseries.NewSymbols("symbols", labels), truth, nil
}
