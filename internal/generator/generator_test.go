package generator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestBaseShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Base(Config{N: 1000, Level: 50, NoiseStd: 2}, rng)
	if s.Len() != 1000 {
		t.Fatalf("len=%d", s.Len())
	}
	m, sd := stats.MeanStd(s.Values)
	if math.Abs(m-50) > 0.5 {
		t.Fatalf("mean=%v want ~50", m)
	}
	if math.Abs(sd-2) > 0.3 {
		t.Fatalf("std=%v want ~2", sd)
	}
}

func TestBaseTrendAndSeason(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := Base(Config{N: 2000, Trend: 0.1, NoiseStd: 0.01}, rng)
	// End should be ~0.1*1999 above start.
	if diff := s.Values[1999] - s.Values[0]; math.Abs(diff-199.9) > 1 {
		t.Fatalf("trend diff=%v", diff)
	}
	s2 := Base(Config{N: 256, SeasonAmp: 10, SeasonPeriod: 64, NoiseStd: 0.01}, rng)
	lo, hi := stats.MinMax(s2.Values)
	if hi < 9 || lo > -9 {
		t.Fatalf("season range [%v,%v]", lo, hi)
	}
}

func TestBaseARMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Base(Config{N: 8192, Phi: 0.8}, rng)
	ac := stats.Autocorrelation(s.Values, 1)
	if math.Abs(ac[1]-0.8) > 0.05 {
		t.Fatalf("ac[1]=%v want ~0.8", ac[1])
	}
}

func TestInjectAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := Base(Config{N: 100}, rng)
	before := s.Values[50]
	inj, err := Inject(s, AdditiveOutlier, 50, 6, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Affected) != 1 || inj.Affected[0] != 50 {
		t.Fatalf("affected=%v", inj.Affected)
	}
	if math.Abs(s.Values[50]-before-6) > 1e-12 {
		t.Fatalf("spike delta=%v", s.Values[50]-before)
	}
}

func TestInjectInnovativeDecays(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := Base(Config{N: 200, Phi: 0.7}, rng)
	inj, err := Inject(s, InnovativeOutlier, 100, 8, 1, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Affected) < 3 {
		t.Fatalf("innovative outlier should affect several samples, got %d", len(inj.Affected))
	}
	// Effect decays: affected set is contiguous from the onset.
	for i, idx := range inj.Affected {
		if idx != 100+i {
			t.Fatalf("affected not contiguous: %v", inj.Affected)
		}
	}
}

func TestInjectTemporaryChange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := Base(Config{N: 300, NoiseStd: 0.5}, rng)
	inj, err := Inject(s, TemporaryChange, 150, 8, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Affected) < 5 {
		t.Fatalf("TC should persist several samples, got %d", len(inj.Affected))
	}
	last := inj.Affected[len(inj.Affected)-1]
	if last >= 299 {
		t.Fatal("TC should decay before series end")
	}
}

func TestInjectLevelShift(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := Base(Config{N: 200, NoiseStd: 1}, rng)
	preMean := stats.Mean(s.Values[:100])
	inj, err := Inject(s, LevelShift, 100, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	postMean := stats.Mean(s.Values[100:])
	if math.Abs(postMean-preMean-5) > 1 {
		t.Fatalf("shift=%v want ~5", postMean-preMean)
	}
	if len(inj.Affected) != 5 {
		t.Fatalf("LS onset run=%d want 5", len(inj.Affected))
	}
}

func TestInjectErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := Base(Config{N: 10}, rng)
	if _, err := Inject(s, AdditiveOutlier, -1, 5, 1, 0); err == nil {
		t.Fatal("want error for negative index")
	}
	if _, err := Inject(s, AdditiveOutlier, 10, 5, 1, 0); err == nil {
		t.Fatal("want error for out-of-range index")
	}
	if _, err := Inject(s, OutlierType(99), 5, 5, 1, 0); err == nil {
		t.Fatal("want error for unknown type")
	}
}

func TestOutlierTypeString(t *testing.T) {
	names := map[OutlierType]string{
		AdditiveOutlier:   "additive-outlier",
		InnovativeOutlier: "innovative-outlier",
		TemporaryChange:   "temporary-change",
		LevelShift:        "level-shift",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Fatalf("%d.String()=%q", int(typ), typ.String())
		}
	}
	if OutlierType(42).String() != "OutlierType(42)" {
		t.Fatal("unknown type string")
	}
}

func TestWorkloadLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lab, err := Workload(Config{N: 1000}, AdditiveOutlier, 10, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Injections) != 10 {
		t.Fatalf("injections=%d", len(lab.Injections))
	}
	anom := lab.AnomalyIndexes()
	if len(anom) != 10 {
		t.Fatalf("labelled points=%d want 10 for AO", len(anom))
	}
	// Positions are separated.
	for i := 1; i < len(anom); i++ {
		if anom[i]-anom[i-1] < 10 {
			t.Fatalf("injections too close: %v", anom)
		}
	}
}

func TestWorkloadZeroCount(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	lab, err := Workload(Config{N: 100}, LevelShift, 0, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Injections) != 0 || len(lab.AnomalyIndexes()) != 0 {
		t.Fatal("zero-count workload should be clean")
	}
	if _, err := Workload(Config{N: 100}, LevelShift, -1, 6, rng); err == nil {
		t.Fatal("want error for negative count")
	}
	if _, err := Workload(Config{N: 20}, LevelShift, 50, 6, rng); err == nil {
		t.Fatal("want error when too many injections")
	}
}

func TestMixedWorkloadCyclesTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lab, err := MixedWorkload(Config{N: 2000}, 8, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OutlierType]int{}
	for _, inj := range lab.Injections {
		counts[inj.Type]++
	}
	for _, typ := range AllOutlierTypes {
		if counts[typ] != 2 {
			t.Fatalf("type %v count=%d want 2", typ, counts[typ])
		}
	}
}

func TestSubseqWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	lab, err := SubseqWorkload(2048, 48, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Anomalies) != 4 {
		t.Fatalf("anomalies=%d", len(lab.Anomalies))
	}
	kinds := map[string]bool{}
	labelled := 0
	for _, b := range lab.PointLabels {
		if b {
			labelled++
		}
	}
	for _, a := range lab.Anomalies {
		kinds[a.Kind] = true
		if a.Length != 48 {
			t.Fatalf("length=%d", a.Length)
		}
	}
	if labelled != 4*48 {
		t.Fatalf("labelled=%d want %d", labelled, 4*48)
	}
	if len(kinds) != 4 {
		t.Fatalf("kinds=%v want all four", kinds)
	}
	if _, err := SubseqWorkload(0, 10, 1, rng); err == nil {
		t.Fatal("want error for empty workload")
	}
}

func TestSeriesWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	lab, err := SeriesWorkload(20, 4, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	var anom int
	for _, b := range lab.Labels {
		if b {
			anom++
		}
	}
	if anom != 4 || len(lab.Series) != 20 {
		t.Fatalf("anom=%d series=%d", anom, len(lab.Series))
	}
	// Anomalous series differ in variance/level from normal ones.
	var normStd, anomStd stats.Online
	for i, s := range lab.Series {
		_, sd := stats.MeanStd(s.Values)
		if lab.Labels[i] {
			anomStd.Add(sd)
		} else {
			normStd.Add(sd)
		}
	}
	if anomStd.Mean() <= normStd.Mean() {
		t.Fatalf("anomalous std %v should exceed normal %v", anomStd.Mean(), normStd.Mean())
	}
	if _, err := SeriesWorkload(3, 5, 10, rng); err == nil {
		t.Fatal("want error when anomalous > total")
	}
}

func TestSymbolWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	sym, truth, err := SymbolWorkload(1000, 10, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sym.Len() != 1000 || len(truth) != 1000 {
		t.Fatal("shape mismatch")
	}
	anom := 0
	for i, b := range truth {
		if b {
			anom++
			l := sym.Labels[i]
			if l != "x" && l != "y" && l != "z" {
				t.Fatalf("anomalous label %q", l)
			}
		}
	}
	if anom != 30 {
		t.Fatalf("anomalous symbols=%d want 30", anom)
	}
	if _, _, err := SymbolWorkload(0, 1, 0, rng); err == nil {
		t.Fatal("want error")
	}
}

// Property: every labelled index of a workload lies within bounds and
// matches the union of injection Affected sets.
func TestPropertyWorkloadLabelConsistency(t *testing.T) {
	f := func(seed int64, cnt uint8, typIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(cnt)%5 + 1
		typ := AllOutlierTypes[int(typIdx)%len(AllOutlierTypes)]
		lab, err := Workload(Config{N: 500, Phi: 0.5}, typ, count, 7, rng)
		if err != nil {
			return false
		}
		want := map[int]bool{}
		for _, inj := range lab.Injections {
			for _, i := range inj.Affected {
				if i < 0 || i >= 500 {
					return false
				}
				want[i] = true
			}
		}
		for i, b := range lab.PointLabels {
			if b != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: generation is deterministic for a fixed seed.
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		a, err1 := MixedWorkload(Config{N: 300, Phi: 0.3}, 4, 6, rand.New(rand.NewSource(seed)))
		b, err2 := MixedWorkload(Config{N: 300, Phi: 0.3}, 4, 6, rand.New(rand.NewSource(seed)))
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a.Series.Values {
			if a.Series.Values[i] != b.Series.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
