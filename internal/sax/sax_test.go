package sax

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(0, 4); err == nil {
		t.Fatal("want error for zero segments")
	}
	if _, err := NewEncoder(4, 1); err == nil {
		t.Fatal("want error for tiny alphabet")
	}
	if _, err := NewEncoder(4, 99); err == nil {
		t.Fatal("want error for huge alphabet")
	}
	e, err := NewEncoder(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Segments() != 8 || e.Alphabet() != 4 {
		t.Fatal("accessor mismatch")
	}
}

func TestEncodeRampAndConstant(t *testing.T) {
	e, _ := NewEncoder(4, 4)
	// A strictly increasing ramp must produce non-decreasing symbols
	// from low to high.
	ramp := make([]float64, 64)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	w, err := e.Encode(ramp)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 'a' || w[3] != 'd' {
		t.Fatalf("ramp word %q should span alphabet", w)
	}
	for i := 1; i < len(w); i++ {
		if w[i] < w[i-1] {
			t.Fatalf("ramp word %q not monotone", w)
		}
	}
	// Constant window z-normalises to zeros → middle symbols.
	c, err := e.Encode([]float64{5, 5, 5, 5, 5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range c {
		if ch != 'b' && ch != 'c' {
			t.Fatalf("constant word %q should use middle symbols", c)
		}
	}
	if _, err := e.Encode(nil); err == nil {
		t.Fatal("want error for empty window")
	}
}

func TestEncodeSeries(t *testing.T) {
	e, _ := NewEncoder(4, 3)
	vs := make([]float64, 100)
	for i := range vs {
		vs[i] = math.Sin(float64(i) / 5)
	}
	words, starts, err := e.EncodeSeries(vs, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != len(starts) || len(words) != 9 {
		t.Fatalf("words=%d starts=%d", len(words), len(starts))
	}
	for _, w := range words {
		if len(w) != 4 {
			t.Fatalf("word %q length", w)
		}
	}
	if _, _, err := e.EncodeSeries(vs, 0, 1); err == nil {
		t.Fatal("want error for bad window size")
	}
}

func TestMinDistProperties(t *testing.T) {
	e, _ := NewEncoder(4, 4)
	// Identical and adjacent-symbol words have distance 0.
	d, err := e.MinDist("abcd", "abcd", 32)
	if err != nil || d != 0 {
		t.Fatalf("identical dist=%v err=%v", d, err)
	}
	d, _ = e.MinDist("aaaa", "bbbb", 32)
	if d != 0 {
		t.Fatalf("adjacent symbols dist=%v want 0", d)
	}
	far, _ := e.MinDist("aaaa", "dddd", 32)
	near, _ := e.MinDist("aaaa", "cccc", 32)
	if far <= near || near <= 0 {
		t.Fatalf("far=%v near=%v: distance must grow with symbol gap", far, near)
	}
	if _, err := e.MinDist("ab", "abc", 8); err == nil {
		t.Fatal("want error for length mismatch")
	}
	if _, err := e.MinDist("", "", 8); err == nil {
		t.Fatal("want error for empty words")
	}
}

func TestDissimilarShapesGetDistinctWords(t *testing.T) {
	e, _ := NewEncoder(8, 5)
	up := make([]float64, 64)
	down := make([]float64, 64)
	for i := range up {
		up[i] = float64(i)
		down[i] = float64(len(down) - i)
	}
	wu, _ := e.Encode(up)
	wd, _ := e.Encode(down)
	if wu == wd {
		t.Fatalf("ramp up and down encode identically: %q", wu)
	}
	d, _ := e.MinDist(wu, wd, 64)
	if d <= 0 {
		t.Fatalf("opposite ramps should have positive MINDIST, got %v", d)
	}
}

// Property: MinDist is symmetric and non-negative.
func TestPropertyMinDistSymmetric(t *testing.T) {
	e, _ := NewEncoder(6, 6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() string {
			var sb strings.Builder
			for i := 0; i < 6; i++ {
				sb.WriteByte(byte('a' + rng.Intn(6)))
			}
			return sb.String()
		}
		a, b := mk(), mk()
		d1, err1 := e.MinDist(a, b, 48)
		d2, err2 := e.MinDist(b, a, 48)
		if err1 != nil || err2 != nil {
			return false
		}
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoding is invariant to affine transforms (z-normalisation).
func TestPropertyAffineInvariance(t *testing.T) {
	e, _ := NewEncoder(4, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vs := make([]float64, 32)
		for i := range vs {
			vs[i] = rng.NormFloat64()
		}
		scaled := make([]float64, len(vs))
		scale := 1 + rng.Float64()*10
		shift := rng.NormFloat64() * 100
		for i, v := range vs {
			scaled[i] = v*scale + shift
		}
		w1, err1 := e.Encode(vs)
		w2, err2 := e.Encode(scaled)
		return err1 == nil && err2 == nil && w1 == w2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
