// Package sax implements the Symbolic Aggregate approXimation of Lin et
// al. (2003) — the "symbolic representation of time series" row of the
// paper's Table 1 and the discretisation backbone for the sequence
// detectors. A series is z-normalised, reduced by piecewise aggregate
// approximation (PAA) and mapped to symbols using breakpoints that make
// the symbols equiprobable under a standard normal.
package sax

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/timeseries"
)

// MinAlphabet and MaxAlphabet bound supported alphabet sizes.
const (
	MinAlphabet = 2
	MaxAlphabet = 20
)

// Encoder converts numeric windows into SAX words.
type Encoder struct {
	segments    int
	alphabet    int
	breakpoints []float64 // alphabet-1 ascending breakpoints
}

// NewEncoder builds an encoder producing words of the given number of
// segments over the given alphabet size.
func NewEncoder(segments, alphabet int) (*Encoder, error) {
	if segments <= 0 {
		return nil, fmt.Errorf("sax: segments must be positive, got %d", segments)
	}
	if alphabet < MinAlphabet || alphabet > MaxAlphabet {
		return nil, fmt.Errorf("sax: alphabet %d out of [%d,%d]", alphabet, MinAlphabet, MaxAlphabet)
	}
	bp := make([]float64, alphabet-1)
	for i := 1; i < alphabet; i++ {
		bp[i-1] = stats.NormalQuantile(float64(i) / float64(alphabet))
	}
	return &Encoder{segments: segments, alphabet: alphabet, breakpoints: bp}, nil
}

// Segments returns the word length.
func (e *Encoder) Segments() int { return e.segments }

// Alphabet returns the alphabet size.
func (e *Encoder) Alphabet() int { return e.alphabet }

// Encode converts one window into a SAX word. The window is
// z-normalised internally (a constant window maps to the middle
// symbol).
func (e *Encoder) Encode(values []float64) (string, error) {
	if len(values) == 0 {
		return "", fmt.Errorf("sax: empty window")
	}
	cp := append([]float64(nil), values...)
	stats.Normalize(cp)
	paa, err := timeseries.PAA(cp, e.segments)
	if err != nil {
		return "", err
	}
	word := make([]byte, len(paa))
	for i, v := range paa {
		word[i] = byte('a' + e.symbolOf(v))
	}
	return string(word), nil
}

func (e *Encoder) symbolOf(v float64) int {
	// Linear scan: alphabets are tiny (≤ 20).
	for i, bp := range e.breakpoints {
		if v < bp {
			return i
		}
	}
	return e.alphabet - 1
}

// EncodeSeries slides a window of the given size and stride over the
// series and returns the SAX word at each position.
func (e *Encoder) EncodeSeries(values []float64, size, stride int) (words []string, starts []int, err error) {
	ws, err := timeseries.SlidingWindows(values, size, stride)
	if err != nil {
		return nil, nil, err
	}
	words = make([]string, len(ws))
	starts = make([]int, len(ws))
	for i, w := range ws {
		word, err := e.Encode(w.Values)
		if err != nil {
			return nil, nil, err
		}
		words[i] = word
		starts[i] = w.Start
	}
	return words, starts, nil
}

// MinDist returns the MINDIST lower bound between two SAX words of equal
// length, scaled for the original window length n. Adjacent symbols have
// distance zero by construction.
func (e *Encoder) MinDist(a, b string, n int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("sax: MinDist on words of length %d and %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("sax: MinDist on empty words")
	}
	var ss float64
	for i := 0; i < len(a); i++ {
		d := e.cellDist(int(a[i]-'a'), int(b[i]-'a'))
		ss += d * d
	}
	scale := float64(n) / float64(len(a))
	return math.Sqrt(scale * ss), nil
}

// cellDist is the breakpoint distance between symbols r and c: zero for
// adjacent symbols, else the gap between the nearer breakpoints.
func (e *Encoder) cellDist(r, c int) float64 {
	if r > c {
		r, c = c, r
	}
	if c-r <= 1 {
		return 0
	}
	return e.breakpoints[c-1] - e.breakpoints[r]
}
