package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/pkg/hod"
	"repro/pkg/hod/wire"
)

// pushWatcher is the live subscriber a "subscribe" scenario attaches to
// the victim: one alerts:* subscription through the push gateway, read
// by a single consumer goroutine. Faults act on it mid-replay —
// slow_consumer pauses the consumer (the server must coalesce, never
// block ingest), ws_disconnect severs the transport (the subscription
// must redial and resume from its cursor) — and the verify phase
// checks the delivered stream converges to the polled alerts ring.
type pushWatcher struct {
	client *hod.Client
	sub    *hod.Subscription
	cancel context.CancelFunc
	done   chan struct{}

	pauseMu  sync.Mutex
	paused   bool
	resumeCh chan struct{}

	mu        sync.Mutex
	delivered map[string][]wire.Alert
	events    uint64
	coalesced uint64
}

// startWatch subscribes to alerts:* on the current generation and
// starts the consumer loop. Called before any plant registers — the
// wildcard channel picks up plants as they appear.
func (h *harness) startWatch(ctx context.Context) error {
	opts := []hod.SubscribeOption{hod.WithReconnectWait(50 * time.Millisecond)}
	if h.cfg.SubscribeSSE {
		opts = append(opts, hod.WithSSE())
	}
	w := &pushWatcher{
		client:    hod.NewClient(h.baseURL),
		done:      make(chan struct{}),
		delivered: map[string][]wire.Alert{},
	}
	sub, err := w.client.Subscribe(ctx, wire.SubscribeRequest{Channels: []string{"alerts:*"}}, opts...)
	if err != nil {
		return err
	}
	w.sub = sub
	wctx, cancel := context.WithCancel(ctx)
	w.cancel = cancel
	go w.loop(wctx)
	h.watch = w
	return nil
}

// loop is the consumer: gate (the slow_consumer stall point), read,
// record. Redial failures are retried — the subscription stays usable
// after a Next error, and a severed transport is the point of
// ws_disconnect.
func (w *pushWatcher) loop(ctx context.Context) {
	defer close(w.done)
	for {
		if !w.gate(ctx) {
			return
		}
		ev, err := w.sub.Next(ctx)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, hod.ErrSubscriptionClosed) {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		w.record(ev)
	}
}

// gate blocks while the watcher is paused; false means the context
// ended first.
func (w *pushWatcher) gate(ctx context.Context) bool {
	for {
		w.pauseMu.Lock()
		paused, ch := w.paused, w.resumeCh
		w.pauseMu.Unlock()
		if !paused {
			return ctx.Err() == nil
		}
		select {
		case <-ctx.Done():
			return false
		case <-ch:
		}
	}
}

// pause is the slow_consumer fault: the consumer stops reading (events
// pile up in the server-side queue and coalesce) until resume.
func (w *pushWatcher) pause() {
	w.pauseMu.Lock()
	if !w.paused {
		w.paused = true
		w.resumeCh = make(chan struct{})
	}
	w.pauseMu.Unlock()
}

func (w *pushWatcher) resume() {
	w.pauseMu.Lock()
	if w.paused {
		w.paused = false
		close(w.resumeCh)
	}
	w.pauseMu.Unlock()
}

// drop is the ws_disconnect fault: sever the transport out from under
// the consumer; the next read redials and resumes.
func (w *pushWatcher) drop() { w.sub.Drop() }

func (w *pushWatcher) record(ev wire.Event) {
	if ev.Kind != wire.EventAlert {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.events++
	if ev.Coalesced {
		w.coalesced++
	}
	w.delivered[ev.Plant] = append(w.delivered[ev.Plant], ev.Alerts...)
}

// maxSeq is the watcher's per-plant high-water mark. The iterator
// delivers strictly seq-ordered, so the last alert carries it.
func (w *pushWatcher) maxSeq(plant string) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d := w.delivered[plant]; len(d) > 0 {
		return d[len(d)-1].Seq
	}
	return 0
}

func (w *pushWatcher) alertsFor(plant string) []wire.Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]wire.Alert(nil), w.delivered[plant]...)
}

func (w *pushWatcher) counts() (events, coalesced uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.events, w.coalesced
}

func (w *pushWatcher) close() {
	w.resume()
	w.cancel()
	w.sub.Close()
	<-w.done
}

// verifyPush is the push-side verify phase: resume a stalled watcher,
// wait (bounded by the drain timeout) for the delivered stream to reach
// the polled ring's high-water mark, then require the final coalesced
// state — the last ring-capacity alerts by seq — to be byte-identical
// to GET /v1/plants/{id}/alerts. Fault-specific invariants ride along:
// a stalled subscriber must have seen a Coalesced event, a severed one
// must have redialed.
func (r *Runner) verifyPush(ctx context.Context, h *harness, traces []*plantTrace, drainTimeout time.Duration, res *Result) {
	w := h.watch
	if w == nil {
		return
	}
	w.pauseMu.Lock()
	wasStalled := w.paused
	w.pauseMu.Unlock()
	if wasStalled {
		// A consumer stalled this long would have been torn down by the
		// server's write timeout; model the catch-up as a redial, so the
		// backlog arrives as the ring's coalesced seed instead of
		// trickling out of kernel socket buffers.
		w.sub.Drop()
	}
	w.resume()
	httpc := newQueryClient()
	for _, tr := range traces {
		id := tr.spec.ID
		name := "push_converges/" + id
		body, err := fetch(httpc, h.baseURL, id, "/alerts?limit=0")
		if err != nil {
			res.check(name, false, err.Error())
			continue
		}
		var polled wire.AlertsResponse
		if err := json.Unmarshal(body, &polled); err != nil {
			res.check(name, false, "bad alerts body: "+err.Error())
			continue
		}
		if len(polled.Alerts) == 0 {
			// Nothing to converge to; pass only if the push stream saw
			// nothing either.
			res.check(name, w.maxSeq(id) == 0, "push stream delivered alerts the ring never held")
			continue
		}
		wantMax := polled.Alerts[len(polled.Alerts)-1].Seq
		deadline := time.Now().Add(drainTimeout)
		for w.maxSeq(id) < wantMax && ctx.Err() == nil && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		got := w.alertsFor(id)
		ordered := true
		for i := 1; i < len(got); i++ {
			if got[i].Seq <= got[i-1].Seq {
				ordered = false
				res.check("push_seq_ordered/"+id, false, fmt.Sprintf(
					"delivered seq %d then %d at %d — replayed or reordered", got[i-1].Seq, got[i].Seq, i))
				break
			}
		}
		if ordered {
			res.check("push_seq_ordered/"+id, true, "")
		}
		if len(got) < len(polled.Alerts) || got[len(got)-1].Seq < wantMax {
			res.check(name, false, fmt.Sprintf(
				"push stream ends at seq %d with %d alerts; polled ring ends at seq %d with %d",
				w.maxSeq(id), len(got), wantMax, len(polled.Alerts)))
			continue
		}
		final := got[len(got)-len(polled.Alerts):]
		gotJSON, _ := json.Marshal(final)
		wantJSON, _ := json.Marshal(polled.Alerts)
		res.check(name, bytes.Equal(gotJSON, wantJSON), fmt.Sprintf(
			"final %d pushed alerts differ from the polled ring\npush:   %.256s\npolled: %.256s",
			len(polled.Alerts), gotJSON, wantJSON))
	}
	if res.Injected[KindSlowConsumer] > 0 {
		_, coalesced := w.counts()
		res.check("push_coalesced", coalesced > 0,
			"stalled subscriber resumed without any coalesced event")
	}
	if res.Injected[KindWSDisconnect] > 0 {
		res.check("push_reconnected", w.sub.Reconnects() > 0,
			"transport was severed but the subscription never redialed")
	}
	res.PushEvents, res.PushCoalesced = w.counts()
	res.PushReconnects = w.sub.Reconnects()
}
