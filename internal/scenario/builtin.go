package scenario

import (
	"embed"
	"fmt"
	"sort"
)

// The committed scenario corpus ships inside the binary so
// `hodctl soak` works without a checkout.
//
//go:embed testdata/scenarios/*.json
var builtinFS embed.FS

// Builtin returns the committed scenario corpus, sorted by name. Short
// scenarios (the CI matrix) come back with Short set.
func Builtin() ([]Config, error) {
	ents, err := builtinFS.ReadDir("testdata/scenarios")
	if err != nil {
		return nil, err
	}
	out := make([]Config, 0, len(ents))
	for _, e := range ents {
		buf, err := builtinFS.ReadFile("testdata/scenarios/" + e.Name())
		if err != nil {
			return nil, err
		}
		cfg, err := Parse(buf)
		if err != nil {
			return nil, fmt.Errorf("builtin %s: %w", e.Name(), err)
		}
		out = append(out, cfg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
