package scenario

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/server"
	"repro/pkg/hod"
	"repro/pkg/hod/wire"
)

// Runner executes scenarios. The zero value is usable; set DataDir to
// control where durable scenarios keep their WAL (default: a fresh
// temp dir per run, removed afterwards).
type Runner struct {
	// DataDir roots the per-scenario data dirs of durable runs. Empty
	// means os.MkdirTemp.
	DataDir string
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		r.Log(format, args...)
	}
}

// sendAttempts bounds the runner's outer retry loop around one batch:
// injected 5xx and resets surface as errors the typed client does not
// retry, so the runner re-sends — like any production ingest loop
// would — until the schedule's armed faults are consumed.
const sendAttempts = 64

// plantTrace is one plant's prepared replay: the simulated topology,
// the post-transform record stream cut into batches, and the job
// metadata that ships after the samples.
type plantTrace struct {
	spec  PlantSpec
	topo  wire.Topology
	batch [][]wire.Record
	jobs  []wire.JobMeta
	// order is the send-schedule permutation (reorder faults applied).
	order []int
	// events maps a batch offset (position in order) to its scheduled
	// faults.
	events map[int][]Failure
}

// ackedBatch is one acknowledged send — the unit the oracle replays.
type ackedBatch struct {
	plant    string
	records  []wire.Record
	admitted int
}

// Run executes one scenario end to end and reports every invariant
// check. A non-nil error means the scenario could not be executed at
// all (bad config, no free port); injection findings land in
// Result.Checks instead.
func (r *Runner) Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	start := time.Now()

	res := &Result{Name: cfg.Name, Seed: cfg.Seed, Injected: map[string]uint64{}}
	traces, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	for _, tr := range traces {
		res.Batches += len(tr.batch)
	}

	dataDir := ""
	if cfg.Durable {
		dataDir = r.DataDir
		if dataDir == "" {
			tmp, err := os.MkdirTemp("", "hod-scenario-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dataDir = tmp
		}
		dataDir = filepath.Join(dataDir, cfg.Name)
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return nil, err
		}
	}

	h, err := newHarness(cfg, dataDir)
	if err != nil {
		return nil, err
	}
	defer h.shutdown()
	if cfg.Subscribe {
		// Attach the live subscriber before the first register: the
		// wildcard channel picks plants up as they appear.
		if err := h.startWatch(ctx); err != nil {
			return nil, fmt.Errorf("scenario %s: subscribe: %w", cfg.Name, err)
		}
	}

	drainTimeout := time.Duration(cfg.DrainTimeoutMS) * time.Millisecond
	acked, err := r.replay(ctx, cfg, h, traces, res)
	res.ClientRetried = h.clientRetried()
	res.ListenerDrops = h.listenerDrops()
	if err != nil {
		return nil, err
	}

	// Drain the victim: every acknowledged record must fold, bounded by
	// the scenario's drain deadline (a hang here IS a finding).
	admittedByPlant := map[string]uint64{}
	for _, ab := range acked {
		admittedByPlant[ab.plant] += uint64(ab.admitted)
	}
	for _, tr := range traces {
		id := tr.spec.ID
		dctx, cancel := context.WithTimeout(ctx, drainTimeout)
		err := h.client.WaitDrained(dctx, id, admittedByPlant[id])
		cancel()
		res.check("drain_terminates/"+id, err == nil, errString(err))
		if errors.Is(err, hod.ErrDrainTimeout) {
			// No point byte-comparing a wedged server.
			res.finish(start)
			return res, nil
		}
	}

	// Build the oracle: a fresh in-memory server fed the exact
	// acknowledged stream, in ack order, then byte-compare every
	// serving surface.
	r.verify(ctx, cfg, h, traces, acked, drainTimeout, res)
	r.verifyPush(ctx, h, traces, drainTimeout, res)
	res.finish(start)
	return res, nil
}

// prepare simulates every plant, applies the trace transforms, cuts
// batches, applies reorder faults, and indexes the send-schedule
// events.
func prepare(cfg Config) ([]*plantTrace, error) {
	defaultPlant := cfg.Plants[0].ID
	traces := make([]*plantTrace, 0, len(cfg.Plants))
	for pi, spec := range cfg.Plants {
		// Seed offset keeps multi-plant scenarios from replaying the
		// same trace into every plant.
		sim, err := hod.Simulate(hod.SimConfig{
			Seed:            cfg.Seed + int64(pi),
			Lines:           spec.Lines,
			MachinesPerLine: spec.MachinesPerLine,
			JobsPerMachine:  spec.JobsPerMachine,
			PhaseSamples:    spec.PhaseSamples,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %s: simulate %s: %w", cfg.Name, spec.ID, err)
		}
		recs := append(sim.Records(), sim.EnvRecords()...)
		recs = transform(recs, spec.ID, defaultPlant, cfg.Failures)
		tr := &plantTrace{
			spec:   spec,
			topo:   sim.Topology(spec.ID),
			batch:  chunk(recs, cfg.BatchRecords),
			jobs:   sim.JobMetas(),
			events: map[int][]Failure{},
		}
		tr.order = make([]int, len(tr.batch))
		for i := range tr.order {
			tr.order[i] = i
		}
		for _, f := range cfg.Failures {
			if target(f, defaultPlant) != spec.ID {
				continue
			}
			switch f.Kind {
			case KindDropout, KindClockSkew:
				// trace transforms, already applied
			case KindReorder:
				if f.At+1 < len(tr.order) {
					tr.order[f.At], tr.order[f.At+1] = tr.order[f.At+1], tr.order[f.At]
				}
			default:
				at := f.At
				if at >= len(tr.batch) && len(tr.batch) > 0 {
					at = len(tr.batch) - 1
				}
				tr.events[at] = append(tr.events[at], f)
			}
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

func target(f Failure, defaultPlant string) string {
	if f.Plant != "" {
		return f.Plant
	}
	return defaultPlant
}

// transform applies dropout and clock-skew windows to one plant's
// record stream.
func transform(recs []wire.Record, plantID, defaultPlant string, failures []Failure) []wire.Record {
	windows := make([]Failure, 0, 2)
	for _, f := range failures {
		if (f.Kind == KindDropout || f.Kind == KindClockSkew) && target(f, defaultPlant) == plantID {
			windows = append(windows, f)
		}
	}
	if len(windows) == 0 {
		return recs
	}
	out := recs[:0]
	for _, rec := range recs {
		keep := true
		for _, w := range windows {
			if !matchWindow(rec, w) {
				continue
			}
			if w.Kind == KindDropout {
				keep = false
				break
			}
			rec.T += w.Skew
		}
		if keep {
			out = append(out, rec)
		}
	}
	return out
}

func matchWindow(rec wire.Record, w Failure) bool {
	if w.Machine != "" && rec.Machine != w.Machine {
		return false
	}
	if w.Machine == "" && !rec.Env {
		return false
	}
	if w.Sensor != "" && rec.Sensor != w.Sensor {
		return false
	}
	if rec.T < w.From {
		return false
	}
	if w.To > 0 && rec.T >= w.To {
		return false
	}
	return true
}

func chunk(recs []wire.Record, n int) [][]wire.Record {
	var out [][]wire.Record
	for lo := 0; lo < len(recs); lo += n {
		hi := lo + n
		if hi > len(recs) {
			hi = len(recs)
		}
		out = append(out, recs[lo:hi])
	}
	return out
}

// replay drives every plant's batch schedule through the harness,
// firing scheduled faults at their batch offsets, and returns the
// acknowledged stream in ack order — the oracle's input.
func (r *Runner) replay(ctx context.Context, cfg Config, h *harness, traces []*plantTrace, res *Result) ([]ackedBatch, error) {
	var acked []ackedBatch

	send := func(plantID string, recs []wire.Record) error {
		var lastErr error
		for attempt := 0; attempt < sendAttempts; attempt++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			ack, err := h.client.Ingest(ctx, plantID, recs)
			if err == nil {
				acked = append(acked, ackedBatch{plant: plantID, records: recs, admitted: ack.Records})
				return nil
			}
			lastErr = err
			res.RunnerRetries++
		}
		return fmt.Errorf("scenario %s: batch on %s undeliverable after %d attempts: %w",
			cfg.Name, plantID, sendAttempts, lastErr)
	}

	for _, tr := range traces {
		id := tr.spec.ID
		if _, err := h.client.Register(ctx, tr.topo); err != nil {
			return nil, fmt.Errorf("scenario %s: register %s: %w", cfg.Name, id, err)
		}
		for pos, bi := range tr.order {
			for _, f := range tr.events[pos] {
				if err := r.fire(ctx, cfg, h, f, res); err != nil {
					return nil, err
				}
			}
			if err := send(id, tr.batch[bi]); err != nil {
				return nil, err
			}
			for _, f := range tr.events[pos] {
				n := f.Count
				if n <= 0 {
					n = 1
				}
				switch f.Kind {
				case KindDuplicate:
					for i := 0; i < n; i++ {
						if err := send(id, tr.batch[bi]); err != nil {
							return nil, err
						}
					}
					res.Injected[KindDuplicate] += uint64(n)
				case KindResend:
					// Reverse order: the idempotent store must not care.
					lo := pos - n
					if lo < 0 {
						lo = 0
					}
					for p := pos - 1; p >= lo; p-- {
						if err := send(id, tr.batch[tr.order[p]]); err != nil {
							return nil, err
						}
						res.Injected[KindResend]++
					}
				}
			}
		}
		if len(tr.jobs) > 0 {
			if _, err := h.client.Jobs(ctx, id, tr.jobs); err != nil {
				return nil, fmt.Errorf("scenario %s: jobs %s: %w", cfg.Name, id, err)
			}
		}
	}
	return acked, nil
}

// fire executes one pre-batch fault.
func (r *Runner) fire(ctx context.Context, cfg Config, h *harness, f Failure, res *Result) error {
	n := f.Count
	if n <= 0 {
		n = 1
	}
	switch f.Kind {
	case KindStorm429:
		faults := make([]hod.Fault, n)
		for i := range faults {
			faults[i] = hod.Fault{Status: http.StatusTooManyRequests}
		}
		h.injector.InjectNext(faults...)
		res.Injected[KindStorm429] += uint64(n)
	case KindStorm5xx:
		faults := make([]hod.Fault, n)
		for i := range faults {
			faults[i] = hod.Fault{Status: http.StatusInternalServerError}
		}
		h.injector.InjectNext(faults...)
		res.Injected[KindStorm5xx] += uint64(n)
	case KindConnReset:
		faults := make([]hod.Fault, n)
		for i := range faults {
			faults[i] = hod.Fault{}
		}
		h.injector.InjectNext(faults...)
		res.Injected[KindConnReset] += uint64(n)
	case KindListenerReset:
		// Force the next sends onto fresh connections so the armed
		// accept-drops fire deterministically.
		h.transport.CloseIdleConnections()
		h.listener.DropNext(n)
		res.Injected[KindListenerReset] += uint64(n)
	case KindSlowConsumer:
		if h.watch != nil {
			h.watch.pause()
			res.Injected[KindSlowConsumer]++
		}
	case KindWSDisconnect:
		if h.watch != nil {
			h.watch.drop()
			res.Injected[KindWSDisconnect]++
		}
	case KindKill, KindCorruptWALTail:
		pre, err := h.client.Stats(ctx, firstPlant(cfg))
		preSeen := err == nil
		r.logf("scenario %s: %s (restart %d)", cfg.Name, f.Kind, res.Restarts+1)
		h.kill()
		if f.Kind == KindCorruptWALTail {
			if err := corruptWALTails(h.dataDir); err != nil {
				return fmt.Errorf("scenario %s: corrupting WAL tails: %w", cfg.Name, err)
			}
			res.Injected[KindCorruptWALTail]++
		} else {
			res.Injected[KindKill]++
		}
		if err := h.restart(); err != nil {
			res.check("recovery_opens", false, err.Error())
			return fmt.Errorf("scenario %s: restart after %s: %w", cfg.Name, f.Kind, err)
		}
		res.Restarts++
		if preSeen {
			post, err := h.client.Stats(ctx, firstPlant(cfg))
			ok := err == nil && post.ReceivedRecords >= pre.ReceivedRecords
			res.check(fmt.Sprintf("received_monotonic/restart_%d", res.Restarts), ok,
				fmt.Sprintf("pre-kill %d, post-recovery %d (err=%v)", pre.ReceivedRecords, postReceived(post, err), err))
		}
	}
	return nil
}

func postReceived(st wire.StatsResponse, err error) uint64 {
	if err != nil {
		return 0
	}
	return st.ReceivedRecords
}

func firstPlant(cfg Config) string { return cfg.Plants[0].ID }

// corruptWALTails appends a torn frame — a header claiming an absurd
// length followed by garbage — to the newest segment of every shard
// WAL under dataDir. Recovery must truncate exactly this and keep
// every acked frame before it.
func corruptWALTails(dataDir string) error {
	segs, err := filepath.Glob(filepath.Join(dataDir, "*", "wal-shard-*", "seg-*.wal"))
	if err != nil {
		return err
	}
	newest := map[string]string{}
	for _, seg := range segs {
		dir := filepath.Dir(seg)
		if seg > newest[dir] {
			newest[dir] = seg
		}
	}
	if len(newest) == 0 {
		return fmt.Errorf("no WAL segments under %s", dataDir)
	}
	dirs := make([]string, 0, len(newest))
	for d := range newest {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		f, err := os.OpenFile(newest[d], os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		// 4-byte length claiming ~4 GiB, then a ragged half frame.
		if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xef, 0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// harness owns the server under test, its fault listener, and the
// fault-injecting client. restart() tears the server down hard and
// brings a new generation up from the same data dir, keeping the
// injector and its counters.
type harness struct {
	cfg     Config
	dataDir string

	srv       *server.Server
	stopHTTP  func()
	listener  *server.FaultListener
	injector  *hod.FaultInjector
	transport *http.Transport
	client    *hod.Client
	baseURL   string
	watch     *pushWatcher

	// Accumulated across killed generations (client and listener are
	// recreated per restart).
	retriedAccum uint64
	dropsAccum   uint64
}

// clientRetried totals the client's automatic 429 retries across every
// server generation of the run.
func (h *harness) clientRetried() uint64 { return h.retriedAccum + h.client.Retried() }

// listenerDrops totals the accept-then-RST drops across generations.
func (h *harness) listenerDrops() uint64 { return h.dropsAccum + h.listener.Dropped() }

func serverOptions(cfg Config, dataDir string) server.Options {
	opts := server.Options{
		Shards:     cfg.Shards,
		QueueDepth: cfg.QueueDepth,
		DataDir:    dataDir,
		Fsync:      cfg.Fsync,
	}
	opts.AlertThreshold = cfg.AlertThreshold
	if cfg.SnapshotIntervalMS > 0 {
		opts.SnapshotInterval = time.Duration(cfg.SnapshotIntervalMS) * time.Millisecond
	} else {
		opts.SnapshotInterval = time.Hour // scheduled restarts stay deterministic
	}
	return opts
}

func newHarness(cfg Config, dataDir string) (*harness, error) {
	transport := &http.Transport{}
	h := &harness{
		cfg:       cfg,
		dataDir:   dataDir,
		transport: transport,
		injector:  hod.NewFaultInjector(transport),
	}
	if err := h.start(); err != nil {
		return nil, err
	}
	return h, nil
}

// start boots one server generation: Open (recovery), fault-wrapped
// listener, fresh client pointed at the new port.
func (h *harness) start() error {
	srv := server.New(serverOptions(h.cfg, h.dataDir))
	if err := srv.Open(); err != nil {
		srv.Close()
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return err
	}
	h.listener = server.NewFaultListener(ln)
	h.stopHTTP = srv.ServeListener(h.listener)
	h.srv = srv
	h.baseURL = "http://" + ln.Addr().String()
	h.client = hod.NewClient(h.baseURL,
		hod.WithHTTPClient(&http.Client{Transport: h.injector, Timeout: 30 * time.Second}))
	return nil
}

// kill hard-stops the current generation: listener gone, queues
// dropped, no snapshot, no drain.
func (h *harness) kill() {
	h.stopHTTP()
	h.transport.CloseIdleConnections()
	h.srv.Kill()
	h.retriedAccum += h.client.Retried()
	h.dropsAccum += h.listener.Dropped()
}

func (h *harness) restart() error { return h.start() }

// shutdown gracefully closes the final generation.
func (h *harness) shutdown() {
	if h.watch != nil {
		h.watch.close()
	}
	if h.stopHTTP != nil {
		h.stopHTTP()
	}
	if h.srv != nil {
		h.srv.Close()
	}
	h.transport.CloseIdleConnections()
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
