package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/pkg/hod"
	"repro/pkg/hod/wire"
)

// Runner executes scenarios. The zero value is usable; set DataDir to
// control where durable scenarios keep their WAL (default: a fresh
// temp dir per run, removed afterwards).
type Runner struct {
	// DataDir roots the per-scenario data dirs of durable runs. Empty
	// means os.MkdirTemp.
	DataDir string
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		r.Log(format, args...)
	}
}

// sendAttempts bounds the runner's outer retry loop around one batch:
// injected 5xx and resets surface as errors the typed client does not
// retry, so the runner re-sends — like any production ingest loop
// would — until the schedule's armed faults are consumed.
const sendAttempts = 64

// plantTrace is one plant's prepared replay: the simulated topology,
// the post-transform record stream cut into batches, and the job
// metadata that ships after the samples.
type plantTrace struct {
	spec  PlantSpec
	topo  wire.Topology
	batch [][]wire.Record
	jobs  []wire.JobMeta
	// order is the send-schedule permutation (reorder faults applied).
	order []int
	// events maps a batch offset (position in order) to its scheduled
	// faults.
	events map[int][]Failure
}

// ackedBatch is one acknowledged send — the unit the oracle replays.
type ackedBatch struct {
	plant    string
	records  []wire.Record
	admitted int
}

// Run executes one scenario end to end and reports every invariant
// check. A non-nil error means the scenario could not be executed at
// all (bad config, no free port); injection findings land in
// Result.Checks instead.
func (r *Runner) Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	start := time.Now()

	res := &Result{Name: cfg.Name, Seed: cfg.Seed, Injected: map[string]uint64{}}
	traces, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	for _, tr := range traces {
		res.Batches += len(tr.batch)
	}

	dataDir := ""
	if cfg.Durable {
		dataDir = r.DataDir
		if dataDir == "" {
			tmp, err := os.MkdirTemp("", "hod-scenario-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dataDir = tmp
		}
		dataDir = filepath.Join(dataDir, cfg.Name)
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return nil, err
		}
	}

	h, err := newHarness(cfg, dataDir)
	if err != nil {
		return nil, err
	}
	defer h.shutdown()
	if cfg.Subscribe {
		// Attach the live subscriber before the first register: the
		// wildcard channel picks plants up as they appear.
		if err := h.startWatch(ctx); err != nil {
			return nil, fmt.Errorf("scenario %s: subscribe: %w", cfg.Name, err)
		}
	}

	drainTimeout := time.Duration(cfg.DrainTimeoutMS) * time.Millisecond
	acked, admittedByPlant, err := r.replay(ctx, cfg, h, traces, res)
	res.ClientRetried = h.clientRetried()
	res.ListenerDrops = h.listenerDrops()
	if err != nil {
		return nil, err
	}

	// Drain the victim: every acknowledged record must fold, bounded by
	// the scenario's drain deadline (a hang here IS a finding). The
	// per-plant targets come from the replay: normally the summed acks,
	// re-based on the promoted standby's counter after a node_kill
	// (records acked by the dead node and not yet shipped are the ones
	// the re-sent stream restores).
	for _, tr := range traces {
		id := tr.spec.ID
		dctx, cancel := context.WithTimeout(ctx, drainTimeout)
		err := h.client.WaitDrained(dctx, id, admittedByPlant[id])
		cancel()
		res.check("drain_terminates/"+id, err == nil, errString(err))
		if errors.Is(err, hod.ErrDrainTimeout) {
			// No point byte-comparing a wedged server.
			res.finish(start)
			return res, nil
		}
	}

	// Build the oracle: a fresh in-memory server fed the exact
	// acknowledged stream, in ack order, then byte-compare every
	// serving surface.
	r.verify(ctx, cfg, h, traces, acked, drainTimeout, res)
	r.verifyPush(ctx, h, traces, drainTimeout, res)
	res.finish(start)
	return res, nil
}

// prepare simulates every plant, applies the trace transforms, cuts
// batches, applies reorder faults, and indexes the send-schedule
// events.
func prepare(cfg Config) ([]*plantTrace, error) {
	defaultPlant := cfg.Plants[0].ID
	traces := make([]*plantTrace, 0, len(cfg.Plants))
	for pi, spec := range cfg.Plants {
		// Seed offset keeps multi-plant scenarios from replaying the
		// same trace into every plant.
		sim, err := hod.Simulate(hod.SimConfig{
			Seed:            cfg.Seed + int64(pi),
			Lines:           spec.Lines,
			MachinesPerLine: spec.MachinesPerLine,
			JobsPerMachine:  spec.JobsPerMachine,
			PhaseSamples:    spec.PhaseSamples,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %s: simulate %s: %w", cfg.Name, spec.ID, err)
		}
		recs := append(sim.Records(), sim.EnvRecords()...)
		recs = transform(recs, spec.ID, defaultPlant, cfg.Failures)
		tr := &plantTrace{
			spec:   spec,
			topo:   sim.Topology(spec.ID),
			batch:  chunk(recs, cfg.BatchRecords),
			jobs:   sim.JobMetas(),
			events: map[int][]Failure{},
		}
		tr.order = make([]int, len(tr.batch))
		for i := range tr.order {
			tr.order[i] = i
		}
		for _, f := range cfg.Failures {
			if target(f, defaultPlant) != spec.ID {
				continue
			}
			switch f.Kind {
			case KindDropout, KindClockSkew:
				// trace transforms, already applied
			case KindReorder:
				if f.At+1 < len(tr.order) {
					tr.order[f.At], tr.order[f.At+1] = tr.order[f.At+1], tr.order[f.At]
				}
			default:
				at := f.At
				if at >= len(tr.batch) && len(tr.batch) > 0 {
					at = len(tr.batch) - 1
				}
				tr.events[at] = append(tr.events[at], f)
			}
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

func target(f Failure, defaultPlant string) string {
	if f.Plant != "" {
		return f.Plant
	}
	return defaultPlant
}

// transform applies dropout and clock-skew windows to one plant's
// record stream.
func transform(recs []wire.Record, plantID, defaultPlant string, failures []Failure) []wire.Record {
	windows := make([]Failure, 0, 2)
	for _, f := range failures {
		if (f.Kind == KindDropout || f.Kind == KindClockSkew) && target(f, defaultPlant) == plantID {
			windows = append(windows, f)
		}
	}
	if len(windows) == 0 {
		return recs
	}
	out := recs[:0]
	for _, rec := range recs {
		keep := true
		for _, w := range windows {
			if !matchWindow(rec, w) {
				continue
			}
			if w.Kind == KindDropout {
				keep = false
				break
			}
			rec.T += w.Skew
		}
		if keep {
			out = append(out, rec)
		}
	}
	return out
}

func matchWindow(rec wire.Record, w Failure) bool {
	if w.Machine != "" && rec.Machine != w.Machine {
		return false
	}
	if w.Machine == "" && !rec.Env {
		return false
	}
	if w.Sensor != "" && rec.Sensor != w.Sensor {
		return false
	}
	if rec.T < w.From {
		return false
	}
	if w.To > 0 && rec.T >= w.To {
		return false
	}
	return true
}

func chunk(recs []wire.Record, n int) [][]wire.Record {
	var out [][]wire.Record
	for lo := 0; lo < len(recs); lo += n {
		hi := lo + n
		if hi > len(recs) {
			hi = len(recs)
		}
		out = append(out, recs[lo:hi])
	}
	return out
}

// replay drives every plant's batch schedule through the harness,
// firing scheduled faults at their batch offsets, and returns the
// acknowledged stream in ack order — the oracle's input — plus the
// per-plant drain targets.
func (r *Runner) replay(ctx context.Context, cfg Config, h *harness, traces []*plantTrace, res *Result) ([]ackedBatch, map[string]uint64, error) {
	var acked []ackedBatch
	admitted := map[string]uint64{}
	registered := map[string]bool{}
	jobsSent := map[string][]wire.JobMeta{}

	// ingest resolves h.client at call time — restarts swap the client
	// for one pointed at the new generation's port.
	ingest := func(ctx context.Context, plantID string, recs []wire.Record) (wire.IngestAck, error) {
		if cfg.Binary {
			return h.client.IngestBinary(ctx, plantID, recs)
		}
		return h.client.Ingest(ctx, plantID, recs)
	}
	send := func(plantID string, recs []wire.Record) error {
		var lastErr error
		for attempt := 0; attempt < sendAttempts; attempt++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			ack, err := ingest(ctx, plantID, recs)
			if err == nil {
				acked = append(acked, ackedBatch{plant: plantID, records: recs, admitted: ack.Records})
				admitted[plantID] += uint64(ack.Records)
				return nil
			}
			lastErr = err
			res.RunnerRetries++
		}
		return fmt.Errorf("scenario %s: batch on %s undeliverable after %d attempts: %w",
			cfg.Name, plantID, sendAttempts, lastErr)
	}

	// resendAcked is the client's failover story: after a node death the
	// promoted standby holds the replicated prefix, so the at-least-once
	// client re-sends the whole acked stream and the idempotent folds
	// restore exactly the lost suffix. Drain targets re-base on what the
	// survivors actually hold before the re-send tops them up.
	resendAcked := func() error {
		for _, tr := range traces {
			if !registered[tr.spec.ID] {
				continue
			}
			st, err := h.client.Stats(ctx, tr.spec.ID)
			if err != nil {
				return fmt.Errorf("scenario %s: stats of %s after failover: %w", cfg.Name, tr.spec.ID, err)
			}
			admitted[tr.spec.ID] = st.ReceivedRecords
		}
		snap := append([]ackedBatch(nil), acked...)
		r.logf("scenario %s: re-sending %d acked batches after failover", cfg.Name, len(snap))
		for _, ab := range snap {
			if err := send(ab.plant, ab.records); err != nil {
				return err
			}
		}
		for id, jobs := range jobsSent {
			if _, err := h.client.Jobs(ctx, id, jobs); err != nil {
				return fmt.Errorf("scenario %s: re-sending jobs of %s: %w", cfg.Name, id, err)
			}
		}
		return nil
	}

	for _, tr := range traces {
		id := tr.spec.ID
		if _, err := h.client.Register(ctx, tr.topo); err != nil {
			return nil, nil, fmt.Errorf("scenario %s: register %s: %w", cfg.Name, id, err)
		}
		registered[id] = true
		for pos, bi := range tr.order {
			for _, f := range tr.events[pos] {
				if err := r.fire(ctx, cfg, h, f, res, resendAcked); err != nil {
					return nil, nil, err
				}
			}
			if err := send(id, tr.batch[bi]); err != nil {
				return nil, nil, err
			}
			for _, f := range tr.events[pos] {
				n := f.Count
				if n <= 0 {
					n = 1
				}
				switch f.Kind {
				case KindDuplicate:
					for i := 0; i < n; i++ {
						if err := send(id, tr.batch[bi]); err != nil {
							return nil, nil, err
						}
					}
					res.Injected[KindDuplicate] += uint64(n)
				case KindResend:
					// Reverse order: the idempotent store must not care.
					lo := pos - n
					if lo < 0 {
						lo = 0
					}
					for p := pos - 1; p >= lo; p-- {
						if err := send(id, tr.batch[tr.order[p]]); err != nil {
							return nil, nil, err
						}
						res.Injected[KindResend]++
					}
				}
			}
		}
		if len(tr.jobs) > 0 {
			if _, err := h.client.Jobs(ctx, id, tr.jobs); err != nil {
				return nil, nil, fmt.Errorf("scenario %s: jobs %s: %w", cfg.Name, id, err)
			}
			jobsSent[id] = tr.jobs
		}
	}
	return acked, admitted, nil
}

// fire executes one pre-batch fault. resendAcked replays the acked
// stream after a failover (node_kill re-bases the drain targets and
// re-sends everything, like a production client would).
func (r *Runner) fire(ctx context.Context, cfg Config, h *harness, f Failure, res *Result, resendAcked func() error) error {
	n := f.Count
	if n <= 0 {
		n = 1
	}
	switch f.Kind {
	case KindNodeKill:
		plantID := target(f, firstPlant(cfg))
		owner, standby, err := h.placementOf(ctx, plantID)
		if err != nil {
			return fmt.Errorf("scenario %s: node_kill: %w", cfg.Name, err)
		}
		if standby == "" {
			return fmt.Errorf("scenario %s: node_kill: plant %s has no standby to promote", cfg.Name, plantID)
		}
		// The standby seeds asynchronously after register; killing the
		// owner before the copy exists would be a different scenario.
		if err := h.waitStandbyHolds(ctx, standby, plantID, 10*time.Second); err != nil {
			return fmt.Errorf("scenario %s: node_kill: %w", cfg.Name, err)
		}
		r.logf("scenario %s: node_kill: killing %s (owner of %s), promoting %s", cfg.Name, owner, plantID, standby)
		if !h.killNode(owner) {
			return fmt.Errorf("scenario %s: node_kill: node %s is already down", cfg.Name, owner)
		}
		if _, err := h.client.ClusterFail(ctx, owner); err != nil {
			return fmt.Errorf("scenario %s: node_kill: declaring %s failed: %w", cfg.Name, owner, err)
		}
		res.Injected[KindNodeKill]++
		if err := resendAcked(); err != nil {
			return err
		}
	case KindRouterPartition:
		plantID := target(f, firstPlant(cfg))
		owner, _, err := h.placementOf(ctx, plantID)
		if err != nil {
			return fmt.Errorf("scenario %s: router_partition: %w", cfg.Name, err)
		}
		h.router.PartitionNext(owner, n)
		res.Injected[KindRouterPartition] += uint64(n)
	case KindCorruptFrame:
		plantID := target(f, firstPlant(cfg))
		for i := 0; i < n; i++ {
			_, err := h.client.IngestBody(ctx, plantID, wire.ContentTypeBinary, corruptFrameBody())
			rejected := errors.Is(err, hod.ErrBadFrame)
			res.check(fmt.Sprintf("corrupt_frame_rejected/%s/at_%d_%d", plantID, f.At, i),
				rejected, fmt.Sprintf("want ErrBadFrame, got %v", err))
			res.Injected[KindCorruptFrame]++
		}
	case KindStorm429:
		faults := make([]hod.Fault, n)
		for i := range faults {
			faults[i] = hod.Fault{Status: http.StatusTooManyRequests}
		}
		h.injector.InjectNext(faults...)
		res.Injected[KindStorm429] += uint64(n)
	case KindStorm5xx:
		faults := make([]hod.Fault, n)
		for i := range faults {
			faults[i] = hod.Fault{Status: http.StatusInternalServerError}
		}
		h.injector.InjectNext(faults...)
		res.Injected[KindStorm5xx] += uint64(n)
	case KindConnReset:
		faults := make([]hod.Fault, n)
		for i := range faults {
			faults[i] = hod.Fault{}
		}
		h.injector.InjectNext(faults...)
		res.Injected[KindConnReset] += uint64(n)
	case KindListenerReset:
		// Force the next sends onto fresh connections so the armed
		// accept-drops fire deterministically.
		h.transport.CloseIdleConnections()
		h.listener.DropNext(n)
		res.Injected[KindListenerReset] += uint64(n)
	case KindSlowConsumer:
		if h.watch != nil {
			h.watch.pause()
			res.Injected[KindSlowConsumer]++
		}
	case KindWSDisconnect:
		if h.watch != nil {
			h.watch.drop()
			res.Injected[KindWSDisconnect]++
		}
	case KindKill, KindCorruptWALTail:
		pre, err := h.client.Stats(ctx, firstPlant(cfg))
		preSeen := err == nil
		r.logf("scenario %s: %s (restart %d)", cfg.Name, f.Kind, res.Restarts+1)
		h.kill()
		if f.Kind == KindCorruptWALTail {
			if err := corruptWALTails(h.dataDir); err != nil {
				return fmt.Errorf("scenario %s: corrupting WAL tails: %w", cfg.Name, err)
			}
			res.Injected[KindCorruptWALTail]++
		} else {
			res.Injected[KindKill]++
		}
		if err := h.restart(); err != nil {
			res.check("recovery_opens", false, err.Error())
			return fmt.Errorf("scenario %s: restart after %s: %w", cfg.Name, f.Kind, err)
		}
		res.Restarts++
		if preSeen {
			post, err := h.client.Stats(ctx, firstPlant(cfg))
			ok := err == nil && post.ReceivedRecords >= pre.ReceivedRecords
			res.check(fmt.Sprintf("received_monotonic/restart_%d", res.Restarts), ok,
				fmt.Sprintf("pre-kill %d, post-recovery %d (err=%v)", pre.ReceivedRecords, postReceived(post, err), err))
		}
	}
	return nil
}

func postReceived(st wire.StatsResponse, err error) uint64 {
	if err != nil {
		return 0
	}
	return st.ReceivedRecords
}

func firstPlant(cfg Config) string { return cfg.Plants[0].ID }

// corruptFrameBody is a deterministic structurally invalid binary
// frame: a plausible length prefix over a payload with the wrong
// magic. The server must reject it whole with 400 + bad_frame.
func corruptFrameBody() []byte {
	return []byte{16, 0, 0, 0, 'H', 'O', 'D', 'X', 1, 0, 0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 0, 0}
}

// corruptWALTails appends a torn frame — a header claiming an absurd
// length followed by garbage — to the newest segment of every shard
// WAL under dataDir. Recovery must truncate exactly this and keep
// every acked frame before it.
func corruptWALTails(dataDir string) error {
	segs, err := filepath.Glob(filepath.Join(dataDir, "*", "wal-shard-*", "seg-*.wal"))
	if err != nil {
		return err
	}
	newest := map[string]string{}
	for _, seg := range segs {
		dir := filepath.Dir(seg)
		if seg > newest[dir] {
			newest[dir] = seg
		}
	}
	if len(newest) == 0 {
		return fmt.Errorf("no WAL segments under %s", dataDir)
	}
	dirs := make([]string, 0, len(newest))
	for d := range newest {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		f, err := os.OpenFile(newest[d], os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		// 4-byte length claiming ~4 GiB, then a ragged half frame.
		if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xef, 0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// harness owns the server under test, its fault listener, and the
// fault-injecting client. restart() tears the server down hard and
// brings a new generation up from the same data dir, keeping the
// injector and its counters. With cfg.Nodes > 1 the harness runs a
// cluster instead: N nodes behind a routing proxy, the client pointed
// at the router.
type harness struct {
	cfg     Config
	dataDir string

	srv      *server.Server
	stopHTTP func()
	listener *server.FaultListener

	// Cluster mode (cfg.Nodes > 1). The single-server fields above stay
	// nil; node deaths go through killNode, not kill/restart.
	nodes      []*clusterNode
	router     *cluster.Router
	routerStop func()

	injector  *hod.FaultInjector
	transport *http.Transport
	client    *hod.Client
	baseURL   string
	watch     *pushWatcher

	// Accumulated across killed generations (client and listener are
	// recreated per restart).
	retriedAccum uint64
	dropsAccum   uint64
}

// clusterNode is one hodserve of a cluster harness.
type clusterNode struct {
	id   string
	addr string
	srv  *server.Server
	stop func()
	down bool
}

// clientRetried totals the client's automatic 429 retries across every
// server generation of the run.
func (h *harness) clientRetried() uint64 { return h.retriedAccum + h.client.Retried() }

// listenerDrops totals the accept-then-RST drops across generations.
func (h *harness) listenerDrops() uint64 {
	if h.listener == nil {
		return h.dropsAccum
	}
	return h.dropsAccum + h.listener.Dropped()
}

func serverOptions(cfg Config, dataDir string) server.Options {
	opts := server.Options{
		Shards:     cfg.Shards,
		QueueDepth: cfg.QueueDepth,
		DataDir:    dataDir,
		Fsync:      cfg.Fsync,
	}
	opts.AlertThreshold = cfg.AlertThreshold
	if cfg.SnapshotIntervalMS > 0 {
		opts.SnapshotInterval = time.Duration(cfg.SnapshotIntervalMS) * time.Millisecond
	} else {
		opts.SnapshotInterval = time.Hour // scheduled restarts stay deterministic
	}
	return opts
}

func newHarness(cfg Config, dataDir string) (*harness, error) {
	transport := &http.Transport{}
	h := &harness{
		cfg:       cfg,
		dataDir:   dataDir,
		transport: transport,
		injector:  hod.NewFaultInjector(transport),
	}
	if err := h.start(); err != nil {
		return nil, err
	}
	return h, nil
}

// start boots one server generation: Open (recovery), fault-wrapped
// listener, fresh client pointed at the new port. Cluster configs boot
// the whole topology instead.
func (h *harness) start() error {
	if h.cfg.Nodes > 1 {
		return h.startCluster()
	}
	srv := server.New(serverOptions(h.cfg, h.dataDir))
	if err := srv.Open(); err != nil {
		srv.Close()
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return err
	}
	h.listener = server.NewFaultListener(ln)
	h.stopHTTP = srv.ServeListener(h.listener)
	h.srv = srv
	h.baseURL = "http://" + ln.Addr().String()
	h.client = hod.NewClient(h.baseURL,
		hod.WithHTTPClient(&http.Client{Transport: h.injector, Timeout: 30 * time.Second}))
	return nil
}

// startCluster boots cfg.Nodes cluster nodes (each with its own data
// dir and -node-id) behind a fresh router, and points the
// fault-injecting client at the router — the same seat a production
// client would take.
func (h *harness) startCluster() error {
	peers := make([]wire.ClusterNode, 0, h.cfg.Nodes)
	for i := 0; i < h.cfg.Nodes; i++ {
		id := fmt.Sprintf("n%d", i+1)
		dir := filepath.Join(h.dataDir, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		opts := serverOptions(h.cfg, dir)
		opts.ClusterNodeID = id
		srv := server.New(opts)
		if err := srv.Open(); err != nil {
			srv.Close()
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return err
		}
		node := &clusterNode{id: id, addr: "http://" + ln.Addr().String(), srv: srv, stop: srv.ServeListener(ln)}
		h.nodes = append(h.nodes, node)
		peers = append(peers, wire.ClusterNode{ID: id, Addr: node.addr})
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{Peers: peers})
	if err != nil {
		return err
	}
	if err := rt.Bootstrap(); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	h.router = rt
	h.routerStop = rt.ServeListener(ln)
	h.baseURL = "http://" + ln.Addr().String()
	h.client = hod.NewClient(h.baseURL,
		hod.WithHTTPClient(&http.Client{Transport: h.injector, Timeout: 30 * time.Second}))
	return nil
}

// killNode hard-stops one cluster node the way a machine death would:
// listener gone, queues dropped, no snapshot, no drain — and no
// restart. Reports false if the node is unknown or already down.
func (h *harness) killNode(id string) bool {
	for _, n := range h.nodes {
		if n.id == id && !n.down {
			n.stop()
			n.srv.Kill()
			n.down = true
			return true
		}
	}
	return false
}

// placementOf asks the router where a plant lives right now.
func (h *harness) placementOf(ctx context.Context, plantID string) (owner, standby string, err error) {
	st, err := h.client.ClusterStatus(ctx)
	if err != nil {
		return "", "", fmt.Errorf("cluster status: %w", err)
	}
	for _, p := range st.Placements {
		if p.Plant == plantID {
			return p.Owner, p.Standby, nil
		}
	}
	return "", "", fmt.Errorf("plant %q has no placement at epoch %d", plantID, st.Epoch)
}

// waitStandbyHolds polls a node's plant list until it holds a copy of
// the plant — the replicate call register triggers is asynchronous.
func (h *harness) waitStandbyHolds(ctx context.Context, nodeID, plantID string, timeout time.Duration) error {
	var node *clusterNode
	for _, n := range h.nodes {
		if n.id == nodeID {
			node = n
		}
	}
	if node == nil {
		return fmt.Errorf("unknown standby node %q", nodeID)
	}
	httpc := newQueryClient()
	deadline := time.Now().Add(timeout)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := httpc.Get(node.addr + "/v1/plants")
		if err == nil {
			var pl wire.PlantList
			derr := json.NewDecoder(resp.Body).Decode(&pl)
			resp.Body.Close()
			if derr == nil {
				for _, id := range pl.Plants {
					if id == plantID {
						return nil
					}
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("standby %s never received a copy of plant %s", nodeID, plantID)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill hard-stops the current generation: listener gone, queues
// dropped, no snapshot, no drain.
func (h *harness) kill() {
	h.stopHTTP()
	h.transport.CloseIdleConnections()
	h.srv.Kill()
	h.retriedAccum += h.client.Retried()
	h.dropsAccum += h.listener.Dropped()
}

func (h *harness) restart() error { return h.start() }

// shutdown gracefully closes the final generation.
func (h *harness) shutdown() {
	if h.watch != nil {
		h.watch.close()
	}
	if h.routerStop != nil {
		h.routerStop()
	}
	for _, n := range h.nodes {
		if !n.down {
			n.stop()
		}
		n.srv.Close() // no-op for killed nodes
	}
	if h.stopHTTP != nil {
		h.stopHTTP()
	}
	if h.srv != nil {
		h.srv.Close()
	}
	h.transport.CloseIdleConnections()
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
